package joinmm

// The repository's documentation gates, run as ordinary tests so CI and
// developers share one entry point (the CI docs job runs
// `go test -run 'TestDocs' .`):
//
//   - TestDocsMarkdownLinks: every relative link in every markdown file
//     must resolve to an existing file or directory.
//   - TestDocsGodocCoverage: every exported identifier in every library
//     package must carry a doc comment (the `go doc ./...` coverage the
//     missing-doc lint enforces).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// mdLink matches [text](target) links; images ![alt](target) share the
// (target) suffix and are matched too.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

func TestDocsMarkdownLinks(t *testing.T) {
	var checked, broken int
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if strings.HasPrefix(d.Name(), ".") && path != "." {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		switch filepath.Base(path) {
		case "SNIPPETS.md", "PAPERS.md", "ISSUE.md":
			// Harness-provided reference corpora quoting other
			// repositories' files; their links never resolved here.
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") ||
				strings.HasPrefix(target, "#") {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), target)
			checked++
			if _, err := os.Stat(resolved); err != nil {
				broken++
				t.Errorf("%s: broken link %q (resolved %s)", path, m[1], resolved)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if checked == 0 {
		t.Fatal("no markdown links checked; walker is broken")
	}
	t.Logf("checked %d relative markdown links, %d broken", checked, broken)
}

func TestDocsGodocCoverage(t *testing.T) {
	fset := token.NewFileSet()
	var missing []string
	err := filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		if strings.HasPrefix(d.Name(), ".") && path != "." {
			return filepath.SkipDir
		}
		pkgs, err := parser.ParseDir(fset, path, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			return err
		}
		for name, pkg := range pkgs {
			if name == "main" {
				continue // commands and examples document via the command comment
			}
			for fname, file := range pkg.Files {
				missing = append(missing, undocumented(fset, fname, file)...)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range missing {
		t.Errorf("missing doc comment: %s", m)
	}
	if len(missing) == 0 {
		t.Log("every exported identifier in every library package is documented")
	}
}

// undocumented returns a location string for every exported top-level
// identifier in file that lacks a doc comment: functions, methods on
// exported types, and type/var/const specs (a doc comment on the grouped
// declaration covers all of its specs).
func undocumented(fset *token.FileSet, fname string, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		out = append(out, fset.Position(pos).String()+": "+what)
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue // methods on unexported types are not in go doc
			}
			report(d.Pos(), "func "+d.Name.Name)
		case *ast.GenDecl:
			if d.Doc != nil {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.IsExported() && s.Doc == nil && s.Comment == nil {
							report(n.Pos(), "value "+n.Name)
						}
					}
				}
			}
		}
	}
	return out
}

// exportedReceiver reports whether the method receiver's base type name is
// exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) != 1 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return false
		}
	}
}
