package joinmm_test

import (
	"testing"

	joinmm "repro"
	"repro/internal/dataset"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	r := joinmm.NewRelation("toy", []joinmm.Pair{
		{X: 1, Y: 10}, {X: 2, Y: 10}, {X: 3, Y: 11}, {X: 4, Y: 11},
	})
	eng := joinmm.New(joinmm.WithWorkers(2))
	pairs, plan := eng.JoinProject(r, r)
	// {1,2}×{1,2} ∪ {3,4}×{3,4} = 8 ordered pairs including self-pairs.
	if len(pairs) != 8 {
		t.Fatalf("JoinProject returned %d pairs, want 8 (plan %s)", len(pairs), plan.Strategy)
	}
}

func TestPublicAPIApplications(t *testing.T) {
	r, _ := dataset.ByName("Jokes", 0.05)
	eng := joinmm.New()

	sim := eng.SimilarSets(r, 2)
	ordered := eng.SimilarSetsOrdered(r, 2)
	if len(sim) != len(ordered) {
		t.Fatalf("similar sets: unordered %d, ordered %d", len(sim), len(ordered))
	}
	for i := 1; i < len(ordered); i++ {
		if ordered[i-1].Overlap < ordered[i].Overlap {
			t.Fatal("ordered output not descending")
		}
	}

	_ = eng.ContainedSets(r)

	queries := []joinmm.IntersectionQuery{}
	ix := r.ByX()
	for i := 0; i+1 < ix.NumKeys() && i < 20; i += 2 {
		queries = append(queries, joinmm.IntersectionQuery{A: ix.Key(i), B: ix.Key(i + 1)})
	}
	ans := eng.IntersectBatch(r, r, queries)
	if len(ans) != len(queries) {
		t.Fatalf("IntersectBatch: %d answers for %d queries", len(ans), len(queries))
	}
}

func TestPublicReduceAndJoinSize(t *testing.T) {
	r := joinmm.NewRelation("R", []joinmm.Pair{{X: 1, Y: 1}, {X: 2, Y: 9}})
	s := joinmm.NewRelation("S", []joinmm.Pair{{X: 5, Y: 1}})
	red := joinmm.Reduce(r, s)
	if red[0].Size() != 1 || red[1].Size() != 1 {
		t.Fatalf("Reduce sizes = %d, %d; want 1, 1", red[0].Size(), red[1].Size())
	}
	if joinmm.FullJoinSize(r, s) != 1 {
		t.Fatalf("FullJoinSize = %d, want 1", joinmm.FullJoinSize(r, s))
	}
}

func TestStarJoinPublic(t *testing.T) {
	r := joinmm.NewRelation("R", []joinmm.Pair{{X: 1, Y: 7}, {X: 2, Y: 7}})
	eng := joinmm.New(joinmm.WithStrategy(joinmm.ForceMM))
	tuples, _ := eng.StarJoin([]*joinmm.Relation{r, r, r})
	if len(tuples) != 8 {
		t.Fatalf("3-star over 2 values = %d tuples, want 8", len(tuples))
	}
}
