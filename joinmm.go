// Package joinmm is a Go implementation of "Fast Join Project Query
// Evaluation using Matrix Multiplication" (Deep, Hu, Koutris — SIGMOD 2020):
// an output-sensitive in-memory engine for star join queries with
// projections, combining worst-case optimal joins with (bit-packed) matrix
// multiplication, together with the paper's applications — set similarity
// joins, set containment joins and batched boolean set intersection.
//
// Quick start:
//
//	r := joinmm.NewRelation("friends", pairs) // R(x, y) tuples
//	eng := joinmm.New()                       // cost-based planning
//	out, plan := eng.JoinProject(r, r)        // π_{x,z}(R(x,y) ⋈ R(z,y))
//
// The engine's optimizer decides per instance whether to run the plain
// worst-case optimal join (sparse inputs) or the degree-partitioned matrix
// multiplication algorithm (dense inputs), exactly as Section 5 of the
// paper prescribes; WithStrategy pins either choice.
//
// Beyond the hardcoded shapes, the engine evaluates arbitrary join-project
// queries — acyclic or cyclic — written in a compact Datalog-style text
// language, against relations registered in its catalog:
//
//	eng.Register("R", pairs)
//	res, _ := eng.Query("Q(x, z) :- R(x, y), R(y, z) WITH strategy=auto")
//	tri, _ := eng.Query("Q(x, z) :- R(x, y), R(y, z), R(z, x)")
//	plan, _ := eng.ExplainQuery("Q(x, COUNT(z)) :- R(x, y), R(y, z)")
//
// Acyclic queries are GYO-decomposed into a tree of the paper's two-path and
// star primitives, semijoin-reduced Yannakakis-style, with the calibrated
// cost model choosing MM vs WCOJ per plan node; cyclic queries (triangles,
// cycles, cliques) are admitted via generalized hypertree decomposition and
// run through the same fold machinery over materialized bag relations.
// Compiled plans are cached per (query, versions of the relations it reads).
//
// The catalog is mutable and views are live: Engine.Mutate applies coalesced
// insert/delete batches, and views registered with Engine.RegisterView are
// kept fresh by delta propagation through the same kernels (full refresh
// with a staleness bound outside the incrementally-maintainable fragment):
//
//	v, _ := eng.RegisterView(ctx, "paths", "V(x, z) :- R(x, y), R(y, z)")
//	eng.Mutate("R", inserts, deletes) // v is patched, not recomputed
//	cols, tuples, freshness, _ := v.Result(ctx)
//
// With a data dir, the whole serving state is durable: every mutation is
// write-ahead logged before it is acked, checkpoints snapshot the relations
// and the views' count stores atomically, and on restart the snapshot loads
// and the WAL tail replays through the normal incremental maintenance path:
//
//	eng := joinmm.New()
//	_ = eng.Open("/var/lib/joinmm", joinmm.PersistOptions{})
//	defer eng.Close() // fsync + close the WAL
//	eng.Checkpoint()  // or let CheckpointEvery trigger it
//
// See internal/query/README.md for the grammar, internal/view/README.md for
// the maintenance algebra, docs/ARCHITECTURE.md for worked walk-throughs of
// both the query and the update path, and cmd/joinmmd for the HTTP/JSON
// server exposing the same surface.
package joinmm

import (
	"repro/internal/bsi"
	"repro/internal/catalog"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/joinproject"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/scj"
	"repro/internal/ssj"
	"repro/internal/view"
	"repro/internal/wal"
)

// Pair is a single tuple (X, Y) of a binary relation.
type Pair = relation.Pair

// Relation is an immutable, fully indexed binary relation R(x, y).
type Relation = relation.Relation

// Engine evaluates join-project queries and their applications.
type Engine = core.Engine

// Plan describes how the engine evaluated (or would evaluate) a query.
type Plan = core.Plan

// Strategy selects the planning mode; see Auto, ForceMM, ForceWCOJ,
// ForceNonMM.
type Strategy = core.Strategy

// Planning strategies.
const (
	Auto       = core.Auto
	ForceMM    = core.ForceMM
	ForceWCOJ  = core.ForceWCOJ
	ForceNonMM = core.ForceNonMM
)

// Engine options.
var (
	WithWorkers          = core.WithWorkers
	WithStrategy         = core.WithStrategy
	WithThresholds       = core.WithThresholds
	WithSketchRefinement = core.WithSketchRefinement
)

// SimilarPair is an unordered set pair with overlap ≥ c (set similarity).
type SimilarPair = ssj.Pair

// ScoredPair is a similar pair with its exact overlap, for ordered results.
type ScoredPair = ssj.ScoredPair

// ContainmentPair is one containment Sub ⊆ Sup (set containment).
type ContainmentPair = scj.Pair

// IntersectionQuery asks whether sets A (in R) and B (in S) intersect.
type IntersectionQuery = bsi.Query

// SimilarTuple is a k-way similar tuple of distinct sets.
type SimilarTuple = ssj.Tuple

// GroupCount is a per-group aggregate over the projected join: distinct
// partner count and total witness count for one x value.
type GroupCount = joinproject.GroupCount

// CompressedView is the factorized representation of a join-project result:
// light pairs explicit, heavy pairs kept as bit-matrix factors.
type CompressedView = compress.View

// ParsedQuery is the AST of one text query (see ParseQuery).
type ParsedQuery = query.Query

// QueryResult is an evaluated text query: column labels, distinct tuples and
// the executed plan with its per-node strategy choices.
type QueryResult = query.Result

// QueryPlan is an explainable plan tree for a text query.
type QueryPlan = query.Plan

// Catalog is the engine's named-relation registry with its LRU plan cache
// and the tuple-level mutation API feeding view maintenance.
type Catalog = catalog.Catalog

// RelationMutation is one coalesced catalog change: the effective tuple
// delta, the old and new relation, and the bumped per-relation version.
type RelationMutation = catalog.Mutation

// MaterializedView is one registered live view: materialized once, kept
// fresh under Engine.Mutate by delta propagation (or flagged refresh).
type MaterializedView = view.View

// ViewInfo summarizes one registered view (name, query, rows, freshness).
type ViewInfo = view.Info

// ViewFreshness is the maintenance metadata served with view results:
// mode, staleness, pending batches, last maintenance cost and strategies.
type ViewFreshness = view.Freshness

// PersistOptions configures Engine.Open: WAL fsync policy, segment size and
// the automatic checkpoint threshold.
type PersistOptions = core.PersistOptions

// FsyncPolicy selects when WAL appends reach the disk; see FsyncAlways,
// FsyncInterval, FsyncNever.
type FsyncPolicy = wal.Policy

// WAL fsync policies, in decreasing durability order.
const (
	// FsyncAlways syncs after every append (the default; no acked mutation
	// is ever lost).
	FsyncAlways = wal.FsyncAlways
	// FsyncInterval syncs at most once per interval.
	FsyncInterval = wal.FsyncInterval
	// FsyncNever leaves syncing to the OS page cache.
	FsyncNever = wal.FsyncNever
)

// CheckpointInfo summarizes one completed durability checkpoint.
type CheckpointInfo = core.CheckpointInfo

// RecoveryStats summarizes what Engine.Open recovered from a data dir.
type RecoveryStats = core.RecoveryStats

// PersistenceStats is the durability section of the engine's health report.
type PersistenceStats = core.PersistenceStats

// ParseQuery parses one rule of the text query language, e.g.
// "Q(x, z) :- R(x, y), S(y, z), T(z, w) WITH strategy=auto".
func ParseQuery(src string) (*ParsedQuery, error) { return query.Parse(src) }

// New builds an engine. With no options it plans automatically on all
// cores.
func New(opts ...core.Option) *Engine { return core.NewEngine(opts...) }

// NewRelation builds an indexed relation from tuples, removing duplicates.
func NewRelation(name string, pairs []Pair) *Relation {
	return relation.FromPairs(name, pairs)
}

// Reduce removes tuples that cannot contribute to the join of the given
// relations (the linear preprocessing step the paper's algorithms assume).
func Reduce(rels ...*Relation) []*Relation { return relation.Reduce(rels...) }

// LoadRelation reads a relation from a file written by (*Relation).Save.
func LoadRelation(path string) (*Relation, error) { return relation.Load(path) }

// FullJoinSize returns |OUT⋈|, the size of the star join before projection.
func FullJoinSize(rels ...*Relation) int64 { return relation.FullJoinSize(rels...) }
