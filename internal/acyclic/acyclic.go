// Package acyclic extends the join-project engine beyond star queries, in
// the direction the paper's conclusion proposes: "extend our techniques to
// arbitrary acyclic queries with projections ... building a query plan that
// decomposes the join into multiple subqueries and evaluates in the optimal
// way".
//
// Two acyclic shapes are supported, both evaluated by composing the
// output-sensitive 2-path and star primitives of internal/joinproject:
//
//   - Path queries P_k(x0, xk) = R1(x0,x1), R2(x1,x2), ..., Rk(x_{k-1},xk),
//     projected onto the endpoints. Adjacent relations are folded with the
//     2-path algorithm (each fold is a projection, so intermediates stay
//     output-sensitive rather than growing like the full join), either
//     left-deep or by balanced halving (bushy), mirroring a query plan's
//     choice of join order.
//
//   - Snowflake queries: a star whose arms are chains. Each arm is folded
//     into a (center, leaf) view with PathProject, then the arm views are
//     combined with the Section-3.2 star algorithm.
//
// Every intermediate is itself deduplicated, which is exactly the reason
// pushing projections through the plan wins over materializing the full
// acyclic join.
package acyclic

import (
	"fmt"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

// Order selects the fold order for path queries.
type Order int

const (
	// OrderAuto picks bushy for k ≥ 4 relations and left-deep otherwise.
	OrderAuto Order = iota
	// OrderLeftDeep folds relations left to right.
	OrderLeftDeep
	// OrderBushy recursively folds halves — the balanced plan, whose
	// intermediates depend only on log-many compositions.
	OrderBushy
)

// Options configures acyclic evaluation.
type Options struct {
	// Join options forwarded to every 2-path / star composition.
	Join joinproject.Options
	// Order selects the fold order for chains.
	Order Order
}

// PathProject evaluates π_{x0,xk}(R1(x0,x1) ⋈ ... ⋈ Rk(x_{k-1},x_k)).
// Relations are oriented head→tail: Ri's first column joins R(i−1)'s second.
func PathProject(rels []*relation.Relation, opt Options) ([][2]int32, error) {
	switch len(rels) {
	case 0:
		return nil, fmt.Errorf("acyclic: empty path query")
	case 1:
		out := make([][2]int32, 0, rels[0].Size())
		for _, p := range rels[0].Pairs() {
			out = append(out, [2]int32{p.X, p.Y})
		}
		return out, nil
	}
	v := foldPath(rels, opt)
	out := make([][2]int32, 0, v.Size())
	for _, p := range v.Pairs() {
		out = append(out, [2]int32{p.X, p.Y})
	}
	return out, nil
}

// foldPath reduces the chain to a single (head, tail) relation.
func foldPath(rels []*relation.Relation, opt Options) *relation.Relation {
	if len(rels) == 1 {
		return rels[0]
	}
	order := opt.Order
	if order == OrderAuto {
		if len(rels) >= 4 {
			order = OrderBushy
		} else {
			order = OrderLeftDeep
		}
	}
	if order == OrderBushy {
		mid := len(rels) / 2
		left := foldPath(rels[:mid], opt)
		right := foldPath(rels[mid:], opt)
		return compose(left, right, opt.Join)
	}
	acc := rels[0]
	for _, next := range rels[1:] {
		acc = compose(acc, next, opt.Join)
	}
	return acc
}

// compose computes V(a, c) = π_{a,c}(L(a, b) ⋈ R(b, c)) with the 2-path
// algorithm. Algorithm 1 joins the second columns of both operands, so the
// right-hand relation is swapped into (c, b) orientation first; the output
// pairs are then (L.x, R.Swap().x) = (a, c) as required.
func compose(l, r *relation.Relation, jopt joinproject.Options) *relation.Relation {
	pairs := joinproject.TwoPathMM(l, r.Swap(), jopt)
	ps := make([]relation.Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = relation.Pair{X: p[0], Y: p[1]}
	}
	return relation.FromPairs(l.Name()+"∘"+r.Name(), ps)
}
