// Package acyclic extends the join-project engine beyond star queries, in
// the direction the paper's conclusion proposes: "extend our techniques to
// arbitrary acyclic queries with projections ... building a query plan that
// decomposes the join into multiple subqueries and evaluates in the optimal
// way".
//
// The package provides the composition layer the generic planner of
// internal/query is built on: every acyclic shape is evaluated by composing
// the output-sensitive 2-path and star primitives of internal/joinproject,
// with an optional per-composition Planner choosing MM vs WCOJ vs the
// combinatorial plan for each fold from the calibrated cost model.
//
//   - Path queries P_k(x0, xk) = R1(x0,x1), R2(x1,x2), ..., Rk(x_{k-1},xk),
//     projected onto the endpoints. Adjacent relations are folded with the
//     2-path algorithm (each fold is a projection, so intermediates stay
//     output-sensitive rather than growing like the full join), either
//     left-deep or by balanced halving (bushy), mirroring a query plan's
//     choice of join order.
//
//   - Snowflake queries: a star whose arms are chains. Each arm is folded
//     into a (center, leaf) view with PathProject, then the arm views are
//     combined with the Section-3.2 star algorithm.
//
//   - Arbitrary folds: Compose exposes one planned composition step so the
//     internal/query executor can collapse any acyclic join tree, recording
//     a Step per node for EXPLAIN.
//
// Every intermediate is itself deduplicated, which is exactly the reason
// pushing projections through the plan wins over materializing the full
// acyclic join.
package acyclic

import (
	"fmt"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

// Order selects the fold order for path queries.
type Order int

const (
	// OrderAuto picks bushy for k ≥ 4 relations and left-deep otherwise.
	OrderAuto Order = iota
	// OrderLeftDeep folds relations left to right.
	OrderLeftDeep
	// OrderBushy recursively folds halves — the balanced plan, whose
	// intermediates depend only on log-many compositions.
	OrderBushy
)

// Strategy names for composition decisions.
const (
	StrategyMM    = "mm"
	StrategyWCOJ  = "wcoj"
	StrategyNonMM = "nonmm"
)

// ComposeDecision is a per-composition plan choice: which algorithm runs the
// fold, with the thresholds and estimates it was based on.
type ComposeDecision struct {
	// Strategy is StrategyMM, StrategyWCOJ or StrategyNonMM.
	Strategy string
	// Delta1, Delta2 are the degree thresholds (MM only; 0 = heuristic).
	Delta1, Delta2 int
	// EstOut and OutJoin record the estimates behind the decision, when the
	// planner computed them (0 otherwise).
	EstOut, OutJoin int64
	// PredictedNs is the modeled cost of the chosen plan in nanoseconds
	// (0 = the planner priced nothing).
	PredictedNs float64
	// Margin is how decisively the chosen strategy won (see
	// optimizer.Decision.Margin); NearMargin flags coin-flip decisions.
	Margin     float64
	NearMargin bool
}

// Planner chooses a strategy for one composition
// V(a,c) = π_{a,c}(L(a,b) ⋈ R(b,c)). Implementations typically wrap the
// Section-5 cost-based optimizer (see optimizer.Optimizer.DecideCompose).
type Planner interface {
	ChooseCompose(l, r *relation.Relation, workers int) ComposeDecision
}

// Options configures acyclic evaluation.
type Options struct {
	// Join options forwarded to every 2-path / star composition.
	Join joinproject.Options
	// Order selects the fold order for chains.
	Order Order
	// Planner, when non-nil, chooses MM/WCOJ/NonMM per composition; nil runs
	// every fold with the MM algorithm and the Join thresholds.
	Planner Planner
	// Force pins every composition to one strategy (StrategyMM, StrategyWCOJ
	// or StrategyNonMM), overriding Planner. Empty means no pin.
	Force string
}

// Step records one executed composition for plan reporting.
type Step struct {
	// Left and Right name the composed operands.
	Left, Right string
	// Strategy is the algorithm that ran the fold.
	Strategy string
	// Delta1, Delta2 are the thresholds the MM fold used (0 under WCOJ).
	Delta1, Delta2 int
	// EstOut and OutJoin are the planner's estimates (0 without a planner).
	EstOut, OutJoin int64
	// PredictedNs, Margin and NearMargin carry the planner's modeled cost
	// and decision margin through to plan reporting (0 without a planner).
	PredictedNs float64
	Margin      float64
	NearMargin  bool
	// Rows is the actual output size of the fold.
	Rows int
}

// String renders the step as one EXPLAIN line.
func (s Step) String() string {
	out := fmt.Sprintf("fold %s ∘ %s strategy=%s", s.Left, s.Right, s.Strategy)
	if s.Strategy == StrategyMM && (s.Delta1 > 0 || s.Delta2 > 0) {
		out += fmt.Sprintf(" Δ1=%d Δ2=%d", s.Delta1, s.Delta2)
	}
	if s.OutJoin > 0 {
		out += fmt.Sprintf(" est|OUT|=%d |OUT⋈|=%d", s.EstOut, s.OutJoin)
	}
	if s.Margin > 0 {
		out += fmt.Sprintf(" margin=%.2f×", s.Margin)
		if s.NearMargin {
			out += " (near)"
		}
	}
	return out + fmt.Sprintf(" rows=%d", s.Rows)
}

// decide resolves the strategy for one composition under opt.
func decide(l, r *relation.Relation, opt Options) ComposeDecision {
	if opt.Force != "" {
		return ComposeDecision{Strategy: opt.Force, Delta1: opt.Join.Delta1, Delta2: opt.Join.Delta2}
	}
	if opt.Planner != nil {
		return opt.Planner.ChooseCompose(l, r, opt.Join.Workers)
	}
	return ComposeDecision{Strategy: StrategyMM, Delta1: opt.Join.Delta1, Delta2: opt.Join.Delta2}
}

// wcojThresholds returns thresholds that classify every value as light,
// turning Algorithm 1 into the plain WCOJ + constant-time-dedup plan.
func wcojThresholds(l, r *relation.Relation) int {
	n := l.Size()
	if r.Size() > n {
		n = r.Size()
	}
	return n + 1
}

// Compose computes V(a, c) = π_{a,c}(L(a, b) ⋈ R(b, c)) as one planned
// composition step. Algorithm 1 joins the second columns of both operands, so
// the right-hand relation is swapped into (c, b) orientation first; the
// output pairs are then (L.x, R.Swap().x) = (a, c) as required.
func Compose(l, r *relation.Relation, opt Options) (*relation.Relation, Step) {
	halt := func() bool { return opt.Join.Stop != nil && opt.Join.Stop() }
	dec := decide(l, r, opt)
	jopt := opt.Join
	jopt.Delta1, jopt.Delta2 = dec.Delta1, dec.Delta2
	var pairs [][2]int32
	// A tripped Stop short-circuits the whole step: the join itself polls
	// Stop, but the swap, the join, and the output materialization each cost
	// real time on large intermediates, so skipping them keeps the
	// cancel-to-return latency bounded. The caller discards the (empty)
	// partial result once it observes the cancellation.
	if !halt() {
		rs := r.Swap()
		switch {
		case halt():
			// Canceled while swapping; skip the join.
		case dec.Strategy == StrategyWCOJ:
			t := wcojThresholds(l, r)
			jopt.Delta1, jopt.Delta2 = t, t
			pairs = joinproject.TwoPathMM(l, rs, jopt)
		case dec.Strategy == StrategyNonMM:
			pairs = joinproject.TwoPathNonMM(l, rs, jopt)
		default:
			dec.Strategy = StrategyMM
			pairs = joinproject.TwoPathMM(l, rs, jopt)
		}
	} else {
		dec.Strategy = StrategyMM
	}
	if halt() {
		pairs = nil
	}
	ps := make([]relation.Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = relation.Pair{X: p[0], Y: p[1]}
	}
	v := relation.FromPairs(l.Name()+"∘"+r.Name(), ps)
	step := Step{
		Left: l.Name(), Right: r.Name(),
		Strategy: dec.Strategy, Delta1: jopt.Delta1, Delta2: jopt.Delta2,
		EstOut: dec.EstOut, OutJoin: dec.OutJoin,
		PredictedNs: dec.PredictedNs, Margin: dec.Margin, NearMargin: dec.NearMargin,
		Rows: v.Size(),
	}
	if dec.Strategy == StrategyWCOJ {
		step.Delta1, step.Delta2 = 0, 0
	}
	return v, step
}

// PathProject evaluates π_{x0,xk}(R1(x0,x1) ⋈ ... ⋈ Rk(x_{k-1},x_k)).
// Relations are oriented head→tail: Ri's first column joins R(i−1)'s second.
func PathProject(rels []*relation.Relation, opt Options) ([][2]int32, error) {
	v, _, err := FoldPathPlanned(rels, opt)
	if err != nil {
		return nil, err
	}
	out := make([][2]int32, 0, v.Size())
	for _, p := range v.Pairs() {
		out = append(out, [2]int32{p.X, p.Y})
	}
	return out, nil
}

// FoldPathPlanned reduces the chain to a single (head, tail) relation,
// recording every composition for plan reporting.
func FoldPathPlanned(rels []*relation.Relation, opt Options) (*relation.Relation, []Step, error) {
	if len(rels) == 0 {
		return nil, nil, fmt.Errorf("acyclic: empty path query")
	}
	var steps []Step
	v := foldPath(rels, opt, &steps)
	return v, steps, nil
}

// foldPath reduces the chain to a single (head, tail) relation. steps, when
// non-nil, accumulates the composition records.
func foldPath(rels []*relation.Relation, opt Options, steps *[]Step) *relation.Relation {
	if len(rels) == 1 {
		return rels[0]
	}
	order := opt.Order
	if order == OrderAuto {
		if len(rels) >= 4 {
			order = OrderBushy
		} else {
			order = OrderLeftDeep
		}
	}
	if order == OrderBushy {
		mid := len(rels) / 2
		left := foldPath(rels[:mid], opt, steps)
		right := foldPath(rels[mid:], opt, steps)
		return compose(left, right, opt, steps)
	}
	acc := rels[0]
	for _, next := range rels[1:] {
		acc = compose(acc, next, opt, steps)
	}
	return acc
}

func compose(l, r *relation.Relation, opt Options, steps *[]Step) *relation.Relation {
	v, step := Compose(l, r, opt)
	if steps != nil {
		*steps = append(*steps, step)
	}
	return v
}
