package acyclic

import (
	"fmt"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

// SnowflakeProject evaluates a star query whose arms are chains: arm i is a
// list of relations [A1(center, u1), A2(u1, u2), ..., Am(u_{m-1}, leaf_i)],
// oriented outward from the shared center variable. The result is the
// projection onto the arm leaves: π_{leaf_1..leaf_k}.
//
// Each arm is first folded into a (center, leaf) view with the chain
// evaluator, then the views are combined with the Section-3.2 star
// algorithm (joining on the center). Projections are pushed through every
// level, so no intermediate exceeds its own projected size.
func SnowflakeProject(arms [][]*relation.Relation, opt Options) ([][]int32, error) {
	if len(arms) == 0 {
		return nil, fmt.Errorf("acyclic: snowflake with no arms")
	}
	views := make([]*relation.Relation, len(arms))
	for i, arm := range arms {
		if len(arm) == 0 {
			return nil, fmt.Errorf("acyclic: arm %d is empty", i)
		}
		// Fold the chain to V(center, leaf), then swap to (leaf, center) so
		// the star joins on the center variable.
		views[i] = foldPath(arm, opt, nil).Swap()
	}
	if len(views) == 1 {
		// A one-armed snowflake is just the arm view projected to its leaf
		// values... keep the (leaf) tuples.
		var out [][]int32
		seen := map[int32]bool{}
		for _, p := range views[0].Pairs() {
			if !seen[p.X] {
				seen[p.X] = true
				out = append(out, []int32{p.X})
			}
		}
		return out, nil
	}
	return joinproject.StarMM(views, opt.Join), nil
}

// Reachable reports whether any path instance connects head value a to tail
// value c through the chain — the boolean variant of PathProject, answered
// without enumerating the output (the chain is folded with both endpoint
// relations restricted to the constants first).
func Reachable(rels []*relation.Relation, a, c int32, opt Options) (bool, error) {
	if len(rels) == 0 {
		return false, fmt.Errorf("acyclic: empty path query")
	}
	restricted := make([]*relation.Relation, len(rels))
	copy(restricted, rels)
	restricted[0] = rels[0].RestrictXSet([]int32{a})
	last := len(rels) - 1
	if last == 0 {
		return restricted[0].Contains(a, c), nil
	}
	restricted[last] = rels[last].Swap().RestrictXSet([]int32{c}).Swap()
	v := foldPath(restricted, opt, nil)
	return v.Contains(a, c), nil
}
