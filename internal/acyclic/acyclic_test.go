package acyclic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

func randomRel(rng *rand.Rand, name string, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		ps[i] = relation.Pair{X: int32(rng.Intn(xdom)), Y: int32(rng.Intn(ydom))}
	}
	return relation.FromPairs(name, ps)
}

// brutePath enumerates the projected path query by explicit nested joins.
func brutePath(rels []*relation.Relation) map[[2]int32]bool {
	// frontier: head value → set of reachable current values.
	frontier := map[int32]map[int32]bool{}
	for _, p := range rels[0].Pairs() {
		if frontier[p.X] == nil {
			frontier[p.X] = map[int32]bool{}
		}
		frontier[p.X][p.Y] = true
	}
	for _, r := range rels[1:] {
		next := map[int32]map[int32]bool{}
		for head, mids := range frontier {
			for mid := range mids {
				for _, tail := range r.ByX().Lookup(mid) {
					if next[head] == nil {
						next[head] = map[int32]bool{}
					}
					next[head][tail] = true
				}
			}
		}
		frontier = next
	}
	out := map[[2]int32]bool{}
	for head, tails := range frontier {
		for tail := range tails {
			out[[2]int32{head, tail}] = true
		}
	}
	return out
}

func checkPath(t *testing.T, got [][2]int32, want map[[2]int32]bool, label string) {
	t.Helper()
	seen := map[[2]int32]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("%s: duplicate %v", label, p)
		}
		seen[p] = true
		if !want[p] {
			t.Fatalf("%s: spurious %v", label, p)
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(seen), len(want))
	}
}

func chain(rng *rand.Rand, k, n, dom int) []*relation.Relation {
	rels := make([]*relation.Relation, k)
	for i := range rels {
		rels[i] = randomRel(rng, "R", n, dom, dom)
	}
	return rels
}

func TestPathProjectTwoHops(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	rels := chain(rng, 2, 300, 30)
	want := brutePath(rels)
	for _, ord := range []Order{OrderLeftDeep, OrderBushy, OrderAuto} {
		got, err := PathProject(rels, Options{Order: ord})
		if err != nil {
			t.Fatal(err)
		}
		checkPath(t, got, want, "2-hop")
	}
}

func TestPathProjectLongChains(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	for _, k := range []int{3, 4, 5, 6} {
		rels := chain(rng, k, 200, 20)
		want := brutePath(rels)
		left, err := PathProject(rels, Options{Order: OrderLeftDeep})
		if err != nil {
			t.Fatal(err)
		}
		checkPath(t, left, want, "left-deep")
		bushy, err := PathProject(rels, Options{Order: OrderBushy})
		if err != nil {
			t.Fatal(err)
		}
		checkPath(t, bushy, want, "bushy")
	}
}

func TestPathProjectSingleRelation(t *testing.T) {
	r := relation.FromPairs("R", []relation.Pair{{X: 1, Y: 2}, {X: 3, Y: 4}})
	got, err := PathProject([]*relation.Relation{r}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("single relation path = %v", got)
	}
}

func TestPathProjectEmpty(t *testing.T) {
	if _, err := PathProject(nil, Options{}); err == nil {
		t.Fatal("expected error for empty chain")
	}
}

func TestPathProjectDisconnected(t *testing.T) {
	r1 := relation.FromPairs("R1", []relation.Pair{{X: 1, Y: 10}})
	r2 := relation.FromPairs("R2", []relation.Pair{{X: 99, Y: 5}})
	got, err := PathProject([]*relation.Relation{r1, r2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("disconnected chain = %v", got)
	}
}

func TestSnowflake(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	// Three arms: lengths 1, 2, 2.
	arms := [][]*relation.Relation{
		{randomRel(rng, "A1", 150, 15, 15)},
		{randomRel(rng, "B1", 150, 15, 15), randomRel(rng, "B2", 150, 15, 15)},
		{randomRel(rng, "C1", 150, 15, 15), randomRel(rng, "C2", 150, 15, 15)},
	}
	got, err := SnowflakeProject(arms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: fold arms by brute force, then brute-force star join.
	views := make([]map[[2]int32]bool, len(arms)) // (center, leaf)
	for i, arm := range arms {
		views[i] = brutePath(arm)
	}
	want := map[[3]int32]bool{}
	for p1 := range views[0] {
		for p2 := range views[1] {
			if p2[0] != p1[0] {
				continue
			}
			for p3 := range views[2] {
				if p3[0] == p1[0] {
					want[[3]int32{p1[1], p2[1], p3[1]}] = true
				}
			}
		}
	}
	seen := map[[3]int32]bool{}
	for _, tp := range got {
		key := [3]int32{tp[0], tp[1], tp[2]}
		if seen[key] {
			t.Fatalf("duplicate snowflake tuple %v", key)
		}
		seen[key] = true
		if !want[key] {
			t.Fatalf("spurious snowflake tuple %v", key)
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("snowflake: %d tuples, want %d", len(seen), len(want))
	}
}

func TestSnowflakeOneArm(t *testing.T) {
	r := relation.FromPairs("R", []relation.Pair{{X: 1, Y: 5}, {X: 1, Y: 6}, {X: 2, Y: 5}})
	got, err := SnowflakeProject([][]*relation.Relation{{r}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Distinct leaves of the arm view: {5, 6}.
	if len(got) != 2 {
		t.Fatalf("one-armed snowflake = %v", got)
	}
}

func TestSnowflakeErrors(t *testing.T) {
	if _, err := SnowflakeProject(nil, Options{}); err == nil {
		t.Fatal("no arms should error")
	}
	if _, err := SnowflakeProject([][]*relation.Relation{{}}, Options{}); err == nil {
		t.Fatal("empty arm should error")
	}
}

func TestReachable(t *testing.T) {
	// 1 → 10 → 20 → 30; 2 → 11 (dead end).
	r1 := relation.FromPairs("R1", []relation.Pair{{X: 1, Y: 10}, {X: 2, Y: 11}})
	r2 := relation.FromPairs("R2", []relation.Pair{{X: 10, Y: 20}})
	r3 := relation.FromPairs("R3", []relation.Pair{{X: 20, Y: 30}})
	rels := []*relation.Relation{r1, r2, r3}
	ok, err := Reachable(rels, 1, 30, Options{})
	if err != nil || !ok {
		t.Fatalf("1 should reach 30 (err=%v)", err)
	}
	ok, _ = Reachable(rels, 2, 30, Options{})
	if ok {
		t.Fatal("2 should not reach 30")
	}
	ok, _ = Reachable([]*relation.Relation{r1}, 1, 10, Options{})
	if !ok {
		t.Fatal("single-hop reachability failed")
	}
	if _, err := Reachable(nil, 1, 2, Options{}); err == nil {
		t.Fatal("empty chain should error")
	}
}

// Property: left-deep and bushy plans agree with brute force for random
// chains and random thresholds.
func TestQuickPathOrdersAgree(t *testing.T) {
	f := func(seed int64, d uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4)
		rels := chain(rng, k, 1+rng.Intn(120), 2+rng.Intn(14))
		want := brutePath(rels)
		opt := Options{Join: joinproject.Options{Delta1: 1 + int(d%8), Delta2: 1 + int(d%8), Workers: 2}}
		for _, ord := range []Order{OrderLeftDeep, OrderBushy} {
			opt.Order = ord
			got, err := PathProject(rels, opt)
			if err != nil {
				return false
			}
			if len(got) != len(want) {
				return false
			}
			for _, p := range got {
				if !want[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
