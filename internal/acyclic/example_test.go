package acyclic_test

import (
	"fmt"
	"sort"

	"repro/internal/acyclic"
	"repro/internal/relation"
)

// Who can reach whom in two hops: π_{x0,x2}(Follows ⋈ Follows).
func ExamplePathProject() {
	follows := relation.FromPairs("follows", []relation.Pair{
		{X: 1, Y: 2}, {X: 2, Y: 3}, {X: 2, Y: 4}, {X: 3, Y: 4},
	})
	pairs, err := acyclic.PathProject([]*relation.Relation{follows, follows}, acyclic.Options{})
	if err != nil {
		panic(err)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, p := range pairs {
		fmt.Printf("%d reaches %d in two hops\n", p[0], p[1])
	}
	// Output:
	// 1 reaches 3 in two hops
	// 1 reaches 4 in two hops
	// 2 reaches 4 in two hops
}

// Boolean chain reachability without enumerating the output.
func ExampleReachable() {
	hop := relation.FromPairs("hop", []relation.Pair{
		{X: 1, Y: 5}, {X: 5, Y: 9},
	})
	ok, _ := acyclic.Reachable([]*relation.Relation{hop, hop}, 1, 9, acyclic.Options{})
	fmt.Println(ok)
	ok, _ = acyclic.Reachable([]*relation.Relation{hop, hop}, 5, 9, acyclic.Options{})
	fmt.Println(ok)
	// Output:
	// true
	// false
}
