package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"

	"repro/internal/faultfs"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Default per-response caps for segment streams. A follower loops until
// caught up, so a cap only bounds one round trip, not total throughput.
const (
	// DefaultMaxRecords caps records per segment-stream response.
	DefaultMaxRecords = 4096
	// DefaultMaxBytes caps framed bytes per segment-stream response (soft:
	// the frame that crosses it is still shipped whole).
	DefaultMaxBytes = 4 << 20
)

// Response headers of the replication protocol.
const (
	// HeaderNextLSN carries the primary's next LSN — the LSN its next
	// append will get — on segment and snapshot responses. The follower
	// derives its lag from it.
	HeaderNextLSN = "X-Repl-Next-LSN"
	// HeaderFrom echoes the validated from parameter on segment responses.
	HeaderFrom = "X-Repl-From"
	// HeaderAppliedLSN carries the snapshot's applied LSN on snapshot
	// responses; tailing starts at the LSN after it.
	HeaderAppliedLSN = "X-Repl-Applied-LSN"
)

// Source serves a primary's WAL and snapshots to followers over HTTP. It
// reads segment files directly (the WAL writes frames unbuffered, so
// completed appends are always visible; an in-flight append shows up as a
// torn tail and is simply not shipped yet) and never blocks the primary's
// write path.
type Source struct {
	// FS is the filesystem the persistence layer writes through; nil means
	// the real one.
	FS faultfs.FS
	// Dir is the persistence root holding WAL segments and snapshots.
	Dir string
	// Next reports the live WAL's next LSN. Records below it are durable on
	// the segment files by the time it is observed.
	Next func() uint64
	// MaxRecords and MaxBytes cap one segment-stream response (defaults
	// DefaultMaxRecords / DefaultMaxBytes).
	MaxRecords int
	MaxBytes   int
}

// errStop aborts a replay once a response cap is reached.
var errStop = errors.New("repl: response full")

// ServeSegments handles GET /repl/segments?from=<lsn>: it streams framed
// records with LSN ≥ from, up to the response caps. Status codes:
//
//	200 — stream follows (possibly empty, when the follower is caught up)
//	400 — missing or malformed from
//	410 — from is below the oldest retained LSN (checkpoint truncated the
//	      history; the follower must re-bootstrap from a snapshot)
//	416 — from is beyond the primary's next LSN (the follower is ahead of
//	      this primary — e.g. the primary restarted after losing an unsynced
//	      tail — and must re-bootstrap)
func (s *Source) ServeSegments(w http.ResponseWriter, req *http.Request) {
	from, err := strconv.ParseUint(req.URL.Query().Get("from"), 10, 64)
	if err != nil || from == 0 {
		s.fail(w, "segments", http.StatusBadRequest, "missing or malformed from parameter")
		return
	}
	next := s.Next()
	if from > next {
		s.fail(w, "segments", http.StatusRequestedRangeNotSatisfiable,
			fmt.Sprintf("from %d beyond next LSN %d: follower ahead of this primary", from, next))
		return
	}
	if oldest, ok, err := wal.OldestLSNFS(s.FS, s.Dir); err != nil {
		s.fail(w, "segments", http.StatusInternalServerError, err.Error())
		return
	} else if from < next && (!ok || from < oldest) {
		s.fail(w, "segments", http.StatusGone,
			fmt.Sprintf("from %d below retained history: re-bootstrap from snapshot", from))
		return
	}
	maxRecords, maxBytes := s.MaxRecords, s.MaxBytes
	if maxRecords <= 0 {
		maxRecords = DefaultMaxRecords
	}
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	buf := AppendMagic(nil)
	records := 0
	err = wal.ReplayFS(s.FS, s.Dir, from-1, func(lsn uint64, r *wal.Record) error {
		// Ship only up to the next-LSN observed above: records appended
		// concurrently are left for the follower's next poll, keeping the
		// stream consistent with the advertised header.
		if lsn >= next || records >= maxRecords || len(buf) >= maxBytes {
			return errStop
		}
		buf, err = AppendFrame(buf, lsn, r)
		if err != nil {
			return err
		}
		records++
		return nil
	})
	if err != nil && !errors.Is(err, errStop) {
		s.fail(w, "segments", http.StatusInternalServerError, err.Error())
		return
	}
	sourceRequests.With("segments", "200").Inc()
	sourceRecordsShipped.Add(uint64(records))
	sourceBytesShipped.Add(uint64(len(buf) - len(Magic)))
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderNextLSN, strconv.FormatUint(next, 10))
	h.Set(HeaderFrom, strconv.FormatUint(from, 10))
	h.Set("Content-Length", strconv.Itoa(len(buf)))
	w.Write(buf)
}

// ServeSnapshot handles GET /repl/snapshot: it serves the latest checkpoint
// image for follower bootstrap. With no checkpoint yet it serves an empty
// state at applied LSN 0 — correct, because in that case the WAL is the
// complete history from LSN 1 and the tail supplies everything.
func (s *Source) ServeSnapshot(w http.ResponseWriter, req *http.Request) {
	man, ok, err := snapshot.LoadManifestFS(s.FS, s.Dir)
	if err != nil {
		s.fail(w, "snapshot", http.StatusInternalServerError, err.Error())
		return
	}
	var data []byte
	var applied uint64
	if ok {
		data, err = faultfs.OrOS(s.FS).ReadFile(filepath.Join(s.Dir, man.Snapshot))
		if err != nil {
			s.fail(w, "snapshot", http.StatusInternalServerError, err.Error())
			return
		}
		applied = man.AppliedLSN
	} else {
		data = snapshot.Encode(&snapshot.State{})
	}
	sourceRequests.With("snapshot", "200").Inc()
	h := w.Header()
	h.Set("Content-Type", "application/octet-stream")
	h.Set(HeaderAppliedLSN, strconv.FormatUint(applied, 10))
	h.Set(HeaderNextLSN, strconv.FormatUint(s.Next(), 10))
	h.Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// SourceStatus is the document ServeStatus returns.
type SourceStatus struct {
	// NextLSN is the primary's next LSN.
	NextLSN uint64 `json:"next_lsn"`
	// OldestLSN is the first LSN of retained WAL history (0 when the log is
	// empty).
	OldestLSN uint64 `json:"oldest_lsn"`
	// SnapshotLSN is the applied LSN of the latest checkpoint (0 when none).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
}

// ServeStatus handles GET /repl/status with a small JSON summary of what
// this primary can ship.
func (s *Source) ServeStatus(w http.ResponseWriter, req *http.Request) {
	st := SourceStatus{NextLSN: s.Next()}
	if oldest, ok, err := wal.OldestLSNFS(s.FS, s.Dir); err == nil && ok {
		st.OldestLSN = oldest
	}
	if man, ok, err := snapshot.LoadManifestFS(s.FS, s.Dir); err == nil && ok {
		st.SnapshotLSN = man.AppliedLSN
	}
	sourceRequests.With("status", "200").Inc()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

// fail writes a plain-text error response and counts it.
func (s *Source) fail(w http.ResponseWriter, endpoint string, code int, msg string) {
	sourceRequests.With(endpoint, strconv.Itoa(code)).Inc()
	http.Error(w, msg, code)
}
