package repl

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/wal"
)

// newPrimaryDir opens a WAL in a temp dir, appends n mutate records, and
// returns the dir, the live WAL and the appended records.
func newPrimaryDir(t *testing.T, n int) (string, *wal.WAL, []*wal.Record) {
	t.Helper()
	dir := t.TempDir()
	w, err := wal.Open(dir, wal.Options{Policy: wal.FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	var recs []*wal.Record
	for i := 0; i < n; i++ {
		r := &wal.Record{Kind: wal.KindMutate, Name: "R", Added: []relation.Pair{{X: int32(i), Y: int32(i + 1)}}}
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	return dir, w, recs
}

// newTestServer mounts a Source on an httptest server and returns a client.
func newTestServer(t *testing.T, src *Source) *Client {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /repl/segments", src.ServeSegments)
	mux.HandleFunc("GET /repl/snapshot", src.ServeSnapshot)
	mux.HandleFunc("GET /repl/status", src.ServeStatus)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return &Client{Base: ts.URL, HTTP: ts.Client()}
}

func TestSourceServesFullTail(t *testing.T) {
	dir, w, recs := newPrimaryDir(t, 25)
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN})
	b, err := c.Fetch(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if b.PrimaryNext != 26 {
		t.Fatalf("PrimaryNext = %d, want 26", b.PrimaryNext)
	}
	if len(b.Records) != 25 {
		t.Fatalf("got %d records, want 25", len(b.Records))
	}
	for i, sr := range b.Records {
		if sr.LSN != uint64(i+1) || !reflect.DeepEqual(sr.Record, recs[i]) {
			t.Fatalf("record %d diverged", i)
		}
	}
}

func TestSourceCaughtUpAndAhead(t *testing.T) {
	dir, w, _ := newPrimaryDir(t, 3)
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN})
	// from == next: caught up, empty batch.
	b, err := c.Fetch(context.Background(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 0 || b.PrimaryNext != 4 {
		t.Fatalf("caught-up batch: %d records, next %d", len(b.Records), b.PrimaryNext)
	}
	// from > next: the follower is ahead (primary lost its tail).
	if _, err := c.Fetch(context.Background(), 5); !errors.Is(err, ErrAhead) {
		t.Fatalf("ahead fetch: %v, want ErrAhead", err)
	}
}

func TestSourceGoneAfterTruncation(t *testing.T) {
	dir, w, _ := newPrimaryDir(t, 10)
	// Rotate so TruncateBefore has a removable segment, then drop history
	// below LSN 6.
	if err := w.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&wal.Record{Kind: wal.KindDrop, Name: "R"}); err != nil {
		t.Fatal(err)
	}
	if err := w.TruncateBefore(11); err != nil {
		t.Fatal(err)
	}
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN})
	if _, err := c.Fetch(context.Background(), 1); !errors.Is(err, ErrTruncatedHistory) {
		t.Fatalf("pre-truncation fetch: %v, want ErrTruncatedHistory", err)
	}
	// Retained history still serves.
	b, err := c.Fetch(context.Background(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Records) != 1 {
		t.Fatalf("got %d records, want 1", len(b.Records))
	}
}

func TestSourceRespectsCapsAndClientLoops(t *testing.T) {
	dir, w, recs := newPrimaryDir(t, 10)
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN, MaxRecords: 3})
	var got []ShippedRecord
	from := uint64(1)
	rounds := 0
	for {
		b, err := c.Fetch(context.Background(), from)
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		got = append(got, b.Records...)
		if len(b.Records) == 0 {
			break
		}
		from = b.Records[len(b.Records)-1].LSN + 1
	}
	if len(got) != len(recs) {
		t.Fatalf("looped fetch got %d records, want %d", len(got), len(recs))
	}
	if rounds < 4 { // 10 records at ≤3 per response, plus the empty tail poll
		t.Fatalf("cap not applied: %d rounds", rounds)
	}
}

func TestSourceRejectsBadFrom(t *testing.T) {
	dir, w, _ := newPrimaryDir(t, 1)
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN})
	for _, q := range []string{"", "0", "x", "-1"} {
		_, _, err := c.get(context.Background(), "/repl/segments?from="+q)
		if err == nil {
			t.Errorf("from=%q accepted", q)
		}
	}
}

func TestSourceSnapshotEmptyWithoutCheckpoint(t *testing.T) {
	dir, w, _ := newPrimaryDir(t, 5)
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN})
	bs, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bs.State.AppliedLSN != 0 || len(bs.State.Relations) != 0 || len(bs.State.Views) != 0 {
		t.Fatalf("empty-dir snapshot not empty: %+v", bs.State)
	}
	if bs.PrimaryNext != 6 {
		t.Fatalf("PrimaryNext = %d, want 6", bs.PrimaryNext)
	}
}

func TestSourceSnapshotServesCheckpoint(t *testing.T) {
	dir, w, _ := newPrimaryDir(t, 5)
	st := &snapshot.State{
		AppliedLSN: 5,
		Relations:  []snapshot.Relation{{Name: "R", Pairs: []relation.Pair{{X: 1, Y: 2}}}},
	}
	name, _, err := snapshot.WriteFS(nil, dir, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.WriteManifestFS(nil, dir, snapshot.Manifest{Snapshot: name, AppliedLSN: 5}); err != nil {
		t.Fatal(err)
	}
	c := newTestServer(t, &Source{Dir: dir, Next: w.NextLSN})
	bs, err := c.Snapshot(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if bs.State.AppliedLSN != 5 || len(bs.State.Relations) != 1 || bs.State.Relations[0].Name != "R" {
		t.Fatalf("snapshot diverged: %+v", bs.State)
	}
	// Status reflects both the WAL span and the checkpoint.
	sst, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sst.NextLSN != 6 || sst.OldestLSN != 1 || sst.SnapshotLSN != 5 {
		t.Fatalf("status = %+v", sst)
	}
}

func TestClientDetectsGap(t *testing.T) {
	// A server that ships a stream starting past the requested LSN.
	recs := sampleRecords()[:1]
	mux := http.NewServeMux()
	mux.HandleFunc("GET /repl/segments", func(w http.ResponseWriter, r *http.Request) {
		buf := AppendMagic(nil)
		buf, _ = AppendFrame(buf, 7, recs[0])
		w.Header().Set(HeaderNextLSN, "8")
		w.Write(buf)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	c := &Client{Base: ts.URL, HTTP: ts.Client()}
	if _, err := c.Fetch(context.Background(), 5); err == nil {
		t.Fatal("gapped stream accepted")
	}
}

func TestValidateBase(t *testing.T) {
	for _, ok := range []string{"http://localhost:8080", "https://p.example.com"} {
		if err := ValidateBase(ok); err != nil {
			t.Errorf("ValidateBase(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "localhost:8080", "ftp://x", "http://"} {
		if err := ValidateBase(bad); err == nil {
			t.Errorf("ValidateBase(%q): no error", bad)
		}
	}
}
