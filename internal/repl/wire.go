// Package repl implements primary→follower replication by WAL shipping.
//
// The primary side (Source) serves three HTTP endpoints: a snapshot export
// for bootstrap, a framed record stream for tailing, and a small status
// document. The follower side (Client) fetches them. The wire stream is a
// thin envelope over the WAL's own record framing:
//
//	stream = magic "JMMREPL1" | frame*
//	frame  = uvarint lsn | uvarint payload-length | payload | CRC32-C(payload)
//
// i.e. each frame is the record's LSN followed by the exact bytes
// wal.AppendRecord would write to a segment. Frames carry strictly
// increasing LSNs; the decoder errors loudly (never panics) on truncated,
// corrupt, or non-monotonic input, so a half-delivered response is detected
// by the follower and re-fetched rather than half-applied.
//
// See README.md for the full protocol reference.
package repl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"repro/internal/wal"
)

// Magic leads every segment-stream response body.
const Magic = "JMMREPL1"

// crcTable is the Castagnoli polynomial, matching the WAL's framing.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// AppendMagic appends the stream magic to dst.
func AppendMagic(dst []byte) []byte { return append(dst, Magic...) }

// AppendFrame appends one framed record to dst: the uvarint LSN followed by
// the WAL frame of r.
func AppendFrame(dst []byte, lsn uint64, r *wal.Record) ([]byte, error) {
	if lsn == 0 {
		return dst, fmt.Errorf("repl: zero LSN")
	}
	dst = binary.AppendUvarint(dst, lsn)
	return wal.AppendRecord(dst, r)
}

// Decoder walks a segment-stream body, yielding (LSN, record) pairs.
type Decoder struct {
	rest []byte
	last uint64 // last yielded LSN, for monotonicity enforcement
}

// NewDecoder validates the stream magic and returns a decoder over the
// remaining frames.
func NewDecoder(data []byte) (*Decoder, error) {
	if len(data) < len(Magic) {
		return nil, fmt.Errorf("repl: stream shorter than magic (%d bytes)", len(data))
	}
	if string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("repl: bad stream magic %q", data[:len(Magic)])
	}
	return &Decoder{rest: data[len(Magic):]}, nil
}

// Next decodes one frame. It returns io.EOF at the clean end of the stream
// and a descriptive error on truncated or corrupt input — a frame cut off
// mid-body is an error here, not a silent end, because the follower must
// re-fetch rather than assume it saw everything.
func (d *Decoder) Next() (lsn uint64, r *wal.Record, err error) {
	if len(d.rest) == 0 {
		return 0, nil, io.EOF
	}
	lsn, used := binary.Uvarint(d.rest)
	if used <= 0 {
		return 0, nil, fmt.Errorf("repl: truncated frame LSN")
	}
	if lsn == 0 {
		return 0, nil, fmt.Errorf("repl: zero frame LSN")
	}
	if lsn <= d.last {
		return 0, nil, fmt.Errorf("repl: non-monotonic LSN %d after %d", lsn, d.last)
	}
	b := d.rest[used:]
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return 0, nil, fmt.Errorf("repl: truncated frame length at LSN %d", lsn)
	}
	b = b[used:]
	if n > uint64(len(b)) {
		return 0, nil, fmt.Errorf("repl: truncated frame payload at LSN %d: want %d bytes, have %d", lsn, n, len(b))
	}
	payload, b := b[:n], b[n:]
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("repl: truncated frame CRC at LSN %d", lsn)
	}
	if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[:4]) {
		return 0, nil, fmt.Errorf("repl: CRC mismatch at LSN %d", lsn)
	}
	if r, err = wal.DecodeRecord(payload); err != nil {
		return 0, nil, fmt.Errorf("repl: frame at LSN %d: %w", lsn, err)
	}
	d.rest = b[4:]
	d.last = lsn
	return lsn, r, nil
}
