package repl

import (
	"crypto/sha256"
	"io"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/wal"
)

// sampleRecords covers every record kind.
func sampleRecords() []*wal.Record {
	h := sha256.Sum256([]byte("file bytes"))
	return []*wal.Record{
		{Kind: wal.KindMutate, Name: "R", Added: []relation.Pair{{X: 1, Y: 2}, {X: -3, Y: 4}}, Removed: []relation.Pair{{X: 9, Y: 9}}},
		{Kind: wal.KindRegister, Name: "S", Pairs: []relation.Pair{{X: 5, Y: 6}}},
		{Kind: wal.KindDrop, Name: "T"},
		{Kind: wal.KindRegisterView, Name: "V", Query: "V(x,z) :- R(x,y), S(y,z)"},
		{Kind: wal.KindDropView, Name: "V"},
		{Kind: wal.KindRegisterFile, Name: "F", Path: "/data/f.jmmr", Hash: h[:], Tuples: 42},
	}
}

// encodeStream builds a valid stream of recs at consecutive LSNs from start.
func encodeStream(t testing.TB, start uint64, recs []*wal.Record) []byte {
	buf := AppendMagic(nil)
	var err error
	for i, r := range recs {
		if buf, err = AppendFrame(buf, start+uint64(i), r); err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	return buf
}

// decodeAll drains a stream, failing on any mid-stream error.
func decodeAll(t testing.TB, data []byte) []ShippedRecord {
	dec, err := NewDecoder(data)
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	var out []ShippedRecord
	for {
		lsn, r, err := dec.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out = append(out, ShippedRecord{LSN: lsn, Record: r})
	}
}

func TestWireRoundTrip(t *testing.T) {
	recs := sampleRecords()
	stream := encodeStream(t, 7, recs)
	got := decodeAll(t, stream)
	if len(got) != len(recs) {
		t.Fatalf("decoded %d records, want %d", len(got), len(recs))
	}
	for i, sr := range got {
		if sr.LSN != 7+uint64(i) {
			t.Errorf("record %d: LSN %d, want %d", i, sr.LSN, 7+uint64(i))
		}
		if !reflect.DeepEqual(sr.Record, recs[i]) {
			t.Errorf("record %d: %+v != %+v", i, sr.Record, recs[i])
		}
	}
}

func TestWireEmptyStream(t *testing.T) {
	got := decodeAll(t, AppendMagic(nil))
	if len(got) != 0 {
		t.Fatalf("decoded %d records from empty stream", len(got))
	}
}

func TestWireRejectsBadMagic(t *testing.T) {
	for _, data := range [][]byte{nil, []byte("JMM"), []byte("XXXXXXXX")} {
		if _, err := NewDecoder(data); err == nil {
			t.Errorf("NewDecoder(%q): no error", data)
		}
	}
}

func TestWireErrorsLoudly(t *testing.T) {
	stream := encodeStream(t, 1, sampleRecords())
	// Truncation at every cut point inside the frame section must yield an
	// error from Next, never a silent clean EOF (unless the cut lands
	// exactly on a frame boundary).
	boundaries := map[int]bool{len(stream): true}
	{
		buf := AppendMagic(nil)
		boundaries[len(buf)] = true
		for i, r := range sampleRecords() {
			var err error
			if buf, err = AppendFrame(buf, 1+uint64(i), r); err != nil {
				t.Fatal(err)
			}
			boundaries[len(buf)] = true
		}
	}
	for cut := len(Magic); cut < len(stream); cut++ {
		dec, err := NewDecoder(stream[:cut])
		if err != nil {
			t.Fatalf("cut %d: NewDecoder: %v", cut, err)
		}
		var sawErr bool
		for {
			_, _, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				sawErr = true
				break
			}
		}
		if sawErr == boundaries[cut] {
			t.Fatalf("cut %d: error=%v, want error=%v", cut, sawErr, !boundaries[cut])
		}
	}
	// A flipped payload byte must fail the CRC.
	corrupt := append([]byte(nil), stream...)
	corrupt[len(Magic)+3] ^= 0xff
	dec, err := NewDecoder(corrupt)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.Next(); err == nil {
		t.Fatal("corrupt frame decoded cleanly")
	}
}

func TestWireRejectsNonMonotonicLSN(t *testing.T) {
	recs := sampleRecords()[:1]
	buf := encodeStream(t, 5, recs)
	var err error
	if buf, err = AppendFrame(buf, 5, recs[0]); err != nil { // repeat LSN 5
		t.Fatal(err)
	}
	dec, err := NewDecoder(buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.Next(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := dec.Next(); err == nil {
		t.Fatal("repeated LSN decoded cleanly")
	}
}

func TestAppendFrameRejectsZeroLSN(t *testing.T) {
	if _, err := AppendFrame(nil, 0, sampleRecords()[0]); err == nil {
		t.Fatal("zero LSN encoded cleanly")
	}
}

// FuzzReplDecode asserts the wire decoder never panics, errors loudly on
// damage, and round-trips whatever it accepts: any stream that decodes
// cleanly must re-encode and decode to the same records.
func FuzzReplDecode(f *testing.F) {
	f.Add(encodeStream(f, 1, sampleRecords()))
	f.Add(AppendMagic(nil))
	f.Add([]byte("JMMREPL1\x01\x02"))
	f.Add([]byte("not a stream"))
	trunc := encodeStream(f, 3, sampleRecords())
	f.Add(trunc[:len(trunc)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := NewDecoder(data)
		if err != nil {
			return
		}
		var recs []ShippedRecord
		for {
			lsn, r, err := dec.Next()
			if err != nil {
				if err == io.EOF {
					break
				}
				return // damaged mid-stream: loud error, nothing to round-trip
			}
			recs = append(recs, ShippedRecord{LSN: lsn, Record: r})
		}
		// Accepted streams must round-trip semantically. (Byte equality is
		// too strong: uvarints admit non-minimal encodings on input.)
		buf := AppendMagic(nil)
		for _, sr := range recs {
			if buf, err = AppendFrame(buf, sr.LSN, sr.Record); err != nil {
				t.Fatalf("re-encoding accepted record at LSN %d: %v", sr.LSN, err)
			}
		}
		dec2, err := NewDecoder(buf)
		if err != nil {
			t.Fatalf("re-decoding re-encoded stream: %v", err)
		}
		for i := 0; ; i++ {
			lsn, r, err := dec2.Next()
			if err == io.EOF {
				if i != len(recs) {
					t.Fatalf("round trip lost records: %d of %d", i, len(recs))
				}
				break
			}
			if err != nil {
				t.Fatalf("round trip record %d: %v", i, err)
			}
			if lsn != recs[i].LSN || !reflect.DeepEqual(r, recs[i].Record) {
				t.Fatalf("round trip record %d diverged", i)
			}
		}
	})
}
