package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/snapshot"
	"repro/internal/wal"
)

// Protocol errors a follower reacts to by re-bootstrapping.
var (
	// ErrTruncatedHistory means the requested LSN is below the primary's
	// retained WAL history (a checkpoint truncated it): re-bootstrap from a
	// snapshot.
	ErrTruncatedHistory = errors.New("repl: requested LSN below retained history")
	// ErrAhead means the follower has applied records the primary does not
	// have (e.g. the primary restarted after losing an unsynced tail):
	// re-bootstrap from a snapshot.
	ErrAhead = errors.New("repl: follower ahead of primary")
)

// Client fetches snapshots and record streams from a primary's Source.
type Client struct {
	// Base is the primary's base URL, e.g. "http://primary:8080".
	Base string
	// HTTP is the transport; nil means a default client with a 30s timeout.
	HTTP *http.Client

	// Request-ID minting: every pull carries an X-Request-Id the primary's
	// instrumented routes honor, so a follower's fetches correlate in the
	// primary's access and slow-query logs instead of arriving anonymous.
	// The prefix is derived from the first request's wall time, matching the
	// server's own boot-prefixed ID shape.
	ridPrefix string
	ridOnce   sync.Once
	ridSeq    atomic.Uint64
}

// nextRequestID mints a correlation ID for one pull, e.g.
// "repl-1a2b3c4d-000042".
func (c *Client) nextRequestID() string {
	c.ridOnce.Do(func() {
		c.ridPrefix = fmt.Sprintf("repl-%08x", uint32(time.Now().UnixNano()))
	})
	return fmt.Sprintf("%s-%06d", c.ridPrefix, c.ridSeq.Add(1))
}

// defaultHTTP bounds a hung primary: responses are capped server-side, so a
// healthy round trip is far below this.
var defaultHTTP = &http.Client{Timeout: 30 * time.Second}

// maxBodyBytes caps a response read client-side (a sane multiple of the
// source's default response cap; snapshots can be larger but are bounded by
// the same order of magnitude as the state itself).
const maxBodyBytes = 1 << 30

// ShippedRecord is one (LSN, record) pair from a segment stream.
type ShippedRecord struct {
	LSN    uint64
	Record *wal.Record
}

// Batch is one segment-stream response.
type Batch struct {
	// Records are the shipped records, contiguous from the requested LSN.
	Records []ShippedRecord
	// PrimaryNext is the primary's next LSN at serve time; the follower's
	// lag is PrimaryNext-1 minus its applied LSN.
	PrimaryNext uint64
}

// Bootstrap is a fetched snapshot image for follower bootstrap.
type Bootstrap struct {
	// State is the decoded snapshot.
	State *snapshot.State
	// PrimaryNext is the primary's next LSN at serve time.
	PrimaryNext uint64
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTP
}

// get issues one GET and returns the full body plus headers, mapping the
// protocol status codes to their sentinel errors.
func (c *Client) get(ctx context.Context, path string) ([]byte, http.Header, error) {
	u := strings.TrimRight(c.Base, "/") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("repl: %w", err)
	}
	req.Header.Set("X-Request-Id", c.nextRequestID())
	resp, err := c.http().Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("repl: %w", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, nil, fmt.Errorf("repl: reading %s: %w", path, err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return body, resp.Header, nil
	case http.StatusGone:
		return nil, nil, ErrTruncatedHistory
	case http.StatusRequestedRangeNotSatisfiable:
		return nil, nil, ErrAhead
	default:
		return nil, nil, fmt.Errorf("repl: %s: %s: %s", path, resp.Status, strings.TrimSpace(string(body)))
	}
}

// headerLSN parses a required uint64 header.
func headerLSN(h http.Header, name string) (uint64, error) {
	v, err := strconv.ParseUint(h.Get(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: missing or malformed %s header: %q", name, h.Get(name))
	}
	return v, nil
}

// Snapshot fetches and decodes the primary's bootstrap snapshot.
func (c *Client) Snapshot(ctx context.Context) (*Bootstrap, error) {
	clientSnapshots.Inc()
	body, h, err := c.get(ctx, "/repl/snapshot")
	if err != nil {
		return nil, err
	}
	st, err := snapshot.Decode(body)
	if err != nil {
		return nil, fmt.Errorf("repl: snapshot: %w", err)
	}
	applied, err := headerLSN(h, HeaderAppliedLSN)
	if err != nil {
		return nil, err
	}
	if applied != st.AppliedLSN {
		return nil, fmt.Errorf("repl: snapshot header LSN %d disagrees with image LSN %d", applied, st.AppliedLSN)
	}
	next, err := headerLSN(h, HeaderNextLSN)
	if err != nil {
		return nil, err
	}
	return &Bootstrap{State: st, PrimaryNext: next}, nil
}

// Fetch requests the record stream starting at from (≥ 1). The decoded
// records are validated to be contiguous from exactly that LSN; any gap,
// corruption, or truncation is an error, never a silently short batch.
// An empty Records with PrimaryNext == from means caught up.
func (c *Client) Fetch(ctx context.Context, from uint64) (*Batch, error) {
	clientPolls.Inc()
	body, h, err := c.get(ctx, "/repl/segments?from="+strconv.FormatUint(from, 10))
	if err != nil {
		if !errors.Is(err, ErrTruncatedHistory) && !errors.Is(err, ErrAhead) {
			clientPollErrors.Inc()
		}
		return nil, err
	}
	next, err := headerLSN(h, HeaderNextLSN)
	if err != nil {
		clientPollErrors.Inc()
		return nil, err
	}
	dec, err := NewDecoder(body)
	if err != nil {
		clientPollErrors.Inc()
		return nil, err
	}
	b := &Batch{PrimaryNext: next}
	want := from
	for {
		lsn, r, err := dec.Next()
		if err == io.EOF {
			return b, nil
		}
		if err != nil {
			clientPollErrors.Inc()
			return nil, err
		}
		if lsn != want {
			clientPollErrors.Inc()
			return nil, fmt.Errorf("repl: gap in stream: want LSN %d, got %d", want, lsn)
		}
		b.Records = append(b.Records, ShippedRecord{LSN: lsn, Record: r})
		want++
	}
}

// Status fetches the primary's /repl/status document.
func (c *Client) Status(ctx context.Context) (*SourceStatus, error) {
	body, _, err := c.get(ctx, "/repl/status")
	if err != nil {
		return nil, err
	}
	var st SourceStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return nil, fmt.Errorf("repl: status: %w", err)
	}
	return &st, nil
}

// ValidateBase checks a primary URL flag value early, before the follower
// starts polling it.
func ValidateBase(base string) error {
	u, err := url.Parse(base)
	if err != nil {
		return fmt.Errorf("repl: primary URL: %w", err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("repl: primary URL %q: want http:// or https://", base)
	}
	if u.Host == "" {
		return fmt.Errorf("repl: primary URL %q: missing host", base)
	}
	return nil
}
