package repl

import "repro/internal/obs"

// Replication wire metrics. The primary-side counters measure what the
// Source ships; the client-side counters measure the follower's poll loop.
// Follower apply/lag gauges live in internal/core (the replica owns them).
var (
	sourceRequests = obs.Default().CounterVec(
		"joinmm_repl_source_requests_total",
		"Replication source HTTP requests served, by endpoint and outcome.",
		"endpoint", "code")
	sourceRecordsShipped = obs.Default().Counter(
		"joinmm_repl_source_records_shipped_total",
		"WAL records shipped to followers.")
	sourceBytesShipped = obs.Default().Counter(
		"joinmm_repl_source_bytes_shipped_total",
		"Framed bytes shipped to followers (segment streams, excluding snapshots).")
	clientPolls = obs.Default().Counter(
		"joinmm_repl_client_polls_total",
		"Segment-stream fetches issued by the replication client.")
	clientPollErrors = obs.Default().Counter(
		"joinmm_repl_client_poll_errors_total",
		"Segment-stream fetches that failed (transport, decode, or server error).")
	clientSnapshots = obs.Default().Counter(
		"joinmm_repl_client_snapshots_total",
		"Snapshot bootstraps fetched by the replication client.")
)
