// Package govern enforces per-query resource budgets. A Budget caps the
// rows and bytes a single query may materialize; the executor charges it at
// every materialization point (intermediate folds, join outputs, final
// result assembly) and aborts with ErrBudgetExceeded the moment a cap is
// crossed — turning an output-size explosion into a typed client error
// (HTTP 422) instead of an OOM kill. Budgets ride the query context, so
// view refreshes and nested evaluation inherit the caller's budget
// automatically.
//
// The charge path is two atomic adds and two compares; a nil *Budget
// charges nothing, so unbudgeted paths stay free.
package govern

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// ErrBudgetExceeded is returned (wrapped) when a query crosses its memory
// budget. Servers map it to HTTP 422.
var ErrBudgetExceeded = errors.New("query memory budget exceeded")

// Budget tracks one query's materialized rows and bytes against caps. All
// methods are safe for concurrent use and safe on a nil receiver (no-op).
type Budget struct {
	maxRows  int64 // 0 = unlimited
	maxBytes int64 // 0 = unlimited
	rows     atomic.Int64
	bytes    atomic.Int64
	tripped  atomic.Bool
}

// New returns a budget capping materialized bytes and rows; zero means
// unlimited for that dimension. A fully unlimited budget returns nil.
func New(maxBytes, maxRows int64) *Budget {
	if maxBytes <= 0 && maxRows <= 0 {
		return nil
	}
	return &Budget{maxRows: maxRows, maxBytes: maxBytes}
}

// Charge records rows materialized rows occupying bytes bytes. It returns
// a wrapped ErrBudgetExceeded once either cap is crossed; the first charge
// that crosses still counts, so Used reports what was actually allocated.
func (b *Budget) Charge(rows, bytes int64) error {
	if b == nil {
		return nil
	}
	r := b.rows.Add(rows)
	by := b.bytes.Add(bytes)
	if b.maxRows > 0 && r > b.maxRows {
		b.noteTrip()
		return fmt.Errorf("%w: %d rows materialized (cap %d)", ErrBudgetExceeded, r, b.maxRows)
	}
	if b.maxBytes > 0 && by > b.maxBytes {
		b.noteTrip()
		return fmt.Errorf("%w: %d bytes materialized (cap %d)", ErrBudgetExceeded, by, b.maxBytes)
	}
	return nil
}

// noteTrip counts this budget's first cap crossing.
func (b *Budget) noteTrip() {
	if b.tripped.CompareAndSwap(false, true) {
		budgetTrips.Inc()
	}
}

// ChargeRows charges rows with an estimated byte footprint of rowBytes
// each.
func (b *Budget) ChargeRows(rows int64, rowBytes int64) error {
	if b == nil {
		return nil
	}
	return b.Charge(rows, rows*rowBytes)
}

// Used reports the rows and bytes charged so far.
func (b *Budget) Used() (rows, bytes int64) {
	if b == nil {
		return 0, 0
	}
	return b.rows.Load(), b.bytes.Load()
}

// budgetKey keys the context value.
type budgetKey struct{}

// WithBudget attaches b to ctx; a nil b returns ctx unchanged.
func WithBudget(ctx context.Context, b *Budget) context.Context {
	if b == nil {
		return ctx
	}
	return context.WithValue(ctx, budgetKey{}, b)
}

// FromContext returns the budget riding ctx, or nil (charge-nothing).
func FromContext(ctx context.Context) *Budget {
	b, _ := ctx.Value(budgetKey{}).(*Budget)
	return b
}
