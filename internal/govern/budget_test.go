package govern

import (
	"context"
	"errors"
	"sync"
	"testing"
)

func TestNilBudgetIsFree(t *testing.T) {
	var b *Budget
	if err := b.Charge(1<<40, 1<<40); err != nil {
		t.Fatal(err)
	}
	r, by := b.Used()
	if r != 0 || by != 0 {
		t.Fatal("nil budget tracked usage")
	}
	if New(0, 0) != nil {
		t.Fatal("fully unlimited budget should be nil")
	}
}

func TestRowCap(t *testing.T) {
	b := New(0, 10)
	if err := b.Charge(10, 0); err != nil {
		t.Fatalf("at cap: %v", err)
	}
	if err := b.Charge(1, 0); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over cap: %v", err)
	}
}

func TestByteCap(t *testing.T) {
	b := New(1024, 0)
	if err := b.ChargeRows(64, 16); err != nil {
		t.Fatalf("at cap: %v", err)
	}
	if err := b.Charge(0, 1); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over cap: %v", err)
	}
	rows, bytes := b.Used()
	if rows != 64 || bytes != 1025 {
		t.Fatalf("Used = %d rows, %d bytes", rows, bytes)
	}
}

func TestConcurrentCharges(t *testing.T) {
	b := New(0, 1000)
	var wg sync.WaitGroup
	var exceeded sync.Once
	hit := false
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := b.Charge(1, 0); err != nil {
					exceeded.Do(func() { hit = true })
					return
				}
			}
		}()
	}
	wg.Wait()
	if !hit {
		t.Fatal("1600 concurrent charges against a 1000-row cap never tripped")
	}
}

func TestContextThreading(t *testing.T) {
	ctx := context.Background()
	if FromContext(ctx) != nil {
		t.Fatal("empty ctx should carry no budget")
	}
	if WithBudget(ctx, nil) != ctx {
		t.Fatal("nil budget should not wrap ctx")
	}
	b := New(1<<20, 0)
	ctx = WithBudget(ctx, b)
	if FromContext(ctx) != b {
		t.Fatal("budget lost in ctx")
	}
}
