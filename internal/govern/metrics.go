package govern

import "repro/internal/obs"

// budgetTrips counts queries killed by their budget — one bump per Budget,
// not per failed Charge, since the executor keeps charging (and failing)
// while an abort propagates through nested operators.
var budgetTrips = obs.Default().Counter(
	"joinmm_budget_trips_total",
	"Queries aborted by a materialization budget (rows or bytes cap crossed).")
