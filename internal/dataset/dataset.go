// Package dataset generates the synthetic workloads used by the benchmark
// harness.
//
// The paper evaluates on six real datasets (Table 2) ranging from 1.5M to
// 900M tuples. Those datasets are not redistributable and are far beyond
// laptop-scale for a reproduction, so this package builds seeded synthetic
// stand-ins that preserve the properties the paper's conclusions depend on:
//
//   - DBLP, RoadNet: sparse, small sets, low skew — the shapes where the
//     optimizer should fall back to a plain worst-case optimal join.
//   - Jokes, Words: dense bipartite graphs with Zipf-skewed element
//     popularity and large sets — high duplication in the join result.
//   - Protein, Image: very dense, clustered (near-clique blocks) — the
//     shapes where matrix multiplication wins by the largest factors and
//     where EmptyHeaded-style bitset engines are competitive.
//
// Every generator is deterministic in its seed, and sizes scale linearly
// with the scale parameter (scale 1.0 ≈ 10³–10⁴× smaller than the paper).
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/relation"
)

// Names lists the six Table-2 dataset shapes in the paper's order.
func Names() []string {
	return []string{"RoadNet", "DBLP", "Jokes", "Words", "Protein", "Image"}
}

// ByName generates the named dataset shape at the given scale. Scale 1.0 is
// the default benchmarking size (hundreds of thousands of tuples at most).
func ByName(name string, scale float64) (*relation.Relation, error) {
	switch name {
	case "DBLP":
		return DBLP(scale), nil
	case "RoadNet":
		return RoadNet(scale), nil
	case "Jokes":
		return Jokes(scale), nil
	case "Words":
		return Words(scale), nil
	case "Protein":
		return Protein(scale), nil
	case "Image":
		return Image(scale), nil
	default:
		return nil, fmt.Errorf("dataset: unknown dataset %q", name)
	}
}

// All generates every Table-2 shape at the given scale, keyed by name.
func All(scale float64) map[string]*relation.Relation {
	out := make(map[string]*relation.Relation, 6)
	for _, n := range Names() {
		r, err := ByName(n, scale)
		if err != nil {
			panic(err) // unreachable: Names and ByName agree
		}
		out[n] = r
	}
	return out
}

func scaled(base int, scale float64) int {
	v := int(math.Round(float64(base) * scale))
	if v < 1 {
		return 1
	}
	return v
}

// DBLP mimics the author–paper bipartite graph: many small sets (avg ≈ 6.6
// elements), a large element domain, moderate skew. Sparse: the optimizer
// should choose the plain WCOJ plan here, as the paper observes.
func DBLP(scale float64) *relation.Relation {
	return zipfBipartite(zipfParams{
		name:     "DBLP",
		numSets:  scaled(15000, scale),
		domain:   scaled(30000, scale),
		minSize:  1,
		maxSize:  scaled(60, scale),
		sizeExp:  4.0, // strongly skewed toward small sets, avg ≈ 6–8
		elemSkew: 0,   // uniform paper popularity: sparse join, like the real DBLP
		seed:     101,
	})
}

// RoadNet mimics the Pennsylvania road network: node–node edges with tiny
// degrees (avg 1.5, max 20). The sparsest shape.
func RoadNet(scale float64) *relation.Relation {
	n := scaled(12000, scale)
	rng := rand.New(rand.NewSource(202))
	ps := make([]relation.Pair, 0, n*2)
	for i := 0; i < n; i++ {
		// 1–3 edges to nearby nodes: grid-like locality, low degree.
		deg := 1 + rng.Intn(3)
		for d := 0; d < deg; d++ {
			j := i + 1 + rng.Intn(8)
			if j >= n {
				j = rng.Intn(n)
			}
			ps = append(ps, relation.Pair{X: int32(i), Y: int32(j)})
		}
	}
	return relation.FromPairs("RoadNet", ps)
}

// Jokes mimics the joke–word graph: few sets, each covering a large
// fraction (≈11%) of a modest domain, with heavy element skew. Dense.
func Jokes(scale float64) *relation.Relation {
	return zipfBipartite(zipfParams{
		name:     "Jokes",
		numSets:  scaled(700, scale),
		domain:   scaled(2500, scale),
		minSize:  scaled(65, scale),
		maxSize:  scaled(500, scale),
		sizeExp:  1.1,
		elemSkew: 1.25,
		seed:     303,
	})
}

// Words mimics the document–token graph: many sets over a compact token
// domain, so element (y) degrees are very heavy while most sets stay small.
func Words(scale float64) *relation.Relation {
	return zipfBipartite(zipfParams{
		name:     "Words",
		numSets:  scaled(4000, scale),
		domain:   scaled(1500, scale),
		minSize:  1,
		maxSize:  scaled(500, scale),
		sizeExp:  1.6,
		elemSkew: 1.15,
		seed:     404,
	})
}

// Protein mimics the protein-interaction graph: dense clustered structure
// with large minimum set sizes.
func Protein(scale float64) *relation.Relation {
	return clusteredBipartite(clusterParams{
		name:     "Protein",
		numSets:  scaled(600, scale),
		domain:   scaled(1600, scale),
		clusters: 6,
		minSize:  scaled(100, scale),
		maxSize:  scaled(700, scale),
		noise:    0.15,
		seed:     505,
	})
}

// Image mimics the image–feature graph: near-clique blocks (every set in a
// cluster shares most of the cluster's features), the densest shape and the
// one where the paper notes "the output is close to a clique".
func Image(scale float64) *relation.Relation {
	return clusteredBipartite(clusterParams{
		name:     "Image",
		numSets:  scaled(600, scale),
		domain:   scaled(2000, scale),
		clusters: 4,
		minSize:  scaled(300, scale),
		maxSize:  scaled(450, scale),
		noise:    0.05,
		seed:     606,
	})
}

type zipfParams struct {
	name             string
	numSets, domain  int
	minSize, maxSize int
	sizeExp          float64 // size ~ min + (max-min)·u^sizeExp: larger → smaller sets
	elemSkew         float64 // Zipf exponent for element popularity (> 1)
	seed             int64
}

// nestedFraction is the share of sets generated as exact subsets of an
// earlier set. Real set-valued data (keyword sets, feature sets, interaction
// sets) contains genuine containment structure — it is what the paper's SCJ
// experiments measure — while independent random draws of large sets almost
// never contain one another.
const nestedFraction = 0.15

// subsetOf draws a random nonempty proper subset of the given set.
func subsetOf(rng *rand.Rand, set []int32) []int32 {
	if len(set) <= 1 {
		return append([]int32(nil), set...)
	}
	k := 1 + rng.Intn(len(set)-1)
	perm := rng.Perm(len(set))
	out := make([]int32, 0, k)
	for _, i := range perm[:k] {
		out = append(out, set[i])
	}
	return out
}

// zipfBipartite draws each set's size from a power-law between min and max
// and fills it with Zipf-distributed elements; a fraction of sets are exact
// subsets of earlier sets (see nestedFraction).
func zipfBipartite(p zipfParams) *relation.Relation {
	rng := rand.New(rand.NewSource(p.seed))
	if p.maxSize > p.domain {
		p.maxSize = p.domain
	}
	if p.minSize < 1 {
		p.minSize = 1
	}
	if p.minSize > p.maxSize {
		p.minSize = p.maxSize
	}
	// elemSkew > 1 draws elements from a Zipf; ≤ 1 draws uniformly (the
	// near-uniform popularity of, e.g., papers in a bibliography).
	var draw func() int32
	if p.elemSkew > 1 {
		zipf := rand.NewZipf(rng, p.elemSkew, 1, uint64(p.domain-1))
		draw = func() int32 { return int32(zipf.Uint64()) }
	} else {
		draw = func() int32 { return int32(rng.Intn(p.domain)) }
	}
	ps := make([]relation.Pair, 0, p.numSets*(p.minSize+p.maxSize)/2)
	var history [][]int32
	for s := 0; s < p.numSets; s++ {
		if len(history) > 0 && rng.Float64() < nestedFraction {
			base := history[rng.Intn(len(history))]
			for _, e := range subsetOf(rng, base) {
				ps = append(ps, relation.Pair{X: int32(s), Y: e})
			}
			continue
		}
		size := p.minSize + int(float64(p.maxSize-p.minSize)*math.Pow(rng.Float64(), p.sizeExp))
		seen := make(map[int32]struct{}, size)
		attempts := 0
		for len(seen) < size && attempts < 6*size {
			seen[draw()] = struct{}{}
			attempts++
		}
		// Top up with uniform draws if the Zipf head saturated.
		for len(seen) < size {
			seen[int32(rng.Intn(p.domain))] = struct{}{}
		}
		set := make([]int32, 0, len(seen))
		for e := range seen {
			ps = append(ps, relation.Pair{X: int32(s), Y: e})
			set = append(set, e)
		}
		if len(history) < 64 {
			// Sort before storing: map iteration order is randomized, and
			// the subset draws must be deterministic in the seed.
			sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
			history = append(history, set)
		}
	}
	return relation.FromPairs(p.name, ps)
}

type clusterParams struct {
	name             string
	numSets, domain  int
	clusters         int
	minSize, maxSize int
	noise            float64 // fraction of each set drawn outside its cluster
	seed             int64
}

// clusteredBipartite assigns each set to a cluster of the element domain and
// draws most of its elements from that cluster, producing near-clique blocks
// in the join result.
func clusteredBipartite(p clusterParams) *relation.Relation {
	rng := rand.New(rand.NewSource(p.seed))
	if p.maxSize > p.domain {
		p.maxSize = p.domain
	}
	if p.minSize < 1 {
		p.minSize = 1
	}
	if p.minSize > p.maxSize {
		p.minSize = p.maxSize
	}
	clusterSize := p.domain / p.clusters
	if clusterSize < 1 {
		clusterSize = 1
	}
	ps := make([]relation.Pair, 0, p.numSets*(p.minSize+p.maxSize)/2)
	var history [][]int32
	for s := 0; s < p.numSets; s++ {
		if len(history) > 0 && rng.Float64() < nestedFraction {
			base := history[rng.Intn(len(history))]
			for _, e := range subsetOf(rng, base) {
				ps = append(ps, relation.Pair{X: int32(s), Y: e})
			}
			continue
		}
		c := rng.Intn(p.clusters)
		lo := c * clusterSize
		size := p.minSize + rng.Intn(p.maxSize-p.minSize+1)
		if size > clusterSize {
			size = clusterSize
		}
		seen := make(map[int32]struct{}, size)
		for len(seen) < size {
			var e int32
			if rng.Float64() < p.noise {
				e = int32(rng.Intn(p.domain))
			} else {
				e = int32(lo + rng.Intn(clusterSize))
			}
			seen[e] = struct{}{}
		}
		set := make([]int32, 0, len(seen))
		for e := range seen {
			ps = append(ps, relation.Pair{X: int32(s), Y: e})
			set = append(set, e)
		}
		if len(history) < 64 {
			// Sort before storing: map iteration order is randomized, and
			// the subset draws must be deterministic in the seed.
			sort.Slice(set, func(a, b int) bool { return set[a] < set[b] })
			history = append(history, set)
		}
	}
	return relation.FromPairs(p.name, ps)
}

// Community builds the Example-1 instance: a social graph with a constant
// number of communities of ≈√N users each, where most user pairs inside a
// community are connected. The full 2-path join is Θ(N^{3/2}) while the
// projected output is Θ(N).
func Community(n int, communities int, seed int64) *relation.Relation {
	if communities < 1 {
		communities = 1
	}
	rng := rand.New(rand.NewSource(seed))
	perCommunity := int(math.Sqrt(float64(n)))
	if perCommunity < 2 {
		perCommunity = 2
	}
	ps := make([]relation.Pair, 0, n)
	user := int32(0)
	for len(ps) < n {
		members := make([]int32, perCommunity)
		for i := range members {
			members[i] = user
			user++
		}
		for i := 0; i < perCommunity && len(ps) < n; i++ {
			for j := 0; j < perCommunity && len(ps) < n; j++ {
				if i != j && rng.Float64() < 0.8 {
					ps = append(ps, relation.Pair{X: members[i], Y: members[j]})
				}
			}
		}
		_ = communities // community count is implied by n/perCommunity²
	}
	return relation.FromPairs("Community", ps)
}

// Sample returns a relation keeping each tuple independently with
// probability frac — the paper samples relations for the star-query
// experiments so the join fits in memory.
func Sample(r *relation.Relation, frac float64, seed int64) *relation.Relation {
	if frac >= 1 {
		return r
	}
	rng := rand.New(rand.NewSource(seed))
	var ps []relation.Pair
	for _, p := range r.Pairs() {
		if rng.Float64() < frac {
			ps = append(ps, p)
		}
	}
	return relation.FromPairs(r.Name()+"_sample", ps)
}

// Table2 renders the Table-2 statistics for the given scale, in the paper's
// dataset order.
func Table2(scale float64) string {
	out := fmt.Sprintf("%-10s %10s %10s %10s %12s %12s %12s\n",
		"Dataset", "|R|", "Sets", "|dom|", "AvgSetSize", "MinSetSize", "MaxSetSize")
	for _, n := range Names() {
		r, _ := ByName(n, scale)
		s := r.Stats()
		out += fmt.Sprintf("%-10s %10d %10d %10d %12.1f %12d %12d\n",
			n, s.Tuples, s.NumSets, s.DomainSize, s.AvgSetSize, s.MinSetSize, s.MaxSetSize)
	}
	return out
}

// SetFamily converts a relation into the explicit family-of-sets view used
// by the SSJ and SCJ algorithms: setIDs in ascending order, each with its
// sorted element list.
func SetFamily(r *relation.Relation) (ids []int32, sets [][]int32) {
	ix := r.ByX()
	ids = make([]int32, ix.NumKeys())
	sets = make([][]int32, ix.NumKeys())
	for i := 0; i < ix.NumKeys(); i++ {
		ids[i] = ix.Key(i)
		sets[i] = ix.List(i)
	}
	return ids, sets
}

// SortedByY returns distinct y values of r sorted ascending by their degree.
// Useful for inspecting skew in tests and the harness.
func SortedByY(r *relation.Relation) []int32 {
	ys := append([]int32(nil), r.ByY().Keys()...)
	sort.Slice(ys, func(i, j int) bool {
		return len(r.ByY().Lookup(ys[i])) < len(r.ByY().Lookup(ys[j]))
	})
	return ys
}
