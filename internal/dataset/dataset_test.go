package dataset

import (
	"strings"
	"testing"

	"repro/internal/relation"
)

func TestNamesAndByName(t *testing.T) {
	for _, n := range Names() {
		r, err := ByName(n, 0.1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", n, err)
		}
		if r.Size() == 0 {
			t.Fatalf("dataset %q is empty", n)
		}
		if r.Name() != n {
			t.Fatalf("dataset name = %q, want %q", r.Name(), n)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestDeterminism(t *testing.T) {
	for _, n := range Names() {
		a, _ := ByName(n, 0.1)
		b, _ := ByName(n, 0.1)
		if a.Size() != b.Size() {
			t.Fatalf("%s: sizes differ across runs: %d vs %d", n, a.Size(), b.Size())
		}
		ap, bp := a.Pairs(), b.Pairs()
		for i := range ap {
			if ap[i] != bp[i] {
				t.Fatalf("%s: pair %d differs: %v vs %v", n, i, ap[i], bp[i])
			}
		}
	}
}

func TestShapesMatchPaperQualitatively(t *testing.T) {
	scale := 0.5
	stats := map[string]relation.Stats{}
	for _, n := range Names() {
		r, _ := ByName(n, scale)
		stats[n] = r.Stats()
	}
	// Sparse shapes have small average set size.
	if stats["RoadNet"].AvgSetSize > 4 {
		t.Fatalf("RoadNet avg set size %.1f too large", stats["RoadNet"].AvgSetSize)
	}
	if stats["DBLP"].AvgSetSize > 40 {
		t.Fatalf("DBLP avg set size %.1f too large", stats["DBLP"].AvgSetSize)
	}
	// Dense shapes: average set covers a noticeable fraction of the domain.
	for _, n := range []string{"Jokes", "Protein", "Image"} {
		frac := stats[n].AvgSetSize / float64(stats[n].DomainSize)
		if frac < 0.02 {
			t.Fatalf("%s density %.4f too low for a dense shape", n, frac)
		}
	}
	// Image has very large sets on average (paper: avg 11.4K of dom 50K).
	// The minimum is no longer informative because a fraction of sets are
	// generated as subsets of earlier sets (containment structure).
	if f := stats["Image"].AvgSetSize / float64(stats["Image"].DomainSize); f < 0.1 {
		t.Fatalf("Image avg set fraction %.4f too low", f)
	}
	// Words has many more sets than Jokes (paper: 1M vs 70K).
	if stats["Words"].NumSets <= stats["Jokes"].NumSets {
		t.Fatal("Words should have more sets than Jokes")
	}
}

func TestScaleChangesSize(t *testing.T) {
	small, _ := ByName("DBLP", 0.05)
	big, _ := ByName("DBLP", 0.2)
	if big.Size() <= small.Size() {
		t.Fatalf("scale 0.2 size %d not larger than scale 0.05 size %d", big.Size(), small.Size())
	}
}

func TestCommunityShape(t *testing.T) {
	n := 2000
	r := Community(n, 4, 7)
	if r.Size() == 0 {
		t.Fatal("empty community graph")
	}
	// The projected 2-path output should be much smaller than the full join
	// (Example 1: |OUT⋈| = Θ(N^1.5), |OUT| = Θ(N)).
	full := relation.FullJoinSize(r, r)
	if full <= int64(r.Size()) {
		t.Fatalf("community full join %d not larger than input %d", full, r.Size())
	}
}

func TestSample(t *testing.T) {
	r, _ := ByName("Words", 0.2)
	s := Sample(r, 0.3, 1)
	if s.Size() == 0 || s.Size() >= r.Size() {
		t.Fatalf("sample size %d out of range (orig %d)", s.Size(), r.Size())
	}
	if Sample(r, 1.0, 1) != r {
		t.Fatal("frac >= 1 should return the original relation")
	}
	// Sampled tuples must come from the original.
	for _, p := range s.Pairs()[:10] {
		if !r.Contains(p.X, p.Y) {
			t.Fatalf("sample invented tuple %v", p)
		}
	}
}

func TestTable2Renders(t *testing.T) {
	s := Table2(0.05)
	for _, n := range Names() {
		if !strings.Contains(s, n) {
			t.Fatalf("Table2 output missing %s:\n%s", n, s)
		}
	}
}

func TestSetFamily(t *testing.T) {
	r, _ := ByName("Jokes", 0.05)
	ids, sets := SetFamily(r)
	if len(ids) != len(sets) || len(ids) != r.NumX() {
		t.Fatalf("SetFamily sizes: ids=%d sets=%d numX=%d", len(ids), len(sets), r.NumX())
	}
	total := 0
	for i, s := range sets {
		total += len(s)
		for j := 1; j < len(s); j++ {
			if s[j] <= s[j-1] {
				t.Fatalf("set %d not strictly sorted", i)
			}
		}
	}
	if total != r.Size() {
		t.Fatalf("SetFamily total %d != relation size %d", total, r.Size())
	}
}

func TestSortedByY(t *testing.T) {
	r, _ := ByName("Words", 0.1)
	ys := SortedByY(r)
	if len(ys) != r.NumY() {
		t.Fatalf("SortedByY len %d != NumY %d", len(ys), r.NumY())
	}
	for i := 1; i < len(ys); i++ {
		if len(r.ByY().Lookup(ys[i-1])) > len(r.ByY().Lookup(ys[i])) {
			t.Fatal("SortedByY not ascending by degree")
		}
	}
}

func TestMinSizeRespectsDomain(t *testing.T) {
	// Tiny scale should not wedge generators whose min/max exceed the domain.
	for _, n := range Names() {
		r, err := ByName(n, 0.01)
		if err != nil || r.Size() == 0 {
			t.Fatalf("%s at tiny scale: err=%v size=%d", n, err, r.Size())
		}
	}
}
