package bsi

import (
	"math"

	"repro/internal/matrix"
	"repro/internal/relation"
)

// AnswerBatchAYZ answers a batch with the AYZ-style algorithm Section 3.3
// describes explicitly: a single degree threshold Δ splits the work —
// values with degree below Δ are handled by the standard join, while the
// residual heavy values are packed into rectangular matrices of dimensions
// (C/Δ) × (N/Δ) and (N/Δ) × (C/Δ), whose product is intersected with the
// query relation T. delta ≤ 0 selects the paper's Δ = C^{1/3}.
func AnswerBatchAYZ(r, s *relation.Relation, batch []Query, delta int) []bool {
	if len(batch) == 0 {
		return nil
	}
	if delta <= 0 {
		delta = int(math.Cbrt(float64(len(batch))))
		if delta < 1 {
			delta = 1
		}
	}
	// Filter to the batch constants (T's attribute domains).
	as := make([]int32, 0, len(batch))
	bs := make([]int32, 0, len(batch))
	for _, q := range batch {
		as = append(as, q.A)
		bs = append(bs, q.B)
	}
	rf := r.RestrictXSet(as)
	sf := s.RestrictXSet(bs)

	answered := make(map[[2]int32]bool, len(batch))
	inT := make(map[[2]int32]struct{}, len(batch))
	for _, q := range batch {
		inT[[2]int32{q.A, q.B}] = struct{}{}
	}

	// Heavy y values: degree above Δ in both filtered relations.
	ry, sy := rf.ByY(), sf.ByY()
	heavyY := map[int32]int{} // y → column id
	for i := 0; i < sy.NumKeys(); i++ {
		y := sy.Key(i)
		if sy.Degree(i) > delta && len(ry.Lookup(y)) > delta {
			heavyY[y] = len(heavyY)
		}
	}

	// Standard join over the light y values: enumerate R_y × S_y and keep
	// the pairs that appear in T.
	for i := 0; i < ry.NumKeys(); i++ {
		y := ry.Key(i)
		if _, heavy := heavyY[y]; heavy {
			continue
		}
		zl := sy.Lookup(y)
		if len(zl) == 0 {
			continue
		}
		for _, a := range ry.List(i) {
			for _, b := range zl {
				key := [2]int32{a, b}
				if _, ok := inT[key]; ok {
					answered[key] = true
				}
			}
		}
	}

	// Matrix part: pack the batch endpoints' heavy-y incidence as bit rows
	// and evaluate the residual queries with short-circuit row intersection
	// (the boolean product restricted to T).
	out := make([]bool, len(batch))
	if len(heavyY) > 0 {
		aRows, aIdx := packHeavyRows(rf, heavyY)
		bRows, bIdx := packHeavyRows(sf, heavyY)
		for i, q := range batch {
			key := [2]int32{q.A, q.B}
			if answered[key] {
				out[i] = true
				continue
			}
			ai, aok := aIdx[q.A]
			bi, bok := bIdx[q.B]
			if aok && bok && aRows.Row(ai).Intersects(bRows.Row(bi)) {
				out[i] = true
				answered[key] = true
			}
		}
		return out
	}
	for i, q := range batch {
		out[i] = answered[[2]int32{q.A, q.B}]
	}
	return out
}

// packHeavyRows builds one bit row per x value of rel that touches at least
// one heavy y column.
func packHeavyRows(rel *relation.Relation, heavyY map[int32]int) (*matrix.BitMatrix, map[int32]int) {
	ix := rel.ByX()
	idx := make(map[int32]int)
	type rowFill struct {
		x    int32
		cols []int
	}
	var fills []rowFill
	for i := 0; i < ix.NumKeys(); i++ {
		var cols []int
		for _, y := range ix.List(i) {
			if c, ok := heavyY[y]; ok {
				cols = append(cols, c)
			}
		}
		if len(cols) > 0 {
			idx[ix.Key(i)] = len(fills)
			fills = append(fills, rowFill{ix.Key(i), cols})
		}
	}
	m := matrix.NewBitMatrix(len(fills), len(heavyY))
	for r, f := range fills {
		for _, c := range f.cols {
			m.Set(r, c)
		}
	}
	return m, idx
}
