package bsi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/relation"
)

func randomRel(rng *rand.Rand, name string, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		ps[i] = relation.Pair{X: int32(rng.Intn(xdom)), Y: int32(rng.Intn(ydom))}
	}
	return relation.FromPairs(name, ps)
}

func TestAnswerSingle(t *testing.T) {
	r := relation.FromPairs("R", []relation.Pair{{X: 1, Y: 10}, {X: 2, Y: 20}})
	s := relation.FromPairs("S", []relation.Pair{{X: 5, Y: 10}, {X: 6, Y: 30}})
	if !AnswerSingle(r, s, Query{A: 1, B: 5}) {
		t.Fatal("sets 1 and 5 share y=10")
	}
	if AnswerSingle(r, s, Query{A: 2, B: 5}) {
		t.Fatal("sets 2 and 5 are disjoint")
	}
	if AnswerSingle(r, s, Query{A: 99, B: 5}) {
		t.Fatal("absent set should not intersect")
	}
}

func TestAnswerBatchMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	r := randomRel(rng, "R", 600, 60, 40)
	s := randomRel(rng, "S", 600, 60, 40)
	batch := RandomWorkload(r, s, 200, 7)
	for _, useMM := range []bool{true, false} {
		got := AnswerBatch(r, s, batch, Options{UseMM: useMM, Workers: 2})
		if len(got) != len(batch) {
			t.Fatalf("useMM=%v: %d answers for %d queries", useMM, len(got), len(batch))
		}
		for i, q := range batch {
			want := AnswerSingle(r, s, q)
			if got[i] != want {
				t.Fatalf("useMM=%v: query %v = %v, want %v", useMM, q, got[i], want)
			}
		}
	}
}

func TestAnswerBatchEmpty(t *testing.T) {
	r := relation.FromPairs("R", []relation.Pair{{X: 1, Y: 1}})
	if got := AnswerBatch(r, r, nil, Options{UseMM: true}); got != nil {
		t.Fatalf("empty batch = %v", got)
	}
}

func TestAnswerBatchDuplicateQueries(t *testing.T) {
	r := relation.FromPairs("R", []relation.Pair{{X: 1, Y: 10}, {X: 2, Y: 10}})
	batch := []Query{{A: 1, B: 2}, {A: 1, B: 2}, {A: 2, B: 1}}
	got := AnswerBatch(r, r, batch, Options{UseMM: true})
	for i, v := range got {
		if !v {
			t.Fatalf("answer %d should be true", i)
		}
	}
}

func TestRandomWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	r := randomRel(rng, "R", 100, 20, 10)
	w := RandomWorkload(r, r, 50, 1)
	if len(w) != 50 {
		t.Fatalf("workload size %d, want 50", len(w))
	}
	for _, q := range w {
		if r.ByX().Pos(q.A) < 0 || r.ByX().Pos(q.B) < 0 {
			t.Fatalf("workload query %v references absent set", q)
		}
	}
	// Deterministic in seed.
	w2 := RandomWorkload(r, r, 50, 1)
	for i := range w {
		if w[i] != w2[i] {
			t.Fatal("workload not deterministic")
		}
	}
	empty := relation.FromPairs("E", nil)
	if RandomWorkload(empty, r, 5, 1) != nil {
		t.Fatal("workload over empty relation should be nil")
	}
}

func TestSimulateDelay(t *testing.T) {
	r, _ := dataset.ByName("Jokes", 0.1)
	res := SimulateDelay(r, r, 1000, 50, 2, Options{UseMM: true}, 3)
	if res.BatchSize != 50 {
		t.Fatalf("batch size %d", res.BatchSize)
	}
	if res.ComputeTime <= 0 || res.AvgDelay < res.ComputeTime {
		t.Fatalf("times inconsistent: compute=%v delay=%v", res.ComputeTime, res.AvgDelay)
	}
	if res.UnitsNeeded < 1 {
		t.Fatalf("units = %d", res.UnitsNeeded)
	}
	if res.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestProp2Model(t *testing.T) {
	c, lat, mach := Prop2Model(1e6, 1000)
	if c <= 0 || lat <= 0 || mach <= 0 {
		t.Fatal("model values must be positive")
	}
	// Larger N → larger latency; larger B → smaller latency.
	_, lat2, _ := Prop2Model(1e8, 1000)
	if lat2 <= lat {
		t.Fatal("latency should grow with N")
	}
	_, lat3, _ := Prop2Model(1e6, 10000)
	if lat3 >= lat {
		t.Fatal("latency should shrink with B")
	}
}

func TestAnswerBatchAYZ(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	r := randomRel(rng, "R", 800, 60, 30)
	s := randomRel(rng, "S", 800, 60, 30)
	batch := RandomWorkload(r, s, 300, 9)
	for _, delta := range []int{0, 1, 3, 100} {
		got := AnswerBatchAYZ(r, s, batch, delta)
		for i, q := range batch {
			if got[i] != AnswerSingle(r, s, q) {
				t.Fatalf("delta=%d: query %v = %v, want %v", delta, q, got[i], !got[i])
			}
		}
	}
	if AnswerBatchAYZ(r, s, nil, 0) != nil {
		t.Fatal("empty AYZ batch should be nil")
	}
}

// Property: AYZ agrees with per-query answers for random thresholds.
func TestQuickAYZMatchesSingle(t *testing.T) {
	f := func(seed int64, draw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, "R", 1+rng.Intn(250), 1+rng.Intn(40), 1+rng.Intn(20))
		s := randomRel(rng, "S", 1+rng.Intn(250), 1+rng.Intn(40), 1+rng.Intn(20))
		batch := RandomWorkload(r, s, 1+rng.Intn(50), seed)
		got := AnswerBatchAYZ(r, s, batch, int(draw%8))
		for i, q := range batch {
			if got[i] != AnswerSingle(r, s, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: batched answers always match per-query answers.
func TestQuickBatchMatchesSingle(t *testing.T) {
	f := func(seed int64, useMM bool) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, "R", 1+rng.Intn(300), 1+rng.Intn(40), 1+rng.Intn(25))
		s := randomRel(rng, "S", 1+rng.Intn(300), 1+rng.Intn(40), 1+rng.Intn(25))
		batch := RandomWorkload(r, s, 1+rng.Intn(60), seed)
		got := AnswerBatch(r, s, batch, Options{UseMM: useMM, Workers: 2})
		for i, q := range batch {
			if got[i] != AnswerSingle(r, s, q) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
