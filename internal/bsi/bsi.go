// Package bsi implements the boolean set intersection workload of Sections
// 3.3 and 7.5: answering a stream of queries Qab() = R(a,y), S(b,y) — "do
// sets a and b intersect?" — arriving at B queries per second.
//
// Instead of answering each query with a separate O(N) scan, requests are
// batched: a batch of C queries forms a relation T(x, z), the inputs are
// filtered to the constants appearing in the batch, and the whole batch is
// answered with one join-project evaluation (Algorithm 1), exactly as the
// paper's experiments do. The average per-query delay is the batch fill
// time C/B plus the batch computation time, which the paper's Proposition 2
// analyzes.
package bsi

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

// Query is one boolean intersection request: do sets A (in R) and B (in S)
// share an element?
type Query struct {
	A, B int32
}

// Options configures batch evaluation.
type Options struct {
	// UseMM selects Algorithm 1 (true) or the combinatorial Non-MM join.
	UseMM bool
	// Workers bounds parallelism (≤ 0: all cores).
	Workers int
}

// AnswerSingle answers one query with a direct sorted-list intersection —
// the per-request baseline of Example 5.
func AnswerSingle(r, s *relation.Relation, q Query) bool {
	return relation.IntersectCount(r.ByX().Lookup(q.A), s.ByX().Lookup(q.B)) > 0
}

// AnswerBatch answers a batch of queries at once: R and S are filtered to
// the constants of the batch, the filtered 2-path join is evaluated, and the
// result is intersected with the batch (the query Qbatch(x,z) =
// R(x,y), S(z,y), T(x,z) of Section 3.3). Returns one answer per query, in
// batch order.
func AnswerBatch(r, s *relation.Relation, batch []Query, opt Options) []bool {
	if len(batch) == 0 {
		return nil
	}
	as := make([]int32, 0, len(batch))
	bs := make([]int32, 0, len(batch))
	for _, q := range batch {
		as = append(as, q.A)
		bs = append(bs, q.B)
	}
	rf := r.RestrictXSet(as)
	sf := s.RestrictXSet(bs)
	out := make([]bool, len(batch))
	if opt.UseMM {
		// Stream the filtered join-project and mark only the pairs the batch
		// asked about; the projected output — which can dwarf the batch — is
		// never materialized.
		want := make(map[[2]int32]struct{}, len(batch))
		for _, q := range batch {
			want[[2]int32{q.A, q.B}] = struct{}{}
		}
		hit := make(map[[2]int32]struct{}, len(batch))
		var mu sync.Mutex
		joinproject.TwoPathMMVisit(rf, sf, joinproject.Options{Workers: opt.Workers}, func(x, z, _ int32) {
			key := [2]int32{x, z}
			if _, ok := want[key]; ok {
				mu.Lock()
				hit[key] = struct{}{}
				mu.Unlock()
			}
		})
		for i, q := range batch {
			_, out[i] = hit[[2]int32{q.A, q.B}]
		}
		return out
	}
	// Combinatorial: all values light (pure WCOJ expansion with dedup).
	n := rf.Size() + sf.Size() + 1
	pairs := joinproject.TwoPathNonMM(rf, sf, joinproject.Options{Delta1: n, Delta2: n, Workers: opt.Workers})
	hit := make(map[[2]int32]struct{}, len(pairs))
	for _, p := range pairs {
		hit[p] = struct{}{}
	}
	for i, q := range batch {
		_, out[i] = hit[[2]int32{q.A, q.B}]
	}
	return out
}

// RandomWorkload samples n queries uniformly over the set ids of R and S,
// as in Section 7.5 ("sampling each set pair uniformly at random").
func RandomWorkload(r, s *relation.Relation, n int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	rx, sx := r.ByX(), s.ByX()
	if rx.NumKeys() == 0 || sx.NumKeys() == 0 {
		return nil
	}
	out := make([]Query, n)
	for i := range out {
		out[i] = Query{
			A: rx.Key(rng.Intn(rx.NumKeys())),
			B: sx.Key(rng.Intn(sx.NumKeys())),
		}
	}
	return out
}

// DelayResult summarizes a batching simulation at one batch size.
type DelayResult struct {
	BatchSize int
	// ComputeTime is the mean wall-clock time to answer one batch.
	ComputeTime time.Duration
	// AvgDelay = fill time (C/B) + ComputeTime, the Section-7.5 metric.
	AvgDelay time.Duration
	// UnitsNeeded is the number of parallel processing units required to
	// keep up with the arrival rate: ceil(B·ComputeTime/C).
	UnitsNeeded int
}

// String renders one average-delay series point.
func (d DelayResult) String() string {
	return fmt.Sprintf("C=%d compute=%v delay=%v units=%d",
		d.BatchSize, d.ComputeTime.Round(time.Microsecond), d.AvgDelay.Round(time.Microsecond), d.UnitsNeeded)
}

// SimulateDelay measures the average delay at arrival rate rateB (queries
// per second) and the given batch size, averaging computeover numBatches
// batches of a uniformly random workload.
func SimulateDelay(r, s *relation.Relation, rateB float64, batchSize, numBatches int, opt Options, seed int64) DelayResult {
	if numBatches < 1 {
		numBatches = 1
	}
	var total time.Duration
	for i := 0; i < numBatches; i++ {
		batch := RandomWorkload(r, s, batchSize, seed+int64(i))
		start := time.Now()
		_ = AnswerBatch(r, s, batch, opt)
		total += time.Since(start)
	}
	compute := total / time.Duration(numBatches)
	fill := time.Duration(float64(batchSize) / rateB * float64(time.Second))
	units := int(math.Ceil(rateB * compute.Seconds() / float64(batchSize)))
	if units < 1 {
		units = 1
	}
	return DelayResult{
		BatchSize:   batchSize,
		ComputeTime: compute,
		AvgDelay:    fill + compute,
		UnitsNeeded: units,
	}
}

// Prop2Model returns the Proposition-2 predictions for input size n and
// arrival rate b under ω = 2: batch size C = (B·N)^{3/5}, average latency
// Θ(N^{3/5}/B^{2/5}) and machine count (B·N)^{3/5}. Used to sanity-check
// the shape of the measured curves.
func Prop2Model(n, b float64) (batchSize, latency, machines float64) {
	batchSize = math.Pow(b*n, 3.0/5.0)
	latency = math.Pow(n, 3.0/5.0) / math.Pow(b, 2.0/5.0)
	machines = math.Pow(b*n, 3.0/5.0)
	return batchSize, latency, machines
}
