package bsi_test

import (
	"fmt"

	"repro/internal/bsi"
	"repro/internal/relation"
)

// Batch a set of "do these sets intersect?" queries into one join-project
// evaluation (Section 3.3).
func ExampleAnswerBatch() {
	r := relation.FromPairs("sets", []relation.Pair{
		{X: 1, Y: 10}, {X: 1, Y: 11},
		{X: 2, Y: 11},
		{X: 3, Y: 12},
	})
	batch := []bsi.Query{
		{A: 1, B: 2}, // share 11
		{A: 1, B: 3}, // disjoint
		{A: 2, B: 3}, // disjoint
	}
	answers := bsi.AnswerBatch(r, r, batch, bsi.Options{UseMM: true, Workers: 1})
	fmt.Println(answers)
	// Output:
	// [true false false]
}

// The AYZ-style variant splits the batch by a single degree threshold.
func ExampleAnswerBatchAYZ() {
	r := relation.FromPairs("sets", []relation.Pair{
		{X: 1, Y: 10}, {X: 2, Y: 10}, {X: 3, Y: 99},
	})
	answers := bsi.AnswerBatchAYZ(r, r, []bsi.Query{{A: 1, B: 2}, {A: 1, B: 3}}, 0)
	fmt.Println(answers)
	// Output:
	// [true false]
}
