package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// newPrimaryFollower boots a primary server with a data dir and a follower
// server replicating from it, returning both plus the follower's replica.
func newPrimaryFollower(t *testing.T) (primary, follower *httptest.Server, rep *core.Replica) {
	t.Helper()
	peng := core.NewEngine()
	if err := peng.Open(t.TempDir(), core.PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { peng.Close() })
	primary = newTestServer(t, Config{Engine: peng})

	feng := core.NewEngine()
	rep, err := feng.StartReplica(primary.URL, core.ReplicaOptions{PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rep.Stop)
	follower = newTestServer(t, Config{Engine: feng, Replica: rep})
	return primary, follower, rep
}

// waitFollower blocks until the follower reports caught up with n records
// applied at minimum.
func waitFollower(t *testing.T, rep *core.Replica, minApplied uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := rep.Status()
		if st.CaughtUp && st.AppliedLSN >= minApplied {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestFollowerServesReadsRejectsWrites(t *testing.T) {
	primary, follower, rep := newPrimaryFollower(t)
	registerChain(t, primary)
	if code := post(t, primary, "/views", map[string]any{"name": "v", "query": "V(x, z) :- R(x, y), S(y, z)"}, nil); code != http.StatusOK {
		t.Fatalf("create view on primary: %d", code)
	}
	waitFollower(t, rep, 3)

	// Reads work on the follower, against replicated state.
	var qout struct {
		Tuples [][]int64 `json:"tuples"`
	}
	if code := post(t, follower, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &qout); code != http.StatusOK {
		t.Fatalf("query on follower: %d", code)
	}
	if len(qout.Tuples) == 0 {
		t.Fatal("follower query returned no tuples")
	}
	resp, err := http.Get(follower.URL + "/views/v")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("view read on follower: %d", resp.StatusCode)
	}

	// Every mutating route 503s with a pointer at the primary.
	mutations := []struct{ method, path string }{
		{"POST", "/catalog/relations"},
		{"DELETE", "/catalog/relations/R"},
		{"POST", "/catalog/relations/R/insert"},
		{"POST", "/catalog/relations/R/delete"},
		{"POST", "/views"},
		{"DELETE", "/views/v"},
		{"POST", "/admin/checkpoint"},
		{"POST", "/admin/resume"},
	}
	for _, m := range mutations {
		req, err := http.NewRequest(m.method, follower.URL+m.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("%s %s on follower: %d, want 503", m.method, m.path, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Repl-Primary"); got != primary.URL {
			t.Errorf("%s %s: X-Repl-Primary %q, want %q", m.method, m.path, got, primary.URL)
		}
	}

	// The follower's state was read-only throughout: still consistent.
	if code := post(t, follower, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, nil); code != http.StatusOK {
		t.Fatalf("query on follower after rejections: %d", code)
	}
}

func TestHealthzReportsRoleAndLag(t *testing.T) {
	primary, follower, rep := newPrimaryFollower(t)
	registerChain(t, primary)
	waitFollower(t, rep, 2)

	get := func(ts *httptest.Server) map[string]any {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	p := get(primary)
	if p["role"] != "primary" {
		t.Fatalf("primary role = %v", p["role"])
	}
	if _, ok := p["replication"]; ok {
		t.Fatal("primary healthz has a replication section")
	}
	f := get(follower)
	if f["role"] != "replica" {
		t.Fatalf("follower role = %v", f["role"])
	}
	repl, ok := f["replication"].(map[string]any)
	if !ok {
		t.Fatalf("follower healthz missing replication: %v", f)
	}
	if repl["state"] != "tailing" || repl["caught_up"] != true {
		t.Fatalf("replication section: %v", repl)
	}
	if repl["lag_records"].(float64) != 0 {
		t.Fatalf("caught-up lag_records = %v", repl["lag_records"])
	}
	// Caught-up lag in seconds stays at or below the poll interval (plus
	// scheduling slack).
	if lag := repl["lag_seconds"].(float64); lag > 1.0 {
		t.Fatalf("caught-up lag_seconds = %v", lag)
	}
}

func TestPrimaryMountsReplEndpoints(t *testing.T) {
	primary, _, _ := newPrimaryFollower(t)
	resp, err := http.Get(primary.URL + "/repl/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/repl/status on primary: %d", resp.StatusCode)
	}
	var st struct {
		NextLSN uint64 `json:"next_lsn"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.NextLSN == 0 {
		t.Fatal("next_lsn = 0")
	}
	// An ephemeral engine (no data dir) has nothing to ship: /repl/* is not
	// mounted at all.
	eph := newTestServer(t, Config{Engine: core.NewEngine()})
	resp2, err := http.Get(eph.URL + "/repl/status")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("/repl/status on ephemeral engine: %d, want 404", resp2.StatusCode)
	}
}
