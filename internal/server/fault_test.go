package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/wal"
)

// postRaw posts a body and returns the raw response (headers included).
func postRaw(t *testing.T, ts *httptest.Server, path string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestHealthzDegradedStateMachine drives the full healthy → degraded →
// recovered cycle over HTTP: a failing disk turns mutations into 503s while
// queries and /healthz keep serving, and /admin/resume re-arms writes once
// the disk heals.
func TestHealthzDegradedStateMachine(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	eng := core.NewEngine()
	err := eng.Open(dir, core.PersistOptions{
		Fsync: wal.FsyncAlways, FS: in, RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Register("R", []relation.Pair{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Engine: eng})

	healthz := func() map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	if h := healthz(); h["status"] != "ok" || h["ok"] != true || h["degraded"] != false {
		t.Fatalf("healthy server reports %v", h)
	}

	// Persistent disk failure: the mutation must shed as 503 + Retry-After.
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedENOSPC, Times: 10})
	resp := postRaw(t, ts, "/catalog/relations/R/insert", `{"pairs":[[9,9]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded insert: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	// "ok" is pure liveness and must stay true while degraded, or restart
	// probes would kill a node that is alive and serving reads.
	h := healthz()
	if h["status"] != "degraded" || h["ok"] != true || h["degraded"] != true {
		t.Fatalf("degraded server reports %v", h)
	}
	if h["cause"] == nil || h["since"] == nil {
		t.Fatalf("degraded healthz misses cause/since: %v", h)
	}

	// Reads keep serving while degraded.
	var qr queryResponse
	if code := post(t, ts, "/query", map[string]any{"query": "Q(x, y) :- R(x, y)"}, &qr); code != http.StatusOK {
		t.Fatalf("degraded query: status %d", code)
	}
	if qr.Rows != 1 {
		t.Fatalf("degraded query rows = %d (the rejected insert must not apply)", qr.Rows)
	}

	// Disk heals: /admin/resume re-arms and the state machine closes.
	in.Heal()
	var rr map[string]any
	if code := post(t, ts, "/admin/resume", map[string]any{}, &rr); code != http.StatusOK {
		t.Fatalf("resume: status %d (%v)", code, rr)
	}
	if rr["degraded"] != false {
		t.Fatalf("resume response: %v", rr)
	}
	if h := healthz(); h["status"] != "ok" || h["degraded"] != false {
		t.Fatalf("recovered server reports %v", h)
	}
	if code := post(t, ts, "/catalog/relations/R/insert", map[string]any{"pairs": [][2]int32{{7, 7}}}, nil); code != http.StatusOK {
		t.Fatalf("insert after resume: status %d", code)
	}
}

func TestResumeWithoutDataDir(t *testing.T) {
	ts := newTestServer(t, Config{})
	if code := post(t, ts, "/admin/resume", map[string]any{}, nil); code != http.StatusConflict {
		t.Fatalf("resume without persistence: status %d, want 409", code)
	}
}

// TestOverloadSheds429 fills the single evaluation slot and the zero-depth
// queue: the next request must be rejected immediately with 429 +
// Retry-After rather than waiting.
func TestOverloadSheds429(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	testHookEvaluate = func(ctx context.Context, q string) (*query.Result, error) {
		close(entered)
		<-block
		return &query.Result{Plan: &query.Plan{}}, nil
	}
	t.Cleanup(func() { testHookEvaluate = nil })

	s := New(Config{Engine: core.NewEngine(), MaxInFlight: 1, QueueDepth: -1})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	done := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"Q(x, y) :- R(x, y)"}`))
		if err != nil {
			done <- 0
			return
		}
		resp.Body.Close()
		done <- resp.StatusCode
	}()
	<-entered // the slot is held inside the hook

	resp := postRaw(t, ts, "/query", `{"query":"Q(x, y) :- R(x, y)"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	close(block)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked query finished with %d", code)
	}
}

// TestQueuedDeadlineSheds429 parks a request in the waiting room until its
// own deadline expires: that is shed load (429), not an evaluation timeout.
func TestQueuedDeadlineSheds429(t *testing.T) {
	block := make(chan struct{})
	entered := make(chan struct{})
	testHookEvaluate = func(ctx context.Context, q string) (*query.Result, error) {
		close(entered)
		<-block
		return &query.Result{Plan: &query.Plan{}}, nil
	}
	t.Cleanup(func() { testHookEvaluate = nil })
	defer close(block)

	s := New(Config{Engine: core.NewEngine(), MaxInFlight: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	go func() {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(`{"query":"Q(x, y) :- R(x, y)"}`))
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-entered

	resp := postRaw(t, ts, "/query", `{"query":"Q(x, y) :- R(x, y)","timeout_ms":30}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queued past deadline: status %d, want 429", resp.StatusCode)
	}
}

// TestBudgetExceeded422 wires a one-row budget into the engine: any real
// query trips it and the server maps that to 422.
func TestBudgetExceeded422(t *testing.T) {
	eng := core.NewEngine(core.WithQueryBudget(0, 1))
	if _, err := eng.Register("R", []relation.Pair{{X: 1, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 4}}); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Engine: eng})
	var out errorResponse
	if code := post(t, ts, "/query", map[string]any{"query": "Q(x, y) :- R(x, y)"}, &out); code != http.StatusUnprocessableEntity {
		t.Fatalf("budget trip: status %d, want 422 (%v)", code, out)
	}
	if !strings.Contains(out.Error, "budget") {
		t.Fatalf("422 body should name the budget: %q", out.Error)
	}
}

// TestQueryPanicIsolated500 injects a panicking evaluation: the request
// gets a 500 naming the panic, and the server keeps serving afterwards.
func TestQueryPanicIsolated500(t *testing.T) {
	testHookEvaluate = func(ctx context.Context, q string) (*query.Result, error) {
		panic("kaboom: poisoned operator")
	}
	s := New(Config{Engine: core.NewEngine()})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	var out errorResponse
	if code := post(t, ts, "/query", map[string]any{"query": "Q(x, y) :- R(x, y)"}, &out); code != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", code)
	}
	if !strings.Contains(out.Error, "kaboom") {
		t.Fatalf("500 body should carry the panic value: %q", out.Error)
	}

	// The panic must not leak the admission slot or wedge the server.
	testHookEvaluate = nil
	t.Cleanup(func() { testHookEvaluate = nil })
	if _, err := s.Engine().Register("R", []relation.Pair{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	if code := post(t, ts, "/query", map[string]any{"query": "Q(x, y) :- R(x, y)"}, &qr); code != http.StatusOK || qr.Rows != 1 {
		t.Fatalf("server wedged after panic: status %d rows %d", code, qr.Rows)
	}
}
