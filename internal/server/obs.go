package server

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/obs"
)

// HTTP-layer metrics. Route/latency/status series are instrumented by the
// middleware in instrument; point-in-time gauges (admission, uptime, plan
// cache, WAL) are refreshed by scrape immediately before every /metrics
// encode, so the exposition always reflects live state without a background
// sampler.
var (
	httpRequests = obs.Default().CounterVec(
		"joinmm_http_requests_total",
		"HTTP requests by route and response status code.",
		"route", "code")
	httpSeconds = obs.Default().HistogramVec(
		"joinmm_http_request_seconds",
		"HTTP request latency by route in seconds.",
		nil, "route")
	httpInFlight = obs.Default().Gauge(
		"joinmm_http_in_flight",
		"Requests currently holding an evaluation slot.")
	httpQueued = obs.Default().Gauge(
		"joinmm_http_queued",
		"Requests currently waiting in the bounded admission queue.")
	uptimeSeconds = obs.Default().Gauge(
		"joinmm_uptime_seconds",
		"Seconds since this server was constructed.")
	buildInfo = obs.Default().GaugeVec(
		"joinmm_build_info",
		"Build metadata; the value is always 1.",
		"version", "commit", "go")

	planCacheHits = obs.Default().Counter(
		"joinmm_plan_cache_hits_total",
		"Plan-cache hits (mirrored from the catalog at scrape time).")
	planCacheMisses = obs.Default().Counter(
		"joinmm_plan_cache_misses_total",
		"Plan-cache misses (mirrored from the catalog at scrape time).")
	planCacheSize = obs.Default().Gauge(
		"joinmm_plan_cache_size",
		"Compiled plans currently cached.")

	walSegments = obs.Default().Gauge(
		"joinmm_wal_segments",
		"WAL segment files on disk.")
	walAppends = obs.Default().Counter(
		"joinmm_wal_appends_total",
		"WAL records appended (mirrored from the log at scrape time).")
	walAppendedBytes = obs.Default().Counter(
		"joinmm_wal_appended_bytes_total",
		"WAL bytes appended (mirrored from the log at scrape time).")
	walSyncs = obs.Default().Counter(
		"joinmm_wal_syncs_total",
		"WAL fsyncs performed (mirrored from the log at scrape time).")
)

// BuildInfo identifies the running binary on /healthz, /metrics and
// `joinmmd -version`; cmd/joinmmd fills it from -ldflags.
type BuildInfo struct {
	Version string `json:"version"`
	Commit  string `json:"commit,omitempty"`
	Go      string `json:"go"`
}

// RequestID returns the request's correlation ID, assigned by the metrics
// middleware; empty outside an instrumented request.
func RequestID(r *http.Request) string {
	return obs.RequestIDFrom(r.Context())
}

// nextRequestID mints a process-unique correlation ID: a per-boot prefix (so
// IDs from different server lifetimes never collide in aggregated logs) plus
// a sequence number.
func (s *Server) nextRequestID() string {
	return fmt.Sprintf("%s-%06d", s.bootID, s.reqSeq.Add(1))
}

// statusRecorder captures the response status for the route metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps one route with the observability middleware: it assigns
// the request ID (context + X-Request-Id response header), then records the
// route's latency histogram and per-status request counter. A sane inbound
// X-Request-Id header is honored so IDs correlate across the fleet
// (follower pulls carry the follower's ID to the primary's logs); anything
// else gets a freshly minted ID. The histogram child is resolved once per
// route at mount time, not per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	lat := httpSeconds.With(route)
	return func(w http.ResponseWriter, r *http.Request) {
		rid := obs.SanitizeRequestID(r.Header.Get("X-Request-Id"))
		if rid == "" {
			rid = s.nextRequestID()
		}
		w.Header().Set("X-Request-Id", rid)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		h(rec, r.WithContext(obs.WithRequestID(r.Context(), rid)))
		lat.ObserveSince(start)
		httpRequests.With(route, strconv.Itoa(rec.code)).Inc()
	}
}

// scrape refreshes every point-in-time gauge (and the counters mirroring
// pre-existing cumulative stats) from live engine state. Called under each
// /metrics request and by the /healthz summary.
func (s *Server) scrape() {
	uptimeSeconds.Set(time.Since(s.start).Seconds())
	httpInFlight.Set(float64(len(s.sem)))
	httpQueued.Set(float64(len(s.queue)))
	hits, misses, size := s.eng.Catalog().CacheStats()
	planCacheHits.Set(hits)
	planCacheMisses.Set(misses)
	planCacheSize.Set(float64(size))
	if ps := s.eng.PersistenceStats(); ps.Enabled {
		walSegments.Set(float64(ps.WAL.Segments))
		walAppends.Set(ps.WAL.Appended)
		walAppendedBytes.Set(uint64(ps.WAL.AppendedBytes))
		walSyncs.Set(ps.WAL.Syncs)
	}
}

// handleMetrics serves GET /metrics in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrape()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = obs.Default().WriteTo(w)
}

// registerBuildInfo publishes the binary's identity as the conventional
// constant-1 info gauge.
func registerBuildInfo(b BuildInfo) {
	buildInfo.With(b.Version, b.Commit, runtime.Version()).Set(1)
}
