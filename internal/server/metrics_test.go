package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultfs"
	"repro/internal/obs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// scrapeMetrics fetches /metrics, validates the exposition end to end, and
// returns it parsed. Every contract assertion in this file goes through the
// same parser cmd/promcheck uses in CI.
func scrapeMetrics(t *testing.T, ts *httptest.Server) *obs.Exposition {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		t.Fatalf("invalid exposition: %v", err)
	}
	exp, err := obs.ParseExposition(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return exp
}

// mustValue returns one series' sample, failing the test if it is absent.
func mustValue(t *testing.T, exp *obs.Exposition, series string) float64 {
	t.Helper()
	v, ok := exp.Value(series)
	if !ok {
		t.Fatalf("series %s not exposed", series)
	}
	return v
}

// familySum totals every sample of one family prefix (the labeled series of
// a vec, or a histogram's _count series via name_count). The obs registry is
// process-global, so contract tests assert on deltas, never absolutes.
func familySum(exp *obs.Exposition, name string) float64 {
	var sum float64
	for series, v := range exp.Samples {
		base, _, _ := strings.Cut(series, "{")
		if base == name {
			sum += v
		}
	}
	return sum
}

// TestMetricsContract locks the /metrics surface: the metric names and types
// monitoring dashboards key on must stay stable, and the core counters must
// actually move when the engine does work (query, mutation, checkpoint).
func TestMetricsContract(t *testing.T) {
	dir := t.TempDir()
	eng := core.NewEngine()
	if err := eng.Open(dir, core.PersistOptions{Fsync: wal.FsyncAlways}); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := newTestServer(t, Config{Engine: eng})
	registerChain(t, ts)
	if code := post(t, ts, "/views", map[string]any{"name": "v", "query": "V(x, z) :- R(x, y), S(y, z)"}, nil); code != http.StatusOK {
		t.Fatalf("register view: status %d", code)
	}

	before := scrapeMetrics(t, ts)

	// One successful query, one mutation (maintains the view through the
	// WAL), one checkpoint.
	if code := post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, nil); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	if code := post(t, ts, "/catalog/relations/R/insert", map[string]any{"pairs": [][2]int32{{7, 10}}}, nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if code := post(t, ts, "/admin/checkpoint", map[string]any{}, nil); code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", code)
	}

	after := scrapeMetrics(t, ts)

	// Name/type stability: a rename here breaks dashboards, so it must be a
	// conscious decision.
	wantTypes := map[string]string{
		"joinmm_http_requests_total":       "counter",
		"joinmm_http_request_seconds":      "histogram",
		"joinmm_http_in_flight":            "gauge",
		"joinmm_http_queued":               "gauge",
		"joinmm_uptime_seconds":            "gauge",
		"joinmm_build_info":                "gauge",
		"joinmm_query_total":               "counter",
		"joinmm_query_seconds":             "histogram",
		"joinmm_query_prepare_seconds":     "histogram",
		"joinmm_query_rows_total":          "counter",
		"joinmm_query_budget_bytes_total":  "counter",
		"joinmm_fold_total":                "counter",
		"joinmm_view_maintenance_seconds":  "histogram",
		"joinmm_view_delta_strategy_total": "counter",
		"joinmm_wal_append_seconds":        "histogram",
		"joinmm_wal_fsync_seconds":         "histogram",
		"joinmm_wal_appends_total":         "counter",
		"joinmm_wal_segments":              "gauge",
		"joinmm_checkpoint_total":          "counter",
		"joinmm_checkpoint_seconds":        "histogram",
		"joinmm_checkpoint_last_bytes":     "gauge",
		"joinmm_degraded":                  "gauge",
		"joinmm_plan_cache_hits_total":     "counter",
		"joinmm_plan_cache_misses_total":   "counter",
		"joinmm_budget_trips_total":        "counter",

		"joinmm_catalog_tuples_mutated_total": "counter",
		"joinmm_snapshot_write_seconds":       "histogram",
		"joinmm_snapshot_written_bytes_total": "counter",
	}
	for name, typ := range wantTypes {
		if got := after.Types[name]; got != typ {
			t.Errorf("metric %s: type %q, want %q", name, got, typ)
		}
	}

	// Counters move with the work they claim to count.
	moved := []string{
		"joinmm_query_total",
		"joinmm_query_seconds_count",
		"joinmm_query_rows_total",
		"joinmm_http_requests_total",
		"joinmm_http_request_seconds_count",
		"joinmm_fold_total",
		"joinmm_view_maintenance_seconds_count",
		"joinmm_view_delta_strategy_total",
		"joinmm_wal_append_seconds_count",
		"joinmm_wal_appends_total",
		"joinmm_checkpoint_total",
		"joinmm_checkpoint_seconds_count",
		"joinmm_catalog_tuples_mutated_total",
		"joinmm_snapshot_write_seconds_count",
		"joinmm_snapshot_written_bytes_total",
	}
	for _, name := range moved {
		b, a := familySum(before, name), familySum(after, name)
		if a <= b {
			t.Errorf("%s did not move: %v -> %v", name, b, a)
		}
	}

	// The per-route counter attributes the query to its mount pattern.
	q := mustValue(t, after, `joinmm_http_requests_total{route="/query",code="200"}`)
	if q < 1 {
		t.Errorf("joinmm_http_requests_total{route=/query,code=200} = %v, want >= 1", q)
	}
	if mustValue(t, after, "joinmm_checkpoint_last_bytes") <= 0 {
		t.Error("joinmm_checkpoint_last_bytes not set after checkpoint")
	}
	if mustValue(t, after, "joinmm_degraded") != 0 {
		t.Error("healthy engine reports joinmm_degraded != 0")
	}
}

// TestMetricsDegradedGauge drives the degraded state machine under injected
// WAL faults and watches joinmm_degraded flip 0 -> 1 -> 0 on /metrics.
func TestMetricsDegradedGauge(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	eng := core.NewEngine()
	if err := eng.Open(dir, core.PersistOptions{
		Fsync: wal.FsyncAlways, FS: in, RetryBackoff: 50 * time.Microsecond,
	}); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Register("R", []relation.Pair{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Engine: eng})

	transitionsBefore := familySum(scrapeMetrics(t, ts), "joinmm_degraded_transitions_total")

	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedENOSPC, Times: 10})
	if resp := postRaw(t, ts, "/catalog/relations/R/insert", `{"pairs":[[9,9]]}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded insert: status %d, want 503", resp.StatusCode)
	}

	exp := scrapeMetrics(t, ts)
	if v := mustValue(t, exp, "joinmm_degraded"); v != 1 {
		t.Fatalf("joinmm_degraded = %v after WAL failure, want 1", v)
	}
	if got := familySum(exp, "joinmm_degraded_transitions_total"); got != transitionsBefore+1 {
		t.Fatalf("joinmm_degraded_transitions_total = %v, want %v", got, transitionsBefore+1)
	}

	in.Heal()
	if code := post(t, ts, "/admin/resume", map[string]any{}, nil); code != http.StatusOK {
		t.Fatalf("resume: status %d", code)
	}
	if v := mustValue(t, scrapeMetrics(t, ts), "joinmm_degraded"); v != 0 {
		t.Fatalf("joinmm_degraded = %v after heal+resume, want 0", v)
	}
}

// TestExplainAnalyzeShape locks the EXPLAIN ANALYZE rendering: the analyzed
// marker, the phase-breakdown header, and measured per-node times sitting
// next to the plan's structural lines.
func TestExplainAnalyzeShape(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	var res struct {
		Plan        string  `json:"plan"`
		Analyzed    bool    `json:"analyzed"`
		ExecMs      float64 `json:"exec_ms"`
		BudgetBytes int64   `json:"budget_bytes"`
	}
	code := post(t, ts, "/explain", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)", "analyze": true}, &res)
	if code != http.StatusOK {
		t.Fatalf("explain analyze: status %d", code)
	}
	if !res.Analyzed {
		t.Fatal("response not marked analyzed")
	}
	if res.ExecMs < 0 || res.BudgetBytes <= 0 {
		t.Fatalf("missing measurements: exec_ms=%v budget_bytes=%d", res.ExecMs, res.BudgetBytes)
	}
	for _, re := range []string{
		`(?m)^query: .*\[analyzed\]`,
		`(?m)^analyze: prepare=\d.* exec=\d.* budget=\d+B$`,
		`(?m) rows=\d+ time=\d`,
	} {
		if !regexp.MustCompile(re).MatchString(res.Plan) {
			t.Errorf("plan missing /%s/:\n%s", re, res.Plan)
		}
	}

	// Plain EXPLAIN must not leak analyze artifacts: the plan-string shape is
	// a public contract (docs, clients).
	var plain struct {
		Plan     string `json:"plan"`
		Analyzed bool   `json:"analyzed"`
	}
	if code := post(t, ts, "/explain", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &plain); code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if plain.Analyzed || strings.Contains(plain.Plan, "time=") || strings.Contains(plain.Plan, "[analyzed]") {
		t.Fatalf("plain explain leaks analyze artifacts:\n%s", plain.Plan)
	}
}

// TestRequestIDCorrelation checks the correlation surface: every instrumented
// response carries X-Request-Id, and JSON error bodies echo the same ID so a
// client can quote it against the server log.
func TestRequestIDCorrelation(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	resp := postRaw(t, ts, "/query", `{"query": "Q(x, z) :- R(x, y), S(y, z)"}`)
	rid := resp.Header.Get("X-Request-Id")
	if resp.StatusCode != http.StatusOK || rid == "" {
		t.Fatalf("query: status %d, X-Request-Id %q", resp.StatusCode, rid)
	}

	resp = postRaw(t, ts, "/query", `{"query": "nope("}`)
	rid = resp.Header.Get("X-Request-Id")
	if resp.StatusCode != http.StatusBadRequest || rid == "" {
		t.Fatalf("bad query: status %d, X-Request-Id %q", resp.StatusCode, rid)
	}
	var er errorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID != rid {
		t.Fatalf("error body request_id %q != header %q", er.RequestID, rid)
	}
}
