// Package server exposes the query engine over HTTP/JSON: query evaluation,
// EXPLAIN, catalog management, tuple-level mutations and live materialized
// views, with per-query timeouts and bounded admission so a burst of heavy
// queries degrades to queueing instead of memory blow-up. cmd/joinmmd is the
// thin main wrapping this package.
//
// Endpoints (all JSON):
//
//	POST   /query              {"query": "...", "timeout_ms": 0,
//	                            "limit": 0, "cursor": ""}         → result page
//	POST   /explain            {"query": "...", "analyze": false} → plan
//	GET    /catalog                                               → listing
//	POST   /catalog/relations  {"name": "R", "pairs": [[x,y],...]}
//	                           or {"name": "R", "path": "file"}   → stats
//	DELETE /catalog/relations/{name}
//	POST   /catalog/relations/{name}/insert  {"pairs": [[x,y],...]} → delta
//	POST   /catalog/relations/{name}/delete  {"pairs": [[x,y],...]} → delta
//	POST   /views              {"name": "v", "query": "..."}      → view info
//	GET    /views                                                 → listing
//	GET    /views/{name}?limit=N&cursor=C    → result page + freshness
//	GET    /views/{name}/explain             → maintenance plan
//	DELETE /views/{name}
//	POST   /admin/checkpoint                 → durability checkpoint
//	POST   /admin/resume                     → re-arm a degraded engine
//	GET    /healthz                          → ok|degraded + WAL/recovery stats
//	GET    /stats/statements?sort=K&limit=N  → per-fingerprint statement stats
//	GET    /stats/planner?sort=K&limit=N     → planner accuracy + decision audit
//	POST   /stats/reset                      → clear the statement + planner sheets
//	GET    /stats/activity                   → in-flight queries (live view)
//	POST   /stats/activity/{id}/cancel       → kill a running query
//	GET    /debug/flight?limit=N             → recently completed query traces
//
// Failures map to distinct statuses so callers can react mechanically:
// 429 (+Retry-After) when the bounded admission queue is full or a request
// times out while queued, 422 when a query trips its memory budget, 503
// (+Retry-After) while the engine is degraded to read-only after a disk
// failure, 504/408 on evaluation timeout/disconnect, and 500 with the
// panic logged when a query panics (the panic is confined to its request).
//
// Query and view results are paginated when limit is set: tuples are served
// in canonical sorted order and the response carries an opaque next_cursor
// until the result is exhausted, so large outputs never materialize one
// giant JSON body. Paginated queries go through the engine's sorted-result
// cache (keyed on query text + referenced relation versions), so a page
// sequence over an unchanged catalog re-slices one sorted result instead of
// re-evaluating and re-sorting per page.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/govern"
	"repro/internal/par"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/view"
)

// ErrOverloaded rejects a request the bounded admission queue cannot hold:
// every evaluation slot is busy and the waiting room is full (or the
// request's deadline expired while it waited). Mapped to 429 + Retry-After.
var ErrOverloaded = errors.New("server: overloaded")

// ErrInternal is the caller-visible face of a panicking query: the panic
// and stack are logged server-side, the request gets a 500, and the rest of
// the server keeps serving.
var ErrInternal = errors.New("server: internal error")

// Config configures a Server.
type Config struct {
	// Engine evaluates the queries; nil builds a default engine.
	Engine *core.Engine
	// Timeout bounds each query's evaluation (default 30s). A request may
	// lower (never raise) it via timeout_ms.
	Timeout time.Duration
	// MaxInFlight bounds concurrently evaluating queries; further requests
	// wait (up to their timeout) for an admission slot. Default: the
	// engine's worker count (all cores).
	MaxInFlight int
	// QueueDepth bounds how many requests may wait for an admission slot
	// once every slot is busy; requests beyond that are rejected
	// immediately with 429 rather than piling up goroutines and request
	// state without bound. Default 64; negative disables waiting entirely.
	QueueDepth int
	// Logger receives the server's structured log (panics, slow queries);
	// nil uses slog.Default(). Every record carries the request_id also
	// returned in the X-Request-Id header and in error bodies.
	Logger *slog.Logger
	// SlowQueryThreshold logs any query evaluation at or above this duration
	// at Warn level with its text, plan summary and request ID; 0 disables
	// the slow-query log.
	SlowQueryThreshold time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ — opt-in because
	// profiles expose internals and cost CPU while sampling.
	EnablePprof bool
	// Build identifies the binary on /healthz, /metrics and -version.
	Build BuildInfo
	// Replica, when set, marks this server a read-only follower: mutating
	// routes answer 503 pointing at the primary, and /healthz reports the
	// replica's position and lag.
	Replica *core.Replica
}

// DefaultQueueDepth is the admission waiting room used when Config leaves
// QueueDepth zero.
const DefaultQueueDepth = 64

// Server handles the HTTP API.
type Server struct {
	eng     *core.Engine
	timeout time.Duration
	sem     chan struct{} // in-flight evaluation slots
	queue   chan struct{} // bounded waiting room behind the slots
	log     *slog.Logger
	slow    time.Duration // slow-query log threshold (0: off)
	pprof   bool
	build   BuildInfo
	replica *core.Replica // non-nil: read-only follower
	start   time.Time
	bootID  string // per-construction prefix of request IDs
	reqSeq  atomic.Uint64
}

// New builds a server from the config.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = core.NewEngine()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	slots := cfg.MaxInFlight
	if slots <= 0 {
		slots = par.Workers(0)
	}
	depth := cfg.QueueDepth
	if depth == 0 {
		depth = DefaultQueueDepth
	}
	if depth < 0 {
		depth = 0
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	build := cfg.Build
	if build.Version == "" {
		build.Version = "dev"
	}
	if build.Go == "" {
		build.Go = runtime.Version()
	}
	now := time.Now()
	registerBuildInfo(build)
	return &Server{
		eng:     eng,
		timeout: timeout,
		sem:     make(chan struct{}, slots),
		queue:   make(chan struct{}, depth),
		log:     logger,
		slow:    cfg.SlowQueryThreshold,
		pprof:   cfg.EnablePprof,
		build:   build,
		replica: cfg.Replica,
		start:   now,
		bootID:  fmt.Sprintf("%08x", uint32(now.UnixNano())),
	}
}

// Engine returns the wrapped engine (for preloading relations).
func (s *Server) Engine() *core.Engine { return s.eng }

// Handler returns the HTTP handler with all routes mounted. Every route runs
// under the observability middleware (request ID + per-route metrics); the
// route label is the mount pattern, so path parameters never explode the
// label space.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.instrument("/query", s.handleQuery))
	mux.HandleFunc("POST /explain", s.instrument("/explain", s.handleExplain))
	mux.HandleFunc("GET /catalog", s.instrument("/catalog", s.handleCatalog))
	mux.HandleFunc("POST /catalog/relations", s.instrument("/catalog/relations", s.primaryOnly(s.handleRegister)))
	mux.HandleFunc("DELETE /catalog/relations/{name}", s.instrument("/catalog/relations/{name}", s.primaryOnly(s.handleDrop)))
	mux.HandleFunc("POST /catalog/relations/{name}/insert", s.instrument("/catalog/relations/{name}/insert", s.primaryOnly(s.handleMutate(false))))
	mux.HandleFunc("POST /catalog/relations/{name}/delete", s.instrument("/catalog/relations/{name}/delete", s.primaryOnly(s.handleMutate(true))))
	mux.HandleFunc("POST /views", s.instrument("/views", s.primaryOnly(s.handleCreateView)))
	mux.HandleFunc("GET /views", s.instrument("/views", s.handleListViews))
	mux.HandleFunc("GET /views/{name}", s.instrument("/views/{name}", s.handleGetView))
	mux.HandleFunc("GET /views/{name}/explain", s.instrument("/views/{name}/explain", s.handleExplainView))
	mux.HandleFunc("DELETE /views/{name}", s.instrument("/views/{name}", s.primaryOnly(s.handleDropView)))
	mux.HandleFunc("POST /admin/checkpoint", s.instrument("/admin/checkpoint", s.primaryOnly(s.handleCheckpoint)))
	mux.HandleFunc("POST /admin/resume", s.instrument("/admin/resume", s.primaryOnly(s.handleResume)))
	mux.HandleFunc("GET /healthz", s.instrument("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	// Workload introspection serves identically on primaries and replicas:
	// these are read-only views of this node's own workload.
	mux.HandleFunc("GET /stats/statements", s.instrument("/stats/statements", s.handleStatements))
	mux.HandleFunc("GET /stats/planner", s.instrument("/stats/planner", s.handlePlanner))
	mux.HandleFunc("POST /stats/reset", s.instrument("/stats/reset", s.handleStatsReset))
	mux.HandleFunc("GET /stats/activity", s.instrument("/stats/activity", s.handleActivity))
	mux.HandleFunc("POST /stats/activity/{id}/cancel", s.instrument("/stats/activity/{id}/cancel", s.handleActivityCancel))
	mux.HandleFunc("GET /debug/flight", s.instrument("/debug/flight", s.handleFlight))
	if src := s.eng.ReplSource(); src != nil {
		// This node has a WAL to ship: serve followers.
		mux.HandleFunc("GET /repl/segments", s.instrument("/repl/segments", src.ServeSegments))
		mux.HandleFunc("GET /repl/snapshot", s.instrument("/repl/snapshot", src.ServeSnapshot))
		mux.HandleFunc("GET /repl/status", s.instrument("/repl/status", src.ServeStatus))
	} else if s.replica != nil {
		// A follower has no WAL to ship but its own position to report.
		mux.HandleFunc("GET /repl/status", s.instrument("/repl/status", s.handleReplStatus))
	}
	if s.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// primaryOnly gates a mutating route on a follower: replicas serve reads
// only, so mutations answer 503 with the primary's URL (the client should
// retry there). On a primary it is a pass-through.
func (s *Server) primaryOnly(h http.HandlerFunc) http.HandlerFunc {
	if s.replica == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		st := s.replica.Status()
		w.Header().Set("X-Repl-Primary", st.Primary)
		s.error(w, r, http.StatusServiceUnavailable,
			"read-only replica: mutations go to the primary at %s", st.Primary)
	}
}

// handleHealthz reports liveness, the degraded/healthy write state, the
// admission gauges, and — when the engine runs with a data dir — the WAL
// and recovery stats of the durability layer. The response stays 200 and
// "ok" stays true even when degraded: both are pure liveness (the server is
// alive and serving reads), so restart probes keyed on them never kill a
// read-serving node. "status" and "degraded" carry the write health.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	deg, cause, since := s.eng.Degraded()
	out := map[string]any{
		"ok":             true,
		"status":         "ok",
		"degraded":       deg,
		"in_flight":      len(s.sem),
		"queued":         len(s.queue),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"build":          s.build,
	}
	if deg {
		out["status"] = "degraded"
		out["cause"] = cause.Error()
		out["since"] = since.UTC().Format(time.RFC3339Nano)
	}
	if ps := s.eng.PersistenceStats(); ps.Enabled {
		out["persistence"] = ps
		if ps.LastCheckpointUnix > 0 {
			out["last_checkpoint_age_seconds"] = time.Since(time.Unix(ps.LastCheckpointUnix, 0)).Seconds()
		}
	}
	if s.replica != nil {
		out["role"] = "replica"
		out["replication"] = s.replica.Status()
	} else {
		out["role"] = "primary"
	}
	writeJSON(w, http.StatusOK, out)
}

// handleResume asks a degraded engine to probe the disk and re-arm writes.
// 409 without a data dir, 503 while the disk is still failing, 200 with the
// (now healthy) state once the probe succeeds. Resuming a healthy engine is
// a no-op 200.
func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	if err := s.eng.Resume(); err != nil {
		status := http.StatusServiceUnavailable
		if errors.Is(err, core.ErrNoPersistence) {
			status = http.StatusConflict
		}
		s.error(w, r, status, "%v", err)
		return
	}
	deg, _, _ := s.eng.Degraded()
	writeJSON(w, http.StatusOK, map[string]any{"resumed": true, "degraded": deg})
}

// handleCheckpoint triggers a synchronous durability checkpoint: capture
// under the mutation freeze, atomic snapshot + manifest install, WAL
// truncation. 409 when the server runs without a data dir; I/O failures of
// an attached durability layer are 500s.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	info, err := s.eng.Checkpoint()
	if err != nil {
		status := http.StatusInternalServerError
		if errors.Is(err, core.ErrNoPersistence) {
			status = http.StatusConflict
		}
		s.error(w, r, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// Drain blocks until every in-flight query has released its admission slot
// (new work keeps queueing behind the acquired slots), or until ctx
// expires. Graceful shutdown calls it between closing the listener and
// closing the engine's WAL.
func (s *Server) Drain(ctx context.Context) error {
	for i := 0; i < cap(s.sem); i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			// Give back what was acquired so a timed-out drain leaves the
			// server serving rather than wedged.
			for ; i > 0; i-- {
				<-s.sem
			}
			return fmt.Errorf("server: drain: slots still busy: %w", ctx.Err())
		}
	}
	return nil
}

type queryRequest struct {
	Query string `json:"query"`
	// TimeoutMs lowers the server's per-query timeout for this request.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Analyze on /explain executes the query and returns the actual plan.
	Analyze bool `json:"analyze,omitempty"`
	// Limit > 0 paginates the result: tuples are served in canonical sorted
	// order, at most Limit per response, with an opaque next_cursor.
	Limit int `json:"limit,omitempty"`
	// Cursor resumes a paginated result from a previous next_cursor.
	Cursor string `json:"cursor,omitempty"`
}

type queryResponse struct {
	Columns   []string  `json:"columns"`
	Tuples    [][]int64 `json:"tuples"`
	Rows      int       `json:"rows"` // total result size, not the page size
	Plan      string    `json:"plan"`
	PlanCache bool      `json:"plan_cached"`
	// ResultCache reports a sorted-result cache hit: this page was sliced
	// from a cached sorted result, with no re-evaluation or re-sort.
	ResultCache bool    `json:"result_cached,omitempty"`
	ElapsedMs   float64 `json:"elapsed_ms"`
	// NextCursor resumes the next page; empty when the result is exhausted.
	NextCursor string `json:"next_cursor,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
	// RequestID correlates this failure with the server's logs, traces and
	// the X-Request-Id response header.
	RequestID string `json:"request_id,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// error writes a JSON error body carrying the request's correlation ID, so a
// client-side report ("my insert got a 503, request abc-000042") matches a
// server-side log line mechanically. Server-fault statuses are logged.
func (s *Server) error(w http.ResponseWriter, r *http.Request, status int, format string, args ...any) {
	// Shedding statuses carry Retry-After: the condition is transient
	// (queue drains, disk heals) and well-behaved clients should back off,
	// not hammer.
	if status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	msg := fmt.Sprintf(format, args...)
	rid := RequestID(r)
	if status >= 500 {
		s.log.Error("request failed", "request_id", rid, "status", status,
			"method", r.Method, "path", r.URL.Path, "error", msg)
	}
	writeJSON(w, status, errorResponse{Error: msg, RequestID: rid})
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		s.error(w, r, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// requestTimeout resolves the effective timeout for one request.
func (s *Server) requestTimeout(req queryRequest) time.Duration {
	t := s.timeout
	if req.TimeoutMs > 0 {
		if rt := time.Duration(req.TimeoutMs) * time.Millisecond; rt < t {
			t = rt
		}
	}
	return t
}

// admit acquires an evaluation slot. A free slot admits immediately; when
// every slot is busy the request joins the bounded waiting room, and when
// that too is full — or the deadline expires while queued — the request is
// shed with ErrOverloaded so load beyond the configured depth turns into
// fast 429s instead of an unbounded pile of blocked goroutines. The
// explicit Err check first keeps an already-expired deadline from racing a
// free slot in the select.
func (s *Server) admit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	select {
	case s.queue <- struct{}{}:
	default:
		return fmt.Errorf("%w: %d in flight, %d queued", ErrOverloaded, len(s.sem), len(s.queue))
	}
	defer func() { <-s.queue }()
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: deadline expired while queued (%v)", ErrOverloaded, ctx.Err())
	}
}

func (s *Server) release() { <-s.sem }

// testHookEvaluate, when non-nil, replaces the engine call inside the panic
// guard. Tests use it to inject panics and verify the isolation; production
// code never sets it.
var testHookEvaluate func(ctx context.Context, q string) (*query.Result, error)

// evaluate runs one query under timeout + admission. The evaluation happens
// in this goroutine (no orphaned work on timeout: the executor polls the
// context between plan operators).
func (s *Server) evaluate(r *http.Request, req queryRequest) (*query.Result, error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
	defer cancel()
	if err := s.admit(ctx); err != nil {
		s.noteShed(r, req.Query, err)
		return nil, err
	}
	defer s.release()
	start := time.Now()
	res, err := guardPanic(s.log, RequestID(r), req.Query, s.flightDump, func() (*query.Result, error) {
		if testHookEvaluate != nil {
			return testHookEvaluate(ctx, req.Query)
		}
		return s.eng.QueryContext(ctx, req.Query)
	})
	if err == nil && res != nil {
		s.noteSlow(r, req.Query, time.Since(start), len(res.Tuples), res.Plan.CacheHit)
	}
	return res, err
}

// noteSlow emits the structured slow-query log record when the evaluation
// crossed the configured threshold.
func (s *Server) noteSlow(r *http.Request, q string, elapsed time.Duration, rows int, planCached bool) {
	if s.slow <= 0 || elapsed < s.slow {
		return
	}
	s.log.Warn("slow query",
		"request_id", RequestID(r),
		"query", q,
		"elapsed_ms", float64(elapsed.Microseconds())/1000,
		"rows", rows,
		"plan_cached", planCached,
		"threshold_ms", float64(s.slow.Microseconds())/1000)
}

// guardPanic confines a panicking evaluation to its own request: the panic
// and stack are logged with the request's correlation ID, the caller gets
// ErrInternal (a 500), and every other in-flight request is untouched.
// Without it a single poisoned query would tear down the whole connection
// via net/http's recover. flight, when non-nil, supplies the flight
// recorder's recent traces for the crash log — the queries that completed
// just before the panic are usually the context that explains it.
func guardPanic[T any](logger *slog.Logger, rid, q string, flight func() string, fn func() (T, error)) (out T, err error) {
	defer func() {
		if v := recover(); v != nil {
			attrs := []any{
				"request_id", rid, "query", q, "panic", fmt.Sprint(v), "stack", string(debug.Stack()),
			}
			if flight != nil {
				attrs = append(attrs, "recent_flight", flight())
			}
			logger.Error("query panic", attrs...)
			var zero T
			out, err = zero, fmt.Errorf("%w: query panicked: %v", ErrInternal, v)
		}
	}()
	return fn()
}

// statusFor maps evaluation errors to distinct HTTP statuses: shed load and
// degraded storage are retryable (429/503 + Retry-After), a tripped memory
// budget is the request's own weight (422), timeouts are 504/408, panics
// 500, and anything else is a malformed query (400).
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, govern.ErrBudgetExceeded):
		return http.StatusUnprocessableEntity
	case errors.Is(err, core.ErrDegraded):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrInternal):
		return http.StatusInternalServerError
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	if req.Limit > 0 || req.Cursor != "" {
		s.handleQueryPage(w, r, req, start)
		return
	}
	res, err := s.evaluate(r, req)
	if err != nil {
		s.error(w, r, statusFor(err), "query failed: %v", err)
		return
	}
	tuples := res.Tuples
	if tuples == nil {
		tuples = [][]int64{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:   res.Columns,
		Tuples:    tuples,
		Rows:      len(tuples),
		Plan:      res.Plan.String(),
		PlanCache: res.Plan.CacheHit,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

// handleQueryPage serves one page of a sorted result through the engine's
// sorted-result cache: the first page of a sequence evaluates and sorts
// once, later pages (and repeats of the same query while its relations are
// unmutated) slice the cached sorted tuples.
func (s *Server) handleQueryPage(w http.ResponseWriter, r *http.Request, req queryRequest, start time.Time) {
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
	defer cancel()
	if err := s.admit(ctx); err != nil {
		s.noteShed(r, req.Query, err)
		s.error(w, r, statusFor(err), "query failed: %v", err)
		return
	}
	res, err := guardPanic(s.log, RequestID(r), req.Query, s.flightDump, func() (catalog.SortedResult, error) {
		return s.eng.QuerySorted(ctx, req.Query)
	})
	s.release()
	if err != nil {
		s.error(w, r, statusFor(err), "query failed: %v", err)
		return
	}
	s.noteSlow(r, req.Query, time.Since(start), len(res.Tuples), res.PlanCached)
	tuples, next, err := paginate(res.Tuples, req.Limit, req.Cursor)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:     res.Columns,
		Tuples:      tuples,
		Rows:        len(res.Tuples),
		Plan:        res.Plan,
		PlanCache:   res.PlanCached,
		ResultCache: res.Cached,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
		NextCursor:  next,
	})
}

// cursorPrefix versions the opaque pagination cursor.
const cursorPrefix = "v1:"

// paginate slices one page out of the sorted result: limit tuples starting
// at the cursor's offset (limit ≤ 0 with a cursor serves the remainder).
// The returned cursor resumes after the page, or is empty at the end.
func paginate(tuples [][]int64, limit int, cursor string) ([][]int64, string, error) {
	offset := 0
	if cursor != "" {
		raw, err := base64.URLEncoding.DecodeString(cursor)
		if err != nil || !strings.HasPrefix(string(raw), cursorPrefix) {
			return nil, "", fmt.Errorf("malformed cursor %q", cursor)
		}
		offset, err = strconv.Atoi(strings.TrimPrefix(string(raw), cursorPrefix))
		if err != nil || offset < 0 {
			return nil, "", fmt.Errorf("malformed cursor %q", cursor)
		}
	}
	if offset > len(tuples) {
		offset = len(tuples)
	}
	end := len(tuples)
	if limit > 0 && offset+limit < end {
		end = offset + limit
	}
	next := ""
	if end < len(tuples) {
		next = base64.URLEncoding.EncodeToString([]byte(cursorPrefix + strconv.Itoa(end)))
	}
	return tuples[offset:end], next, nil
}

type explainResponse struct {
	Plan       string   `json:"plan"`
	Strategies []string `json:"strategies"`
	Predicted  bool     `json:"predicted"`
	PlanCache  bool     `json:"plan_cached"`
	// Analyzed marks an EXPLAIN ANALYZE response: the plan carries measured
	// per-node times next to the cost model's est|OUT| predictions, and the
	// phase/budget fields below are populated.
	Analyzed    bool    `json:"analyzed,omitempty"`
	PrepareMs   float64 `json:"prepare_ms,omitempty"`
	ExecMs      float64 `json:"exec_ms,omitempty"`
	BudgetBytes int64   `json:"budget_bytes,omitempty"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	var plan *query.Plan
	if req.Analyze {
		res, err := s.evaluate(r, req)
		if err != nil {
			s.error(w, r, statusFor(err), "explain analyze failed: %v", err)
			return
		}
		plan = res.Plan
		plan.Analyzed = true
	} else {
		// Compilation runs the full semijoin reduction (and, for cyclic
		// queries, bag materialization), so EXPLAIN goes through the same
		// admission gate and timeout as query evaluation.
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
		defer cancel()
		if err := s.admit(ctx); err != nil {
			s.error(w, r, statusFor(err), "explain failed: %v", err)
			return
		}
		p, err := s.eng.ExplainQueryContext(ctx, req.Query)
		s.release()
		if err != nil {
			s.error(w, r, statusFor(err), "explain failed: %v", err)
			return
		}
		plan = p
	}
	out := explainResponse{
		Plan:       plan.String(),
		Strategies: plan.Strategies(),
		Predicted:  plan.Predicted,
		PlanCache:  plan.CacheHit,
	}
	if plan.Analyzed {
		out.Analyzed = true
		out.PrepareMs = float64(plan.PrepareNs) / 1e6
		out.ExecMs = float64(plan.ExecNs) / 1e6
		out.BudgetBytes = plan.BudgetBytes
	}
	writeJSON(w, http.StatusOK, out)
}

type catalogResponse struct {
	Epoch     uint64         `json:"epoch"`
	Relations []relationInfo `json:"relations"`
	CacheHits uint64         `json:"plan_cache_hits"`
	CacheMiss uint64         `json:"plan_cache_misses"`
	CacheSize int            `json:"plan_cache_size"`
}

type relationInfo struct {
	Name       string  `json:"name"`
	Tuples     int     `json:"tuples"`
	Sets       int     `json:"sets"`
	Domain     int     `json:"domain"`
	AvgSetSize float64 `json:"avg_set_size"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := s.eng.Catalog()
	infos := cat.List()
	out := catalogResponse{Epoch: cat.Epoch(), Relations: make([]relationInfo, 0, len(infos))}
	out.CacheHits, out.CacheMiss, out.CacheSize = cat.CacheStats()
	for _, in := range infos {
		out.Relations = append(out.Relations, relationInfo{
			Name: in.Name, Tuples: in.Stats.Tuples, Sets: in.Stats.NumSets,
			Domain: in.Stats.DomainSize, AvgSetSize: in.Stats.AvgSetSize,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type registerRequest struct {
	Name  string     `json:"name"`
	Pairs [][2]int32 `json:"pairs,omitempty"`
	Path  string     `json:"path,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		s.error(w, r, http.StatusBadRequest, "relation name is required")
		return
	}
	// Stats come from the relation we just registered, not a catalog
	// re-fetch — a concurrent DELETE must not turn this into a nil deref.
	cat := s.eng.Catalog()
	var rel *relation.Relation
	switch {
	case req.Path != "":
		loaded, err := cat.LoadFile(req.Name, req.Path)
		if err != nil {
			s.error(w, r, clientStatus(err), "%v", err)
			return
		}
		rel = loaded
	default:
		ps := make([]relation.Pair, len(req.Pairs))
		for i, p := range req.Pairs {
			ps[i] = relation.Pair{X: p[0], Y: p[1]}
		}
		loaded, err := cat.RegisterPairs(req.Name, ps)
		if err != nil {
			s.error(w, r, clientStatus(err), "%v", err)
			return
		}
		rel = loaded
	}
	st := rel.Stats()
	writeJSON(w, http.StatusOK, relationInfo{
		Name: req.Name, Tuples: st.Tuples, Sets: st.NumSets,
		Domain: st.DomainSize, AvgSetSize: st.AvgSetSize,
	})
}

// clientStatus classifies errors from endpoints whose failures are normally
// the caller's fault (400), still surfacing a degraded engine as 503.
func clientStatus(err error) int {
	if errors.Is(err, core.ErrDegraded) {
		return http.StatusServiceUnavailable
	}
	return http.StatusBadRequest
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	present, err := s.eng.Catalog().Drop(name)
	if err != nil {
		// A durability-sink veto: the relation still exists, nothing changed.
		s.error(w, r, mutationStatus(err), "%v", err)
		return
	}
	if !present {
		s.error(w, r, http.StatusNotFound, "unknown relation %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}

// mutationStatus maps catalog-mutation errors: unknown relation is the
// caller's mistake (404), a degraded read-only engine is a retryable
// operational state (503 + Retry-After), and anything else (a WAL append
// failure, say) is an operational server error (500) that must not read as
// "not found".
func mutationStatus(err error) int {
	switch {
	case errors.Is(err, catalog.ErrUnknownRelation):
		return http.StatusNotFound
	case errors.Is(err, core.ErrDegraded):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

type mutateRequest struct {
	Pairs [][2]int32 `json:"pairs"`
}

type mutateResponse struct {
	Name string `json:"name"`
	// Added and Removed count the effective (coalesced) tuple delta.
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	Tuples  int    `json:"tuples"`
	Version uint64 `json:"version"`
	Epoch   uint64 `json:"epoch"`
	// ElapsedMs includes synchronous view maintenance.
	ElapsedMs float64 `json:"elapsed_ms"`
}

// handleMutate serves POST /catalog/relations/{name}/insert|delete. The
// response reports the effective delta; registered views are maintained
// synchronously before it is written.
func (s *Server) handleMutate(del bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req mutateRequest
		if !s.decodeBody(w, r, &req) {
			return
		}
		name := r.PathValue("name")
		ps := make([]relation.Pair, len(req.Pairs))
		for i, p := range req.Pairs {
			ps[i] = relation.Pair{X: p[0], Y: p[1]}
		}
		start := time.Now()
		var m catalog.Mutation
		var err error
		if del {
			m, err = s.eng.Mutate(name, nil, ps)
		} else {
			m, err = s.eng.Mutate(name, ps, nil)
		}
		if err != nil {
			s.error(w, r, mutationStatus(err), "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, mutateResponse{
			Name:      name,
			Added:     len(m.Added),
			Removed:   len(m.Removed),
			Tuples:    m.New.Size(),
			Version:   m.Version,
			Epoch:     m.Epoch,
			ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
		})
	}
}

type createViewRequest struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

type viewInfoResponse struct {
	Name      string         `json:"name"`
	Query     string         `json:"query"`
	Rows      int            `json:"rows"`
	Freshness view.Freshness `json:"freshness"`
}

func (s *Server) handleCreateView(w http.ResponseWriter, r *http.Request) {
	var req createViewRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	if err := s.admit(ctx); err != nil {
		s.error(w, r, statusFor(err), "create view failed: %v", err)
		return
	}
	v, err := s.eng.RegisterView(ctx, req.Name, req.Query)
	s.release()
	if err != nil {
		s.error(w, r, clientStatus(err), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, viewInfoResponse{
		Name: v.Name(), Query: v.Text(), Rows: v.Rows(), Freshness: v.Freshness(),
	})
}

func (s *Server) handleListViews(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"views": s.eng.Views()})
}

type viewResultResponse struct {
	Name    string    `json:"name"`
	Query   string    `json:"query"`
	Columns []string  `json:"columns"`
	Tuples  [][]int64 `json:"tuples"`
	Rows    int       `json:"rows"` // total result size, not the page size
	// Freshness is the maintenance metadata the result was served under.
	Freshness  view.Freshness `json:"freshness"`
	NextCursor string         `json:"next_cursor,omitempty"`
}

// handleGetView serves one view's materialized result with freshness
// metadata, paginated via ?limit=N&cursor=C (the view store keeps tuples in
// canonical sorted order, so pages are consistent for a fixed view state).
func (s *Server) handleGetView(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, ok := s.eng.View(name)
	if !ok {
		s.error(w, r, http.StatusNotFound, "unknown view %q", name)
		return
	}
	limit := 0
	if lq := r.URL.Query().Get("limit"); lq != "" {
		n, err := strconv.Atoi(lq)
		if err != nil || n < 0 {
			s.error(w, r, http.StatusBadRequest, "malformed limit %q", lq)
			return
		}
		limit = n
	}
	// Reading a stale refresh-mode view recomputes it from scratch, so the
	// read goes through the same admission gate as query evaluation.
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	if err := s.admit(ctx); err != nil {
		s.error(w, r, statusFor(err), "%v", err)
		return
	}
	cols, tuples, fresh, err := v.Result(ctx)
	s.release()
	if err != nil {
		s.error(w, r, statusFor(err), "%v", err)
		return
	}
	total := len(tuples)
	next := ""
	if cursor := r.URL.Query().Get("cursor"); limit > 0 || cursor != "" {
		tuples, next, err = paginate(tuples, limit, cursor)
		if err != nil {
			s.error(w, r, http.StatusBadRequest, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, viewResultResponse{
		Name: name, Query: v.Text(), Columns: cols, Tuples: tuples,
		Rows: total, Freshness: fresh, NextCursor: next,
	})
}

// handleExplainView serves the view's maintenance plan (EXPLAIN for the
// update path: how deltas propagate, with predicted per-delta costs).
func (s *Server) handleExplainView(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	v, ok := s.eng.View(name)
	if !ok {
		s.error(w, r, http.StatusNotFound, "unknown view %q", name)
		return
	}
	plan := v.MaintenancePlan()
	writeJSON(w, http.StatusOK, map[string]any{
		"plan":      plan.String(),
		"mode":      v.Mode(),
		"freshness": v.Freshness(),
	})
}

func (s *Server) handleDropView(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	present, err := s.eng.DropView(name)
	if err != nil {
		// A durability-log failure: the view still exists, nothing changed.
		s.error(w, r, mutationStatus(err), "%v", err)
		return
	}
	if !present {
		s.error(w, r, http.StatusNotFound, "unknown view %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}
