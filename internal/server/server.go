// Package server exposes the query engine over HTTP/JSON: query evaluation,
// EXPLAIN, and catalog management, with per-query timeouts and bounded
// admission so a burst of heavy queries degrades to queueing instead of
// memory blow-up. cmd/joinmmd is the thin main wrapping this package.
//
// Endpoints (all JSON):
//
//	POST   /query              {"query": "...", "timeout_ms": 0}  → result
//	POST   /explain            {"query": "...", "analyze": false} → plan
//	GET    /catalog                                               → listing
//	POST   /catalog/relations  {"name": "R", "pairs": [[x,y],...]}
//	                           or {"name": "R", "path": "file"}   → stats
//	DELETE /catalog/relations/{name}
//	GET    /healthz
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/query"
	"repro/internal/relation"
)

// Config configures a Server.
type Config struct {
	// Engine evaluates the queries; nil builds a default engine.
	Engine *core.Engine
	// Timeout bounds each query's evaluation (default 30s). A request may
	// lower (never raise) it via timeout_ms.
	Timeout time.Duration
	// MaxInFlight bounds concurrently evaluating queries; further requests
	// wait (up to their timeout) for an admission slot. Default: the
	// engine's worker count (all cores).
	MaxInFlight int
}

// Server handles the HTTP API.
type Server struct {
	eng     *core.Engine
	timeout time.Duration
	sem     chan struct{}
}

// New builds a server from the config.
func New(cfg Config) *Server {
	eng := cfg.Engine
	if eng == nil {
		eng = core.NewEngine()
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	slots := cfg.MaxInFlight
	if slots <= 0 {
		slots = par.Workers(0)
	}
	return &Server{eng: eng, timeout: timeout, sem: make(chan struct{}, slots)}
}

// Engine returns the wrapped engine (for preloading relations).
func (s *Server) Engine() *core.Engine { return s.eng }

// Handler returns the HTTP handler with all routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("GET /catalog", s.handleCatalog)
	mux.HandleFunc("POST /catalog/relations", s.handleRegister)
	mux.HandleFunc("DELETE /catalog/relations/{name}", s.handleDrop)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"ok": true})
	})
	return mux
}

type queryRequest struct {
	Query string `json:"query"`
	// TimeoutMs lowers the server's per-query timeout for this request.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// Analyze on /explain executes the query and returns the actual plan.
	Analyze bool `json:"analyze,omitempty"`
}

type queryResponse struct {
	Columns   []string  `json:"columns"`
	Tuples    [][]int64 `json:"tuples"`
	Rows      int       `json:"rows"`
	Plan      string    `json:"plan"`
	PlanCache bool      `json:"plan_cached"`
	ElapsedMs float64   `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// requestTimeout resolves the effective timeout for one request.
func (s *Server) requestTimeout(req queryRequest) time.Duration {
	t := s.timeout
	if req.TimeoutMs > 0 {
		if rt := time.Duration(req.TimeoutMs) * time.Millisecond; rt < t {
			t = rt
		}
	}
	return t
}

// admit acquires an evaluation slot, giving up when the context expires.
// The explicit Err check first keeps an already-expired deadline from racing
// a free slot in the select.
func (s *Server) admit(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// evaluate runs one query under timeout + admission. The evaluation happens
// in this goroutine (no orphaned work on timeout: the executor polls the
// context between plan operators).
func (s *Server) evaluate(r *http.Request, req queryRequest) (*query.Result, error) {
	ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
	defer cancel()
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer s.release()
	return s.eng.QueryContext(ctx, req.Query)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusRequestTimeout
	default:
		return http.StatusBadRequest
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	start := time.Now()
	res, err := s.evaluate(r, req)
	if err != nil {
		writeError(w, statusFor(err), "query failed: %v", err)
		return
	}
	tuples := res.Tuples
	if tuples == nil {
		tuples = [][]int64{}
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Columns:   res.Columns,
		Tuples:    tuples,
		Rows:      len(res.Tuples),
		Plan:      res.Plan.String(),
		PlanCache: res.Plan.CacheHit,
		ElapsedMs: float64(time.Since(start).Microseconds()) / 1000,
	})
}

type explainResponse struct {
	Plan       string   `json:"plan"`
	Strategies []string `json:"strategies"`
	Predicted  bool     `json:"predicted"`
	PlanCache  bool     `json:"plan_cached"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	var plan *query.Plan
	if req.Analyze {
		res, err := s.evaluate(r, req)
		if err != nil {
			writeError(w, statusFor(err), "explain analyze failed: %v", err)
			return
		}
		plan = res.Plan
	} else {
		// Compilation runs the full semijoin reduction (and, for cyclic
		// queries, bag materialization), so EXPLAIN goes through the same
		// admission gate and timeout as query evaluation.
		ctx, cancel := context.WithTimeout(r.Context(), s.requestTimeout(req))
		defer cancel()
		if err := s.admit(ctx); err != nil {
			writeError(w, statusFor(err), "explain failed: %v", err)
			return
		}
		p, err := s.eng.ExplainQueryContext(ctx, req.Query)
		s.release()
		if err != nil {
			writeError(w, statusFor(err), "explain failed: %v", err)
			return
		}
		plan = p
	}
	writeJSON(w, http.StatusOK, explainResponse{
		Plan:       plan.String(),
		Strategies: plan.Strategies(),
		Predicted:  plan.Predicted,
		PlanCache:  plan.CacheHit,
	})
}

type catalogResponse struct {
	Epoch     uint64         `json:"epoch"`
	Relations []relationInfo `json:"relations"`
	CacheHits uint64         `json:"plan_cache_hits"`
	CacheMiss uint64         `json:"plan_cache_misses"`
	CacheSize int            `json:"plan_cache_size"`
}

type relationInfo struct {
	Name       string  `json:"name"`
	Tuples     int     `json:"tuples"`
	Sets       int     `json:"sets"`
	Domain     int     `json:"domain"`
	AvgSetSize float64 `json:"avg_set_size"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	cat := s.eng.Catalog()
	infos := cat.List()
	out := catalogResponse{Epoch: cat.Epoch(), Relations: make([]relationInfo, 0, len(infos))}
	out.CacheHits, out.CacheMiss, out.CacheSize = cat.CacheStats()
	for _, in := range infos {
		out.Relations = append(out.Relations, relationInfo{
			Name: in.Name, Tuples: in.Stats.Tuples, Sets: in.Stats.NumSets,
			Domain: in.Stats.DomainSize, AvgSetSize: in.Stats.AvgSetSize,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

type registerRequest struct {
	Name  string     `json:"name"`
	Pairs [][2]int32 `json:"pairs,omitempty"`
	Path  string     `json:"path,omitempty"`
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, "relation name is required")
		return
	}
	// Stats come from the relation we just registered, not a catalog
	// re-fetch — a concurrent DELETE must not turn this into a nil deref.
	cat := s.eng.Catalog()
	var rel *relation.Relation
	switch {
	case req.Path != "":
		r, err := cat.LoadFile(req.Name, req.Path)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		rel = r
	default:
		ps := make([]relation.Pair, len(req.Pairs))
		for i, p := range req.Pairs {
			ps[i] = relation.Pair{X: p[0], Y: p[1]}
		}
		r, err := cat.RegisterPairs(req.Name, ps)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		rel = r
	}
	st := rel.Stats()
	writeJSON(w, http.StatusOK, relationInfo{
		Name: req.Name, Tuples: st.Tuples, Sets: st.NumSets,
		Domain: st.DomainSize, AvgSetSize: st.AvgSetSize,
	})
}

func (s *Server) handleDrop(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !s.eng.Catalog().Drop(name) {
		writeError(w, http.StatusNotFound, "unknown relation %q", name)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"dropped": name})
}
