package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/stats"
)

// Workload-introspection surfaces: GET /stats/statements (per-fingerprint
// aggregates), POST /stats/reset, GET /stats/activity (+ external kill via
// POST /stats/activity/{id}/cancel) and GET /debug/flight (recently
// completed query traces). All of them serve on primaries and read-only
// replicas alike — a follower's workload is exactly what these exist to
// explain — and every response is tagged with the node's role.

// role names this node for the introspection envelopes.
func (s *Server) role() string {
	if s.replica != nil {
		return "replica"
	}
	return "primary"
}

// handleStatements serves GET /stats/statements?sort=<key>&limit=N: the
// statement sheet sorted descending by total_ms (default), calls, mean_ms,
// max_ms, rows or errors.
func (s *Server) handleStatements(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sortBy := q.Get("sort")
	switch sortBy {
	case "", stats.SortCalls, stats.SortTotalMs, stats.SortMeanMs, stats.SortMaxMs, stats.SortRows, stats.SortErrors:
	default:
		s.error(w, r, http.StatusBadRequest, "unknown sort key %q", sortBy)
		return
	}
	limit := 0
	if lq := q.Get("limit"); lq != "" {
		n, err := strconv.Atoi(lq)
		if err != nil || n < 0 {
			s.error(w, r, http.StatusBadRequest, "malformed limit %q", lq)
			return
		}
		limit = n
	}
	rows := s.eng.StatementStats().Snapshot(sortBy, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"role":       s.role(),
		"sort":       orDefault(sortBy, stats.SortTotalMs),
		"count":      len(rows),
		"statements": rows,
	})
}

func orDefault(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

// handlePlanner serves GET /stats/planner?sort=K&limit=N: the planner-
// accuracy misprediction sheet, ranked by call-weighted error magnitude by
// default, with per-fingerprint decision history and the optimizer's
// constant/drift report.
func (s *Server) handlePlanner(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	sortBy := q.Get("sort")
	switch sortBy {
	case "", stats.PlannerSortScore, stats.PlannerSortCalls, stats.PlannerSortNodes,
		stats.PlannerSortNearMargin, stats.PlannerSortWorst:
	default:
		s.error(w, r, http.StatusBadRequest, "unknown sort key %q", sortBy)
		return
	}
	limit := 0
	if lq := q.Get("limit"); lq != "" {
		n, err := strconv.Atoi(lq)
		if err != nil || n < 0 {
			s.error(w, r, http.StatusBadRequest, "malformed limit %q", lq)
			return
		}
		limit = n
	}
	rows := s.eng.PlannerStats().Snapshot(sortBy, limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"role":         s.role(),
		"sort":         orDefault(sortBy, stats.PlannerSortScore),
		"count":        len(rows),
		"constants":    s.eng.Optimizer().ConstantsInfo(),
		"fingerprints": rows,
	})
}

// handleStatsReset serves POST /stats/reset: drop every statement and
// planner-accuracy aggregate and start fresh sheets. Cumulative /metrics
// counters are unaffected.
func (s *Server) handleStatsReset(w http.ResponseWriter, r *http.Request) {
	n := s.eng.StatementStats().Reset()
	np := s.eng.PlannerStats().Reset()
	writeJSON(w, http.StatusOK, map[string]any{"reset": true, "dropped": n, "dropped_planner": np})
}

// handleActivity serves GET /stats/activity: every in-flight query with its
// id, correlation id, fingerprint, elapsed time, current plan node and
// rows/bytes so far.
func (s *Server) handleActivity(w http.ResponseWriter, r *http.Request) {
	active := s.eng.Activity().List()
	writeJSON(w, http.StatusOK, map[string]any{
		"role":   s.role(),
		"count":  len(active),
		"active": active,
	})
}

// handleActivityCancel serves POST /stats/activity/{id}/cancel: kill one
// running query from outside. The kill is cooperative — the query's context
// is cancelled and the executor's Stop hooks unwind it at the next kernel
// poll point — so the 200 means "kill delivered", and the query's own
// request answers 408 with its partial work discarded.
func (s *Server) handleActivityCancel(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		s.error(w, r, http.StatusBadRequest, "malformed activity id %q", r.PathValue("id"))
		return
	}
	if !s.eng.Activity().Cancel(id) {
		s.error(w, r, http.StatusNotFound, "no in-flight query with id %d", id)
		return
	}
	s.log.Warn("query killed via /stats/activity",
		"request_id", RequestID(r), "killed_id", id)
	writeJSON(w, http.StatusOK, map[string]any{"killed": id})
}

// handleFlight serves GET /debug/flight?limit=N: the flight recorder's
// retained query traces, newest first, plus how many unremarkable queries
// were sampled out (what the ring is not showing).
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if lq := r.URL.Query().Get("limit"); lq != "" {
		n, err := strconv.Atoi(lq)
		if err != nil || n < 0 {
			s.error(w, r, http.StatusBadRequest, "malformed limit %q", lq)
			return
		}
		limit = n
	}
	fl := s.eng.FlightRecorder()
	recs := fl.Snapshot(limit)
	writeJSON(w, http.StatusOK, map[string]any{
		"role":              s.role(),
		"count":             len(recs),
		"sampled_out":       fl.SampledOut(),
		"slow_threshold_ms": float64(fl.SlowThreshold().Nanoseconds()) / 1e6,
		"records":           recs,
	})
}

// flightDump renders the most recent flight records as one JSON string for
// the crash log: when a query panics, the last thing the flight recorder saw
// is usually the context that explains it.
func (s *Server) flightDump() string {
	recs := s.eng.FlightRecorder().Snapshot(8)
	if len(recs) == 0 {
		return "[]"
	}
	b, err := json.Marshal(recs)
	if err != nil {
		return "[]"
	}
	return string(b)
}

// handleReplStatus serves GET /repl/status on a follower: the replica's
// position, lag and recent lag history. (A primary's /repl/status is the
// shipping source's view and is mounted by Handler separately.)
func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.replica.Status())
}

// noteShed attributes an admission rejection to the statement that was shed,
// so overload shows up per-fingerprint in /stats/statements and in the
// flight recorder rather than only as an aggregate 429 count.
func (s *Server) noteShed(r *http.Request, q string, err error) {
	if errors.Is(err, ErrOverloaded) && q != "" {
		s.eng.NoteShed(r.Context(), q)
	}
}
