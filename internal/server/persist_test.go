package server

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/wal"
)

// TestCheckpointEndpointAndHealthz drives the durability surface over HTTP:
// healthz exposes WAL/recovery stats, /admin/checkpoint commits a snapshot,
// and a recovered server serves the same data.
func TestCheckpointEndpointAndHealthz(t *testing.T) {
	dir := t.TempDir()
	eng := core.NewEngine()
	if err := eng.Open(dir, core.PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Engine: eng})
	registerChain(t, ts)
	if code := post(t, ts, "/catalog/relations/R/insert", map[string]any{"pairs": [][2]int32{{3, 11}}}, nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}

	var health struct {
		OK          bool                  `json:"ok"`
		Persistence core.PersistenceStats `json:"persistence"`
		Extra       map[string]any        `json:"-"`
	}
	if code := get(t, ts, "/healthz", &health); code != http.StatusOK || !health.OK {
		t.Fatalf("healthz: %d %+v", code, health)
	}
	if !health.Persistence.Enabled || health.Persistence.WAL.NextLSN < 4 {
		t.Fatalf("healthz persistence stats missing: %+v", health.Persistence)
	}

	var info core.CheckpointInfo
	if code := post(t, ts, "/admin/checkpoint", map[string]any{}, &info); code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", code)
	}
	if info.Relations != 2 || info.AppliedLSN == 0 {
		t.Fatalf("checkpoint info %+v", info)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// A second engine recovers the same catalog and serves it.
	eng2 := core.NewEngine()
	if err := eng2.Open(dir, core.PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	ts2 := newTestServer(t, Config{Engine: eng2})
	var res queryResponse
	if code := post(t, ts2, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &res); code != http.StatusOK {
		t.Fatalf("query after recovery: status %d", code)
	}
	if res.Rows == 0 {
		t.Fatal("recovered server served empty result")
	}
	var health2 struct {
		Persistence core.PersistenceStats `json:"persistence"`
	}
	get(t, ts2, "/healthz", &health2)
	if health2.Persistence.Recovery.SnapshotLSN != info.AppliedLSN {
		t.Fatalf("recovery stats %+v, want snapshot lsn %d", health2.Persistence.Recovery, info.AppliedLSN)
	}
}

// TestCheckpointWithoutDataDir pins the 409 on ephemeral servers.
func TestCheckpointWithoutDataDir(t *testing.T) {
	ts := newTestServer(t, Config{})
	var e errorResponse
	if code := post(t, ts, "/admin/checkpoint", map[string]any{}, &e); code != http.StatusConflict {
		t.Fatalf("checkpoint on ephemeral server: status %d (%+v)", code, e)
	}
}

// TestPageSequenceUsesResultCache pins the pagination result cache over
// HTTP: the second page of a sequence must be served from the cached sorted
// result, and a mutation must invalidate it.
func TestPageSequenceUsesResultCache(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)
	src := "Q(x, z) :- R(x, y), S(y, z)"

	var p1 queryResponse
	if code := post(t, ts, "/query", map[string]any{"query": src, "limit": 1}, &p1); code != http.StatusOK {
		t.Fatalf("page 1: status %d", code)
	}
	if p1.ResultCache {
		t.Fatal("first page reported a result-cache hit")
	}
	if p1.NextCursor == "" {
		t.Fatal("expected more pages")
	}
	var p2 queryResponse
	if code := post(t, ts, "/query", map[string]any{"query": src, "limit": 1, "cursor": p1.NextCursor}, &p2); code != http.StatusOK {
		t.Fatalf("page 2: status %d", code)
	}
	if !p2.ResultCache {
		t.Fatal("second page re-evaluated instead of hitting the result cache")
	}

	// Mutating a referenced relation invalidates the cached pages.
	if code := post(t, ts, "/catalog/relations/R/insert", map[string]any{"pairs": [][2]int32{{9, 10}}}, nil); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	var p3 queryResponse
	if code := post(t, ts, "/query", map[string]any{"query": src, "limit": 1}, &p3); code != http.StatusOK {
		t.Fatalf("page after mutation: status %d", code)
	}
	if p3.ResultCache {
		t.Fatal("stale cached result served after mutation")
	}
	// (9, 10) joins S's (10, 5) and (10, 6): two new output tuples.
	if p3.Rows != p1.Rows+2 {
		t.Fatalf("post-mutation total %d, want %d", p3.Rows, p1.Rows+2)
	}
}

// TestDrain pins the shutdown path: drain with idle slots returns at once;
// drain with a busy slot waits for it (or times out).
func TestDrain(t *testing.T) {
	s := New(Config{MaxInFlight: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("idle drain: %v", err)
	}

	s2 := New(Config{MaxInFlight: 2})
	if err := s2.admit(context.Background()); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	if err := s2.Drain(shortCtx); err == nil {
		t.Fatal("drain returned with a query in flight")
	}
	s2.release()
	ctx3, cancel3 := context.WithTimeout(context.Background(), time.Second)
	defer cancel3()
	if err := s2.Drain(ctx3); err != nil {
		t.Fatalf("drain after release: %v", err)
	}
}
