package server

import (
	"net/http"
	"regexp"
	"strings"
	"testing"

	"repro/internal/stats"
)

// plannerEnvelope mirrors the GET /stats/planner response.
type plannerEnvelope struct {
	Role         string             `json:"role"`
	Sort         string             `json:"sort"`
	Count        int                `json:"count"`
	Constants    map[string]any     `json:"constants"`
	Fingerprints []stats.PlannerRow `json:"fingerprints"`
}

func findPlannerRow(rows []stats.PlannerRow, fp string) *stats.PlannerRow {
	for i := range rows {
		if rows[i].Fingerprint == fp {
			return &rows[i]
		}
	}
	return nil
}

// TestPlannerSheetAggregatesAndResets drives strategy-bearing queries through
// the live HTTP stack and asserts the misprediction sheet aggregates them per
// fingerprint with error ratios, margins and decision history, honors its
// sort params, and resets through the shared POST /stats/reset.
func TestPlannerSheetAggregatesAndResets(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	for _, q := range []string{
		"Q(x, z) :- R(x, y), S(y, z)",
		"Q(x) :- R(x, y), S(y, 5)", // different fingerprint family
		"Q(x, z) :- R(x, y), S(y, z)",
	} {
		if code := post(t, ts, "/query", map[string]any{"query": q}, nil); code != http.StatusOK {
			t.Fatalf("query %q: status %d", q, code)
		}
	}

	var env plannerEnvelope
	if code := get(t, ts, "/stats/planner", &env); code != http.StatusOK {
		t.Fatalf("planner: status %d", code)
	}
	if env.Role != "primary" || env.Sort != stats.PlannerSortScore {
		t.Fatalf("envelope role=%q sort=%q", env.Role, env.Sort)
	}
	row := findPlannerRow(env.Fingerprints, "Q($0, $1) :- R($0, $2), S($2, $1)")
	if row == nil {
		t.Fatalf("no planner row for the chain query in %+v", env.Fingerprints)
	}
	if row.Calls != 2 || row.Nodes < 2 {
		t.Fatalf("chain row calls=%d nodes=%d, want 2 calls with audited nodes", row.Calls, row.Nodes)
	}
	if len(row.Decisions) == 0 {
		t.Fatal("decision history empty")
	}
	d := row.Decisions[0]
	if d.Strategy == "" || d.Margin <= 0 {
		t.Fatalf("decision record missing strategy/margin: %+v", d)
	}
	if len(row.Strategies) == 0 {
		t.Fatal("per-strategy error aggregates missing")
	}
	for s, se := range row.Strategies {
		if se.Nodes == 0 {
			t.Fatalf("strategy %q with zero nodes", s)
		}
	}
	// The tiny fold runs in well under a predicted-cost-comparable time, but
	// both sides of the ratio exist, so the error aggregates must be there.
	if row.Score <= 0 {
		t.Fatalf("score = %v, want > 0 (cost-error mass)", row.Score)
	}

	// The constants/drift report rides along.
	if env.Constants == nil {
		t.Fatal("constants report missing")
	}
	for _, k := range []string{"probed", "current", "observed", "drift_light", "near_margin_band"} {
		if _, ok := env.Constants[k]; !ok {
			t.Fatalf("constants report missing %q: %v", k, env.Constants)
		}
	}

	// Sort params: unknown key 400, valid keys + limit work.
	if code := get(t, ts, "/stats/planner?sort=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad sort key: status %d", code)
	}
	if code := get(t, ts, "/stats/planner?sort=calls&limit=1", &env); code != http.StatusOK || env.Count != 1 {
		t.Fatalf("sorted+limited: status %d count %d", code, env.Count)
	}
	if code := get(t, ts, "/stats/planner?limit=zap", nil); code != http.StatusBadRequest {
		t.Fatalf("malformed limit: status %d", code)
	}

	// POST /stats/reset clears the planner sheet alongside the statement one.
	var reset struct {
		Reset          bool `json:"reset"`
		Dropped        int  `json:"dropped"`
		DroppedPlanner int  `json:"dropped_planner"`
	}
	if code := post(t, ts, "/stats/reset", map[string]any{}, &reset); code != http.StatusOK || !reset.Reset || reset.DroppedPlanner == 0 {
		t.Fatalf("reset: status %d %+v", code, reset)
	}
	if code := get(t, ts, "/stats/planner", &env); code != http.StatusOK || env.Count != 0 {
		t.Fatalf("after reset: status %d count %d", code, env.Count)
	}
}

// TestPlannerSheetOnReplica runs queries on a read-only follower and asserts
// the planner sheet serves there with role=replica — a follower's plan
// quality is exactly what the sheet exists to audit.
func TestPlannerSheetOnReplica(t *testing.T) {
	primary, follower, rep := newPrimaryFollower(t)
	registerChain(t, primary)
	waitFollower(t, rep, 2)

	if code := post(t, follower, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, nil); code != http.StatusOK {
		t.Fatalf("query on follower: status %d", code)
	}
	var env plannerEnvelope
	if code := get(t, follower, "/stats/planner", &env); code != http.StatusOK {
		t.Fatalf("planner on follower: status %d", code)
	}
	if env.Role != "replica" {
		t.Fatalf("role = %q, want replica", env.Role)
	}
	if env.Count == 0 {
		t.Fatal("follower planner sheet empty after a query")
	}
}

// TestExplainAnalyzeErrColumn asserts EXPLAIN ANALYZE renders the per-node
// err= column (predicted-vs-actual ratios) and plain EXPLAIN does not, while
// predicted-only plans still surface the optimizer's estimates and margin
// (the reason a strategy was picked).
func TestExplainAnalyzeErrColumn(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	const q = "Q(x, z) :- R(x, y), S(y, z)"
	var analyzed struct {
		Plan string `json:"plan"`
	}
	if code := post(t, ts, "/explain", map[string]any{"query": q, "analyze": true}, &analyzed); code != http.StatusOK {
		t.Fatalf("explain analyze: status %d", code)
	}
	if !regexp.MustCompile(`err=cost×\d+(\.\d+)?`).MatchString(analyzed.Plan) {
		t.Fatalf("EXPLAIN ANALYZE missing err= column:\n%s", analyzed.Plan)
	}
	if !strings.Contains(analyzed.Plan, "margin=") {
		t.Fatalf("EXPLAIN ANALYZE missing decision margin:\n%s", analyzed.Plan)
	}

	var plain struct {
		Plan string `json:"plan"`
	}
	if code := post(t, ts, "/explain", map[string]any{"query": q}, &plain); code != http.StatusOK {
		t.Fatalf("explain: status %d", code)
	}
	if strings.Contains(plain.Plan, "err=") {
		t.Fatalf("plain EXPLAIN leaks err= column:\n%s", plain.Plan)
	}
	// The predicted-only bugfix: estimates and margin show without analyze.
	for _, want := range []string{"est|OUT|=", "|OUT⋈|=", "margin="} {
		if !strings.Contains(plain.Plan, want) {
			t.Fatalf("predicted plan missing %q:\n%s", want, plain.Plan)
		}
	}
}
