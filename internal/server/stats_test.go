package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/stats"
)

// statementsEnvelope mirrors the GET /stats/statements response.
type statementsEnvelope struct {
	Role       string               `json:"role"`
	Sort       string               `json:"sort"`
	Count      int                  `json:"count"`
	Statements []stats.StatementRow `json:"statements"`
}

// activityEnvelope mirrors the GET /stats/activity response.
type activityEnvelope struct {
	Role   string             `json:"role"`
	Count  int                `json:"count"`
	Active []stats.ActiveInfo `json:"active"`
}

// flightEnvelope mirrors the GET /debug/flight response.
type flightEnvelope struct {
	Role       string               `json:"role"`
	Count      int                  `json:"count"`
	SampledOut uint64               `json:"sampled_out"`
	Records    []stats.FlightRecord `json:"records"`
}

// findStatement returns the row for fingerprint fp, or nil.
func findStatement(rows []stats.StatementRow, fp string) *stats.StatementRow {
	for i := range rows {
		if rows[i].Fingerprint == fp {
			return &rows[i]
		}
	}
	return nil
}

// TestStatementsAggregateByFingerprint drives two queries that differ only in
// a constant through the live HTTP stack and asserts they aggregate under one
// fingerprint, then resets the sheet.
func TestStatementsAggregateByFingerprint(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	for _, q := range []string{
		"Q(x) :- R(x, y), S(y, 5)",
		"Q(x) :- R(x, y), S(y, 6)",
	} {
		if code := post(t, ts, "/query", map[string]any{"query": q}, nil); code != http.StatusOK {
			t.Fatalf("query %q: status %d", q, code)
		}
	}

	var env statementsEnvelope
	if code := get(t, ts, "/stats/statements", &env); code != http.StatusOK {
		t.Fatalf("statements: status %d", code)
	}
	if env.Role != "primary" {
		t.Fatalf("role = %q, want primary", env.Role)
	}
	fp := "Q($0) :- R($0, $1), S($1, ?)"
	row := findStatement(env.Statements, fp)
	if row == nil {
		t.Fatalf("no row for fingerprint %q in %+v", fp, env.Statements)
	}
	if row.Calls != 2 || row.OK != 2 {
		t.Fatalf("fingerprint %q: calls=%d ok=%d, want 2/2", fp, row.Calls, row.OK)
	}
	if row.MeanMs <= 0 || row.MaxMs < row.MeanMs {
		t.Fatalf("latency aggregates look wrong: mean=%v max=%v", row.MeanMs, row.MaxMs)
	}

	// Unknown sort key is a 400; a valid one works.
	if code := get(t, ts, "/stats/statements?sort=nope", nil); code != http.StatusBadRequest {
		t.Fatalf("bad sort key: status %d", code)
	}
	if code := get(t, ts, "/stats/statements?sort=calls&limit=1", &env); code != http.StatusOK || env.Count != 1 {
		t.Fatalf("sorted+limited: status %d count %d", code, env.Count)
	}

	var reset struct {
		Reset   bool `json:"reset"`
		Dropped int  `json:"dropped"`
	}
	if code := post(t, ts, "/stats/reset", map[string]any{}, &reset); code != http.StatusOK || !reset.Reset || reset.Dropped == 0 {
		t.Fatalf("reset: status %d %+v", code, reset)
	}
	if code := get(t, ts, "/stats/statements", &env); code != http.StatusOK || env.Count != 0 {
		t.Fatalf("after reset: status %d count %d", code, env.Count)
	}
}

// heavyEngine builds an engine holding a relation large enough that a
// triangle-ish self-join runs for many seconds — long enough to observe and
// kill from outside.
func heavyEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng := core.NewEngine()
	rng := rand.New(rand.NewSource(7))
	pairs := make([]relation.Pair, 90_000)
	for i := range pairs {
		pairs[i] = relation.Pair{X: rng.Int31n(400), Y: rng.Int31n(400)}
	}
	if _, err := eng.Register("R", pairs); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestActivityExternalKill starts a heavy query, finds it in /stats/activity,
// kills it via POST /stats/activity/{id}/cancel and asserts the query's own
// request unwinds promptly and the kill is attributed in the statement sheet.
func TestActivityExternalKill(t *testing.T) {
	eng := heavyEngine(t)
	ts2 := httptest.NewServer(New(Config{Engine: eng, Timeout: time.Minute}).Handler())
	defer ts2.Close()

	const heavy = "Q(a, d) :- R(a, b), R(b, c), R(c, d)"
	done := make(chan int, 1)
	go func() {
		done <- post(t, ts2, "/query", map[string]any{"query": heavy}, nil)
	}()

	// Wait for the query to surface in the live activity view.
	var target *stats.ActiveInfo
	deadline := time.Now().Add(10 * time.Second)
	for target == nil {
		if time.Now().After(deadline) {
			t.Fatal("heavy query never appeared in /stats/activity")
		}
		var env activityEnvelope
		if code := get(t, ts2, "/stats/activity", &env); code != http.StatusOK {
			t.Fatalf("activity: status %d", code)
		}
		for i := range env.Active {
			if env.Active[i].Query == heavy {
				target = &env.Active[i]
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	if target.Fingerprint == "" || target.ID == 0 {
		t.Fatalf("incomplete activity row: %+v", target)
	}

	// Kill it and require the query's request to unwind within 100ms.
	var killed struct {
		Killed uint64 `json:"killed"`
	}
	killedAt := time.Now()
	if code := post(t, ts2, "/stats/activity/"+strconv.FormatUint(target.ID, 10)+"/cancel", map[string]any{}, &killed); code != http.StatusOK || killed.Killed != target.ID {
		t.Fatalf("cancel: status %d %+v", code, killed)
	}
	select {
	case code := <-done:
		if took := time.Since(killedAt); took > 100*time.Millisecond {
			t.Fatalf("query survived %v after the kill (want <100ms)", took)
		}
		if code != http.StatusRequestTimeout {
			t.Fatalf("killed query answered %d, want 408", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("killed query never returned")
	}

	// The kill is attributed per-fingerprint and the flight recorder kept it.
	var senv statementsEnvelope
	if code := get(t, ts2, "/stats/statements", &senv); code != http.StatusOK {
		t.Fatalf("statements: status %d", code)
	}
	row := findStatement(senv.Statements, target.Fingerprint)
	if row == nil || row.Killed != 1 {
		t.Fatalf("kill not attributed: %+v", row)
	}
	var fenv flightEnvelope
	if code := get(t, ts2, "/debug/flight", &fenv); code != http.StatusOK {
		t.Fatalf("flight: status %d", code)
	}
	var rec *stats.FlightRecord
	for i := range fenv.Records {
		if fenv.Records[i].Class == "killed" {
			rec = &fenv.Records[i]
		}
	}
	if rec == nil || rec.Fingerprint != target.Fingerprint {
		t.Fatalf("flight recorder missed the kill: %+v", fenv.Records)
	}

	// Cancelling an unknown id is a 404; a malformed one a 400.
	if code := post(t, ts2, "/stats/activity/999999/cancel", map[string]any{}, nil); code != http.StatusNotFound {
		t.Fatalf("unknown id: status %d", code)
	}
	if code := post(t, ts2, "/stats/activity/zap/cancel", map[string]any{}, nil); code != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d", code)
	}
}

// TestFlightRecorderRetainsFailuresUnderLoad hammers a server with a mix of
// succeeding and failing queries from several goroutines and asserts every
// failure is retained while unremarkable successes are sampled out. Run under
// -race this also exercises the introspection layer's concurrency.
func TestFlightRecorderRetainsFailuresUnderLoad(t *testing.T) {
	eng := core.NewEngine(core.WithIntrospection(core.IntrospectionConfig{
		FlightSize:    256,
		FlightSample:  1 << 20,   // keep (almost) no unremarkable queries
		SlowThreshold: time.Hour, // nothing counts as slow
	}))
	ts := httptest.NewServer(New(Config{Engine: eng}).Handler())
	defer ts.Close()
	registerChain(t, ts)

	const (
		workers = 4
		perKind = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perKind; i++ {
				post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, nil)
				post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), Missing(y, z)"}, nil)
			}
		}()
	}
	wg.Wait()

	var env flightEnvelope
	if code := get(t, ts, "/debug/flight", &env); code != http.StatusOK {
		t.Fatalf("flight: status %d", code)
	}
	errors, sampled := 0, 0
	for _, r := range env.Records {
		switch r.Class {
		case "error":
			errors++
		case "sampled":
			sampled++
		}
	}
	if want := workers * perKind; errors != want {
		t.Fatalf("flight retained %d error records, want every one of %d", errors, want)
	}
	if sampled > 1 {
		t.Fatalf("sampling kept %d unremarkable queries at 1-in-2^20", sampled)
	}
	if env.SampledOut == 0 {
		t.Fatal("sampled_out not reported")
	}

	// A slow-threshold-zero... rather, a tiny threshold retains successes too.
	slow := core.NewEngine(core.WithIntrospection(core.IntrospectionConfig{
		FlightSample:  1 << 20,
		SlowThreshold: time.Nanosecond, // every query counts as slow
	}))
	ts2 := httptest.NewServer(New(Config{Engine: slow}).Handler())
	defer ts2.Close()
	registerChain(t, ts2)
	for i := 0; i < 5; i++ {
		if code := post(t, ts2, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, nil); code != http.StatusOK {
			t.Fatalf("query: status %d", code)
		}
	}
	if code := get(t, ts2, "/debug/flight", &env); code != http.StatusOK {
		t.Fatalf("flight: status %d", code)
	}
	slowKept := 0
	for _, r := range env.Records {
		if r.Class == "slow" {
			slowKept++
			if r.Plan == "" {
				t.Fatalf("slow record missing its plan tree: %+v", r)
			}
		}
	}
	if slowKept != 5 {
		t.Fatalf("retained %d slow records, want 5", slowKept)
	}
}

// TestIntrospectionOnReplica runs the same loop against a read-only follower:
// statements aggregate, activity lists, the flight recorder records, and
// every envelope is tagged role=replica. /repl/status on the follower reports
// the lag history ring.
func TestIntrospectionOnReplica(t *testing.T) {
	primary, follower, rep := newPrimaryFollower(t)
	registerChain(t, primary)
	waitFollower(t, rep, 2)

	for _, q := range []string{
		"Q(x) :- R(x, y), S(y, 5)",
		"Q(x) :- R(x, y), S(y, 6)",
	} {
		if code := post(t, follower, "/query", map[string]any{"query": q}, nil); code != http.StatusOK {
			t.Fatalf("query on follower %q: status %d", q, code)
		}
	}

	var senv statementsEnvelope
	if code := get(t, follower, "/stats/statements", &senv); code != http.StatusOK {
		t.Fatalf("statements on follower: status %d", code)
	}
	if senv.Role != "replica" {
		t.Fatalf("role = %q, want replica", senv.Role)
	}
	row := findStatement(senv.Statements, "Q($0) :- R($0, $1), S($1, ?)")
	if row == nil || row.Calls != 2 {
		t.Fatalf("follower statement sheet missing aggregated row: %+v", senv.Statements)
	}

	var aenv activityEnvelope
	if code := get(t, follower, "/stats/activity", &aenv); code != http.StatusOK || aenv.Role != "replica" {
		t.Fatalf("activity on follower: status %d role %q", code, aenv.Role)
	}
	var fenv flightEnvelope
	if code := get(t, follower, "/debug/flight", &fenv); code != http.StatusOK || fenv.Role != "replica" {
		t.Fatalf("flight on follower: status %d role %q", code, fenv.Role)
	}
	if fenv.Count == 0 {
		t.Fatal("follower flight recorder empty after queries")
	}

	// The follower's /repl/status serves its position including lag history.
	var rst core.ReplicaStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := get(t, follower, "/repl/status", &rst); code != http.StatusOK {
			t.Fatalf("/repl/status on follower: status %d", code)
		}
		if len(rst.LagHistory) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no lag history on follower: %+v", rst)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if rst.State != core.ReplicaTailing || !rst.CaughtUp {
		t.Fatalf("unexpected follower state: %+v", rst)
	}
	last := rst.LagHistory[len(rst.LagHistory)-1]
	if last.UnixMs == 0 {
		t.Fatalf("lag sample missing timestamp: %+v", last)
	}
}

// TestRequestIDPropagation asserts the server honors a caller-supplied
// X-Request-Id (the replication client's pulls rely on this to correlate on
// the primary) and replaces garbage ones.
func TestRequestIDPropagation(t *testing.T) {
	ts := newTestServer(t, Config{})

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "repl-cafebabe-000001")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "repl-cafebabe-000001" {
		t.Fatalf("honored id = %q", got)
	}

	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-Id", "bad id \"with\" spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "" || got == "bad id \"with\" spaces" {
		t.Fatalf("garbage id not replaced: %q", got)
	}
}
