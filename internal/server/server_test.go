package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

func registerChain(t *testing.T, ts *httptest.Server) {
	t.Helper()
	for _, spec := range []struct {
		name  string
		pairs [][2]int32
	}{
		{"R", [][2]int32{{1, 10}, {1, 11}, {2, 10}}},
		{"S", [][2]int32{{10, 5}, {11, 6}, {10, 6}}},
	} {
		code := post(t, ts, "/catalog/relations", map[string]any{"name": spec.name, "pairs": spec.pairs}, nil)
		if code != http.StatusOK {
			t.Fatalf("register %s: status %d", spec.name, code)
		}
	}
}

func TestQueryEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	var res queryResponse
	code := post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &res)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if res.Rows != 4 || len(res.Tuples) != 4 || len(res.Columns) != 2 {
		t.Fatalf("unexpected result: %+v", res)
	}
	if res.Plan == "" {
		t.Fatal("missing plan")
	}

	// Bad query → 400 with a JSON error.
	var er errorResponse
	if code := post(t, ts, "/query", map[string]any{"query": "nope("}, &er); code != http.StatusBadRequest || er.Error == "" {
		t.Fatalf("bad query: status %d err %q", code, er.Error)
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)
	var res explainResponse
	if code := post(t, ts, "/explain", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &res); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !res.Predicted || res.Plan == "" {
		t.Fatalf("unexpected explain: %+v", res)
	}
	// EXPLAIN ANALYZE executes and reports concrete per-node choices.
	if code := post(t, ts, "/explain", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)", "analyze": true}, &res); code != http.StatusOK {
		t.Fatalf("analyze status %d", code)
	}
	if res.Predicted || len(res.Strategies) == 0 {
		t.Fatalf("unexpected analyze: %+v", res)
	}
}

func TestCatalogEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)
	resp, err := http.Get(ts.URL + "/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr catalogResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	if len(cr.Relations) != 2 {
		t.Fatalf("catalog: %+v", cr)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/catalog/relations/R", nil)
	dr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", dr.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/catalog/relations/R", nil)
	dr, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dr.Body.Close()
	if dr.StatusCode != http.StatusNotFound {
		t.Fatalf("double delete status %d", dr.StatusCode)
	}
}

func TestQueryTimeout(t *testing.T) {
	// A 1ns server timeout expires before evaluation starts; the executor's
	// context poll turns it into a deterministic 504.
	ts := newTestServer(t, Config{Timeout: time.Nanosecond})
	var er errorResponse
	code := post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &er)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d (err %q), want 504", code, er.Error)
	}
}

// TestConcurrentClients hammers the server from many goroutines (mixed
// queries, explains, catalog reads and registrations); run under -race this
// is the acceptance check for race-clean serving.
func TestConcurrentClients(t *testing.T) {
	eng := core.NewEngine(core.WithWorkers(2))
	ts := newTestServer(t, Config{Engine: eng, MaxInFlight: 3})
	registerChain(t, ts)

	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				switch g % 4 {
				case 0:
					var res queryResponse
					if code := post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- R(x, y), S(y, z)"}, &res); code != http.StatusOK {
						t.Errorf("query status %d", code)
						return
					}
				case 1:
					var res queryResponse
					q := fmt.Sprintf("Q(x, COUNT(z)) :- R(x, y), S(y, z), S(y, %d)", 5+i%2)
					if code := post(t, ts, "/query", map[string]any{"query": q}, &res); code != http.StatusOK {
						t.Errorf("count query status %d", code)
						return
					}
				case 2:
					var res explainResponse
					if code := post(t, ts, "/explain", map[string]any{"query": "Q(a, c) :- R(a, b), R(b, c)"}, &res); code != http.StatusOK {
						t.Errorf("explain status %d", code)
						return
					}
				default:
					name := fmt.Sprintf("T%d", g)
					if code := post(t, ts, "/catalog/relations",
						map[string]any{"name": name, "pairs": [][2]int32{{int32(i), 10}}}, nil); code != http.StatusOK {
						t.Errorf("register status %d", code)
						return
					}
					resp, err := http.Get(ts.URL + "/catalog")
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCyclicQueryEndToEnd drives a triangle query through the full HTTP
// path: relation registration, evaluation, and EXPLAIN showing the GHD bag
// plan — the workload class PR 3 opens.
func TestCyclicQueryEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{})
	for _, spec := range []struct {
		name  string
		pairs [][2]int32
	}{
		{"E", [][2]int32{{1, 2}, {2, 3}, {3, 1}, {2, 1}, {3, 2}, {1, 3}, {4, 5}}},
	} {
		if code := post(t, ts, "/catalog/relations", map[string]any{"name": spec.name, "pairs": spec.pairs}, nil); code != http.StatusOK {
			t.Fatalf("register %s: status %d", spec.name, code)
		}
	}

	// All directed triangles in E.
	var res queryResponse
	code := post(t, ts, "/query", map[string]any{"query": "Q(x, z) :- E(x, y), E(y, z), E(z, x)"}, &res)
	if code != http.StatusOK {
		t.Fatalf("status %d: %+v", code, res)
	}
	// Every ordered pair of distinct vertices among {1,2,3} closes a
	// triangle through the third vertex; (x,x) would need a self-loop.
	wantPairs := map[[2]int64]bool{}
	for _, x := range []int64{1, 2, 3} {
		for _, z := range []int64{1, 2, 3} {
			if x != z {
				wantPairs[[2]int64{x, z}] = true
			}
		}
	}
	if res.Rows != len(wantPairs) {
		t.Fatalf("triangle rows = %d (%v); want %d", res.Rows, res.Tuples, len(wantPairs))
	}
	for _, tup := range res.Tuples {
		if !wantPairs[[2]int64{tup[0], tup[1]}] {
			t.Fatalf("unexpected triangle endpoint pair %v", tup)
		}
	}

	var exp explainResponse
	if code := post(t, ts, "/explain", map[string]any{"query": "Q(x, z) :- E(x, y), E(y, z), E(z, x)"}, &exp); code != http.StatusOK {
		t.Fatalf("explain status %d", code)
	}
	if !strings.Contains(exp.Plan, "ghd") || !strings.Contains(exp.Plan, "bag") {
		t.Fatalf("EXPLAIN must show the GHD bag plan:\n%s", exp.Plan)
	}
	hasBagStrategy := false
	for _, s := range exp.Strategies {
		if strings.HasPrefix(s, "bag=") {
			hasBagStrategy = true
		}
	}
	if !hasBagStrategy {
		t.Fatalf("strategies %v missing bag node", exp.Strategies)
	}
}

func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestMutationAndViewEndpoints drives the full update surface over HTTP:
// create a view, mutate base relations, read the maintained result with
// freshness metadata and the maintenance EXPLAIN, and drop it.
func TestMutationAndViewEndpoints(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)

	var vi viewInfoResponse
	if code := post(t, ts, "/views", map[string]any{
		"name": "vp", "query": "V(x, z) :- R(x, y), S(y, z)",
	}, &vi); code != http.StatusOK {
		t.Fatalf("create view: status %d", code)
	}
	if vi.Freshness.Mode != "incremental" || vi.Rows == 0 {
		t.Fatalf("view info = %+v", vi)
	}

	// Mutate R: one effective insert, one coalesced no-op duplicate.
	var mr mutateResponse
	if code := post(t, ts, "/catalog/relations/R/insert", map[string]any{
		"pairs": [][2]int32{{3, 11}, {1, 10}},
	}, &mr); code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if mr.Added != 1 || mr.Removed != 0 || mr.Version == 0 {
		t.Fatalf("insert response = %+v", mr)
	}
	if code := post(t, ts, "/catalog/relations/R/delete", map[string]any{
		"pairs": [][2]int32{{2, 10}},
	}, &mr); code != http.StatusOK || mr.Removed != 1 {
		t.Fatalf("delete: status %d resp %+v", code, mr)
	}
	if code := post(t, ts, "/catalog/relations/Missing/insert", map[string]any{
		"pairs": [][2]int32{{1, 1}},
	}, nil); code != http.StatusNotFound {
		t.Fatalf("mutating unknown relation: status %d", code)
	}

	// The maintained view reflects both mutations: (1,5), (1,6), (3,6).
	var vr viewResultResponse
	if code := get(t, ts, "/views/vp", &vr); code != http.StatusOK {
		t.Fatalf("get view: status %d", code)
	}
	if vr.Rows != 3 || len(vr.Tuples) != 3 {
		t.Fatalf("view result = %+v", vr)
	}
	if vr.Freshness.Stale || vr.Freshness.Updates == 0 {
		t.Fatalf("freshness = %+v", vr.Freshness)
	}

	// Pagination: two pages of two.
	var page viewResultResponse
	if code := get(t, ts, "/views/vp?limit=2", &page); code != http.StatusOK {
		t.Fatalf("paginated view: status %d", code)
	}
	if len(page.Tuples) != 2 || page.NextCursor == "" || page.Rows != 3 {
		t.Fatalf("page 1 = %+v", page)
	}
	var page2 viewResultResponse
	if code := get(t, ts, "/views/vp?limit=2&cursor="+page.NextCursor, &page2); code != http.StatusOK {
		t.Fatalf("page 2: status %d", code)
	}
	if len(page2.Tuples) != 1 || page2.NextCursor != "" {
		t.Fatalf("page 2 = %+v", page2)
	}
	if fmt.Sprint(page.Tuples) == fmt.Sprint(page2.Tuples) {
		t.Fatal("pages must not overlap")
	}
	if code := get(t, ts, "/views/vp?limit=2&cursor=garbage", nil); code != http.StatusBadRequest {
		t.Fatal("malformed cursor should 400")
	}

	// Maintenance EXPLAIN.
	var ex struct {
		Plan string `json:"plan"`
		Mode string `json:"mode"`
	}
	if code := get(t, ts, "/views/vp/explain", &ex); code != http.StatusOK {
		t.Fatalf("explain view: status %d", code)
	}
	if !strings.Contains(ex.Plan, "deltafold") || ex.Mode != "incremental" {
		t.Fatalf("maintenance explain = %+v", ex)
	}

	// Listing and deletion.
	var list struct {
		Views []viewInfoResponse `json:"views"`
	}
	if code := get(t, ts, "/views", &list); code != http.StatusOK || len(list.Views) != 1 {
		t.Fatalf("list views = %+v", list)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/views/vp", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete view: status %d", resp.StatusCode)
	}
	if code := get(t, ts, "/views/vp", nil); code != http.StatusNotFound {
		t.Fatal("dropped view should 404")
	}
}

// TestQueryPagination covers limit/cursor on POST /query.
func TestQueryPagination(t *testing.T) {
	ts := newTestServer(t, Config{})
	registerChain(t, ts)
	src := "Q(x, z) :- R(x, y), S(y, z)"
	var full queryResponse
	if code := post(t, ts, "/query", map[string]any{"query": src}, &full); code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	var seen [][]int64
	cursor := ""
	pages := 0
	for {
		req := map[string]any{"query": src, "limit": 2}
		if cursor != "" {
			req["cursor"] = cursor
		}
		var page queryResponse
		if code := post(t, ts, "/query", req, &page); code != http.StatusOK {
			t.Fatalf("page: status %d", code)
		}
		if page.Rows != full.Rows {
			t.Fatalf("page total %d != full %d", page.Rows, full.Rows)
		}
		if len(page.Tuples) > 2 {
			t.Fatalf("page size %d > limit", len(page.Tuples))
		}
		seen = append(seen, page.Tuples...)
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != full.Rows || pages < 2 {
		t.Fatalf("paged %d tuples over %d pages, want %d tuples", len(seen), pages, full.Rows)
	}
	// Pages are sorted and distinct.
	for i := 1; i < len(seen); i++ {
		if fmt.Sprint(seen[i-1]) >= fmt.Sprint(seen[i]) {
			t.Fatalf("pages not in canonical order: %v", seen)
		}
	}
}
