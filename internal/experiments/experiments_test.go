package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestIDsComplete(t *testing.T) {
	// Every table and figure of the paper's evaluation must be registered.
	want := []string{
		"table2", "fig3a", "fig3b",
		"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f", "fig4g",
		"fig5a", "fig5b", "fig5c", "fig5d", "fig5e", "fig5f", "fig5g", "fig5h",
		"fig6a", "fig6b", "fig6c", "fig6d",
		"fig7a", "fig7b", "fig7c", "fig7d",
		"fig8",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registered %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestUnknownExperiment(t *testing.T) {
	if _, err := Run("fig99", 1); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestTable2Runs(t *testing.T) {
	res, err := Run("table2", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("table2 rows = %d, want 6", len(res.Rows))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "RoadNet") {
		t.Fatal("render missing dataset name")
	}
}

// Tiny-scale smoke runs of every experiment family: correctness of the
// measured kernels is covered by package tests; here we assert the harness
// produces the right series structure.
func TestSmokeFig4a(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	res, err := Run("fig4a", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]int{}
	for _, row := range res.Rows {
		series[row.Series]++
	}
	for _, s := range []string{"MMJoin", "Non-MMJoin", "Postgres", "MySQL", "EmptyHeaded", "SystemX"} {
		if series[s] != 6 {
			t.Errorf("series %s has %d rows, want 6", s, series[s])
		}
	}
	// Output sizes must agree across engines per dataset.
	outs := map[string]map[string]bool{}
	for _, row := range res.Rows {
		if outs[row.Dataset] == nil {
			outs[row.Dataset] = map[string]bool{}
		}
		outs[row.Dataset][row.Extra[:strings.Index(row.Extra+" ", " ")]] = true
	}
	for ds, set := range outs {
		if len(set) != 1 {
			t.Errorf("dataset %s: engines disagree on |OUT|: %v", ds, set)
		}
	}
}

func TestSmokeFig5aAndFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	res, err := Run("fig5a", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3*len(ssjOverlaps) {
		t.Fatalf("fig5a rows = %d, want %d", len(res.Rows), 3*len(ssjOverlaps))
	}
	res, err = Run("fig8", 0.03)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("fig8 rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0].Series != "NO-OP" {
		t.Fatalf("fig8 first series = %s, want NO-OP", res.Rows[0].Series)
	}
}

func TestSmokeFig6b(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	res, err := Run("fig6b", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*len(bsiBatchSizes) {
		t.Fatalf("fig6b rows = %d, want %d", len(res.Rows), 2*len(bsiBatchSizes))
	}
	for _, row := range res.Rows {
		if row.Seconds <= 0 {
			t.Fatalf("non-positive delay in %+v", row)
		}
	}
}

func TestSmokeFig7aAndFig4c(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	res, err := Run("fig4c", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, row := range res.Rows {
		counts[row.Series]++
	}
	for _, s := range []string{"MMJoin", "PIEJoin", "PRETTI", "LIMIT+"} {
		if counts[s] != 6 {
			t.Errorf("fig4c series %s rows = %d, want 6", s, counts[s])
		}
	}
	res, err = Run("fig7a", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2*len(appCores) {
		t.Fatalf("fig7a rows = %d, want %d", len(res.Rows), 2*len(appCores))
	}
}

func TestSmokeStar(t *testing.T) {
	if testing.Short() {
		t.Skip("harness smoke test")
	}
	res, err := Run("fig4b", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("fig4b rows = %d, want 12", len(res.Rows))
	}
}

func TestStarSampleRespectsBudget(t *testing.T) {
	r := getDataset("Jokes", 0.3)
	s := starSample(r, 100000)
	if s.Size() == 0 {
		t.Fatal("sample emptied the relation")
	}
}
