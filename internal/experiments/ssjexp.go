package experiments

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/ssj"
)

func init() {
	register("fig5a", "Unordered SSJ vs overlap c, DBLP (Figure 5a)", func(s float64) Result { return runSSJOverlap("DBLP", s, false) })
	register("fig5b", "Unordered SSJ vs overlap c, Jokes (Figure 5b)", func(s float64) Result { return runSSJOverlap("Jokes", s, false) })
	register("fig5c", "Unordered SSJ vs overlap c, Image (Figure 5c)", func(s float64) Result { return runSSJOverlap("Image", s, false) })
	register("fig5d", "Unordered SSJ c=2 parallel, DBLP (Figure 5d)", func(s float64) Result { return runSSJParallel("DBLP", s) })
	register("fig5e", "Ordered SSJ vs overlap c, DBLP (Figure 5e)", func(s float64) Result { return runSSJOverlap("DBLP", s, true) })
	register("fig5f", "Ordered SSJ vs overlap c, Jokes (Figure 5f)", func(s float64) Result { return runSSJOverlap("Jokes", s, true) })
	register("fig5g", "Unordered SSJ c=2 parallel, Jokes (Figure 5g)", func(s float64) Result { return runSSJParallel("Jokes", s) })
	register("fig5h", "Unordered SSJ c=2 parallel, Image (Figure 5h)", func(s float64) Result { return runSSJParallel("Image", s) })
	register("fig6a", "Ordered SSJ vs overlap c, Image (Figure 6a)", func(s float64) Result { return runSSJOverlap("Image", s, true) })
	register("fig8", "SizeAware++ optimization ablation, Words (Figure 8)", runFig8)
}

var ssjOverlaps = []int{2, 3, 4, 5, 6}

// ssjDataset shrinks Words for the SizeAware baseline, whose light phase is
// slowest on that shape at full scale (which is the paper's point; we keep
// it measurable). The other shapes run at the harness scale.
func ssjDataset(name string, scale float64) *relation.Relation {
	if name == "Words" {
		return getDataset(name, scale*0.5)
	}
	return getDataset(name, scale)
}

func runSSJOverlap(name string, scale float64, ordered bool) Result {
	var res Result
	r := ssjDataset(name, scale)
	mode := "unordered"
	if ordered {
		mode = "ordered"
	}
	for _, c := range ssjOverlaps {
		param := fmt.Sprintf("c=%d", c)
		var n int
		secs := timeIt(func() {
			if ordered {
				n = len(ssj.MMJoinOrdered(r, c, ssj.Options{Workers: 1}))
			} else {
				n = len(ssj.MMJoin(r, c, ssj.Options{Workers: 1}))
			}
		})
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin", Param: param,
			Seconds: secs, Extra: fmt.Sprintf("%s |OUT|=%d", mode, n)})

		secs = timeIt(func() {
			pairs := ssj.SizeAwarePP(r, c, ssj.PPOptions{Options: ssj.Options{Workers: 1}, Heavy: true, Prefix: true})
			if ordered {
				_ = ssj.OrderPairs(r, pairs)
			}
			n = len(pairs)
		})
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "SizeAware++", Param: param,
			Seconds: secs, Extra: fmt.Sprintf("%s |OUT|=%d", mode, n)})

		secs = timeIt(func() {
			pairs := ssj.SizeAware(r, c, ssj.Options{Workers: 1})
			if ordered {
				_ = ssj.OrderPairs(r, pairs)
			}
			n = len(pairs)
		})
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "SizeAware", Param: param,
			Seconds: secs, Extra: fmt.Sprintf("%s |OUT|=%d", mode, n)})
	}
	return res
}

func runSSJParallel(name string, scale float64) Result {
	var res Result
	r := ssjDataset(name, scale)
	const c = 2
	for _, co := range appCores {
		param := fmt.Sprintf("cores=%d", co)
		secs := timeIt(func() { _ = ssj.MMJoin(r, c, ssj.Options{Workers: co}) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin", Param: param, Seconds: secs})
		secs = timeIt(func() {
			_ = ssj.SizeAwarePP(r, c, ssj.PPOptions{Options: ssj.Options{Workers: co}, Heavy: true, Light: true})
		})
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "SizeAware++", Param: param, Seconds: secs})
		secs = timeIt(func() { _ = ssj.SizeAware(r, c, ssj.Options{Workers: co}) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "SizeAware", Param: param, Seconds: secs})
	}
	return res
}

// runFig8 reproduces the ablation: running time of each optimization level
// as a percentage of the NO-OP (plain SizeAware) time.
func runFig8(scale float64) Result {
	var res Result
	r := ssjDataset("Words", scale)
	const c = 2
	configs := []struct {
		name string
		opt  ssj.PPOptions
	}{
		{"NO-OP", ssj.PPOptions{}},
		{"Light", ssj.PPOptions{Light: true}},
		{"Heavy", ssj.PPOptions{Light: true, Heavy: true}},
		{"Prefix", ssj.PPOptions{Light: true, Heavy: true, Prefix: true}},
	}
	var base float64
	for i, cfg := range configs {
		var n int
		secs := timeIt(func() { n = len(ssj.SizeAwarePP(r, c, cfg.opt)) })
		if i == 0 {
			base = secs
		}
		pct := 100.0
		if base > 0 {
			pct = 100 * secs / base
		}
		res.Rows = append(res.Rows, Row{Dataset: "Words", Series: cfg.name, Param: fmt.Sprintf("c=%d", c),
			Seconds: secs, Extra: fmt.Sprintf("%.1f%% of NO-OP |OUT|=%d", pct, n)})
	}
	return res
}
