package experiments

import (
	"fmt"

	"repro/internal/bsi"
)

func init() {
	register("fig6b", "BSI average delay vs batch size, Jokes (Figure 6b)", func(s float64) Result { return runBSI("Jokes", s) })
	register("fig6c", "BSI average delay vs batch size, Words (Figure 6c)", func(s float64) Result { return runBSI("Words", s) })
	register("fig6d", "BSI average delay vs batch size, Image (Figure 6d)", func(s float64) Result { return runBSI("Image", s) })
}

// bsiRate is the paper's arrival rate: 1000 queries per second.
const bsiRate = 1000.0

// bsiBatchSizes mirrors the Figure 6 x-axis (500–1900 for Jokes/Words,
// larger for Image).
var bsiBatchSizes = []int{500, 700, 900, 1100, 1300, 1500, 1700, 1900}

func runBSI(name string, scale float64) Result {
	var res Result
	r := getDataset(name, scale)
	const batches = 3
	for _, c := range bsiBatchSizes {
		for _, series := range []struct {
			label string
			useMM bool
		}{{"MMJoin", true}, {"Non-MMJoin", false}} {
			d := bsi.SimulateDelay(r, r, bsiRate, c, batches, bsi.Options{UseMM: series.useMM, Workers: 1}, 42)
			res.Rows = append(res.Rows, Row{
				Dataset: name,
				Series:  series.label,
				Param:   fmt.Sprintf("C=%d", c),
				Seconds: d.AvgDelay.Seconds(),
				Extra:   fmt.Sprintf("compute=%.4fs units=%d", d.ComputeTime.Seconds(), d.UnitsNeeded),
			})
		}
	}
	return res
}
