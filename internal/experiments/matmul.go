package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/internal/matrix"
)

func init() {
	register("table2", "Dataset characteristics (Table 2)", runTable2)
	register("fig3a", "Matrix multiplication: single-core scalability vs dimension (Figure 3a)", runFig3a)
	register("fig3b", "Matrix multiplication: multi-core scalability, construction vs multiply (Figure 3b)", runFig3b)
}

func runTable2(scale float64) Result {
	var res Result
	for _, name := range dataset.Names() {
		r := getDataset(name, scale)
		s := r.Stats()
		res.Rows = append(res.Rows, Row{
			Dataset: name,
			Series:  "stats",
			Param:   fmt.Sprintf("scale=%g", scale),
			Seconds: 0,
			Extra:   s.String(),
		})
	}
	return res
}

// fig3aDims mirrors the paper's 1000–10000 sweep, scaled to the bit-packed
// kernel (dimensions are multiplied by scale but kept ≥ 256).
var fig3aDims = []int{1000, 2000, 4000, 6000, 8000, 10000}

func scaledDim(d int, scale float64) int {
	v := int(float64(d) * scale)
	if v < 256 {
		v = 256
	}
	return v
}

func randomSquare(rng *rand.Rand, n int, density float64) *matrix.BitMatrix {
	m := matrix.NewBitMatrix(n, n)
	step := int(1 / density)
	if step < 1 {
		step = 1
	}
	for i := 0; i < n; i++ {
		for j := rng.Intn(step); j < n; j += 1 + rng.Intn(2*step) {
			m.Set(i, j)
		}
	}
	return m
}

func runFig3a(scale float64) Result {
	var res Result
	rng := rand.New(rand.NewSource(7))
	for _, d := range fig3aDims {
		n := scaledDim(d, scale)
		a := randomSquare(rng, n, 0.3)
		b := randomSquare(rng, n, 0.3)
		secs := timeIt(func() { _ = matrix.MulBitCount(a, b, 1) })
		res.Rows = append(res.Rows, Row{
			Dataset: "synthetic",
			Series:  "MatrixMultiplication",
			Param:   fmt.Sprintf("n=%d", n),
			Seconds: secs,
		})
	}
	return res
}

func runFig3b(scale float64) Result {
	var res Result
	rng := rand.New(rand.NewSource(8))
	n := scaledDim(20000, scale/2)
	for _, co := range []int{1, 2, 3, 4, 5} {
		var a, b *matrix.BitMatrix
		construct := timeIt(func() {
			a = randomSquare(rng, n, 0.3)
			b = randomSquare(rng, n, 0.3)
		})
		var mul float64
		start := time.Now()
		_ = matrix.MulBitCount(a, b, co)
		mul = time.Since(start).Seconds()
		res.Rows = append(res.Rows, Row{
			Dataset: "synthetic",
			Series:  "construction",
			Param:   fmt.Sprintf("cores=%d", co),
			Seconds: construct,
			Extra:   fmt.Sprintf("n=%d", n),
		})
		res.Rows = append(res.Rows, Row{
			Dataset: "synthetic",
			Series:  "multiplication",
			Param:   fmt.Sprintf("cores=%d", co),
			Seconds: mul,
			Extra:   fmt.Sprintf("n=%d", n),
		})
	}
	return res
}
