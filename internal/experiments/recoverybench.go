package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/relation"
	"repro/internal/wal"
)

// RecoveryBench measures one durability scenario: how long a cold
// Engine.Open takes to rebuild the serving state (snapshot load + WAL tail
// replay through incremental view maintenance) against recomputing the same
// state from scratch (register the final relations, evaluate every view
// through the query pipeline). Both are min-of-reps.
type RecoveryBench struct {
	// Relations, Tuples and Views describe the recovered state.
	Relations int `json:"relations"`
	// Tuples is the total tuple count across relations.
	Tuples int `json:"tuples"`
	// Views is the registered view count.
	Views int `json:"views"`
	// MutationBatches is the number of logged update batches in the trace.
	MutationBatches int `json:"mutation_batches"`
	// SnapshotLSN and ReplayedRecords describe what recovery actually did.
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// ReplayedRecords counts WAL records replayed past the snapshot.
	ReplayedRecords int `json:"replayed_records"`
	// RecoverNs is the cold Engine.Open time.
	RecoverNs int64 `json:"recover_ns"`
	// RecomputeNs is the from-scratch rebuild time.
	RecomputeNs int64 `json:"recompute_ns"`
	// Speedup is RecomputeNs / RecoverNs.
	Speedup float64 `json:"speedup"`
	// Reps is the measurement repetition count.
	Reps int `json:"reps"`
}

// RecoverySnapshot is the machine-readable recovery trajectory cmd/joinbench
// writes in -recovery mode (BENCH_recovery.json).
type RecoverySnapshot struct {
	// GoOS, GoArch and NumCPU identify the measuring machine.
	GoOS string `json:"goos"`
	// GoArch is the target architecture.
	GoArch string `json:"goarch"`
	// NumCPU is the logical CPU count.
	NumCPU int `json:"num_cpu"`
	// Scale is the dataset scale factor.
	Scale float64 `json:"scale"`
	// Timestamp is the measurement time.
	Timestamp string `json:"timestamp"`
	// Benchmarks maps scenario name → measurement.
	Benchmarks map[string]RecoveryBench `json:"benchmarks"`
}

// recoveryBenchBatches shapes the logged update stream.
const (
	recoveryBenchBatches   = 40
	recoveryBenchBatchSize = 32
)

// buildRecoveryDir lays down one durable serving state: three community
// relations, the canned view suite, and a logged mutation stream — with an
// optional mid-stream checkpoint (so recovery loads a snapshot and replays
// only the tail).
func buildRecoveryDir(dir string, scale float64, checkpoint bool) (RecoveryBench, error) {
	var rb RecoveryBench
	rng := rand.New(rand.NewSource(4242))
	eng := core.NewEngine()
	if err := eng.Open(dir, core.PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		return rb, err
	}
	n := int(float64(6000) * scale)
	if n < 200 {
		n = 200
	}
	rels := []string{"R", "S", "T"}
	for i, name := range rels {
		r := dataset.Community(n, 24+4*i, int64(101+i))
		if _, err := eng.Register(name, r.Pairs()); err != nil {
			return rb, err
		}
	}
	for name, src := range DefaultViewSuite() {
		if _, err := eng.RegisterView(context.Background(), name, src); err != nil {
			return rb, err
		}
		rb.Views++
	}
	domain := int32(n)
	for b := 0; b < recoveryBenchBatches; b++ {
		if checkpoint && b == recoveryBenchBatches/2 {
			if _, err := eng.Checkpoint(); err != nil {
				return rb, err
			}
		}
		rel := rels[b%len(rels)]
		var ins, del []relation.Pair
		if b%2 == 0 {
			for i := 0; i < recoveryBenchBatchSize; i++ {
				ins = append(ins, relation.Pair{X: rng.Int31n(domain), Y: rng.Int31n(domain)})
			}
		} else {
			r, _ := eng.Catalog().Get(rel)
			ps := r.Pairs()
			for i := 0; i < recoveryBenchBatchSize && len(ps) > 0; i++ {
				del = append(del, ps[rng.Intn(len(ps))])
			}
		}
		if _, err := eng.Mutate(rel, ins, del); err != nil {
			return rb, err
		}
	}
	rb.Relations = len(rels)
	rb.MutationBatches = recoveryBenchBatches
	for _, name := range rels {
		r, _ := eng.Catalog().Get(name)
		rb.Tuples += r.Size()
	}
	return rb, eng.Close()
}

// recoveryBudget bounds each scenario's measurement time.
const recoveryBudget = time.Second

// MeasureRecovery builds one durable state in a temp dir and times cold
// recovery against from-scratch recomputation.
func MeasureRecovery(scale float64, checkpoint bool) (RecoveryBench, error) {
	dir, err := os.MkdirTemp("", "joinmm-recovery-*")
	if err != nil {
		return RecoveryBench{}, err
	}
	defer os.RemoveAll(dir)
	rb, err := buildRecoveryDir(dir, scale, checkpoint)
	if err != nil {
		return rb, err
	}

	// Recover once to capture the final state (for the recompute baseline)
	// and the recovery stats.
	probe := core.NewEngine()
	if err := probe.Open(dir, core.PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		return rb, err
	}
	rec := probe.RecoveryStats()
	rb.SnapshotLSN, rb.ReplayedRecords = rec.SnapshotLSN, rec.ReplayedRecords
	finalPairs := map[string][]relation.Pair{}
	for _, info := range probe.Catalog().List() {
		r, _ := probe.Catalog().Get(info.Name)
		finalPairs[info.Name] = r.Pairs()
	}
	if err := probe.Close(); err != nil {
		return rb, err
	}

	// Cold recovery: snapshot + WAL replay through the maintenance path.
	best := int64(1<<63 - 1)
	reps := 0
	start := time.Now()
	for time.Since(start) < recoveryBudget || reps < 3 {
		e := core.NewEngine()
		t0 := time.Now()
		if err := e.Open(dir, core.PersistOptions{Fsync: wal.FsyncNever}); err != nil {
			return rb, err
		}
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
		if err := e.Close(); err != nil {
			return rb, err
		}
		reps++
	}
	rb.RecoverNs, rb.Reps = best, reps

	// Recompute baseline: register the final relations and evaluate every
	// view from scratch through the query pipeline.
	best = int64(1<<63 - 1)
	start = time.Now()
	for reps = 0; time.Since(start) < recoveryBudget || reps < 3; reps++ {
		e := core.NewEngine()
		t0 := time.Now()
		for name, ps := range finalPairs {
			if _, err := e.Register(name, ps); err != nil {
				return rb, err
			}
		}
		for name, src := range DefaultViewSuite() {
			if _, err := e.RegisterView(context.Background(), name, src); err != nil {
				return rb, err
			}
		}
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
	}
	rb.RecomputeNs = best
	if rb.RecoverNs > 0 {
		rb.Speedup = float64(rb.RecomputeNs) / float64(rb.RecoverNs)
	}
	return rb, nil
}

// RecoveryBenchSnapshot measures both recovery scenarios (pure WAL replay,
// and checkpoint + tail replay) and returns the marshaled snapshot.
func RecoveryBenchSnapshot(scale float64) ([]byte, error) {
	snap := RecoverySnapshot{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]RecoveryBench{},
	}
	for name, checkpoint := range map[string]bool{"wal_replay": false, "checkpoint_plus_tail": true} {
		rb, err := MeasureRecovery(scale, checkpoint)
		if err != nil {
			return nil, fmt.Errorf("recovery %s: %w", name, err)
		}
		snap.Benchmarks[name] = rb
	}
	return json.MarshalIndent(snap, "", "  ")
}

// RenderRecoverySnapshot pretty-prints a recovery snapshot as a table.
func RenderRecoverySnapshot(data []byte) (string, error) {
	var snap RecoverySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return "", err
	}
	keys := make([]string, 0, len(snap.Benchmarks))
	for k := range snap.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("%-22s %10s %8s %10s %12s %14s %8s\n",
		"scenario", "tuples", "batches", "snap lsn", "recover ns", "recompute ns", "speedup")
	for _, k := range keys {
		b := snap.Benchmarks[k]
		out += fmt.Sprintf("%-22s %10d %8d %10d %12d %14d %7.1fx\n",
			k, b.Tuples, b.MutationBatches, b.SnapshotLSN, b.RecoverNs, b.RecomputeNs, b.Speedup)
	}
	return out, nil
}
