// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 7) on the synthetic dataset shapes. Each experiment
// returns the same rows/series the paper reports — dataset × algorithm ×
// running time for the bar charts, parameter sweeps for the line charts —
// so paper-vs-measured comparisons (EXPERIMENTS.md) can be produced
// mechanically.
//
// The harness is deliberately engine-agnostic: cmd/joinbench renders the
// rows as text tables, and the root-level testing.B benchmarks wrap
// individual experiment kernels.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/dataset"
	"repro/internal/relation"
)

// Row is one measured point of an experiment.
type Row struct {
	Dataset string  // dataset name or workload label
	Series  string  // algorithm / configuration
	Param   string  // x-axis value (cores, overlap c, batch size, ...)
	Seconds float64 // measured wall-clock seconds
	Extra   string  // free-form detail (output sizes, units, ...)
}

// Result is one regenerated table or figure.
type Result struct {
	ID    string
	Title string
	Rows  []Row
}

// Render prints the result as an aligned text table.
func (r Result) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.ID, r.Title)
	fmt.Fprintf(w, "%-10s %-14s %-10s %12s  %s\n", "dataset", "series", "param", "seconds", "extra")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %-14s %-10s %12.4f  %s\n",
			row.Dataset, row.Series, row.Param, row.Seconds, row.Extra)
	}
}

// RenderCSV prints the result as CSV rows (experiment, dataset, series,
// param, seconds, extra) for downstream plotting.
func (r Result) RenderCSV(w io.Writer) {
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%s,%s,%s,%s,%.6f,%q\n",
			r.ID, row.Dataset, row.Series, row.Param, row.Seconds, row.Extra)
	}
}

// runner produces a Result at the given dataset scale.
type runner func(scale float64) Result

var registry = map[string]struct {
	title string
	run   runner
}{}

func register(id, title string, run runner) {
	registry[id] = struct {
		title string
		run   runner
	}{title, run}
}

// IDs lists all experiment identifiers in stable order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Title returns an experiment's title.
func Title(id string) string { return registry[id].title }

// Run executes one experiment at the given scale.
func Run(id string, scale float64) (Result, error) {
	e, ok := registry[id]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
	}
	res := e.run(scale)
	res.ID, res.Title = id, e.title
	return res, nil
}

// timeIt measures fn once and returns elapsed seconds.
func timeIt(fn func()) float64 {
	start := time.Now()
	fn()
	return time.Since(start).Seconds()
}

// datasetCache avoids regenerating the same dataset repeatedly within one
// harness invocation.
var datasetCache = map[string]*relation.Relation{}

func getDataset(name string, scale float64) *relation.Relation {
	key := fmt.Sprintf("%s@%g", name, scale)
	if r, ok := datasetCache[key]; ok {
		return r
	}
	r, err := dataset.ByName(name, scale)
	if err != nil {
		panic(err)
	}
	datasetCache[key] = r
	return r
}

// starSample subsamples r until the 3-way self star join fits the budget,
// mirroring Section 7.2 ("we take the largest sample of each relation so
// that the result can fit in main memory and the join finishes in
// reasonable time").
func starSample(r *relation.Relation, budget int64) *relation.Relation {
	frac := 1.0
	cur := r
	for i := 0; i < 12; i++ {
		if relation.FullJoinSize(cur, cur, cur) <= budget {
			return cur
		}
		frac *= 0.7
		cur = dataset.Sample(r, frac, 1234)
	}
	return cur
}

// coreSweep is the core-count axis used by the parallel experiments
// (the paper sweeps 1–10 cores for joins and 2–6 for SSJ/SCJ).
var (
	joinCores = []int{1, 2, 4, 6, 8, 10}
	appCores  = []int{2, 3, 4, 5, 6}
)
