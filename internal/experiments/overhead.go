package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/stats"
)

// Planner-accuracy overhead harness: the accuracy telemetry rides the
// engine's query path (per-node predicted-vs-actual capture, the
// /stats/planner aggregation, the optimizer drift EWMAs), and its budget is
// ≤2% of end-to-end query time. QueryOverhead measures the same suite
// back-to-back with and without the aggregation layer — min-of-reps on both
// sides, interleaved per query so machine drift hits both equally.

// QueryOverheadRow is one query's baseline-vs-instrumented comparison.
// BaselineNs/InstrumentedNs are each side's fastest rep (informational);
// Ratio is the median of per-pair instrumented/baseline ratios, the robust
// estimator the budget gate consumes.
type QueryOverheadRow struct {
	Query          string  `json:"query"`
	BaselineNs     int64   `json:"baseline_ns_per_op"`
	InstrumentedNs int64   `json:"instrumented_ns_per_op"`
	Ratio          float64 `json:"ratio"`
}

// OverheadReport is the suite-wide accuracy-telemetry overhead measurement.
type OverheadReport struct {
	// BaselineNs and InstrumentedNs sum the per-query fastest reps; Ratio is
	// the baseline-time-weighted mean of the per-query median ratios
	// (1.02 = 2% overhead).
	BaselineNs     int64              `json:"baseline_ns"`
	InstrumentedNs int64              `json:"instrumented_ns"`
	Ratio          float64            `json:"ratio"`
	PerQuery       []QueryOverheadRow `json:"per_query"`
}

// QueryOverhead measures the planner-accuracy telemetry's overhead over the
// query suite: each query runs min-of-reps twice back-to-back — plain
// execution, then execution plus the full accuracy-aggregation path (plan
// walk, per-fingerprint sheet record, drift observation, recalibration
// check) — against one shared catalog.
func QueryOverhead(queries []string, scale float64) (*OverheadReport, error) {
	cat := QueryBenchCatalog(scale)
	resolver := catalogResolver(cat)
	opt := optimizer.New()
	sheet := stats.NewPlanner(0)
	rep := &OverheadReport{}
	var sumWeighted float64
	for _, src := range queries {
		p, err := query.Prepare(src, resolver)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", src, err)
		}
		execOpts := query.ExecOptions{Optimizer: opt}
		run := func() (*query.Result, error) {
			return p.Execute(context.Background(), execOpts)
		}
		base, instr, ratio := measurePairNs(
			func() error { _, err := run(); return err },
			func() error {
				res, err := run()
				if err != nil {
					return err
				}
				recordAccuracy(sheet, opt, p.Fingerprint, res.Plan)
				opt.MaybeRecalibrate()
				return nil
			})
		if base < 0 || instr < 0 {
			return nil, fmt.Errorf("query %q failed during measurement", src)
		}
		rep.PerQuery = append(rep.PerQuery, QueryOverheadRow{
			Query: p.Text, BaselineNs: base, InstrumentedNs: instr, Ratio: ratio,
		})
		rep.BaselineNs += base
		rep.InstrumentedNs += instr
		sumWeighted += float64(base) * ratio
	}
	if rep.BaselineNs > 0 {
		rep.Ratio = sumWeighted / float64(rep.BaselineNs)
	}
	return rep, nil
}

// measurePairNs times two variants of the same work with strictly
// alternating reps (A, B, A, B, ...). It reports each side's fastest rep
// plus the median of the per-pair instrumented/baseline ratios — the
// estimator the budget gate uses. Alternation plus a paired-ratio median is
// what makes a ≤2% budget measurable at all: cache state and co-tenant
// drift hit both halves of a pair equally, and a GC pause landing in one
// rep contaminates that single pair's ratio, which the median discards,
// instead of permanently poisoning one side's minimum.
func measurePairNs(base, instr func() error) (baseNs, instrNs int64, ratio float64) {
	if base() != nil || instr() != nil { // warm-up both sides
		return -1, -1, 0
	}
	baseNs, instrNs = int64(1<<63-1), int64(1<<63-1)
	var ratios []float64
	start := time.Now()
	for n := 0; time.Since(start) < 2*queryBudget || n < 3; n++ {
		t0 := time.Now()
		if base() != nil {
			return -1, -1, 0
		}
		b := time.Since(t0).Nanoseconds()
		t0 = time.Now()
		if instr() != nil {
			return -1, -1, 0
		}
		i := time.Since(t0).Nanoseconds()
		if b < baseNs {
			baseNs = b
		}
		if i < instrNs {
			instrNs = i
		}
		ratios = append(ratios, float64(i)/float64(b))
	}
	sort.Float64s(ratios)
	mid := len(ratios) / 2
	ratio = ratios[mid]
	if len(ratios)%2 == 0 {
		ratio = (ratios[mid-1] + ratios[mid]) / 2
	}
	return baseNs, instrNs, ratio
}

// recordAccuracy mirrors the engine's notePlanner wiring: extract every
// optimizer-priced node and feed the sheet and drift EWMAs.
func recordAccuracy(sheet *stats.Planner, opt *optimizer.Optimizer, fingerprint string, plan *query.Plan) {
	var nodes []stats.NodeObservation
	plan.Walk(func(n *query.Node) {
		if n.PredictedNs <= 0 && n.OutJoin <= 0 {
			return
		}
		nodes = append(nodes, stats.NodeObservation{
			Op: n.Op, Strategy: n.Strategy,
			PredictedNs: n.PredictedNs, ActualNs: n.TimeNs,
			EstRows: n.EstRows, Rows: n.Rows,
			Margin: n.Margin, NearMargin: n.NearMargin,
			Delta1: n.Delta1, Delta2: n.Delta2,
		})
		opt.ObserveNode(n.Strategy, n.PredictedNs, float64(n.TimeNs))
	})
	sheet.Record(fingerprint, nodes)
}
