package experiments

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/scj"
)

func init() {
	register("fig4c", "Set containment join, single core (Figure 4c)", runFig4c)
	register("fig7a", "SCJ parallel, Jokes (Figure 7a)", func(s float64) Result { return runSCJParallel("Jokes", s) })
	register("fig7b", "SCJ parallel, Words (Figure 7b)", func(s float64) Result { return runSCJParallel("Words", s) })
	register("fig7c", "SCJ parallel, Protein (Figure 7c)", func(s float64) Result { return runSCJParallel("Protein", s) })
	register("fig7d", "SCJ parallel, Image (Figure 7d)", func(s float64) Result { return runSCJParallel("Image", s) })
}

func runFig4c(scale float64) Result {
	var res Result
	for _, name := range dataset.Names() {
		r := getDataset(name, scale)
		var n int
		secs := timeIt(func() { n = len(scj.MMJoin(r, scj.Options{Workers: 1})) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|SCJ|=%d", n)})
		secs = timeIt(func() { n = len(scj.PIEJoin(r, scj.Options{Workers: 1})) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "PIEJoin", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|SCJ|=%d", n)})
		secs = timeIt(func() { n = len(scj.PRETTI(r, scj.Options{})) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "PRETTI", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|SCJ|=%d", n)})
		secs = timeIt(func() { n = len(scj.LimitPlus(r, scj.Options{Limit: 2})) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "LIMIT+", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|SCJ|=%d", n)})
	}
	return res
}

func runSCJParallel(name string, scale float64) Result {
	var res Result
	r := getDataset(name, scale)
	for _, co := range appCores {
		param := fmt.Sprintf("cores=%d", co)
		secs := timeIt(func() { _ = scj.MMJoin(r, scj.Options{Workers: co}) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin", Param: param, Seconds: secs})
		secs = timeIt(func() { _ = scj.PIEJoin(r, scj.Options{Workers: co}) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "PIEJoin", Param: param, Seconds: secs})
	}
	return res
}
