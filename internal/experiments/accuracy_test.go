package experiments

import (
	"context"
	"math"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/query"
)

// TestSuiteCostAccuracy runs the query-suite shapes against a seeded catalog
// and asserts every executed fold node's cost-error ratio (actual/predicted)
// lands within a generous band. The band is wide on purpose — the calibrated
// model prices memory traffic, not scheduling noise — but a fold prediction
// two orders of magnitude off means a constant or estimator is broken, and
// that is exactly what this test pins down.
//
// Star nodes are audited differently: their predicted cost prices the
// grid/hash work but not output enumeration, and the independence-assumption
// |OUT| estimate can be arbitrarily off on skewed data (community-structured
// catalogs blow it up ~40×). That miss must be *captured* — estimate and
// actual rows both on the node, so the misprediction sheet can rank it — but
// it is data-dependent, not a constants bug, so it gets no hard band.
func TestSuiteCostAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("accuracy sweep needs real execution times")
	}
	const (
		nodeLo, nodeHi = 0.05, 20.0
		geoLo, geoHi   = 0.1, 10.0
		// Nodes faster than this are dominated by fixed dispatch cost and
		// carry no signal about the cost model.
		floorNs = 50e3
		// Per-node min-of-N ratios: co-tenant noise only inflates times, so
		// the minimum across runs is the honest model error.
		runs = 3
	)
	cat := QueryBenchCatalog(0.2) // seeded: QueryBenchCatalog is deterministic
	resolver := catalogResolver(cat)
	opt := optimizer.New()

	var sumLog float64
	var audited, starAudited int
	for _, src := range DefaultQuerySuite() {
		p, err := query.Prepare(src, resolver)
		if err != nil {
			t.Fatalf("prepare %q: %v", src, err)
		}
		// Warm-up run: the first execution pays one-time index builds the
		// cost model deliberately amortizes (same reason MeasureQuery warms
		// up before timing).
		if _, err := p.Execute(context.Background(), query.ExecOptions{Optimizer: opt}); err != nil {
			t.Fatalf("warm-up %q: %v", src, err)
		}
		// Plan shape is deterministic, so nodes align by walk order across
		// runs; keep the minimum observed ratio per position.
		type nodeBest struct {
			node  query.Node
			ratio float64
		}
		var best []nodeBest
		for run := 0; run < runs; run++ {
			res, err := p.Execute(context.Background(), query.ExecOptions{Optimizer: opt})
			if err != nil {
				t.Fatalf("execute %q: %v", src, err)
			}
			i := 0
			res.Plan.Walk(func(n *query.Node) {
				if n.PredictedNs <= 0 {
					return
				}
				ratio := float64(n.TimeNs) / n.PredictedNs
				if run == 0 {
					best = append(best, nodeBest{node: *n, ratio: ratio})
				} else if i < len(best) && ratio < best[i].ratio {
					best[i] = nodeBest{node: *n, ratio: ratio}
				}
				i++
			})
		}
		for _, b := range best {
			n := b.node
			if n.Op == "star" {
				// Capture, don't bound: the sheet needs both sides of the
				// cardinality miss on the node.
				if n.EstRows <= 0 || n.Rows < 0 {
					t.Errorf("%q star node missing rows estimate/actual: est=%d rows=%d", src, n.EstRows, n.Rows)
				}
				starAudited++
				continue
			}
			if float64(n.TimeNs) < floorNs {
				continue
			}
			if b.ratio < nodeLo || b.ratio > nodeHi {
				t.Errorf("%q node %s/%s: cost error %.3f× outside [%g, %g] (predicted %.0fns, actual %dns)",
					src, n.Op, n.Strategy, b.ratio, nodeLo, nodeHi, n.PredictedNs, n.TimeNs)
			}
			sumLog += math.Log(b.ratio)
			audited++
		}
	}
	if audited == 0 {
		t.Fatal("no executed fold node cleared the timing floor — nothing audited")
	}
	if starAudited == 0 {
		t.Error("suite ran no star node — the cardinality-capture path went unaudited")
	}
	geo := math.Exp(sumLog / float64(audited))
	if geo < geoLo || geo > geoHi {
		t.Errorf("suite cost-error geomean %.3f× outside [%g, %g] over %d nodes", geo, geoLo, geoHi, audited)
	}
	t.Logf("audited %d fold nodes (geomean %.2f×) and %d star nodes", audited, geo, starAudited)
}

// TestQueryOverhead exercises the back-to-back harness end to end on a small
// catalog. The CI budget gate runs via joinbench -query-overhead; here we
// only assert the harness produces sane, complete measurements.
func TestQueryOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead harness measures wall time")
	}
	queries := DefaultQuerySuite()[:2]
	rep, err := QueryOverhead(queries, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerQuery) != len(queries) {
		t.Fatalf("measured %d queries, want %d", len(rep.PerQuery), len(queries))
	}
	if rep.BaselineNs <= 0 || rep.InstrumentedNs <= 0 || rep.Ratio <= 0 {
		t.Fatalf("degenerate report: %+v", rep)
	}
	for _, row := range rep.PerQuery {
		if row.BaselineNs <= 0 || row.Ratio <= 0 {
			t.Fatalf("degenerate row: %+v", row)
		}
	}
	// No budget assertion here — wall-clock gates belong to the bench binary
	// where reps get a full measurement budget. Sanity-bound it loosely.
	if rep.Ratio > 2 {
		t.Errorf("accuracy telemetry doubled query time: ratio %.3f", rep.Ratio)
	}
}
