package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/matrix"
)

// KernelBench is one measured kernel data point, named after the go-test
// benchmark it mirrors so snapshots line up with `go test -bench` output.
type KernelBench struct {
	NsPerOp int64 `json:"ns_per_op"`
	Reps    int   `json:"reps"`
}

// KernelSnapshot is the machine-readable perf trajectory cmd/joinbench
// writes with -json: ns/op for the Figure-3 matrix shapes and the
// kernel-ablation lineup. Later PRs diff these files to catch regressions.
type KernelSnapshot struct {
	GoOS       string                 `json:"goos"`
	GoArch     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	Timestamp  string                 `json:"timestamp"`
	Benchmarks map[string]KernelBench `json:"benchmarks"`
}

// kernelBudget bounds the per-benchmark measurement time; with warm-up plus
// at least three reps this keeps the full snapshot under ~10 s while staying
// stable to a few percent.
const kernelBudget = 300 * time.Millisecond

func measureKernel(fn func()) KernelBench {
	fn() // warm-up (also populates scratch pools)
	reps := 0
	start := time.Now()
	for time.Since(start) < kernelBudget || reps < 3 {
		fn()
		reps++
	}
	return KernelBench{NsPerOp: time.Since(start).Nanoseconds() / int64(reps), Reps: reps}
}

// fig3BitPair reproduces the operand pattern of BenchmarkFig3a/3b.
func fig3BitPair(seed int64, n int) (*matrix.BitMatrix, *matrix.BitMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewBitMatrix(n, n)
	c := matrix.NewBitMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := rng.Intn(3); j < n; j += 1 + rng.Intn(5) {
			a.Set(i, j)
			c.Set(i, (j+i)%n)
		}
	}
	return a, c
}

// KernelBenchSnapshot measures the Fig-3a/3b and AblationKernels shapes and
// returns the marshaled snapshot.
func KernelBenchSnapshot() ([]byte, error) {
	snap := KernelSnapshot{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]KernelBench{},
	}

	for _, n := range []int{512, 1024, 2048} {
		a, c := fig3BitPair(7, n)
		name := fmt.Sprintf("BenchmarkFig3a_MatMulSingleCore/n=%d", n)
		snap.Benchmarks[name] = measureKernel(func() { _ = matrix.MulBitCount(a, c, 1) })
	}

	{
		a, c := fig3BitPair(8, 2048)
		for _, cores := range []int{1, 2, 3, 4, 5} {
			name := fmt.Sprintf("BenchmarkFig3b_MatMulMultiCore/cores=%d", cores)
			snap.Benchmarks[name] = measureKernel(func() { _ = matrix.MulBitCount(a, c, cores) })
		}
	}

	{
		const n = 512
		rng := rand.New(rand.NewSource(9))
		bm1 := matrix.NewBitMatrix(n, n)
		bm2 := matrix.NewBitMatrix(n, n)
		d1 := matrix.NewInt32(n, n)
		d2 := matrix.NewInt32(n, n)
		for i := 0; i < n; i++ {
			for j := rng.Intn(4); j < n; j += 1 + rng.Intn(6) {
				bm1.Set(i, j)
				d1.Set(i, j, 1)
				k := (j + i) % n
				bm2.Set(i, k)
				d2.Set(i, k, 1)
			}
		}
		d2t := d2.Transpose()
		snap.Benchmarks["BenchmarkAblationKernels/BitPacked"] =
			measureKernel(func() { _ = matrix.MulBitCount(bm1, bm2, 1) })
		snap.Benchmarks["BenchmarkAblationKernels/DenseInt32"] =
			measureKernel(func() { _ = matrix.MulBlocked(d1, d2t) })
		snap.Benchmarks["BenchmarkAblationKernels/Strassen"] =
			measureKernel(func() { _ = matrix.MulStrassen(d1, d2t, 0) })
		snap.Benchmarks["BenchmarkAblationKernels/RectLemma1"] =
			measureKernel(func() { _ = matrix.MulRect(d1, d2t, 0) })
	}

	return json.MarshalIndent(snap, "", "  ")
}
