package experiments

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/matrix"
)

// KernelBench is one measured kernel data point, named after the go-test
// benchmark it mirrors so snapshots line up with `go test -bench` output.
type KernelBench struct {
	NsPerOp int64 `json:"ns_per_op"`
	Reps    int   `json:"reps"`
}

// KernelSnapshot is the machine-readable perf trajectory cmd/joinbench
// writes with -json: ns/op for the Figure-3 matrix shapes and the
// kernel-ablation lineup. Later PRs diff these files to catch regressions.
type KernelSnapshot struct {
	GoOS       string                 `json:"goos"`
	GoArch     string                 `json:"goarch"`
	NumCPU     int                    `json:"num_cpu"`
	Timestamp  string                 `json:"timestamp"`
	Benchmarks map[string]KernelBench `json:"benchmarks"`
}

// kernelBudget bounds the per-benchmark measurement time; with warm-up plus
// at least three reps this keeps the full snapshot under ~10 s.
const kernelBudget = 300 * time.Millisecond

// measureKernel reports the fastest rep rather than the mean: scheduler and
// co-tenant interference only ever add time, so the minimum is the stable
// estimator of the kernel's true cost — which is what the CI regression gate
// needs to compare across runs without tripping on machine noise.
func measureKernel(fn func()) KernelBench {
	fn() // warm-up (also populates scratch pools)
	reps := 0
	best := int64(1<<63 - 1)
	start := time.Now()
	for time.Since(start) < kernelBudget || reps < 3 {
		t0 := time.Now()
		fn()
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
		reps++
	}
	return KernelBench{NsPerOp: best, Reps: reps}
}

// fig3BitPair reproduces the operand pattern of BenchmarkFig3a/3b.
func fig3BitPair(seed int64, n int) (*matrix.BitMatrix, *matrix.BitMatrix) {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewBitMatrix(n, n)
	c := matrix.NewBitMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := rng.Intn(3); j < n; j += 1 + rng.Intn(5) {
			a.Set(i, j)
			c.Set(i, (j+i)%n)
		}
	}
	return a, c
}

// Regression is one benchmark whose current ns/op exceeds the baseline by
// more than the tolerance.
type Regression struct {
	Name     string
	Baseline int64 // baseline ns/op
	Current  int64 // current ns/op
	Ratio    float64
}

// String renders the regression as one human-readable gate-failure line.
func (r Regression) String() string {
	return fmt.Sprintf("%s: %d → %d ns/op (%.1f%% slower)", r.Name, r.Baseline, r.Current, (r.Ratio-1)*100)
}

// CompareKernelSnapshots diffs two snapshot files and returns every
// benchmark present in both whose ns/op regressed by more than tol (0.10 =
// 10%). Benchmarks present in only one snapshot are ignored, so adding new
// kernels never fails the gate.
func CompareKernelSnapshots(baseline, current []byte, tol float64) ([]Regression, error) {
	var old, cur KernelSnapshot
	if err := json.Unmarshal(baseline, &old); err != nil {
		return nil, fmt.Errorf("baseline snapshot: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current snapshot: %w", err)
	}
	var regs []Regression
	for name, ob := range old.Benchmarks {
		cb, ok := cur.Benchmarks[name]
		if !ok || ob.NsPerOp <= 0 || cb.NsPerOp <= 0 {
			continue
		}
		ratio := float64(cb.NsPerOp) / float64(ob.NsPerOp)
		if ratio > 1+tol {
			regs = append(regs, Regression{Name: name, Baseline: ob.NsPerOp, Current: cb.NsPerOp, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, nil
}

// KernelBenchSnapshot measures the Fig-3a/3b and AblationKernels shapes and
// returns the marshaled snapshot.
func KernelBenchSnapshot() ([]byte, error) {
	snap := KernelSnapshot{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]KernelBench{},
	}

	for _, n := range []int{512, 1024, 2048} {
		a, c := fig3BitPair(7, n)
		name := fmt.Sprintf("BenchmarkFig3a_MatMulSingleCore/n=%d", n)
		snap.Benchmarks[name] = measureKernel(func() { _ = matrix.MulBitCount(a, c, 1) })
	}

	{
		a, c := fig3BitPair(8, 2048)
		for _, cores := range []int{1, 2, 3, 4, 5} {
			name := fmt.Sprintf("BenchmarkFig3b_MatMulMultiCore/cores=%d", cores)
			snap.Benchmarks[name] = measureKernel(func() { _ = matrix.MulBitCount(a, c, cores) })
		}
	}

	{
		const n = 512
		rng := rand.New(rand.NewSource(9))
		bm1 := matrix.NewBitMatrix(n, n)
		bm2 := matrix.NewBitMatrix(n, n)
		d1 := matrix.NewInt32(n, n)
		d2 := matrix.NewInt32(n, n)
		for i := 0; i < n; i++ {
			for j := rng.Intn(4); j < n; j += 1 + rng.Intn(6) {
				bm1.Set(i, j)
				d1.Set(i, j, 1)
				k := (j + i) % n
				bm2.Set(i, k)
				d2.Set(i, k, 1)
			}
		}
		d2t := d2.Transpose()
		snap.Benchmarks["BenchmarkAblationKernels/BitPacked"] =
			measureKernel(func() { _ = matrix.MulBitCount(bm1, bm2, 1) })
		snap.Benchmarks["BenchmarkAblationKernels/DenseInt32"] =
			measureKernel(func() { _ = matrix.MulBlocked(d1, d2t) })
		snap.Benchmarks["BenchmarkAblationKernels/Strassen"] =
			measureKernel(func() { _ = matrix.MulStrassen(d1, d2t, 0) })
		snap.Benchmarks["BenchmarkAblationKernels/RectLemma1"] =
			measureKernel(func() { _ = matrix.MulRect(d1, d2t, 0) })
	}

	return json.MarshalIndent(snap, "", "  ")
}
