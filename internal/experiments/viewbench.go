package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/relation"
)

// ViewBench is the maintenance-vs-recompute timing of one registered view
// under a stream of update batches: the average time one mutation batch
// takes end to end (catalog swap + delta propagation into the view) against
// the average time a from-scratch recompute of the same query takes.
type ViewBench struct {
	Query       string `json:"query"`
	Mode        string `json:"mode"`
	MaintainNs  int64  `json:"maintain_ns_per_batch"`
	RecomputeNs int64  `json:"recompute_ns_per_batch"`
	// Speedup is RecomputeNs / MaintainNs: how much cheaper keeping the
	// view fresh by deltas is than re-running the query per batch.
	Speedup   float64 `json:"speedup"`
	Batches   int     `json:"batches"`
	BatchSize int     `json:"batch_size"`
	Rows      int     `json:"rows"`
	// Reps is how many full update-stream runs the min-of-reps estimator
	// took MaintainNs/RecomputeNs over.
	Reps int `json:"reps,omitempty"`
}

// ViewSnapshot is the machine-readable view-maintenance trajectory
// cmd/joinbench writes in -views mode (BENCH_views.json).
type ViewSnapshot struct {
	GoOS       string               `json:"goos"`
	GoArch     string               `json:"goarch"`
	NumCPU     int                  `json:"num_cpu"`
	Scale      float64              `json:"scale"`
	Timestamp  string               `json:"timestamp"`
	Benchmarks map[string]ViewBench `json:"benchmarks"`
}

// DefaultViewSuite is the canned -views suite: one view per maintenance
// shape (two-path kernel folds, star arm re-folds, generic tree
// backtracking) over the skewed community graphs of the bench catalog.
func DefaultViewSuite() map[string]string {
	return map[string]string{
		"vp_twopath": "VP(x, z) :- R(x, y), S(y, z)",
		"vs_star":    "VS(a, b, c) :- R(a, y), S(b, y), T(c, y)",
		"vc_chain":   "VC(a, d) :- R(a, b), S(b, c), T(c, d)",
	}
}

// viewBenchBatches and viewBenchBatchSize shape the update stream: enough
// batches to average out noise, small enough batches to model online
// updates.
const (
	viewBenchBatches   = 24
	viewBenchBatchSize = 32
)

// MeasureView registers src as a view on a fresh engine over the synthetic
// community catalog and streams mixed insert/delete batches at it, timing
// maintenance against from-scratch recompute.
func MeasureView(name, src string, scale float64) (ViewBench, error) {
	rng := rand.New(rand.NewSource(2024))
	eng := core.NewEngine()
	n := int(float64(6000) * scale)
	if n < 200 {
		n = 200
	}
	domain := int32(0)
	for i, rel := range []string{"R", "S", "T"} {
		r := dataset.Community(n, 24+4*i, int64(101+i))
		if _, err := eng.Register(rel, r.Pairs()); err != nil {
			return ViewBench{}, err
		}
		if d := int32(n); d > domain {
			domain = d
		}
	}
	v, err := eng.RegisterView(context.Background(), name, src)
	if err != nil {
		return ViewBench{}, err
	}
	relNames := referencedRels(src)

	vb := ViewBench{
		Query: v.Text(), Mode: v.Mode(),
		Batches: viewBenchBatches, BatchSize: viewBenchBatchSize,
	}

	// Recompute baseline: cold Prepare + Execute of the view's query (what
	// serving the view per request would cost without maintenance). The
	// per-relation-versioned plan cache would hit between mutations of
	// other relations, so bypass it via a fresh text alias each rep.
	reps := 0
	var recompute time.Duration
	for reps < 3 || recompute < 300*time.Millisecond {
		alias := fmt.Sprintf("B%d%s", reps, src[1:])
		start := time.Now()
		if _, err := eng.Query(alias); err != nil {
			return ViewBench{}, err
		}
		recompute += time.Since(start)
		reps++
	}
	vb.RecomputeNs = recompute.Nanoseconds() / int64(reps)

	// Update stream: alternate insert-heavy and delete-heavy batches over
	// the view's base relations, timing the whole Mutate (catalog swap +
	// synchronous view maintenance).
	var maintain time.Duration
	for b := 0; b < viewBenchBatches; b++ {
		rel := relNames[b%len(relNames)]
		var ins, del []relation.Pair
		if b%2 == 0 {
			for i := 0; i < viewBenchBatchSize; i++ {
				ins = append(ins, relation.Pair{X: rng.Int31n(domain), Y: rng.Int31n(domain)})
			}
		} else {
			r, _ := eng.Catalog().Get(rel)
			ps := r.Pairs()
			for i := 0; i < viewBenchBatchSize && len(ps) > 0; i++ {
				del = append(del, ps[rng.Intn(len(ps))])
			}
		}
		start := time.Now()
		if _, err := eng.Mutate(rel, ins, del); err != nil {
			return ViewBench{}, err
		}
		maintain += time.Since(start)
	}
	vb.MaintainNs = maintain.Nanoseconds() / int64(viewBenchBatches)
	if vb.MaintainNs > 0 {
		vb.Speedup = float64(vb.RecomputeNs) / float64(vb.MaintainNs)
	}
	vb.Rows = v.Rows()
	return vb, nil
}

// referencedRels extracts the base relations of the canned view queries
// (they only use R, S, T).
func referencedRels(src string) []string {
	var out []string
	for _, name := range []string{"R", "S", "T"} {
		if containsAtom(src, name) {
			out = append(out, name)
		}
	}
	return out
}

// containsAtom reports whether src contains an atom over rel, i.e. "rel(".
func containsAtom(src, rel string) bool {
	for i := 0; i+len(rel) < len(src); i++ {
		if src[i:i+len(rel)] == rel && src[i+len(rel)] == '(' &&
			(i == 0 || !isIdent(src[i-1])) {
			return true
		}
	}
	return false
}

func isIdent(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// viewBenchReps is the min-of-reps width: each view's whole update-stream
// run is repeated this many times and the fastest per-batch maintain and
// recompute times are kept, so the regression gate sees an estimator robust
// to co-tenant interference (same rationale as measureNs in querybench).
const viewBenchReps = 3

// MeasureViewBest runs MeasureView reps times on fresh engines and keeps the
// minimum per-batch MaintainNs and RecomputeNs. The row counts and strategy
// mode are deterministic across reps; only the timings vary.
func MeasureViewBest(name, src string, scale float64, reps int) (ViewBench, error) {
	if reps < 1 {
		reps = 1
	}
	var best ViewBench
	for i := 0; i < reps; i++ {
		vb, err := MeasureView(name, src, scale)
		if err != nil {
			return ViewBench{}, err
		}
		if i == 0 {
			best = vb
		} else {
			if vb.MaintainNs < best.MaintainNs {
				best.MaintainNs = vb.MaintainNs
			}
			if vb.RecomputeNs < best.RecomputeNs {
				best.RecomputeNs = vb.RecomputeNs
			}
		}
	}
	if best.MaintainNs > 0 {
		best.Speedup = float64(best.RecomputeNs) / float64(best.MaintainNs)
	}
	best.Reps = reps
	return best, nil
}

// CompareViewSnapshots diffs two BENCH_views.json snapshots and returns every
// view present in both whose per-batch maintenance time regressed by more
// than tol — the view-maintenance twin of the query gate. Views present in
// only one snapshot are ignored, so extending the suite never fails the
// gate; snapshots at different scales are incomparable and error out.
func CompareViewSnapshots(baseline, current []byte, tol float64) ([]Regression, error) {
	var old, cur ViewSnapshot
	if err := json.Unmarshal(baseline, &old); err != nil {
		return nil, fmt.Errorf("baseline snapshot: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current snapshot: %w", err)
	}
	if old.Scale != cur.Scale {
		return nil, fmt.Errorf("snapshot scales differ: baseline %g vs current %g", old.Scale, cur.Scale)
	}
	var regs []Regression
	for name, ob := range old.Benchmarks {
		cb, ok := cur.Benchmarks[name]
		if !ok || ob.MaintainNs <= 0 || cb.MaintainNs <= 0 {
			continue
		}
		ratio := float64(cb.MaintainNs) / float64(ob.MaintainNs)
		if ratio > 1+tol {
			regs = append(regs, Regression{Name: name, Baseline: ob.MaintainNs, Current: cb.MaintainNs, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, nil
}

// ViewBenchSnapshot measures the canned view suite (min-of-reps per view)
// and renders the BENCH_views.json snapshot.
func ViewBenchSnapshot(scale float64) ([]byte, error) {
	snap := ViewSnapshot{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]ViewBench{},
	}
	for name, src := range DefaultViewSuite() {
		vb, err := MeasureViewBest(name, src, scale, viewBenchReps)
		if err != nil {
			return nil, fmt.Errorf("view %q: %w", name, err)
		}
		snap.Benchmarks[name] = vb
	}
	return json.MarshalIndent(snap, "", "  ")
}

// RenderViewSnapshot pretty-prints a view snapshot as a table.
func RenderViewSnapshot(data []byte) (string, error) {
	var snap ViewSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return "", err
	}
	keys := make([]string, 0, len(snap.Benchmarks))
	for k := range snap.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("%-12s %-40s %14s %14s %8s %8s\n",
		"view", "query", "maintain ns", "recompute ns", "speedup", "rows")
	for _, k := range keys {
		b := snap.Benchmarks[k]
		out += fmt.Sprintf("%-12s %-40s %14d %14d %7.1fx %8d\n",
			k, truncate(b.Query, 40), b.MaintainNs, b.RecomputeNs, b.Speedup, b.Rows)
	}
	return out, nil
}
