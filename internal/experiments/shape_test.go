package experiments

import (
	"testing"
	"time"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/joinproject"
	"repro/internal/optimizer"
	"repro/internal/relation"
	"repro/internal/ssj"
)

// TestShapeMMBeatsFullJoinOnDense turns the paper's headline claim into an
// executable check: on the dense Words shape, the optimizer-driven MMJoin
// must beat the full-join-then-dedup plan (MySQL-style) outright.
func TestShapeMMBeatsFullJoinOnDense(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := getDataset("Words", 0.25)
	opt := optimizer.New()

	timeOf := func(fn func()) time.Duration {
		start := time.Now()
		fn()
		return time.Since(start)
	}
	mm := timeOf(func() { _, _ = runMMJoin(opt, r, 1) })
	mysql := timeOf(func() { _ = baseline.SortMergeJoinDedup(r, r) })
	if mm >= mysql {
		t.Errorf("dense shape: MMJoin %v not faster than sort-merge+dedup %v", mm, mysql)
	}
}

// TestShapeOptimizerFallsBackOnSparse: on RoadNet and DBLP the optimizer
// must pick the plain WCOJ plan, exactly as the paper reports for Figure 4a.
func TestShapeOptimizerFallsBackOnSparse(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	opt := optimizer.New()
	for _, name := range []string{"RoadNet", "DBLP"} {
		r := getDataset(name, 0.25)
		dec := opt.Choose(r, r, 1)
		if !dec.UseWCOJ {
			t.Errorf("%s: optimizer chose partitioning (outJoin=%d, N=%d), paper expects fallback",
				name, dec.OutJoin, r.Size())
		}
	}
	// ... and must NOT fall back on the dense shapes.
	for _, name := range []string{"Protein", "Image"} {
		r := getDataset(name, 0.25)
		dec := opt.Choose(r, r, 1)
		if dec.UseWCOJ {
			t.Errorf("%s: optimizer fell back to WCOJ (outJoin=%d, N=%d), paper expects partitioning",
				name, dec.OutJoin, r.Size())
		}
	}
}

// TestShapeFig8Monotone: each SizeAware++ optimization level must not be
// slower than the previous one on the Words ablation (the Figure-8 shape).
func TestShapeFig8Monotone(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	r := ssjDataset("Words", 0.25)
	const c = 2
	timeOf := func(opt ssj.PPOptions) time.Duration {
		start := time.Now()
		_ = ssj.SizeAwarePP(r, c, opt)
		return time.Since(start)
	}
	noop := timeOf(ssj.PPOptions{})
	prefix := timeOf(ssj.PPOptions{Light: true, Heavy: true, Prefix: true})
	// Generous slack: the full ablation is asserted only end-to-end, since
	// individual levels can jitter at small scale.
	if float64(prefix) > 0.8*float64(noop) {
		t.Errorf("Prefix configuration (%v) did not clearly beat NO-OP (%v)", prefix, noop)
	}
}

// TestShapeMMJoinOutputSensitive: on the Example-1 community graph, where
// |OUT⋈| ≫ |OUT|, the partitioned algorithm must beat the full-join+dedup
// plan — the situation the paper's introduction motivates.
func TestShapeMMJoinOutputSensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("shape test")
	}
	g := dataset.Community(120000, 10, 3)
	full := relation.FullJoinSize(g, g)
	out := joinproject.TwoPathSize(g, g, joinproject.Options{Workers: 1})
	if full < 10*out {
		t.Skipf("community instance not duplicate-heavy enough: full=%d out=%d", full, out)
	}
	start := time.Now()
	_ = joinproject.TwoPathSize(g, g, joinproject.Options{Workers: 1})
	mm := time.Since(start)
	start = time.Now()
	_ = baseline.HashJoinDedup(g, g)
	hash := time.Since(start)
	if mm >= hash {
		t.Errorf("community graph: MMJoin %v not faster than hash-join+dedup %v (full=%d out=%d)",
			mm, hash, full, out)
	}
}
