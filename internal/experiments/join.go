package experiments

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/joinproject"
	"repro/internal/optimizer"
	"repro/internal/relation"
)

func init() {
	register("fig4a", "Two-path join, single core: MMJoin vs baselines (Figure 4a)", runFig4a)
	register("fig4b", "Three-relation star join, single core (Figure 4b)", runFig4b)
	register("fig4d", "Two-path join, multicore, Jokes (Figure 4d)", func(s float64) Result { return runJoinParallel("Jokes", s) })
	register("fig4e", "Two-path join, multicore, Words (Figure 4e)", func(s float64) Result { return runJoinParallel("Words", s) })
	register("fig4f", "Star join, multicore, Jokes (Figure 4f)", func(s float64) Result { return runStarParallel("Jokes", s) })
	register("fig4g", "Star join, multicore, Words (Figure 4g)", func(s float64) Result { return runStarParallel("Words", s) })
}

// runMMJoin evaluates the 2-path self join the way the paper's MMJoin does:
// the cost-based optimizer picks the plan (WCOJ fallback or thresholds),
// then Algorithm 1 runs.
func runMMJoin(opt *optimizer.Optimizer, r *relation.Relation, workers int) (n int, plan string) {
	dec := opt.Choose(r, r, workers)
	jopt := joinproject.Options{Workers: workers}
	if dec.UseWCOJ {
		t := r.Size() + 1
		jopt.Delta1, jopt.Delta2 = t, t
		plan = "wcoj-fallback"
	} else {
		jopt.Delta1, jopt.Delta2 = dec.Delta1, dec.Delta2
		plan = fmt.Sprintf("d1=%d,d2=%d", dec.Delta1, dec.Delta2)
	}
	return len(joinproject.TwoPathMM(r, r, jopt)), plan
}

func runFig4a(scale float64) Result {
	var res Result
	opt := optimizer.New()
	for _, name := range dataset.Names() {
		r := getDataset(name, scale)
		var out int
		var plan string
		secs := timeIt(func() { out, plan = runMMJoin(opt, r, 1) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d %s", out, plan)})

		secs = timeIt(func() { out = len(joinproject.TwoPathNonMM(r, r, joinproject.Options{Workers: 1})) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "Non-MMJoin", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})

		secs = timeIt(func() { out = len(baseline.HashJoinDedup(r, r)) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "Postgres", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})

		secs = timeIt(func() { out = len(baseline.SortMergeJoinDedup(r, r)) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MySQL", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})

		secs = timeIt(func() { out = len(baseline.EmptyHeadedJoin(r, r, 1)) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "EmptyHeaded", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})

		secs = timeIt(func() { out = len(baseline.SystemXJoinDedup(r, r)) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "SystemX", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})
	}
	return res
}

const starBudget = 20_000_000 // full-join tuples the star experiments allow

func runFig4b(scale float64) Result {
	var res Result
	for _, name := range dataset.Names() {
		r := starSample(getDataset(name, scale), starBudget)
		rels := []*relation.Relation{r, r, r}
		var out int64
		secs := timeIt(func() { out = joinproject.StarMMSize(rels, joinproject.Options{Workers: 1}) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d N=%d", out, r.Size())})
		secs = timeIt(func() { out = int64(len(joinproject.StarNonMM(rels, joinproject.Options{Workers: 1}))) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "Non-MMJoin", Param: "1core",
			Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d N=%d", out, r.Size())})
	}
	return res
}

func runJoinParallel(name string, scale float64) Result {
	var res Result
	opt := optimizer.New()
	// Parallel scaling needs enough work per core to measure; run the
	// multicore sweeps at twice the harness scale.
	r := getDataset(name, scale*2)
	for _, co := range joinCores {
		var out int
		secs := timeIt(func() { out, _ = runMMJoin(opt, r, co) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin",
			Param: fmt.Sprintf("cores=%d", co), Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})
		secs = timeIt(func() { out = len(joinproject.TwoPathNonMM(r, r, joinproject.Options{Workers: co})) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "Non-MMJoin",
			Param: fmt.Sprintf("cores=%d", co), Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})
	}
	return res
}

func runStarParallel(name string, scale float64) Result {
	var res Result
	r := starSample(getDataset(name, scale*2), starBudget)
	rels := []*relation.Relation{r, r, r}
	for _, co := range joinCores {
		var out int64
		secs := timeIt(func() { out = joinproject.StarMMSize(rels, joinproject.Options{Workers: co}) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "MMJoin",
			Param: fmt.Sprintf("cores=%d", co), Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})
		secs = timeIt(func() { out = int64(len(joinproject.StarNonMM(rels, joinproject.Options{Workers: co}))) })
		res.Rows = append(res.Rows, Row{Dataset: name, Series: "Non-MMJoin",
			Param: fmt.Sprintf("cores=%d", co), Seconds: secs, Extra: fmt.Sprintf("|OUT|=%d", out)})
	}
	return res
}
