package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"time"

	"repro/internal/catalog"
	"repro/internal/dataset"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/relation"
)

// QueryBench is the end-to-end timing of one text query: the parse, the
// compile (plan + semijoin reduction), and the full parse+plan+execute
// pipeline, plus the result cardinality and the executed plan's strategy
// summary. Times are min-of-reps (the minimum is the stable estimator under
// scheduler noise — interference only ever adds time), which is what lets
// the CI regression gate compare runs without tripping on machine noise.
type QueryBench struct {
	ParseNs   int64    `json:"parse_ns_per_op"`
	CompileNs int64    `json:"compile_ns_per_op"`
	ExecNs    int64    `json:"exec_ns_per_op"`
	Rows      int      `json:"rows"`
	Plan      []string `json:"plan"`
	Reps      int      `json:"reps"`
}

// QuerySnapshot is the machine-readable query-pipeline trajectory
// cmd/joinbench writes in -query mode (BENCH_queries.json). Keys are the
// canonical query texts; re-runs merge into an existing snapshot so the file
// accumulates a stable suite.
type QuerySnapshot struct {
	GoOS       string                `json:"goos"`
	GoArch     string                `json:"goarch"`
	NumCPU     int                   `json:"num_cpu"`
	Scale      float64               `json:"scale"`
	Timestamp  string                `json:"timestamp"`
	Benchmarks map[string]QueryBench `json:"benchmarks"`
}

// DefaultQuerySuite is the canned -query suite: one query per planner shape
// (2-path, chain fold, star, snowflake-ish tree, aggregate, hinted, and a
// cyclic triangle exercising the hypertree-decomposition path).
func DefaultQuerySuite() []string {
	return []string{
		"Q(x, z) :- R(x, y), S(y, z)",
		"Q(a, d) :- R(a, b), S(b, c), T(c, d)",
		"Q(a, b, c) :- R(a, y), S(b, y), T(c, y)",
		"Q(a, d) :- R(a, b), S(b, c), T(c, d), U(c, e)",
		"Q(x, COUNT(z)) :- R(x, y), S(y, z)",
		"Q(x, z) :- R(x, y), S(y, z) WITH strategy=wcoj",
		"Q(x, z) :- R(x, y), S(y, z), T(z, x)",
	}
}

// QueryBenchCatalog builds the synthetic catalog the -query mode runs
// against: five community-structured relations R, S, T, U, V whose size
// scales with the shared -scale flag.
func QueryBenchCatalog(scale float64) *catalog.Catalog {
	cat := catalog.New()
	n := int(float64(6000) * scale)
	if n < 200 {
		n = 200
	}
	for i, name := range []string{"R", "S", "T", "U", "V"} {
		r := dataset.Community(n, 24+4*i, int64(101+i))
		// Re-register under the catalog name.
		pairs := r.Pairs()
		if _, err := cat.RegisterPairs(name, pairs); err != nil {
			panic(err)
		}
	}
	return cat
}

// queryBudget bounds the per-query measurement time.
const queryBudget = 400 * time.Millisecond

// MeasureQuery times one query end to end against the catalog.
func MeasureQuery(cat *catalog.Catalog, src string) (QueryBench, error) {
	q, err := query.Parse(src)
	if err != nil {
		return QueryBench{}, err
	}
	canonical := q.String()
	var qb QueryBench
	reps := 0
	qb.ParseNs = measureNs(func() error {
		_, err := query.Parse(canonical)
		return err
	}, &reps)

	snapResolver := catalogResolver(cat)
	compiled, err := query.Compile(q, snapResolver)
	if err != nil {
		return QueryBench{}, err
	}
	qb.CompileNs = measureNs(func() error {
		_, err := query.Compile(q, snapResolver)
		return err
	}, &reps)

	opt := optimizer.New()
	res, err := compiled.Execute(context.Background(), query.ExecOptions{Optimizer: opt})
	if err != nil {
		return QueryBench{}, err
	}
	qb.Rows = len(res.Tuples)
	qb.Plan = res.Plan.Strategies()

	// End-to-end: parse + compile (cold plan cache per rep) + execute.
	qb.ExecNs = measureNs(func() error {
		p, err := query.Prepare(canonical, snapResolver)
		if err != nil {
			return err
		}
		_, err = p.Execute(context.Background(), query.ExecOptions{Optimizer: opt})
		return err
	}, &qb.Reps)
	return qb, nil
}

func catalogResolver(cat *catalog.Catalog) query.Resolver {
	return func(name string) (*relation.Relation, error) {
		r, ok := cat.Get(name)
		if !ok {
			return nil, fmt.Errorf("unknown relation %q", name)
		}
		return r, nil
	}
}

// measureNs reports the fastest rep within the budget (min-of-reps, like
// the kernel snapshot): the regression gate needs an estimator that does not
// drift with co-tenant interference.
func measureNs(fn func() error, reps *int) int64 {
	if err := fn(); err != nil { // warm-up
		return -1
	}
	n := 0
	best := int64(1<<63 - 1)
	start := time.Now()
	for time.Since(start) < queryBudget || n < 3 {
		t0 := time.Now()
		if err := fn(); err != nil {
			return -1
		}
		if d := time.Since(t0).Nanoseconds(); d < best {
			best = d
		}
		n++
	}
	*reps = n
	return best
}

// QueryBenchSnapshot measures each query against a fresh synthetic catalog
// and merges the results into prev (a prior snapshot file; nil for none).
func QueryBenchSnapshot(queries []string, scale float64, prev []byte) ([]byte, error) {
	snap := QuerySnapshot{
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		Scale:      scale,
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: map[string]QueryBench{},
	}
	if len(prev) > 0 {
		var old QuerySnapshot
		if err := json.Unmarshal(prev, &old); err == nil && old.Scale == scale {
			for k, v := range old.Benchmarks {
				snap.Benchmarks[k] = v
			}
		}
	}
	cat := QueryBenchCatalog(scale)
	for _, src := range queries {
		q, err := query.Parse(src)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", src, err)
		}
		qb, err := MeasureQuery(cat, src)
		if err != nil {
			return nil, fmt.Errorf("query %q: %w", src, err)
		}
		snap.Benchmarks[q.String()] = qb
	}
	return json.MarshalIndent(snap, "", "  ")
}

// CompareQuerySnapshots diffs two BENCH_queries.json snapshots and returns
// every query present in both whose end-to-end (parse+plan+execute) min-of-
// reps time regressed by more than tol — the query twin of the kernel gate.
// Queries present in only one snapshot are ignored, so extending the suite
// never fails the gate; snapshots at different scales are incomparable and
// error out.
func CompareQuerySnapshots(baseline, current []byte, tol float64) ([]Regression, error) {
	var old, cur QuerySnapshot
	if err := json.Unmarshal(baseline, &old); err != nil {
		return nil, fmt.Errorf("baseline snapshot: %w", err)
	}
	if err := json.Unmarshal(current, &cur); err != nil {
		return nil, fmt.Errorf("current snapshot: %w", err)
	}
	if old.Scale != cur.Scale {
		return nil, fmt.Errorf("snapshot scales differ: baseline %g vs current %g", old.Scale, cur.Scale)
	}
	var regs []Regression
	for name, ob := range old.Benchmarks {
		cb, ok := cur.Benchmarks[name]
		if !ok || ob.ExecNs <= 0 || cb.ExecNs <= 0 {
			continue
		}
		ratio := float64(cb.ExecNs) / float64(ob.ExecNs)
		if ratio > 1+tol {
			regs = append(regs, Regression{Name: name, Baseline: ob.ExecNs, Current: cb.ExecNs, Ratio: ratio})
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Ratio > regs[j].Ratio })
	return regs, nil
}

// RenderQuerySnapshot pretty-prints a snapshot as a table, sorted by query.
func RenderQuerySnapshot(data []byte) (string, error) {
	var snap QuerySnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return "", err
	}
	keys := make([]string, 0, len(snap.Benchmarks))
	for k := range snap.Benchmarks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := fmt.Sprintf("%-70s %12s %12s %12s %8s\n", "query", "parse ns", "compile ns", "e2e ns", "rows")
	for _, k := range keys {
		b := snap.Benchmarks[k]
		out += fmt.Sprintf("%-70s %12d %12d %12d %8d\n", truncate(k, 70), b.ParseNs, b.CompileNs, b.ExecNs, b.Rows)
	}
	return out, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
