package hypertree

import (
	"fmt"
	"math/rand"
	"testing"
)

// graph builds a Hypergraph from binary edges.
func graph(n int, edges ...[2]int) Hypergraph {
	h := Hypergraph{NumVertices: n}
	for _, e := range edges {
		h.Edges = append(h.Edges, []int{e[0], e[1]})
	}
	return h
}

func mustDecompose(t *testing.T, h Hypergraph) Decomposition {
	t.Helper()
	d, err := Decompose(h)
	if err != nil {
		t.Fatalf("Decompose: %v", err)
	}
	if err := Validate(h, d); err != nil {
		t.Fatalf("Validate: %v\nbags: %+v", err, d.Bags)
	}
	return d
}

func TestTriangle(t *testing.T) {
	h := graph(3, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0})
	d := mustDecompose(t, h)
	if d.Width != 2 {
		t.Fatalf("triangle width = %d; want 2", d.Width)
	}
	if len(d.Bags) != 1 {
		t.Fatalf("triangle bags = %d; want 1", len(d.Bags))
	}
	if got := d.Bags[0].Vertices; len(got) != 3 {
		t.Fatalf("triangle bag = %v; want all three vertices", got)
	}
}

func TestFourCycle(t *testing.T) {
	h := graph(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3}, [2]int{3, 0})
	d := mustDecompose(t, h)
	if d.Width != 2 {
		t.Fatalf("4-cycle width = %d; want 2", d.Width)
	}
	if len(d.Bags) != 2 {
		t.Fatalf("4-cycle bags = %d; want 2", len(d.Bags))
	}
}

func TestBowtie(t *testing.T) {
	// Two triangles sharing vertex 2.
	h := graph(5,
		[2]int{0, 1}, [2]int{1, 2}, [2]int{2, 0},
		[2]int{2, 3}, [2]int{3, 4}, [2]int{4, 2})
	d := mustDecompose(t, h)
	if d.Width != 2 {
		t.Fatalf("bowtie width = %d; want 2", d.Width)
	}
}

func TestK4(t *testing.T) {
	h := graph(4,
		[2]int{0, 1}, [2]int{0, 2}, [2]int{0, 3},
		[2]int{1, 2}, [2]int{1, 3}, [2]int{2, 3})
	d := mustDecompose(t, h)
	// K4 has generalized hypertree width 2 (bags {0,1,2} and {0,1,3}... any
	// two triangles sharing an edge): treewidth 3, but two edges cover each
	// 3-vertex bag.
	if d.Width != 2 {
		t.Fatalf("K4 width = %d; want 2", d.Width)
	}
}

func TestAcyclicPathIsWidthOne(t *testing.T) {
	h := graph(4, [2]int{0, 1}, [2]int{1, 2}, [2]int{2, 3})
	d := mustDecompose(t, h)
	if d.Width != 1 {
		t.Fatalf("path width = %d; want 1", d.Width)
	}
}

func TestSingleEdge(t *testing.T) {
	h := graph(2, [2]int{0, 1})
	d := mustDecompose(t, h)
	if d.Width != 1 || len(d.Bags) != 1 {
		t.Fatalf("single edge: width=%d bags=%d; want 1, 1", d.Width, len(d.Bags))
	}
}

func TestTernaryEdges(t *testing.T) {
	// Hyperedges beyond arity 2 are covered too: one ternary edge makes its
	// triangle width 1.
	h := Hypergraph{NumVertices: 3, Edges: [][]int{{0, 1, 2}, {0, 1}}}
	d := mustDecompose(t, h)
	if d.Width != 1 {
		t.Fatalf("ternary width = %d; want 1", d.Width)
	}
}

func TestGreedyFallbackLargeCycle(t *testing.T) {
	// A 9-cycle has 9 edges > ExhaustiveLimit: the min-fill fallback must
	// still produce a valid width-2 decomposition.
	n := 9
	var edges [][2]int
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	h := graph(n, edges...)
	d := mustDecompose(t, h)
	if d.Width != 2 {
		t.Fatalf("9-cycle greedy width = %d; want 2", d.Width)
	}
}

func TestRandomGraphsValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(7)
		m := 1 + rng.Intn(10)
		var edges [][2]int
		seen := map[[2]int]bool{}
		for i := 0; i < m; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			if a > b {
				a, b = b, a
			}
			if seen[[2]int{a, b}] {
				continue
			}
			seen[[2]int{a, b}] = true
			edges = append(edges, [2]int{a, b})
		}
		if len(edges) == 0 {
			continue
		}
		// Restrict vertices to those actually used, as the query compiler
		// does (isolated vertices are uncoverable by design).
		used := map[int]bool{}
		for _, e := range edges {
			used[e[0]] = true
			used[e[1]] = true
		}
		remap := map[int]int{}
		for v := 0; v < n; v++ {
			if used[v] {
				remap[v] = len(remap)
			}
		}
		h := Hypergraph{NumVertices: len(remap)}
		for _, e := range edges {
			h.Edges = append(h.Edges, []int{remap[e[0]], remap[e[1]]})
		}
		d, err := Decompose(h)
		if err != nil {
			t.Fatalf("iter %d: Decompose(%v): %v", iter, h.Edges, err)
		}
		if err := Validate(h, d); err != nil {
			t.Fatalf("iter %d: %v\ngraph: %v\nbags: %+v", iter, err, h.Edges, d.Bags)
		}
	}
}

func TestIsolatedVertexFails(t *testing.T) {
	h := Hypergraph{NumVertices: 3, Edges: [][]int{{0, 1}}}
	if _, err := Decompose(h); err == nil {
		t.Fatal("want error for vertex outside every edge")
	}
}

func TestValidateRejectsBrokenRIP(t *testing.T) {
	h := graph(3, [2]int{0, 1}, [2]int{1, 2})
	d := Decomposition{Bags: []Bag{
		{Vertices: []int{0, 1}, Cover: []int{0}, Parent: -1},
		{Vertices: []int{1, 2}, Cover: []int{1}, Parent: 0},
		{Vertices: []int{0}, Cover: []int{0}, Parent: 1}, // 0 reappears below a bag without it
	}}
	if err := Validate(h, d); err == nil {
		t.Fatal("want running-intersection violation")
	}
}

func ExampleDecompose() {
	// The triangle query Q(x,z) :- R(x,y), S(y,z), T(z,x).
	h := Hypergraph{NumVertices: 3, Edges: [][]int{{0, 1}, {1, 2}, {2, 0}}}
	d, _ := Decompose(h)
	fmt.Println("width:", d.Width, "bags:", len(d.Bags))
	// Output:
	// width: 2 bags: 1
}
