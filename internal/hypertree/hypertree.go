// Package hypertree computes generalized hypertree decompositions (GHDs) of
// query hypergraphs, the structure that lets the engine evaluate cyclic
// join-project queries with the same fold machinery it uses for acyclic ones
// ("Fast Matrix Multiplication meets the Submodular Width", Abo Khamis et
// al., 2024, is the state-of-the-art version of this connection).
//
// A decomposition is a tree of bags. Every bag is a set of vertices together
// with a cover: a set of hyperedges whose union contains the bag. The tree
// satisfies the usual properties — every hyperedge lands inside some bag,
// and the bags containing any one vertex form a connected subtree (the
// running-intersection property). The width of the decomposition is the
// largest cover size; acyclic queries are exactly the width-1 case.
//
// Decompose searches elimination orders of the primal graph: every order
// yields a valid tree decomposition, whose bags are then covered with an
// exact minimum set cover. For hypergraphs of at most ExhaustiveLimit edges
// the search tries every order (exact in practice at query sizes); beyond
// that it falls back to the greedy min-fill heuristic, which is the standard
// polynomial-time approximation.
package hypertree

import (
	"fmt"
	"math/bits"
	"sort"
)

// Hypergraph is the input structure: NumVertices vertices numbered 0..n-1
// and a list of hyperedges, each a non-empty set of vertices. For a join
// query the vertices are variables and the hyperedges are atoms.
type Hypergraph struct {
	// NumVertices is the vertex-domain size; every edge vertex must be in
	// [0, NumVertices).
	NumVertices int
	// Edges are the hyperedges. Order is significant only in that bag covers
	// refer to edges by index.
	Edges [][]int
}

// Bag is one node of the decomposition tree.
type Bag struct {
	// Vertices is the bag's vertex set, sorted ascending.
	Vertices []int
	// Cover indexes the hyperedges whose union contains Vertices (the λ
	// labeling of the GHD). Its size bounds the bag join's AGM exponent.
	Cover []int
	// Parent is the index of the parent bag, or -1 for the root.
	Parent int
}

// Decomposition is a generalized hypertree decomposition: a rooted tree of
// covered bags.
type Decomposition struct {
	// Bags is the bag list; Bags[i].Parent < i never holds in general — use
	// the Parent pointers, not positional order, for tree walks.
	Bags []Bag
	// Width is the largest bag-cover size. Width 1 means the hypergraph is
	// acyclic (α-acyclic after edge-subsumption merging).
	Width int
}

// ExhaustiveLimit is the hyperedge count up to which Decompose tries every
// vertex-elimination order; larger inputs use the greedy min-fill heuristic.
const ExhaustiveLimit = 6

// maxExhaustiveVertices caps the factorial search independently of the edge
// count (8! = 40320 orders, each linear work — still instant).
const maxExhaustiveVertices = 8

// Decompose returns a GHD of h, minimizing width (then bag count) over the
// searched elimination orders. The zero hypergraph yields one empty bag.
func Decompose(h Hypergraph) (Decomposition, error) {
	return DecomposeScored(h, nil)
}

// DecomposeScored is Decompose with a caller-supplied tie-break: among
// decompositions of equal (minimal) width, lower score wins, then fewer
// bags. The query compiler scores by how many bags would project to more
// than two variables, steering equal-width searches toward decompositions
// that re-enter the binary fold pipeline. A nil score is zero everywhere.
func DecomposeScored(h Hypergraph, score func(Decomposition) int) (Decomposition, error) {
	if err := checkInput(h); err != nil {
		return Decomposition{}, err
	}
	if h.NumVertices == 0 {
		return Decomposition{Bags: []Bag{{Parent: -1}}, Width: 0}, nil
	}
	exact := len(h.Edges) <= ExhaustiveLimit && h.NumVertices <= maxExhaustiveVertices
	base := primalMatrix(h) // shared read-only; fromOrder clones per order

	var best Decomposition
	bestScore := 0
	have := false
	consider := func(order []int) {
		d, ok := fromOrder(h, order, exact, base)
		if !ok {
			return
		}
		s := 0
		if score != nil {
			s = score(d)
		}
		if !have || d.Width < best.Width ||
			(d.Width == best.Width && (s < bestScore ||
				(s == bestScore && len(d.Bags) < len(best.Bags)))) {
			best, bestScore, have = d, s, true
		}
	}

	if exact {
		order := make([]int, h.NumVertices)
		for i := range order {
			order[i] = i
		}
		permute(order, 0, consider)
	} else {
		consider(minFillOrder(h))
	}
	if !have {
		return Decomposition{}, fmt.Errorf("hypertree: no cover found (isolated vertex outside every edge)")
	}
	return best, nil
}

// checkInput validates edge vertex ranges and non-emptiness.
func checkInput(h Hypergraph) error {
	for i, e := range h.Edges {
		if len(e) == 0 {
			return fmt.Errorf("hypertree: edge %d is empty", i)
		}
		for _, v := range e {
			if v < 0 || v >= h.NumVertices {
				return fmt.Errorf("hypertree: edge %d has vertex %d outside [0, %d)", i, v, h.NumVertices)
			}
		}
	}
	return nil
}

// permute enumerates the permutations of order[k:] in lexicographic-ish
// order, invoking f on the full slice for each.
func permute(order []int, k int, f func([]int)) {
	if k == len(order) {
		f(order)
		return
	}
	for i := k; i < len(order); i++ {
		order[k], order[i] = order[i], order[k]
		permute(order, k+1, f)
		order[k], order[i] = order[i], order[k]
	}
}

// primal builds the primal-graph adjacency sets: u and v are adjacent when
// some hyperedge contains both.
func primal(h Hypergraph) []map[int]bool {
	adj := make([]map[int]bool, h.NumVertices)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for _, e := range h.Edges {
		for i, u := range e {
			for _, v := range e[i+1:] {
				if u != v {
					adj[u][v] = true
					adj[v][u] = true
				}
			}
		}
	}
	return adj
}

// minFillOrder returns the greedy min-fill elimination order: repeatedly
// eliminate the vertex whose elimination adds the fewest fill edges (ties to
// the lowest vertex id, for determinism).
func minFillOrder(h Hypergraph) []int {
	adj := primal(h)
	eliminated := make([]bool, h.NumVertices)
	order := make([]int, 0, h.NumVertices)
	for len(order) < h.NumVertices {
		bestV, bestFill := -1, -1
		for v := 0; v < h.NumVertices; v++ {
			if eliminated[v] {
				continue
			}
			fill := 0
			var nbrs []int
			for u := range adj[v] {
				if !eliminated[u] {
					nbrs = append(nbrs, u)
				}
			}
			for i, u := range nbrs {
				for _, w := range nbrs[i+1:] {
					if !adj[u][w] {
						fill++
					}
				}
			}
			if bestV < 0 || fill < bestFill || (fill == bestFill && v < bestV) {
				bestV, bestFill = v, fill
			}
		}
		// Eliminate: clique the live neighborhood.
		var nbrs []int
		for u := range adj[bestV] {
			if !eliminated[u] {
				nbrs = append(nbrs, u)
			}
		}
		for i, u := range nbrs {
			for _, w := range nbrs[i+1:] {
				adj[u][w] = true
				adj[w][u] = true
			}
		}
		eliminated[bestV] = true
		order = append(order, bestV)
	}
	return order
}

// primalMatrix builds the dense primal-graph adjacency matrix: u and v are
// adjacent when some hyperedge contains both. Computed once per Decompose
// call and cloned per elimination order, which keeps the exhaustive search
// free of per-permutation map churn.
func primalMatrix(h Hypergraph) [][]bool {
	n := h.NumVertices
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	for _, e := range h.Edges {
		for i, u := range e {
			for _, v := range e[i+1:] {
				if u != v {
					adj[u][v] = true
					adj[v][u] = true
				}
			}
		}
	}
	return adj
}

// fromOrder builds the tree decomposition induced by one elimination order,
// merges subset bags into their parents, and covers every bag (exactly when
// exact, greedily otherwise). base is the read-only primal adjacency
// matrix. Returns ok=false when some bag cannot be covered by the
// hyperedges (a vertex outside every edge).
func fromOrder(h Hypergraph, order []int, exact bool, base [][]bool) (Decomposition, bool) {
	n := h.NumVertices
	pos := make([]int, n)
	for i, v := range order {
		pos[v] = i
	}
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = append([]bool(nil), base[i]...)
	}

	// Elimination bags: bag(v) = {v} ∪ later live neighbors; eliminating v
	// cliques that neighborhood.
	bagOf := make([][]int, n) // by elimination position
	for i, v := range order {
		var later []int
		for u := 0; u < n; u++ {
			if adj[v][u] && pos[u] > i {
				later = append(later, u)
			}
		}
		for a, u := range later {
			for _, w := range later[a+1:] {
				adj[u][w] = true
				adj[w][u] = true
			}
		}
		bag := append([]int{v}, later...)
		sort.Ints(bag)
		bagOf[i] = bag
	}

	// Parent links: bag(v) hangs below the bag of the earliest-eliminated
	// vertex of bag(v)\{v}; a singleton bag (v's component is exhausted)
	// hangs below the next bag in order, which keeps the forest a tree.
	parent := make([]int, n)
	for i, v := range order {
		parent[i] = -1
		if i == n-1 {
			continue
		}
		minPos := n
		for _, u := range bagOf[i] {
			if u != v && pos[u] < minPos {
				minPos = pos[u]
			}
		}
		if minPos == n {
			minPos = i + 1
		}
		parent[i] = minPos
	}

	// Contract tree edges whose endpoint bags are nested (in either
	// direction) until none remain — the standard cleanup that turns the raw
	// elimination tree into a minimal bag tree.
	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for changed := true; changed; {
		changed = false
		for i := 0; i < n && !changed; i++ {
			if !alive[i] || parent[i] < 0 {
				continue
			}
			p := parent[i]
			switch {
			case subset(bagOf[i], bagOf[p]):
				// Drop the child; its children reattach to the parent.
				alive[i] = false
				for j := 0; j < n; j++ {
					if alive[j] && parent[j] == i {
						parent[j] = p
					}
				}
				changed = true
			case subset(bagOf[p], bagOf[i]):
				// Drop the parent; the child takes its place in the tree.
				alive[p] = false
				parent[i] = parent[p]
				for j := 0; j < n; j++ {
					if alive[j] && j != i && parent[j] == p {
						parent[j] = i
					}
				}
				changed = true
			}
		}
	}

	var d Decomposition
	idx := make([]int, n) // elimination position → bag index
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		idx[i] = len(d.Bags)
		d.Bags = append(d.Bags, Bag{Vertices: bagOf[i], Parent: -1})
	}
	for i := 0; i < n; i++ {
		if !alive[i] {
			continue
		}
		if p := parent[i]; p >= 0 {
			d.Bags[idx[i]].Parent = idx[p]
		}
	}

	for i := range d.Bags {
		cover, ok := coverBag(h, d.Bags[i].Vertices, exact)
		if !ok {
			return Decomposition{}, false
		}
		d.Bags[i].Cover = cover
		if len(cover) > d.Width {
			d.Width = len(cover)
		}
	}
	return d, true
}

// subset reports a ⊆ b for sorted slices.
func subset(a, b []int) bool {
	j := 0
	for _, v := range a {
		for j < len(b) && b[j] < v {
			j++
		}
		if j == len(b) || b[j] != v {
			return false
		}
	}
	return true
}

// coverBag picks hyperedges whose union contains the bag. With exact set, it
// finds a minimum cover by enumerating candidate-edge subsets in increasing
// size (candidates are the edges that intersect the bag, so the mask space
// stays tiny at query scale); otherwise it covers greedily.
func coverBag(h Hypergraph, bag []int, exact bool) ([]int, bool) {
	inBag := map[int]bool{}
	for _, v := range bag {
		inBag[v] = true
	}
	var cand []int   // edge indices intersecting the bag
	var masks []uint // per candidate: bitmask over bag positions it covers
	bagPos := map[int]int{}
	for i, v := range bag {
		bagPos[v] = i
	}
	for ei, e := range h.Edges {
		var m uint
		for _, v := range e {
			if inBag[v] {
				m |= 1 << bagPos[v]
			}
		}
		if m != 0 {
			cand = append(cand, ei)
			masks = append(masks, m)
		}
	}
	full := uint(1)<<len(bag) - 1
	var all uint
	for _, m := range masks {
		all |= m
	}
	if all != full {
		return nil, false
	}

	if exact && len(cand) <= 20 {
		best := -1
		bestBits := len(cand) + 1
		for sub := uint(1); sub < 1<<len(cand); sub++ {
			nb := bits.OnesCount(sub)
			if nb >= bestBits {
				continue
			}
			var m uint
			for i := range cand {
				if sub&(1<<i) != 0 {
					m |= masks[i]
				}
			}
			if m == full {
				best, bestBits = int(sub), nb
			}
		}
		var out []int
		for i := range cand {
			if best&(1<<i) != 0 {
				out = append(out, cand[i])
			}
		}
		return out, true
	}

	// Greedy: repeatedly take the edge covering the most uncovered vertices.
	var out []int
	covered := uint(0)
	for covered != full {
		bestI, bestGain := -1, 0
		for i, m := range masks {
			if gain := bits.OnesCount(m &^ covered); gain > bestGain {
				bestI, bestGain = i, gain
			}
		}
		covered |= masks[bestI]
		out = append(out, cand[bestI])
	}
	sort.Ints(out)
	return out, true
}

// Validate checks that d is a proper GHD of h: a single-rooted tree whose
// bags cover every vertex and every hyperedge, satisfy the
// running-intersection property, and are each contained in the union of
// their cover edges. Tests and the query compiler's debug builds use it; a
// nil return means the decomposition is sound.
func Validate(h Hypergraph, d Decomposition) error {
	if len(d.Bags) == 0 {
		return fmt.Errorf("hypertree: no bags")
	}
	roots := 0
	for i, b := range d.Bags {
		if b.Parent == -1 {
			roots++
		} else if b.Parent < 0 || b.Parent >= len(d.Bags) {
			return fmt.Errorf("hypertree: bag %d has invalid parent %d", i, b.Parent)
		}
	}
	if roots != 1 {
		return fmt.Errorf("hypertree: %d roots; want 1", roots)
	}
	// Acyclic parent chains.
	for i := range d.Bags {
		seen := map[int]bool{}
		for p := i; p != -1; p = d.Bags[p].Parent {
			if seen[p] {
				return fmt.Errorf("hypertree: parent cycle through bag %d", i)
			}
			seen[p] = true
		}
	}
	// Vertex and edge coverage.
	vertexBags := make([][]int, h.NumVertices)
	for i, b := range d.Bags {
		for _, v := range b.Vertices {
			if v < 0 || v >= h.NumVertices {
				return fmt.Errorf("hypertree: bag %d has out-of-range vertex %d", i, v)
			}
			vertexBags[v] = append(vertexBags[v], i)
		}
	}
	for v := 0; v < h.NumVertices; v++ {
		if len(vertexBags[v]) == 0 {
			return fmt.Errorf("hypertree: vertex %d is in no bag", v)
		}
	}
	for ei, e := range h.Edges {
		housed := false
		for _, b := range d.Bags {
			if subsetOfSet(e, b.Vertices) {
				housed = true
				break
			}
		}
		if !housed {
			return fmt.Errorf("hypertree: edge %d fits in no bag", ei)
		}
	}
	// Running intersection: for each vertex, exactly one of its bags has a
	// parent not containing it (the subtree's top).
	for v := 0; v < h.NumVertices; v++ {
		tops := 0
		for _, bi := range vertexBags[v] {
			p := d.Bags[bi].Parent
			if p == -1 || !containsVertex(d.Bags[p].Vertices, v) {
				tops++
			}
		}
		if tops != 1 {
			return fmt.Errorf("hypertree: vertex %d spans %d disconnected subtrees", v, tops)
		}
	}
	// Covers.
	for i, b := range d.Bags {
		in := map[int]bool{}
		for _, ei := range b.Cover {
			if ei < 0 || ei >= len(h.Edges) {
				return fmt.Errorf("hypertree: bag %d covers with invalid edge %d", i, ei)
			}
			for _, v := range h.Edges[ei] {
				in[v] = true
			}
		}
		for _, v := range b.Vertices {
			if !in[v] {
				return fmt.Errorf("hypertree: bag %d vertex %d not covered by λ", i, v)
			}
		}
	}
	return nil
}

// subsetOfSet reports whether every element of a appears in sorted b.
func subsetOfSet(a, b []int) bool {
	for _, v := range a {
		if !containsVertex(b, v) {
			return false
		}
	}
	return true
}

// containsVertex reports membership of v in a sorted vertex list.
func containsVertex(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}
