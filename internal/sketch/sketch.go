// Package sketch implements the cardinality estimators the paper's future-
// work section proposes for join-project size estimation: KMV (k minimum
// values) and HyperLogLog.
//
// Section 5 estimates |OUT| from coarse bounds (the geometric-mean rule);
// Section 9 suggests refining this "by modifying estimators for set union
// and set intersection such as KMV and HyperLogLog". The refinement
// implemented here streams the full join once, feeding each projected pair
// into a sketch: the result is an ε-approximation of |OUT| in O(|OUT⋈|)
// time and O(k) (or O(2^p)) memory — in contrast to exact deduplication,
// which needs Ω(|OUT|) memory. The optimizer uses it when the full join is
// small enough to afford the scan (internal/optimizer.ChooseWithSketch).
package sketch

import (
	"math"
	"sort"
)

// hash64 is SplitMix64: a fixed, high-quality 64-bit mixer, so sketches are
// deterministic across processes (required for mergeability and tests).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// PairKey packs a projected output pair for sketching.
func PairKey(x, z int32) uint64 {
	return uint64(uint32(x))<<32 | uint64(uint32(z))
}

// KMV is a k-minimum-values sketch for distinct counting. It keeps the k
// smallest hash values seen; the estimate is (k−1)/kthMin (scaled to the
// unit interval).
type KMV struct {
	k    int
	heap []uint64 // max-heap of the k smallest hashes
	seen map[uint64]struct{}
}

// NewKMV returns a KMV sketch with parameter k (typical: 256–4096;
// standard error ≈ 1/√k).
func NewKMV(k int) *KMV {
	if k < 2 {
		k = 2
	}
	return &KMV{k: k, seen: make(map[uint64]struct{}, k)}
}

// Add inserts one element.
func (s *KMV) Add(v uint64) {
	h := hash64(v)
	if len(s.heap) == s.k && h >= s.heap[0] {
		return
	}
	if _, dup := s.seen[h]; dup {
		return
	}
	if len(s.heap) < s.k {
		s.seen[h] = struct{}{}
		s.heap = append(s.heap, h)
		s.siftUp(len(s.heap) - 1)
		return
	}
	delete(s.seen, s.heap[0])
	s.seen[h] = struct{}{}
	s.heap[0] = h
	s.siftDown(0)
}

func (s *KMV) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if s.heap[p] >= s.heap[i] {
			return
		}
		s.heap[p], s.heap[i] = s.heap[i], s.heap[p]
		i = p
	}
}

func (s *KMV) siftDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && s.heap[l] > s.heap[big] {
			big = l
		}
		if r < n && s.heap[r] > s.heap[big] {
			big = r
		}
		if big == i {
			return
		}
		s.heap[i], s.heap[big] = s.heap[big], s.heap[i]
		i = big
	}
}

// Estimate returns the estimated number of distinct elements added.
func (s *KMV) Estimate() float64 {
	n := len(s.heap)
	if n < s.k {
		return float64(n) // fewer than k distinct: the sketch is exact
	}
	kth := float64(s.heap[0]) / float64(math.MaxUint64)
	if kth == 0 {
		return float64(n)
	}
	return float64(s.k-1) / kth
}

// Merge folds other into s (union semantics). Both sketches must share k.
func (s *KMV) Merge(other *KMV) {
	all := append(append([]uint64(nil), s.heap...), other.heap...)
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	s.heap = s.heap[:0]
	s.seen = make(map[uint64]struct{}, s.k)
	var last uint64
	first := true
	for _, h := range all {
		if !first && h == last {
			continue
		}
		last, first = h, false
		if _, dup := s.seen[h]; dup {
			continue
		}
		s.seen[h] = struct{}{}
		s.heap = append(s.heap, h)
		if len(s.heap) == s.k {
			break
		}
	}
	// Restore heap order (max-heap over the kept minima).
	sort.Slice(s.heap, func(i, j int) bool { return s.heap[i] > s.heap[j] })
}

// HLL is a HyperLogLog sketch with 2^p registers.
type HLL struct {
	p    uint8
	regs []uint8
}

// NewHLL returns an HLL with precision p ∈ [4, 16] (standard error
// ≈ 1.04/√2^p).
func NewHLL(p uint8) *HLL {
	if p < 4 {
		p = 4
	}
	if p > 16 {
		p = 16
	}
	return &HLL{p: p, regs: make([]uint8, 1<<p)}
}

// Add inserts one element.
func (h *HLL) Add(v uint64) {
	x := hash64(v)
	idx := x >> (64 - h.p)
	rest := x<<h.p | 1<<(h.p-1) // ensure termination
	rank := uint8(1)
	for rest&(1<<63) == 0 {
		rank++
		rest <<= 1
	}
	if rank > h.regs[idx] {
		h.regs[idx] = rank
	}
}

// Estimate returns the estimated number of distinct elements, with the
// standard small-range (linear counting) correction.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.regs))
	var sum float64
	zeros := 0
	for _, r := range h.regs {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros)) // linear counting
	}
	return e
}

// Merge folds other into h (register-wise max). Precisions must match.
func (h *HLL) Merge(other *HLL) {
	for i, r := range other.regs {
		if r > h.regs[i] {
			h.regs[i] = r
		}
	}
}
