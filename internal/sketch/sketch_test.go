package sketch

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

func TestKMVExactBelowK(t *testing.T) {
	s := NewKMV(128)
	for i := uint64(0); i < 100; i++ {
		s.Add(i)
		s.Add(i) // duplicates must not count
	}
	if got := s.Estimate(); got != 100 {
		t.Fatalf("KMV below k: estimate %v, want exactly 100", got)
	}
}

func TestKMVAccuracy(t *testing.T) {
	s := NewKMV(1024)
	const n = 200000
	for i := uint64(0); i < n; i++ {
		s.Add(i)
	}
	est := s.Estimate()
	if math.Abs(est-n)/n > 0.15 {
		t.Fatalf("KMV estimate %v too far from %d", est, n)
	}
}

func TestKMVDuplicatesIgnored(t *testing.T) {
	s := NewKMV(64)
	for rep := 0; rep < 10; rep++ {
		for i := uint64(0); i < 50; i++ {
			s.Add(i)
		}
	}
	if got := s.Estimate(); got != 50 {
		t.Fatalf("estimate %v after duplicate floods, want 50", got)
	}
}

func TestKMVMerge(t *testing.T) {
	a, b := NewKMV(512), NewKMV(512)
	for i := uint64(0); i < 50000; i++ {
		a.Add(i)
	}
	for i := uint64(25000); i < 75000; i++ {
		b.Add(i)
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-75000)/75000 > 0.2 {
		t.Fatalf("merged estimate %v, want ≈75000", est)
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 10000, 500000} {
		h := NewHLL(12)
		for i := 0; i < n; i++ {
			h.Add(uint64(i))
		}
		est := h.Estimate()
		if math.Abs(est-float64(n))/float64(n) > 0.1 {
			t.Fatalf("HLL estimate %v for n=%d (err %.2f%%)", est, n, 100*math.Abs(est-float64(n))/float64(n))
		}
	}
}

func TestHLLMerge(t *testing.T) {
	a, b := NewHLL(12), NewHLL(12)
	for i := 0; i < 40000; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 20000))
	}
	a.Merge(b)
	est := a.Estimate()
	if math.Abs(est-60000)/60000 > 0.1 {
		t.Fatalf("merged HLL estimate %v, want ≈60000", est)
	}
}

func TestHLLPrecisionClamped(t *testing.T) {
	if got := len(NewHLL(1).regs); got != 16 {
		t.Fatalf("p<4 should clamp to 4 (16 regs), got %d", got)
	}
	if got := len(NewHLL(30).regs); got != 1<<16 {
		t.Fatalf("p>16 should clamp to 16, got %d regs", got)
	}
}

func TestPairKeyInjective(t *testing.T) {
	seen := map[uint64][2]int32{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		x, z := int32(rng.Intn(1000)), int32(rng.Intn(1000))
		k := PairKey(x, z)
		if prev, ok := seen[k]; ok && (prev[0] != x || prev[1] != z) {
			t.Fatalf("collision: %v and (%d,%d)", prev, x, z)
		}
		seen[k] = [2]int32{x, z}
	}
}

func randomRel(rng *rand.Rand, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		ps[i] = relation.Pair{X: int32(rng.Intn(xdom)), Y: int32(rng.Intn(ydom))}
	}
	return relation.FromPairs("r", ps)
}

func TestEstimateJoinProject(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	r := randomRel(rng, 3000, 200, 80)
	s := randomRel(rng, 3000, 200, 80)
	// Exact output size.
	exact := map[uint64]struct{}{}
	for _, rp := range r.Pairs() {
		for _, sp := range s.Pairs() {
			if rp.Y == sp.Y {
				exact[PairKey(rp.X, sp.X)] = struct{}{}
			}
		}
	}
	n := float64(len(exact))
	hll := EstimateJoinProjectHLL(r, s, 12)
	if math.Abs(hll-n)/n > 0.1 {
		t.Fatalf("HLL join-project estimate %v, exact %v", hll, n)
	}
	kmv := EstimateJoinProjectKMV(r, s, 1024)
	if math.Abs(kmv-n)/n > 0.15 {
		t.Fatalf("KMV join-project estimate %v, exact %v", kmv, n)
	}
}

func TestEstimateDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	r := randomRel(rng, 2000, 300, 50)
	s := randomRel(rng, 2000, 150, 50)
	dx, dz := EstimateDomainsHLL(r, s, 12)
	if math.Abs(dx-float64(r.NumX()))/float64(r.NumX()) > 0.1 {
		t.Fatalf("domX estimate %v, exact %d", dx, r.NumX())
	}
	if math.Abs(dz-float64(s.NumX()))/float64(s.NumX()) > 0.1 {
		t.Fatalf("domZ estimate %v, exact %d", dz, s.NumX())
	}
}

// Property: sketches never report more distinct values than were added
// (within estimator error), and are monotone under Merge.
func TestQuickKMVBounded(t *testing.T) {
	f := func(vals []uint64) bool {
		s := NewKMV(256)
		distinct := map[uint64]bool{}
		for _, v := range vals {
			s.Add(v)
			distinct[v] = true
		}
		est := s.Estimate()
		n := float64(len(distinct))
		if n <= 256 {
			return est == n // exact regime
		}
		return math.Abs(est-n)/n < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickHLLDeterministic(t *testing.T) {
	f := func(vals []uint64) bool {
		a, b := NewHLL(10), NewHLL(10)
		for _, v := range vals {
			a.Add(v)
			b.Add(v)
		}
		return a.Estimate() == b.Estimate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
