package sketch

import (
	"repro/internal/wcoj"

	"repro/internal/relation"
)

// EstimateJoinProjectHLL streams the full 2-path join once, sketching the
// projected pairs with HyperLogLog, and returns the estimated |OUT|.
// Runs in O(|OUT⋈|) time and O(2^p) memory — the memory-free alternative to
// exact deduplication that Section 9 calls for.
func EstimateJoinProjectHLL(r, s *relation.Relation, p uint8) float64 {
	h := NewHLL(p)
	wcoj.EnumerateJoin([]*relation.Relation{r, s}, func(_ int32, lists [][]int32) {
		for _, x := range lists[0] {
			for _, z := range lists[1] {
				h.Add(PairKey(x, z))
			}
		}
	})
	return h.Estimate()
}

// EstimateJoinProjectKMV is the KMV variant of the same estimator.
func EstimateJoinProjectKMV(r, s *relation.Relation, k int) float64 {
	s2 := NewKMV(k)
	wcoj.EnumerateJoin([]*relation.Relation{r, s}, func(_ int32, lists [][]int32) {
		for _, x := range lists[0] {
			for _, z := range lists[1] {
				s2.Add(PairKey(x, z))
			}
		}
	})
	return s2.Estimate()
}

// EstimateDomainsHLL sketches |dom(x)| and |dom(z)| in one pass each —
// the set-union estimation building block. Mostly useful when relations are
// streamed rather than indexed; with indexes the exact values are free, so
// this exists for parity with the KMV/HLL toolkit.
func EstimateDomainsHLL(r, s *relation.Relation, p uint8) (domX, domZ float64) {
	hx, hz := NewHLL(p), NewHLL(p)
	rx := r.ByX()
	for i := 0; i < rx.NumKeys(); i++ {
		hx.Add(uint64(uint32(rx.Key(i))))
	}
	sx := s.ByX()
	for i := 0; i < sx.NumKeys(); i++ {
		hz.Add(uint64(uint32(sx.Key(i))))
	}
	return hx.Estimate(), hz.Estimate()
}
