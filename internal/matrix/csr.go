package matrix

import (
	"slices"

	"repro/internal/par"
)

// CSR is a sparse 0/1 matrix in compressed-sparse-row layout. The heavy
// subrelations of Algorithm 1 are often sparse even after partitioning
// (each heavy x touches far fewer than |heavy y| columns); for those
// instances a Gustavson-style sparse product beats the dense bit kernel,
// and the engine's ablation benchmarks quantify the crossover.
type CSR struct {
	Rows, Cols int
	RowPtr     []int32 // len Rows+1
	ColIdx     []int32 // sorted within each row
}

// NewCSR builds a CSR matrix from per-row sorted column lists. Lists are
// copied.
func NewCSR(rows, cols int, rowLists [][]int32) *CSR {
	m := &CSR{Rows: rows, Cols: cols, RowPtr: make([]int32, rows+1)}
	total := 0
	for _, l := range rowLists {
		total += len(l)
	}
	m.ColIdx = make([]int32, 0, total)
	for i := 0; i < rows; i++ {
		var l []int32
		if i < len(rowLists) {
			l = rowLists[i]
		}
		m.ColIdx = append(m.ColIdx, l...)
		m.RowPtr[i+1] = int32(len(m.ColIdx))
	}
	return m
}

// Row returns row i's sorted column indexes (aliasing internal storage).
func (m *CSR) Row(i int) []int32 { return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]] }

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.ColIdx) }

// CSRFromBitMatrix converts a bit matrix into CSR layout.
func CSRFromBitMatrix(b *BitMatrix) *CSR {
	lists := make([][]int32, b.Rows)
	for i := 0; i < b.Rows; i++ {
		var l []int32
		b.Row(i).ForEach(func(j int) { l = append(l, int32(j)) })
		lists[i] = l
	}
	return NewCSR(b.Rows, b.Cols, lists)
}

// ToBitMatrix converts back to the packed layout.
func (m *CSR) ToBitMatrix() *BitMatrix {
	b := NewBitMatrix(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.Row(i) {
			b.Set(i, int(j))
		}
	}
	return b
}

// denseHarvestDiv is the dense-row crossover of SpGEMMCounts: once an output
// row's nonzero count reaches 1/denseHarvestDiv of the column domain, one
// linear scan of the accumulator is cheaper than sorting the column list —
// and the scan delivers the columns already in index order, so no sort runs
// at all on that path.
const denseHarvestDiv = 8

// SpGEMMCounts computes the integer product C = A × B with Gustavson's
// algorithm: for each row i of A and each k in that row, scatter row k of B
// into a dense accumulator. B is in standard (not transposed) orientation,
// i.e. B.Rows must equal A.Cols. The result is returned row by row through
// fn(i, cols, counts), where cols lists the nonzero columns (sorted) and
// counts the multiplicities; both buffers are reused and must not be
// retained. fn is called concurrently for distinct rows. Worker scratch
// (accumulator and output buffers) is pooled, so a warm steady state
// allocates nothing.
func SpGEMMCounts(a, b *CSR, workers int, fn func(i int, cols []int32, counts []int32)) {
	if a.Cols != b.Rows {
		panic("matrix: SpGEMM dimension mismatch")
	}
	// Single-worker fast path: no chunk closure materializes, so a warm
	// call performs zero allocations.
	if par.Workers(workers) == 1 || a.Rows <= 1 {
		spGEMMChunk(a, b, 0, a.Rows, fn)
		return
	}
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		spGEMMChunk(a, b, lo, hi, fn)
	})
}

// spGEMMChunk evaluates output rows [lo, hi) with one pooled scratch set.
func spGEMMChunk(a, b *CSR, lo, hi int, fn func(i int, cols []int32, counts []int32)) {
	sc := getSpGEMMScratch(b.Cols)
	acc := sc.acc
	cols := sc.cols[:0]
	counts := sc.counts[:0]
	for i := lo; i < hi; i++ {
		cols = cols[:0]
		for _, k := range a.Row(i) {
			for _, j := range b.Row(int(k)) {
				if acc[j] == 0 {
					cols = append(cols, j)
				}
				acc[j]++
			}
		}
		counts = counts[:0]
		if len(cols)*denseHarvestDiv >= b.Cols {
			// Dense row: harvest by scanning the accumulator directly.
			cols = cols[:0]
			for j := range acc {
				if acc[j] != 0 {
					cols = append(cols, int32(j))
					counts = append(counts, acc[j])
					acc[j] = 0
				}
			}
		} else {
			slices.Sort(cols)
			for _, j := range cols {
				counts = append(counts, acc[j])
				acc[j] = 0
			}
		}
		fn(i, cols, counts)
	}
	sc.cols, sc.counts = cols, counts
	putSpGEMMScratch(sc)
}

// SpGEMMToInt32 materializes the sparse product densely (test oracle and
// small instances).
func SpGEMMToInt32(a, b *CSR, workers int) *Int32 {
	c := NewInt32(a.Rows, b.Cols)
	SpGEMMCounts(a, b, workers, func(i int, cols, counts []int32) {
		row := c.Row(i)
		for k, j := range cols {
			row[j] = counts[k]
		}
	})
	return c
}

// Transpose returns mᵀ in CSR layout.
func (m *CSR) Transpose() *CSR {
	lists := make([][]int32, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.Row(i) {
			lists[j] = append(lists[j], int32(i))
		}
	}
	return NewCSR(m.Cols, m.Rows, lists)
}
