//go:build amd64

package matrix

// hasPOPCNT gates the assembly count kernel. POPCNT has shipped on every
// x86-64 since Nehalem (2008), but the default GOAMD64=v1 baseline does not
// guarantee it, so it is probed once with CPUID at init.
var hasPOPCNT = cpuHasPOPCNT()

// cpuHasPOPCNT reports whether the CPU supports the POPCNT instruction
// (CPUID leaf 1, ECX bit 23). Implemented in popcnt_amd64.s.
func cpuHasPOPCNT() bool

// andCount4Popcnt counts the shared bits of four consecutive A rows
// (starting at a, strideWords apart) against one B row of n words.
// Implemented in popcnt_amd64.s; callers must have checked hasPOPCNT.
//
//go:noescape
func andCount4Popcnt(a *uint64, strideWords int, b *uint64, n int) (c0, c1, c2, c3 int64)
