package matrix

import "sync"

// Per-worker scratch recycling for the streaming kernels. ForEachRowProduct
// and SpGEMMCounts are invoked once per engine chunk (star join groups, BSI
// batches, SSJ probes); pooling the count/accumulator buffers makes a warm
// steady state allocate nothing per call, which the zero-alloc tests in
// diff_test.go pin down.

// int32Pool recycles the per-worker count blocks of ForEachRowProduct.
var int32Pool = sync.Pool{New: func() any { return new([]int32) }}

func getInt32Scratch(n int) *[]int32 {
	p := int32Pool.Get().(*[]int32)
	if cap(*p) < n {
		*p = make([]int32, n)
	}
	*p = (*p)[:n]
	return p
}

func putInt32Scratch(p *[]int32) { int32Pool.Put(p) }

// spgemmScratch is the per-worker state of SpGEMMCounts: the dense
// accumulator plus the cols/counts output buffers. Invariant: every entry of
// acc[:cap] is zero while the scratch sits in the pool — the harvest step
// re-zeroes exactly the entries it touched, and entries beyond the current
// length were either never written or zeroed by an earlier, longer use.
type spgemmScratch struct {
	acc    []int32
	cols   []int32
	counts []int32
}

var spgemmPool = sync.Pool{New: func() any { return new(spgemmScratch) }}

func getSpGEMMScratch(cols int) *spgemmScratch {
	s := spgemmPool.Get().(*spgemmScratch)
	if cap(s.acc) < cols {
		s.acc = make([]int32, cols)
	} else {
		s.acc = s.acc[:cols]
	}
	if cap(s.cols) < cols {
		s.cols = make([]int32, 0, cols)
		s.counts = make([]int32, 0, cols)
	}
	return s
}

func putSpGEMMScratch(s *spgemmScratch) { spgemmPool.Put(s) }

// m4rScratch bundles the Four-Russians buffers — the multi-MB flat lookup
// table and the small column-transpose scratch — so one pool entry always
// carries both and a large table is never evicted to serve a small request
// (size-class mixing a single shared pool would allow).
type m4rScratch struct {
	flat []uint64
	col  []uint64
}

var m4rPool = sync.Pool{New: func() any { return new(m4rScratch) }}

func getM4RScratch(flatLen, colLen int) *m4rScratch {
	s := m4rPool.Get().(*m4rScratch)
	if cap(s.flat) < flatLen {
		s.flat = make([]uint64, flatLen)
	} else {
		s.flat = s.flat[:flatLen]
	}
	if cap(s.col) < colLen {
		s.col = make([]uint64, colLen)
	} else {
		s.col = s.col[:colLen]
	}
	return s
}

func putM4RScratch(s *m4rScratch) { m4rPool.Put(s) }
