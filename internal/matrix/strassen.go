package matrix

import "repro/internal/par"

// DefaultStrassenCutoff is the square dimension below which Strassen
// recursion hands off to the blocked classical kernel. Below this size the
// seven-multiplications saving is dominated by the O(n²) additions.
const DefaultStrassenCutoff = 128

// MulStrassen multiplies two matrices using Strassen's algorithm
// (ω = log₂7 ≈ 2.807), the paper's "fast matrix multiplication" stand-in.
// Operands of any shape are padded to the enclosing power-of-two square;
// cutoff ≤ 0 selects DefaultStrassenCutoff.
func MulStrassen(a, b *Int32, cutoff int) *Int32 {
	checkMulShapes(a, b)
	if cutoff <= 0 {
		cutoff = DefaultStrassenCutoff
	}
	n := nextPow2(max3(a.Rows, a.Cols, b.Cols))
	if n <= cutoff {
		return MulBlocked(a, b)
	}
	pa := padTo(a, n)
	pb := padTo(b, n)
	pc := strassenSquare(pa, pb, cutoff)
	return cropTo(pc, a.Rows, b.Cols)
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func max3(a, b, c int) int {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	return a
}

func padTo(m *Int32, n int) *Int32 {
	if m.Rows == n && m.Cols == n {
		return m
	}
	p := NewInt32(n, n)
	for i := 0; i < m.Rows; i++ {
		copy(p.Row(i)[:m.Cols], m.Row(i))
	}
	return p
}

func cropTo(m *Int32, rows, cols int) *Int32 {
	if m.Rows == rows && m.Cols == cols {
		return m
	}
	c := NewInt32(rows, cols)
	for i := 0; i < rows; i++ {
		copy(c.Row(i), m.Row(i)[:cols])
	}
	return c
}

func addInto(dst, a, b *Int32) {
	for i, v := range a.Data {
		dst.Data[i] = v + b.Data[i]
	}
}

func subInto(dst, a, b *Int32) {
	for i, v := range a.Data {
		dst.Data[i] = v - b.Data[i]
	}
}

// quadrant extracts the (qi, qj) half-size quadrant of a 2n×2n matrix.
func quadrant(m *Int32, qi, qj, h int) *Int32 {
	q := NewInt32(h, h)
	for i := 0; i < h; i++ {
		copy(q.Row(i), m.Row(qi*h + i)[qj*h:qj*h+h])
	}
	return q
}

func strassenSquare(a, b *Int32, cutoff int) *Int32 {
	n := a.Rows
	if n <= cutoff {
		return MulBlocked(a, b)
	}
	h := n / 2
	a11, a12 := quadrant(a, 0, 0, h), quadrant(a, 0, 1, h)
	a21, a22 := quadrant(a, 1, 0, h), quadrant(a, 1, 1, h)
	b11, b12 := quadrant(b, 0, 0, h), quadrant(b, 0, 1, h)
	b21, b22 := quadrant(b, 1, 0, h), quadrant(b, 1, 1, h)

	t1, t2 := NewInt32(h, h), NewInt32(h, h)

	addInto(t1, a11, a22)
	addInto(t2, b11, b22)
	m1 := strassenSquare(t1, t2, cutoff)

	addInto(t1, a21, a22)
	m2 := strassenSquare(t1, b11, cutoff)

	subInto(t2, b12, b22)
	m3 := strassenSquare(a11, t2, cutoff)

	subInto(t2, b21, b11)
	m4 := strassenSquare(a22, t2, cutoff)

	addInto(t1, a11, a12)
	m5 := strassenSquare(t1, b22, cutoff)

	subInto(t1, a21, a11)
	addInto(t2, b11, b12)
	m6 := strassenSquare(t1, t2, cutoff)

	subInto(t1, a12, a22)
	addInto(t2, b21, b22)
	m7 := strassenSquare(t1, t2, cutoff)

	c := NewInt32(n, n)
	for i := 0; i < h; i++ {
		c11 := c.Row(i)[:h]
		c12 := c.Row(i)[h:]
		c21 := c.Row(h + i)[:h]
		c22 := c.Row(h + i)[h:]
		r1, r2 := m1.Row(i), m2.Row(i)
		r3, r4 := m3.Row(i), m4.Row(i)
		r5, r6 := m5.Row(i), m6.Row(i)
		r7 := m7.Row(i)
		for j := 0; j < h; j++ {
			c11[j] = r1[j] + r4[j] - r5[j] + r7[j]
			c12[j] = r3[j] + r5[j]
			c21[j] = r2[j] + r4[j]
			c22[j] = r1[j] - r2[j] + r3[j] + r6[j]
		}
	}
	return c
}

// MulParallel computes a×b by partitioning the rows of a across workers;
// each stripe is an independent blocked multiply, mirroring the
// coordination-free parallelism the paper credits for Figure 3b's
// near-linear scaling.
func MulParallel(a, b *Int32, workers int) *Int32 {
	checkMulShapes(a, b)
	c := NewInt32(a.Rows, b.Cols)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		mulBlockedInto(c, a, b, lo, hi)
	})
	return c
}
