#include "textflag.h"

// func cpuHasPOPCNT() bool
TEXT ·cpuHasPOPCNT(SB), NOSPLIT, $0-1
	MOVL	$1, AX
	CPUID
	SHRL	$23, CX
	ANDL	$1, CX
	MOVB	CX, ret+0(FP)
	RET

// func andCount4Popcnt(a *uint64, strideWords int, b *uint64, n int) (c0, c1, c2, c3 int64)
//
// Counts the shared bits of four consecutive A rows (a, a+stride, a+2·stride,
// a+3·stride) against one B row of n words. The B words are loaded once per
// iteration and shared by four independent AND+POPCNT+ADD chains, and the
// two-word unroll amortizes the pointer updates; on Intel cores this runs at
// POPCNT's port-1 throughput (one word count per cycle), which the
// compiler-generated loop cannot reach because every math/bits.OnesCount64
// re-loads the runtime's x86HasPOPCNT guard under the default GOAMD64=v1.
// Caller must have verified cpuHasPOPCNT.
TEXT ·andCount4Popcnt(SB), NOSPLIT, $0-64
	MOVQ	a+0(FP), SI
	MOVQ	strideWords+8(FP), R8
	SHLQ	$3, R8            // stride in bytes
	MOVQ	b+16(FP), BX
	MOVQ	n+24(FP), CX
	LEAQ	(SI)(R8*2), R9    // base of rows 2 and 3
	XORQ	R10, R10
	XORQ	R11, R11
	XORQ	R12, R12
	XORQ	R13, R13

	CMPQ	CX, $2
	JL	tail
pair:
	MOVQ	0(BX), DX         // w0
	MOVQ	8(BX), DI         // w1
	MOVQ	0(SI), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R10
	MOVQ	8(SI), AX
	ANDQ	DI, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R10
	MOVQ	0(SI)(R8*1), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R11
	MOVQ	8(SI)(R8*1), AX
	ANDQ	DI, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R11
	MOVQ	0(R9), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R12
	MOVQ	8(R9), AX
	ANDQ	DI, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R12
	MOVQ	0(R9)(R8*1), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R13
	MOVQ	8(R9)(R8*1), AX
	ANDQ	DI, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R13
	ADDQ	$16, SI
	ADDQ	$16, R9
	ADDQ	$16, BX
	SUBQ	$2, CX
	CMPQ	CX, $2
	JGE	pair
tail:
	TESTQ	CX, CX
	JLE	done
	MOVQ	0(BX), DX
	MOVQ	0(SI), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R10
	MOVQ	0(SI)(R8*1), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R11
	MOVQ	0(R9), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R12
	MOVQ	0(R9)(R8*1), AX
	ANDQ	DX, AX
	POPCNTQ	AX, AX
	ADDQ	AX, R13
done:
	MOVQ	R10, c0+32(FP)
	MOVQ	R11, c1+40(FP)
	MOVQ	R12, c2+48(FP)
	MOVQ	R13, c3+56(FP)
	RET
