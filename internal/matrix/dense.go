// Package matrix implements the matrix-multiplication substrate of the
// join-project engine (Section 2.2 of the paper).
//
// The paper's prototype delegates to Eigen/Intel MKL. This package provides
// the pure-Go equivalents:
//
//   - dense row-major int32 and float32 matrices with cache-blocked ikj
//     kernels and coordination-free row-partitioned parallel multiply,
//   - a bit-packed boolean matrix whose product-with-counts kernel
//     (64-bit AND + POPCNT) plays the role MKL's vectorized SGEMM plays in
//     the paper,
//   - Strassen's algorithm as the "fast matrix multiplication" (ω ≈ 2.807)
//     building block,
//   - the Lemma-1 rectangular multiply that decomposes a U×V by V×W product
//     into β×β square blocks (β = min{U,V,W}),
//   - a calibrated cost model M̂(u,v,w,co) used by the Section-5 optimizer.
package matrix

import "fmt"

// Int32 is a dense row-major matrix of int32 entries. In join processing the
// entries are witness counts, which fit comfortably in int32 for the scales
// the optimizer admits.
type Int32 struct {
	Rows, Cols int
	Data       []int32 // len Rows*Cols, row-major
}

// NewInt32 allocates a zeroed Rows×Cols matrix.
func NewInt32(rows, cols int) *Int32 {
	return &Int32{Rows: rows, Cols: cols, Data: make([]int32, rows*cols)}
}

// At returns the (i, j) entry.
func (m *Int32) At(i, j int) int32 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Int32) Set(i, j int, v int32) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Int32) Row(i int) []int32 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Equal reports whether m and o have identical shape and entries.
func (m *Int32) Equal(o *Int32) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] {
			return false
		}
	}
	return true
}

// Transpose returns mᵀ.
func (m *Int32) Transpose() *Int32 {
	t := NewInt32(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			t.Data[j*t.Cols+i] = v
		}
	}
	return t
}

// String renders small matrices for debugging and test failure messages.
func (m *Int32) String() string {
	s := fmt.Sprintf("Int32(%dx%d)", m.Rows, m.Cols)
	if m.Rows*m.Cols <= 64 {
		s += " ["
		for i := 0; i < m.Rows; i++ {
			s += fmt.Sprintf("%v", m.Row(i))
		}
		s += "]"
	}
	return s
}

func checkMulShapes(a, b *Int32) {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("matrix: shape mismatch %dx%d × %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MulNaive computes a×b with the textbook triple loop. It exists as the
// correctness oracle for the optimized kernels.
func MulNaive(a, b *Int32) *Int32 {
	checkMulShapes(a, b)
	c := NewInt32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s int32
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return c
}

// mulBlockedInto accumulates a×b into c for rows [rlo, rhi) of a, using the
// ikj loop order with a zero-skip. ikj streams rows of b and c sequentially,
// which is the cache-friendly order for row-major storage, and the zero-skip
// makes the kernel cheap on the sparse-ish 0/1 matrices join processing
// produces.
func mulBlockedInto(c, a, b *Int32, rlo, rhi int) {
	n, w := a.Cols, b.Cols
	for i := rlo; i < rhi; i++ {
		arow := a.Row(i)
		crow := c.Row(i)
		for k := 0; k < n; k++ {
			av := arow[k]
			if av == 0 {
				continue
			}
			brow := b.Data[k*w : (k+1)*w]
			if av == 1 {
				for j, bv := range brow {
					crow[j] += bv
				}
				continue
			}
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
}

// MulBlocked computes a×b with the cache-friendly single-threaded kernel.
func MulBlocked(a, b *Int32) *Int32 {
	checkMulShapes(a, b)
	c := NewInt32(a.Rows, b.Cols)
	mulBlockedInto(c, a, b, 0, a.Rows)
	return c
}

// Float32 is a dense row-major float32 matrix, the analogue of the paper's
// SGEMM operand type. It exists for the precision-ablation benchmark.
type Float32 struct {
	Rows, Cols int
	Data       []float32
}

// NewFloat32 allocates a zeroed Rows×Cols matrix.
func NewFloat32(rows, cols int) *Float32 {
	return &Float32{Rows: rows, Cols: cols, Data: make([]float32, rows*cols)}
}

// At returns the (i, j) entry.
func (m *Float32) At(i, j int) float32 { return m.Data[i*m.Cols+j] }

// Set assigns the (i, j) entry.
func (m *Float32) Set(i, j int, v float32) { m.Data[i*m.Cols+j] = v }

// MulFloat32 computes a×b with the ikj kernel.
func MulFloat32(a, b *Float32) *Float32 {
	if a.Cols != b.Rows {
		panic("matrix: shape mismatch")
	}
	c := NewFloat32(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Data[i*a.Cols : (i+1)*a.Cols]
		crow := c.Data[i*c.Cols : (i+1)*c.Cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				crow[j] += av * bv
			}
		}
	}
	return c
}
