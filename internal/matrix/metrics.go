package matrix

import "repro/internal/obs"

// Kernel counters record the work volume each bit-matrix kernel is asked to
// perform: one bump per call at kernel entry, so the tile loop itself stays
// untouched. Tiles are ibTile-row register blocks; words are the scheduled
// A-word loads against Bᵀ rows (rows × rowWords × bT.Rows), the quantity the
// cost model prices. Counts are scheduled volume: a cooperative stop may
// abandon part of a sweep, and that remainder is still counted here.
var (
	kernelCalls = obs.Default().CounterVec(
		"joinmm_kernel_calls_total",
		"Bit-matrix kernel invocations by kernel.",
		"kernel")
	kernelTiles = obs.Default().CounterVec(
		"joinmm_kernel_tiles_total",
		"Register-block tiles scheduled by kernel.",
		"kernel")
	kernelWords = obs.Default().CounterVec(
		"joinmm_kernel_words_total",
		"64-bit word operations scheduled by kernel (rows x words-per-row x B-rows).",
		"kernel")
)

// Per-kernel children resolved once so a kernel call costs three atomic adds,
// not three map lookups.
var (
	mulCountCalls = kernelCalls.With("mulbitcount")
	mulCountTiles = kernelTiles.With("mulbitcount")
	mulCountWords = kernelWords.With("mulbitcount")

	rowProdCalls = kernelCalls.With("roweachproduct")
	rowProdTiles = kernelTiles.With("roweachproduct")
	rowProdWords = kernelWords.With("roweachproduct")

	boolCalls = kernelCalls.With("mulbitbool")
	boolTiles = kernelTiles.With("mulbitbool")
	boolWords = kernelWords.With("mulbitbool")
)

// noteKernel records one kernel dispatch of rows output rows against bT.
func noteKernel(calls, tiles, words *obs.Counter, rows, rowWords, bRows int) {
	calls.Inc()
	tiles.Add(uint64((rows + ibTile - 1) / ibTile))
	words.Add(uint64(rows) * uint64(rowWords) * uint64(bRows))
}
