package matrix

import (
	"sync/atomic"
	"testing"
	"time"
)

// denseSquare builds an n×n all-ones bit matrix: worst-case work per output
// row, so the product without a stop takes long enough to observe early
// exit.
func denseSquare(n int) *BitMatrix {
	m := NewBitMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j)
		}
	}
	return m
}

// TestForEachRowProductStopAbandons flips the stop after the first block
// and checks the sweep ends early instead of visiting every row.
func TestForEachRowProductStopAbandons(t *testing.T) {
	a := denseSquare(512)
	var visited atomic.Int64
	var stopped atomic.Bool
	ForEachRowProductStop(a, a, 1, stopped.Load, func(i int, counts []int32) {
		visited.Add(1)
		stopped.Store(true)
	})
	if v := visited.Load(); v == 0 || v >= int64(a.Rows) {
		t.Fatalf("visited %d of %d rows; want an early exit after the first block", v, a.Rows)
	}
}

func TestMulBitCountStopAbandons(t *testing.T) {
	a := denseSquare(512)
	var stopped atomic.Bool
	stopped.Store(true)
	c := MulBitCountStop(a, a, 1, stopped.Load)
	// Pre-tripped stop: no block runs, the count matrix stays zero.
	if got := c.At(0, 0); got != 0 {
		t.Fatalf("pre-tripped stop still computed counts: C[0][0] = %d", got)
	}
}

// TestStopLatency bounds how long a tripped stop keeps the kernel running:
// the poll sits on every register block, so the kernel must return within
// one block's work — far under the 50ms budget the query layer promises
// for cancellation.
func TestStopLatency(t *testing.T) {
	a := denseSquare(2048)
	var stopped atomic.Bool
	done := make(chan struct{})
	go func() {
		ForEachRowProductStop(a, a, 0, stopped.Load, func(i int, counts []int32) {})
		close(done)
	}()
	time.Sleep(2 * time.Millisecond)
	start := time.Now()
	stopped.Store(true)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("kernel ignored the stop")
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("stop-to-return latency %v, want < 50ms", d)
	}
}

// TestStopDisabledMatchesBaseline guards the fault-free contract: a nil
// stop must take the identical code path and produce identical counts.
func TestStopDisabledMatchesBaseline(t *testing.T) {
	a := denseSquare(96)
	want := MulBitCount(a, a, 1)
	got := MulBitCountStop(a, a, 1, nil)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Rows; j++ {
			if want.At(i, j) != got.At(i, j) {
				t.Fatalf("C[%d][%d]: nil-stop %d != baseline %d", i, j, got.At(i, j), want.At(i, j))
			}
		}
	}
}
