package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCSR(rng *rand.Rand, rows, cols int, density float64) *CSR {
	lists := make([][]int32, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				lists[i] = append(lists[i], int32(j))
			}
		}
	}
	return NewCSR(rows, cols, lists)
}

func TestCSRRoundTripBitMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := randomBitMatrix(rng, 17, 130, 0.2)
	c := CSRFromBitMatrix(b)
	if c.NNZ() != b.Ones() {
		t.Fatalf("NNZ = %d, want %d", c.NNZ(), b.Ones())
	}
	back := c.ToBitMatrix()
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if b.Test(i, j) != back.Test(i, j) {
				t.Fatalf("round trip differs at (%d,%d)", i, j)
			}
		}
	}
}

func TestSpGEMMMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		u, v, w := 1+rng.Intn(25), 1+rng.Intn(25), 1+rng.Intn(25)
		a := randomCSR(rng, u, v, 0.3)
		b := randomCSR(rng, v, w, 0.3)
		got := SpGEMMToInt32(a, b, 1+rng.Intn(3))
		want := MulBlocked(toDense(a), toDense(b))
		if !got.Equal(want) {
			t.Fatalf("trial %d (%d,%d,%d): SpGEMM != dense", trial, u, v, w)
		}
	}
}

func toDense(m *CSR) *Int32 {
	d := NewInt32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for _, j := range m.Row(i) {
			d.Set(i, int(j), 1)
		}
	}
	return d
}

func TestSpGEMMRowsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randomCSR(rng, 20, 30, 0.25)
	b := randomCSR(rng, 30, 40, 0.25)
	SpGEMMCounts(a, b, 2, func(i int, cols, counts []int32) {
		if len(cols) != len(counts) {
			t.Errorf("row %d: cols/counts length mismatch", i)
		}
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Errorf("row %d columns not sorted", i)
			}
		}
		for _, c := range counts {
			if c < 1 {
				t.Errorf("row %d has non-positive count", i)
			}
		}
	})
}

func TestSpGEMMShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	SpGEMMCounts(NewCSR(2, 3, nil), NewCSR(4, 2, nil), 1, func(int, []int32, []int32) {})
}

func TestCSRTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	m := randomCSR(rng, 13, 29, 0.3)
	mt := m.Transpose()
	if mt.Rows != m.Cols || mt.Cols != m.Rows || mt.NNZ() != m.NNZ() {
		t.Fatalf("transpose shape/NNZ wrong")
	}
	d := toDense(m)
	dt := toDense(mt)
	if !d.Transpose().Equal(dt) {
		t.Fatal("transpose contents wrong")
	}
}

func TestCSREmptyRows(t *testing.T) {
	m := NewCSR(5, 10, [][]int32{nil, {1, 2}, nil})
	if m.NNZ() != 2 {
		t.Fatalf("NNZ = %d, want 2", m.NNZ())
	}
	if len(m.Row(0)) != 0 || len(m.Row(3)) != 0 || len(m.Row(4)) != 0 {
		t.Fatal("missing rows should be empty")
	}
	// Product with empty operand.
	e := NewCSR(10, 4, nil)
	c := SpGEMMToInt32(m, e, 1)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("product with empty matrix must be zero")
		}
	}
}

// Property: SpGEMM agrees with the bit-packed kernel on the same operands.
func TestQuickSpGEMMMatchesBitKernel(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u, v, w := 1+rng.Intn(20), 1+rng.Intn(60), 1+rng.Intn(20)
		ab := randomBitMatrix(rng, u, v, 0.3)
		bbT := randomBitMatrix(rng, w, v, 0.3)
		want := MulBitCount(ab, bbT, 1)
		a := CSRFromBitMatrix(ab)
		b := CSRFromBitMatrix(bbT).Transpose()
		got := SpGEMMToInt32(a, b, 2)
		return got.Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSpGEMMvsBit(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	const n = 512
	for _, density := range []float64{0.01, 0.2} {
		bm1 := randomBitMatrix(rng, n, n, density)
		bm2 := randomBitMatrix(rng, n, n, density)
		c1 := CSRFromBitMatrix(bm1)
		c2 := CSRFromBitMatrix(bm2).Transpose()
		b.Run(benchName("Bit", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = MulBitCount(bm1, bm2, 1)
			}
		})
		b.Run(benchName("SpGEMM", density), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				SpGEMMCounts(c1, c2, 1, func(int, []int32, []int32) {})
			}
		})
	}
}

func benchName(kernel string, density float64) string {
	if density < 0.1 {
		return kernel + "/sparse"
	}
	return kernel + "/dense"
}
