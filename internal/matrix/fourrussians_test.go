package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFourRussiansMatchesBool(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	shapes := [][3]int{
		{1, 1, 1}, {3, 7, 5}, {10, 64, 12}, {17, 65, 23}, {40, 130, 40}, {8, 8, 8},
	}
	for _, sh := range shapes {
		a := randomBitMatrix(rng, sh[0], sh[1], 0.3)
		bT := randomBitMatrix(rng, sh[2], sh[1], 0.3)
		want := MulBitBool(a, bT, 1)
		got := MulFourRussians(a, bT, 1)
		for i := 0; i < sh[0]; i++ {
			for j := 0; j < sh[2]; j++ {
				if got.Test(i, j) != want.Test(i, j) {
					t.Fatalf("shape %v: (%d,%d) = %v, want %v", sh, i, j, got.Test(i, j), want.Test(i, j))
				}
			}
		}
	}
}

func TestFourRussiansParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	a := randomBitMatrix(rng, 64, 200, 0.15)
	bT := randomBitMatrix(rng, 48, 200, 0.15)
	want := MulFourRussians(a, bT, 1)
	for _, w := range []int{2, 8} {
		got := MulFourRussians(a, bT, w)
		for i := 0; i < a.Rows; i++ {
			for j := 0; j < bT.Rows; j++ {
				if got.Test(i, j) != want.Test(i, j) {
					t.Fatalf("workers=%d: (%d,%d) differs", w, i, j)
				}
			}
		}
	}
}

func TestFourRussiansSparseAndDense(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for _, density := range []float64{0.0, 0.01, 0.9, 1.0} {
		a := randomBitMatrix(rng, 20, 96, density)
		bT := randomBitMatrix(rng, 20, 96, density)
		want := MulBitBool(a, bT, 1)
		got := MulFourRussians(a, bT, 1)
		if got.Ones() != want.Ones() {
			t.Fatalf("density %.2f: %d ones, want %d", density, got.Ones(), want.Ones())
		}
	}
}

func TestFourRussiansShapeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MulFourRussians(NewBitMatrix(2, 8), NewBitMatrix(2, 16), 1)
}

// Property: Four Russians agrees with the short-circuit boolean product.
func TestQuickFourRussians(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 1 + rng.Intn(30)
		n := 1 + rng.Intn(150)
		w := 1 + rng.Intn(30)
		a := randomBitMatrix(rng, u, n, 0.25)
		bT := randomBitMatrix(rng, w, n, 0.25)
		want := MulBitBool(a, bT, 1)
		got := MulFourRussians(a, bT, 2)
		for i := 0; i < u; i++ {
			for j := 0; j < w; j++ {
				if got.Test(i, j) != want.Test(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBooleanKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(34))
	const n = 1024
	a := randomBitMatrix(rng, n, n, 0.05)
	bT := randomBitMatrix(rng, n, n, 0.05)
	b.Run("ShortCircuitAND", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = MulBitBool(a, bT, 1)
		}
	})
	b.Run("FourRussians", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = MulFourRussians(a, bT, 1)
		}
	})
}
