package matrix

import (
	"math/bits"

	"repro/internal/par"
)

// m4rBlock is the Four-Russians block width t. Lookup tables have 2^t
// entries; t = 8 keeps each row's table in one cache page while already
// yielding the t-fold reduction of the inner loop. It must divide 64 so
// blocks never straddle word boundaries.
const m4rBlock = 8

// Compile-time guard: m4rBlock divides the word size.
var _ [0]struct{} = [64 % m4rBlock]struct{}{}

// MulFourRussians computes the boolean product C = A × Bᵀ with the Method
// of Four Russians: the shared dimension is split into t-bit blocks, and
// for each block a 2^t-entry table of precomputed row ORs of B is built, so
// each (row, block) pair costs one table lookup instead of t row scans —
// the classical O(n³/log n) combinatorial boolean matrix multiplication.
//
// For the join-project engine this is the combinatorial counterpart to fast
// matrix multiplication on the boolean side: it answers "which heavy pairs
// intersect" (the BSI and set-semantics paths) without counts. Operand
// layout matches MulBitBool: bT holds Bᵀ, packed along the shared
// dimension.
func MulFourRussians(a, bT *BitMatrix, workers int) *BitMatrix {
	if a.Cols != bT.Cols {
		panic("matrix: four-russians dimension mismatch")
	}
	n := a.Cols  // shared dimension
	w := bT.Rows // output columns
	outWords := (w + 63) / 64
	nblocks := (n + m4rBlock - 1) / m4rBlock

	// For every t-block, precompute table[mask] = OR of the B-columns
	// (= bT rows' bits) selected by mask. Tables are built per block from
	// the "which output columns have a 1 in shared position p" view, i.e.
	// the transpose of bT restricted to the block.
	//
	// colBits[p] = bitset over output columns j with bT[j][p] = 1.
	colWords := make([][]uint64, m4rBlock)
	for i := range colWords {
		colWords[i] = make([]uint64, outWords)
	}
	tables := make([][][]uint64, nblocks)
	for b := 0; b < nblocks; b++ {
		lo := b * m4rBlock
		hi := lo + m4rBlock
		if hi > n {
			hi = n
		}
		span := hi - lo
		for i := 0; i < span; i++ {
			row := colWords[i]
			for k := range row {
				row[k] = 0
			}
		}
		for j := 0; j < w; j++ {
			words := bT.RowWords(j)
			for p := lo; p < hi; p++ {
				if words[p/64]&(1<<uint(p%64)) != 0 {
					colWords[p-lo][j/64] |= 1 << uint(j%64)
				}
			}
		}
		// Gray-code enumeration: table[mask] = table[mask ^ lowbit] | column.
		table := make([][]uint64, 1<<span)
		table[0] = make([]uint64, outWords)
		for mask := 1; mask < 1<<span; mask++ {
			low := mask & -mask
			prev := table[mask^low]
			cur := make([]uint64, outWords)
			col := colWords[bits.TrailingZeros64(uint64(low))]
			for k := range cur {
				cur[k] = prev[k] | col[k]
			}
			table[mask] = cur
		}
		tables[b] = table
	}

	c := NewBitMatrix(a.Rows, w)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			words := a.RowWords(i)
			out := c.RowWords(i)
			for b := 0; b < nblocks; b++ {
				// m4rBlock divides 64, so a block never straddles a word
				// boundary (compile-time guarded below).
				p := b * m4rBlock
				mask := int(words[p/64] >> uint(p%64) & (1<<m4rBlock - 1))
				if mask == 0 {
					continue
				}
				t := tables[b][mask]
				for k := range out {
					out[k] |= t[k]
				}
			}
		}
	})
	return c
}
