package matrix

import (
	"math/bits"

	"repro/internal/par"
)

// m4rBlock is the Four-Russians block width t. Lookup tables have 2^t
// entries; t = 8 keeps each row's table in one cache page while already
// yielding the t-fold reduction of the inner loop. It must divide 64 so
// blocks never straddle word boundaries.
const m4rBlock = 8

// m4rRowTile is the number of A rows processed per table visit in the
// multiply phase: looping (row-tile × block) instead of (row × all blocks)
// keeps one block's 2^t-entry table resident in cache while it serves the
// whole tile of rows.
const m4rRowTile = 64

// Compile-time guard: m4rBlock divides the word size.
var _ [0]struct{} = [64 % m4rBlock]struct{}{}

// MulFourRussians computes the boolean product C = A × Bᵀ with the Method
// of Four Russians: the shared dimension is split into t-bit blocks, and
// for each block a 2^t-entry table of precomputed row ORs of B is built, so
// each (row, block) pair costs one table lookup instead of t row scans —
// the classical O(n³/log n) combinatorial boolean matrix multiplication.
//
// For the join-project engine this is the combinatorial counterpart to fast
// matrix multiplication on the boolean side: it answers "which heavy pairs
// intersect" (the BSI and set-semantics paths) without counts. Operand
// layout matches MulBitBool: bT holds Bᵀ, packed along the shared
// dimension.
//
// All block tables live in one flat, pooled []uint64 (entry mask of block b
// is the outWords-long segment at (b·2^t + mask)·outWords), filled in place
// by Gray-code enumeration — a single allocation on a cold pool instead of
// the 2^t tiny slices per block the naive version builds.
func MulFourRussians(a, bT *BitMatrix, workers int) *BitMatrix {
	if a.Cols != bT.Cols {
		panic("matrix: four-russians dimension mismatch")
	}
	n := a.Cols  // shared dimension
	w := bT.Rows // output columns
	outWords := (w + 63) / 64
	nblocks := (n + m4rBlock - 1) / m4rBlock
	c := NewBitMatrix(a.Rows, w)
	if nblocks == 0 || outWords == 0 || a.Rows == 0 {
		return c
	}

	tblStride := (1 << m4rBlock) * outWords
	// colWords[p·outWords : (p+1)·outWords] = bitset over output columns j
	// with bT[j][block·t+p] = 1 — the transpose of bT restricted to the
	// current block. One scratch, reused (re-zeroed) across blocks.
	sc := getM4RScratch(nblocks*tblStride, m4rBlock*outWords)
	flat := sc.flat
	colWords := sc.col

	rw := bT.rowWords
	for b := 0; b < nblocks; b++ {
		lo := b * m4rBlock
		hi := min(lo+m4rBlock, n)
		span := hi - lo
		wordIdx := lo / 64
		shift := uint(lo % 64)
		blockMask := uint64(1)<<span - 1
		clear(colWords[:span*outWords])
		for j := 0; j < w; j++ {
			chunk := bT.words[j*rw+wordIdx] >> shift & blockMask
			jw := j / 64
			jbit := uint64(1) << uint(j%64)
			for chunk != 0 {
				p := bits.TrailingZeros64(chunk)
				colWords[p*outWords+jw] |= jbit
				chunk &= chunk - 1
			}
		}
		// Gray-code fill in place: table[mask] = table[mask ^ lowbit] | column.
		// Pooled storage is stale, so entry 0 is cleared explicitly; every
		// other reachable entry is fully overwritten.
		tb := flat[b*tblStride : (b+1)*tblStride]
		clear(tb[:outWords])
		for mask := 1; mask < 1<<span; mask++ {
			low := mask & -mask
			prev := tb[(mask^low)*outWords : (mask^low)*outWords+outWords]
			cur := tb[mask*outWords : mask*outWords+outWords]
			col := colWords[bits.TrailingZeros64(uint64(low))*outWords:]
			for k := range cur {
				cur[k] = prev[k] | col[k]
			}
		}
	}

	arw := a.rowWords
	crw := c.rowWords // == outWords
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i0 := lo; i0 < hi; i0 += m4rRowTile {
			iend := min(i0+m4rRowTile, hi)
			for b := 0; b < nblocks; b++ {
				tb := flat[b*tblStride:]
				p := b * m4rBlock
				wordIdx := p / 64
				shift := uint(p % 64)
				for i := i0; i < iend; i++ {
					mask := int(a.words[i*arw+wordIdx] >> shift & (1<<m4rBlock - 1))
					if mask == 0 {
						continue
					}
					t := tb[mask*outWords : mask*outWords+outWords]
					out := c.words[i*crw : i*crw+outWords : i*crw+outWords]
					for k, tw := range t {
						out[k] |= tw
					}
				}
			}
		}
	})
	putM4RScratch(sc)
	return c
}
