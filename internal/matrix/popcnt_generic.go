//go:build !amd64

package matrix

// Non-amd64 builds fall back to the pure-Go register-blocked kernel, whose
// math/bits.OnesCount64 calls the compiler intrinsifies per architecture.
// A var (not a const) so the differential tests can exercise the fallback
// on any architecture.
var hasPOPCNT = false

func andCount4Popcnt(a *uint64, strideWords int, b *uint64, n int) (c0, c1, c2, c3 int64) {
	panic("matrix: andCount4Popcnt without POPCNT support")
}
