package matrix

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// CostModel estimates the wall-clock cost of the matrix steps of
// Algorithm 1, as required by the Section-5 optimizer: M̂(u,v,w,co) for the
// multiplication itself plus a construction estimate for materializing the
// operand matrices. The model is calibrated once per process with
// micro-probes of the actual kernels, the Go counterpart of the paper's
// precomputed Eigen timing table.
//
// The blocked kernels have two throughput regimes: while the Bᵀ operand
// fits the last private cache level the AND+POPCNT loop runs at its
// arithmetic peak, and beyond that the (i×j×k) tiling amortizes — but does
// not eliminate — the streaming traffic, so throughput drops by a modest,
// measurable factor. Both regimes are probed so the optimizer's crossover
// between MM and the combinatorial plans tracks the kernels it actually
// dispatches.
type CostModel struct {
	// WordOpsPerSec is the measured single-core throughput of the blocked
	// AND+POPCNT kernel with a cache-resident Bᵀ, in 64-bit word operations
	// per second.
	WordOpsPerSec float64
	// WordOpsPerSecStream is the throughput with Bᵀ well beyond the private
	// caches (clamped to at most WordOpsPerSec).
	WordOpsPerSecStream float64
	// StreamFootprint is the Bᵀ byte size above which the streaming rate
	// applies.
	StreamFootprint float64
	// CellOpsPerSec is the measured throughput of matrix construction
	// (allocation + bit staging), in cells per second.
	CellOpsPerSec float64
	// ParallelEff discounts ideal speedup for multi-core estimates; the
	// paper's Figure 3b reports near-linear scaling, so this stays close
	// to 1.
	ParallelEff float64
}

var (
	defaultModelOnce sync.Once
	defaultModel     *CostModel
)

// DefaultCostModel returns a process-wide cost model, calibrating it on
// first use (a few milliseconds of probing).
func DefaultCostModel() *CostModel {
	defaultModelOnce.Do(func() { defaultModel = Calibrate() })
	return defaultModel
}

// streamFootprintBytes approximates the private cache capacity past which
// the Bᵀ operand streams from shared cache or DRAM. 1 MiB matches common
// server L2 sizes; the exact constant only shifts where the two measured
// rates switch, and the rates themselves are machine-probed.
const streamFootprintBytes = 1 << 20

// Calibrate measures kernel throughput with short probes and returns a
// fresh model.
func Calibrate() *CostModel {
	rng := rand.New(rand.NewSource(0x5eed))
	build := func(rows, cols int) *BitMatrix {
		m := NewBitMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j += 1 + rng.Intn(4) {
				m.Set(i, j)
			}
		}
		return m
	}

	// Cache-resident probe: Bᵀ = 256×4096 bits = 128 KiB, well inside L2,
	// with enough rows to exercise the full 4-row register blocks.
	const (
		smallRows = 256
		smallCols = 4096
	)
	constructStart := time.Now()
	a := build(smallRows, smallCols)
	b := build(smallRows, smallCols)
	constructDur := time.Since(constructStart)

	start := time.Now()
	reps := 0
	for time.Since(start) < 4*time.Millisecond {
		_ = MulBitCount(a, b, 1)
		reps++
	}
	mulDur := time.Since(start)
	words := float64((smallCols + 63) / 64)
	wops := float64(smallRows) * float64(smallRows) * words * float64(reps) / mulDur.Seconds()
	if wops <= 0 || math.IsNaN(wops) || math.IsInf(wops, 0) {
		wops = 1e9
	}

	// Streaming probe: a thin A against a Bᵀ of ~2 MiB, so every j-tile
	// pass refetches Bᵀ from beyond the private caches. Rectangular on
	// purpose — it measures Bᵀ traffic, not arithmetic, at ~1/8 the probe
	// cost of a square instance.
	const (
		streamARows = 128
		streamBRows = 2048
		streamCols  = 8192
	)
	sa := build(streamARows, streamCols)
	sb := build(streamBRows, streamCols)
	streamDur := time.Duration(math.MaxInt64)
	for trial := 0; trial < 3; trial++ {
		// Best of three: a single preempted run would pin the streaming
		// rate low for the whole process and misplace the MM crossover.
		start := time.Now()
		_ = MulBitCount(sa, sb, 1)
		if d := time.Since(start); d < streamDur {
			streamDur = d
		}
	}
	streamWords := float64((streamCols + 63) / 64)
	swops := float64(streamARows) * float64(streamBRows) * streamWords / streamDur.Seconds()
	if swops <= 0 || math.IsNaN(swops) || math.IsInf(swops, 0) || swops > wops {
		swops = wops
	}

	cells := 2 * float64(smallRows) * float64(smallCols)
	cops := cells / constructDur.Seconds()
	if cops <= 0 || math.IsNaN(cops) || math.IsInf(cops, 0) {
		cops = 1e9
	}
	return &CostModel{
		WordOpsPerSec:       wops,
		WordOpsPerSecStream: swops,
		StreamFootprint:     streamFootprintBytes,
		CellOpsPerSec:       cops,
		ParallelEff:         0.85,
	}
}

func (cm *CostModel) speedup(cores int) float64 {
	if cores <= 1 {
		return 1
	}
	return 1 + cm.ParallelEff*float64(cores-1)
}

// wordRate returns the throughput regime for a product whose Bᵀ operand has
// w rows of ceil(v/64) words.
func (cm *CostModel) wordRate(v, w int64) float64 {
	rate := cm.WordOpsPerSec
	if cm.WordOpsPerSecStream > 0 && cm.StreamFootprint > 0 {
		if float64(w)*float64((v+63)/64)*8 > cm.StreamFootprint {
			rate = cm.WordOpsPerSecStream
		}
	}
	if rate <= 0 {
		rate = 1e9
	}
	return rate
}

// EstimateMul returns M̂(u,v,w,co): the predicted time to multiply a u×v
// bit matrix by a (transposed) w×v bit matrix on co cores.
func (cm *CostModel) EstimateMul(u, v, w int64, cores int) time.Duration {
	if u <= 0 || v <= 0 || w <= 0 {
		return 0
	}
	words := float64((v + 63) / 64)
	ops := float64(u) * float64(w) * words
	secs := ops / (cm.wordRate(v, w) * cm.speedup(cores))
	return time.Duration(secs * float64(time.Second))
}

// EstimateConstruct returns the predicted time to materialize the two
// operand matrices (u×v and w×v), the C term of Equation (1).
func (cm *CostModel) EstimateConstruct(u, v, w int64) time.Duration {
	cells := float64(u+w) * float64(v)
	if cells <= 0 {
		return 0
	}
	secs := cells / cm.CellOpsPerSec
	return time.Duration(secs * float64(time.Second))
}

// Table is the paper's precomputed M̂ lookup table: measured multiply times
// for square p×p×p instances at several core counts, extrapolated to
// arbitrary (u, v, w, co) by volume scaling from the nearest probe
// (Section 5, "Matrix multiplication cost").
type Table struct {
	Ps      []int
	Cores   []int
	Entries map[[2]int]time.Duration // (p, cores) → measured time
}

// BuildTable measures MulBitCount on random p×p operands for every
// (p, cores) combination. Used by cmd/mmcalib; probe sizes are chosen by the
// caller so tests can keep this fast.
func BuildTable(ps, cores []int) *Table {
	t := &Table{Ps: ps, Cores: cores, Entries: map[[2]int]time.Duration{}}
	rng := rand.New(rand.NewSource(17))
	for _, p := range ps {
		a := NewBitMatrix(p, p)
		b := NewBitMatrix(p, p)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j += 1 + rng.Intn(4) {
				a.Set(i, j)
				b.Set(i, (j+i)%p)
			}
		}
		for _, co := range cores {
			start := time.Now()
			_ = MulBitCount(a, b, co)
			t.Entries[[2]int{p, co}] = time.Since(start)
		}
	}
	return t
}

// Estimate extrapolates M̂(u,v,w,co) from the nearest measured probe by
// effective-volume scaling (volume = u·w·ceil(v/64) word operations).
func (t *Table) Estimate(u, v, w int64, cores int) time.Duration {
	if len(t.Ps) == 0 {
		return 0
	}
	vol := float64(u) * float64(w) * float64((v+63)/64)
	side := math.Cbrt(vol * 64) // equivalent square dimension
	bestP := t.Ps[0]
	for _, p := range t.Ps {
		if math.Abs(float64(p)-side) < math.Abs(float64(bestP)-side) {
			bestP = p
		}
	}
	bestCo := t.Cores[0]
	for _, co := range t.Cores {
		if abs(co-cores) < abs(bestCo-cores) {
			bestCo = co
		}
	}
	base := t.Entries[[2]int{bestP, bestCo}]
	baseVol := float64(bestP) * float64(bestP) * float64((int64(bestP)+63)/64)
	if baseVol == 0 {
		return 0
	}
	scaled := float64(base) * vol / baseVol
	// Adjust for the residual core-count mismatch linearly.
	if bestCo != cores && cores >= 1 && bestCo >= 1 {
		scaled *= float64(bestCo) / float64(cores)
	}
	return time.Duration(scaled)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
