package matrix

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// CostModel estimates the wall-clock cost of the matrix steps of
// Algorithm 1, as required by the Section-5 optimizer: M̂(u,v,w,co) for the
// multiplication itself plus a construction estimate for materializing the
// operand matrices. The model is calibrated once per process with
// micro-probes of the actual kernels, the Go counterpart of the paper's
// precomputed Eigen timing table.
type CostModel struct {
	// WordOpsPerSec is the measured single-core throughput of the AND+POPCNT
	// inner loop, in 64-bit word operations per second.
	WordOpsPerSec float64
	// CellOpsPerSec is the measured throughput of matrix construction
	// (allocation + bit staging), in cells per second.
	CellOpsPerSec float64
	// ParallelEff discounts ideal speedup for multi-core estimates; the
	// paper's Figure 3b reports near-linear scaling, so this stays close
	// to 1.
	ParallelEff float64
}

var (
	defaultModelOnce sync.Once
	defaultModel     *CostModel
)

// DefaultCostModel returns a process-wide cost model, calibrating it on
// first use (a few milliseconds of probing).
func DefaultCostModel() *CostModel {
	defaultModelOnce.Do(func() { defaultModel = Calibrate() })
	return defaultModel
}

// Calibrate measures kernel throughput with short probes and returns a
// fresh model.
func Calibrate() *CostModel {
	const (
		rows = 128
		cols = 4096
	)
	rng := rand.New(rand.NewSource(0x5eed))
	build := func() *BitMatrix {
		m := NewBitMatrix(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j += 1 + rng.Intn(4) {
				m.Set(i, j)
			}
		}
		return m
	}
	constructStart := time.Now()
	a := build()
	b := build()
	constructDur := time.Since(constructStart)

	start := time.Now()
	reps := 0
	for time.Since(start) < 4*time.Millisecond {
		_ = MulBitCount(a, b, 1)
		reps++
	}
	mulDur := time.Since(start)

	words := float64((cols + 63) / 64)
	totalWordOps := float64(rows) * float64(rows) * words * float64(reps)
	wops := totalWordOps / mulDur.Seconds()
	if wops <= 0 || math.IsNaN(wops) {
		wops = 1e9
	}
	cells := 2 * float64(rows) * float64(cols)
	cops := cells / constructDur.Seconds()
	if cops <= 0 || math.IsNaN(cops) || math.IsInf(cops, 0) {
		cops = 1e9
	}
	return &CostModel{WordOpsPerSec: wops, CellOpsPerSec: cops, ParallelEff: 0.85}
}

func (cm *CostModel) speedup(cores int) float64 {
	if cores <= 1 {
		return 1
	}
	return 1 + cm.ParallelEff*float64(cores-1)
}

// EstimateMul returns M̂(u,v,w,co): the predicted time to multiply a u×v
// bit matrix by a (transposed) w×v bit matrix on co cores.
func (cm *CostModel) EstimateMul(u, v, w int64, cores int) time.Duration {
	if u <= 0 || v <= 0 || w <= 0 {
		return 0
	}
	words := float64((v + 63) / 64)
	ops := float64(u) * float64(w) * words
	secs := ops / (cm.WordOpsPerSec * cm.speedup(cores))
	return time.Duration(secs * float64(time.Second))
}

// EstimateConstruct returns the predicted time to materialize the two
// operand matrices (u×v and w×v), the C term of Equation (1).
func (cm *CostModel) EstimateConstruct(u, v, w int64) time.Duration {
	cells := float64(u+w) * float64(v)
	if cells <= 0 {
		return 0
	}
	secs := cells / cm.CellOpsPerSec
	return time.Duration(secs * float64(time.Second))
}

// Table is the paper's precomputed M̂ lookup table: measured multiply times
// for square p×p×p instances at several core counts, extrapolated to
// arbitrary (u, v, w, co) by volume scaling from the nearest probe
// (Section 5, "Matrix multiplication cost").
type Table struct {
	Ps      []int
	Cores   []int
	Entries map[[2]int]time.Duration // (p, cores) → measured time
}

// BuildTable measures MulBitCount on random p×p operands for every
// (p, cores) combination. Used by cmd/mmcalib; probe sizes are chosen by the
// caller so tests can keep this fast.
func BuildTable(ps, cores []int) *Table {
	t := &Table{Ps: ps, Cores: cores, Entries: map[[2]int]time.Duration{}}
	rng := rand.New(rand.NewSource(17))
	for _, p := range ps {
		a := NewBitMatrix(p, p)
		b := NewBitMatrix(p, p)
		for i := 0; i < p; i++ {
			for j := 0; j < p; j += 1 + rng.Intn(4) {
				a.Set(i, j)
				b.Set(i, (j+i)%p)
			}
		}
		for _, co := range cores {
			start := time.Now()
			_ = MulBitCount(a, b, co)
			t.Entries[[2]int{p, co}] = time.Since(start)
		}
	}
	return t
}

// Estimate extrapolates M̂(u,v,w,co) from the nearest measured probe by
// effective-volume scaling (volume = u·w·ceil(v/64) word operations).
func (t *Table) Estimate(u, v, w int64, cores int) time.Duration {
	if len(t.Ps) == 0 {
		return 0
	}
	vol := float64(u) * float64(w) * float64((v+63)/64)
	side := math.Cbrt(vol * 64) // equivalent square dimension
	bestP := t.Ps[0]
	for _, p := range t.Ps {
		if math.Abs(float64(p)-side) < math.Abs(float64(bestP)-side) {
			bestP = p
		}
	}
	bestCo := t.Cores[0]
	for _, co := range t.Cores {
		if abs(co-cores) < abs(bestCo-cores) {
			bestCo = co
		}
	}
	base := t.Entries[[2]int{bestP, bestCo}]
	baseVol := float64(bestP) * float64(bestP) * float64((int64(bestP)+63)/64)
	if baseVol == 0 {
		return 0
	}
	scaled := float64(base) * vol / baseVol
	// Adjust for the residual core-count mismatch linearly.
	if bestCo != cores && cores >= 1 && bestCo >= 1 {
		scaled *= float64(bestCo) / float64(cores)
	}
	return time.Duration(scaled)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
