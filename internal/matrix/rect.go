package matrix

// MulRect multiplies a U×V matrix by a V×W matrix using the Lemma-1
// decomposition: the operands are partitioned into β×β square blocks with
// β = min{U, V, W}, and each block product is computed with the fast square
// kernel (Strassen above the cutoff, classical below). This realizes the
// M(U,V,W) = O(UVW·β^(ω−3)) bound the paper's analysis relies on.
func MulRect(a, b *Int32, cutoff int) *Int32 {
	checkMulShapes(a, b)
	u, v, w := a.Rows, a.Cols, b.Cols
	if u == 0 || v == 0 || w == 0 {
		return NewInt32(u, w)
	}
	if cutoff <= 0 {
		cutoff = DefaultStrassenCutoff
	}
	beta := u
	if v < beta {
		beta = v
	}
	if w < beta {
		beta = w
	}
	if beta <= cutoff {
		// Blocks would be below the fast-MM regime; the classical kernel is
		// already optimal up to constants here.
		return MulBlocked(a, b)
	}
	nu, nv, nw := (u+beta-1)/beta, (v+beta-1)/beta, (w+beta-1)/beta
	c := NewInt32(u, w)
	ablock := NewInt32(beta, beta)
	bblock := NewInt32(beta, beta)
	for bi := 0; bi < nu; bi++ {
		for bj := 0; bj < nw; bj++ {
			for bk := 0; bk < nv; bk++ {
				copyBlock(ablock, a, bi*beta, bk*beta)
				copyBlock(bblock, b, bk*beta, bj*beta)
				prod := strassenSquare(padTo(ablock, nextPow2(beta)), padTo(bblock, nextPow2(beta)), cutoff)
				accumulateBlock(c, prod, bi*beta, bj*beta, beta)
			}
		}
	}
	return c
}

// copyBlock fills dst (β×β) with src[r0:r0+β, c0:c0+β], zero-padding past
// the edges of src.
func copyBlock(dst, src *Int32, r0, c0 int) {
	beta := dst.Rows
	for i := 0; i < beta; i++ {
		row := dst.Row(i)
		si := r0 + i
		if si >= src.Rows {
			for j := range row {
				row[j] = 0
			}
			continue
		}
		srow := src.Row(si)
		for j := 0; j < beta; j++ {
			if c0+j < src.Cols {
				row[j] = srow[c0+j]
			} else {
				row[j] = 0
			}
		}
	}
}

// accumulateBlock adds the top-left β×β region of prod into c at (r0, c0),
// clipping at c's edges.
func accumulateBlock(c, prod *Int32, r0, c0, beta int) {
	for i := 0; i < beta && r0+i < c.Rows; i++ {
		crow := c.Row(r0 + i)
		prow := prod.Row(i)
		for j := 0; j < beta && c0+j < c.Cols; j++ {
			crow[c0+j] += prow[j]
		}
	}
}
