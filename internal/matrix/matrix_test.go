package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInt32(rng *rand.Rand, rows, cols, maxv int) *Int32 {
	m := NewInt32(rows, cols)
	for i := range m.Data {
		m.Data[i] = int32(rng.Intn(maxv))
	}
	return m
}

func TestMulBlockedMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	shapes := [][3]int{{1, 1, 1}, {2, 3, 4}, {7, 5, 9}, {16, 16, 16}, {33, 17, 65}, {64, 1, 64}}
	for _, sh := range shapes {
		a := randomInt32(rng, sh[0], sh[1], 5)
		b := randomInt32(rng, sh[1], sh[2], 5)
		want := MulNaive(a, b)
		if got := MulBlocked(a, b); !got.Equal(want) {
			t.Fatalf("shape %v: blocked != naive", sh)
		}
	}
}

func TestMulParallelMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomInt32(rng, 45, 31, 4)
	b := randomInt32(rng, 31, 52, 4)
	want := MulNaive(a, b)
	for _, w := range []int{1, 2, 4, 16} {
		if got := MulParallel(a, b, w); !got.Equal(want) {
			t.Fatalf("workers=%d: parallel != naive", w)
		}
	}
}

func TestMulStrassenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	shapes := [][3]int{{4, 4, 4}, {8, 8, 8}, {17, 23, 9}, {64, 64, 64}, {100, 50, 75}}
	for _, sh := range shapes {
		a := randomInt32(rng, sh[0], sh[1], 4)
		b := randomInt32(rng, sh[1], sh[2], 4)
		want := MulNaive(a, b)
		if got := MulStrassen(a, b, 4); !got.Equal(want) {
			t.Fatalf("shape %v: strassen != naive", sh)
		}
	}
}

func TestMulStrassenNegativeEntries(t *testing.T) {
	a := NewInt32(3, 3)
	b := NewInt32(3, 3)
	vals := []int32{-2, 5, -7, 3, 0, 1, -1, 4, 2}
	copy(a.Data, vals)
	copy(b.Data, []int32{1, -1, 2, 0, 3, -4, 5, 6, -2})
	want := MulNaive(a, b)
	if got := MulStrassen(a, b, 2); !got.Equal(want) {
		t.Fatalf("strassen with negatives: got %v want %v", got, want)
	}
}

func TestMulRectMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Shapes chosen so β varies which operand dimension is smallest,
	// with a tiny cutoff to force the block decomposition path.
	shapes := [][3]int{{10, 40, 12}, {40, 10, 36}, {12, 36, 10}, {9, 9, 9}, {30, 30, 30}}
	for _, sh := range shapes {
		a := randomInt32(rng, sh[0], sh[1], 3)
		b := randomInt32(rng, sh[1], sh[2], 3)
		want := MulNaive(a, b)
		if got := MulRect(a, b, 4); !got.Equal(want) {
			t.Fatalf("shape %v: rect != naive", sh)
		}
	}
}

func TestMulRectEmpty(t *testing.T) {
	a := NewInt32(0, 5)
	b := NewInt32(5, 3)
	c := MulRect(a, b, 0)
	if c.Rows != 0 || c.Cols != 3 {
		t.Fatalf("empty rect product shape %dx%d", c.Rows, c.Cols)
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randomInt32(rng, 7, 13, 10)
	at := a.Transpose()
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
	if !a.Transpose().Transpose().Equal(a) {
		t.Fatal("double transpose != identity")
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	MulBlocked(NewInt32(2, 3), NewInt32(4, 2))
}

func TestMulFloat32(t *testing.T) {
	a := NewFloat32(2, 3)
	b := NewFloat32(3, 2)
	for i := range a.Data {
		a.Data[i] = float32(i + 1)
	}
	for i := range b.Data {
		b.Data[i] = float32(i + 1)
	}
	c := MulFloat32(a, b)
	// a = [1 2 3; 4 5 6], b = [1 2; 3 4; 5 6] → c = [22 28; 49 64]
	want := []float32{22, 28, 49, 64}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("float32 mul: Data[%d] = %v, want %v", i, c.Data[i], v)
		}
	}
}

func randomBitMatrix(rng *rand.Rand, rows, cols int, density float64) *BitMatrix {
	m := NewBitMatrix(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				m.Set(i, j)
			}
		}
	}
	return m
}

func TestBitMatrixSetTest(t *testing.T) {
	m := NewBitMatrix(3, 130)
	m.Set(0, 0)
	m.Set(1, 64)
	m.Set(2, 129)
	if !m.Test(0, 0) || !m.Test(1, 64) || !m.Test(2, 129) {
		t.Fatal("set bits not readable")
	}
	if m.Test(0, 1) || m.Test(1, 63) || m.Test(2, 128) {
		t.Fatal("unset bits read as set")
	}
	if m.Ones() != 3 {
		t.Fatalf("Ones = %d, want 3", m.Ones())
	}
}

func TestMulBitCountMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 20; trial++ {
		u, v, w := 1+rng.Intn(20), 1+rng.Intn(200), 1+rng.Intn(20)
		a := randomBitMatrix(rng, u, v, 0.3)
		bT := randomBitMatrix(rng, w, v, 0.3)
		got := MulBitCount(a, bT, 1+rng.Intn(4))
		want := MulBlocked(a.ToInt32(), bT.ToInt32().Transpose())
		if !got.Equal(want) {
			t.Fatalf("trial %d (%d,%d,%d): bit count product != dense product", trial, u, v, w)
		}
	}
}

func TestMulBitBoolMatchesCount(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomBitMatrix(rng, 17, 90, 0.1)
	bT := randomBitMatrix(rng, 23, 90, 0.1)
	cnt := MulBitCount(a, bT, 2)
	boolm := MulBitBool(a, bT, 2)
	for i := 0; i < 17; i++ {
		for j := 0; j < 23; j++ {
			if boolm.Test(i, j) != (cnt.At(i, j) > 0) {
				t.Fatalf("bool product disagrees with count at (%d,%d)", i, j)
			}
		}
	}
}

func TestForEachRowProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomBitMatrix(rng, 31, 130, 0.25)
	bT := randomBitMatrix(rng, 11, 130, 0.25)
	want := MulBitCount(a, bT, 1)
	got := NewInt32(31, 11)
	ForEachRowProduct(a, bT, 4, func(i int, counts []int32) {
		copy(got.Row(i), counts)
	})
	if !got.Equal(want) {
		t.Fatal("ForEachRowProduct disagrees with MulBitCount")
	}
}

func TestRowViewSharesStorage(t *testing.T) {
	m := NewBitMatrix(2, 70)
	row := m.Row(1)
	row.Set(65)
	if !m.Test(1, 65) {
		t.Fatal("Row view does not share storage")
	}
	if row.AndCount(m.Row(1)) != 1 {
		t.Fatal("row self-intersection != 1")
	}
}

// Property: matrix multiplication distributes over addition,
// (A+B)C = AC + BC, for the blocked kernel.
func TestQuickDistributive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		m := 1 + rng.Intn(12)
		p := 1 + rng.Intn(12)
		a := randomInt32(rng, n, m, 6)
		b := randomInt32(rng, n, m, 6)
		c := randomInt32(rng, m, p, 6)
		sum := NewInt32(n, m)
		addInto(sum, a, b)
		left := MulBlocked(sum, c)
		ac := MulBlocked(a, c)
		bc := MulBlocked(b, c)
		right := NewInt32(n, p)
		addInto(right, ac, bc)
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: all four multiply implementations agree on random instances.
func TestQuickKernelsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := 1 + rng.Intn(24)
		v := 1 + rng.Intn(24)
		w := 1 + rng.Intn(24)
		a := randomInt32(rng, u, v, 4)
		b := randomInt32(rng, v, w, 4)
		want := MulNaive(a, b)
		return MulBlocked(a, b).Equal(want) &&
			MulParallel(a, b, 3).Equal(want) &&
			MulStrassen(a, b, 4).Equal(want) &&
			MulRect(a, b, 4).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCostModelMonotone(t *testing.T) {
	cm := DefaultCostModel()
	small := cm.EstimateMul(100, 1000, 100, 1)
	big := cm.EstimateMul(1000, 1000, 1000, 1)
	if small <= 0 || big <= small {
		t.Fatalf("cost model not monotone: small=%v big=%v", small, big)
	}
	par := cm.EstimateMul(1000, 1000, 1000, 4)
	if par >= big {
		// More cores must not increase estimated time.
		t.Fatalf("4-core estimate %v not below 1-core %v", par, big)
	}
	if cm.EstimateConstruct(100, 100, 100) <= 0 {
		t.Fatal("construction estimate should be positive")
	}
	if cm.EstimateMul(0, 10, 10, 1) != 0 {
		t.Fatal("degenerate estimate should be 0")
	}
}

func TestBuildTableAndEstimate(t *testing.T) {
	tab := BuildTable([]int{64, 128}, []int{1, 2})
	if len(tab.Entries) != 4 {
		t.Fatalf("table entries = %d, want 4", len(tab.Entries))
	}
	e := tab.Estimate(128, 128, 128, 1)
	if e <= 0 {
		t.Fatalf("table estimate = %v, want > 0", e)
	}
	// Estimating a larger instance must not be cheaper.
	bigger := tab.Estimate(512, 512, 512, 1)
	if bigger < e {
		t.Fatalf("bigger instance estimated cheaper: %v < %v", bigger, e)
	}
	var empty Table
	if empty.Estimate(10, 10, 10, 1) != 0 {
		t.Fatal("empty table should estimate 0")
	}
}

func BenchmarkMulBlocked256(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	x := randomInt32(rng, 256, 256, 2)
	y := randomInt32(rng, 256, 256, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulBlocked(x, y)
	}
}

func BenchmarkMulBitCount1024(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x := randomBitMatrix(rng, 1024, 1024, 0.2)
	y := randomBitMatrix(rng, 1024, 1024, 0.2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MulBitCount(x, y, 0)
	}
}
