package matrix

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/par"
)

// BitMatrix is a 0/1 matrix stored as bit-packed rows: 64 columns per word.
// It is the representation Algorithm 1 uses for the adjacency matrices of
// the heavy subrelations R⁺ and S⁺. The product-with-counts kernel below —
// per-row 64-bit AND + POPCNT — is the pure-Go counterpart of the vectorized
// SGEMM the paper obtains from Eigen/MKL: both exploit data-level
// parallelism (64 columns per word here, SIMD lanes there), which is what
// makes matrix multiplication beat pairwise list intersection on dense
// inputs.
type BitMatrix struct {
	Rows, Cols int
	rowWords   int
	words      []uint64
}

// NewBitMatrix allocates a zeroed Rows×Cols bit matrix in one contiguous
// allocation.
func NewBitMatrix(rows, cols int) *BitMatrix {
	rw := (cols + 63) / 64
	return &BitMatrix{Rows: rows, Cols: cols, rowWords: rw, words: make([]uint64, rows*rw)}
}

// Set sets entry (i, j) to 1.
func (m *BitMatrix) Set(i, j int) {
	m.words[i*m.rowWords+j/64] |= 1 << uint(j%64)
}

// Test reports whether entry (i, j) is 1.
func (m *BitMatrix) Test(i, j int) bool {
	return m.words[i*m.rowWords+j/64]&(1<<uint(j%64)) != 0
}

// RowWords returns row i's backing words.
func (m *BitMatrix) RowWords(i int) []uint64 {
	return m.words[i*m.rowWords : (i+1)*m.rowWords]
}

// Row returns row i as a bitset view sharing storage with the matrix.
func (m *BitMatrix) Row(i int) *bitset.Bitset {
	return bitset.FromWords(m.RowWords(i), m.Cols)
}

// Ones returns the number of 1 entries.
func (m *BitMatrix) Ones() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// MulBitCount computes the integer matrix product C = A × Bᵀ where A is
// rows(a)×cols and bT holds Bᵀ (so bT rows index the product's columns and
// both operands are packed along the shared dimension). C[i][j] is the
// number of shared 1-columns of a.Row(i) and bT.Row(j) — exactly the witness
// count M_{i,j} of Algorithm 1. workers ≤ 0 means all cores.
func MulBitCount(a, bT *BitMatrix, workers int) *Int32 {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	c := NewInt32(a.Rows, bT.Rows)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ra := a.RowWords(i)
			crow := c.Row(i)
			for j := 0; j < bT.Rows; j++ {
				crow[j] = int32(andCountWords(ra, bT.RowWords(j)))
			}
		}
	})
	return c
}

// ForEachRowProduct streams the product A × Bᵀ one output row at a time
// without materializing the full count matrix: fn(i, counts) is invoked with
// counts[j] = |row_i(A) ∩ row_j(B)|. The counts slice is reused per worker,
// so fn must not retain it. fn is called concurrently for distinct i and
// must be safe under that concurrency.
func ForEachRowProduct(a, bT *BitMatrix, workers int, fn func(i int, counts []int32)) {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		counts := make([]int32, bT.Rows)
		for i := lo; i < hi; i++ {
			ra := a.RowWords(i)
			for j := 0; j < bT.Rows; j++ {
				counts[j] = int32(andCountWords(ra, bT.RowWords(j)))
			}
			fn(i, counts)
		}
	})
}

// MulBitBool computes the boolean product C = A × Bᵀ: C[i][j] = 1 iff the
// rows intersect. It short-circuits on the first common word, which makes it
// cheaper than MulBitCount when only reachability is needed (BSI batches).
func MulBitBool(a, bT *BitMatrix, workers int) *BitMatrix {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	c := NewBitMatrix(a.Rows, bT.Rows)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ra := a.RowWords(i)
			for j := 0; j < bT.Rows; j++ {
				if intersectsWords(ra, bT.RowWords(j)) {
					c.Set(i, j)
				}
			}
		}
	})
	return c
}

func andCountWords(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	c := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

func intersectsWords(a, b []uint64) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// ToInt32 expands the bit matrix into a dense 0/1 int32 matrix (test oracle).
func (m *BitMatrix) ToInt32() *Int32 {
	d := NewInt32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Test(i, j) {
				d.Set(i, j, 1)
			}
		}
	}
	return d
}
