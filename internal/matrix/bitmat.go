package matrix

import (
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/par"
)

// BitMatrix is a 0/1 matrix stored as bit-packed rows: 64 columns per word.
// It is the representation Algorithm 1 uses for the adjacency matrices of
// the heavy subrelations R⁺ and S⁺. The product-with-counts kernel below —
// per-row 64-bit AND + POPCNT — is the pure-Go counterpart of the vectorized
// SGEMM the paper obtains from Eigen/MKL: both exploit data-level
// parallelism (64 columns per word here, SIMD lanes there), which is what
// makes matrix multiplication beat pairwise list intersection on dense
// inputs.
type BitMatrix struct {
	Rows, Cols int
	rowWords   int
	words      []uint64
}

// NewBitMatrix allocates a zeroed Rows×Cols bit matrix in one contiguous
// allocation.
func NewBitMatrix(rows, cols int) *BitMatrix {
	rw := (cols + 63) / 64
	return &BitMatrix{Rows: rows, Cols: cols, rowWords: rw, words: make([]uint64, rows*rw)}
}

// Set sets entry (i, j) to 1.
func (m *BitMatrix) Set(i, j int) {
	m.words[i*m.rowWords+j/64] |= 1 << uint(j%64)
}

// Test reports whether entry (i, j) is 1.
func (m *BitMatrix) Test(i, j int) bool {
	return m.words[i*m.rowWords+j/64]&(1<<uint(j%64)) != 0
}

// RowWords returns row i's backing words.
func (m *BitMatrix) RowWords(i int) []uint64 {
	return m.words[i*m.rowWords : (i+1)*m.rowWords]
}

// Row returns row i as a bitset view sharing storage with the matrix.
func (m *BitMatrix) Row(i int) *bitset.Bitset {
	return bitset.FromWords(m.RowWords(i), m.Cols)
}

// Ones returns the number of 1 entries.
func (m *BitMatrix) Ones() int {
	c := 0
	for _, w := range m.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Tiling parameters of the blocked kernels. The inner kernel processes
// ibTile rows of A against one row of Bᵀ: each Bᵀ word is loaded once and
// ANDed into ibTile independent popcount chains, so the arithmetic per load
// quadruples and the dependency chains stay short. Around that register
// block, the j×k tile of Bᵀ (jbTile rows × kbTile words = 16 KiB) stays
// resident in L1d for the whole i-block, so Bᵀ is fetched from the outer
// memory levels once per ibTile output rows instead of once per output row.
// See internal/matrix/README.md for the measurements behind these choices.
const (
	ibTile = 4  // A rows per register block
	jbTile = 32 // Bᵀ rows per cache tile
	kbTile = 64 // words per cache tile (512 B per row segment)
)

// MulBitCount computes the integer matrix product C = A × Bᵀ where A is
// rows(a)×cols and bT holds Bᵀ (so bT rows index the product's columns and
// both operands are packed along the shared dimension). C[i][j] is the
// number of shared 1-columns of a.Row(i) and bT.Row(j) — exactly the witness
// count M_{i,j} of Algorithm 1. workers ≤ 0 means all cores.
func MulBitCount(a, bT *BitMatrix, workers int) *Int32 {
	return MulBitCountStop(a, bT, workers, nil)
}

// MulBitCountStop is MulBitCount with a cooperative cancellation hook: stop
// is polled once per register block of output rows (every ibTile rows), and
// a true return abandons the remaining work, leaving the result partial. A
// nil stop costs one predictable branch per block, so the hot kernel is
// unchanged when cancellation is not in play.
func MulBitCountStop(a, bT *BitMatrix, workers int, stop func() bool) *Int32 {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	noteKernel(mulCountCalls, mulCountTiles, mulCountWords, a.Rows, a.rowWords, bT.Rows)
	c := NewInt32(a.Rows, bT.Rows)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		var dst [ibTile][]int32
		for i0 := lo; i0 < hi; i0 += ibTile {
			if stop != nil && stop() {
				return
			}
			ib := min(ibTile, hi-i0)
			for r := 0; r < ib; r++ {
				dst[r] = c.Row(i0 + r)
			}
			countTile(a, bT, i0, ib, &dst)
		}
	})
	return c
}

// ForEachRowProduct streams the product A × Bᵀ one output row at a time
// without materializing the full count matrix: fn(i, counts) is invoked with
// counts[j] = |row_i(A) ∩ row_j(B)|. The counts slice is reused per worker,
// so fn must not retain it. fn is called concurrently for distinct i and
// must be safe under that concurrency. Count buffers come from a pool, so a
// warm steady state allocates nothing per call.
func ForEachRowProduct(a, bT *BitMatrix, workers int, fn func(i int, counts []int32)) {
	ForEachRowProductStop(a, bT, workers, nil, fn)
}

// ForEachRowProductStop is ForEachRowProduct with a cooperative cancellation
// hook: stop is polled once per register block (every ibTile output rows) and
// a true return abandons the remaining rows, so a deadline on a long product
// takes effect within one block rather than after the full sweep. A nil stop
// keeps the kernel on its original path.
func ForEachRowProductStop(a, bT *BitMatrix, workers int, stop func() bool, fn func(i int, counts []int32)) {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	noteKernel(rowProdCalls, rowProdTiles, rowProdWords, a.Rows, a.rowWords, bT.Rows)
	// Single-worker fast path: no chunk closure materializes, so a warm
	// call performs zero allocations.
	if par.Workers(workers) == 1 || a.Rows <= 1 {
		forEachRowChunk(a, bT, 0, a.Rows, stop, fn)
		return
	}
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		forEachRowChunk(a, bT, lo, hi, stop, fn)
	})
}

// forEachRowChunk streams rows [lo, hi) of the product with one pooled
// count block.
func forEachRowChunk(a, bT *BitMatrix, lo, hi int, stop func() bool, fn func(i int, counts []int32)) {
	m := bT.Rows
	buf := getInt32Scratch(ibTile * m)
	defer putInt32Scratch(buf)
	var dst [ibTile][]int32
	for i0 := lo; i0 < hi; i0 += ibTile {
		if stop != nil && stop() {
			return
		}
		ib := min(ibTile, hi-i0)
		for r := 0; r < ib; r++ {
			dst[r] = (*buf)[r*m : (r+1)*m]
			clear(dst[r])
		}
		countTile(a, bT, i0, ib, &dst)
		for r := 0; r < ib; r++ {
			fn(i0+r, dst[r])
		}
	}
}

// countTile accumulates counts for A rows [i0, i0+ib) into dst[0..ib), each
// of length bT.Rows and pre-zeroed, with the (i-block × j-block × word-block)
// loop nest described at the tile constants.
func countTile(a, bT *BitMatrix, i0, ib int, dst *[ibTile][]int32) {
	rw := a.rowWords
	m := bT.Rows
	if rw == 0 || m == 0 {
		return
	}
	aw := a.words
	bw := bT.words
	for j0 := 0; j0 < m; j0 += jbTile {
		jb := min(jbTile, m-j0)
		for k0 := 0; k0 < rw; k0 += kbTile {
			kb := min(kbTile, rw-k0)
			if ib == ibTile {
				// Full register block: four A-row segments against each Bᵀ
				// row segment of the tile.
				p := i0*rw + k0
				d0, d1, d2, d3 := dst[0], dst[1], dst[2], dst[3]
				if hasPOPCNT {
					ap := &aw[p]
					for j := j0; j < j0+jb; j++ {
						c0, c1, c2, c3 := andCount4Popcnt(ap, rw, &bw[j*rw+k0], kb)
						d0[j] += int32(c0)
						d1[j] += int32(c1)
						d2[j] += int32(c2)
						d3[j] += int32(c3)
					}
					continue
				}
				// Full slice expressions pin the lengths so the fallback's
				// inner loops run bounds-check-free.
				a0 := aw[p : p+kb : p+kb]
				a1 := aw[p+rw : p+rw+kb : p+rw+kb]
				a2 := aw[p+2*rw : p+2*rw+kb : p+2*rw+kb]
				a3 := aw[p+3*rw : p+3*rw+kb : p+3*rw+kb]
				for j := j0; j < j0+jb; j++ {
					q := j*rw + k0
					c0, c1, c2, c3 := andCount4(a0, a1, a2, a3, bw[q:q+kb:q+kb])
					d0[j] += int32(c0)
					d1[j] += int32(c1)
					d2[j] += int32(c2)
					d3[j] += int32(c3)
				}
				continue
			}
			// Remainder rows of the last partial i-block.
			for r := 0; r < ib; r++ {
				p := (i0+r)*rw + k0
				ar := aw[p : p+kb : p+kb]
				dr := dst[r]
				for j := j0; j < j0+jb; j++ {
					q := j*rw + k0
					dr[j] += int32(andCountEq(ar, bw[q:q+kb:q+kb]))
				}
			}
		}
	}
}

// MulBitBool computes the boolean product C = A × Bᵀ: C[i][j] = 1 iff the
// rows intersect. It short-circuits as rows decide, which makes it cheaper
// than MulBitCount when only reachability is needed (BSI batches). The
// i-block register tiling still applies, driven by a pending-row bitmask:
// each Bᵀ word is loaded once and tested against every still-undecided row
// of the block, so the undecided rows share the word loads instead of each
// rescanning Bᵀ from the front, and the word loop exits as soon as the whole
// block has decided.
func MulBitBool(a, bT *BitMatrix, workers int) *BitMatrix {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	noteKernel(boolCalls, boolTiles, boolWords, a.Rows, a.rowWords, bT.Rows)
	c := NewBitMatrix(a.Rows, bT.Rows)
	rw := a.rowWords
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		var rows [ibTile][]uint64
		var outs [ibTile][]uint64
		for i0 := lo; i0 < hi; i0 += ibTile {
			ib := min(ibTile, hi-i0)
			for r := 0; r < ib; r++ {
				rows[r] = a.words[(i0+r)*rw : (i0+r+1)*rw]
				outs[r] = c.RowWords(i0 + r)
			}
			full := uint32(1)<<uint(ib) - 1
			for j := 0; j < bT.Rows; j++ {
				brow := bT.words[j*rw : (j+1)*rw]
				bit := uint64(1) << uint(j%64)
				wi := j / 64
				pending := full
				for k := 0; k < len(brow) && pending != 0; k++ {
					w := brow[k]
					if w == 0 {
						continue
					}
					for m := pending; m != 0; m &= m - 1 {
						r := bits.TrailingZeros32(m)
						if rows[r][k]&w != 0 {
							outs[r][wi] |= bit
							pending &^= 1 << uint(r)
						}
					}
				}
			}
		}
	})
	return c
}

// andCount4 is the pure-Go fallback of andCount4Popcnt: the popcounts of
// a0&b, a1&b, a2&b and a3&b. The slices must all have length ≥ len(b);
// reslicing to len(b) up front lets the compiler drop every bounds check,
// and the four independent accumulators keep the popcount dependency chains
// from serializing. The two-word unroll amortizes loop overhead.
func andCount4(a0, a1, a2, a3, b []uint64) (int, int, int, int) {
	n := len(b)
	a0 = a0[:n]
	a1 = a1[:n]
	a2 = a2[:n]
	a3 = a3[:n]
	var c0, c1, c2, c3 int
	i := 0
	for ; i+2 <= n; i += 2 {
		w0, w1 := b[i], b[i+1]
		c0 += bits.OnesCount64(a0[i]&w0) + bits.OnesCount64(a0[i+1]&w1)
		c1 += bits.OnesCount64(a1[i]&w0) + bits.OnesCount64(a1[i+1]&w1)
		c2 += bits.OnesCount64(a2[i]&w0) + bits.OnesCount64(a2[i+1]&w1)
		c3 += bits.OnesCount64(a3[i]&w0) + bits.OnesCount64(a3[i+1]&w1)
	}
	for ; i < n; i++ {
		w := b[i]
		c0 += bits.OnesCount64(a0[i] & w)
		c1 += bits.OnesCount64(a1[i] & w)
		c2 += bits.OnesCount64(a2[i] & w)
		c3 += bits.OnesCount64(a3[i] & w)
	}
	return c0, c1, c2, c3
}

// andCountEq is the single-row kernel for equal-length word slices.
func andCountEq(a, b []uint64) int {
	b = b[:len(a)]
	c := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		c += bits.OnesCount64(a[i]&b[i]) +
			bits.OnesCount64(a[i+1]&b[i+1]) +
			bits.OnesCount64(a[i+2]&b[i+2]) +
			bits.OnesCount64(a[i+3]&b[i+3])
	}
	for ; i < len(a); i++ {
		c += bits.OnesCount64(a[i] & b[i])
	}
	return c
}

// andCountWords counts shared bits of two word slices that may differ in
// length (the shorter prefix is used). Kept for the naive oracles and row
// views.
func andCountWords(a, b []uint64) int {
	if len(b) < len(a) {
		a, b = b, a
	}
	return andCountEq(a, b)
}

func intersectsWords(a, b []uint64) bool {
	if len(b) < len(a) {
		a, b = b, a
	}
	b = b[:len(a)]
	for i, w := range a {
		if w&b[i] != 0 {
			return true
		}
	}
	return false
}

// ToInt32 expands the bit matrix into a dense 0/1 int32 matrix (test oracle).
func (m *BitMatrix) ToInt32() *Int32 {
	d := NewInt32(m.Rows, m.Cols)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.Test(i, j) {
				d.Set(i, j, 1)
			}
		}
	}
	return d
}
