package matrix

import (
	"math/bits"
	"sort"

	"repro/internal/par"
)

// This file preserves the original memory-naive kernels as unexported
// correctness oracles. The exported kernels in bitmat.go, fourrussians.go
// and csr.go are cache-blocked rewrites; the differential tests in
// diff_test.go pit them against these reference implementations on
// randomized shapes. Do not optimize anything here — simplicity is the
// point.

// mulBitCountNaive is the original row-at-a-time count product: every output
// row streams the entire Bᵀ operand.
func mulBitCountNaive(a, bT *BitMatrix, workers int) *Int32 {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	c := NewInt32(a.Rows, bT.Rows)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ra := a.RowWords(i)
			crow := c.Row(i)
			for j := 0; j < bT.Rows; j++ {
				crow[j] = int32(andCountWords(ra, bT.RowWords(j)))
			}
		}
	})
	return c
}

// forEachRowProductNaive is the original streaming variant with a per-worker
// make of the counts buffer.
func forEachRowProductNaive(a, bT *BitMatrix, workers int, fn func(i int, counts []int32)) {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		counts := make([]int32, bT.Rows)
		for i := lo; i < hi; i++ {
			ra := a.RowWords(i)
			for j := 0; j < bT.Rows; j++ {
				counts[j] = int32(andCountWords(ra, bT.RowWords(j)))
			}
			fn(i, counts)
		}
	})
}

// mulBitBoolNaive is the original short-circuiting boolean product.
func mulBitBoolNaive(a, bT *BitMatrix, workers int) *BitMatrix {
	if a.Cols != bT.Cols {
		panic("matrix: bit product dimension mismatch")
	}
	c := NewBitMatrix(a.Rows, bT.Rows)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ra := a.RowWords(i)
			for j := 0; j < bT.Rows; j++ {
				if intersectsWords(ra, bT.RowWords(j)) {
					c.Set(i, j)
				}
			}
		}
	})
	return c
}

// mulFourRussiansNaive is the original Four-Russians product with one tiny
// slice allocated per table entry (2^t per block).
func mulFourRussiansNaive(a, bT *BitMatrix, workers int) *BitMatrix {
	if a.Cols != bT.Cols {
		panic("matrix: four-russians dimension mismatch")
	}
	n := a.Cols  // shared dimension
	w := bT.Rows // output columns
	outWords := (w + 63) / 64
	nblocks := (n + m4rBlock - 1) / m4rBlock

	colWords := make([][]uint64, m4rBlock)
	for i := range colWords {
		colWords[i] = make([]uint64, outWords)
	}
	tables := make([][][]uint64, nblocks)
	for b := 0; b < nblocks; b++ {
		lo := b * m4rBlock
		hi := lo + m4rBlock
		if hi > n {
			hi = n
		}
		span := hi - lo
		for i := 0; i < span; i++ {
			row := colWords[i]
			for k := range row {
				row[k] = 0
			}
		}
		for j := 0; j < w; j++ {
			words := bT.RowWords(j)
			for p := lo; p < hi; p++ {
				if words[p/64]&(1<<uint(p%64)) != 0 {
					colWords[p-lo][j/64] |= 1 << uint(j%64)
				}
			}
		}
		table := make([][]uint64, 1<<span)
		table[0] = make([]uint64, outWords)
		for mask := 1; mask < 1<<span; mask++ {
			low := mask & -mask
			prev := table[mask^low]
			cur := make([]uint64, outWords)
			col := colWords[bits.TrailingZeros64(uint64(low))]
			for k := range cur {
				cur[k] = prev[k] | col[k]
			}
			table[mask] = cur
		}
		tables[b] = table
	}

	c := NewBitMatrix(a.Rows, w)
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			words := a.RowWords(i)
			out := c.RowWords(i)
			for b := 0; b < nblocks; b++ {
				p := b * m4rBlock
				mask := int(words[p/64] >> uint(p%64) & (1<<m4rBlock - 1))
				if mask == 0 {
					continue
				}
				t := tables[b][mask]
				for k := range out {
					out[k] |= t[k]
				}
			}
		}
	})
	return c
}

// spGEMMCountsNaive is the original Gustavson product with interface-based
// sort.Slice and per-worker buffer growth.
func spGEMMCountsNaive(a, b *CSR, workers int, fn func(i int, cols []int32, counts []int32)) {
	if a.Cols != b.Rows {
		panic("matrix: SpGEMM dimension mismatch")
	}
	par.ForChunks(a.Rows, workers, func(lo, hi int) {
		acc := make([]int32, b.Cols)
		var cols []int32
		var counts []int32
		for i := lo; i < hi; i++ {
			cols = cols[:0]
			for _, k := range a.Row(i) {
				for _, j := range b.Row(int(k)) {
					if acc[j] == 0 {
						cols = append(cols, j)
					}
					acc[j]++
				}
			}
			sort.Slice(cols, func(x, y int) bool { return cols[x] < cols[y] })
			counts = counts[:0]
			for _, j := range cols {
				counts = append(counts, acc[j])
				acc[j] = 0
			}
			fn(i, cols, counts)
		}
	})
}
