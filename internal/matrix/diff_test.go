package matrix

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// Differential tests: the cache-blocked kernels must be bit-identical to
// the naive oracles in naive.go on randomized shapes, with the dimension
// pool biased toward the adversarial cases the tiling has to get right —
// sizes straddling the register block (ibTile), the cache tiles (jbTile,
// kbTile·64 bits) and the 64-bit word boundary, plus degenerate 1×N, N×1,
// empty-row and all-ones instances.

// diffDim draws a dimension from the adversarial pool.
func diffDim(rng *rand.Rand) int {
	pool := []int{
		1, 2, 3, ibTile - 1, ibTile, ibTile + 1,
		jbTile - 1, jbTile, jbTile + 1,
		63, 64, 65, 127, 128, 129,
		2*jbTile - 1, 2*jbTile + 3,
	}
	if rng.Intn(3) == 0 {
		return 1 + rng.Intn(300)
	}
	return pool[rng.Intn(len(pool))]
}

// diffMatrix builds a random bit matrix, sometimes with adversarial row
// patterns (empty rows, all-ones rows).
func diffMatrix(rng *rand.Rand, rows, cols int) *BitMatrix {
	m := NewBitMatrix(rows, cols)
	density := []float64{0.02, 0.2, 0.5, 0.95}[rng.Intn(4)]
	for i := 0; i < rows; i++ {
		switch rng.Intn(8) {
		case 0: // empty row
		case 1: // all-ones row
			for j := 0; j < cols; j++ {
				m.Set(i, j)
			}
		default:
			for j := 0; j < cols; j++ {
				if rng.Float64() < density {
					m.Set(i, j)
				}
			}
		}
	}
	return m
}

func bitMatricesEqual(a, b *BitMatrix) bool {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return false
	}
	for i := range a.words {
		if a.words[i] != b.words[i] {
			return false
		}
	}
	return true
}

// TestDiffKernels runs the full kernel lineup against the naive oracles on
// over 1000 randomized shapes (5 kernels × 220 shape draws, plus the edge
// shapes below).
func TestDiffKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(0xd1ff))
	const trials = 220
	for trial := 0; trial < trials; trial++ {
		u, v, w := diffDim(rng), diffDim(rng), diffDim(rng)
		workers := 1 + rng.Intn(4)
		a := diffMatrix(rng, u, v)
		bT := diffMatrix(rng, w, v)

		if got, want := MulBitCount(a, bT, workers), mulBitCountNaive(a, bT, 1); !got.Equal(want) {
			t.Fatalf("trial %d (%d,%d,%d w=%d): MulBitCount != naive", trial, u, v, w, workers)
		}
		if got, want := MulBitBool(a, bT, workers), mulBitBoolNaive(a, bT, 1); !bitMatricesEqual(got, want) {
			t.Fatalf("trial %d (%d,%d,%d w=%d): MulBitBool != naive", trial, u, v, w, workers)
		}
		if got, want := MulFourRussians(a, bT, workers), mulFourRussiansNaive(a, bT, 1); !bitMatricesEqual(got, want) {
			t.Fatalf("trial %d (%d,%d,%d w=%d): MulFourRussians != naive", trial, u, v, w, workers)
		}

		got := NewInt32(u, w)
		ForEachRowProduct(a, bT, workers, func(i int, counts []int32) {
			copy(got.Row(i), counts)
		})
		want := NewInt32(u, w)
		forEachRowProductNaive(a, bT, 1, func(i int, counts []int32) {
			copy(want.Row(i), counts)
		})
		if !got.Equal(want) {
			t.Fatalf("trial %d (%d,%d,%d w=%d): ForEachRowProduct != naive", trial, u, v, w, workers)
		}

		// SpGEMM over the same logical product A × Bᵀᵀ (B in standard
		// orientation = transpose of bT).
		ca := CSRFromBitMatrix(a)
		cb := CSRFromBitMatrix(bT).Transpose()
		gotS := NewInt32(u, w)
		SpGEMMCounts(ca, cb, workers, func(i int, cols, counts []int32) {
			for k, j := range cols {
				gotS.Row(i)[j] = counts[k]
			}
			for k := 1; k < len(cols); k++ {
				if cols[k-1] >= cols[k] {
					t.Fatalf("trial %d: SpGEMMCounts cols not strictly sorted", trial)
				}
			}
		})
		wantS := NewInt32(u, w)
		spGEMMCountsNaive(ca, cb, 1, func(i int, cols, counts []int32) {
			for k, j := range cols {
				wantS.Row(i)[j] = counts[k]
			}
		})
		if !gotS.Equal(wantS) {
			t.Fatalf("trial %d (%d,%d,%d w=%d): SpGEMMCounts != naive", trial, u, v, w, workers)
		}
	}
}

// TestDiffKernelsFallback re-runs a reduced differential pass with the
// assembly kernel disabled, so the pure-Go register-blocked fallback — the
// only count kernel non-amd64 builds execute — gets the same oracle
// coverage on every CI architecture.
func TestDiffKernelsFallback(t *testing.T) {
	saved := hasPOPCNT
	hasPOPCNT = false
	defer func() { hasPOPCNT = saved }()

	rng := rand.New(rand.NewSource(0xfa11))
	for trial := 0; trial < 60; trial++ {
		u, v, w := diffDim(rng), diffDim(rng), diffDim(rng)
		a := diffMatrix(rng, u, v)
		bT := diffMatrix(rng, w, v)
		if !MulBitCount(a, bT, 1+rng.Intn(3)).Equal(mulBitCountNaive(a, bT, 1)) {
			t.Fatalf("trial %d (%d,%d,%d): fallback MulBitCount != naive", trial, u, v, w)
		}
	}
}

// TestDiffKernelsEdgeShapes pins the degenerate shapes explicitly.
func TestDiffKernelsEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(0xed6e))
	shapes := [][3]int{
		{1, 1, 1}, {1, 200, 1}, {200, 1, 200}, {1, 64, 300}, {300, 64, 1},
		{ibTile, 64, jbTile}, {ibTile + 1, 65, jbTile + 1},
		{2, kbTile*64 + 7, 2}, // shared dimension spans two k-tiles
		{ibTile * 3, 63, jbTile*2 + 1},
		{5, 8, 5}, {8, 8, 8}, // at/below one Four-Russians block
	}
	for _, sh := range shapes {
		u, v, w := sh[0], sh[1], sh[2]
		a := diffMatrix(rng, u, v)
		bT := diffMatrix(rng, w, v)
		if !MulBitCount(a, bT, 2).Equal(mulBitCountNaive(a, bT, 1)) {
			t.Fatalf("shape %v: MulBitCount != naive", sh)
		}
		if !bitMatricesEqual(MulBitBool(a, bT, 2), mulBitBoolNaive(a, bT, 1)) {
			t.Fatalf("shape %v: MulBitBool != naive", sh)
		}
		if !bitMatricesEqual(MulFourRussians(a, bT, 2), mulFourRussiansNaive(a, bT, 1)) {
			t.Fatalf("shape %v: MulFourRussians != naive", sh)
		}
	}
	// Zero-row operands must not panic and must produce empty results.
	empty := NewBitMatrix(0, 64)
	other := diffMatrix(rng, 3, 64)
	if c := MulBitCount(empty, other, 2); c.Rows != 0 || c.Cols != 3 {
		t.Fatal("zero-row product has wrong shape")
	}
	if c := MulBitCount(other, empty, 2); c.Rows != 3 || c.Cols != 0 {
		t.Fatal("zero-col product has wrong shape")
	}
	ForEachRowProduct(empty, other, 2, func(int, []int32) { t.Fatal("unexpected row") })
}

// TestForEachRowProductZeroAllocs verifies the pooled scratch: after warm-up
// the streaming product allocates nothing per invocation.
func TestForEachRowProductZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := diffMatrix(rng, 37, 190)
	bT := diffMatrix(rng, 29, 190)
	var sink int32
	cb := func(i int, counts []int32) { sink += counts[0] }
	run := func() { ForEachRowProduct(a, bT, 1, cb) }
	run() // warm the pool
	if avg := testing.AllocsPerRun(100, run); avg > 0.01 {
		t.Fatalf("ForEachRowProduct allocates %.2f objects per run, want 0", avg)
	}
}

// TestSpGEMMCountsZeroAllocs does the same for the sparse kernel, covering
// both the sorted and the dense-harvest paths.
func TestSpGEMMCountsZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	a := CSRFromBitMatrix(diffMatrix(rng, 40, 80))
	b := CSRFromBitMatrix(diffMatrix(rng, 80, 120))
	var sink int32
	cb := func(i int, cols, counts []int32) {
		if len(counts) > 0 {
			sink += counts[0]
		}
	}
	run := func() { SpGEMMCounts(a, b, 1, cb) }
	run()
	if avg := testing.AllocsPerRun(100, run); avg > 0.01 {
		t.Fatalf("SpGEMMCounts allocates %.2f objects per run, want 0", avg)
	}
}

// TestKernelsConcurrentScratch hammers the pooled-scratch kernels from many
// goroutines at once — the -race CI lane turns any sharing bug into a
// failure.
func TestKernelsConcurrentScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := diffMatrix(rng, 50, 130)
	bT := diffMatrix(rng, 40, 130)
	ca := CSRFromBitMatrix(a)
	cb := CSRFromBitMatrix(bT).Transpose()
	wantCount := mulBitCountNaive(a, bT, 1)
	wantBool := mulBitBoolNaive(a, bT, 1)

	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 5; it++ {
				if !MulBitCount(a, bT, 3).Equal(wantCount) {
					errs <- fmt.Errorf("goroutine %d: MulBitCount mismatch", g)
					return
				}
				if !bitMatricesEqual(MulFourRussians(a, bT, 3), wantBool) {
					errs <- fmt.Errorf("goroutine %d: MulFourRussians mismatch", g)
					return
				}
				got := NewInt32(a.Rows, bT.Rows)
				ForEachRowProduct(a, bT, 3, func(i int, counts []int32) {
					copy(got.Row(i), counts)
				})
				if !got.Equal(wantCount) {
					errs <- fmt.Errorf("goroutine %d: ForEachRowProduct mismatch", g)
					return
				}
				SpGEMMCounts(ca, cb, 3, func(i int, cols, counts []int32) {
					for k, j := range cols {
						if wantCount.At(i, int(j)) != counts[k] {
							select {
							case errs <- fmt.Errorf("goroutine %d: SpGEMM mismatch at (%d,%d)", g, i, j):
							default:
							}
						}
					}
				})
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// Benchmarks pitting the blocked kernels against the retained oracles on an
// out-of-L2 shape; cmd/joinbench -json snapshots the headline numbers.
func benchBitPair(b *testing.B, n int) (x, y *BitMatrix) {
	rng := rand.New(rand.NewSource(14))
	x = NewBitMatrix(n, n)
	y = NewBitMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := rng.Intn(3); j < n; j += 1 + rng.Intn(5) {
			x.Set(i, j)
			y.Set(i, (j+i)%n)
		}
	}
	b.ResetTimer()
	return x, y
}

func BenchmarkMulBitCountBlocked2048(b *testing.B) {
	x, y := benchBitPair(b, 2048)
	for i := 0; i < b.N; i++ {
		_ = MulBitCount(x, y, 1)
	}
}

func BenchmarkMulBitCountNaive2048(b *testing.B) {
	x, y := benchBitPair(b, 2048)
	for i := 0; i < b.N; i++ {
		_ = mulBitCountNaive(x, y, 1)
	}
}

func BenchmarkForEachRowProduct1024(b *testing.B) {
	x, y := benchBitPair(b, 1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ForEachRowProduct(x, y, 1, func(int, []int32) {})
	}
}
