// Package bitset provides fixed-size, 64-bit packed bit vectors.
//
// Bitsets are the low-level substrate for two performance-critical parts of
// the system: the bit-packed boolean matrix product in internal/matrix (the
// pure-Go stand-in for a vectorized GEMM) and the word-level set
// intersections of the EmptyHeaded-like baseline in internal/baseline.
package bitset

import "math/bits"

const wordBits = 64

// Bitset is a fixed-capacity bit vector. The zero value is an empty bitset
// of capacity zero; use New to create one with a given capacity.
type Bitset struct {
	words []uint64
	n     int // capacity in bits
}

// New returns a bitset able to hold n bits, all initially zero.
func New(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+wordBits-1)/wordBits), n: n}
}

// FromWords wraps an existing word slice as a bitset of capacity n.
// The slice is used directly, not copied; it must have length ≥ ceil(n/64).
func FromWords(words []uint64, n int) *Bitset {
	return &Bitset{words: words, n: n}
}

// Len returns the capacity of the bitset in bits.
func (b *Bitset) Len() int { return b.n }

// Words exposes the backing word slice. Callers must not change its length.
func (b *Bitset) Words() []uint64 { return b.words }

// Set sets bit i to 1. It panics if i is out of range.
func (b *Bitset) Set(i int) {
	b.words[i/wordBits] |= 1 << uint(i%wordBits)
}

// Clear sets bit i to 0. It panics if i is out of range.
func (b *Bitset) Clear(i int) {
	b.words[i/wordBits] &^= 1 << uint(i%wordBits)
}

// Test reports whether bit i is set. It panics if i is out of range.
func (b *Bitset) Test(i int) bool {
	return b.words[i/wordBits]&(1<<uint(i%wordBits)) != 0
}

// Reset zeroes every bit, keeping capacity.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndCount returns |b ∩ o| without materializing the intersection.
// The two bitsets may have different capacities; the shorter prefix is used.
func (b *Bitset) AndCount(o *Bitset) int {
	wa, wb := b.words, o.words
	if len(wb) < len(wa) {
		wa, wb = wb, wa
	}
	c := 0
	// Unrolled by 4: this loop is the inner kernel of the boolean matrix
	// product, so the constant factor matters.
	i := 0
	for ; i+4 <= len(wa); i += 4 {
		c += bits.OnesCount64(wa[i]&wb[i]) +
			bits.OnesCount64(wa[i+1]&wb[i+1]) +
			bits.OnesCount64(wa[i+2]&wb[i+2]) +
			bits.OnesCount64(wa[i+3]&wb[i+3])
	}
	for ; i < len(wa); i++ {
		c += bits.OnesCount64(wa[i] & wb[i])
	}
	return c
}

// Intersects reports whether b and o share any set bit. It short-circuits on
// the first non-zero word, which makes it cheaper than AndCount when only a
// boolean answer is needed (the BSI and 2-path dedup paths).
func (b *Bitset) Intersects(o *Bitset) bool {
	wa, wb := b.words, o.words
	if len(wb) < len(wa) {
		wa, wb = wb, wa
	}
	for i, w := range wa {
		if w&wb[i] != 0 {
			return true
		}
	}
	return false
}

// InPlaceUnion sets b = b ∪ o. Capacities must satisfy o.Len() ≤ b.Len().
func (b *Bitset) InPlaceUnion(o *Bitset) {
	for i, w := range o.words {
		b.words[i] |= w
	}
}

// InPlaceIntersect sets b = b ∩ o.
func (b *Bitset) InPlaceIntersect(o *Bitset) {
	n := len(b.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		b.words[i] &= o.words[i]
	}
	for i := n; i < len(b.words); i++ {
		b.words[i] = 0
	}
}

// Clone returns a deep copy of b.
func (b *Bitset) Clone() *Bitset {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Bitset{words: w, n: b.n}
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitset) ForEach(fn func(i int)) {
	for wi, w := range b.words {
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			fn(wi*wordBits + tz)
			w &= w - 1
		}
	}
}

// ToSlice returns the indexes of all set bits in ascending order.
func (b *Bitset) ToSlice() []int {
	out := make([]int, 0, b.Count())
	b.ForEach(func(i int) { out = append(out, i) })
	return out
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (b *Bitset) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= b.n {
		return -1
	}
	wi := i / wordBits
	w := b.words[wi] >> uint(i%wordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(b.words); wi++ {
		if b.words[wi] != 0 {
			return wi*wordBits + bits.TrailingZeros64(b.words[wi])
		}
	}
	return -1
}

// Equal reports whether b and o contain exactly the same set bits.
// Capacities may differ; trailing bits beyond the shorter capacity must be
// zero for the sets to be equal.
func (b *Bitset) Equal(o *Bitset) bool {
	wa, wb := b.words, o.words
	if len(wa) > len(wb) {
		wa, wb = wb, wa
	}
	for i := range wa {
		if wa[i] != wb[i] {
			return false
		}
	}
	for _, w := range wb[len(wa):] {
		if w != 0 {
			return false
		}
	}
	return true
}
