package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	b := New(200)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 199} {
		if b.Test(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if got := b.Count(); got != 8 {
		t.Fatalf("Count = %d, want 8", got)
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if got := b.Count(); got != 7 {
		t.Fatalf("Count = %d, want 7", got)
	}
}

func TestReset(t *testing.T) {
	b := New(130)
	for i := 0; i < 130; i += 3 {
		b.Set(i)
	}
	b.Reset()
	if b.Count() != 0 {
		t.Fatalf("Count after Reset = %d, want 0", b.Count())
	}
	if b.Len() != 130 {
		t.Fatalf("Len after Reset = %d, want 130", b.Len())
	}
}

func TestZeroValue(t *testing.T) {
	var b Bitset
	if b.Count() != 0 || b.Len() != 0 {
		t.Fatal("zero value not empty")
	}
	if b.NextSet(0) != -1 {
		t.Fatal("NextSet on empty should be -1")
	}
}

func TestNewNegative(t *testing.T) {
	b := New(-5)
	if b.Len() != 0 {
		t.Fatalf("New(-5).Len() = %d, want 0", b.Len())
	}
}

func TestAndCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(500)
		a, b := New(n), New(n)
		ref := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				a.Set(i)
				ref[i] = true
			}
			if rng.Intn(2) == 0 {
				b.Set(i)
				if ref[i] {
					ref[i] = true
				}
			} else {
				delete(ref, i)
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			if a.Test(i) && b.Test(i) {
				want++
			}
		}
		if got := a.AndCount(b); got != want {
			t.Fatalf("trial %d: AndCount = %d, want %d", trial, got, want)
		}
		if got := a.Intersects(b); got != (want > 0) {
			t.Fatalf("trial %d: Intersects = %v, want %v", trial, got, want > 0)
		}
	}
}

func TestAndCountDifferentLengths(t *testing.T) {
	a := New(64)
	b := New(1000)
	a.Set(3)
	a.Set(63)
	b.Set(3)
	b.Set(999)
	if got := a.AndCount(b); got != 1 {
		t.Fatalf("AndCount across lengths = %d, want 1", got)
	}
	if got := b.AndCount(a); got != 1 {
		t.Fatalf("AndCount reversed = %d, want 1", got)
	}
}

func TestForEachAndToSlice(t *testing.T) {
	b := New(300)
	want := []int{0, 5, 64, 100, 255, 299}
	for _, i := range want {
		b.Set(i)
	}
	got := b.ToSlice()
	if len(got) != len(want) {
		t.Fatalf("ToSlice len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ToSlice[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestNextSet(t *testing.T) {
	b := New(256)
	b.Set(10)
	b.Set(70)
	b.Set(255)
	cases := []struct{ from, want int }{
		{0, 10}, {10, 10}, {11, 70}, {70, 70}, {71, 255}, {255, 255}, {-3, 10},
	}
	for _, c := range cases {
		if got := b.NextSet(c.from); got != c.want {
			t.Errorf("NextSet(%d) = %d, want %d", c.from, got, c.want)
		}
	}
	b2 := New(256)
	if got := b2.NextSet(0); got != -1 {
		t.Errorf("NextSet on empty = %d, want -1", got)
	}
}

func TestUnionIntersect(t *testing.T) {
	a, b := New(128), New(128)
	a.Set(1)
	a.Set(100)
	b.Set(1)
	b.Set(50)
	u := a.Clone()
	u.InPlaceUnion(b)
	for _, i := range []int{1, 50, 100} {
		if !u.Test(i) {
			t.Fatalf("union missing bit %d", i)
		}
	}
	x := a.Clone()
	x.InPlaceIntersect(b)
	if !x.Test(1) || x.Count() != 1 {
		t.Fatalf("intersection wrong: count=%d", x.Count())
	}
}

func TestIntersectShorterOther(t *testing.T) {
	a := New(256)
	a.Set(200)
	a.Set(5)
	b := New(64)
	b.Set(5)
	a.InPlaceIntersect(b)
	if !a.Test(5) || a.Count() != 1 {
		t.Fatalf("intersect with shorter: bit 200 should be cleared, count=%d", a.Count())
	}
}

func TestEqual(t *testing.T) {
	a, b := New(100), New(164)
	for _, i := range []int{3, 64, 99} {
		a.Set(i)
		b.Set(i)
	}
	if !a.Equal(b) {
		t.Fatal("equal sets reported unequal")
	}
	b.Set(150)
	if a.Equal(b) {
		t.Fatal("unequal sets reported equal (extra high bit)")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := New(64)
	a.Set(1)
	c := a.Clone()
	c.Set(2)
	if a.Test(2) {
		t.Fatal("Clone shares storage with original")
	}
}

// Property: for random bit patterns, Count(a ∩ b) computed by AndCount
// matches counting the materialized InPlaceIntersect result.
func TestQuickAndCountMatchesMaterialized(t *testing.T) {
	f := func(wa, wb []uint64) bool {
		n := len(wa)
		if len(wb) < n {
			n = len(wb)
		}
		if n == 0 {
			return true
		}
		a := FromWords(append([]uint64(nil), wa[:n]...), n*64)
		b := FromWords(append([]uint64(nil), wb[:n]...), n*64)
		cnt := a.AndCount(b)
		m := a.Clone()
		m.InPlaceIntersect(b)
		return cnt == m.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: union is commutative and contains both operands.
func TestQuickUnionLaws(t *testing.T) {
	f := func(wa, wb [4]uint64) bool {
		a := FromWords(wa[:], 256)
		b := FromWords(wb[:], 256)
		u1 := a.Clone()
		u1.InPlaceUnion(b)
		u2 := b.Clone()
		u2.InPlaceUnion(a)
		if !u1.Equal(u2) {
			return false
		}
		x := a.Clone()
		x.InPlaceIntersect(u1)
		return x.Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAndCount4096(b *testing.B) {
	x, y := New(4096), New(4096)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 4096; i++ {
		if rng.Intn(3) == 0 {
			x.Set(i)
		}
		if rng.Intn(3) == 0 {
			y.Set(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}
