package snapshot

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/relation"
)

func sampleState() *State {
	return &State{
		AppliedLSN: 42,
		Relations: []Relation{
			{Name: "R", Pairs: []relation.Pair{{X: 1, Y: 2}, {X: 1, Y: 3}, {X: 5, Y: 1}}},
			{Name: "S", Pairs: nil},
		},
		Views: []View{
			{Name: "refresh", Text: "V(x, x) :- R(x, x)"},
			{Name: "vp", Text: "VP(x, z) :- R(x, y), S(y, z)", Incremental: true,
				Entries: []CountedTuple{
					{Vals: []int32{1, 7}, Count: 2},
					{Vals: []int32{-3, 0}, Count: 9},
				}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	st := sampleState()
	got, err := Decode(Encode(st))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, st)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data := Encode(sampleState())
	for cut := 0; cut < len(data); cut++ {
		if _, err := Decode(data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := Decode(mut); err == nil {
			t.Fatalf("bit flip at %d slipped past the checksum", i)
		}
	}
}

func TestWriteLoadManifestCycle(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadManifest(dir); err != nil || ok {
		t.Fatalf("fresh dir: manifest ok=%v err=%v", ok, err)
	}
	st := sampleState()
	name, size, err := Write(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() != int64(size) {
		t.Fatalf("reported size %d, file %v (%v)", size, fi, err)
	}
	if err := WriteManifest(dir, Manifest{Snapshot: name, AppliedLSN: st.AppliedLSN}); err != nil {
		t.Fatal(err)
	}
	m, ok, err := LoadManifest(dir)
	if err != nil || !ok {
		t.Fatalf("manifest ok=%v err=%v", ok, err)
	}
	got, err := Load(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, st) {
		t.Fatal("loaded state differs from written state")
	}
	// A second checkpoint supersedes; prune removes the old image.
	st2 := sampleState()
	st2.AppliedLSN = 99
	name2, _, err := Write(dir, st2)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteManifest(dir, Manifest{Snapshot: name2, AppliedLSN: 99}); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, name2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
		t.Fatalf("old image survived prune: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, name2)); err != nil {
		t.Fatalf("new image pruned: %v", err)
	}
	// No temp files left behind.
	ents, _ := os.ReadDir(dir)
	for _, e := range ents {
		if e.Name() != name2 && e.Name() != "MANIFEST.json" {
			t.Fatalf("stray file %q", e.Name())
		}
	}
}

func TestLoadDetectsManifestMismatch(t *testing.T) {
	dir := t.TempDir()
	st := sampleState()
	name, _, err := Write(dir, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir, &Manifest{Snapshot: name, AppliedLSN: st.AppliedLSN + 1}); err == nil {
		t.Fatal("lsn mismatch loaded cleanly")
	}
}
