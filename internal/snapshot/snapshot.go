// Package snapshot writes and loads checkpoint images of the engine's
// serving state: every registered relation (in the columnar pair codec of
// package relation), every registered view definition, and — for
// incrementally-maintained views — the count-backed store itself, so
// recovery restores views without recomputing them. A snapshot pairs with a
// write-ahead-log position: the MANIFEST records (snapshot file, applied
// LSN), and recovery loads the snapshot then replays the WAL tail after
// that LSN through the normal mutation path.
//
// Snapshots are crash-safe by construction: the image is written to a temp
// file, fsynced, and renamed into place; the manifest (a one-line JSON file,
// also written via temp-file rename) is the commit point. A crash mid-write
// leaves a stale-but-consistent previous checkpoint.
package snapshot

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/faultfs"
	"repro/internal/relation"
)

// State is one consistent checkpoint image.
type State struct {
	// AppliedLSN is the WAL position the image reflects: every record with
	// LSN ≤ AppliedLSN is folded in, recovery replays strictly after it.
	AppliedLSN uint64
	// Relations are the registered relations, sorted by name.
	Relations []Relation
	// Views are the registered views, sorted by name.
	Views []View
}

// Relation is one relation image: its name and full sorted contents.
type Relation struct {
	// Name is the catalog name.
	Name string
	// Pairs is the full contents in (x, y) order.
	Pairs []relation.Pair
}

// View is one view image.
type View struct {
	// Name is the registry name.
	Name string
	// Text is the canonical query text of the definition.
	Text string
	// Incremental marks a view whose counted store is embedded; refresh-mode
	// views persist only their definition and recompute lazily after
	// recovery.
	Incremental bool
	// Entries is the count-backed store of an incremental view.
	Entries []CountedTuple
}

// CountedTuple is one live output tuple of a counted view store: its head
// values and its support count (number of join witnesses).
type CountedTuple struct {
	// Vals are the head variable values.
	Vals []int32
	// Count is the support count.
	Count int64
}

// Manifest is the checkpoint commit record, stored as MANIFEST.json.
type Manifest struct {
	// Snapshot is the image file name within the data dir.
	Snapshot string `json:"snapshot"`
	// AppliedLSN mirrors State.AppliedLSN for quick inspection.
	AppliedLSN uint64 `json:"applied_lsn"`
	// WrittenAt is the RFC3339 checkpoint time.
	WrittenAt string `json:"written_at"`
}

// manifestName is the manifest file within a data dir.
const manifestName = "MANIFEST.json"

// magic heads every snapshot image.
var magic = [8]byte{'J', 'M', 'M', 'S', 'N', 'A', 'P', '1'}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// limits bound decoded counts so corrupt images fail instead of allocating.
const (
	maxSections = 1 << 24
	maxNameLen  = 1 << 16
	maxTextLen  = 1 << 20
	maxVals     = 1 << 8
)

// FileName returns the image file name for a checkpoint at lsn.
func FileName(lsn uint64) string { return fmt.Sprintf("snap-%016x.snap", lsn) }

// Encode renders the state as one self-checking binary image.
func Encode(st *State) []byte {
	buf := append([]byte(nil), magic[:]...)
	buf = binary.AppendUvarint(buf, st.AppliedLSN)
	buf = binary.AppendUvarint(buf, uint64(len(st.Relations)))
	for _, r := range st.Relations {
		buf = appendString(buf, r.Name)
		buf = relation.AppendPairs(buf, r.Pairs)
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.Views)))
	for _, v := range st.Views {
		buf = appendString(buf, v.Name)
		buf = appendString(buf, v.Text)
		if v.Incremental {
			buf = append(buf, 1)
			buf = binary.AppendUvarint(buf, uint64(len(v.Entries)))
			for _, e := range v.Entries {
				buf = binary.AppendUvarint(buf, uint64(len(e.Vals)))
				for _, val := range e.Vals {
					buf = binary.AppendVarint(buf, int64(val))
				}
				buf = binary.AppendVarint(buf, e.Count)
			}
		} else {
			buf = append(buf, 0)
		}
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable))
}

// Decode parses and verifies one image.
func Decode(data []byte) (*State, error) {
	if len(data) < len(magic)+4 {
		return nil, fmt.Errorf("snapshot: image too short (%d bytes)", len(data))
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, fmt.Errorf("snapshot: checksum mismatch")
	}
	if string(body[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("snapshot: bad magic %q", body[:len(magic)])
	}
	b := body[len(magic):]
	st := &State{}
	var err error
	if st.AppliedLSN, b, err = decodeUvarint(b); err != nil {
		return nil, fmt.Errorf("snapshot: applied lsn: %w", err)
	}
	nRels, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("snapshot: relation count: %w", err)
	}
	if nRels > maxSections {
		return nil, fmt.Errorf("snapshot: implausible relation count %d", nRels)
	}
	for i := uint64(0); i < nRels; i++ {
		var r Relation
		if r.Name, b, err = decodeString(b, maxNameLen); err != nil {
			return nil, fmt.Errorf("snapshot: relation %d name: %w", i, err)
		}
		if r.Pairs, b, err = relation.DecodePairs(b); err != nil {
			return nil, fmt.Errorf("snapshot: relation %q: %w", r.Name, err)
		}
		st.Relations = append(st.Relations, r)
	}
	nViews, b, err := decodeUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("snapshot: view count: %w", err)
	}
	if nViews > maxSections {
		return nil, fmt.Errorf("snapshot: implausible view count %d", nViews)
	}
	for i := uint64(0); i < nViews; i++ {
		var v View
		if v.Name, b, err = decodeString(b, maxNameLen); err != nil {
			return nil, fmt.Errorf("snapshot: view %d name: %w", i, err)
		}
		if v.Text, b, err = decodeString(b, maxTextLen); err != nil {
			return nil, fmt.Errorf("snapshot: view %q text: %w", v.Name, err)
		}
		if len(b) == 0 {
			return nil, fmt.Errorf("snapshot: view %q truncated", v.Name)
		}
		v.Incremental = b[0] == 1
		b = b[1:]
		if v.Incremental {
			var nEnt uint64
			if nEnt, b, err = decodeUvarint(b); err != nil {
				return nil, fmt.Errorf("snapshot: view %q entry count: %w", v.Name, err)
			}
			if nEnt > maxSections {
				return nil, fmt.Errorf("snapshot: view %q: implausible entry count %d", v.Name, nEnt)
			}
			v.Entries = make([]CountedTuple, 0, int(min(nEnt, 1<<16)))
			for j := uint64(0); j < nEnt; j++ {
				var e CountedTuple
				var nv uint64
				if nv, b, err = decodeUvarint(b); err != nil {
					return nil, fmt.Errorf("snapshot: view %q entry %d: %w", v.Name, j, err)
				}
				if nv > maxVals {
					return nil, fmt.Errorf("snapshot: view %q entry %d: implausible arity %d", v.Name, j, nv)
				}
				e.Vals = make([]int32, nv)
				for k := range e.Vals {
					var val int64
					if val, b, err = decodeVarint(b); err != nil {
						return nil, fmt.Errorf("snapshot: view %q entry %d: %w", v.Name, j, err)
					}
					if val < -1<<31 || val > 1<<31-1 {
						return nil, fmt.Errorf("snapshot: view %q entry %d value overflow", v.Name, j)
					}
					e.Vals[k] = int32(val)
				}
				if e.Count, b, err = decodeVarint(b); err != nil {
					return nil, fmt.Errorf("snapshot: view %q entry %d count: %w", v.Name, j, err)
				}
				v.Entries = append(v.Entries, e)
			}
		}
		st.Views = append(st.Views, v)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("snapshot: %d trailing bytes", len(b))
	}
	return st, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte, max int) (string, []byte, error) {
	n, b, err := decodeUvarint(b)
	if err != nil {
		return "", b, err
	}
	if n > uint64(max) {
		return "", b, fmt.Errorf("length %d exceeds limit %d", n, max)
	}
	if uint64(len(b)) < n {
		return "", b, fmt.Errorf("truncated: want %d bytes, have %d", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

func decodeUvarint(b []byte) (uint64, []byte, error) {
	v, used := binary.Uvarint(b)
	if used <= 0 {
		return 0, b, fmt.Errorf("truncated uvarint")
	}
	return v, b[used:], nil
}

func decodeVarint(b []byte) (int64, []byte, error) {
	v, used := binary.Varint(b)
	if used <= 0 {
		return 0, b, fmt.Errorf("truncated varint")
	}
	return v, b[used:], nil
}

// Write encodes st and atomically installs it in dir as FileName(lsn):
// temp file, fsync, rename, directory fsync. It returns the installed file
// name and the encoded size. The manifest is NOT updated — WriteManifest is
// the separate commit point.
func Write(dir string, st *State) (name string, size int, err error) {
	return WriteFS(nil, dir, st)
}

// WriteFS is Write through an injectable filesystem (nil means the real
// one). A failed write never leaves a temp file behind and never touches
// the previously installed image.
func WriteFS(fsys faultfs.FS, dir string, st *State) (name string, size int, err error) {
	f := faultfs.OrOS(fsys)
	if err := f.MkdirAll(dir, 0o755); err != nil {
		return "", 0, fmt.Errorf("snapshot: %w", err)
	}
	start := time.Now()
	name = FileName(st.AppliedLSN)
	data := Encode(st)
	if err := atomicWrite(f, dir, name, data); err != nil {
		return "", 0, err
	}
	writeSeconds.ObserveSince(start)
	writtenBytes.Add(uint64(len(data)))
	return name, len(data), nil
}

// WriteManifest atomically installs the manifest, committing a checkpoint.
func WriteManifest(dir string, m Manifest) error {
	return WriteManifestFS(nil, dir, m)
}

// WriteManifestFS is WriteManifest through an injectable filesystem. On
// failure the last-good manifest is untouched (the rename either happened
// or it did not; a torn manifest is impossible).
func WriteManifestFS(fsys faultfs.FS, dir string, m Manifest) error {
	if m.WrittenAt == "" {
		m.WrittenAt = time.Now().UTC().Format(time.RFC3339)
	}
	data, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return atomicWrite(faultfs.OrOS(fsys), dir, manifestName, append(data, '\n'))
}

// LoadManifest reads the manifest; ok is false when dir holds no checkpoint
// yet (a fresh data dir).
func LoadManifest(dir string) (*Manifest, bool, error) {
	return LoadManifestFS(nil, dir)
}

// LoadManifestFS is LoadManifest through an injectable filesystem.
func LoadManifestFS(fsys faultfs.FS, dir string) (*Manifest, bool, error) {
	data, err := faultfs.OrOS(fsys).ReadFile(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("snapshot: %w", err)
	}
	m, err := ParseManifest(data)
	if err != nil {
		return nil, false, err
	}
	return m, true, nil
}

// ParseManifest parses MANIFEST.json bytes, validating the fields recovery
// depends on. It never panics on malformed input.
func ParseManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("snapshot: manifest: %w", err)
	}
	if m.Snapshot == "" {
		return nil, fmt.Errorf("snapshot: manifest: empty snapshot file name")
	}
	if m.Snapshot != filepath.Base(m.Snapshot) || strings.ContainsAny(m.Snapshot, "/\\") {
		return nil, fmt.Errorf("snapshot: manifest: snapshot name %q escapes data dir", m.Snapshot)
	}
	return &m, nil
}

// Load reads and verifies the image the manifest points at.
func Load(dir string, m *Manifest) (*State, error) {
	return LoadFS(nil, dir, m)
}

// LoadFS is Load through an injectable filesystem.
func LoadFS(fsys faultfs.FS, dir string, m *Manifest) (*State, error) {
	start := time.Now()
	data, err := faultfs.OrOS(fsys).ReadFile(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	st, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if st.AppliedLSN != m.AppliedLSN {
		return nil, fmt.Errorf("snapshot: image lsn %d disagrees with manifest %d", st.AppliedLSN, m.AppliedLSN)
	}
	loadSeconds.ObserveSince(start)
	loadedBytes.Add(uint64(len(data)))
	return st, nil
}

// Prune removes snapshot images other than keep (the just-committed one),
// plus any temp files a crashed checkpoint left behind.
func Prune(dir, keep string) error {
	return PruneFS(nil, dir, keep)
}

// PruneFS is Prune through an injectable filesystem.
func PruneFS(fsys faultfs.FS, dir, keep string) error {
	f := faultfs.OrOS(fsys)
	ents, err := f.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	for _, e := range ents {
		name := e.Name()
		if name == keep || e.IsDir() {
			continue
		}
		stale := strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".snap") ||
			strings.HasPrefix(name, ".") && strings.Contains(name, ".tmp-")
		if stale {
			if err := f.Remove(filepath.Join(dir, name)); err != nil {
				return fmt.Errorf("snapshot: prune: %w", err)
			}
		}
	}
	return nil
}

// atomicWrite installs data at dir/name via temp file + fsync + rename +
// directory fsync. On any failure the temp file is removed and the
// previously installed dir/name (if any) is untouched.
func atomicWrite(fsys faultfs.FS, dir, name string, data []byte) error {
	tmp, err := fsys.CreateTemp(dir, "."+name+".tmp-*")
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer fsys.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := fsys.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	d, err := fsys.Open(dir)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}
