package snapshot

import (
	"bytes"
	"testing"

	"repro/internal/relation"
)

// FuzzDecode throws arbitrary bytes at the snapshot codec and the manifest
// parser: recovery reads these files off a disk that just failed, so they
// must reject corruption with an error — never panic, never hang. Valid
// encodings must round-trip.
func FuzzDecode(f *testing.F) {
	// Seed with real encodings (and the manifest, via the multiplexing
	// first byte) so the fuzzer starts from structurally valid inputs.
	st := &State{
		AppliedLSN: 12,
		Relations: []Relation{
			{Name: "R", Pairs: []relation.Pair{{X: 1, Y: 2}, {X: 2, Y: 3}, {X: -1, Y: 7}}},
			{Name: "S", Pairs: []relation.Pair{{X: 4, Y: 5}}},
		},
		Views: []View{{
			Name: "V", Text: "V(x, z) :- R(x, y), S(y, z)", Incremental: true,
			Entries: []CountedTuple{{Vals: []int32{1, 5}, Count: 2}},
		}},
	}
	f.Add(append([]byte{0}, Encode(st)...))
	f.Add(append([]byte{0}, Encode(&State{})...))
	f.Add(append([]byte{1}, []byte(`{"snapshot":"snap-0000000000000007.snap","applied_lsn":7}`)...))
	f.Add(append([]byte{1}, []byte(`{"snapshot":"../escape.snap"}`)...))
	f.Add([]byte{0})
	f.Add([]byte{1})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// First byte steers the target, the rest is the payload.
		payload := data[1:]
		if data[0]&1 == 0 {
			st, err := Decode(payload)
			if err != nil {
				return
			}
			// Whatever decodes must re-encode to a decodable equal state.
			again, err := Decode(Encode(st))
			if err != nil {
				t.Fatalf("re-decode of valid state failed: %v", err)
			}
			if len(again.Relations) != len(st.Relations) || len(again.Views) != len(st.Views) {
				t.Fatalf("round-trip changed shape: %d/%d relations, %d/%d views",
					len(again.Relations), len(st.Relations), len(again.Views), len(st.Views))
			}
			return
		}
		m, err := ParseManifest(payload)
		if err != nil {
			return
		}
		// Accepted manifests must carry a bare snapshot file name — a path
		// that escapes the data dir must have been rejected.
		if m.Snapshot == "" || bytes.ContainsAny([]byte(m.Snapshot), "/\\") {
			t.Fatalf("ParseManifest accepted escaping snapshot name %q", m.Snapshot)
		}
	})
}
