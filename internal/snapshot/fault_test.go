package snapshot

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/relation"
)

// tmpLeftovers counts temp files a failed atomic write may have leaked.
func tmpLeftovers(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp-") {
			n++
		}
	}
	return n
}

func testState(lsn uint64) *State {
	return &State{
		AppliedLSN: lsn,
		Relations:  []Relation{{Name: "R", Pairs: []relation.Pair{{X: 1, Y: 2}}}},
	}
}

func TestWriteFaultLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	for _, r := range []faultfs.Rule{
		{Op: faultfs.OpWrite, PathContains: ".tmp-", Err: faultfs.ErrInjectedENOSPC},
		{Op: faultfs.OpSync, PathContains: ".tmp-", Err: faultfs.ErrInjectedEIO},
		{Op: faultfs.OpRename, Err: faultfs.ErrInjectedEIO},
	} {
		in := faultfs.NewInjector(nil)
		in.Script(r)
		if _, _, err := WriteFS(in, dir, testState(7)); err == nil {
			t.Fatalf("rule %v: write should fail", r.Op)
		}
		if n := tmpLeftovers(t, dir); n != 0 {
			t.Fatalf("rule %v: %d temp files leaked", r.Op, n)
		}
		if _, err := os.Stat(filepath.Join(dir, FileName(7))); !os.IsNotExist(err) {
			t.Fatalf("rule %v: failed write must not install the image", r.Op)
		}
	}
}

func TestManifestFaultKeepsLastGood(t *testing.T) {
	dir := t.TempDir()
	if err := WriteManifest(dir, Manifest{Snapshot: FileName(5), AppliedLSN: 5}); err != nil {
		t.Fatal(err)
	}
	in := faultfs.NewInjector(nil)
	in.Script(faultfs.Rule{Op: faultfs.OpRename, Err: faultfs.ErrInjectedEIO})
	err := WriteManifestFS(in, dir, Manifest{Snapshot: FileName(9), AppliedLSN: 9})
	if !errors.Is(err, faultfs.ErrInjectedEIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	m, ok, lerr := LoadManifest(dir)
	if lerr != nil || !ok {
		t.Fatalf("load after failed commit: %v ok=%v", lerr, ok)
	}
	if m.AppliedLSN != 5 {
		t.Fatalf("failed manifest commit clobbered last-good: lsn=%d", m.AppliedLSN)
	}
	if n := tmpLeftovers(t, dir); n != 0 {
		t.Fatalf("%d temp files leaked", n)
	}
}

func TestPruneRemovesStaleTempFiles(t *testing.T) {
	dir := t.TempDir()
	// A crash mid-atomic-write leaves a .tmp- file; Prune sweeps it.
	stale := filepath.Join(dir, "."+FileName(3)+".tmp-123")
	if err := os.WriteFile(stale, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Write(dir, testState(9)); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, FileName(9)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatal("prune left the stale temp file")
	}
	if _, err := os.Stat(filepath.Join(dir, FileName(9))); err != nil {
		t.Fatalf("prune removed the kept image: %v", err)
	}
}

func TestParseManifestRejectsEscapes(t *testing.T) {
	for _, bad := range []string{
		`{"snapshot":"","applied_lsn":1}`,
		`{"snapshot":"../etc/passwd","applied_lsn":1}`,
		`{"snapshot":"a/b.snap","applied_lsn":1}`,
		`not json`,
	} {
		if _, err := ParseManifest([]byte(bad)); err == nil {
			t.Fatalf("ParseManifest(%q) passed", bad)
		}
	}
	m, err := ParseManifest([]byte(`{"snapshot":"snap-0000000000000001.snap","applied_lsn":1}`))
	if err != nil || m.AppliedLSN != 1 {
		t.Fatalf("valid manifest rejected: %v", err)
	}
}
