package snapshot

import "repro/internal/obs"

// Snapshot I/O metrics: encode+write and read+decode wall time plus byte
// volume, so checkpoint cost (checkpoint_seconds in core) can be split into
// its snapshot-image component vs freeze/manifest/prune overhead, and
// recovery cost into image load vs WAL replay.
var (
	writeSeconds = obs.Default().Histogram(
		"joinmm_snapshot_write_seconds",
		"Snapshot image encode + atomic write wall time in seconds.", nil)
	writtenBytes = obs.Default().Counter(
		"joinmm_snapshot_written_bytes_total",
		"Snapshot image bytes written.")
	loadSeconds = obs.Default().Histogram(
		"joinmm_snapshot_load_seconds",
		"Snapshot image read + decode + verify wall time in seconds.", nil)
	loadedBytes = obs.Default().Counter(
		"joinmm_snapshot_loaded_bytes_total",
		"Snapshot image bytes read during recovery.")
)
