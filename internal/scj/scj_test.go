package scj

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/relation"
)

func bruteSCJ(r *relation.Relation) map[Pair]bool {
	ix := r.ByX()
	out := map[Pair]bool{}
	for i := 0; i < ix.NumKeys(); i++ {
		for j := 0; j < ix.NumKeys(); j++ {
			if i == j {
				continue
			}
			if relation.ContainsSorted(ix.List(j), ix.List(i)) {
				out[Pair{Sub: ix.Key(i), Sup: ix.Key(j)}] = true
			}
		}
	}
	return out
}

func randomSets(rng *rand.Rand, numSets, domain, maxSize int) *relation.Relation {
	var ps []relation.Pair
	for s := 0; s < numSets; s++ {
		size := 1 + rng.Intn(maxSize)
		for e := 0; e < size; e++ {
			ps = append(ps, relation.Pair{X: int32(s), Y: int32(rng.Intn(domain))})
		}
	}
	return relation.FromPairs("sets", ps)
}

// nestedSets guarantees a rich containment structure: chains of prefixes.
func nestedSets(rng *rand.Rand, chains, depth, domain int) *relation.Relation {
	var ps []relation.Pair
	id := int32(0)
	for c := 0; c < chains; c++ {
		base := make([]int32, 0, depth)
		for d := 0; d < depth; d++ {
			base = append(base, int32(rng.Intn(domain)))
			for _, e := range base {
				ps = append(ps, relation.Pair{X: id, Y: e})
			}
			id++
		}
	}
	return relation.FromPairs("nested", ps)
}

func checkSCJ(t *testing.T, got []Pair, want map[Pair]bool, label string) {
	t.Helper()
	seen := map[Pair]bool{}
	for _, p := range got {
		if seen[p] {
			t.Fatalf("%s: duplicate pair %+v", label, p)
		}
		seen[p] = true
		if !want[p] {
			t.Fatalf("%s: spurious containment %+v", label, p)
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(seen), len(want))
	}
}

func TestAllAlgorithmsSmall(t *testing.T) {
	r := relation.FromPairs("toy", []relation.Pair{
		{X: 1, Y: 10}, {X: 1, Y: 11},
		{X: 2, Y: 10}, {X: 2, Y: 11}, {X: 2, Y: 12},
		{X: 3, Y: 10},
		{X: 4, Y: 20},
	})
	want := bruteSCJ(r) // 1⊆2, 3⊆1, 3⊆2
	if len(want) != 3 {
		t.Fatalf("oracle has %d pairs, want 3", len(want))
	}
	checkSCJ(t, PRETTI(r, Options{}), want, "PRETTI")
	checkSCJ(t, LimitPlus(r, Options{}), want, "LIMIT+")
	checkSCJ(t, PIEJoin(r, Options{}), want, "PIEJoin")
	checkSCJ(t, MMJoin(r, Options{}), want, "MMJoin")
}

func TestRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		r := randomSets(rng, 40+rng.Intn(40), 8+rng.Intn(10), 1+rng.Intn(6))
		want := bruteSCJ(r)
		checkSCJ(t, PRETTI(r, Options{}), want, "PRETTI")
		checkSCJ(t, LimitPlus(r, Options{}), want, "LIMIT+")
		checkSCJ(t, LimitPlus(r, Options{Limit: 1}), want, "LIMIT+1")
		checkSCJ(t, LimitPlus(r, Options{Limit: 100}), want, "LIMIT+100")
		checkSCJ(t, PIEJoin(r, Options{}), want, "PIEJoin")
		checkSCJ(t, MMJoin(r, Options{}), want, "MMJoin")
	}
}

func TestNestedChains(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	r := nestedSets(rng, 6, 5, 40)
	want := bruteSCJ(r)
	if len(want) == 0 {
		t.Fatal("nested instance should have containments")
	}
	checkSCJ(t, PRETTI(r, Options{}), want, "PRETTI nested")
	checkSCJ(t, PIEJoin(r, Options{}), want, "PIEJoin nested")
	checkSCJ(t, MMJoin(r, Options{}), want, "MMJoin nested")
	checkSCJ(t, LimitPlus(r, Options{}), want, "LIMIT+ nested")
}

func TestEqualSets(t *testing.T) {
	// Equal sets contain each other: both directions must appear.
	r := relation.FromPairs("eq", []relation.Pair{
		{X: 1, Y: 5}, {X: 1, Y: 6},
		{X: 2, Y: 5}, {X: 2, Y: 6},
	})
	want := bruteSCJ(r)
	if len(want) != 2 {
		t.Fatalf("equal sets oracle = %d pairs, want 2", len(want))
	}
	checkSCJ(t, PRETTI(r, Options{}), want, "PRETTI eq")
	checkSCJ(t, LimitPlus(r, Options{}), want, "LIMIT+ eq")
	checkSCJ(t, PIEJoin(r, Options{}), want, "PIEJoin eq")
	checkSCJ(t, MMJoin(r, Options{}), want, "MMJoin eq")
}

func TestPIEJoinParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	r := randomSets(rng, 150, 12, 5)
	want := bruteSCJ(r)
	for _, w := range []int{1, 2, 8} {
		checkSCJ(t, PIEJoin(r, Options{Workers: w}), want, "PIEJoin parallel")
	}
}

func TestMMJoinParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	r := randomSets(rng, 150, 12, 5)
	want := bruteSCJ(r)
	for _, w := range []int{2, 6} {
		checkSCJ(t, MMJoin(r, Options{Workers: w}), want, "MMJoin parallel")
	}
}

func TestOnDatasetShapes(t *testing.T) {
	for _, name := range []string{"DBLP", "Jokes"} {
		r, _ := dataset.ByName(name, 0.02)
		want := bruteSCJ(r)
		checkSCJ(t, PRETTI(r, Options{}), want, name+"/PRETTI")
		checkSCJ(t, LimitPlus(r, Options{}), want, name+"/LIMIT+")
		checkSCJ(t, PIEJoin(r, Options{}), want, name+"/PIEJoin")
		checkSCJ(t, MMJoin(r, Options{}), want, name+"/MMJoin")
	}
}

func TestEmpty(t *testing.T) {
	empty := relation.FromPairs("E", nil)
	for _, fn := range []func(*relation.Relation, Options) []Pair{PRETTI, LimitPlus, PIEJoin, MMJoin} {
		if got := fn(empty, Options{}); len(got) != 0 {
			t.Fatalf("empty SCJ = %v", got)
		}
	}
}

func TestFamilyRankOrder(t *testing.T) {
	r := relation.FromPairs("f", []relation.Pair{
		{X: 1, Y: 100}, {X: 2, Y: 100}, {X: 3, Y: 100}, // 100 frequent
		{X: 1, Y: 200}, // 200 rare
	})
	f := newFamily(r)
	// Set 1 = {100, 200}: rare 200 must come first in rank order.
	pos := -1
	for i, id := range f.ids {
		if id == 1 {
			pos = i
		}
	}
	set := f.sets[pos]
	if len(set) != 2 || set[0] >= set[1] {
		t.Fatalf("rank sequence %v not ascending", set)
	}
	// Rank 0 must be the rarest element (200, frequency 1).
	if set[0] != 0 {
		t.Fatalf("rarest element should get rank 0, set = %v", set)
	}
	// Inverted lists must be sorted by position.
	for rk, list := range f.inv {
		for i := 1; i < len(list); i++ {
			if list[i-1] >= list[i] {
				t.Fatalf("inv[%d] = %v not strictly sorted", rk, list)
			}
		}
	}
}

// Property: all four algorithms agree with brute force.
func TestQuickAllAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomSets(rng, 5+rng.Intn(60), 4+rng.Intn(10), 1+rng.Intn(5))
		want := bruteSCJ(r)
		for _, fn := range []func(*relation.Relation, Options) []Pair{PRETTI, LimitPlus, PIEJoin, MMJoin} {
			got := fn(r, Options{Workers: 2})
			if len(got) != len(want) {
				return false
			}
			for _, p := range got {
				if !want[p] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
