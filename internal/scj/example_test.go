package scj_test

import (
	"fmt"
	"sort"

	"repro/internal/relation"
	"repro/internal/scj"
)

// Which keyword sets are contained in which: the MMJoin route filters the
// counting join-project with |a ∩ b| = |a|.
func ExampleMMJoin() {
	r := relation.FromPairs("tags", []relation.Pair{
		{X: 1, Y: 7},
		{X: 2, Y: 7}, {X: 2, Y: 8},
		{X: 3, Y: 7}, {X: 3, Y: 8}, {X: 3, Y: 9},
	})
	pairs := scj.MMJoin(r, scj.Options{Workers: 1})
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Sub != pairs[j].Sub {
			return pairs[i].Sub < pairs[j].Sub
		}
		return pairs[i].Sup < pairs[j].Sup
	})
	for _, p := range pairs {
		fmt.Printf("%d ⊆ %d\n", p.Sub, p.Sup)
	}
	// Output:
	// 1 ⊆ 2
	// 1 ⊆ 3
	// 2 ⊆ 3
}

// The trie-based algorithms produce the same result.
func ExamplePRETTI() {
	r := relation.FromPairs("tags", []relation.Pair{
		{X: 1, Y: 7},
		{X: 2, Y: 7}, {X: 2, Y: 8},
	})
	for _, p := range scj.PRETTI(r, scj.Options{}) {
		fmt.Printf("%d ⊆ %d\n", p.Sub, p.Sup)
	}
	// Output:
	// 1 ⊆ 2
}
