// Package scj implements set containment joins (Sections 4 and 7.4): find
// all ordered pairs of sets (a, b), a ≠ b, with set(a) ⊆ set(b).
//
// Four algorithms, matching the paper's experimental lineup:
//
//   - PRETTI — prefix tree over the sets under the infrequent-element-first
//     global order, with inverted-list intersections shared along common
//     prefixes: a set is contained in exactly the intersection of its
//     elements' inverted lists.
//   - LimitPlus (LIMIT+) — intersect only the `limit` least frequent
//     elements' lists (the blocking filter), then verify each candidate
//     with a merge-based containment check.
//   - PIEJoin — trie-based join: a trie over the container sets is searched
//     recursively for each probe set, skipping container elements that the
//     probe does not constrain; parallelized by partitioning the probes.
//   - MMJoin — the paper's approach: the counting join-project is a
//     superset of the containment join, and (a ⊆ b) ⟺ |a ∩ b| = |a|, so
//     filtering the 2-path counts yields the result directly.
//
// All joins are self joins over a relation R(set, element), as in the
// paper's experiments.
package scj

import (
	"cmp"
	"slices"

	"repro/internal/joinproject"
	"repro/internal/par"
	"repro/internal/relation"
)

// Pair is one containment: set Sub is contained in set Sup.
type Pair struct {
	Sub, Sup int32
}

// Options configures an SCJ evaluation.
type Options struct {
	// Workers bounds parallelism (≤ 0: all cores).
	Workers int
	// Limit is the number of inverted lists LIMIT+ intersects before
	// verification; the paper's experiments use 2.
	Limit int
	// Delta1/Delta2 override MMJoin's thresholds (0: automatic).
	Delta1, Delta2 int
}

// family indexes the sets with elements re-ranked by ascending frequency
// (the "infrequent sort order" used by all SCJ algorithms in Section 7.4).
type family struct {
	ids   []int32
	sets  [][]int32 // element ranks, ascending per set
	sizes []int
	inv   [][]int32 // rank → sorted set positions containing it
}

func newFamily(r *relation.Relation) *family {
	ix, iy := r.ByX(), r.ByY()
	// Rank elements by ascending frequency, ties by value.
	type ef struct {
		e    int32
		freq int
	}
	els := make([]ef, iy.NumKeys())
	for i := 0; i < iy.NumKeys(); i++ {
		els[i] = ef{iy.Key(i), iy.Degree(i)}
	}
	slices.SortFunc(els, func(a, b ef) int {
		if a.freq != b.freq {
			return cmp.Compare(a.freq, b.freq)
		}
		return cmp.Compare(a.e, b.e)
	})
	rank := make(map[int32]int32, len(els))
	for i, x := range els {
		rank[x.e] = int32(i)
	}
	f := &family{
		ids:   make([]int32, ix.NumKeys()),
		sets:  make([][]int32, ix.NumKeys()),
		sizes: make([]int, ix.NumKeys()),
		inv:   make([][]int32, len(els)),
	}
	for i := 0; i < ix.NumKeys(); i++ {
		f.ids[i] = ix.Key(i)
		list := ix.List(i)
		rs := make([]int32, len(list))
		for j, e := range list {
			rs[j] = rank[e]
		}
		slices.Sort(rs)
		f.sets[i] = rs
		f.sizes[i] = len(rs)
		for _, rk := range rs {
			f.inv[rk] = append(f.inv[rk], int32(i))
		}
	}
	return f
}

// PRETTI evaluates the containment join with prefix-tree-shared inverted
// list intersections.
func PRETTI(r *relation.Relation, opt Options) []Pair {
	f := newFamily(r)
	if len(f.ids) == 0 {
		return nil
	}
	// Prefix tree over rank sequences.
	root := &trieNode{rank: -1}
	for i := range f.sets {
		root.insert(f.sets[i], int32(i))
	}
	var out []Pair
	// DFS: the candidate list at a node is the intersection of the inverted
	// lists along its path; shared across every set below the node.
	var dfs func(n *trieNode, cands []int32)
	dfs = func(n *trieNode, cands []int32) {
		if n.rank >= 0 {
			if cands == nil {
				cands = f.inv[n.rank]
			} else {
				cands = relation.IntersectSorted(nil, cands, f.inv[n.rank])
			}
			if len(cands) == 0 {
				return
			}
		}
		for _, sub := range n.terminals {
			for _, sup := range cands {
				if sup != sub {
					out = append(out, Pair{Sub: f.ids[sub], Sup: f.ids[sup]})
				}
			}
		}
		for _, ch := range n.children {
			dfs(ch, cands)
		}
	}
	dfs(root, nil)
	return out
}

type trieNode struct {
	rank      int32
	children  []*trieNode
	childIdx  map[int32]int
	terminals []int32
}

func (n *trieNode) insert(seq []int32, pos int32) {
	node := n
	for _, rk := range seq {
		if node.childIdx == nil {
			node.childIdx = make(map[int32]int)
		}
		i, ok := node.childIdx[rk]
		if !ok {
			i = len(node.children)
			node.childIdx[rk] = i
			node.children = append(node.children, &trieNode{rank: rk})
		}
		node = node.children[i]
	}
	node.terminals = append(node.terminals, pos)
}

// LimitPlus evaluates the containment join with the LIMIT+ strategy:
// intersect the `limit` rarest elements' inverted lists as a blocking
// filter, then verify candidates by merge-based containment.
func LimitPlus(r *relation.Relation, opt Options) []Pair {
	limit := opt.Limit
	if limit < 1 {
		limit = 2
	}
	f := newFamily(r)
	var out []Pair
	for i := range f.sets {
		set := f.sets[i]
		if len(set) == 0 {
			continue
		}
		k := limit
		if k > len(set) {
			k = len(set)
		}
		// The sets are rank-sorted ascending = rarest first, so the filter
		// intersects the first k lists.
		cands := f.inv[set[0]]
		for j := 1; j < k; j++ {
			cands = relation.IntersectSorted(nil, cands, f.inv[set[j]])
			if len(cands) == 0 {
				break
			}
		}
		needVerify := k < len(set)
		for _, sup := range cands {
			if sup == int32(i) {
				continue
			}
			if needVerify && !relation.ContainsSorted(f.sets[sup], set) {
				continue
			}
			out = append(out, Pair{Sub: f.ids[i], Sup: f.ids[sup]})
		}
	}
	return out
}

// PIEJoin evaluates the containment join by searching a container-side trie
// for each probe set: at each trie node the search either matches the
// probe's next rank or skips a container element smaller than it. Probes
// are partitioned across workers (the paper's PIEJoin parallelizes by
// partitioning the search space; probe partitioning is the coordination-
// free equivalent).
func PIEJoin(r *relation.Relation, opt Options) []Pair {
	f := newFamily(r)
	if len(f.ids) == 0 {
		return nil
	}
	root := &trieNode{rank: -1}
	for i := range f.sets {
		root.insert(f.sets[i], int32(i))
	}
	// Euler tour so that "all terminals below node" is a slice range.
	tour, span := eulerTour(root)

	ranges := par.Ranges(len(f.sets), opt.Workers)
	results := make([][]Pair, len(ranges))
	par.ForChunks(len(f.sets), opt.Workers, func(lo, hi int) {
		slot := 0
		for i, rg := range ranges {
			if rg[0] == lo {
				slot = i
			}
		}
		var local []Pair
		for i := lo; i < hi; i++ {
			sub := int32(i)
			var search func(n *trieNode, rest []int32)
			search = func(n *trieNode, rest []int32) {
				if len(rest) == 0 {
					sp := span[n]
					for _, sup := range tour[sp[0]:sp[1]] {
						if sup != sub {
							local = append(local, Pair{Sub: f.ids[sub], Sup: f.ids[sup]})
						}
					}
					return
				}
				for _, ch := range n.children {
					switch {
					case ch.rank == rest[0]:
						search(ch, rest[1:])
					case ch.rank < rest[0]:
						// Container has an extra (more frequent... lower
						// rank) element; skip it and keep matching.
						search(ch, rest)
					}
					// ch.rank > rest[0]: rank-sorted sequences can never
					// produce rest[0] deeper in this subtree.
				}
			}
			search(root, f.sets[i])
		}
		results[slot] = local
	})
	var out []Pair
	for _, part := range results {
		out = append(out, part...)
	}
	return out
}

// eulerTour flattens the trie's terminals in DFS order and records each
// node's [start, end) range.
func eulerTour(root *trieNode) (tour []int32, span map[*trieNode][2]int) {
	span = make(map[*trieNode][2]int)
	var dfs func(n *trieNode)
	dfs = func(n *trieNode) {
		start := len(tour)
		tour = append(tour, n.terminals...)
		for _, ch := range n.children {
			dfs(ch)
		}
		span[n] = [2]int{start, len(tour)}
	}
	dfs(root)
	return tour, span
}

// MMJoin evaluates the containment join through the counting join-project:
// (a ⊆ b) ⟺ |a ∩ b| = |a|. The 2-path counts of Algorithm 1 deliver every
// intersecting pair with its exact overlap; one linear filter finishes the
// job (Section 4, "SCJ").
func MMJoin(r *relation.Relation, opt Options) []Pair {
	sizes := make(map[int32]int32, r.NumX())
	ix := r.ByX()
	for i := 0; i < ix.NumKeys(); i++ {
		sizes[ix.Key(i)] = int32(ix.Degree(i))
	}
	counts := joinproject.TwoPathMMCounts(r, r, joinproject.Options{
		Delta1: opt.Delta1, Delta2: opt.Delta2, Workers: opt.Workers,
	})
	var out []Pair
	for _, pc := range counts {
		if pc.X != pc.Z && pc.Count == sizes[pc.X] {
			out = append(out, Pair{Sub: pc.X, Sup: pc.Z})
		}
	}
	return out
}
