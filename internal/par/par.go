// Package par provides the coordination-free data parallelism used across
// the engine. Section 6 of the paper stresses that both the matrix
// multiplication and the light-part join parallelize by partitioning the
// data with no interaction between tasks; these helpers implement exactly
// that pattern: static block partitioning over goroutines.
package par

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested degree of parallelism: values < 1 mean
// "use all available cores".
func Workers(requested int) int {
	if requested < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}

// ForChunks splits [0, n) into at most workers contiguous chunks and runs fn
// on each chunk in its own goroutine. fn receives [lo, hi). It blocks until
// all chunks complete.
//
// A panic in a worker goroutine is captured and re-raised in the calling
// goroutine after the remaining workers finish, so callers' deferred
// recover handlers (per-query panic isolation in the server) see it instead
// of the process dying. When several workers panic, the first one observed
// wins.
func ForChunks(n, workers int, fn func(lo, hi int)) {
	workers = Workers(workers)
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var (
		wg       sync.WaitGroup
		panicked atomic.Pointer[workerPanic]
	)
	chunk := (n + workers - 1) / workers
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicked.CompareAndSwap(nil, &workerPanic{val: v, stack: debug.Stack()})
				}
			}()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p)
	}
}

// workerPanic carries a worker goroutine's panic value and stack across to
// the calling goroutine.
type workerPanic struct {
	val   any
	stack []byte
}

// String renders the original panic value and the worker's stack, which is
// otherwise lost when the panic is re-raised on the caller's goroutine.
func (p *workerPanic) String() string {
	return fmt.Sprintf("par: worker panic: %v\n%s", p.val, p.stack)
}

// For runs fn(i) for every i in [0, n) across workers goroutines using
// static block partitioning.
func For(n, workers int, fn func(i int)) {
	ForChunks(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Ranges returns the contiguous [lo, hi) chunks ForChunks would use, in
// order. Callers that need per-chunk result slots (for deterministic
// concatenation) partition with this and spawn their own goroutines.
func Ranges(n, workers int) [][2]int {
	workers = Workers(workers)
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}
