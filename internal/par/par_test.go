package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if Workers(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(0) should be GOMAXPROCS")
	}
	if Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("Workers(-1) should be GOMAXPROCS")
	}
	if Workers(3) != 3 {
		t.Fatal("Workers(3) should be 3")
	}
}

func TestForCoversAllIndexes(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 100} {
		n := 1000
		seen := make([]int32, n)
		For(n, workers, func(i int) { atomic.AddInt32(&seen[i], 1) })
		for i, v := range seen {
			if v != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

func TestForChunksDisjointCover(t *testing.T) {
	n := 537
	var total int64
	ForChunks(n, 5, func(lo, hi int) {
		if lo >= hi {
			t.Errorf("empty chunk [%d,%d)", lo, hi)
		}
		atomic.AddInt64(&total, int64(hi-lo))
	})
	if total != int64(n) {
		t.Fatalf("chunks cover %d elements, want %d", total, n)
	}
}

func TestForZeroAndNegative(t *testing.T) {
	ran := false
	ForChunks(0, 4, func(lo, hi int) { ran = true })
	ForChunks(-5, 4, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("fn ran for empty range")
	}
}

func TestForSingleElement(t *testing.T) {
	count := 0
	For(1, 8, func(i int) { count++ })
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
}

func TestRanges(t *testing.T) {
	cases := []struct {
		n, workers int
		wantChunks int
	}{
		{0, 4, 0},
		{-1, 4, 0},
		{1, 4, 1},
		{10, 1, 1},
		{10, 3, 3},
		{10, 100, 10},
	}
	for _, c := range cases {
		got := Ranges(c.n, c.workers)
		if len(got) != c.wantChunks {
			t.Errorf("Ranges(%d,%d) = %d chunks, want %d", c.n, c.workers, len(got), c.wantChunks)
		}
		// Chunks must tile [0, n) exactly, in order.
		next := 0
		for _, rg := range got {
			if rg[0] != next || rg[1] <= rg[0] {
				t.Fatalf("Ranges(%d,%d): bad chunk %v after %d", c.n, c.workers, rg, next)
			}
			next = rg[1]
		}
		if c.n > 0 && next != c.n {
			t.Fatalf("Ranges(%d,%d) covers %d, want %d", c.n, c.workers, next, c.n)
		}
	}
}

func TestRangesMatchForChunks(t *testing.T) {
	for _, n := range []int{1, 7, 100, 1001} {
		for _, w := range []int{1, 2, 5, 24} {
			want := Ranges(n, w)
			var got [][2]int
			var mu sync.Mutex
			ForChunks(n, w, func(lo, hi int) {
				mu.Lock()
				got = append(got, [2]int{lo, hi})
				mu.Unlock()
			})
			if len(got) != len(want) {
				t.Fatalf("n=%d w=%d: ForChunks used %d chunks, Ranges says %d", n, w, len(got), len(want))
			}
		}
	}
}

func TestForChunksPanicPropagates(t *testing.T) {
	defer func() {
		v := recover()
		if v == nil {
			t.Fatal("worker panic did not propagate to caller")
		}
		wp, ok := v.(*workerPanic)
		if !ok {
			t.Fatalf("recovered %T, want *workerPanic", v)
		}
		if wp.val != "boom" {
			t.Fatalf("panic value = %v, want boom", wp.val)
		}
		if len(wp.stack) == 0 {
			t.Fatal("worker stack missing")
		}
	}()
	ForChunks(100, 4, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
}
