package wal

import "repro/internal/obs"

// Durability latency metrics, instrumented at the append path itself so a
// slow or failing disk is visible live. Fsync latency is only observed under
// FsyncAlways (the policy where it sits on the commit path); batched flushes
// are timed as part of the flush loop's sync.
var (
	appendSeconds = obs.Default().Histogram(
		"joinmm_wal_append_seconds",
		"WAL append latency (frame write + policy fsync) in seconds.", nil)
	fsyncSeconds = obs.Default().Histogram(
		"joinmm_wal_fsync_seconds",
		"WAL fsync latency in seconds.", nil)
	appendErrors = obs.Default().Counter(
		"joinmm_wal_append_errors_total",
		"WAL appends that failed (write or fsync), before retry.")
)
