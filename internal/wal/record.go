package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/relation"
)

// Record kinds. The kind byte leads every record payload.
const (
	// KindMutate is a coalesced tuple-level delta to one relation.
	KindMutate byte = 1
	// KindRegister is a wholesale relation (re)registration carrying the full
	// post-registration contents in the columnar pair codec.
	KindRegister byte = 2
	// KindDrop removes one relation.
	KindDrop byte = 3
	// KindRegisterView registers a named materialized view by query text.
	KindRegisterView byte = 4
	// KindDropView removes one view.
	KindDropView byte = 5
	// KindRegisterFile registers a relation loaded from a file, logging the
	// file's path and SHA-256 instead of the full tuple image — so a bulk
	// load costs ~100 log bytes instead of re-serializing the whole relation,
	// and shipped replication segments stay small. Replay re-reads the file
	// and fails loudly when it is missing or its hash no longer matches: a
	// changed source file cannot silently resurrect different data. (A
	// checkpoint folds the relation into the snapshot, after which the file
	// is no longer needed.)
	KindRegisterFile byte = 6
)

// Record is one logged catalog or view mutation. Exactly the fields for its
// kind are set: Mutate uses Name/Added/Removed, Register uses Name/Pairs,
// Drop and DropView use Name, RegisterView uses Name/Query, RegisterFile
// uses Name/Path/Hash/Tuples.
type Record struct {
	// Kind is one of the Kind* constants.
	Kind byte
	// Name is the relation or view the record addresses.
	Name string
	// Added and Removed carry the effective tuple delta of a Mutate record.
	Added, Removed []relation.Pair
	// Pairs is the full contents of a Register record.
	Pairs []relation.Pair
	// Query is the canonical query text of a RegisterView record.
	Query string
	// Path, Hash and Tuples describe the source file of a RegisterFile
	// record: its absolute path, the SHA-256 of its bytes, and the tuple
	// count the load produced (a cheap replay cross-check).
	Path   string
	Hash   []byte
	Tuples uint64
}

// crcTable is the Castagnoli polynomial, hardware-accelerated on amd64.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// maxNameLen bounds relation/view names (matches the relation file format).
const maxNameLen = 1 << 16

// maxQueryLen bounds the logged query text of a view registration.
const maxQueryLen = 1 << 20

// maxPathLen bounds the logged source path of a file registration.
const maxPathLen = 1 << 16

// hashLen is the SHA-256 digest size a RegisterFile record carries.
const hashLen = 32

// AppendRecord appends the framed encoding of r to dst and returns it:
// uvarint payload length, the payload, and a CRC32-C of the payload. The
// payload is the kind byte followed by kind-specific fields, all
// length-prefixed with uvarints; tuple columns use the columnar codec of
// package relation for full images and zigzag varints for deltas.
func AppendRecord(dst []byte, r *Record) ([]byte, error) {
	payload, err := appendPayload(nil, r)
	if err != nil {
		return dst, err
	}
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, crcTable)), nil
}

// appendPayload appends the unframed record payload.
func appendPayload(dst []byte, r *Record) ([]byte, error) {
	if len(r.Name) == 0 || len(r.Name) > maxNameLen {
		return dst, fmt.Errorf("wal: record name length %d out of range", len(r.Name))
	}
	dst = append(dst, r.Kind)
	dst = appendString(dst, r.Name)
	switch r.Kind {
	case KindMutate:
		dst = appendDelta(dst, r.Added)
		dst = appendDelta(dst, r.Removed)
	case KindRegister:
		dst = relation.AppendPairs(dst, r.Pairs)
	case KindDrop, KindDropView:
		// Name only.
	case KindRegisterView:
		if len(r.Query) > maxQueryLen {
			return dst, fmt.Errorf("wal: view query length %d out of range", len(r.Query))
		}
		dst = appendString(dst, r.Query)
	case KindRegisterFile:
		if len(r.Path) == 0 || len(r.Path) > maxPathLen {
			return dst, fmt.Errorf("wal: file path length %d out of range", len(r.Path))
		}
		if len(r.Hash) != hashLen {
			return dst, fmt.Errorf("wal: file hash length %d, want %d", len(r.Hash), hashLen)
		}
		dst = appendString(dst, r.Path)
		dst = append(dst, r.Hash...)
		dst = binary.AppendUvarint(dst, r.Tuples)
	default:
		return dst, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	return dst, nil
}

// DecodeRecord decodes one unframed record payload. It errors (never panics)
// on truncated, corrupt or trailing bytes.
func DecodeRecord(payload []byte) (*Record, error) {
	if len(payload) == 0 {
		return nil, fmt.Errorf("wal: empty record payload")
	}
	r := &Record{Kind: payload[0]}
	rest := payload[1:]
	var err error
	if r.Name, rest, err = decodeString(rest, maxNameLen); err != nil {
		return nil, fmt.Errorf("wal: record name: %w", err)
	}
	if r.Name == "" {
		return nil, fmt.Errorf("wal: empty record name")
	}
	switch r.Kind {
	case KindMutate:
		if r.Added, rest, err = decodeDelta(rest); err != nil {
			return nil, fmt.Errorf("wal: added delta: %w", err)
		}
		if r.Removed, rest, err = decodeDelta(rest); err != nil {
			return nil, fmt.Errorf("wal: removed delta: %w", err)
		}
	case KindRegister:
		if r.Pairs, rest, err = relation.DecodePairs(rest); err != nil {
			return nil, fmt.Errorf("wal: register image: %w", err)
		}
	case KindDrop, KindDropView:
		// Name only.
	case KindRegisterView:
		if r.Query, rest, err = decodeString(rest, maxQueryLen); err != nil {
			return nil, fmt.Errorf("wal: view query: %w", err)
		}
	case KindRegisterFile:
		if r.Path, rest, err = decodeString(rest, maxPathLen); err != nil {
			return nil, fmt.Errorf("wal: file path: %w", err)
		}
		if r.Path == "" {
			return nil, fmt.Errorf("wal: empty file path")
		}
		if len(rest) < hashLen {
			return nil, fmt.Errorf("wal: truncated file hash: want %d bytes, have %d", hashLen, len(rest))
		}
		r.Hash, rest = append([]byte(nil), rest[:hashLen]...), rest[hashLen:]
		n, used := binary.Uvarint(rest)
		if used <= 0 {
			return nil, fmt.Errorf("wal: truncated tuple count")
		}
		r.Tuples, rest = n, rest[used:]
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wal: %d trailing bytes after record", len(rest))
	}
	return r, nil
}

// appendString appends a uvarint-length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeString consumes a uvarint-length-prefixed string of at most max
// bytes.
func decodeString(b []byte, max int) (string, []byte, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return "", b, fmt.Errorf("truncated length")
	}
	b = b[used:]
	if n > uint64(max) {
		return "", b, fmt.Errorf("length %d exceeds limit %d", n, max)
	}
	if uint64(len(b)) < n {
		return "", b, fmt.Errorf("truncated body: want %d bytes, have %d", n, len(b))
	}
	return string(b[:n]), b[n:], nil
}

// maxDeltaPairs bounds one logged delta; a mutation batch beyond it is
// implausible and treated as corruption.
const maxDeltaPairs = 1 << 28

// appendDelta appends a count-prefixed unsorted pair list as zigzag varints.
func appendDelta(dst []byte, ps []relation.Pair) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ps)))
	for _, p := range ps {
		dst = binary.AppendVarint(dst, int64(p.X))
		dst = binary.AppendVarint(dst, int64(p.Y))
	}
	return dst
}

// decodeDelta consumes a count-prefixed zigzag-varint pair list.
func decodeDelta(b []byte) ([]relation.Pair, []byte, error) {
	n, used := binary.Uvarint(b)
	if used <= 0 {
		return nil, b, fmt.Errorf("truncated pair count")
	}
	b = b[used:]
	if n > maxDeltaPairs {
		return nil, b, fmt.Errorf("implausible pair count %d", n)
	}
	if n == 0 {
		return nil, b, nil
	}
	ps := make([]relation.Pair, 0, int(min(n, 1<<16)))
	for i := uint64(0); i < n; i++ {
		x, used := binary.Varint(b)
		if used <= 0 {
			return nil, b, fmt.Errorf("truncated pair %d of %d", i, n)
		}
		b = b[used:]
		y, used := binary.Varint(b)
		if used <= 0 {
			return nil, b, fmt.Errorf("truncated pair %d of %d", i, n)
		}
		b = b[used:]
		if x < -1<<31 || x > 1<<31-1 || y < -1<<31 || y > 1<<31-1 {
			return nil, b, fmt.Errorf("pair %d out of int32 range", i)
		}
		ps = append(ps, relation.Pair{X: int32(x), Y: int32(y)})
	}
	return ps, b, nil
}
