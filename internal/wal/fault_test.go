package wal

import (
	"errors"
	"testing"

	"repro/internal/faultfs"
	"repro/internal/relation"
)

// rec builds a small mutate record for fault tests.
func rec(n int) *Record {
	return &Record{Kind: KindMutate, Name: "R", Added: []relation.Pair{{X: int32(n), Y: int32(n + 1)}}}
}

// replayCount reopens dir on the real fs and counts replayable records.
func replayCount(t *testing.T, dir string) int {
	t.Helper()
	n := 0
	if err := Replay(dir, 0, func(uint64, *Record) error { n++; return nil }); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return n
}

func TestAppendWriteFaultRepairsInPlace(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	w, err := Open(dir, Options{Policy: FsyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedENOSPC})
	if _, err := w.Append(rec(2)); !errors.Is(err, faultfs.ErrInjectedENOSPC) {
		t.Fatalf("faulted append: want ENOSPC, got %v", err)
	}
	if w.Damaged() {
		t.Fatal("clean repair should not leave log damaged")
	}
	// The log keeps working and the rejected record never replays.
	if _, err := w.Append(rec(3)); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var seen []int32
	if err := Replay(dir, 0, func(_ uint64, r *Record) error {
		seen = append(seen, r.Added[0].X)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Fatalf("replayed %v, want [1 3] (no phantom 2)", seen)
	}
}

func TestAppendTornWriteFaultNoPhantom(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	w, err := Open(dir, Options{Policy: FsyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	// A torn write leaves half a frame on disk; repair must truncate it so
	// it cannot surface as a torn tail (or worse, a phantom) on recovery.
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", ShortWrite: true, Err: faultfs.ErrInjectedEIO})
	if _, err := w.Append(rec(2)); !errors.Is(err, faultfs.ErrInjectedEIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	if _, err := w.Append(rec(3)); err != nil {
		t.Fatalf("append after torn-write repair: %v", err)
	}
	w.Close()
	if got := replayCount(t, dir); got != 2 {
		t.Fatalf("replayed %d records, want 2", got)
	}
}

func TestFsyncFaultDiscardsFrame(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	w, err := Open(dir, Options{Policy: FsyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	in.Script(faultfs.Rule{Op: faultfs.OpSync, PathContains: "wal-", Err: faultfs.ErrInjectedEIO})
	if _, err := w.Append(rec(2)); !errors.Is(err, faultfs.ErrInjectedEIO) {
		t.Fatalf("want EIO, got %v", err)
	}
	// The written-but-unacked frame must not survive: fsync failed, so the
	// caller was told the mutation is rejected.
	w.Close()
	if got := replayCount(t, dir); got != 1 {
		t.Fatalf("replayed %d records, want 1 (fsync-failed frame must not replay)", got)
	}
}

func TestDamagedLogFailsFastThenRecovers(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	w, err := Open(dir, Options{Policy: FsyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	// Fail the write AND the repair truncate: the log must mark itself
	// damaged instead of pretending the tail is clean.
	in.Script(
		faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", ShortWrite: true, Err: faultfs.ErrInjectedEIO},
		faultfs.Rule{Op: faultfs.OpTruncate, PathContains: "wal-", Err: faultfs.ErrInjectedEIO},
	)
	if _, err := w.Append(rec(2)); err == nil {
		t.Fatal("faulted append passed")
	}
	if !w.Damaged() {
		t.Fatal("failed repair should mark log damaged")
	}
	// Next append retries the repair (faults are exhausted now) and succeeds.
	if _, err := w.Append(rec(3)); err != nil {
		t.Fatalf("append should self-repair: %v", err)
	}
	if w.Damaged() {
		t.Fatal("successful repair should clear damage")
	}
	w.Close()
	if got := replayCount(t, dir); got != 2 {
		t.Fatalf("replayed %d records, want 2", got)
	}
}

func TestProbeRepairsAndSyncs(t *testing.T) {
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	w, err := Open(dir, Options{Policy: FsyncAlways, FS: in})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	in.Script(
		faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", ShortWrite: true, Err: faultfs.ErrInjectedEIO},
		faultfs.Rule{Op: faultfs.OpTruncate, PathContains: "wal-", Err: faultfs.ErrInjectedEIO},
	)
	if _, err := w.Append(rec(1)); err == nil {
		t.Fatal("faulted append passed")
	}
	if !w.Damaged() {
		t.Fatal("want damaged")
	}
	// While the disk still faults syncs, Probe must report failure.
	in.Script(faultfs.Rule{Op: faultfs.OpSync, PathContains: "wal-", Err: faultfs.ErrInjectedEIO})
	if err := w.Probe(); err == nil {
		t.Fatal("probe on faulting disk should fail")
	}
	// Disk healed: Probe repairs the tail and syncs.
	if err := w.Probe(); err != nil {
		t.Fatalf("probe on healed disk: %v", err)
	}
	if w.Damaged() {
		t.Fatal("probe should repair damage")
	}
	if _, err := w.Append(rec(2)); err != nil {
		t.Fatalf("append after probe: %v", err)
	}
}

func TestReplayFSCrashWedge(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := w.Append(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	in := faultfs.NewInjector(nil)
	n := 0
	if err := ReplayFS(in, dir, 0, func(uint64, *Record) error { n++; return nil }); err != nil || n != 3 {
		t.Fatalf("replay through injector: n=%d err=%v", n, err)
	}
	in.Crash()
	if err := ReplayFS(in, dir, 0, func(uint64, *Record) error { return nil }); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("replay on crashed fs: %v", err)
	}
}
