// Package wal is the write-ahead log of the engine's durability layer: an
// append-only, segmented log of coalesced catalog and view mutations — the
// effective deltas the catalog already computes for view maintenance — with
// CRC-framed, varint-encoded records, configurable fsync policies and
// segment rotation.
//
// Every record is framed as
//
//	uvarint payload-length | payload | 4-byte little-endian CRC32-C(payload)
//
// and assigned a monotonically increasing LSN (1-based record sequence
// number). Segments are files named wal-%016x.seg where the hex value is
// the LSN of the segment's first record; a segment is rotated once it
// crosses Options.SegmentBytes. Recovery replays records after the
// snapshot's applied LSN through the normal catalog mutation path; a torn
// tail (a crash mid-append, leaving an incomplete frame at the end of the
// last segment) is truncated on Open, while a complete frame that fails
// its CRC anywhere is corruption of acked data and fails recovery loudly.
//
// See README.md for the record format reference and fsync trade-offs.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/faultfs"
)

// ErrClosed marks operations attempted on a closed log. Unlike an I/O
// failure it is permanent and not a disk-health signal: callers distinguish
// it (errors.Is) so a mutation racing Close fails fast instead of being
// retried or degrading the engine.
var ErrClosed = errors.New("wal: closed log")

// Policy selects when appends reach the disk.
type Policy int

// Fsync policies, in decreasing durability order.
const (
	// FsyncAlways syncs after every append: no acked mutation is ever lost,
	// at the cost of one fsync per batch (~ms on most disks).
	FsyncAlways Policy = iota
	// FsyncInterval syncs at most once per Options.Interval (plus a
	// background flush when idle): a crash loses at most one interval of
	// acked mutations.
	FsyncInterval
	// FsyncNever leaves syncing to the OS page cache: fastest, loses an
	// unbounded tail on power failure (process crashes still keep everything
	// the kernel accepted).
	FsyncNever
)

// String names the policy as the -fsync flag spells it.
func (p Policy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncInterval:
		return "interval"
	case FsyncNever:
		return "never"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy parses the -fsync flag values always|interval|never.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", s)
}

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is unset.
const DefaultSegmentBytes = 64 << 20

// DefaultInterval is the FsyncInterval period when Options.Interval is
// unset.
const DefaultInterval = 100 * time.Millisecond

// Options configures a WAL.
type Options struct {
	// Policy selects the fsync policy (default FsyncAlways).
	Policy Policy
	// Interval is the FsyncInterval period (default DefaultInterval).
	Interval time.Duration
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// FS is the filesystem the log performs I/O through; nil means the real
	// filesystem (faultfs.OS). Tests inject faults here.
	FS faultfs.FS
}

// Stats is a point-in-time summary of the log, served on /healthz.
type Stats struct {
	// Dir is the log directory.
	Dir string `json:"dir"`
	// Policy is the fsync policy name.
	Policy string `json:"fsync"`
	// Segments is the number of live segment files.
	Segments int `json:"segments"`
	// NextLSN is the LSN the next appended record will get.
	NextLSN uint64 `json:"next_lsn"`
	// Appended counts records appended since Open.
	Appended uint64 `json:"appended_records"`
	// AppendedBytes counts framed bytes appended since Open.
	AppendedBytes int64 `json:"appended_bytes"`
	// Syncs counts fsync calls since Open.
	Syncs uint64 `json:"syncs"`
}

// WAL is an open write-ahead log. All methods are safe for concurrent use.
type WAL struct {
	dir  string
	opts Options
	fs   faultfs.FS

	mu       sync.Mutex
	f        faultfs.File // active segment
	segFirst uint64       // first LSN of the active segment
	size     int64        // active segment size
	nextLSN  uint64
	dirty    bool // unsynced appends pending
	closed   bool
	damaged  bool // failed append left bytes of unknown state on disk

	appended uint64
	appBytes int64
	syncs    uint64

	stop chan struct{} // interval flusher shutdown
	done chan struct{}
}

// segPrefix and segSuffix frame segment file names: wal-%016x.seg.
const (
	segPrefix = "wal-"
	segSuffix = ".seg"
)

func segName(firstLSN uint64) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix)
}

// parseSegName extracts the first LSN from a segment file name.
func parseSegName(name string) (uint64, bool) {
	if len(name) != len(segPrefix)+16+len(segSuffix) ||
		name[:len(segPrefix)] != segPrefix || name[len(name)-len(segSuffix):] != segSuffix {
		return 0, false
	}
	var lsn uint64
	if _, err := fmt.Sscanf(name[len(segPrefix):len(segPrefix)+16], "%016x", &lsn); err != nil {
		return 0, false
	}
	return lsn, true
}

// listSegments returns the segment first-LSNs in dir, ascending.
func listSegments(fsys faultfs.FS, dir string) ([]uint64, error) {
	ents, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []uint64
	for _, e := range ents {
		if lsn, ok := parseSegName(e.Name()); ok && !e.IsDir() {
			segs = append(segs, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })
	return segs, nil
}

// OldestLSNFS reports the first LSN of the oldest retained segment in dir.
// ok is false when the directory does not exist or holds no segments — i.e.
// the log's history starts at LSN 1 (nothing has been truncated away).
// Replication sources use this to tell a "from before retained history"
// request (follower must re-bootstrap from a snapshot) apart from a merely
// caught-up one.
func OldestLSNFS(fsys faultfs.FS, dir string) (oldest uint64, ok bool, err error) {
	segs, err := listSegments(faultfs.OrOS(fsys), dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("wal: %w", err)
	}
	if len(segs) == 0 {
		return 0, false, nil
	}
	return segs[0], true, nil
}

// Open opens (or creates) the log in dir, scanning the last segment to find
// the next LSN and truncating a torn tail record left by a crash mid-append.
func Open(dir string, opts Options) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	fsys := faultfs.OrOS(opts.FS)
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{dir: dir, opts: opts, fs: fsys, nextLSN: 1, segFirst: 1}
	segs, err := listSegments(fsys, dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	if len(segs) > 0 {
		last := segs[len(segs)-1]
		n, valid, err := scanSegment(fsys, filepath.Join(dir, segName(last)))
		if err != nil {
			return nil, err
		}
		w.segFirst = last
		w.nextLSN = last + uint64(n)
		w.size = valid
		f, err := fsys.OpenFile(filepath.Join(dir, segName(last)), os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		// Truncate the torn tail (and position the write offset on it).
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: truncating torn tail: %w", err)
		}
		if _, err := f.Seek(valid, io.SeekStart); err != nil {
			f.Close()
			return nil, fmt.Errorf("wal: %w", err)
		}
		w.f = f
	} else {
		f, err := fsys.OpenFile(filepath.Join(dir, segName(1)), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: %w", err)
		}
		w.f = f
	}
	if opts.Policy == FsyncInterval {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

// frameStatus classifies one frame-scan step. The distinction matters for
// recovery: a crash mid-append leaves an INCOMPLETE frame at the file's end
// (the writer appends, never preallocates), which is the torn tail Open
// silently truncates — while a COMPLETE frame that fails its CRC, or a
// CRC-valid frame whose record does not decode, is media corruption of
// fsync-acked data and must fail recovery loudly rather than silently
// dropping everything after it.
type frameStatus int

const (
	frameOK   frameStatus = iota
	frameTorn             // bytes run out mid-frame: crash artifact at the tail
	frameCorrupt
)

// scanSegment walks one segment's records, returning how many decode
// cleanly and the byte offset of the first torn frame. A corrupt (complete
// but CRC-failing) frame is an error, never truncated.
func scanSegment(fsys faultfs.FS, path string) (records int, validBytes int64, err error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: %w", err)
	}
	off := int64(0)
	rest := data
	for len(rest) > 0 {
		payload, next, st := nextFrame(rest)
		if st == frameTorn {
			break
		}
		if st == frameCorrupt {
			return 0, 0, fmt.Errorf("wal: corrupt frame at offset %d in %s (CRC-complete but invalid: not a torn tail)", off, path)
		}
		if _, err := DecodeRecord(payload); err != nil {
			return 0, 0, fmt.Errorf("wal: corrupt record at offset %d in %s: %w", off, path, err)
		}
		off += int64(len(rest) - len(next))
		rest = next
		records++
	}
	return records, off, nil
}

// nextFrame consumes one CRC-validated frame, returning its payload and the
// remaining bytes. frameTorn means the bytes ran out mid-frame (truncation
// — possibly a corrupt length field, which is indistinguishable); frameCorrupt
// means the frame is complete but its checksum does not match.
func nextFrame(b []byte) (payload, rest []byte, st frameStatus) {
	n, used := binary.Uvarint(b)
	if used < 0 {
		return nil, b, frameCorrupt // varint overflow: not a truncation
	}
	if used == 0 || n > uint64(len(b)-used) {
		return nil, b, frameTorn
	}
	body := b[used : used+int(n)]
	rest = b[used+int(n):]
	if len(rest) < 4 {
		return nil, b, frameTorn
	}
	want := binary.LittleEndian.Uint32(rest[:4])
	if crc32.Checksum(body, crcTable) != want {
		return nil, b, frameCorrupt
	}
	return body, rest[4:], frameOK
}

// Append encodes r, assigns it the next LSN, writes the frame to the active
// segment (rotating first if the segment is full) and applies the fsync
// policy. It returns the record's LSN.
//
// A failed write or fsync is repaired in place: the segment is truncated
// back to its pre-append size so the rejected frame can never replay as a
// phantom. If the repair itself fails, the log is marked damaged — further
// appends fail fast until Repair succeeds (retried automatically on the
// next Append), because bytes of unknown state sit beyond the acked tail.
func (w *WAL) Append(r *Record) (uint64, error) {
	frame, err := AppendRecord(nil, r)
	if err != nil {
		return 0, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("append: %w", ErrClosed)
	}
	if w.damaged {
		if err := w.repairLocked(); err != nil {
			return 0, fmt.Errorf("wal: append on damaged log: %w", err)
		}
	}
	if w.size > 0 && w.size+int64(len(frame)) > w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			return 0, err
		}
	}
	start := time.Now()
	if _, err := w.f.Write(frame); err != nil {
		w.repairAfterFault()
		appendErrors.Inc()
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if w.opts.Policy == FsyncAlways {
		syncStart := time.Now()
		if err := w.f.Sync(); err != nil {
			// The frame may or may not have reached the platter; either way
			// it is un-acked and must not survive, so truncate it away.
			w.repairAfterFault()
			appendErrors.Inc()
			return 0, fmt.Errorf("wal: fsync: %w", err)
		}
		fsyncSeconds.ObserveSince(syncStart)
		w.dirty = false
		w.syncs++
	} else {
		w.dirty = true
	}
	appendSeconds.ObserveSince(start)
	lsn := w.nextLSN
	w.nextLSN++
	w.size += int64(len(frame))
	w.appended++
	w.appBytes += int64(len(frame))
	return lsn, nil
}

// repairAfterFault truncates the active segment back to the acked size
// after a failed append, discarding any partially written frame. On failure
// the log is marked damaged. Callers hold w.mu.
func (w *WAL) repairAfterFault() {
	if err := w.repairLocked(); err != nil {
		w.damaged = true
	}
}

// repairLocked restores the active segment to exactly w.size bytes and
// re-positions the write offset, clearing the damaged flag on success.
// Callers hold w.mu.
func (w *WAL) repairLocked() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		return err
	}
	w.damaged = false
	return nil
}

// Damaged reports whether a failed append could not be repaired: bytes of
// unknown state sit past the acked tail, and the next successful Repair (or
// Append, which retries it) clears the condition. Recovery handles a
// damaged tail like any torn tail: it is truncated on Open.
func (w *WAL) Damaged() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.damaged
}

// Repair re-attempts the truncate-to-acked-tail repair of a damaged log.
// It is a no-op on a healthy log.
func (w *WAL) Repair() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("repair: %w", ErrClosed)
	}
	if !w.damaged {
		return nil
	}
	return w.repairLocked()
}

// Probe checks disk health for re-arming a degraded engine: it repairs any
// damage and then forces an unconditional fsync of the active segment. A
// nil return means the log can accept appends again.
func (w *WAL) Probe() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("probe: %w", ErrClosed)
	}
	if w.damaged {
		if err := w.repairLocked(); err != nil {
			return fmt.Errorf("wal: probe: %w", err)
		}
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: probe: %w", err)
	}
	w.dirty = false
	return nil
}

// rotateLocked seals the active segment (synced) and starts a new one
// whose name carries the next LSN. The new segment is opened BEFORE the old
// one is closed: if the open fails (ENOSPC, fd limit), the old segment
// stays active and appends keep working once the condition clears, instead
// of wedging every future append on a closed file. Callers hold w.mu.
func (w *WAL) rotateLocked() error {
	if err := w.syncLocked(); err != nil {
		return err
	}
	f, err := w.fs.OpenFile(filepath.Join(w.dir, segName(w.nextLSN)), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: rotate: %w", err)
	}
	old := w.f
	w.f, w.segFirst, w.size = f, w.nextLSN, 0
	if err := old.Close(); err != nil {
		return fmt.Errorf("wal: rotate: sealing old segment: %w", err)
	}
	return syncDir(w.fs, w.dir)
}

// Rotate forces a segment rotation, making every prior record eligible for
// TruncateBefore. Checkpointing rotates so the pre-checkpoint tail can be
// reclaimed.
func (w *WAL) Rotate() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("rotate: %w", ErrClosed)
	}
	if w.size == 0 {
		return nil // active segment is empty; nothing to seal
	}
	return w.rotateLocked()
}

// syncLocked fsyncs the active segment if dirty. Callers hold w.mu.
func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("wal: fsync: %w", err)
	}
	fsyncSeconds.ObserveSince(start)
	w.dirty = false
	w.syncs++
	return nil
}

// Sync forces an fsync of the active segment regardless of policy.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

// flushLoop is the FsyncInterval background flusher.
func (w *WAL) flushLoop() {
	defer close(w.done)
	t := time.NewTicker(w.opts.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			_ = w.Sync()
		case <-w.stop:
			return
		}
	}
}

// Close syncs and closes the log. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	err := w.syncLocked()
	w.closed = true
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	stop := w.stop
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.done
	}
	return err
}

// NextLSN returns the LSN the next appended record will receive.
func (w *WAL) NextLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN
}

// Stats summarizes the log for /healthz.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, _ := listSegments(w.fs, w.dir)
	return Stats{
		Dir:      w.dir,
		Policy:   w.opts.Policy.String(),
		Segments: len(segs),
		NextLSN:  w.nextLSN,
		Appended: w.appended, AppendedBytes: w.appBytes,
		Syncs: w.syncs,
	}
}

// Replay streams every record with LSN > after to fn, in LSN order. A torn
// tail — an incomplete frame at the end of the final segment — ends the
// replay silently (it is the crash artifact Open truncates); a complete but
// invalid frame anywhere, or any bad frame in a non-final segment, is
// corruption of acked data and fails the replay. fn errors abort.
func Replay(dir string, after uint64, fn func(lsn uint64, r *Record) error) error {
	return ReplayFS(nil, dir, after, fn)
}

// ReplayFS is Replay through an injectable filesystem (nil means the real
// one).
func ReplayFS(fsys faultfs.FS, dir string, after uint64, fn func(lsn uint64, r *Record) error) error {
	f := faultfs.OrOS(fsys)
	segs, err := listSegments(f, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("wal: %w", err)
	}
	for i, first := range segs {
		// Skip segments entirely at or below the replay horizon: a segment
		// is skippable when the next segment starts at or below after+1.
		if i+1 < len(segs) && segs[i+1] <= after+1 {
			continue
		}
		data, err := f.ReadFile(filepath.Join(dir, segName(first)))
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		lsn := first
		rest := data
		for len(rest) > 0 {
			payload, next, st := nextFrame(rest)
			if st != frameOK {
				if st == frameTorn && i == len(segs)-1 {
					return nil // torn tail: the crash artifact Open truncates
				}
				return fmt.Errorf("wal: corrupt frame at lsn %d in %s", lsn, segName(first))
			}
			r, err := DecodeRecord(payload)
			if err != nil {
				// The CRC matched but the record is invalid: corruption (or
				// a writer bug), never a torn write.
				return fmt.Errorf("wal: corrupt record at lsn %d in %s: %w", lsn, segName(first), err)
			}
			if lsn > after {
				if err := fn(lsn, r); err != nil {
					return err
				}
			}
			lsn++
			rest = next
		}
	}
	return nil
}

// TruncateBefore removes every segment whose records all have LSN < lsn,
// never touching the active segment. It reclaims the log tail a checkpoint
// has made redundant.
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	segs, err := listSegments(w.fs, w.dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for i, first := range segs {
		// Segment i spans [first, next.first); removable when it ends below
		// lsn and is not the active segment.
		if first == w.segFirst || i+1 >= len(segs) || segs[i+1] > lsn {
			continue
		}
		if err := w.fs.Remove(filepath.Join(w.dir, segName(first))); err != nil {
			return fmt.Errorf("wal: truncate: %w", err)
		}
	}
	return syncDir(w.fs, w.dir)
}

// syncDir fsyncs a directory so renames and removals survive power loss.
func syncDir(fsys faultfs.FS, dir string) error {
	d, err := fsys.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
