package wal

import (
	"testing"
)

// FuzzWALDecode feeds arbitrary bytes to the record decoder (both the
// unframed payload decoder and the frame scanner). The contract under test:
// decoding never panics, and no input decodes to a record that re-encodes
// differently (corruption is either rejected or canonical).
func FuzzWALDecode(f *testing.F) {
	for _, r := range sampleRecords() {
		payload, err := appendPayload(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(payload)
		frame, err := AppendRecord(nil, r)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(frame)
	}
	f.Add([]byte{})
	f.Add([]byte{KindMutate})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeRecord(data)
		if err == nil {
			// A clean decode must survive a re-encode/re-decode round trip:
			// whatever bytes got in, the record they denote is stable.
			enc, err := appendPayload(nil, r)
			if err != nil {
				t.Fatalf("decoded record does not re-encode: %v (%+v)", err, r)
			}
			r2, err := DecodeRecord(enc)
			if err != nil {
				t.Fatalf("re-encoded record does not decode: %v (%+v)", err, r)
			}
			if r2.Kind != r.Kind || r2.Name != r.Name || r2.Query != r.Query ||
				!pairsEqual(r2.Added, r.Added) || !pairsEqual(r2.Removed, r.Removed) ||
				!pairsEqual(r2.Pairs, r.Pairs) {
				t.Fatalf("unstable round trip: %+v vs %+v", r, r2)
			}
		}
		// The frame scanner must never panic either; truncated or
		// bit-flipped frames simply fail validation.
		_, _, _ = nextFrame(data)
	})
}
