package wal

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/relation"
)

func pairs(vals ...int32) []relation.Pair {
	var ps []relation.Pair
	for i := 0; i+1 < len(vals); i += 2 {
		ps = append(ps, relation.Pair{X: vals[i], Y: vals[i+1]})
	}
	return ps
}

func sampleRecords() []*Record {
	return []*Record{
		{Kind: KindRegister, Name: "R", Pairs: pairs(1, 2, 1, 3, 5, 1)},
		{Kind: KindMutate, Name: "R", Added: pairs(9, 9, -4, 7), Removed: pairs(1, 2)},
		{Kind: KindRegisterView, Name: "v", Query: "V(x, z) :- R(x, y), R(y, z)"},
		{Kind: KindMutate, Name: "R", Removed: pairs(5, 1)},
		{Kind: KindDropView, Name: "v"},
		{Kind: KindDrop, Name: "R"},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, r := range sampleRecords() {
		frame, err := AppendRecord(nil, r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		payload, rest, st := nextFrame(frame)
		if st != frameOK || len(rest) != 0 {
			t.Fatalf("record %d: frame did not round-trip (st=%v rest=%d)", i, st, len(rest))
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if got.Kind != r.Kind || got.Name != r.Name || got.Query != r.Query ||
			!pairsEqual(got.Added, r.Added) || !pairsEqual(got.Removed, r.Removed) ||
			!pairsEqualSorted(got.Pairs, r.Pairs) {
			t.Fatalf("record %d: round-trip mismatch: %+v vs %+v", i, got, r)
		}
	}
}

func pairsEqual(a, b []relation.Pair) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pairsEqualSorted compares as sets: register images are canonicalized to
// (x, y) order by the columnar codec.
func pairsEqualSorted(a, b []relation.Pair) bool {
	ra := relation.FromPairs("a", a)
	rb := relation.FromPairs("b", b)
	return reflect.DeepEqual(ra.Pairs(), rb.Pairs())
}

// TestRecordDecodeCorruption flips every byte of every encoded record and
// requires DecodeRecord to either error or produce a record — never panic —
// and every truncation to error.
func TestRecordDecodeCorruption(t *testing.T) {
	for _, r := range sampleRecords() {
		payload, err := appendPayload(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(payload); cut++ {
			if _, err := DecodeRecord(payload[:cut]); err == nil {
				t.Fatalf("truncation at %d of %d decoded cleanly (%+v)", cut, len(payload), r)
			}
		}
		for i := range payload {
			mut := append([]byte(nil), payload...)
			mut[i] ^= 0xff
			_, _ = DecodeRecord(mut) // must not panic
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	recs := sampleRecords()
	for i, r := range recs {
		lsn, err := w.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got []*Record
	if err := Replay(dir, 0, func(lsn uint64, r *Record) error {
		got = append(got, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	// Replay after a horizon skips the prefix.
	var tail []*Record
	if err := Replay(dir, 4, func(lsn uint64, r *Record) error {
		tail = append(tail, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(tail) != len(recs)-4 || tail[0].Kind != KindDropView {
		t.Fatalf("horizon replay got %d records, want %d starting at dropview", len(tail), len(recs)-4)
	}
}

func TestSegmentRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	const n = 40
	for i := int32(0); i < n; i++ {
		if _, err := w.Append(&Record{Kind: KindMutate, Name: "R", Added: pairs(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected rotation to produce ≥ 3 segments, got %d", st.Segments)
	}
	if st.NextLSN != n+1 {
		t.Fatalf("NextLSN = %d, want %d", st.NextLSN, n+1)
	}
	// Truncate below LSN 20: early segments go, replay still yields 20+.
	if err := w.TruncateBefore(20); err != nil {
		t.Fatal(err)
	}
	var lsns []uint64
	if err := Replay(dir, 0, func(lsn uint64, r *Record) error {
		lsns = append(lsns, lsn)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(lsns) == 0 || lsns[len(lsns)-1] != n {
		t.Fatalf("replay after truncate lost the tail: %v", lsns)
	}
	if lsns[0] >= 20 {
		t.Fatalf("truncate removed too much: first surviving lsn %d", lsns[0])
	}
	for _, lsn := range lsns {
		if lsn >= 20 {
			break
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTornTailTruncatedOnOpen cuts the last segment mid-record and checks
// that Open truncates it, Replay stops cleanly, and appends continue with
// the right LSN.
func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 5; i++ {
		if _, err := w.Append(&Record{Kind: KindMutate, Name: "R", Added: pairs(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	count := 0
	if err := Replay(dir, 0, func(uint64, *Record) error { count++; return nil }); err != nil {
		t.Fatalf("torn tail must not fail replay: %v", err)
	}
	if count != 4 {
		t.Fatalf("replayed %d records, want 4 (torn fifth dropped)", count)
	}

	w, err = Open(dir, Options{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := w.Append(&Record{Kind: KindDrop, Name: "R"})
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("post-truncation append lsn = %d, want 5 (reusing the torn slot)", lsn)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCorruptionInLastSegmentFails flips a CRC byte of an EARLY frame in
// the final segment — the file is complete, so this is media corruption of
// acked records, not a torn tail — and expects both Replay and Open to
// error rather than silently truncate the valid records that follow.
func TestCorruptionInLastSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 5; i++ {
		if _, err := w.Append(&Record{Kind: KindMutate, Name: "R", Added: pairs(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	_, rest, st := nextFrame(data)
	if st != frameOK {
		t.Fatalf("first frame status %v", st)
	}
	firstLen := len(data) - len(rest)
	data[firstLen-1] ^= 0xff // last CRC byte of frame 1
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, 0, func(uint64, *Record) error { return nil }); err == nil {
		t.Fatal("mid-file corruption in the last segment replayed cleanly; want error")
	}
	if _, err := Open(dir, Options{Policy: FsyncNever}); err == nil {
		t.Fatal("Open truncated past mid-file corruption; want error")
	}
}

// TestCorruptionMidLogFails flips a byte in a non-final segment and expects
// replay to error rather than silently skip records.
func TestCorruptionMidLogFails(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(dir, Options{Policy: FsyncNever, SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 30; i++ {
		if _, err := w.Append(&Record{Kind: KindMutate, Name: "R", Added: pairs(i, i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(faultfs.OrOS(nil), dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥ 2 segments, got %v (%v)", segs, err)
	}
	seg := filepath.Join(dir, segName(segs[0]))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(dir, 0, func(uint64, *Record) error { return nil }); err == nil {
		t.Fatal("mid-log corruption replayed cleanly; want error")
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []Policy{FsyncAlways, FsyncInterval, FsyncNever} {
		dir := t.TempDir()
		w, err := Open(dir, Options{Policy: pol, Interval: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		for i := int32(0); i < 3; i++ {
			if _, err := w.Append(&Record{Kind: KindMutate, Name: "R", Added: pairs(i, i)}); err != nil {
				t.Fatal(err)
			}
		}
		if pol == FsyncAlways && w.Stats().Syncs < 3 {
			t.Fatalf("always: %d syncs after 3 appends", w.Stats().Syncs)
		}
		if pol == FsyncInterval {
			deadline := time.Now().Add(2 * time.Second)
			for w.Stats().Syncs == 0 && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if w.Stats().Syncs == 0 {
				t.Fatal("interval: background flusher never synced")
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
	}{{"always", FsyncAlways}, {"interval", FsyncInterval}, {"never", FsyncNever}} {
		got, err := ParsePolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("round trip %q → %q", tc.in, got.String())
		}
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("ParsePolicy accepted garbage")
	}
}

// TestColumnarImageCompact sanity-checks that the register image codec beats
// the 8-bytes-per-pair row format on a sorted graph.
func TestColumnarImageCompact(t *testing.T) {
	var ps []relation.Pair
	for x := int32(0); x < 100; x++ {
		for y := x; y < x+20; y++ {
			ps = append(ps, relation.Pair{X: x, Y: y})
		}
	}
	enc := relation.AppendPairs(nil, ps)
	if len(enc) >= 8*len(ps) {
		t.Fatalf("columnar image %d bytes ≥ row format %d", len(enc), 8*len(ps))
	}
	dec, rest, err := relation.DecodePairs(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode: %v (rest %d)", err, len(rest))
	}
	if !bytes.Equal(relation.AppendPairs(nil, dec), enc) {
		t.Fatal("decode/encode not idempotent")
	}
}
