package ssj_test

import (
	"fmt"

	"repro/internal/relation"
	"repro/internal/ssj"
)

func family() *relation.Relation {
	return relation.FromPairs("docs", []relation.Pair{
		{X: 1, Y: 10}, {X: 1, Y: 11}, {X: 1, Y: 12},
		{X: 2, Y: 10}, {X: 2, Y: 11}, {X: 2, Y: 12}, {X: 2, Y: 13},
		{X: 3, Y: 10}, {X: 3, Y: 20},
		{X: 4, Y: 30},
	})
}

// All pairs of documents sharing at least two keywords.
func ExampleMMJoin() {
	pairs := ssj.MMJoin(family(), 2, ssj.Options{Workers: 1})
	for _, p := range pairs {
		fmt.Printf("docs %d and %d are similar\n", p.A, p.B)
	}
	// Output:
	// docs 1 and 2 are similar
}

// The most similar pairs first, without sorting the whole result.
func ExampleTopK() {
	top := ssj.TopK(family(), 1, 2, ssj.Options{Workers: 1})
	for _, sp := range top {
		fmt.Printf("docs %d,%d share %d keywords\n", sp.A, sp.B, sp.Overlap)
	}
	// Output:
	// docs 1,2 share 3 keywords
	// docs 1,3 share 1 keywords
}

// Triples of documents with a common keyword.
func ExampleKWaySimilar() {
	for _, tp := range ssj.KWaySimilar(family(), 3, 1, ssj.Options{Workers: 1}) {
		fmt.Printf("docs %v share %d keywords\n", tp.Sets, tp.Overlap)
	}
	// Output:
	// docs [1 2 3] share 1 keywords
}
