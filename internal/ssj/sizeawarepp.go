package ssj

import (
	"slices"
	"sort"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

// PPOptions toggles the three SizeAware++ optimizations. The zero value
// (all false) degenerates to plain SizeAware — the NO-OP configuration of
// Figure 8; Heavy, Light and Prefix correspond to the figure's bars.
type PPOptions struct {
	Options
	// Heavy routes the heavy-set join R ⋈ Rh through the matrix-
	// multiplication 2-path instead of per-set inverted-index sweeps.
	Heavy bool
	// Light routes light-bucket pairing through a join-project on the
	// (set, c-subset) bipartite graph instead of brute-force bucket scans.
	Light bool
	// Prefix replaces light processing entirely with the prefix-tree
	// materialization of Example 6: inverted-list merges are shared across
	// sets with a common prefix under the global |L[b]|-descending order.
	Prefix bool
	// MaxPrefixDepth bounds the depth to which prefix sharing is
	// materialized (0 = unlimited), trading reuse for memory as in the
	// paper's discussion.
	MaxPrefixDepth int
}

// SizeAwarePP runs SizeAware++ with the selected optimizations.
func SizeAwarePP(rel *relation.Relation, c int, opt PPOptions) []Pair {
	if c < 1 {
		c = 1
	}
	f := newFamily(rel)
	x := GetSizeBoundary(f, c)
	sink := newPairSink(len(f.ids))

	if opt.Heavy {
		heavyViaMM(rel, f, c, x, opt, sink)
	} else {
		sizeAwareHeavy(f, c, x, opt.Workers, sink, nil)
	}

	switch {
	case opt.Prefix:
		prefixTreeLight(f, c, x, opt.MaxPrefixDepth, sink)
	case opt.Light:
		lightViaMM(f, c, x, opt, sink)
	default:
		sizeAwareLight(f, c, x, sink)
	}
	return sink.pairs()
}

// heavyViaMM computes every similar pair involving a heavy set by running
// the counting 2-path join R(set,e) ⋈ Rh(heavySet,e) with Algorithm 1 —
// the first SizeAware++ modification. Heavy–heavy pairs appear in both
// orientations; they are emitted once.
func heavyViaMM(rel *relation.Relation, f *family, c, x int, opt PPOptions, sink *pairSink) {
	var heavyPairs []relation.Pair
	heavy := make(map[int32]bool)
	for i, id := range f.ids {
		if f.sizes[i] >= x {
			heavy[id] = true
			for _, e := range f.sets[i] {
				heavyPairs = append(heavyPairs, relation.Pair{X: id, Y: e})
			}
		}
	}
	if len(heavyPairs) == 0 {
		return
	}
	rh := relation.FromPairs("heavy", heavyPairs)
	counts := joinproject.TwoPathMMCounts(rel, rh, joinproject.Options{
		Delta1: opt.Delta1, Delta2: opt.Delta2, Workers: opt.Workers,
	})
	for _, pc := range counts {
		if pc.Count < int32(c) || pc.X == pc.Z {
			continue
		}
		if heavy[pc.X] && pc.X > pc.Z {
			continue // heavy-heavy pair arrives in both orientations
		}
		a, b := pc.X, pc.Z
		if a > b {
			a, b = b, a
		}
		sink.add(Pair{A: a, B: b})
	}
}

// lightViaMM pairs light sets through a join-project on the bipartite
// (set, c-subset) graph — the second SizeAware++ modification: two light
// sets are similar iff they share a c-subset, which is exactly a 2-path
// through the subset vertex.
func lightViaMM(f *family, c, x int, opt PPOptions, sink *pairSink) {
	subsetIDs := make(map[string]int32)
	var bp []relation.Pair
	var buf []byte
	for i := 0; i < len(f.ids); i++ {
		if f.sizes[i] >= x {
			continue
		}
		forEachCSubset(f.sets[i], c, func(subset []int32) {
			buf = subsetKey(buf, subset)
			id, ok := subsetIDs[string(buf)]
			if !ok {
				id = int32(len(subsetIDs))
				subsetIDs[string(buf)] = id
			}
			bp = append(bp, relation.Pair{X: f.ids[i], Y: id})
		})
	}
	if len(bp) == 0 {
		return
	}
	b := relation.FromPairs("subsets", bp)
	pairs := joinproject.TwoPathMM(b, b, joinproject.Options{Workers: opt.Workers})
	for _, p := range pairs {
		if p[0] < p[1] {
			sink.add(Pair{A: p[0], B: p[1]})
		}
	}
}

// prefixNode is one trie node of the prefix-tree materialization.
type prefixNode struct {
	elem      int32
	root      bool // the sentinel root carries no element
	children  []*prefixNode
	childIdx  map[int64]int // key: element (or element⊕set beyond depth cap)
	terminals []int32       // set positions ending at this node
}

func (n *prefixNode) child(key int64, elem int32) *prefixNode {
	if n.childIdx == nil {
		n.childIdx = make(map[int64]int)
	}
	if i, ok := n.childIdx[key]; ok {
		return n.children[i]
	}
	c := &prefixNode{elem: elem}
	n.childIdx[key] = len(n.children)
	n.children = append(n.children, c)
	return c
}

// prefixTreeLight implements the Example-6 optimization. Elements are
// globally ordered by decreasing light-inverted-list length (big lists
// first, maximizing reuse); light sets are inserted into a trie under that
// order; and a single DFS merges each distinct prefix exactly once,
// maintaining shared overlap counters with an at-least-c index so that
// terminal nodes enumerate their similar partners in output-sensitive time.
func prefixTreeLight(f *family, c, x, maxDepth int, sink *pairSink) {
	m := len(f.ids)
	// Light-only inverted index.
	lightInv := make(map[int32][]int32)
	lightCount := 0
	for i := 0; i < m; i++ {
		if f.sizes[i] >= x {
			continue
		}
		lightCount++
		for _, e := range f.sets[i] {
			lightInv[e] = append(lightInv[e], int32(i))
		}
	}
	if lightCount == 0 {
		return
	}
	// Global order: |L[e]| descending, element ascending to break ties.
	rank := make(map[int32]int32, len(lightInv))
	{
		type el struct {
			e   int32
			len int
		}
		els := make([]el, 0, len(lightInv))
		for e, l := range lightInv {
			els = append(els, el{e, len(l)})
		}
		sort.Slice(els, func(a, b int) bool {
			if els[a].len != els[b].len {
				return els[a].len > els[b].len
			}
			return els[a].e < els[b].e
		})
		for i, x := range els {
			rank[x.e] = int32(i)
		}
	}
	// Build the trie.
	root := &prefixNode{root: true}
	seq := make([]int32, 0, 64)
	for i := 0; i < m; i++ {
		if f.sizes[i] >= x {
			continue
		}
		seq = seq[:0]
		seq = append(seq, f.sets[i]...)
		slices.SortFunc(seq, func(a, b int32) int { return int(rank[a]) - int(rank[b]) })
		node := root
		for depth, e := range seq {
			// Zero-extend so negative element values cannot collide with
			// the set-id tag in the high word.
			key := int64(uint32(e))
			if maxDepth > 0 && depth >= maxDepth {
				// Beyond the materialization depth, stop sharing: give this
				// set a private chain (the paper's space/reuse trade-off).
				key |= int64(i+1) << 32
			}
			node = node.child(key, e)
		}
		node.terminals = append(node.terminals, int32(i))
	}
	// DFS with shared counters.
	cnt := make([]int32, m)
	atLeastC := make(map[int32]struct{})
	var dfs func(n *prefixNode)
	dfs = func(n *prefixNode) {
		if !n.root {
			for _, p := range lightInv[n.elem] {
				cnt[p]++
				if cnt[p] == int32(c) {
					atLeastC[p] = struct{}{}
				}
			}
		}
		for _, a := range n.terminals {
			for p := range atLeastC {
				if p != a {
					sink.add(f.normalize(a, p))
				}
			}
		}
		for _, ch := range n.children {
			dfs(ch)
		}
		if !n.root {
			for _, p := range lightInv[n.elem] {
				if cnt[p] == int32(c) {
					delete(atLeastC, p)
				}
				cnt[p]--
			}
		}
	}
	dfs(root)
}
