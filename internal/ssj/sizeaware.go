package ssj

import (
	"slices"
	"sync"

	"repro/internal/par"
	"repro/internal/relation"
)

// GetSizeBoundary chooses the size threshold x of Algorithm 2: sets of size
// ≥ x are heavy. Following Deng et al., the boundary balances the estimated
// cost of the two phases: heavy sets pay one inverted-index sweep each
// (Σ_{e∈h} |L[e]|), light sets pay c-subset generation (≈ C(|r|, c)·c).
// The candidate boundaries are the distinct set sizes; both costs are
// evaluated with prefix sums, so the search is O(m log m).
func GetSizeBoundary(f *family, c int) int {
	m := len(f.ids)
	if m == 0 {
		return 1
	}
	// sweepCost[i] = Σ_{e ∈ sets[i]} |L[e]|.
	sweep := make([]float64, m)
	for i, set := range f.sets {
		var s float64
		for _, e := range set {
			s += float64(len(f.inv[e]))
		}
		sweep[i] = s
	}
	genCost := make([]float64, m)
	for i, sz := range f.sizes {
		genCost[i] = subsetGenCost(sz, c)
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	slices.SortFunc(order, func(a, b int) int { return f.sizes[a] - f.sizes[b] })

	// Prefix sums in size order: light cost grows with the boundary, heavy
	// cost shrinks.
	totalSweep := 0.0
	for _, s := range sweep {
		totalSweep += s
	}
	bestX, bestCost := 1, totalSweep // boundary 1: everything heavy
	lightSoFar := 0.0
	heavyLeft := totalSweep
	for k := 0; k < m; k++ {
		i := order[k]
		lightSoFar += genCost[i]
		heavyLeft -= sweep[i]
		// Boundary just above this set's size.
		x := f.sizes[i] + 1
		if k+1 < m && f.sizes[order[k+1]] == f.sizes[i] {
			continue // only evaluate at distinct sizes
		}
		cost := lightSoFar + heavyLeft
		if cost < bestCost {
			bestCost, bestX = cost, x
		}
	}
	return bestX
}

// subsetGenCost approximates C(size, c)·c without overflowing.
func subsetGenCost(size, c int) float64 {
	if size < c {
		return 0
	}
	cost := 1.0
	for i := 0; i < c; i++ {
		cost *= float64(size-i) / float64(i+1)
		if cost > 1e15 {
			return 1e15
		}
	}
	return cost * float64(c)
}

// SizeAware runs Algorithm 2, the baseline of Deng et al.: heavy sets sweep
// the inverted index counting overlaps against every set; light sets
// enumerate c-subsets and pair up within subset buckets.
func SizeAware(rel *relation.Relation, c int, opt Options) []Pair {
	if c < 1 {
		c = 1
	}
	f := newFamily(rel)
	x := GetSizeBoundary(f, c)
	res := newPairSink(len(f.ids))
	sizeAwareHeavy(f, c, x, opt.Workers, res, nil)
	sizeAwareLight(f, c, x, res)
	return res.pairs()
}

// pairSink deduplicates emitted position pairs.
type pairSink struct {
	mu   sync.Mutex
	seen map[uint64]struct{}
	out  []Pair
}

func newPairSink(capHint int) *pairSink {
	return &pairSink{seen: make(map[uint64]struct{}, capHint)}
}

func (ps *pairSink) add(p Pair) {
	key := uint64(uint32(p.A))<<32 | uint64(uint32(p.B))
	ps.mu.Lock()
	if _, ok := ps.seen[key]; !ok {
		ps.seen[key] = struct{}{}
		ps.out = append(ps.out, p)
	}
	ps.mu.Unlock()
}

func (ps *pairSink) pairs() []Pair { return ps.out }

// sizeAwareHeavy emits every similar pair involving a heavy set: for each
// heavy set, one counting sweep over the inverted lists of its elements.
// Heavy–heavy pairs are emitted once (from the larger position); heavy–light
// pairs are found only here. If onlyAgainst is non-nil, partners are
// restricted to positions where onlyAgainst[pos] is true (used by tests).
func sizeAwareHeavy(f *family, c, x, workers int, sink *pairSink, onlyAgainst []bool) {
	m := len(f.ids)
	var heavyPos []int32
	for i := 0; i < m; i++ {
		if f.sizes[i] >= x {
			heavyPos = append(heavyPos, int32(i))
		}
	}
	par.ForChunks(len(heavyPos), workers, func(lo, hi int) {
		cnt := make([]int32, m)
		touched := make([]int32, 0, m)
		for k := lo; k < hi; k++ {
			h := heavyPos[k]
			touched = touched[:0]
			for _, e := range f.sets[h] {
				for _, p := range f.inv[e] {
					if cnt[p] == 0 {
						touched = append(touched, p)
					}
					cnt[p]++
				}
			}
			for _, p := range touched {
				n := cnt[p]
				cnt[p] = 0
				if p == h || n < int32(c) {
					continue
				}
				if onlyAgainst != nil && !onlyAgainst[p] {
					continue
				}
				if f.sizes[p] >= x && p > h {
					continue // heavy-heavy pair counted from the larger pos
				}
				sink.add(f.normalize(h, p))
			}
		}
	})
}

// subsetKey packs a c-subset of element values into a string key.
func subsetKey(buf []byte, subset []int32) []byte {
	buf = buf[:0]
	for _, v := range subset {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return buf
}

// forEachCSubset enumerates all c-subsets of set, invoking fn with a reused
// buffer.
func forEachCSubset(set []int32, c int, fn func(subset []int32)) {
	if c > len(set) {
		return
	}
	idx := make([]int, c)
	subset := make([]int32, c)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == c {
			fn(subset)
			return
		}
		for i := start; i <= len(set)-(c-depth); i++ {
			idx[depth] = i
			subset[depth] = set[i]
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// sizeAwareLight pairs light sets through the c-subset inverted index
// (Algorithm 2 lines 4–8): two light sets are similar iff they share a
// c-subset.
func sizeAwareLight(f *family, c, x int, sink *pairSink) {
	buckets := make(map[string][]int32)
	var buf []byte
	for i := 0; i < len(f.ids); i++ {
		if f.sizes[i] >= x {
			continue
		}
		forEachCSubset(f.sets[i], c, func(subset []int32) {
			buf = subsetKey(buf, subset)
			key := string(buf)
			bucket := buckets[key]
			// Pair the new set with everything already in the bucket
			// (line 8); the sink deduplicates pairs discovered through
			// multiple shared subsets.
			for _, j := range bucket {
				sink.add(f.normalize(int32(i), j))
			}
			buckets[key] = append(bucket, int32(i))
		})
	}
}
