package ssj

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/relation"
)

// bruteSSJ computes the exact similar-pair set by pairwise intersection.
func bruteSSJ(r *relation.Relation, c int) map[Pair]int32 {
	ix := r.ByX()
	out := map[Pair]int32{}
	for i := 0; i < ix.NumKeys(); i++ {
		for j := i + 1; j < ix.NumKeys(); j++ {
			ov := relation.IntersectCount(ix.List(i), ix.List(j))
			if ov >= c {
				out[Pair{A: ix.Key(i), B: ix.Key(j)}] = int32(ov)
			}
		}
	}
	return out
}

func randomSets(rng *rand.Rand, numSets, domain, maxSize int) *relation.Relation {
	var ps []relation.Pair
	for s := 0; s < numSets; s++ {
		size := 1 + rng.Intn(maxSize)
		for e := 0; e < size; e++ {
			ps = append(ps, relation.Pair{X: int32(s), Y: int32(rng.Intn(domain))})
		}
	}
	return relation.FromPairs("sets", ps)
}

func checkPairs(t *testing.T, got []Pair, want map[Pair]int32, label string) {
	t.Helper()
	seen := map[Pair]bool{}
	for _, p := range got {
		if p.A >= p.B {
			t.Fatalf("%s: unnormalized pair %+v", label, p)
		}
		if seen[p] {
			t.Fatalf("%s: duplicate pair %+v", label, p)
		}
		seen[p] = true
		if _, ok := want[p]; !ok {
			t.Fatalf("%s: spurious pair %+v", label, p)
		}
	}
	if len(seen) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(seen), len(want))
	}
}

func TestMMJoinSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	r := randomSets(rng, 40, 30, 12)
	for c := 1; c <= 4; c++ {
		want := bruteSSJ(r, c)
		checkPairs(t, MMJoin(r, c, Options{}), want, "MMJoin")
	}
}

func TestMMJoinOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	r := randomSets(rng, 50, 25, 10)
	c := 2
	want := bruteSSJ(r, c)
	got := MMJoinOrdered(r, c, Options{Workers: 2})
	if len(got) != len(want) {
		t.Fatalf("ordered: %d pairs, want %d", len(got), len(want))
	}
	for i, sp := range got {
		if want[Pair{A: sp.A, B: sp.B}] != sp.Overlap {
			t.Fatalf("pair %+v overlap = %d, want %d", sp, sp.Overlap, want[Pair{A: sp.A, B: sp.B}])
		}
		if i > 0 && got[i-1].Overlap < sp.Overlap {
			t.Fatalf("ordered output not descending at %d", i)
		}
	}
}

func TestSizeAwareMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, c := range []int{1, 2, 3} {
		r := randomSets(rng, 60, 25, 14)
		want := bruteSSJ(r, c)
		checkPairs(t, SizeAware(r, c, Options{}), want, "SizeAware")
	}
}

func TestSizeAwareParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	r := randomSets(rng, 80, 30, 16)
	want := bruteSSJ(r, 2)
	checkPairs(t, SizeAware(r, 2, Options{Workers: 4}), want, "SizeAware parallel")
}

func TestSizeAwarePPConfigurations(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	r := randomSets(rng, 70, 28, 15)
	for _, c := range []int{1, 2, 3} {
		want := bruteSSJ(r, c)
		configs := []struct {
			name string
			opt  PPOptions
		}{
			{"noop", PPOptions{}},
			{"light", PPOptions{Light: true}},
			{"heavy", PPOptions{Heavy: true}},
			{"light+heavy", PPOptions{Light: true, Heavy: true}},
			{"prefix", PPOptions{Heavy: true, Prefix: true}},
			{"prefix-depth2", PPOptions{Heavy: true, Prefix: true, MaxPrefixDepth: 2}},
			{"all-parallel", PPOptions{Options: Options{Workers: 4}, Light: true, Heavy: true}},
		}
		for _, cfg := range configs {
			checkPairs(t, SizeAwarePP(r, c, cfg.opt), want, cfg.name)
		}
	}
}

func TestGetSizeBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	r := randomSets(rng, 50, 20, 12)
	f := newFamily(r)
	x := GetSizeBoundary(f, 2)
	if x < 1 {
		t.Fatalf("boundary %d < 1", x)
	}
	// Boundary for empty family.
	empty := newFamily(relation.FromPairs("E", nil))
	if got := GetSizeBoundary(empty, 2); got != 1 {
		t.Fatalf("empty boundary = %d, want 1", got)
	}
}

func TestForEachCSubset(t *testing.T) {
	set := []int32{1, 2, 3, 4}
	var subsets [][]int32
	forEachCSubset(set, 2, func(s []int32) {
		cp := append([]int32(nil), s...)
		subsets = append(subsets, cp)
	})
	if len(subsets) != 6 { // C(4,2)
		t.Fatalf("C(4,2) = %d subsets, want 6", len(subsets))
	}
	seen := map[[2]int32]bool{}
	for _, s := range subsets {
		if s[0] >= s[1] {
			t.Fatalf("subset %v not ascending", s)
		}
		seen[[2]int32{s[0], s[1]}] = true
	}
	if len(seen) != 6 {
		t.Fatal("duplicate subsets")
	}
	// c > |set| yields nothing.
	count := 0
	forEachCSubset([]int32{1, 2}, 3, func([]int32) { count++ })
	if count != 0 {
		t.Fatalf("c > |set| enumerated %d subsets", count)
	}
}

func TestSubsetGenCost(t *testing.T) {
	if subsetGenCost(3, 5) != 0 {
		t.Fatal("size < c should cost 0")
	}
	if got := subsetGenCost(4, 2); got != 12 { // C(4,2)*2
		t.Fatalf("subsetGenCost(4,2) = %v, want 12", got)
	}
	if subsetGenCost(10000, 6) <= 0 {
		t.Fatal("large cost should be positive (clamped)")
	}
}

func TestOrderPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	r := randomSets(rng, 40, 20, 10)
	c := 2
	want := bruteSSJ(r, c)
	pairs := SizeAware(r, c, Options{})
	scored := OrderPairs(r, pairs)
	if len(scored) != len(want) {
		t.Fatalf("OrderPairs: %d, want %d", len(scored), len(want))
	}
	for i, sp := range scored {
		if want[Pair{A: sp.A, B: sp.B}] != sp.Overlap {
			t.Fatalf("overlap mismatch for %+v", sp)
		}
		if i > 0 && scored[i-1].Overlap < sp.Overlap {
			t.Fatal("not sorted by overlap desc")
		}
	}
}

func TestOnDatasetShapes(t *testing.T) {
	// Small scales keep brute force feasible while exercising realistic
	// degree distributions.
	for _, name := range []string{"DBLP", "Jokes"} {
		r, _ := dataset.ByName(name, 0.02)
		c := 2
		want := bruteSSJ(r, c)
		checkPairs(t, MMJoin(r, c, Options{}), want, name+"/MMJoin")
		checkPairs(t, SizeAware(r, c, Options{}), want, name+"/SizeAware")
		checkPairs(t, SizeAwarePP(r, c, PPOptions{Heavy: true, Light: true}), want, name+"/PP")
		checkPairs(t, SizeAwarePP(r, c, PPOptions{Heavy: true, Prefix: true}), want, name+"/PP-prefix")
	}
}

func TestHighOverlapClusters(t *testing.T) {
	// Near-identical sets: the prefix tree's sharing case.
	var ps []relation.Pair
	for s := int32(0); s < 20; s++ {
		for e := int32(0); e < 15; e++ {
			if (int(s)+int(e))%7 != 0 {
				ps = append(ps, relation.Pair{X: s, Y: e})
			}
		}
	}
	r := relation.FromPairs("clusters", ps)
	for _, c := range []int{2, 5, 10} {
		want := bruteSSJ(r, c)
		checkPairs(t, SizeAwarePP(r, c, PPOptions{Heavy: true, Prefix: true}), want, "clusters-prefix")
		checkPairs(t, MMJoin(r, c, Options{}), want, "clusters-mm")
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := relation.FromPairs("E", nil)
	if got := MMJoin(empty, 2, Options{}); len(got) != 0 {
		t.Fatalf("MMJoin on empty = %v", got)
	}
	if got := SizeAware(empty, 2, Options{}); len(got) != 0 {
		t.Fatalf("SizeAware on empty = %v", got)
	}
	single := relation.FromPairs("one", []relation.Pair{{X: 1, Y: 1}, {X: 1, Y: 2}})
	if got := SizeAwarePP(single, 1, PPOptions{Heavy: true, Prefix: true}); len(got) != 0 {
		t.Fatalf("single set should produce no pairs, got %v", got)
	}
}

func TestNegativeElementValues(t *testing.T) {
	// Element ids may be arbitrary int32 values, including negatives; the
	// prefix tree's depth-capped keys must not collide.
	var ps []relation.Pair
	rng := rand.New(rand.NewSource(77))
	for s := int32(0); s < 25; s++ {
		for e := 0; e < 8; e++ {
			ps = append(ps, relation.Pair{X: s, Y: int32(rng.Intn(20)) - 10})
		}
	}
	r := relation.FromPairs("neg", ps)
	for _, c := range []int{1, 2, 3} {
		want := bruteSSJ(r, c)
		checkPairs(t, SizeAwarePP(r, c, PPOptions{Heavy: true, Prefix: true, MaxPrefixDepth: 2}), want, "neg-prefix-capped")
		checkPairs(t, MMJoin(r, c, Options{}), want, "neg-mm")
		checkPairs(t, SizeAware(r, c, Options{}), want, "neg-sizeaware")
	}
}

func TestCBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	r := randomSets(rng, 30, 20, 8)
	want := bruteSSJ(r, 1)
	checkPairs(t, MMJoin(r, 0, Options{}), want, "c=0 clamps to 1")
}

// bruteKWay enumerates k-way similar tuples by explicit intersection.
func bruteKWay(r *relation.Relation, k, c int) map[string]int32 {
	ix := r.ByX()
	out := map[string]int32{}
	n := ix.NumKeys()
	idx := make([]int, k)
	var rec func(depth, start int, inter []int32)
	rec = func(depth, start int, inter []int32) {
		if depth == k {
			if len(inter) >= c {
				key := ""
				for _, i := range idx {
					key += string(rune(ix.Key(i))) + "|"
				}
				out[key] = int32(len(inter))
			}
			return
		}
		for i := start; i < n; i++ {
			var next []int32
			if depth == 0 {
				next = ix.List(i)
			} else {
				next = relation.IntersectSorted(nil, inter, ix.List(i))
			}
			if len(next) < c {
				continue
			}
			idx[depth] = i
			rec(depth+1, i+1, next)
		}
	}
	rec(0, 0, nil)
	return out
}

func TestKWaySimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	r := randomSets(rng, 30, 15, 10)
	for _, k := range []int{2, 3} {
		for _, c := range []int{1, 2, 3} {
			want := bruteKWay(r, k, c)
			got := KWaySimilar(r, k, c, Options{Workers: 2})
			if len(got) != len(want) {
				t.Fatalf("k=%d c=%d: %d tuples, want %d", k, c, len(got), len(want))
			}
			for i, tp := range got {
				if len(tp.Sets) != k {
					t.Fatalf("tuple arity %d, want %d", len(tp.Sets), k)
				}
				for j := 1; j < k; j++ {
					if tp.Sets[j-1] >= tp.Sets[j] {
						t.Fatalf("tuple %v not strictly ascending", tp.Sets)
					}
				}
				key := ""
				for _, s := range tp.Sets {
					key += string(rune(s)) + "|"
				}
				if want[key] != tp.Overlap {
					t.Fatalf("tuple %v overlap %d, want %d", tp.Sets, tp.Overlap, want[key])
				}
				if i > 0 && got[i-1].Overlap < tp.Overlap {
					t.Fatal("k-way output not sorted by overlap desc")
				}
			}
		}
	}
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	r := randomSets(rng, 60, 25, 12)
	c := 2
	full := MMJoinOrdered(r, c, Options{})
	for _, k := range []int{1, 3, 10, len(full), len(full) + 50} {
		got := TopK(r, c, k, Options{Workers: 3})
		wantLen := k
		if wantLen > len(full) {
			wantLen = len(full)
		}
		if len(got) != wantLen {
			t.Fatalf("k=%d: %d pairs, want %d", k, len(got), wantLen)
		}
		for i, sp := range got {
			// The i-th top pair must have the i-th largest overlap.
			if sp.Overlap != full[i].Overlap {
				t.Fatalf("k=%d: rank %d overlap %d, want %d", k, i, sp.Overlap, full[i].Overlap)
			}
		}
	}
	if got := TopK(r, c, 0, Options{}); got != nil {
		t.Fatal("k=0 should be nil")
	}
}

func TestKWaySimilarTwoMatchesPairwise(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	r := randomSets(rng, 50, 20, 12)
	c := 2
	pairs := MMJoin(r, c, Options{})
	kway := KWaySimilar(r, 2, c, Options{})
	if len(pairs) != len(kway) {
		t.Fatalf("k=2 KWaySimilar %d tuples, pairwise MMJoin %d", len(kway), len(pairs))
	}
}

// Property: all four algorithms agree on random instances for random c.
func TestQuickAllAlgorithmsAgree(t *testing.T) {
	f := func(seed int64, craw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := 1 + int(craw%4)
		r := randomSets(rng, 5+rng.Intn(50), 5+rng.Intn(25), 1+rng.Intn(12))
		want := bruteSSJ(r, c)
		for _, got := range [][]Pair{
			MMJoin(r, c, Options{}),
			SizeAware(r, c, Options{}),
			SizeAwarePP(r, c, PPOptions{Heavy: true, Light: true}),
			SizeAwarePP(r, c, PPOptions{Heavy: true, Prefix: true}),
		} {
			if len(got) != len(want) {
				return false
			}
			for _, p := range got {
				if _, ok := want[p]; !ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: ordered output is a permutation of unordered output sorted by
// overlap.
func TestQuickOrderedConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomSets(rng, 5+rng.Intn(40), 5+rng.Intn(20), 1+rng.Intn(10))
		c := 2
		unordered := MMJoin(r, c, Options{})
		ordered := MMJoinOrdered(r, c, Options{})
		if len(unordered) != len(ordered) {
			return false
		}
		up := make([]Pair, len(unordered))
		copy(up, unordered)
		op := make([]Pair, len(ordered))
		for i, sp := range ordered {
			op[i] = Pair{A: sp.A, B: sp.B}
		}
		less := func(ps []Pair) func(i, j int) bool {
			return func(i, j int) bool {
				if ps[i].A != ps[j].A {
					return ps[i].A < ps[j].A
				}
				return ps[i].B < ps[j].B
			}
		}
		sort.Slice(up, less(up))
		sort.Slice(op, less(op))
		for i := range up {
			if up[i] != op[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
