// Package ssj implements set similarity joins (Section 4 of the paper): find
// all pairs of sets whose intersection has size at least c.
//
// Three algorithms are provided, matching the paper's experimental lineup:
//
//   - SizeAware — the state-of-the-art baseline of Deng, Tao and Li
//     (Algorithm 2): a size boundary splits sets into heavy and light; heavy
//     sets join against everything through the inverted index, light sets
//     enumerate their c-subsets and pair up within subset buckets.
//   - SizeAwarePP (SizeAware++) — the paper's three optimizations layered on
//     SizeAware: the heavy join through the matrix-multiplication 2-path
//     (Light off/on knobs reproduce Figure 8's ablation), light-bucket
//     pairing through a join-project instead of brute-force bucket scans,
//     and prefix-tree materialization that shares inverted-list merges
//     across sets with common prefixes (Example 6).
//   - MMJoin — the counting 2-path of Algorithm 1 filtered to count ≥ c,
//     the paper's output-sensitive method.
//
// Sets are represented as a binary relation R(set, element); all joins here
// are self joins, as in the paper's experiments.
package ssj

import (
	"cmp"
	"container/heap"
	"slices"
	"sync"

	"repro/internal/joinproject"
	"repro/internal/relation"
)

// Pair is an unordered similar-set pair, normalized A < B.
type Pair struct {
	A, B int32
}

// ScoredPair carries the exact overlap, for the ordered variant.
type ScoredPair struct {
	A, B    int32
	Overlap int32
}

// Options configures an SSJ evaluation.
type Options struct {
	// Workers bounds parallelism (≤ 0: all cores).
	Workers int
	// Delta1/Delta2 override the join-project thresholds (0: automatic).
	Delta1, Delta2 int
}

// MMJoin returns all set pairs with |A ∩ B| ≥ c using the counting 2-path
// join of Algorithm 1.
func MMJoin(r *relation.Relation, c int, opt Options) []Pair {
	if c < 1 {
		c = 1
	}
	counts := joinproject.TwoPathMMCounts(r, r, joinproject.Options{
		Delta1: opt.Delta1, Delta2: opt.Delta2, Workers: opt.Workers,
	})
	out := make([]Pair, 0, len(counts)/2)
	for _, pc := range counts {
		if pc.X < pc.Z && pc.Count >= int32(c) {
			out = append(out, Pair{A: pc.X, B: pc.Z})
		}
	}
	return out
}

// MMJoinOrdered returns similar pairs sorted by decreasing overlap. The
// matrix-based join already produces exact counts, so ordering costs one
// sort — the advantage the paper highlights over SizeAware for ordered SSJ.
func MMJoinOrdered(r *relation.Relation, c int, opt Options) []ScoredPair {
	if c < 1 {
		c = 1
	}
	counts := joinproject.TwoPathMMCounts(r, r, joinproject.Options{
		Delta1: opt.Delta1, Delta2: opt.Delta2, Workers: opt.Workers,
	})
	out := make([]ScoredPair, 0, len(counts)/2)
	for _, pc := range counts {
		if pc.X < pc.Z && pc.Count >= int32(c) {
			out = append(out, ScoredPair{A: pc.X, B: pc.Z, Overlap: pc.Count})
		}
	}
	sortScored(out)
	return out
}

func sortScored(out []ScoredPair) {
	slices.SortFunc(out, func(a, b ScoredPair) int {
		if a.Overlap != b.Overlap {
			return cmp.Compare(b.Overlap, a.Overlap)
		}
		if a.A != b.A {
			return cmp.Compare(a.A, b.A)
		}
		return cmp.Compare(a.B, b.B)
	})
}

// family is the indexed family-of-sets view shared by the algorithms.
type family struct {
	ids   []int32           // set ids (x values), ascending
	sets  [][]int32         // sorted element lists, aligned with ids
	inv   map[int32][]int32 // element → positions of sets containing it
	sizes []int
}

func newFamily(r *relation.Relation) *family {
	ix := r.ByX()
	f := &family{
		ids:   make([]int32, ix.NumKeys()),
		sets:  make([][]int32, ix.NumKeys()),
		sizes: make([]int, ix.NumKeys()),
		inv:   make(map[int32][]int32, r.NumY()),
	}
	for i := 0; i < ix.NumKeys(); i++ {
		f.ids[i] = ix.Key(i)
		f.sets[i] = ix.List(i)
		f.sizes[i] = len(f.sets[i])
	}
	iy := r.ByY()
	for i := 0; i < iy.NumKeys(); i++ {
		e := iy.Key(i)
		members := iy.List(i)
		pos := make([]int32, len(members))
		for j, id := range members {
			pos[j] = int32(ix.Pos(id))
		}
		f.inv[e] = pos
	}
	return f
}

// overlap computes |sets[i] ∩ sets[j]| exactly.
func (f *family) overlap(i, j int32) int32 {
	return int32(relation.IntersectCount(f.sets[i], f.sets[j]))
}

// normalize converts position pairs into id pairs with A < B.
func (f *family) normalize(i, j int32) Pair {
	a, b := f.ids[i], f.ids[j]
	if a > b {
		a, b = b, a
	}
	return Pair{A: a, B: b}
}

// TopK returns the k most similar set pairs with overlap ≥ c, in decreasing
// overlap order. Because the matrix-based join produces exact counts while
// streaming, only a bounded min-heap of k candidates is kept — "users see
// the most similar pairs first" without sorting (or even materializing) the
// full result.
func TopK(r *relation.Relation, c, k int, opt Options) []ScoredPair {
	if c < 1 {
		c = 1
	}
	if k <= 0 {
		return nil
	}
	var mu sync.Mutex
	h := make(scoredHeap, 0, k+1)
	joinproject.TwoPathMMVisit(r, r, joinproject.Options{
		Delta1: opt.Delta1, Delta2: opt.Delta2, Workers: opt.Workers,
	}, func(x, z, n int32) {
		if x >= z || n < int32(c) {
			return
		}
		mu.Lock()
		if len(h) < k {
			heap.Push(&h, ScoredPair{A: x, B: z, Overlap: n})
		} else if scoredLess(h[0], ScoredPair{A: x, B: z, Overlap: n}) {
			h[0] = ScoredPair{A: x, B: z, Overlap: n}
			heap.Fix(&h, 0)
		}
		mu.Unlock()
	})
	out := make([]ScoredPair, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = heap.Pop(&h).(ScoredPair)
	}
	return out
}

// scoredLess orders pairs by (overlap, then id) ascending — the heap keeps
// the weakest retained pair at the root.
func scoredLess(a, b ScoredPair) bool {
	if a.Overlap != b.Overlap {
		return a.Overlap < b.Overlap
	}
	if a.A != b.A {
		return a.A > b.A // larger ids are "weaker" so ties break like sortScored
	}
	return a.B > b.B
}

type scoredHeap []ScoredPair

func (h scoredHeap) Len() int            { return len(h) }
func (h scoredHeap) Less(i, j int) bool  { return scoredLess(h[i], h[j]) }
func (h scoredHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *scoredHeap) Push(x interface{}) { *h = append(*h, x.(ScoredPair)) }
func (h *scoredHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Tuple is a k-way similar tuple: k distinct sets whose common intersection
// has size at least c.
type Tuple struct {
	Sets    []int32 // ascending set ids
	Overlap int32   // |∩ of all k sets|
}

// KWaySimilar generalizes the similarity join to k ≥ 2 sets (the Section
// 2.1 generalization "to more than two relations"): it returns all k-tuples
// of distinct sets whose k-way intersection has at least c elements,
// evaluated as a counting star self-join Q★k. Tuples are normalized to
// ascending set ids.
func KWaySimilar(r *relation.Relation, k, c int, opt Options) []Tuple {
	if k < 2 {
		k = 2
	}
	if c < 1 {
		c = 1
	}
	rels := make([]*relation.Relation, k)
	for i := range rels {
		rels[i] = r
	}
	counts := joinproject.StarMMCounts(rels, joinproject.Options{
		Delta1: opt.Delta1, Delta2: opt.Delta2, Workers: opt.Workers,
	})
	var out []Tuple
	for _, tc := range counts {
		if tc.Count < int32(c) {
			continue
		}
		// Keep only strictly ascending tuples: one canonical orientation,
		// all sets distinct.
		ascending := true
		for i := 1; i < len(tc.Xs); i++ {
			if tc.Xs[i-1] >= tc.Xs[i] {
				ascending = false
				break
			}
		}
		if ascending {
			out = append(out, Tuple{Sets: tc.Xs, Overlap: tc.Count})
		}
	}
	slices.SortFunc(out, func(a, b Tuple) int {
		if a.Overlap != b.Overlap {
			return cmp.Compare(b.Overlap, a.Overlap)
		}
		return slices.Compare(a.Sets, b.Sets)
	})
	return out
}

// OrderPairs scores and sorts an unordered result — what SizeAware must do
// for ordered SSJ, since its light path never learns exact overlaps.
func OrderPairs(r *relation.Relation, pairs []Pair) []ScoredPair {
	ix := r.ByX()
	out := make([]ScoredPair, len(pairs))
	for i, p := range pairs {
		a := ix.Lookup(p.A)
		b := ix.Lookup(p.B)
		out[i] = ScoredPair{A: p.A, B: p.B, Overlap: int32(relation.IntersectCount(a, b))}
	}
	sortScored(out)
	return out
}
