package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
	"repro/internal/relation"
)

func randomRel(rng *rand.Rand, name string, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		x := int32(rng.Intn(xdom))
		y := int32(rng.Intn(ydom))
		if rng.Intn(3) == 0 {
			x = int32(rng.Intn(3))
		}
		if rng.Intn(3) == 0 {
			y = int32(rng.Intn(3))
		}
		ps[i] = relation.Pair{X: x, Y: y}
	}
	return relation.FromPairs(name, ps)
}

func brute(r, s *relation.Relation) map[[2]int32]bool {
	out := map[[2]int32]bool{}
	for _, rp := range r.Pairs() {
		for _, sp := range s.Pairs() {
			if rp.Y == sp.Y {
				out[[2]int32{rp.X, sp.X}] = true
			}
		}
	}
	return out
}

func TestViewMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for _, d := range []int{1, 2, 4, 100} {
		r := randomRel(rng, "R", 500, 50, 25)
		s := randomRel(rng, "S", 500, 50, 25)
		want := brute(r, s)
		v := Build(r, s, Options{Delta1: d, Delta2: d})
		got := map[[2]int32]bool{}
		v.Enumerate(func(x, z int32) {
			key := [2]int32{x, z}
			if got[key] {
				t.Fatalf("d=%d: pair %v enumerated twice", d, key)
			}
			got[key] = true
		})
		if len(got) != len(want) {
			t.Fatalf("d=%d: view has %d pairs, want %d", d, len(got), len(want))
		}
		for p := range want {
			if !got[p] {
				t.Fatalf("d=%d: missing %v", d, p)
			}
		}
		if v.Count() != int64(len(want)) {
			t.Fatalf("d=%d: Count=%d, want %d", d, v.Count(), len(want))
		}
	}
}

func TestContains(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	r := randomRel(rng, "R", 400, 40, 20)
	s := randomRel(rng, "S", 400, 40, 20)
	want := brute(r, s)
	v := Build(r, s, Options{Delta1: 2, Delta2: 2})
	// All positives.
	for p := range want {
		if !v.Contains(p[0], p[1]) {
			t.Fatalf("Contains(%v) = false for output pair", p)
		}
	}
	// Random negatives.
	for i := 0; i < 500; i++ {
		x := int32(rng.Intn(60))
		z := int32(rng.Intn(60))
		if _, ok := want[[2]int32{x, z}]; !ok {
			if v.Contains(x, z) {
				t.Fatalf("Contains(%d,%d) = true for non-pair", x, z)
			}
		}
	}
}

func TestFactorizationSavesSpaceOnDense(t *testing.T) {
	// Community-style near-clique data: the heavy part dominates and the
	// factors should be much smaller than the materialized output.
	g := dataset.Community(30000, 8, 5)
	v := Build(g, g, Options{})
	st := v.Stats()
	if st.MaterializedPairs == 0 {
		t.Fatal("empty view on dense data")
	}
	t.Logf("light=%d heavy=%dx%d cols=%d compressed=%dB materialized=%d ratio=%.2f",
		st.LightPairs, st.HeavyRows, st.HeavyZRows, st.HeavyCols,
		st.CompressedBytes, st.MaterializedPairs, st.CompressionRatio())
	if st.CompressionRatio() < 1.0 {
		t.Fatalf("factorized view larger than materialization (ratio %.2f)", st.CompressionRatio())
	}
}

func TestEmptyView(t *testing.T) {
	e := relation.FromPairs("E", nil)
	v := Build(e, e, Options{Delta1: 1, Delta2: 1})
	if v.Count() != 0 {
		t.Fatal("empty view should have no pairs")
	}
	if v.Contains(1, 2) {
		t.Fatal("empty view contains nothing")
	}
}

func TestDisjointRelations(t *testing.T) {
	r := relation.FromPairs("R", []relation.Pair{{X: 1, Y: 1}})
	s := relation.FromPairs("S", []relation.Pair{{X: 2, Y: 99}})
	v := Build(r, s, Options{Delta1: 1, Delta2: 1})
	if v.Count() != 0 {
		t.Fatal("disjoint join should be empty")
	}
}

// Property: the view equals the brute-force join-project for random
// instances and thresholds, and Contains agrees with Enumerate.
func TestQuickViewCorrect(t *testing.T) {
	f := func(seed int64, d1raw, d2raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randomRel(rng, "R", 1+rng.Intn(200), 1+rng.Intn(30), 1+rng.Intn(15))
		s := randomRel(rng, "S", 1+rng.Intn(200), 1+rng.Intn(30), 1+rng.Intn(15))
		v := Build(r, s, Options{Delta1: 1 + int(d1raw%8), Delta2: 1 + int(d2raw%8), Workers: 2})
		want := brute(r, s)
		got := map[[2]int32]bool{}
		v.Enumerate(func(x, z int32) { got[[2]int32{x, z}] = true })
		if len(got) != len(want) {
			return false
		}
		for p := range want {
			if !got[p] || !v.Contains(p[0], p[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
