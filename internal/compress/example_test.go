package compress_test

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/relation"
)

// Build a compressed co-occurrence view and query it without materializing
// the join result.
func ExampleBuild() {
	// Authors × papers.
	r := relation.FromPairs("authorship", []relation.Pair{
		{X: 1, Y: 100}, {X: 2, Y: 100}, // authors 1,2 co-wrote paper 100
		{X: 2, Y: 101}, {X: 3, Y: 101}, // authors 2,3 co-wrote paper 101
	})
	view := compress.Build(r, r, compress.Options{Delta1: 1, Delta2: 1})
	fmt.Println("1-2 co-authored:", view.Contains(1, 2))
	fmt.Println("1-3 co-authored:", view.Contains(1, 3))
	fmt.Println("distinct pairs:", view.Count())
	// Output:
	// 1-2 co-authored: true
	// 1-3 co-authored: false
	// distinct pairs: 7
}
