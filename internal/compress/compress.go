// Package compress implements the compressed join-project view motivated by
// the paper's graph-analytics application (Section 1 and [35]): a succinct
// representation of V(x, z) = π_{x,z}(R(x,y) ⋈ S(z,y)) that can be queried
// without materializing the full result.
//
// The representation falls directly out of Algorithm 1's partition:
//
//   - the light part of the output (pairs with a light-category witness) is
//     stored explicitly, grouped by x with sorted z lists (CSR layout);
//   - the heavy part is NOT materialized: it is kept as the two bit-packed
//     factor matrices M1 (heavy x × heavy y) and M2 (heavy z × heavy y),
//     whose boolean product encodes all heavy-witness pairs.
//
// This realizes the paper's observation that "matrix multiplication is
// space efficient due to its implicit factorization of the output formed by
// heavy values": the factors hold up to Θ(h²) pairs in O(h·|heavy y|/64)
// words. Membership queries cost O(log n + |heavy y|/64); enumeration
// streams the product row by row. Compared with the heuristic compression
// of [35], construction needs no tuning and inherits Algorithm 1's runtime
// guarantee.
package compress

import (
	"sort"
	"sync"

	"repro/internal/joinproject"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/relation"
)

// View is a compressed join-project result.
type View struct {
	// Explicit light pairs: CSR over x.
	xs  []int32 // sorted distinct x values with ≥1 light-category pair
	off []int32
	zs  []int32 // concatenated sorted z lists

	// Heavy factorization: row i of m1 is heavy-x hx[i]'s heavy-y bitset;
	// row j of m2 is heavy-z hz[j]'s heavy-y bitset.
	hx, hz []int32
	hxPos  map[int32]int
	hzPos  map[int32]int
	m1, m2 *matrix.BitMatrix

	lightPairs int64
}

// Options configures view construction.
type Options struct {
	// Delta1/Delta2 override the partition thresholds (0: closed-form).
	Delta1, Delta2 int
	// Workers bounds construction parallelism.
	Workers int
}

// Build constructs the compressed view of π_{x,z}(R ⋈ S).
func Build(r, s *relation.Relation, opt Options) *View {
	d1, d2 := opt.Delta1, opt.Delta2
	if d1 <= 0 || d2 <= 0 {
		h1, h2 := joinproject.HeuristicThresholds(r, s)
		if d1 <= 0 {
			d1 = h1
		}
		if d2 <= 0 {
			d2 = h2
		}
	}
	v := &View{hxPos: map[int32]int{}, hzPos: map[int32]int{}}

	// Heavy y columns (degree in S above Δ1).
	sy := s.ByY()
	colOf := make(map[int32]int)
	for i := 0; i < sy.NumKeys(); i++ {
		if sy.Degree(i) > d1 {
			colOf[sy.Key(i)] = len(colOf)
		}
	}
	rx, sx := r.ByX(), s.ByX()
	// Heavy x rows: heavy degree and at least one heavy-y neighbour.
	for i := 0; i < rx.NumKeys(); i++ {
		if rx.Degree(i) <= d2 {
			continue
		}
		for _, y := range rx.List(i) {
			if _, ok := colOf[y]; ok {
				v.hxPos[rx.Key(i)] = len(v.hx)
				v.hx = append(v.hx, rx.Key(i))
				break
			}
		}
	}
	for i := 0; i < sx.NumKeys(); i++ {
		if sx.Degree(i) <= d2 {
			continue
		}
		for _, y := range sx.List(i) {
			if _, ok := colOf[y]; ok {
				v.hzPos[sx.Key(i)] = len(v.hz)
				v.hz = append(v.hz, sx.Key(i))
				break
			}
		}
	}
	v.m1 = matrix.NewBitMatrix(len(v.hx), len(colOf))
	for i, x := range v.hx {
		for _, y := range rx.Lookup(x) {
			if c, ok := colOf[y]; ok {
				v.m1.Set(i, c)
			}
		}
	}
	v.m2 = matrix.NewBitMatrix(len(v.hz), len(colOf))
	for j, z := range v.hz {
		for _, y := range sx.Lookup(z) {
			if c, ok := colOf[y]; ok {
				v.m2.Set(j, c)
			}
		}
	}

	// Explicit part: pairs with at least one light-category witness.
	byX := map[int32][]int32{}
	var mu sync.Mutex
	lightOnly(r, s, d1, d2, opt.Workers, func(x, z int32) {
		mu.Lock()
		byX[x] = append(byX[x], z)
		mu.Unlock()
	})
	xs := make([]int32, 0, len(byX))
	for x := range byX {
		xs = append(xs, x)
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	v.off = append(v.off, 0)
	for _, x := range xs {
		zl := byX[x]
		sort.Slice(zl, func(a, b int) bool { return zl[a] < zl[b] })
		v.xs = append(v.xs, x)
		v.zs = append(v.zs, zl...)
		v.off = append(v.off, int32(len(v.zs)))
		v.lightPairs += int64(len(zl))
	}
	return v
}

// lightOnly streams the distinct pairs that have at least one
// light-category witness (categories 1–3 of Algorithm 1): light y, or
// light x, or light z under a heavy x and heavy y. emit may be called
// concurrently.
func lightOnly(r, s *relation.Relation, d1, d2, workers int, emit func(x, z int32)) {
	rx, sx, sy := r.ByX(), s.ByX(), s.ByY()
	// Positional lists for stamping.
	posByY := make([][]int32, sy.NumKeys())
	lightByY := make([][]int32, sy.NumKeys())
	for i := 0; i < sy.NumKeys(); i++ {
		list := sy.List(i)
		pos := make([]int32, len(list))
		for j, z := range list {
			pos[j] = int32(sx.Pos(z))
		}
		posByY[i] = pos
		if sy.Degree(i) > d1 {
			var light []int32
			for _, zp := range pos {
				if sx.Degree(int(zp)) <= d2 {
					light = append(light, zp)
				}
			}
			lightByY[i] = light
		}
	}
	par.ForChunks(rx.NumKeys(), workers, func(lo, hi int) {
		stamp := make([]int32, sx.NumKeys())
		for i := lo; i < hi; i++ {
			x := rx.Key(i)
			epoch := int32(i + 1)
			xHeavy := rx.Degree(i) > d2
			for _, y := range rx.List(i) {
				yp := sy.Pos(y)
				if yp < 0 {
					continue
				}
				var cand []int32
				if sy.Degree(yp) <= d1 || !xHeavy {
					cand = posByY[yp]
				} else {
					cand = lightByY[yp]
				}
				for _, zp := range cand {
					if stamp[zp] != epoch {
						stamp[zp] = epoch
						emit(x, sx.Key(int(zp)))
					}
				}
			}
		}
	})
}

// lightList returns the explicit z list for x, or nil.
func (v *View) lightList(x int32) []int32 {
	i := sort.Search(len(v.xs), func(i int) bool { return v.xs[i] >= x })
	if i < len(v.xs) && v.xs[i] == x {
		return v.zs[v.off[i]:v.off[i+1]]
	}
	return nil
}

// Contains reports whether (x, z) is in the view — i.e. whether x and z
// share at least one y witness.
func (v *View) Contains(x, z int32) bool {
	list := v.lightList(x)
	j := sort.Search(len(list), func(i int) bool { return list[i] >= z })
	if j < len(list) && list[j] == z {
		return true
	}
	i, ok := v.hxPos[x]
	if !ok {
		return false
	}
	k, ok := v.hzPos[z]
	if !ok {
		return false
	}
	return v.m1.Row(i).Intersects(v.m2.Row(k))
}

// Enumerate streams every distinct pair of the view. Pairs present in both
// the explicit part and the factorization are emitted once.
func (v *View) Enumerate(emit func(x, z int32)) {
	for i, x := range v.xs {
		for _, z := range v.zs[v.off[i]:v.off[i+1]] {
			emit(x, z)
		}
	}
	for i, x := range v.hx {
		light := v.lightList(x)
		row := v.m1.Row(i)
		for j, z := range v.hz {
			if !row.Intersects(v.m2.Row(j)) {
				continue
			}
			k := sort.Search(len(light), func(a int) bool { return light[a] >= z })
			if k < len(light) && light[k] == z {
				continue // already emitted from the explicit part
			}
			emit(x, z)
		}
	}
}

// Count returns the number of distinct pairs in the view.
func (v *View) Count() int64 {
	var n int64
	v.Enumerate(func(_, _ int32) { n++ })
	return n
}

// Stats reports the space accounting of the compressed representation.
type Stats struct {
	LightPairs        int64 // explicitly stored pairs
	HeavyRows         int   // rows of M1
	HeavyCols         int   // heavy y columns
	HeavyZRows        int   // rows of M2
	CompressedBytes   int64
	MaterializedPairs int64 // what full materialization would store
}

// Stats computes the view's space statistics. MaterializedPairs enumerates
// the view, so it costs one full enumeration.
func (v *View) Stats() Stats {
	st := Stats{
		LightPairs: v.lightPairs,
		HeavyRows:  v.m1.Rows,
		HeavyCols:  v.m1.Cols,
		HeavyZRows: v.m2.Rows,
	}
	rowWords := int64((v.m1.Cols + 63) / 64)
	st.CompressedBytes = 4*int64(len(v.zs)+len(v.xs)+len(v.off)) +
		8*rowWords*int64(v.m1.Rows+v.m2.Rows) +
		4*int64(len(v.hx)+len(v.hz))
	st.MaterializedPairs = v.Count()
	return st
}

// CompressionRatio returns materialized bytes (8 per pair) over compressed
// bytes — > 1 means the factorization saves space.
func (s Stats) CompressionRatio() float64 {
	if s.CompressedBytes == 0 {
		return 0
	}
	return float64(8*s.MaterializedPairs) / float64(s.CompressedBytes)
}
