package core

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/relation"
	"repro/internal/wal"
)

var replTortureSchedules = flag.Int("repl-torture.schedules", 200,
	"number of seeded replication torture schedules to run")

// chaosTransport is a fault-injecting http.RoundTripper for the follower's
// poll loop: it drops whole requests and truncates response bodies, both
// from a seeded rng, until healed.
type chaosTransport struct {
	inner  http.RoundTripper
	mu     sync.Mutex
	rng    *rand.Rand
	failP  float64
	truncP float64
	healed bool
}

func (c *chaosTransport) heal() {
	c.mu.Lock()
	c.healed = true
	c.mu.Unlock()
}

func (c *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.mu.Lock()
	fail := !c.healed && c.rng.Float64() < c.failP
	trunc := !c.healed && c.rng.Float64() < c.truncP
	c.mu.Unlock()
	if fail {
		return nil, fmt.Errorf("chaos: injected connection failure to %s", req.URL.Path)
	}
	resp, err := c.inner.RoundTrip(req)
	if err != nil || !trunc {
		return resp, err
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if len(body) > 0 {
		c.mu.Lock()
		n := c.rng.Intn(len(body))
		c.mu.Unlock()
		body = body[:n]
	}
	// A "clean" truncation: Content-Length matches the cut body, so the
	// client reads it without a transport error and the stream decoder (or
	// snapshot CRC) must catch the damage itself.
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	resp.Header.Set("Content-Length", strconv.Itoa(len(body)))
	return resp, nil
}

// chain3Across is π_{a,d} R(a,b) ⋈ S(b,c) ⋈ U(c,d) by nested loops.
func (o *oracleState) chain3Across(r, s, u string) [][]int64 {
	seen := map[[2]int64]bool{}
	for rp := range o.rels[r] {
		for sp := range o.rels[s] {
			if rp.Y != sp.X {
				continue
			}
			for up := range o.rels[u] {
				if sp.Y == up.X {
					seen[[2]int64{int64(rp.X), int64(up.Y)}] = true
				}
			}
		}
	}
	return setToTuples(seen)
}

// star3 is π_{a,b,c} R(a,y) ⋈ S(b,y) ⋈ U(c,y) by nested loops, sorted
// lexicographically to match sortedViewTuples.
func (o *oracleState) star3(r, s, u string) [][]int64 {
	seen := map[[3]int64]bool{}
	for rp := range o.rels[r] {
		for sp := range o.rels[s] {
			if rp.Y != sp.Y {
				continue
			}
			for up := range o.rels[u] {
				if up.Y == rp.Y {
					seen[[3]int64{int64(rp.X), int64(sp.X), int64(up.X)}] = true
				}
			}
		}
	}
	out := make([][]int64, 0, len(seen))
	for t := range seen {
		out = append(out, []int64{t[0], t[1], t[2]})
	}
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// TestReplTortureSchedules drives seeded schedules of mutation load on a
// live primary while a follower tails it through injected faults on both
// sides: scripted and random disk faults on the primary's WAL, dropped and
// truncated replication responses on the wire, history truncation under the
// follower's feet (checkpoints), primary crash-restarts, and follower
// kill-restarts. After healing, the follower's catalog and all three view
// shapes (2-chain, 3-chain, 3-star) must equal the primary's exactly and
// agree with a nested-loop oracle, every view must still be in incremental
// mode (no refresh fallback), and reported lag must be zero.
func TestReplTortureSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite is not -short")
	}
	n := *replTortureSchedules
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("schedule%03d", i), func(t *testing.T) {
			replTortureSchedule(t, int64(2000+i))
		})
	}
}

func replTortureSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	popts := PersistOptions{
		Fsync: wal.FsyncAlways, FS: in, RetryBackoff: 20 * time.Microsecond,
		SegmentBytes: 1 << 10, // rotate often so checkpoints truncate history
	}

	primary := NewEngine()
	if err := primary.Open(dir, popts); err != nil {
		t.Fatal(err)
	}

	// Base state and all three view shapes land before any fault is armed.
	const dom = 8
	rels := []string{"R", "S", "T"}
	for _, rel := range rels {
		if _, err := primary.Register(rel, randPairs(rng, 3+rng.Intn(5), dom)); err != nil {
			t.Fatal(err)
		}
	}
	views := []struct{ name, def string }{
		{"vp", "VP(x, z) :- R(x, y), S(y, z)"},
		{"vc", "VC(a, d) :- R(a, b), S(b, c), T(c, d)"},
		{"vs", "VS(a, b, c) :- R(a, y), S(b, y), T(c, y)"},
	}
	for _, v := range views {
		if _, err := primary.RegisterView(t.Context(), v.name, v.def); err != nil {
			t.Fatal(err)
		}
	}

	// The follower reaches whichever engine currently owns the data dir
	// through this proxy; `down` simulates the primary being unreachable
	// mid-restart.
	var cur atomic.Pointer[Engine]
	var down atomic.Bool
	cur.Store(primary)
	var abandoned []*Engine // crash-abandoned engines, closed at teardown
	defer func() {
		cur.Load().Close()
		for _, e := range abandoned {
			e.Close()
		}
	}()
	proxy := func(pick func(*Engine) http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			if down.Load() {
				http.Error(w, "primary restarting", http.StatusBadGateway)
				return
			}
			pick(cur.Load())(w, r)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /repl/segments", proxy(func(e *Engine) http.HandlerFunc { return e.ReplSource().ServeSegments }))
	mux.HandleFunc("GET /repl/snapshot", proxy(func(e *Engine) http.HandlerFunc { return e.ReplSource().ServeSnapshot }))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	chaos := &chaosTransport{
		inner:  http.DefaultTransport,
		rng:    rand.New(rand.NewSource(seed ^ 0x5ca1e)),
		failP:  0.10 + rng.Float64()*0.15,
		truncP: 0.10 + rng.Float64()*0.15,
	}
	startFollower := func() (*Engine, *Replica) {
		f := NewEngine()
		rep, err := f.StartReplica(ts.URL, ReplicaOptions{
			PollInterval: 2 * time.Millisecond,
			MaxBackoff:   10 * time.Millisecond,
			HTTP:         &http.Client{Transport: chaos, Timeout: 2 * time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		return f, rep
	}
	follower, rep := startFollower()
	defer func() { rep.Stop() }()

	healPrimary := func() {
		in.Heal()
		if deg, _, _ := cur.Load().Degraded(); deg {
			if err := cur.Load().Resume(); err != nil {
				t.Fatalf("resume on healed disk: %v", err)
			}
		}
	}

	crashes, followerKills := 0, 0
	steps := 10 + rng.Intn(12)
	for step := 0; step < steps; step++ {
		// Arm this step's primary-side disk fault, if any.
		switch r := rng.Float64(); {
		case r < 0.15:
			errs := []error{faultfs.ErrInjectedENOSPC, faultfs.ErrInjectedEIO}
			in.Script(faultfs.Rule{
				Op:         faultfs.OpWrite,
				Err:        errs[rng.Intn(len(errs))],
				Times:      1 + rng.Intn(3),
				ShortWrite: rng.Intn(3) == 0,
			})
		case r < 0.21:
			in.SetRandom(rng.Int63(), faultfs.Probs{Write: 0.2, Sync: 0.15})
		case r < 0.29:
			in.Heal()
		}

		// Seeded mutation load. Rejected mutations (fault or degraded) are
		// simply absent from the primary; the final comparison is against
		// the primary's own live state, so no ack bookkeeping is needed.
		rel := rels[rng.Intn(len(rels))]
		var ins, del []relation.Pair
		if rng.Intn(4) > 0 {
			ins = randPairs(rng, 1+rng.Intn(3), dom)
		}
		if rng.Intn(3) == 0 {
			del = pickKnown(rng, cur.Load(), t, rel)
		}
		_, _ = cur.Load().Mutate(rel, ins, del)

		// Degraded primaries must keep shipping history; heal sometimes.
		if deg, _, _ := cur.Load().Degraded(); deg && rng.Intn(2) == 0 {
			healPrimary()
		}

		// Occasional checkpoint on a healed disk: truncates shipped WAL
		// history and forces lagging followers through the 410 re-bootstrap
		// path.
		if rng.Intn(5) == 0 {
			healPrimary()
			if _, err := cur.Load().Checkpoint(); err != nil {
				t.Fatalf("checkpoint on healed disk: %v", err)
			}
		}

		// Primary kill-point: abandon the engine without closing it (its WAL
		// file handle stays open, as after a real kill -9) and recover a
		// fresh engine from the same dir. Crashes land between mutations, so
		// with FsyncAlways the recovered state is exactly the acked state.
		if crashes < 2 && rng.Float64() < 0.12 {
			crashes++
			down.Store(true)
			abandoned = append(abandoned, cur.Load())
			in.Heal()
			next := NewEngine()
			if err := next.Open(dir, popts); err != nil {
				t.Fatalf("primary recovery after crash %d: %v", crashes, err)
			}
			cur.Store(next)
			down.Store(false)
		}

		// Follower kill-point: stop the replica mid-tail and start a fresh
		// follower from nothing; it must re-bootstrap and converge.
		if followerKills < 1 && rng.Float64() < 0.10 {
			followerKills++
			rep.Stop()
			follower, rep = startFollower()
		}
	}

	// Heal everything and settle with a couple of final acked mutations.
	chaos.heal()
	healPrimary()
	final := cur.Load()
	for _, rel := range rels {
		if _, err := final.Mutate(rel, randPairs(rng, 2, dom), nil); err != nil {
			t.Fatalf("post-heal mutate %s: %v", rel, err)
		}
	}

	st := waitConverged(t, rep, final)
	if st.LagRecords != 0 {
		t.Fatalf("converged lag_records = %d", st.LagRecords)
	}

	// Catalog equality, and a nested-loop oracle over the primary's live
	// relations agrees with both engines' maintained views.
	oracle := newOracle()
	for _, rel := range rels {
		pr, ok := final.Catalog().Get(rel)
		if !ok {
			t.Fatalf("primary lost %q", rel)
		}
		fr, ok := follower.Catalog().Get(rel)
		if !ok {
			t.Fatalf("follower missing %q", rel)
		}
		if !reflect.DeepEqual(pr.Pairs(), fr.Pairs()) {
			t.Fatalf("%q diverged: primary %d pairs, follower %d", rel, pr.Size(), fr.Size())
		}
		oracle.register(rel, pr.Pairs())
	}
	want := map[string][][]int64{
		"vp": oracle.twoPath("R", "S"),
		"vc": oracle.chain3Across("R", "S", "T"),
		"vs": oracle.star3("R", "S", "T"),
	}
	for _, v := range views {
		pv := sortedViewTuples(t, final, v.name)
		fv := sortedViewTuples(t, follower, v.name)
		if !reflect.DeepEqual(pv, want[v.name]) {
			t.Fatalf("%s: primary has %d tuples, oracle %d", v.name, len(pv), len(want[v.name]))
		}
		if !reflect.DeepEqual(fv, pv) {
			t.Fatalf("%s: follower diverged (%d tuples vs %d)", v.name, len(fv), len(pv))
		}
		// Freshness stayed incremental on both sides: no refresh fallback.
		for engName, e := range map[string]*Engine{"primary": final, "follower": follower} {
			view, ok := e.View(v.name)
			if !ok {
				t.Fatalf("%s missing view %s", engName, v.name)
			}
			if view.Mode() != "incremental" {
				t.Fatalf("%s view %s mode %q, want incremental", engName, v.name, view.Mode())
			}
		}
	}
}
