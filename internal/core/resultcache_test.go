package core

import (
	"context"
	"reflect"
	"sort"
	"testing"

	"repro/internal/relation"
)

// TestQuerySortedCache pins the pagination result cache: repeats over an
// unchanged catalog are served from cache (no re-sort), a mutation of a
// referenced relation invalidates exactly that query's entry, and mutations
// of unrelated relations leave it hitting.
func TestQuerySortedCache(t *testing.T) {
	e := NewEngine()
	if _, err := e.Register("R", []relation.Pair{{X: 1, Y: 10}, {X: 2, Y: 10}, {X: 3, Y: 20}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("S", []relation.Pair{{X: 10, Y: 5}, {X: 20, Y: 6}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("T", []relation.Pair{{X: 1, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	const q = "Q(x, z) :- R(x, y), S(y, z)"
	ctx := context.Background()

	r1, err := e.QuerySorted(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cached {
		t.Fatal("first evaluation reported cached")
	}
	if !sort.SliceIsSorted(r1.Tuples, func(i, j int) bool {
		for k := range r1.Tuples[i] {
			if r1.Tuples[i][k] != r1.Tuples[j][k] {
				return r1.Tuples[i][k] < r1.Tuples[j][k]
			}
		}
		return false
	}) {
		t.Fatal("result not sorted")
	}

	r2, err := e.QuerySorted(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Fatal("repeat over unchanged catalog missed the result cache")
	}
	if !reflect.DeepEqual(r1.Tuples, r2.Tuples) {
		t.Fatal("cached result differs")
	}

	// Mutating an unrelated relation must not invalidate.
	if _, err := e.Mutate("T", []relation.Pair{{X: 2, Y: 2}}, nil); err != nil {
		t.Fatal(err)
	}
	r3, err := e.QuerySorted(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !r3.Cached {
		t.Fatal("mutation of unrelated relation evicted the cached result")
	}

	// Mutating a referenced relation must invalidate — and the fresh result
	// must reflect the mutation.
	if _, err := e.Mutate("R", []relation.Pair{{X: 4, Y: 20}}, nil); err != nil {
		t.Fatal(err)
	}
	r4, err := e.QuerySorted(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if r4.Cached {
		t.Fatal("stale result served after mutating a referenced relation")
	}
	found := false
	for _, tup := range r4.Tuples {
		if tup[0] == 4 && tup[1] == 6 {
			found = true
		}
	}
	if !found {
		t.Fatalf("fresh result misses the inserted tuple's join output: %v", r4.Tuples)
	}

	// The canonical text is the key: a syntactic variant hits the same entry.
	r5, err := e.QuerySorted(ctx, "Q(x,z):-R(x,y),S(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if !r5.Cached {
		t.Fatal("canonicalized variant missed the cache")
	}

	hits, misses, size := e.Catalog().ResultCacheStats()
	if hits != 3 || misses != 2 || size == 0 {
		t.Fatalf("result cache stats hits=%d misses=%d size=%d, want 3/2/>0", hits, misses, size)
	}
}
