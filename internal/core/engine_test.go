package core

import (
	"context"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/bsi"
	"repro/internal/dataset"
	"repro/internal/relation"
)

func randomRel(rng *rand.Rand, name string, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		ps[i] = relation.Pair{X: int32(rng.Intn(xdom)), Y: int32(rng.Intn(ydom))}
	}
	return relation.FromPairs(name, ps)
}

func brute(r, s *relation.Relation) map[[2]int32]int32 {
	out := map[[2]int32]int32{}
	for _, rp := range r.Pairs() {
		for _, sp := range s.Pairs() {
			if rp.Y == sp.Y {
				out[[2]int32{rp.X, sp.X}]++
			}
		}
	}
	return out
}

func TestStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	r := randomRel(rng, "R", 800, 60, 30)
	s := randomRel(rng, "S", 800, 60, 30)
	want := brute(r, s)
	for _, strat := range []Strategy{Auto, ForceMM, ForceWCOJ, ForceNonMM} {
		eng := NewEngine(WithStrategy(strat), WithWorkers(2))
		got, plan := eng.JoinProject(r, s)
		if len(got) != len(want) {
			t.Fatalf("%v (plan %s): %d pairs, want %d", strat, plan.Strategy, len(got), len(want))
		}
		for _, p := range got {
			if _, ok := want[p]; !ok {
				t.Fatalf("%v: spurious pair %v", strat, p)
			}
		}
		counts, _ := eng.JoinProjectCounts(r, s)
		if len(counts) != len(want) {
			t.Fatalf("%v counts: %d pairs, want %d", strat, len(counts), len(want))
		}
		for _, pc := range counts {
			if want[[2]int32{pc.X, pc.Z}] != pc.Count {
				t.Fatalf("%v: pair (%d,%d) count %d, want %d", strat, pc.X, pc.Z, pc.Count, want[[2]int32{pc.X, pc.Z}])
			}
		}
	}
}

func TestAutoPlanChoices(t *testing.T) {
	sparse, _ := dataset.ByName("RoadNet", 0.3)
	eng := NewEngine()
	if plan := eng.Explain(sparse, sparse); plan.Strategy != "wcoj" {
		t.Fatalf("sparse plan = %s, want wcoj", plan.Strategy)
	}
	dense, _ := dataset.ByName("Image", 0.4)
	if plan := eng.Explain(dense, dense); plan.Strategy != "mm" {
		t.Fatalf("dense plan = %s, want mm", plan.Strategy)
	}
}

func TestThresholdOverride(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	r := randomRel(rng, "R", 400, 40, 20)
	eng := NewEngine(WithStrategy(ForceMM), WithThresholds(3, 5))
	got, plan := eng.JoinProject(r, r)
	if plan.Delta1 != 3 || plan.Delta2 != 5 {
		t.Fatalf("plan thresholds (%d,%d), want (3,5)", plan.Delta1, plan.Delta2)
	}
	if len(got) != len(brute(r, r)) {
		t.Fatal("override changed the result")
	}
}

func TestStarJoinStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	rels := []*relation.Relation{
		randomRel(rng, "R1", 300, 20, 12),
		randomRel(rng, "R2", 300, 20, 12),
		randomRel(rng, "R3", 300, 20, 12),
	}
	var base map[string]bool
	for _, strat := range []Strategy{Auto, ForceMM, ForceNonMM} {
		eng := NewEngine(WithStrategy(strat), WithWorkers(2))
		got, _ := eng.StarJoin(rels)
		set := map[string]bool{}
		for _, xs := range got {
			key := ""
			for _, v := range xs {
				key += string(rune(v)) + ","
			}
			set[key] = true
		}
		if base == nil {
			base = set
			continue
		}
		if len(set) != len(base) {
			t.Fatalf("%v star: %d tuples, want %d", strat, len(set), len(base))
		}
	}
}

func TestSimilarAndContainedSets(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	r := randomRel(rng, "R", 300, 40, 20)
	mm := NewEngine()
	comb := NewEngine(WithStrategy(ForceNonMM))
	simMM := mm.SimilarSets(r, 2)
	simComb := comb.SimilarSets(r, 2)
	if len(simMM) != len(simComb) {
		t.Fatalf("SSJ mismatch: mm=%d comb=%d", len(simMM), len(simComb))
	}
	ordered := mm.SimilarSetsOrdered(r, 2)
	if len(ordered) != len(simMM) {
		t.Fatalf("ordered SSJ size %d, want %d", len(ordered), len(simMM))
	}
	scjMM := mm.ContainedSets(r)
	scjComb := comb.ContainedSets(r)
	if len(scjMM) != len(scjComb) {
		t.Fatalf("SCJ mismatch: mm=%d comb=%d", len(scjMM), len(scjComb))
	}
}

func TestIntersectBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	r := randomRel(rng, "R", 400, 50, 25)
	s := randomRel(rng, "S", 400, 50, 25)
	queries := bsi.RandomWorkload(r, s, 100, 5)
	for _, strat := range []Strategy{Auto, ForceNonMM} {
		eng := NewEngine(WithStrategy(strat))
		got := eng.IntersectBatch(r, s, queries)
		for i, q := range queries {
			if got[i] != bsi.AnswerSingle(r, s, q) {
				t.Fatalf("%v: query %v wrong", strat, q)
			}
		}
	}
}

func TestPlanString(t *testing.T) {
	cases := []Plan{
		{Strategy: "mm", Delta1: 3, Delta2: 4, EstOut: 100, OutJoin: 1000},
		{Strategy: "wcoj", OutJoin: 50},
		{Strategy: "nonmm", Delta1: 1, Delta2: 1},
	}
	for _, p := range cases {
		if p.String() == "" {
			t.Fatalf("empty String for %+v", p)
		}
	}
	if got := (Plan{Strategy: "wcoj", OutJoin: 5}).String(); got != "plan=wcoj |OUT⋈|=5 (≤ 20·N fallback)" {
		t.Fatalf("wcoj plan string = %q", got)
	}
}

func TestStrategyString(t *testing.T) {
	cases := map[Strategy]string{Auto: "auto", ForceMM: "mm", ForceWCOJ: "wcoj", ForceNonMM: "nonmm", Strategy(9): "strategy(9)"}
	for s, want := range cases {
		if s.String() != want {
			t.Fatalf("%d.String() = %s, want %s", int(s), s.String(), want)
		}
	}
}

func TestOptimizerAccessor(t *testing.T) {
	if NewEngine().Optimizer() == nil {
		t.Fatal("engine should expose its optimizer")
	}
}

func TestEngineCompressView(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	r := randomRel(rng, "R", 400, 40, 20)
	eng := NewEngine()
	v := eng.CompressView(r, r)
	want := brute(r, r)
	if v.Count() != int64(len(want)) {
		t.Fatalf("view count %d, want %d", v.Count(), len(want))
	}
	for p := range want {
		if !v.Contains(p[0], p[1]) {
			t.Fatalf("view missing %v", p)
		}
	}
}

func TestEnginePathAndSnowflake(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	r1 := randomRel(rng, "R1", 200, 20, 20)
	r2 := randomRel(rng, "R2", 200, 20, 20)
	r3 := randomRel(rng, "R3", 200, 20, 20)
	eng := NewEngine(WithWorkers(2))
	path, err := eng.PathProject([]*relation.Relation{r1, r2, r3})
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: every endpoint pair must be connected through some witness.
	if len(path) == 0 {
		t.Skip("random chain disconnected; acyclic package tests cover correctness")
	}
	snow, err := eng.SnowflakeProject([][]*relation.Relation{{r1}, {r2}})
	if err != nil {
		t.Fatal(err)
	}
	_ = snow
	if _, err := eng.PathProject(nil); err == nil {
		t.Fatal("empty path should error")
	}
}

func TestSketchRefinedPlanning(t *testing.T) {
	dense, _ := dataset.ByName("Image", 0.4)
	eng := NewEngine(WithSketchRefinement(1 << 30))
	plan := eng.Explain(dense, dense)
	if plan.Strategy != "mm" {
		t.Fatalf("sketch-refined plan = %s, want mm", plan.Strategy)
	}
	out, _ := eng.JoinProject(dense, dense)
	base, _ := NewEngine().JoinProject(dense, dense)
	if len(out) != len(base) {
		t.Fatalf("sketch refinement changed the result: %d vs %d", len(out), len(base))
	}
}

func TestEngineGroupByAndTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	r := randomRel(rng, "R", 400, 40, 20)
	eng := NewEngine(WithWorkers(2))
	groups := eng.GroupByCount(r, r)
	want := brute(r, r)
	wantDistinct := map[int32]int64{}
	for p := range want {
		wantDistinct[p[0]]++
	}
	if len(groups) != len(wantDistinct) {
		t.Fatalf("%d groups, want %d", len(groups), len(wantDistinct))
	}
	for _, g := range groups {
		if g.Distinct != wantDistinct[g.X] {
			t.Fatalf("group %d: distinct %d, want %d", g.X, g.Distinct, wantDistinct[g.X])
		}
	}
	top := eng.TopSimilarSets(r, 1, 5)
	if len(top) == 0 || len(top) > 5 {
		t.Fatalf("TopSimilarSets returned %d pairs", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i-1].Overlap < top[i].Overlap {
			t.Fatal("top pairs not descending")
		}
	}
}

func TestJoinProjectVisit(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	r := randomRel(rng, "R", 500, 50, 25)
	want := brute(r, r)
	var mu sync.Mutex
	got := map[[2]int32]int32{}
	eng := NewEngine(WithWorkers(4))
	plan := eng.JoinProjectVisit(r, r, func(x, z, n int32) {
		mu.Lock()
		got[[2]int32{x, z}] += n
		mu.Unlock()
	})
	if plan.Strategy == "" {
		t.Fatal("missing plan")
	}
	if len(got) != len(want) {
		t.Fatalf("visit saw %d pairs, want %d", len(got), len(want))
	}
	for p, c := range want {
		if got[p] != c {
			t.Fatalf("pair %v count %d, want %d", p, got[p], c)
		}
	}
}

func TestEngineKWaySimilar(t *testing.T) {
	rng := rand.New(rand.NewSource(98))
	r := randomRel(rng, "R", 250, 25, 15)
	eng := NewEngine()
	tuples := eng.KWaySimilarSets(r, 3, 2)
	for _, tp := range tuples {
		if len(tp.Sets) != 3 || tp.Overlap < 2 {
			t.Fatalf("bad k-way tuple %+v", tp)
		}
	}
}

// TestEngineViewsAndMutations covers the engine façade of the view
// subsystem: register, serve, maintain under Mutate, explain, list, drop —
// and that mutations keep plan caching per-relation.
func TestEngineViewsAndMutations(t *testing.T) {
	eng := NewEngine(WithWorkers(2))
	pairs := func(ps ...[2]int32) []relation.Pair {
		out := make([]relation.Pair, len(ps))
		for i, p := range ps {
			out[i] = relation.Pair{X: p[0], Y: p[1]}
		}
		return out
	}
	if _, err := eng.Register("R", pairs([2]int32{1, 10}, [2]int32{2, 10})); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Register("S", pairs([2]int32{10, 5})); err != nil {
		t.Fatal(err)
	}
	v, err := eng.RegisterView(context.Background(), "vp", "V(x, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	_, tuples, _, err := v.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 {
		t.Fatalf("initial view rows = %d, want 2", len(tuples))
	}

	// Mutations patch the view.
	if _, err := eng.Mutate("S", pairs([2]int32{10, 6}), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Mutate("R", nil, pairs([2]int32{2, 10})); err != nil {
		t.Fatal(err)
	}
	_, tuples, fresh, err := v.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(tuples) != 2 { // (1,5), (1,6)
		t.Fatalf("maintained view rows = %v", tuples)
	}
	if fresh.Mode != "incremental" || fresh.Stale {
		t.Fatalf("freshness = %+v", fresh)
	}
	if plan := v.MaintenancePlan().String(); !strings.Contains(plan, "deltafold") {
		t.Fatalf("maintenance plan missing deltafold:\n%s", plan)
	}

	if infos := eng.Views(); len(infos) != 1 || infos[0].Name != "vp" {
		t.Fatalf("Views() = %+v", infos)
	}
	if _, ok := eng.View("vp"); !ok {
		t.Fatal("View lookup failed")
	}

	// The query path agrees with the view store.
	res, err := eng.Query("V(x, z) :- R(x, y), S(y, z)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tuples) != len(tuples) {
		t.Fatalf("query rows %d != view rows %d", len(res.Tuples), len(tuples))
	}

	if ok, err := eng.DropView("vp"); !ok || err != nil {
		t.Fatalf("DropView: ok=%v err=%v", ok, err)
	}
	if ok, err := eng.DropView("vp"); ok || err != nil {
		t.Fatal("DropView semantics")
	}
}
