package core

import "repro/internal/obs"

// Engine-level metrics. Query counters live here (not in the server) so
// every evaluation path — HTTP, embedded API, view refresh — is counted;
// durability counters are instrumented at the state transitions in
// persist.go. All engines in a process share these series.
var (
	queryTotal = obs.Default().CounterVec(
		"joinmm_query_total",
		"Query evaluations by outcome (ok or error; errors include timeouts and budget trips).",
		"outcome")
	queryOK     = queryTotal.With("ok")
	queryErrors = queryTotal.With("error")

	querySeconds = obs.Default().Histogram(
		"joinmm_query_seconds",
		"End-to-end query evaluation latency (prepare + execute) in seconds.", nil)
	queryPrepareSeconds = obs.Default().Histogram(
		"joinmm_query_prepare_seconds",
		"Query parse+plan (including plan-cache lookup) latency in seconds.", nil)
	queryRowsTotal = obs.Default().Counter(
		"joinmm_query_rows_total",
		"Output tuples returned by successful queries.")
	queryBudgetBytes = obs.Default().Counter(
		"joinmm_query_budget_bytes_total",
		"Bytes charged against per-query materialization budgets.")

	checkpointTotal = obs.Default().Counter(
		"joinmm_checkpoint_total",
		"Checkpoints completed successfully.")
	checkpointFailures = obs.Default().Counter(
		"joinmm_checkpoint_failures_total",
		"Checkpoint attempts that failed.")
	checkpointSeconds = obs.Default().Histogram(
		"joinmm_checkpoint_seconds",
		"Checkpoint wall time (freeze + write + manifest swap + prune) in seconds.", nil)
	checkpointBytes = obs.Default().Gauge(
		"joinmm_checkpoint_last_bytes",
		"Size in bytes of the most recent checkpoint snapshot.")
	checkpointLastUnix = obs.Default().Gauge(
		"joinmm_checkpoint_last_unix_seconds",
		"Unix time of the most recent successful checkpoint (0: none yet).")

	degradedGauge = obs.Default().Gauge(
		"joinmm_degraded",
		"1 while the engine is in degraded read-only mode (WAL unavailable), else 0.")
	degradedTotal = obs.Default().Counter(
		"joinmm_degraded_transitions_total",
		"Healthy-to-degraded transitions since process start.")

	recoveryReplayRecords = obs.Default().Gauge(
		"joinmm_recovery_replayed_records",
		"WAL records replayed by the most recent Open.")
	recoverySeconds = obs.Default().Gauge(
		"joinmm_recovery_seconds",
		"Wall time of the most recent Open recovery (snapshot load + WAL replay).")
)
