package core

import (
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/relation"
	"repro/internal/wal"
)

// tortureSchedules scales the crash/fault torture suite. Every schedule is
// deterministic in its seed, so a failure report ("schedule %d") reproduces
// by itself; CI runs the default, a tight local loop can lower it and a
// soak run can raise it: go test -run TestTorture -torture.schedules=2000.
var tortureSchedules = flag.Int("torture.schedules", 200, "number of seeded fault schedules the torture suite drives")

// torMut is one mutation the torture driver issued, with its fate:
// acked (must survive), cleanly rejected (must be absent), or maybe —
// rejected at the API but possibly durable on disk (the append may have
// completed before its fsync or repair failed), so recovery may legally
// surface it.
type torMut struct {
	rel      string
	ins, del []relation.Pair
	maybe    bool
}

// torModel replays a base state plus the mutation trace, with the maybe
// mutations toggled by mask (bit i = the i-th maybe mutation reached disk).
func torModel(base map[string][]relation.Pair, acked []torMut, mask uint64) map[string]map[relation.Pair]bool {
	state := map[string]map[relation.Pair]bool{}
	for rel, ps := range base {
		set := map[relation.Pair]bool{}
		for _, p := range ps {
			set[p] = true
		}
		state[rel] = set
	}
	mi := 0
	for _, m := range acked {
		if m.maybe {
			on := mask&(1<<uint(mi)) != 0
			mi++
			if !on {
				continue
			}
		}
		for _, p := range m.ins {
			state[m.rel][p] = true
		}
		for _, p := range m.del {
			delete(state[m.rel], p)
		}
	}
	return state
}

func countMaybe(trace []torMut) int {
	n := 0
	for _, m := range trace {
		if m.maybe {
			n++
		}
	}
	return n
}

// queryPairSet reads a relation's live contents through the query path.
func queryPairSet(t *testing.T, e *Engine, rel string) map[relation.Pair]bool {
	t.Helper()
	res, err := e.Query(fmt.Sprintf("Q(x, y) :- %s(x, y)", rel))
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	set := map[relation.Pair]bool{}
	for _, tu := range res.Tuples {
		set[relation.Pair{X: int32(tu[0]), Y: int32(tu[1])}] = true
	}
	return set
}

// pairSetSlice returns the set's pairs in canonical order, so schedules
// stay byte-for-byte reproducible for a seed despite map iteration.
func pairSetSlice(set map[relation.Pair]bool) []relation.Pair {
	out := make([]relation.Pair, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

func pairSetsEqual(a, b map[relation.Pair]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for p := range a {
		if !b[p] {
			return false
		}
	}
	return true
}

// TestTortureSchedules drives seeded random schedules of mutations ×
// injected disk faults × kill-points against a persistent engine and then
// recovers each one on a healed disk, asserting the durability contract:
//
//   - every acked mutation survives recovery;
//   - every cleanly rejected mutation is absent;
//   - a rejected mutation whose append may have reached disk (maybe) is
//     allowed either way, but the recovered state must be explainable by
//     SOME on/off assignment of the maybes replayed in issue order;
//   - the live view agrees with a nested-loop oracle over the recovered
//     relations;
//   - a degraded engine keeps serving reads, fails mutations fast, and
//     either re-arms after heal+resume or stays safely read-only.
func TestTortureSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("torture suite is not -short")
	}
	n := *tortureSchedules
	for i := 0; i < n; i++ {
		i := i
		t.Run(fmt.Sprintf("schedule%03d", i), func(t *testing.T) {
			tortureSchedule(t, int64(1000+i))
		})
	}
}

func tortureSchedule(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	eng := NewEngine()
	err := eng.Open(dir, PersistOptions{
		Fsync: wal.FsyncAlways, FS: in, RetryBackoff: 20 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	closed := false
	defer func() {
		if !closed {
			eng.Close()
		}
	}()

	// Registration and the view land before any fault is armed, so the
	// schedule starts from a known acked base.
	const dom = 8
	base := map[string][]relation.Pair{
		"R": randPairs(rng, 3+rng.Intn(5), dom),
		"S": randPairs(rng, 3+rng.Intn(5), dom),
	}
	for _, rel := range []string{"R", "S"} {
		if _, err := eng.Register(rel, base[rel]); err != nil {
			t.Fatal(err)
		}
	}
	withView := rng.Intn(2) == 0
	if withView {
		if _, err := eng.RegisterView(t.Context(), "TP", "TP(x, z) :- R(x, y), S(y, z)"); err != nil {
			t.Fatal(err)
		}
	}

	var trace []torMut
	crashed := false
	steps := 8 + rng.Intn(16)
	for step := 0; step < steps && !crashed; step++ {
		// Arm this step's fault, if any. At most one kill-point per
		// schedule; scripted rules and random windows can repeat.
		switch r := rng.Float64(); {
		case r < 0.18:
			ops := []faultfs.Op{faultfs.OpWrite, faultfs.OpSync, faultfs.OpRename}
			errs := []error{faultfs.ErrInjectedENOSPC, faultfs.ErrInjectedEIO}
			in.Script(faultfs.Rule{
				Op:         ops[rng.Intn(len(ops))],
				Err:        errs[rng.Intn(len(errs))],
				Times:      1 + rng.Intn(4),
				ShortWrite: rng.Intn(3) == 0,
			})
		case r < 0.26:
			in.SetRandom(rng.Int63(), faultfs.Probs{Write: 0.3, Sync: 0.2, Rename: 0.2})
		case r < 0.32:
			in.Heal()
		case r < 0.38 && !crashed:
			in.CrashAfterOps(rng.Intn(12))
		}

		degradedBefore, _, _ := eng.Degraded()
		rel := "R"
		if rng.Intn(2) == 0 {
			rel = "S"
		}
		m := torMut{rel: rel}
		if rng.Intn(4) > 0 {
			m.ins = randPairs(rng, 1+rng.Intn(3), dom)
		}
		if rng.Intn(3) == 0 {
			m.del = pickKnown(rng, eng, t, rel)
		}
		_, err := eng.Mutate(rel, m.ins, m.del)
		switch {
		case err == nil:
			trace = append(trace, m)
		case degradedBefore:
			// Fail-fast rejection: no disk I/O happened, the mutation is
			// cleanly absent. The contract also demands the typed error.
			if !errors.Is(err, ErrDegraded) {
				t.Fatalf("degraded mutate returned %v, want ErrDegraded", err)
			}
		default:
			// Rejected while armed: the append may or may not have
			// reached disk before its fault. Recovery decides.
			m.maybe = true
			trace = append(trace, m)
		}
		if in.Crashed() {
			crashed = true
			break
		}

		// Degraded engines must keep serving reads; occasionally heal the
		// disk and re-arm.
		if deg, cause, _ := eng.Degraded(); deg {
			if cause == nil {
				t.Fatal("degraded without a cause")
			}
			if _, err := eng.Query("Q(x, y) :- R(x, y)"); err != nil {
				t.Fatalf("degraded read failed: %v", err)
			}
			if rng.Intn(2) == 0 {
				in.Heal()
				if err := eng.Resume(); err != nil {
					t.Fatalf("resume on healed disk: %v", err)
				}
			}
		}

		// Occasional checkpoint. A successful one on a healthy engine
		// makes disk and memory agree, which resolves every pending maybe
		// (the WAL before the snapshot LSN is no longer replayed).
		if rng.Intn(6) == 0 || countMaybe(trace) >= 8 {
			if countMaybe(trace) >= 8 {
				in.Heal()
				if err := eng.Resume(); err != nil {
					t.Fatalf("resume on healed disk: %v", err)
				}
			}
			if _, err := eng.Checkpoint(); err == nil {
				if deg, _, _ := eng.Degraded(); !deg {
					base = map[string][]relation.Pair{
						"R": pairSetSlice(queryPairSet(t, eng, "R")),
						"S": pairSetSlice(queryPairSet(t, eng, "S")),
					}
					trace = nil
				}
			} else if countMaybe(trace) >= 8 {
				t.Fatalf("checkpoint on healed disk failed: %v", err)
			}
		}
	}

	// Tear down — a simulated crash abandons the engine mid-flight, a clean
	// end closes it (Close may legitimately fail under armed faults).
	eng.Close()
	closed = true
	in.Heal()

	// Recovery on the healed disk must succeed and match some legal replay.
	eng2 := NewEngine()
	if err := eng2.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer eng2.Close()
	recovered := map[string]map[relation.Pair]bool{
		"R": queryPairSet(t, eng2, "R"),
		"S": queryPairSet(t, eng2, "S"),
	}
	nm := countMaybe(trace)
	if nm > 16 {
		t.Fatalf("schedule accumulated %d unresolved maybes; driver should have checkpointed", nm)
	}
	matched := false
	for mask := uint64(0); mask < 1<<uint(nm); mask++ {
		state := torModel(base, trace, mask)
		if pairSetsEqual(state["R"], recovered["R"]) && pairSetsEqual(state["S"], recovered["S"]) {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("recovered state matches no legal replay (%d maybes): R=%v S=%v",
			nm, recovered["R"], recovered["S"])
	}

	// The recovered view must agree with a nested-loop oracle over the
	// recovered relations.
	if withView {
		oracle := newOracle()
		oracle.register("R", pairSetSlice(recovered["R"]))
		oracle.register("S", pairSetSlice(recovered["S"]))
		want := oracle.twoPath("R", "S")
		got := sortedViewTuples(t, eng2, "TP")
		if len(got) != len(want) {
			t.Fatalf("view TP has %d rows, oracle %d", len(got), len(want))
		}
		for i := range want {
			if got[i][0] != want[i][0] || got[i][1] != want[i][1] {
				t.Fatalf("view TP row %d = %v, oracle %v", i, got[i], want[i])
			}
		}
	}
}

// pickKnown returns up to two pairs currently in the relation (so deletes
// actually exercise removal, not no-ops on random absent pairs).
func pickKnown(rng *rand.Rand, e *Engine, t *testing.T, rel string) []relation.Pair {
	set := queryPairSet(t, e, rel)
	if len(set) == 0 {
		return nil
	}
	all := pairSetSlice(set)
	n := 1 + rng.Intn(2)
	if n > len(all) {
		n = len(all)
	}
	out := make([]relation.Pair, 0, n)
	for _, i := range rng.Perm(len(all))[:n] {
		out = append(out, all[i])
	}
	return out
}
