package core

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

// TestCancelHeavyQueryReturnsFast cancels a query that takes hundreds of
// milliseconds uncancelled (dense 3-chain join: executor loops plus the
// matrix kernels) and bounds the cancel-to-return latency: every loop layer
// — executor batches, bag joins, kernel tile blocks — polls the context, so
// abandoning the work must take well under 50ms, not ride out the sweep.
func TestCancelHeavyQueryReturnsFast(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	eng := NewEngine()
	if _, err := eng.Register("R", randPairs(rng, 90_000, 400)); err != nil {
		t.Fatal(err)
	}
	const q = "Q(a, d) :- R(a, b), R(b, c), R(c, d)"

	// Uncancelled baseline: the query must be genuinely heavy, otherwise a
	// fast return proves nothing.
	start := time.Now()
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	full := time.Since(start)
	if full < 60*time.Millisecond {
		t.Skipf("query finished in %v on this machine; too fast to observe cancellation", full)
	}

	ctx, cancel := context.WithCancel(context.Background())
	canceledAt := make(chan time.Time, 1)
	go func() {
		time.Sleep(10 * time.Millisecond)
		canceledAt <- time.Now()
		cancel()
	}()
	_, err := eng.QueryContext(ctx, q)
	returned := time.Now()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled query returned %v, want context.Canceled", err)
	}
	if lat := returned.Sub(<-canceledAt); lat > 50*time.Millisecond {
		t.Fatalf("cancel-to-return latency %v, want < 50ms (uncancelled run: %v)", lat, full)
	}
}
