package core

import (
	"context"
	"errors"
	"time"

	"repro/internal/govern"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/stats"
)

// IntrospectionConfig sizes the workload-introspection layer: statement
// statistics, the live activity view and the flight recorder. Zero fields
// take the stats package defaults; introspection itself is always on (its
// hot-path cost is a handful of atomics and one mutex acquisition per
// query).
type IntrospectionConfig struct {
	// MaxStatements caps distinct fingerprints in /stats/statements before
	// new ones fold into the overflow bucket.
	MaxStatements int
	// FlightSize is the flight-recorder ring capacity.
	FlightSize int
	// FlightSample keeps 1-in-N unremarkable queries in the flight recorder
	// (slow and failed queries are always kept).
	FlightSample int
	// SlowThreshold is the latency at which a query counts as slow for
	// flight-recorder retention.
	SlowThreshold time.Duration
}

// WithIntrospection sizes the workload-introspection layer.
func WithIntrospection(ic IntrospectionConfig) Option {
	return func(c *Config) { c.Introspect = ic }
}

// StatementStats exposes the per-fingerprint statement statistics behind
// GET /stats/statements.
func (e *Engine) StatementStats() *stats.Statements { return e.stmts }

// Activity exposes the in-flight query registry behind GET /stats/activity;
// Activity().Cancel(id) kills a running query from outside.
func (e *Engine) Activity() *stats.Activity { return e.activity }

// FlightRecorder exposes the recently-completed-query ring behind
// GET /debug/flight.
func (e *Engine) FlightRecorder() *stats.Flight { return e.flight }

// NoteShed attributes an admission-control rejection to the statement that
// was shed: the query never reached evaluation, so the server reports it
// here for the statement sheet and flight recorder.
func (e *Engine) NoteShed(ctx context.Context, src string) {
	fp := query.FingerprintText(src)
	e.stmts.RecordShed(fp)
	e.flight.Record(stats.FlightRecord{
		RequestID:   obs.RequestIDFrom(ctx),
		Fingerprint: fp,
		Query:       src,
		Outcome:     stats.OutcomeShed,
		StartUnix:   time.Now().UnixMilli(),
	}, nil)
}

// classifyOutcome maps an evaluation error to its statement-stats outcome.
// killed reports whether an external kill was delivered (its cancellation
// surfaces as context.Canceled, so it is checked first).
func classifyOutcome(err error, killed bool) stats.Outcome {
	switch {
	case err == nil:
		return stats.OutcomeOK
	case errors.Is(err, govern.ErrBudgetExceeded):
		return stats.OutcomeBudget
	case killed:
		return stats.OutcomeKilled
	case errors.Is(err, context.DeadlineExceeded):
		return stats.OutcomeTimeout
	case errors.Is(err, context.Canceled):
		return stats.OutcomeCanceled
	default:
		return stats.OutcomeError
	}
}

// recordQuery feeds one completed evaluation into the statement sheet and
// the flight recorder. planFn lazily renders the analyzed plan tree; nil
// when the query never produced a plan (prepare failures).
func (e *Engine) recordQuery(ctx context.Context, fingerprint, text string, start time.Time,
	outcome stats.Outcome, rows, bytes int64, hit bool, strategies []string, err error, planFn func() string) {
	elapsed := time.Since(start)
	e.stmts.Record(fingerprint, stats.Observation{
		Outcome:    outcome,
		Elapsed:    elapsed,
		Rows:       rows,
		Bytes:      bytes,
		CacheHit:   hit,
		Strategies: strategies,
	})
	rec := stats.FlightRecord{
		RequestID:   obs.RequestIDFrom(ctx),
		Fingerprint: fingerprint,
		Query:       text,
		Outcome:     outcome,
		StartUnix:   start.UnixMilli(),
		ElapsedMs:   float64(elapsed.Nanoseconds()) / 1e6,
		Rows:        rows,
		Bytes:       bytes,
		CacheHit:    hit,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	e.flight.Record(rec, planFn)
}
