package core

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

// serveRepl mounts eng's replication source on an httptest server.
func serveRepl(t *testing.T, eng *Engine) *httptest.Server {
	t.Helper()
	src := eng.ReplSource()
	if src == nil {
		t.Fatal("ReplSource: nil on a persistent engine")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /repl/segments", src.ServeSegments)
	mux.HandleFunc("GET /repl/snapshot", src.ServeSnapshot)
	mux.HandleFunc("GET /repl/status", src.ServeStatus)
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// waitConverged polls until the follower has applied everything the primary
// has logged and reports itself caught up.
func waitConverged(t *testing.T, rep *Replica, primary *Engine) ReplicaStatus {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st := rep.Status()
		wantApplied := primary.PersistenceStats().WAL.NextLSN - 1
		if st.CaughtUp && st.AppliedLSN == wantApplied {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never converged: %+v (want applied %d)", st, wantApplied)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestReplicaFollowsPrimary(t *testing.T) {
	primary := NewEngine()
	if err := primary.Open(t.TempDir(), PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rng := rand.New(rand.NewSource(11))
	if _, err := primary.Register("R", randPairs(rng, 60, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Register("S", randPairs(rng, 60, 20)); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.RegisterView(context.Background(), "vp", "VP(x, z) :- R(x, y), S(y, z)"); err != nil {
		t.Fatal(err)
	}
	// Checkpoint so bootstrap exercises the snapshot path, then keep
	// mutating so the tail is non-empty.
	if _, err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Mutate("R", randPairs(rng, 10, 20), randPairs(rng, 5, 20)); err != nil {
		t.Fatal(err)
	}

	ts := serveRepl(t, primary)
	follower := NewEngine()
	rep, err := follower.StartReplica(ts.URL, ReplicaOptions{PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	waitConverged(t, rep, primary)

	// Keep writing while the follower tails live.
	for i := 0; i < 20; i++ {
		if _, err := primary.Mutate("S", randPairs(rng, 6, 20), randPairs(rng, 3, 20)); err != nil {
			t.Fatal(err)
		}
	}
	st := waitConverged(t, rep, primary)
	if st.LagRecords != 0 {
		t.Fatalf("caught-up lag_records = %d", st.LagRecords)
	}
	if st.Bootstraps != 1 {
		t.Fatalf("bootstraps = %d, want 1", st.Bootstraps)
	}

	// Exact state equality: catalog and view, primary vs follower.
	for _, name := range []string{"R", "S"} {
		pr, _ := primary.Catalog().Get(name)
		fr, ok := follower.Catalog().Get(name)
		if !ok {
			t.Fatalf("follower missing %q", name)
		}
		if !reflect.DeepEqual(pr.Pairs(), fr.Pairs()) {
			t.Fatalf("%q diverged: primary %d pairs, follower %d", name, pr.Size(), fr.Size())
		}
	}
	if got, want := sortedViewTuples(t, follower, "vp"), sortedViewTuples(t, primary, "vp"); !reflect.DeepEqual(got, want) {
		t.Fatalf("vp diverged: %d tuples vs %d", len(got), len(want))
	}
	fv, _ := follower.View("vp")
	if fv.Mode() != "incremental" {
		t.Fatalf("follower vp mode %q, want incremental", fv.Mode())
	}
}

func TestReplicaRebootstrapsAcrossTruncation(t *testing.T) {
	primary := NewEngine()
	if err := primary.Open(t.TempDir(), PersistOptions{SegmentBytes: 1 << 10}); err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	rng := rand.New(rand.NewSource(7))
	if _, err := primary.Register("R", randPairs(rng, 40, 15)); err != nil {
		t.Fatal(err)
	}
	ts := serveRepl(t, primary)

	// Follower with a long poll interval: it bootstraps, then sits idle
	// while the primary rolls far ahead and checkpoints history away.
	follower := NewEngine()
	rep, err := follower.StartReplica(ts.URL, ReplicaOptions{PollInterval: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	waitConverged(t, rep, primary)

	for i := 0; i < 50; i++ {
		if _, err := primary.Mutate("R", randPairs(rng, 8, 15), randPairs(rng, 4, 15)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := primary.Checkpoint(); err != nil { // truncates shipped history
		t.Fatal(err)
	}
	st := waitConverged(t, rep, primary)
	pr, _ := primary.Catalog().Get("R")
	fr, _ := follower.Catalog().Get("R")
	if fr == nil || !reflect.DeepEqual(pr.Pairs(), fr.Pairs()) {
		t.Fatal("follower diverged after truncation")
	}
	// Whether the follower needed a re-bootstrap depends on poll timing;
	// either way it must have stayed correct. If it did re-bootstrap, the
	// counter says so.
	if st.Bootstraps < 1 {
		t.Fatalf("bootstraps = %d", st.Bootstraps)
	}
}

func TestStartReplicaGuards(t *testing.T) {
	// A persistent engine cannot follow.
	persistent := NewEngine()
	if err := persistent.Open(t.TempDir(), PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	defer persistent.Close()
	if _, err := persistent.StartReplica("http://localhost:1", ReplicaOptions{}); err == nil {
		t.Fatal("StartReplica on a persistent engine succeeded")
	}
	// A non-empty engine cannot follow.
	dirty := NewEngine()
	if _, err := dirty.Register("R", randPairs(rand.New(rand.NewSource(1)), 5, 5)); err != nil {
		t.Fatal(err)
	}
	if _, err := dirty.StartReplica("http://localhost:1", ReplicaOptions{}); err == nil {
		t.Fatal("StartReplica on a non-empty engine succeeded")
	}
	// A malformed primary URL is rejected before anything starts.
	if _, err := NewEngine().StartReplica("not a url", ReplicaOptions{}); err == nil {
		t.Fatal("StartReplica with a bad URL succeeded")
	}
	// Double start is rejected; Stop is clean.
	follower := NewEngine()
	rep, err := follower.StartReplica("http://127.0.0.1:1", ReplicaOptions{PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := follower.StartReplica("http://127.0.0.1:1", ReplicaOptions{}); err == nil {
		t.Fatal("second StartReplica succeeded")
	}
	rep.Stop()
	if st := rep.Status(); st.State != ReplicaStopped {
		t.Fatalf("state after Stop: %q", st.State)
	}
}

func TestReplicaSurvivesPrimaryRestart(t *testing.T) {
	dir := t.TempDir()
	primary := NewEngine()
	if err := primary.Open(dir, PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	if _, err := primary.Register("R", randPairs(rng, 30, 10)); err != nil {
		t.Fatal(err)
	}

	// The follower reaches the primary through a handle that survives the
	// primary's restart.
	var cur atomic.Pointer[Engine]
	cur.Store(primary)
	mux := http.NewServeMux()
	proxy := func(pick func(*Engine) http.HandlerFunc) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) { pick(cur.Load())(w, r) }
	}
	mux.HandleFunc("GET /repl/segments", proxy(func(e *Engine) http.HandlerFunc { return e.ReplSource().ServeSegments }))
	mux.HandleFunc("GET /repl/snapshot", proxy(func(e *Engine) http.HandlerFunc { return e.ReplSource().ServeSnapshot }))
	ts := httptest.NewServer(mux)
	defer ts.Close()

	follower := NewEngine()
	rep, err := follower.StartReplica(ts.URL, ReplicaOptions{PollInterval: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Stop()
	waitConverged(t, rep, primary)

	// Restart the primary (clean close here; the torture test covers
	// crashes) and keep writing.
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	restarted := NewEngine()
	if err := restarted.Open(dir, PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	defer restarted.Close()
	cur.Store(restarted)
	if _, err := restarted.Mutate("R", randPairs(rng, 10, 10), nil); err != nil {
		t.Fatal(err)
	}
	waitConverged(t, rep, restarted)
	pr, _ := restarted.Catalog().Get("R")
	fr, _ := follower.Catalog().Get("R")
	if fr == nil || !reflect.DeepEqual(pr.Pairs(), fr.Pairs()) {
		t.Fatal("follower diverged across primary restart")
	}
}
