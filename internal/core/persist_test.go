package core

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/wal"
)

// oracleState tracks relation contents as plain pair sets and evaluates the
// trace's views by nested loops — the independent ground truth recovery is
// compared against.
type oracleState struct {
	rels map[string]map[relation.Pair]bool
}

func newOracle() *oracleState { return &oracleState{rels: map[string]map[relation.Pair]bool{}} }

func (o *oracleState) register(name string, ps []relation.Pair) {
	set := map[relation.Pair]bool{}
	for _, p := range ps {
		set[p] = true
	}
	o.rels[name] = set
}

func (o *oracleState) mutate(name string, ins, del []relation.Pair) {
	set := o.rels[name]
	for _, p := range ins {
		set[p] = true
	}
	for _, p := range del {
		delete(set, p)
	}
}

func (o *oracleState) pairs(name string) []relation.Pair {
	var out []relation.Pair
	for p := range o.rels[name] {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}

// twoPath is π_{x,z} R(x,y) ⋈ S(y,z) by nested loops.
func (o *oracleState) twoPath(r, s string) [][]int64 {
	seen := map[[2]int64]bool{}
	for rp := range o.rels[r] {
		for sp := range o.rels[s] {
			if rp.Y == sp.X {
				seen[[2]int64{int64(rp.X), int64(sp.Y)}] = true
			}
		}
	}
	return setToTuples(seen)
}

// chain3 is π_{a,d} R(a,b) ⋈ S(b,c) ⋈ R(c,d) by nested loops.
func (o *oracleState) chain3(r, s string) [][]int64 {
	seen := map[[2]int64]bool{}
	for rp := range o.rels[r] {
		for sp := range o.rels[s] {
			if rp.Y != sp.X {
				continue
			}
			for rp2 := range o.rels[r] {
				if sp.Y == rp2.X {
					seen[[2]int64{int64(rp.X), int64(rp2.Y)}] = true
				}
			}
		}
	}
	return setToTuples(seen)
}

// triangle is π_{x,y} R(x,y) ⋈ S(y,z) ⋈ R(z,x) by nested loops.
func (o *oracleState) triangle(r, s string) [][]int64 {
	seen := map[[2]int64]bool{}
	for rp := range o.rels[r] {
		for sp := range o.rels[s] {
			if rp.Y != sp.X {
				continue
			}
			if o.rels[r][relation.Pair{X: sp.Y, Y: rp.X}] {
				seen[[2]int64{int64(rp.X), int64(rp.Y)}] = true
			}
		}
	}
	return setToTuples(seen)
}

func setToTuples(seen map[[2]int64]bool) [][]int64 {
	out := make([][]int64, 0, len(seen))
	for t := range seen {
		out = append(out, []int64{t[0], t[1]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

func randPairs(rng *rand.Rand, n int, dom int32) []relation.Pair {
	ps := make([]relation.Pair, n)
	for i := range ps {
		ps[i] = relation.Pair{X: rng.Int31n(dom), Y: rng.Int31n(dom)}
	}
	return ps
}

func sortedViewTuples(t *testing.T, e *Engine, name string) [][]int64 {
	t.Helper()
	v, ok := e.View(name)
	if !ok {
		t.Fatalf("view %q missing", name)
	}
	_, tuples, _, err := v.Result(context.Background())
	if err != nil {
		t.Fatalf("view %q result: %v", name, err)
	}
	out := make([][]int64, len(tuples))
	copy(out, tuples)
	sort.Slice(out, func(i, j int) bool {
		for k := range out[i] {
			if out[i][k] != out[j][k] {
				return out[i][k] < out[j][k]
			}
		}
		return false
	})
	return out
}

// TestOpenCheckpointRecoverRoundTrip drives a full durability cycle:
// mutations + views, a mid-stream checkpoint, more mutations, close; then a
// second engine recovers and must match — with the incremental view's store
// adopted from the snapshot and re-maintained by WAL replay, not refreshed.
func TestOpenCheckpointRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7))
	oracle := newOracle()

	e1 := NewEngine()
	if err := e1.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	r0, s0 := randPairs(rng, 120, 40), randPairs(rng, 120, 40)
	if _, err := e1.Register("R", r0); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Register("S", s0); err != nil {
		t.Fatal(err)
	}
	oracle.register("R", r0)
	oracle.register("S", s0)
	if _, err := e1.RegisterView(context.Background(), "vp", "VP(x, z) :- R(x, y), S(y, z)"); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.RegisterView(context.Background(), "vt", "VT(x, y) :- R(x, y), S(y, z), R(z, x)"); err != nil {
		t.Fatal(err)
	}
	step := func(n int) int {
		effective := 0
		for i := 0; i < n; i++ {
			name := []string{"R", "S"}[i%2]
			ins, del := randPairs(rng, 6, 40), randPairs(rng, 4, 40)
			m, err := e1.Mutate(name, ins, del)
			if err != nil {
				t.Fatal(err)
			}
			if !m.Empty() {
				effective++
			}
			oracle.mutate(name, ins, del)
		}
		return effective
	}
	step(20)
	info, err := e1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if info.Relations != 2 || info.Views != 2 || info.AppliedLSN == 0 {
		t.Fatalf("checkpoint info %+v", info)
	}
	tail := step(17)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}

	e2 := NewEngine()
	if err := e2.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	rec := e2.RecoveryStats()
	if rec.SnapshotLSN != info.AppliedLSN {
		t.Fatalf("recovered snapshot lsn %d, want %d", rec.SnapshotLSN, info.AppliedLSN)
	}
	if rec.RestoredRelations != 2 || rec.RestoredViews != 2 {
		t.Fatalf("recovery stats %+v", rec)
	}
	if rec.ReplayedRecords != tail || rec.ReplayedMutations != tail {
		t.Fatalf("replayed %d records / %d mutations, want %d", rec.ReplayedRecords, rec.ReplayedMutations, tail)
	}
	for _, name := range []string{"R", "S"} {
		got, ok := e2.Catalog().Get(name)
		if !ok {
			t.Fatalf("relation %q missing after recovery", name)
		}
		if !reflect.DeepEqual(got.Pairs(), oracle.pairs(name)) {
			t.Fatalf("relation %q differs from oracle after recovery", name)
		}
	}
	if got, want := sortedViewTuples(t, e2, "vp"), oracle.twoPath("R", "S"); !reflect.DeepEqual(got, want) {
		t.Fatalf("vp after recovery: %d tuples, want %d", len(got), len(want))
	}
	if got, want := sortedViewTuples(t, e2, "vt"), oracle.triangle("R", "S"); !reflect.DeepEqual(got, want) {
		t.Fatalf("vt after recovery: %d tuples, want %d", len(got), len(want))
	}
	// The incremental view must have been re-maintained by delta replay,
	// not rebuilt: its freshness shows delta strategies, never "full
	// refresh".
	vp, _ := e2.View("vp")
	if vp.Mode() != "incremental" {
		t.Fatalf("vp mode %q after recovery", vp.Mode())
	}
	for _, s := range vp.Freshness().Strategies {
		if strings.Contains(s, "refresh") {
			t.Fatalf("vp was refreshed during replay: %v", vp.Freshness().Strategies)
		}
	}
	// And the control: both engines agree on an arbitrary query.
	q := "Q(x, z) :- R(x, y), S(y, z)"
	res2, err := e2.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if want := oracle.twoPath("R", "S"); len(res2.Tuples) != len(want) {
		t.Fatalf("query after recovery: %d tuples, want %d", len(res2.Tuples), len(want))
	}
}

// frameBoundaries returns the byte offsets after each CRC-framed record in
// one WAL segment (the framing is uvarint length + payload + 4-byte CRC).
func frameBoundaries(data []byte) []int {
	var bounds []int
	off := 0
	for off < len(data) {
		n, used := binary.Uvarint(data[off:])
		if used <= 0 || off+used+int(n)+4 > len(data) {
			break
		}
		off += used + int(n) + 4
		bounds = append(bounds, off)
	}
	return bounds
}

// TestCrashPointDifferential is the recovery acceptance test: it logs a
// 200-mutation trace (plus relation and view registrations), then cuts the
// log at EVERY record boundary — and a few bytes past it, simulating a torn
// append — recovers, and compares every relation and every view against the
// nested-loop oracle at that prefix. Catalog state, incremental stores and
// refresh-mode views must all agree at all 200+ crash points.
func TestCrashPointDifferential(t *testing.T) {
	const mutations = 200
	base := t.TempDir()
	rng := rand.New(rand.NewSource(99))

	// Record the trace: each entry re-applies one WAL record to the oracle.
	type traceStep struct {
		apply func(o *oracleState)
	}
	var trace []traceStep

	e := NewEngine()
	if err := e.Open(base, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	r0, s0 := randPairs(rng, 60, 25), randPairs(rng, 60, 25)
	if _, err := e.Register("R", r0); err != nil {
		t.Fatal(err)
	}
	trace = append(trace, traceStep{func(o *oracleState) { o.register("R", r0) }})
	if _, err := e.Register("S", s0); err != nil {
		t.Fatal(err)
	}
	trace = append(trace, traceStep{func(o *oracleState) { o.register("S", s0) }})
	if _, err := e.RegisterView(context.Background(), "vp", "VP(x, z) :- R(x, y), S(y, z)"); err != nil {
		t.Fatal(err)
	}
	trace = append(trace, traceStep{func(*oracleState) {}})
	if _, err := e.RegisterView(context.Background(), "vc", "VC(a, d) :- R(a, b), S(b, c), R(c, d)"); err != nil {
		t.Fatal(err)
	}
	trace = append(trace, traceStep{func(*oracleState) {}})
	if _, err := e.RegisterView(context.Background(), "vt", "VT(x, y) :- R(x, y), S(y, z), R(z, x)"); err != nil {
		t.Fatal(err)
	}
	trace = append(trace, traceStep{func(*oracleState) {}})

	for i := 0; i < mutations; i++ {
		name := []string{"R", "S"}[i%2]
		ins, del := randPairs(rng, 3, 25), randPairs(rng, 2, 25)
		m, err := e.Mutate(name, ins, del)
		if err != nil {
			t.Fatal(err)
		}
		if m.Empty() {
			continue // fully coalesced away: nothing logged, nothing changed
		}
		n, in, dl := name, ins, del
		trace = append(trace, traceStep{func(o *oracleState) { o.mutate(n, in, dl) }})
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// One segment holds the whole trace (default rotation is 64 MiB).
	ents, err := os.ReadDir(base)
	if err != nil {
		t.Fatal(err)
	}
	var segName string
	for _, ent := range ents {
		if strings.HasPrefix(ent.Name(), "wal-") && strings.HasSuffix(ent.Name(), ".seg") {
			if segName != "" {
				t.Fatalf("trace spans several segments: %s and %s", segName, ent.Name())
			}
			segName = ent.Name()
		}
	}
	data, err := os.ReadFile(filepath.Join(base, segName))
	if err != nil {
		t.Fatal(err)
	}
	bounds := frameBoundaries(data)
	if len(bounds) != len(trace) {
		t.Fatalf("found %d record boundaries, trace has %d records", len(bounds), len(trace))
	}

	recoverAt := func(t *testing.T, cut int, records int) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		oracle := newOracle()
		for _, st := range trace[:records] {
			st.apply(oracle)
		}
		re := NewEngine()
		if err := re.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
			t.Fatalf("cut at %d (%d records): open: %v", cut, records, err)
		}
		defer re.Close()
		for name := range oracle.rels {
			got, ok := re.Catalog().Get(name)
			if !ok {
				t.Fatalf("cut %d: relation %q missing", cut, name)
			}
			if !reflect.DeepEqual(got.Pairs(), oracle.pairs(name)) {
				t.Fatalf("cut %d: relation %q differs from oracle", cut, name)
			}
		}
		if records >= 3 {
			if got, want := sortedViewTuples(t, re, "vp"), oracle.twoPath("R", "S"); !reflect.DeepEqual(got, want) {
				t.Fatalf("cut %d: vp %d tuples, oracle %d", cut, len(got), len(want))
			}
		}
		if records >= 4 {
			if got, want := sortedViewTuples(t, re, "vc"), oracle.chain3("R", "S"); !reflect.DeepEqual(got, want) {
				t.Fatalf("cut %d: vc %d tuples, oracle %d", cut, len(got), len(want))
			}
		}
		if records >= 5 {
			if got, want := sortedViewTuples(t, re, "vt"), oracle.triangle("R", "S"); !reflect.DeepEqual(got, want) {
				t.Fatalf("cut %d: vt %d tuples, oracle %d", cut, len(got), len(want))
			}
		}
	}

	for i, b := range bounds {
		records := i + 1
		recoverAt(t, b, records)
		// A torn tail: a few bytes of the next record must replay to the
		// same prefix (the tail is truncated, not an error).
		if b+3 <= len(data) && records < len(bounds) {
			recoverAt(t, b+3, records)
		}
	}
	// Cut before the first record: an empty-but-present log.
	recoverAt(t, 0, 0)
}

// TestAutoCheckpoint exercises the -checkpoint-every path: enough logged
// records must trigger a background checkpoint that a recovery then loads.
func TestAutoCheckpoint(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine()
	if err := e.Open(dir, PersistOptions{Fsync: wal.FsyncNever, CheckpointEvery: 5}); err != nil {
		t.Fatal(err)
	}
	r0, err := e.Register("R", randPairs(rand.New(rand.NewSource(1)), 50, 20))
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 12; i++ {
		if _, err := e.Mutate("R", []relation.Pair{{X: 100 + i, Y: i}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.PersistenceStats().Checkpoints == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := e.PersistenceStats()
	if st.Checkpoints == 0 {
		t.Fatal("no automatic checkpoint after 12 records with CheckpointEvery=5")
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine()
	if err := e2.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if e2.RecoveryStats().SnapshotLSN == 0 {
		t.Fatal("recovery ignored the automatic checkpoint")
	}
	r, ok := e2.Catalog().Get("R")
	if !ok || r.Size() != r0.Size()+12 {
		t.Fatalf("recovered R size %d, want %d", r.Size(), r0.Size()+12)
	}
}

// TestOpenRejectsNonEmptyEngine pins the Open contract.
func TestOpenRejectsNonEmptyEngine(t *testing.T) {
	e := NewEngine()
	if _, err := e.Register("R", []relation.Pair{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := e.Open(t.TempDir(), PersistOptions{}); err == nil {
		t.Fatal("Open succeeded on a non-empty engine")
	}
}

// TestCloseIdempotent pins double-close and close-without-open.
func TestCloseIdempotent(t *testing.T) {
	e := NewEngine()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Open(t.TempDir(), PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPersistenceSurvivesDropAndReregister replays drop + re-register.
func TestPersistenceSurvivesDropAndReregister(t *testing.T) {
	dir := t.TempDir()
	e := NewEngine()
	if err := e.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Register("R", []relation.Pair{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	if ok, err := e.Catalog().Drop("R"); !ok || err != nil {
		t.Fatalf("drop failed: ok=%v err=%v", ok, err)
	}
	if _, err := e.Register("R", []relation.Pair{{X: 7, Y: 8}, {X: 9, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterView(context.Background(), "v", "V(x, z) :- R(x, y), R(y, z)"); err != nil {
		t.Fatal(err)
	}
	if ok, err := e.DropView("v"); !ok || err != nil {
		t.Fatalf("drop view failed: ok=%v err=%v", ok, err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := NewEngine()
	if err := e2.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	r, ok := e2.Catalog().Get("R")
	if !ok || r.Size() != 2 {
		t.Fatalf("recovered R = %v (ok=%v)", r, ok)
	}
	if _, ok := e2.View("v"); ok {
		t.Fatal("dropped view resurrected by recovery")
	}
	if got := fmt.Sprint(e2.Views()); got != "[]" {
		t.Fatalf("views after recovery: %s", got)
	}
}
