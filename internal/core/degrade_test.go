package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faultfs"
	"repro/internal/govern"
	"repro/internal/relation"
	"repro/internal/wal"
)

// openFaulted builds an engine on an injector-backed data dir with fast
// retries, seeded with one relation.
func openFaulted(t *testing.T, extra ...Option) (*Engine, *faultfs.Injector, string) {
	t.Helper()
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	eng := NewEngine(extra...)
	err := eng.Open(dir, PersistOptions{
		Fsync: wal.FsyncAlways, FS: in, RetryBackoff: 50 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	if _, err := eng.Register("R", []relation.Pair{{X: 1, Y: 2}, {X: 2, Y: 3}}); err != nil {
		t.Fatal(err)
	}
	return eng, in, dir
}

func TestTransientFaultRetriesThrough(t *testing.T) {
	eng, in, _ := openFaulted(t)
	// One write fault: the retry must absorb it and the mutation must ack.
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedEIO})
	if _, err := eng.Mutate("R", []relation.Pair{{X: 5, Y: 6}}, nil); err != nil {
		t.Fatalf("transient fault should be retried through: %v", err)
	}
	if deg, _, _ := eng.Degraded(); deg {
		t.Fatal("one transient fault must not degrade the engine")
	}
}

func TestPersistentFaultDegradesThenResumes(t *testing.T) {
	var hookCause error
	dir := t.TempDir()
	in := faultfs.NewInjector(nil)
	eng := NewEngine()
	err := eng.Open(dir, PersistOptions{
		Fsync: wal.FsyncAlways, FS: in, RetryBackoff: 50 * time.Microsecond,
		OnDegraded: func(cause error) { hookCause = cause },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Register("R", []relation.Pair{{X: 1, Y: 2}}); err != nil {
		t.Fatal(err)
	}
	// Enough write faults to exhaust every retry.
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedENOSPC, Times: 10})
	if _, err := eng.Mutate("R", []relation.Pair{{X: 9, Y: 9}}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("exhausted retries: want ErrDegraded, got %v", err)
	}
	deg, cause, since := eng.Degraded()
	if !deg || cause == nil || since.IsZero() {
		t.Fatalf("Degraded() = %v, %v, %v", deg, cause, since)
	}
	if !errors.Is(hookCause, faultfs.ErrInjectedENOSPC) {
		t.Fatalf("OnDegraded cause = %v", hookCause)
	}

	// Degraded: mutations fail fast (no disk I/O), queries keep serving.
	before := in.Injected()
	if _, err := eng.Mutate("R", []relation.Pair{{X: 8, Y: 8}}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("degraded mutate: %v", err)
	}
	if in.Injected() != before {
		t.Fatal("degraded mutate touched the disk")
	}
	res, err := eng.Query("Q(x, y) :- R(x, y)")
	if err != nil {
		t.Fatalf("degraded query: %v", err)
	}
	if len(res.Tuples) != 1 {
		t.Fatalf("degraded query rows = %d (rejected mutations must not apply)", len(res.Tuples))
	}
	st := eng.PersistenceStats()
	if !st.Degraded || st.DegradedCause == "" || st.DegradedSince == "" {
		t.Fatalf("stats: %+v", st)
	}

	// Disk heals: Resume re-arms writes.
	in.Heal()
	if err := eng.Resume(); err != nil {
		t.Fatalf("resume on healed disk: %v", err)
	}
	if deg, _, _ := eng.Degraded(); deg {
		t.Fatal("resume did not clear degraded mode")
	}
	if _, err := eng.Mutate("R", []relation.Pair{{X: 7, Y: 7}}, nil); err != nil {
		t.Fatalf("mutate after resume: %v", err)
	}
}

func TestResumeFailsWhileDiskStillBroken(t *testing.T) {
	eng, in, _ := openFaulted(t)
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedEIO, Times: 10})
	if _, err := eng.Mutate("R", []relation.Pair{{X: 9, Y: 9}}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	in.Script(faultfs.Rule{Op: faultfs.OpSync, PathContains: "wal-", Err: faultfs.ErrInjectedEIO})
	if err := eng.Resume(); err == nil {
		t.Fatal("resume must fail while the probe fsync fails")
	}
	if deg, _, _ := eng.Degraded(); !deg {
		t.Fatal("failed resume must stay degraded")
	}
	if err := eng.Resume(); err != nil {
		t.Fatalf("resume after heal: %v", err)
	}
}

func TestCheckpointRearmsDegradedEngine(t *testing.T) {
	eng, in, _ := openFaulted(t)
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedENOSPC, Times: 10})
	if _, err := eng.Mutate("R", []relation.Pair{{X: 9, Y: 9}}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	// The disk "recovers". A successful checkpoint to the data dir re-arms
	// writes.
	in.Heal()
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatalf("checkpoint on healed disk: %v", err)
	}
	if deg, _, _ := eng.Degraded(); deg {
		t.Fatal("successful checkpoint did not re-arm")
	}
	if _, err := eng.Mutate("R", []relation.Pair{{X: 6, Y: 6}}, nil); err != nil {
		t.Fatalf("mutate after checkpoint re-arm: %v", err)
	}
}

func TestCheckpointFailureKeepsLastGoodManifest(t *testing.T) {
	eng, in, dir := openFaulted(t)
	if _, err := eng.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	good := eng.PersistenceStats().LastCheckpointLSN
	if _, err := eng.Mutate("R", []relation.Pair{{X: 4, Y: 5}}, nil); err != nil {
		t.Fatal(err)
	}
	in.Script(faultfs.Rule{Op: faultfs.OpRename, PathContains: "MANIFEST", Err: faultfs.ErrInjectedEIO})
	if _, err := eng.Checkpoint(); err == nil {
		t.Fatal("manifest-rename fault: checkpoint should fail")
	}
	st := eng.PersistenceStats()
	if st.CheckpointFailures != 1 || st.LastCheckpointError == "" {
		t.Fatalf("failure not recorded: %+v", st)
	}
	if st.LastCheckpointLSN != good {
		t.Fatalf("failed checkpoint moved the commit point: %d != %d", st.LastCheckpointLSN, good)
	}
	// The engine still recovers from the last-good checkpoint + WAL tail.
	eng.Close()
	eng2 := NewEngine()
	if err := eng2.Open(dir, PersistOptions{Fsync: wal.FsyncAlways}); err != nil {
		t.Fatalf("recovery after failed checkpoint: %v", err)
	}
	defer eng2.Close()
	res, err := eng2.Query("Q(x, y) :- R(x, y)")
	if err != nil || len(res.Tuples) != 3 {
		t.Fatalf("recovered %d rows, err %v; want 3", len(res.Tuples), err)
	}
}

func TestCheckpointToHealthyDir(t *testing.T) {
	eng, in, _ := openFaulted(t)
	in.Script(faultfs.Rule{Op: faultfs.OpWrite, PathContains: "wal-", Err: faultfs.ErrInjectedEIO, Times: 10})
	if _, err := eng.Mutate("R", []relation.Pair{{X: 9, Y: 9}}, nil); !errors.Is(err, ErrDegraded) {
		t.Fatalf("want ErrDegraded, got %v", err)
	}
	// Secure the state to a healthy dir; the disk heals so the probe
	// re-arms too.
	in.Heal()
	healthy := t.TempDir()
	info, err := eng.CheckpointTo(healthy)
	if err != nil {
		t.Fatalf("checkpoint to healthy dir: %v", err)
	}
	if deg, _, _ := eng.Degraded(); deg {
		t.Fatal("healthy-dir checkpoint did not re-arm")
	}
	// The backup dir alone restores the acked state.
	eng2 := NewEngine()
	if err := eng2.Open(healthy, PersistOptions{Fsync: wal.FsyncAlways}); err != nil {
		t.Fatalf("open backup dir: %v", err)
	}
	defer eng2.Close()
	res, err := eng2.Query("Q(x, y) :- R(x, y)")
	if err != nil || len(res.Tuples) != 2 {
		t.Fatalf("backup restored %d rows (err %v), want 2 (info %+v)", len(res.Tuples), err, info)
	}
}

func TestAdaptiveCheckpointTriggers(t *testing.T) {
	dir := t.TempDir()
	eng := NewEngine()
	// A microscopic replay target with the default ns/record estimate
	// triggers as soon as the minimum record floor is reached.
	err := eng.Open(dir, PersistOptions{Fsync: wal.FsyncNever, CheckpointReplayTarget: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Register("R", []relation.Pair{{X: 0, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*minAdaptiveRecords; i++ {
		if _, err := eng.Mutate("R", []relation.Pair{{X: int32(i + 1), Y: int32(i + 2)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if eng.PersistenceStats().Checkpoints > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("adaptive policy never checkpointed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestAdaptiveCheckpointSilentWithoutTarget(t *testing.T) {
	dir := t.TempDir()
	eng := NewEngine()
	if err := eng.Open(dir, PersistOptions{Fsync: wal.FsyncNever}); err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Register("R", []relation.Pair{{X: 0, Y: 1}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*minAdaptiveRecords; i++ {
		if _, err := eng.Mutate("R", []relation.Pair{{X: int32(i + 1), Y: int32(i + 2)}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if n := eng.PersistenceStats().Checkpoints; n != 0 {
		t.Fatalf("no policy armed but %d checkpoints ran", n)
	}
}

func TestQueryBudgetAttaches(t *testing.T) {
	eng := NewEngine(WithQueryBudget(0, 1)) // one-row cap: everything trips
	if _, err := eng.Register("R", []relation.Pair{{X: 1, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 4}}); err != nil {
		t.Fatal(err)
	}
	_, err := eng.Query("Q(x, y) :- R(x, y)")
	if !errors.Is(err, govern.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	// A caller-provided budget takes precedence over the engine default.
	ctx := govern.WithBudget(context.Background(), govern.New(0, 1<<30))
	if _, err := eng.QueryContext(ctx, "Q(x, y) :- R(x, y)"); err != nil {
		t.Fatalf("caller budget should win: %v", err)
	}
}
