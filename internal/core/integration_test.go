package core

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/dataset"
	"repro/internal/joinproject"
	"repro/internal/relation"
	"repro/internal/wcoj"
)

// TestAllShapesAllEngines is the cross-module integration test: on every
// Table-2 dataset shape, every evaluation strategy and every baseline engine
// must produce exactly the same projected result set.
func TestAllShapesAllEngines(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, name := range dataset.Names() {
		r, err := dataset.ByName(name, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			oracle := wcoj.Project2Path(r, r)
			want := len(oracle)

			engines := map[string]func() int{
				"auto": func() int {
					out, _ := NewEngine().JoinProject(r, r)
					return len(out)
				},
				"mm": func() int {
					out, _ := NewEngine(WithStrategy(ForceMM)).JoinProject(r, r)
					return len(out)
				},
				"nonmm": func() int {
					out, _ := NewEngine(WithStrategy(ForceNonMM)).JoinProject(r, r)
					return len(out)
				},
				"wcoj": func() int {
					out, _ := NewEngine(WithStrategy(ForceWCOJ)).JoinProject(r, r)
					return len(out)
				},
				"postgres":    func() int { return len(baseline.HashJoinDedup(r, r)) },
				"mysql":       func() int { return len(baseline.SortMergeJoinDedup(r, r)) },
				"systemx":     func() int { return len(baseline.SystemXJoinDedup(r, r)) },
				"emptyheaded": func() int { return len(baseline.EmptyHeadedJoin(r, r, 2)) },
				"dedupsort": func() int {
					return len(joinproject.TwoPathMM(r, r, joinproject.Options{Dedup: joinproject.DedupSort}))
				},
			}
			for label, fn := range engines {
				if got := fn(); got != want {
					t.Errorf("%s/%s: %d pairs, oracle %d", name, label, got, want)
				}
			}
		})
	}
}

// TestStarShapesAgree checks the star algorithms across shapes at small
// scale.
func TestStarShapesAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, name := range []string{"RoadNet", "Jokes", "Protein"} {
		r, _ := dataset.ByName(name, 0.03)
		rels := []*relation.Relation{r, r, r}
		want := len(wcoj.ProjectStar(rels))
		mm := joinproject.StarMMSize(rels, joinproject.Options{Workers: 4})
		if int(mm) != want {
			t.Errorf("%s: StarMM %d tuples, oracle %d", name, mm, want)
		}
		nonmm := len(joinproject.StarNonMM(rels, joinproject.Options{Workers: 4}))
		if nonmm != want {
			t.Errorf("%s: StarNonMM %d tuples, oracle %d", name, nonmm, want)
		}
	}
}

// TestApplicationsOnShapes cross-checks the three applications on realistic
// shapes against each other (pairwise-independent implementations).
func TestApplicationsOnShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	for _, name := range []string{"DBLP", "Words"} {
		r, _ := dataset.ByName(name, 0.02)
		mm := NewEngine()
		comb := NewEngine(WithStrategy(ForceNonMM))
		for c := 1; c <= 3; c++ {
			a := mm.SimilarSets(r, c)
			b := comb.SimilarSets(r, c)
			if len(a) != len(b) {
				t.Errorf("%s SSJ c=%d: mm %d pairs, sizeaware %d", name, c, len(a), len(b))
			}
		}
		sa := mm.ContainedSets(r)
		sb := comb.ContainedSets(r)
		if len(sa) != len(sb) {
			t.Errorf("%s SCJ: mm %d, pretti %d", name, len(sa), len(sb))
		}
	}
}
