// Package core provides the public engine of the library: a façade that
// ties together the optimizer, the join-project algorithms and the
// application-level joins (set similarity, set containment, boolean set
// intersection) behind one configuration surface.
//
// The engine mirrors the paper's system design: every query first runs
// through the Section-5 cost-based optimizer, which either falls back to a
// plain worst-case optimal join (sparse inputs, |OUT⋈| ≤ 20N) or picks the
// degree thresholds for the matrix-multiplication algorithm of Section 3.
// Callers can override the choice per engine via options.
package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/acyclic"
	"repro/internal/bsi"
	"repro/internal/catalog"
	"repro/internal/compress"
	"repro/internal/govern"
	"repro/internal/joinproject"
	"repro/internal/obs"
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/relation"
	"repro/internal/scj"
	"repro/internal/ssj"
	"repro/internal/stats"
	"repro/internal/view"
	"repro/internal/wal"
)

// Strategy selects how the engine plans join-project queries.
type Strategy int

const (
	// Auto lets the cost-based optimizer choose (the default).
	Auto Strategy = iota
	// ForceMM always runs Algorithm 1 with matrix multiplication.
	ForceMM
	// ForceWCOJ always runs the plain worst-case optimal join + dedup.
	ForceWCOJ
	// ForceNonMM always runs the combinatorial Lemma-2 algorithm.
	ForceNonMM
)

// String names the strategy for plan reporting.
func (s Strategy) String() string {
	switch s {
	case Auto:
		return "auto"
	case ForceMM:
		return "mm"
	case ForceWCOJ:
		return "wcoj"
	case ForceNonMM:
		return "nonmm"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Config collects the engine knobs. The zero value is a sensible default:
// automatic planning on all cores.
type Config struct {
	Strategy       Strategy
	Workers        int
	Delta1, Delta2 int // explicit threshold overrides (0 = planner's choice)
	// SketchBudget > 0 lets the planner refine its output-size estimate
	// with a one-pass HyperLogLog over the full join whenever
	// |OUT⋈| ≤ SketchBudget (the Section-9 refinement).
	SketchBudget int64
	// MaxQueryBytes and MaxQueryRows cap what one query may materialize
	// (intermediate folds included); 0 means unlimited. An exceeded budget
	// aborts the query with govern.ErrBudgetExceeded instead of exhausting
	// memory. View refreshes evaluate through the same path and inherit the
	// caps.
	MaxQueryBytes int64
	MaxQueryRows  int64
	// Introspect sizes the workload-introspection layer (statement stats,
	// activity view, flight recorder); the zero value takes defaults.
	Introspect IntrospectionConfig
	// OptimizerConstants, when non-nil, pins the optimizer's (Ts, Tm, TI)
	// machine constants, skipping the startup probe.
	OptimizerConstants *optimizer.Constants
	// Recalibrate, when non-nil, enables online constant recalibration with
	// the given tuning (default off).
	Recalibrate *optimizer.RecalConfig
	// NearMarginBand overrides the decision-audit band (0 = default 1.5×).
	NearMarginBand float64
}

// Option mutates the engine configuration.
type Option func(*Config)

// WithWorkers bounds the engine's parallelism.
func WithWorkers(n int) Option { return func(c *Config) { c.Workers = n } }

// WithStrategy pins the planning strategy.
func WithStrategy(s Strategy) Option { return func(c *Config) { c.Strategy = s } }

// WithThresholds pins the degree thresholds Δ1, Δ2.
func WithThresholds(d1, d2 int) Option {
	return func(c *Config) { c.Delta1, c.Delta2 = d1, d2 }
}

// WithSketchRefinement enables sketch-refined output estimation in the
// planner for instances whose full join has at most budget tuples.
func WithSketchRefinement(budget int64) Option {
	return func(c *Config) { c.SketchBudget = budget }
}

// WithQueryBudget caps the bytes and rows one query may materialize (0:
// unlimited for that dimension).
func WithQueryBudget(maxBytes, maxRows int64) Option {
	return func(c *Config) { c.MaxQueryBytes, c.MaxQueryRows = maxBytes, maxRows }
}

// Engine evaluates join-project queries and their applications.
type Engine struct {
	cfg   Config
	opt   *optimizer.Optimizer
	cat   *catalog.Catalog
	views *view.Registry

	pmu     sync.Mutex
	persist *persistence // durability layer; nil until Open
	replica *Replica     // follower loop; nil unless StartReplica

	// Workload introspection; always non-nil (see IntrospectionConfig).
	stmts    *stats.Statements
	activity *stats.Activity
	flight   *stats.Flight
	planner  *stats.Planner
}

// NewEngine builds an engine; calibration of the optimizer's machine
// constants happens once per process (skipped when Config pins them).
func NewEngine(opts ...Option) *Engine {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	opt := optimizer.New()
	if cfg.OptimizerConstants != nil {
		opt = optimizer.NewWithConstants(*cfg.OptimizerConstants)
	}
	opt.NearMarginBand = cfg.NearMarginBand
	if cfg.Recalibrate != nil {
		opt.EnableRecalibration(*cfg.Recalibrate)
	}
	e := &Engine{
		cfg: cfg, opt: opt, cat: catalog.New(),
		stmts:    stats.NewStatements(cfg.Introspect.MaxStatements),
		activity: stats.NewActivity(),
		flight:   stats.NewFlight(cfg.Introspect.FlightSize, cfg.Introspect.FlightSample, cfg.Introspect.SlowThreshold),
		planner:  stats.NewPlanner(cfg.Introspect.MaxStatements),
	}
	e.views = view.NewRegistry(view.Config{
		Catalog:   e.cat,
		Optimizer: e.opt,
		Workers:   cfg.Workers,
		Evaluate: func(ctx context.Context, src string) (*query.Result, error) {
			return e.QueryContext(ctx, src)
		},
	})
	return e
}

// Plan describes how a query was (or would be) evaluated.
type Plan struct {
	Strategy       string
	Delta1, Delta2 int
	EstOut         int64
	OutJoin        int64
}

// String renders the plan as a one-line EXPLAIN.
func (p Plan) String() string {
	switch p.Strategy {
	case "mm":
		return fmt.Sprintf("plan=mm Δ1=%d Δ2=%d est|OUT|=%d |OUT⋈|=%d",
			p.Delta1, p.Delta2, p.EstOut, p.OutJoin)
	case "wcoj":
		return fmt.Sprintf("plan=wcoj |OUT⋈|=%d (≤ %d·N fallback)", p.OutJoin, optimizer.WCOJFallbackFactor)
	default:
		return fmt.Sprintf("plan=%s Δ1=%d Δ2=%d", p.Strategy, p.Delta1, p.Delta2)
	}
}

// planTwoPath resolves the strategy and thresholds for one 2-path instance.
func (e *Engine) planTwoPath(r, s *relation.Relation) Plan {
	p := Plan{Strategy: e.cfg.Strategy.String(), Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2}
	switch e.cfg.Strategy {
	case Auto:
		var dec optimizer.Decision
		if e.cfg.SketchBudget > 0 {
			dec = e.opt.ChooseWithSketch(r, s, e.cfg.Workers, e.cfg.SketchBudget)
		} else {
			dec = e.opt.Choose(r, s, e.cfg.Workers)
		}
		p.EstOut, p.OutJoin = dec.EstOut, dec.OutJoin
		if dec.UseWCOJ {
			p.Strategy = "wcoj"
		} else {
			p.Strategy = "mm"
			if p.Delta1 == 0 {
				p.Delta1 = dec.Delta1
			}
			if p.Delta2 == 0 {
				p.Delta2 = dec.Delta2
			}
		}
	case ForceWCOJ:
		p.Strategy = "wcoj"
	case ForceMM:
		p.Strategy = "mm"
	case ForceNonMM:
		p.Strategy = "nonmm"
	}
	return p
}

// wcojThreshold returns thresholds that classify every value as light,
// turning Algorithm 1 into the plain WCOJ + constant-time-dedup plan.
func wcojThreshold(r, s *relation.Relation) int {
	n := r.Size()
	if s.Size() > n {
		n = s.Size()
	}
	return n + 1
}

// JoinProject evaluates π_{x,z}(R(x,y) ⋈ S(z,y)) and returns the distinct
// pairs along with the chosen plan.
func (e *Engine) JoinProject(r, s *relation.Relation) ([][2]int32, Plan) {
	p := e.planTwoPath(r, s)
	opt := joinproject.Options{Delta1: p.Delta1, Delta2: p.Delta2, Workers: e.cfg.Workers}
	switch p.Strategy {
	case "wcoj":
		t := wcojThreshold(r, s)
		opt.Delta1, opt.Delta2 = t, t
		return joinproject.TwoPathMM(r, s, opt), p
	case "nonmm":
		return joinproject.TwoPathNonMM(r, s, opt), p
	default:
		return joinproject.TwoPathMM(r, s, opt), p
	}
}

// JoinProjectCounts evaluates the counting variant: every output pair with
// its exact witness count.
func (e *Engine) JoinProjectCounts(r, s *relation.Relation) ([]joinproject.PairCount, Plan) {
	p := e.planTwoPath(r, s)
	opt := joinproject.Options{Delta1: p.Delta1, Delta2: p.Delta2, Workers: e.cfg.Workers}
	switch p.Strategy {
	case "wcoj":
		t := wcojThreshold(r, s)
		opt.Delta1, opt.Delta2 = t, t
		return joinproject.TwoPathMMCounts(r, s, opt), p
	case "nonmm":
		return joinproject.TwoPathNonMMCounts(r, s, opt), p
	default:
		return joinproject.TwoPathMMCounts(r, s, opt), p
	}
}

// JoinProjectVisit streams every distinct output pair with its witness
// count to visit, without materializing the result. visit may be invoked
// concurrently when the engine is parallel; it must be safe for concurrent
// use. Returns the chosen plan.
func (e *Engine) JoinProjectVisit(r, s *relation.Relation, visit func(x, z, count int32)) Plan {
	p := e.planTwoPath(r, s)
	opt := joinproject.Options{Delta1: p.Delta1, Delta2: p.Delta2, Workers: e.cfg.Workers}
	if p.Strategy == "wcoj" {
		t := wcojThreshold(r, s)
		opt.Delta1, opt.Delta2 = t, t
	}
	joinproject.TwoPathMMVisit(r, s, opt, visit)
	return p
}

// StarJoin evaluates the projected star query over k relations.
func (e *Engine) StarJoin(rels []*relation.Relation) ([][]int32, Plan) {
	p := Plan{Strategy: e.cfg.Strategy.String(), Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2}
	opt := joinproject.Options{Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2, Workers: e.cfg.Workers}
	switch e.cfg.Strategy {
	case Auto:
		dec := e.opt.ChooseStar(rels, e.cfg.Workers)
		p.EstOut, p.OutJoin = dec.EstOut, dec.OutJoin
		if dec.UseWCOJ {
			p.Strategy = "wcoj"
			return joinproject.StarNonMM(rels, opt), p
		}
		p.Strategy = "mm"
		if opt.Delta1 == 0 {
			opt.Delta1 = dec.Delta1
		}
		if opt.Delta2 == 0 {
			opt.Delta2 = dec.Delta2
		}
		p.Delta1, p.Delta2 = opt.Delta1, opt.Delta2
		return joinproject.StarMM(rels, opt), p
	case ForceWCOJ, ForceNonMM:
		p.Strategy = "nonmm"
		return joinproject.StarNonMM(rels, opt), p
	default:
		p.Strategy = "mm"
		return joinproject.StarMM(rels, opt), p
	}
}

// SimilarSets returns all set pairs with overlap at least c, using the
// engine's planning strategy (MMJoin under Auto/ForceMM, SizeAware++ when
// the caller forces the combinatorial path).
func (e *Engine) SimilarSets(r *relation.Relation, c int) []ssj.Pair {
	opt := ssj.Options{Workers: e.cfg.Workers, Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2}
	if e.cfg.Strategy == ForceWCOJ || e.cfg.Strategy == ForceNonMM {
		return ssj.SizeAware(r, c, opt)
	}
	return ssj.MMJoin(r, c, opt)
}

// SimilarSetsOrdered returns similar pairs in decreasing overlap order.
func (e *Engine) SimilarSetsOrdered(r *relation.Relation, c int) []ssj.ScoredPair {
	opt := ssj.Options{Workers: e.cfg.Workers, Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2}
	return ssj.MMJoinOrdered(r, c, opt)
}

// ContainedSets returns every containment pair (sub ⊆ sup).
func (e *Engine) ContainedSets(r *relation.Relation) []scj.Pair {
	opt := scj.Options{Workers: e.cfg.Workers, Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2}
	if e.cfg.Strategy == ForceWCOJ || e.cfg.Strategy == ForceNonMM {
		return scj.PRETTI(r, opt)
	}
	return scj.MMJoin(r, opt)
}

// IntersectBatch answers a batch of boolean set-intersection queries.
func (e *Engine) IntersectBatch(r, s *relation.Relation, queries []bsi.Query) []bool {
	return bsi.AnswerBatch(r, s, queries, bsi.Options{
		UseMM:   e.cfg.Strategy != ForceWCOJ && e.cfg.Strategy != ForceNonMM,
		Workers: e.cfg.Workers,
	})
}

// GroupByCount evaluates γ_{x; COUNT(DISTINCT z), COUNT(*)}(R ⋈ S)
// output-sensitively, never materializing the join.
func (e *Engine) GroupByCount(r, s *relation.Relation) []joinproject.GroupCount {
	return joinproject.TwoPathGroupBy(r, s, joinproject.Options{
		Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2, Workers: e.cfg.Workers,
	})
}

// TopSimilarSets returns the k most similar set pairs with overlap ≥ c,
// keeping only a bounded heap while streaming the counting join.
func (e *Engine) TopSimilarSets(r *relation.Relation, c, k int) []ssj.ScoredPair {
	return ssj.TopK(r, c, k, ssj.Options{
		Workers: e.cfg.Workers, Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2,
	})
}

// KWaySimilarSets returns all k-tuples of distinct sets whose common
// intersection has size at least c, via the counting star join.
func (e *Engine) KWaySimilarSets(r *relation.Relation, k, c int) []ssj.Tuple {
	return ssj.KWaySimilar(r, k, c, ssj.Options{
		Workers: e.cfg.Workers, Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2,
	})
}

// CompressView builds the compressed (factorized) representation of
// π_{x,z}(R ⋈ S): light pairs stored explicitly, heavy pairs kept as the
// two bit-matrix factors. See internal/compress.
func (e *Engine) CompressView(r, s *relation.Relation) *compress.View {
	return compress.Build(r, s, compress.Options{
		Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2, Workers: e.cfg.Workers,
	})
}

// PathProject evaluates an endpoint-projected chain query
// π_{x0,xk}(R1(x0,x1) ⋈ ... ⋈ Rk(x_{k-1},xk)) by composing 2-path
// join-projects (the acyclic-queries extension).
func (e *Engine) PathProject(rels []*relation.Relation) ([][2]int32, error) {
	return acyclic.PathProject(rels, acyclic.Options{
		Join: joinproject.Options{Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2, Workers: e.cfg.Workers},
	})
}

// SnowflakeProject evaluates a star query whose arms are chains, projected
// onto the arm leaves.
func (e *Engine) SnowflakeProject(arms [][]*relation.Relation) ([][]int32, error) {
	return acyclic.SnowflakeProject(arms, acyclic.Options{
		Join: joinproject.Options{Delta1: e.cfg.Delta1, Delta2: e.cfg.Delta2, Workers: e.cfg.Workers},
	})
}

// Catalog exposes the engine's relation catalog: named registration,
// concurrent loads and the LRU plan cache behind Query.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Register indexes tuples as a relation and binds it in the catalog under
// name, making it addressable from query text.
func (e *Engine) Register(name string, pairs []relation.Pair) (*relation.Relation, error) {
	return e.cat.RegisterPairs(name, pairs)
}

// RegisterRelation binds an existing relation in the catalog under its name.
func (e *Engine) RegisterRelation(r *relation.Relation) error {
	return e.cat.Register(r.Name(), r)
}

// Mutate applies one coalesced insert/delete batch to a registered relation:
// the catalog swaps in the new immutable relation, plans over it are
// implicitly invalidated (plans over untouched relations stay cached), and
// every registered view reading it is patched by delta propagation before
// Mutate returns.
func (e *Engine) Mutate(name string, insert, del []relation.Pair) (catalog.Mutation, error) {
	return e.cat.Mutate(name, insert, del)
}

// RegisterView registers src as a named materialized view: it is evaluated
// once now, then kept fresh under Mutate — incrementally for acyclic
// single-component bodies, by flagged full refresh otherwise. With a data
// dir open, the registration is logged to the WAL; a log failure unwinds
// the registration so durability and memory never disagree.
func (e *Engine) RegisterView(ctx context.Context, name, src string) (*view.View, error) {
	p := e.persistRef()
	if p != nil {
		p.opMu.Lock()
		defer p.opMu.Unlock()
	}
	v, err := e.views.Register(ctx, name, src)
	if err != nil {
		return nil, err
	}
	if p != nil {
		if err := p.logViewOp(wal.KindRegisterView, name, v.Text()); err != nil {
			e.views.Drop(name)
			return nil, fmt.Errorf("core: logging view %q: %w", name, err)
		}
	}
	return v, nil
}

// View returns the registered view bound to name.
func (e *Engine) View(name string) (*view.View, bool) { return e.views.Get(name) }

// Views summarizes every registered view, sorted by name.
func (e *Engine) Views() []view.Info { return e.views.List() }

// DropView removes the view bound to name, reporting whether it existed.
// With a data dir open, the drop is logged to the WAL BEFORE the registry
// applies it — a log failure leaves the view registered (present true,
// error set), so a view never silently resurrects on restart because its
// drop record was lost, and an operational log error is never conflated
// with "no such view".
func (e *Engine) DropView(name string) (present bool, err error) {
	p := e.persistRef()
	if p != nil {
		p.opMu.Lock()
		defer p.opMu.Unlock()
		if _, ok := e.views.Get(name); !ok {
			return false, nil
		}
		if err := p.logViewOp(wal.KindDropView, name, ""); err != nil {
			return true, fmt.Errorf("core: logging drop of view %q: %w", name, err)
		}
	}
	return e.views.Drop(name), nil
}

// execOptions maps the engine configuration onto query execution options;
// WITH-clause hints in the query itself take precedence inside the executor.
func (e *Engine) execOptions() query.ExecOptions {
	return query.ExecOptions{
		Optimizer: e.opt,
		Workers:   e.cfg.Workers,
		Strategy:  strategyName(e.cfg.Strategy),
	}
}

func strategyName(s Strategy) string {
	switch s {
	case ForceMM:
		return "mm"
	case ForceWCOJ:
		return "wcoj"
	case ForceNonMM:
		return "nonmm"
	default:
		return ""
	}
}

// Query parses, plans and evaluates one text query against the catalog.
// Any join-project query over registered relations is supported — acyclic
// queries run the GYO fold pipeline, cyclic ones (triangles, cycles,
// cliques) are admitted via hypertree decomposition; compiled plans are
// cached per (query, catalog epoch).
func (e *Engine) Query(src string) (*query.Result, error) {
	return e.QueryContext(context.Background(), src)
}

// QueryContext is Query with cancellation: the context is checked between
// plan operators and during the compile-time bag materialization of cyclic
// queries. When the engine has a query budget configured and the context
// carries none yet, a fresh per-query budget is attached — so every
// top-level query (and every view refresh, which evaluates through here)
// gets its own cap, while nested evaluation shares the caller's.
func (e *Engine) QueryContext(ctx context.Context, src string) (*query.Result, error) {
	if (e.cfg.MaxQueryBytes > 0 || e.cfg.MaxQueryRows > 0) && govern.FromContext(ctx) == nil {
		ctx = govern.WithBudget(ctx, govern.New(e.cfg.MaxQueryBytes, e.cfg.MaxQueryRows))
	}
	start := time.Now()
	p, hit, err := e.cat.PrepareContext(ctx, src)
	if err != nil {
		queryErrors.Inc()
		// Prepare failures re-derive the fingerprint from the raw text (an
		// extra parse only on this cold error path); unparseable statements
		// land in the <invalid> bucket.
		e.recordQuery(ctx, query.FingerprintText(src), src, start,
			classifyOutcome(err, false), 0, 0, false, nil, err, nil)
		return nil, err
	}
	prepared := time.Now()

	// The per-query cancel lets /stats/activity kill this evaluation from
	// outside; the executor's Stop hooks poll the derived context inside the
	// kernels.
	qctx, cancel := context.WithCancel(ctx)
	defer cancel()
	act := e.activity.Begin(obs.RequestIDFrom(ctx), p.Fingerprint, p.Text, cancel)
	// Deferred so a panicking evaluation (confined to its request by the
	// server's guard) still leaves the activity view.
	defer e.activity.Finish(act)
	opts := e.execOptions()
	opts.Observer = act
	res, err := p.Execute(qctx, opts)
	if err != nil {
		queryErrors.Inc()
		e.recordQuery(ctx, p.Fingerprint, p.Text, start,
			classifyOutcome(err, act.Killed()), act.Rows(), act.Bytes(), hit, nil, err, nil)
		return nil, err
	}
	res.Plan.CacheHit = hit
	res.Plan.PrepareNs = prepared.Sub(start).Nanoseconds()
	queryOK.Inc()
	queryPrepareSeconds.Observe(float64(res.Plan.PrepareNs) / 1e9)
	querySeconds.ObserveSince(start)
	queryRowsTotal.Add(uint64(len(res.Tuples)))
	queryBudgetBytes.Add(uint64(res.Plan.BudgetBytes))
	e.recordQuery(ctx, p.Fingerprint, p.Text, start, stats.OutcomeOK,
		int64(len(res.Tuples)), res.Plan.BudgetBytes, hit, res.Plan.Strategies(), nil,
		func() string {
			// Lazily rendered only when the flight recorder retains the
			// record; the copy keeps the caller's plan un-mutated.
			pl := *res.Plan
			pl.Analyzed = true
			return pl.String()
		})
	e.notePlanner(p.Fingerprint, res.Plan)
	// Between queries is the only place constants may move: every decision
	// in the evaluation above read one consistent snapshot.
	e.opt.MaybeRecalibrate()
	return res, nil
}

// QuerySorted evaluates src with the result in canonical sorted order,
// serving repeats from the catalog's sorted-result cache. The cache key is
// (canonical query text, version signature of the referenced relations) —
// the same key family as the plan cache — so a limit/cursor page sequence
// over an unchanged catalog re-serves one sorted slice instead of
// re-evaluating and re-sorting per page, and any effective mutation of a
// referenced relation changes the signature, invalidating exactly the
// results it could have changed.
func (e *Engine) QuerySorted(ctx context.Context, src string) (catalog.SortedResult, error) {
	q, err := query.Parse(src)
	if err != nil {
		return catalog.SortedResult{}, err
	}
	text, sig := q.String(), e.cat.Signature(q)
	if r, ok := e.cat.CachedSortedResult(text, sig); ok {
		return r, nil
	}
	res, err := e.QueryContext(ctx, src)
	if err != nil {
		return catalog.SortedResult{}, err
	}
	tuples := res.Tuples
	if tuples == nil {
		tuples = [][]int64{}
	}
	query.SortTuples(tuples)
	r := catalog.SortedResult{
		Columns: res.Columns, Tuples: tuples,
		Plan: res.Plan.String(), PlanCached: res.Plan.CacheHit,
	}
	e.cat.StoreSortedResult(text, sig, r)
	return r, nil
}

// ExplainQuery compiles a text query and returns its predicted plan without
// executing it. Per-node MM/WCOJ choices whose inputs exist at compile time
// are concrete; choices depending on intermediate results are deferred.
func (e *Engine) ExplainQuery(src string) (*query.Plan, error) {
	return e.ExplainQueryContext(context.Background(), src)
}

// ExplainQueryContext is ExplainQuery with cancellation: compilation (which
// includes semijoin reduction and, for cyclic queries, bag materialization)
// honors the context deadline.
func (e *Engine) ExplainQueryContext(ctx context.Context, src string) (*query.Plan, error) {
	start := time.Now()
	p, hit, err := e.cat.PrepareContext(ctx, src)
	if err != nil {
		return nil, err
	}
	prepNs := time.Since(start).Nanoseconds()
	plan := p.Explain(e.execOptions())
	plan.CacheHit = hit
	plan.PrepareNs = prepNs
	return plan, nil
}

// Optimizer exposes the engine's calibrated optimizer (for inspection and
// the benchmark harness).
func (e *Engine) Optimizer() *optimizer.Optimizer { return e.opt }

// Explain returns the plan the engine would choose without running the
// query.
func (e *Engine) Explain(r, s *relation.Relation) Plan { return e.planTwoPath(r, s) }
