package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/view"
	"repro/internal/wal"
)

// ErrNoPersistence marks operations (Checkpoint) that need a data dir on an
// engine running without one; callers distinguish it (errors.Is) from
// operational failures of an attached durability layer.
var ErrNoPersistence = errors.New("persistence not enabled (no data dir)")

// PersistOptions configures Engine.Open.
type PersistOptions struct {
	// Fsync is the WAL fsync policy (default wal.FsyncAlways).
	Fsync wal.Policy
	// FsyncInterval is the wal.FsyncInterval period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL rotation threshold (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery triggers an automatic background checkpoint after this
	// many logged records since the last one (≤ 0 disables; checkpoints can
	// still be requested via Checkpoint / POST /admin/checkpoint).
	CheckpointEvery int
}

// RecoveryStats summarizes what Open recovered, for logs and /healthz.
type RecoveryStats struct {
	// SnapshotLSN is the WAL position of the loaded checkpoint (0: none).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// RestoredRelations and RestoredViews count the snapshot sections.
	RestoredRelations int `json:"restored_relations"`
	// RestoredViews counts views restored from the snapshot (incremental
	// ones adopt their persisted count stores without recomputation).
	RestoredViews int `json:"restored_views"`
	// ReplayedRecords counts WAL records replayed past the snapshot.
	ReplayedRecords int `json:"replayed_records"`
	// ReplayedMutations counts the tuple-delta records among them — each one
	// re-maintained the registered views incrementally through the normal
	// subscriber path.
	ReplayedMutations int `json:"replayed_mutations"`
	// DurationMs is the wall time of the whole recovery.
	DurationMs float64 `json:"duration_ms"`
}

// CheckpointInfo summarizes one completed checkpoint.
type CheckpointInfo struct {
	// Snapshot is the committed image file name.
	Snapshot string `json:"snapshot"`
	// AppliedLSN is the WAL position the image reflects.
	AppliedLSN uint64 `json:"applied_lsn"`
	// Relations and Views count the image sections.
	Relations int `json:"relations"`
	// Views counts the checkpointed view states.
	Views int `json:"views"`
	// Bytes is the encoded image size.
	Bytes int `json:"bytes"`
	// DurationMs is the wall time of capture + write + log truncation.
	DurationMs float64 `json:"duration_ms"`
}

// PersistenceStats is the durability section of /healthz.
type PersistenceStats struct {
	// Enabled reports whether the engine runs with a data dir.
	Enabled bool `json:"enabled"`
	// Dir is the data directory.
	Dir string `json:"dir,omitempty"`
	// WAL is the log's point-in-time summary.
	WAL wal.Stats `json:"wal,omitzero"`
	// Checkpoints counts checkpoints since Open.
	Checkpoints uint64 `json:"checkpoints"`
	// LastCheckpointLSN is the applied LSN of the newest checkpoint.
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn"`
	// CheckpointEvery echoes the auto-checkpoint threshold (0: manual only).
	CheckpointEvery int `json:"checkpoint_every"`
	// Recovery is what Open recovered.
	Recovery RecoveryStats `json:"recovery"`
}

// persistence is the engine's durability sink: it owns the WAL, implements
// catalog.Persistence, logs view registrations, and runs checkpoints.
type persistence struct {
	eng  *Engine
	dir  string
	w    *wal.WAL
	opts PersistOptions

	// opMu serializes view-op logging and checkpoint state capture, so a
	// checkpoint never snapshots a view whose registration record lies past
	// the checkpoint's applied LSN (catalog mutations are already ordered by
	// the catalog's own mutation lock, which the capture freeze holds).
	opMu sync.Mutex

	// ckptMu serializes whole checkpoints (capture + file install + prune +
	// WAL truncation): a manual POST /admin/checkpoint racing the automatic
	// one could otherwise prune the snapshot the other's manifest points at.
	ckptMu sync.Mutex

	mu           sync.Mutex // counters below
	since        int        // records since last checkpoint
	checkpointin bool       // auto-checkpoint in flight
	checkpoints  uint64
	lastCkptLSN  uint64

	wg       sync.WaitGroup
	recovery RecoveryStats
}

// LogMutation implements catalog.Persistence: it runs under the catalog's
// mutation lock, appending the effective delta (or the full image of a
// reset) before the catalog applies it.
func (p *persistence) LogMutation(m catalog.Mutation) error {
	rec := &wal.Record{Name: m.Name}
	switch {
	case m.Reset && m.New != nil:
		rec.Kind = wal.KindRegister
		rec.Pairs = m.New.Pairs()
	case m.Reset:
		rec.Kind = wal.KindDrop
	default:
		rec.Kind = wal.KindMutate
		rec.Added, rec.Removed = m.Added, m.Removed
	}
	if _, err := p.w.Append(rec); err != nil {
		return err
	}
	p.bumpSince()
	return nil
}

// logViewOp appends a view registration or drop record.
func (p *persistence) logViewOp(kind byte, name, text string) error {
	if _, err := p.w.Append(&wal.Record{Kind: kind, Name: name, Query: text}); err != nil {
		return err
	}
	p.bumpSince()
	return nil
}

// bumpSince advances the records-since-checkpoint counter and spawns an
// automatic background checkpoint at the threshold. The goroutine runs
// outside the caller's locks (checkpointing takes the catalog freeze, which
// the logging caller may hold).
func (p *persistence) bumpSince() {
	p.mu.Lock()
	p.since++
	trigger := p.opts.CheckpointEvery > 0 && p.since >= p.opts.CheckpointEvery && !p.checkpointin
	if trigger {
		p.checkpointin = true
		p.wg.Add(1)
	}
	p.mu.Unlock()
	if trigger {
		go func() {
			defer p.wg.Done()
			_, _ = p.eng.Checkpoint() // errors surface in PersistenceStats counters staying flat
			p.mu.Lock()
			p.checkpointin = false
			p.mu.Unlock()
		}()
	}
}

// Open attaches a durability layer to the engine: it recovers the state
// persisted in dir (latest snapshot, then the WAL tail replayed through the
// normal mutation path, so registered views re-maintain incrementally during
// replay), then logs every subsequent catalog and view mutation to the WAL
// ahead of applying it. Open must run before the engine holds any state of
// its own — it is the first call on a serving engine, not a merge.
func (e *Engine) Open(dir string, opts PersistOptions) error {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.persist != nil {
		return fmt.Errorf("core: engine already has data dir %s", e.persist.dir)
	}
	if e.cat.Len() > 0 || e.views.Len() > 0 {
		return fmt.Errorf("core: Open on a non-empty engine (%d relations, %d views)", e.cat.Len(), e.views.Len())
	}
	start := time.Now()
	var rec RecoveryStats

	// 1. Latest checkpoint, if any.
	man, ok, err := snapshot.LoadManifest(dir)
	if err != nil {
		return fmt.Errorf("core: open %s: %w", dir, err)
	}
	if ok {
		st, err := snapshot.Load(dir, man)
		if err != nil {
			return fmt.Errorf("core: open %s: %w", dir, err)
		}
		rec.SnapshotLSN = st.AppliedLSN
		for _, r := range st.Relations {
			// Images decode strictly sorted, so index rebuild skips a sort.
			if err := e.cat.Register(r.Name, relation.FromSortedPairs(r.Name, r.Pairs)); err != nil {
				return fmt.Errorf("core: restore relation %q: %w", r.Name, err)
			}
			rec.RestoredRelations++
		}
		for _, v := range st.Views {
			entries := make([]view.StateEntry, len(v.Entries))
			for i, t := range v.Entries {
				entries[i] = view.StateEntry{Vals: t.Vals, Count: t.Count}
			}
			if err := e.views.Restore(view.State{
				Name: v.Name, Text: v.Text, Incremental: v.Incremental, Entries: entries,
			}); err != nil {
				return fmt.Errorf("core: restore view %q: %w", v.Name, err)
			}
			rec.RestoredViews++
		}
	}

	// 2. WAL tail, replayed through the normal mutation path: relations
	// rebuild by linear delta merges and views re-maintain incrementally,
	// exactly as they would have live.
	if err := wal.Replay(dir, rec.SnapshotLSN, func(lsn uint64, r *wal.Record) error {
		rec.ReplayedRecords++
		return e.applyRecord(r, &rec)
	}); err != nil {
		return fmt.Errorf("core: replaying wal: %w", err)
	}

	// 3. Open the log for appends (truncating any torn tail) and attach the
	// sink — from here on every mutation is logged before it is applied.
	w, err := wal.Open(dir, wal.Options{
		Policy: opts.Fsync, Interval: opts.FsyncInterval, SegmentBytes: opts.SegmentBytes,
	})
	if err != nil {
		return err
	}
	rec.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	p := &persistence{eng: e, dir: dir, w: w, opts: opts, recovery: rec, lastCkptLSN: rec.SnapshotLSN}
	e.cat.SetPersistence(p)
	e.persist = p
	return nil
}

// applyRecord replays one WAL record through the engine.
func (e *Engine) applyRecord(r *wal.Record, rec *RecoveryStats) error {
	switch r.Kind {
	case wal.KindMutate:
		if _, err := e.cat.Mutate(r.Name, r.Added, r.Removed); err != nil {
			return err
		}
		rec.ReplayedMutations++
	case wal.KindRegister:
		if err := e.cat.Register(r.Name, relation.FromSortedPairs(r.Name, r.Pairs)); err != nil {
			return err
		}
	case wal.KindDrop:
		if _, err := e.cat.Drop(r.Name); err != nil {
			return err
		}
	case wal.KindRegisterView:
		// A checkpoint captured between a view's registration and its log
		// record can leave the view both in the snapshot and in the tail;
		// the duplicate registration is benign, prefer the restored store.
		if _, err := e.views.Register(context.Background(), r.Name, r.Query); err != nil &&
			!strings.Contains(err.Error(), "already registered") {
			return err
		}
	case wal.KindDropView:
		e.views.Drop(r.Name)
	default:
		return fmt.Errorf("core: unknown wal record kind %d", r.Kind)
	}
	return nil
}

// Checkpoint captures one consistent image of the catalog and every view
// store under the catalog's mutation freeze, writes it atomically next to
// the WAL, commits it via the manifest, and reclaims the WAL segments the
// image supersedes. Serving continues during the write; only the in-memory
// capture blocks mutations.
func (e *Engine) Checkpoint() (*CheckpointInfo, error) {
	p := e.persistRef()
	if p == nil {
		return nil, fmt.Errorf("core: %w", ErrNoPersistence)
	}
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	start := time.Now()
	var st snapshot.State
	p.opMu.Lock()
	e.cat.Freeze(func() {
		rels, _, _ := e.cat.Snapshot()
		names := make([]string, 0, len(rels))
		for name := range rels {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st.Relations = append(st.Relations, snapshot.Relation{Name: name, Pairs: rels[name].Pairs()})
		}
		for _, vs := range e.views.ExportStates() {
			entries := make([]snapshot.CountedTuple, len(vs.Entries))
			for i, en := range vs.Entries {
				entries[i] = snapshot.CountedTuple{Vals: en.Vals, Count: en.Count}
			}
			st.Views = append(st.Views, snapshot.View{
				Name: vs.Name, Text: vs.Text, Incremental: vs.Incremental, Entries: entries,
			})
		}
		st.AppliedLSN = p.w.NextLSN() - 1
	})
	p.opMu.Unlock()

	name, size, err := snapshot.Write(p.dir, &st)
	if err != nil {
		return nil, err
	}
	if err := snapshot.WriteManifest(p.dir, snapshot.Manifest{Snapshot: name, AppliedLSN: st.AppliedLSN}); err != nil {
		return nil, err
	}
	if err := snapshot.Prune(p.dir, name); err != nil {
		return nil, err
	}
	if err := p.w.Rotate(); err != nil {
		return nil, err
	}
	if err := p.w.TruncateBefore(st.AppliedLSN + 1); err != nil {
		return nil, err
	}
	p.mu.Lock()
	p.checkpoints++
	p.lastCkptLSN = st.AppliedLSN
	p.since = 0
	p.mu.Unlock()
	return &CheckpointInfo{
		Snapshot: name, AppliedLSN: st.AppliedLSN,
		Relations: len(st.Relations), Views: len(st.Views), Bytes: size,
		DurationMs: float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// Close detaches the durability layer: no further mutations are logged, the
// in-flight auto-checkpoint (if any) completes, and the WAL is fsynced and
// closed. The in-memory engine remains usable (but no longer durable);
// graceful shutdown calls Close after draining in-flight queries.
func (e *Engine) Close() error {
	e.pmu.Lock()
	p := e.persist
	e.persist = nil
	e.pmu.Unlock()
	if p == nil {
		return nil
	}
	e.cat.SetPersistence(nil)
	p.wg.Wait()
	return p.w.Close()
}

// persistRef returns the current durability layer, or nil.
func (e *Engine) persistRef() *persistence {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return e.persist
}

// RecoveryStats reports what Open recovered; the zero value when the engine
// runs without a data dir.
func (e *Engine) RecoveryStats() RecoveryStats {
	if p := e.persistRef(); p != nil {
		return p.recovery
	}
	return RecoveryStats{}
}

// PersistenceStats summarizes the durability layer for /healthz.
func (e *Engine) PersistenceStats() PersistenceStats {
	p := e.persistRef()
	if p == nil {
		return PersistenceStats{}
	}
	p.mu.Lock()
	ckpts, last := p.checkpoints, p.lastCkptLSN
	p.mu.Unlock()
	return PersistenceStats{
		Enabled: true, Dir: p.dir, WAL: p.w.Stats(),
		Checkpoints: ckpts, LastCheckpointLSN: last,
		CheckpointEvery: p.opts.CheckpointEvery,
		Recovery:        p.recovery,
	}
}
