package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/faultfs"
	"repro/internal/relation"
	"repro/internal/snapshot"
	"repro/internal/view"
	"repro/internal/wal"
)

// ErrNoPersistence marks operations (Checkpoint) that need a data dir on an
// engine running without one; callers distinguish it (errors.Is) from
// operational failures of an attached durability layer.
var ErrNoPersistence = errors.New("persistence not enabled (no data dir)")

// ErrDegraded marks mutations rejected because persistent WAL failures have
// flipped the engine into read-only degraded mode: queries keep serving,
// mutations fail fast until a successful checkpoint or Resume re-arms
// writes. Servers map it to HTTP 503.
var ErrDegraded = errors.New("engine degraded: read-only (WAL unavailable)")

// Append retry defaults: a failed WAL append is retried with doubling
// backoff before the engine degrades.
const (
	// DefaultAppendRetries is how many times a failed append is retried.
	DefaultAppendRetries = 2
	// DefaultRetryBackoff is the first retry delay; it doubles per retry.
	DefaultRetryBackoff = 2 * time.Millisecond
	// maxRetryBackoff caps the doubling.
	maxRetryBackoff = 50 * time.Millisecond
)

// Adaptive checkpoint defaults.
const (
	// DefaultReplayNsPerRecord seeds the replay-cost estimate before any
	// recovery has been observed (~25µs/record, a conservative spinning-rust
	// figure).
	DefaultReplayNsPerRecord = 25_000
	// minAdaptiveRecords floors the adaptive trigger so a tiny replay target
	// cannot checkpoint after every record.
	minAdaptiveRecords = 32
)

// PersistOptions configures Engine.Open.
type PersistOptions struct {
	// Fsync is the WAL fsync policy (default wal.FsyncAlways).
	Fsync wal.Policy
	// FsyncInterval is the wal.FsyncInterval period (default 100ms).
	FsyncInterval time.Duration
	// SegmentBytes is the WAL rotation threshold (default 64 MiB).
	SegmentBytes int64
	// CheckpointEvery triggers an automatic background checkpoint after this
	// many logged records since the last one. It overrides the adaptive
	// replay-cost policy; ≤ 0 defers to CheckpointReplayTarget (and with
	// both unset, auto-checkpointing is off; manual Checkpoint still works).
	CheckpointEvery int
	// CheckpointReplayTarget is the adaptive policy: checkpoint when the
	// estimated replay cost of the WAL tail (records since last checkpoint ×
	// observed replay ns/record from recovery stats, DefaultReplayNsPerRecord
	// before any recovery) exceeds this duration. ≤ 0 disables.
	CheckpointReplayTarget time.Duration
	// AppendRetries is how many times a failed WAL append is retried with
	// doubling backoff before the engine degrades (default
	// DefaultAppendRetries; negative means no retries).
	AppendRetries int
	// RetryBackoff is the first retry delay (default DefaultRetryBackoff).
	RetryBackoff time.Duration
	// OnDegraded, when set, is called once per healthy→degraded transition
	// with the cause (for logging or a crash-on-degrade policy).
	OnDegraded func(cause error)
	// FS is the filesystem the durability layer performs I/O through; nil
	// means the real filesystem. The torture suite injects faults here.
	FS faultfs.FS
}

// RecoveryStats summarizes what Open recovered, for logs and /healthz.
type RecoveryStats struct {
	// SnapshotLSN is the WAL position of the loaded checkpoint (0: none).
	SnapshotLSN uint64 `json:"snapshot_lsn"`
	// RestoredRelations and RestoredViews count the snapshot sections.
	RestoredRelations int `json:"restored_relations"`
	// RestoredViews counts views restored from the snapshot (incremental
	// ones adopt their persisted count stores without recomputation).
	RestoredViews int `json:"restored_views"`
	// ReplayedRecords counts WAL records replayed past the snapshot.
	ReplayedRecords int `json:"replayed_records"`
	// ReplayedMutations counts the tuple-delta records among them — each one
	// re-maintained the registered views incrementally through the normal
	// subscriber path.
	ReplayedMutations int `json:"replayed_mutations"`
	// DurationMs is the wall time of the whole recovery.
	DurationMs float64 `json:"duration_ms"`
	// ReplayNsPerRecord is the observed replay cost (replay wall time /
	// replayed records), feeding the adaptive checkpoint policy; 0 when no
	// records replayed.
	ReplayNsPerRecord float64 `json:"replay_ns_per_record"`
}

// CheckpointInfo summarizes one completed checkpoint.
type CheckpointInfo struct {
	// Snapshot is the committed image file name.
	Snapshot string `json:"snapshot"`
	// AppliedLSN is the WAL position the image reflects.
	AppliedLSN uint64 `json:"applied_lsn"`
	// Relations and Views count the image sections.
	Relations int `json:"relations"`
	// Views counts the checkpointed view states.
	Views int `json:"views"`
	// Bytes is the encoded image size.
	Bytes int `json:"bytes"`
	// DurationMs is the wall time of capture + write + log truncation.
	DurationMs float64 `json:"duration_ms"`
}

// PersistenceStats is the durability section of /healthz.
type PersistenceStats struct {
	// Enabled reports whether the engine runs with a data dir.
	Enabled bool `json:"enabled"`
	// Dir is the data directory.
	Dir string `json:"dir,omitempty"`
	// WAL is the log's point-in-time summary.
	WAL wal.Stats `json:"wal,omitzero"`
	// Checkpoints counts checkpoints since Open.
	Checkpoints uint64 `json:"checkpoints"`
	// LastCheckpointLSN is the applied LSN of the newest checkpoint.
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn"`
	// LastCheckpointUnix is the Unix time of the newest successful
	// checkpoint in this process (0: none since Open).
	LastCheckpointUnix int64 `json:"last_checkpoint_unix,omitempty"`
	// CheckpointEvery echoes the auto-checkpoint threshold (0: manual only).
	CheckpointEvery int `json:"checkpoint_every"`
	// CheckpointReplayTargetMs echoes the adaptive replay-cost target.
	CheckpointReplayTargetMs float64 `json:"checkpoint_replay_target_ms,omitempty"`
	// CheckpointFailures counts failed checkpoint attempts since Open.
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	// LastCheckpointError is the most recent checkpoint failure (sticky
	// until the next success).
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
	// Degraded reports read-only degraded mode (WAL unavailable).
	Degraded bool `json:"degraded"`
	// DegradedCause is the error that degraded the engine.
	DegradedCause string `json:"degraded_cause,omitempty"`
	// DegradedSince is the RFC3339 time of the degradation.
	DegradedSince string `json:"degraded_since,omitempty"`
	// Recovery is what Open recovered.
	Recovery RecoveryStats `json:"recovery"`
}

// persistence is the engine's durability sink: it owns the WAL, implements
// catalog.Persistence, logs view registrations, and runs checkpoints.
type persistence struct {
	eng  *Engine
	dir  string
	w    *wal.WAL
	opts PersistOptions

	// opMu serializes view-op logging and checkpoint state capture, so a
	// checkpoint never snapshots a view whose registration record lies past
	// the checkpoint's applied LSN (catalog mutations are already ordered by
	// the catalog's own mutation lock, which the capture freeze holds).
	opMu sync.Mutex

	// ckptMu serializes whole checkpoints (capture + file install + prune +
	// WAL truncation): a manual POST /admin/checkpoint racing the automatic
	// one could otherwise prune the snapshot the other's manifest points at.
	ckptMu sync.Mutex

	mu           sync.Mutex // counters and degraded state below
	since        int        // records since last checkpoint
	checkpointin bool       // auto-checkpoint in flight
	checkpoints  uint64
	ckptFailures uint64
	lastCkptErr  string
	lastCkptLSN  uint64
	lastCkptTime time.Time // last successful own-dir checkpoint (zero: none)
	degraded     bool
	degCause     error
	degSince     time.Time
	replayNsRec  float64 // observed replay cost per record

	wg       sync.WaitGroup
	recovery RecoveryStats
}

// LogMutation implements catalog.Persistence: it runs under the catalog's
// mutation lock, appending the effective delta (or the full image of a
// reset) before the catalog applies it.
func (p *persistence) LogMutation(m catalog.Mutation) error {
	rec := &wal.Record{Name: m.Name}
	switch {
	case m.Reset && m.New != nil && m.Origin != nil:
		// A file-backed registration logs the ~100-byte path+hash reference
		// instead of the full tuple image, keeping the log (and shipped
		// replication segments) small; replay re-reads and verifies the file.
		rec.Kind = wal.KindRegisterFile
		rec.Path = m.Origin.Path
		rec.Hash = m.Origin.SHA256[:]
		rec.Tuples = m.Origin.Tuples
	case m.Reset && m.New != nil:
		rec.Kind = wal.KindRegister
		rec.Pairs = m.New.Pairs()
	case m.Reset:
		rec.Kind = wal.KindDrop
	default:
		rec.Kind = wal.KindMutate
		rec.Added, rec.Removed = m.Added, m.Removed
	}
	if err := p.appendRetry(rec); err != nil {
		return err
	}
	p.bumpSince()
	return nil
}

// logViewOp appends a view registration or drop record.
func (p *persistence) logViewOp(kind byte, name, text string) error {
	if err := p.appendRetry(&wal.Record{Kind: kind, Name: name, Query: text}); err != nil {
		return err
	}
	p.bumpSince()
	return nil
}

// appendRetry appends one record, retrying transient failures with capped
// doubling backoff. Exhausted retries flip the engine into read-only
// degraded mode; a degraded engine fails fast without touching the disk.
// Retries run under the catalog's mutation lock, so the defaults keep the
// worst-case stall to a few milliseconds. Permanent non-disk errors — a
// mutation racing Close hits wal.ErrClosed — fail fast without retrying or
// degrading: they say nothing about disk health, and degrading on them
// would turn a clean shutdown into a spurious OnDegraded firing.
func (p *persistence) appendRetry(rec *wal.Record) error {
	p.mu.Lock()
	if p.degraded {
		cause := p.degCause
		p.mu.Unlock()
		return fmt.Errorf("%w; cause: %v", ErrDegraded, cause)
	}
	p.mu.Unlock()
	retries := p.opts.AppendRetries
	backoff := p.opts.RetryBackoff
	var err error
	for attempt := 0; ; attempt++ {
		if _, err = p.w.Append(rec); err == nil {
			return nil
		}
		if errors.Is(err, wal.ErrClosed) {
			return err
		}
		if attempt >= retries {
			break
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > maxRetryBackoff {
			backoff = maxRetryBackoff
		}
	}
	p.enterDegraded(err)
	return fmt.Errorf("%w; cause: %v", ErrDegraded, err)
}

// enterDegraded flips the engine read-only (idempotent) and fires the
// OnDegraded hook on the transition.
func (p *persistence) enterDegraded(cause error) {
	p.mu.Lock()
	if p.degraded {
		p.mu.Unlock()
		return
	}
	p.degraded = true
	p.degCause = cause
	p.degSince = time.Now()
	hook := p.opts.OnDegraded
	p.mu.Unlock()
	degradedGauge.Set(1)
	degradedTotal.Inc()
	if hook != nil {
		hook(cause)
	}
}

// tryRearm probes the WAL (repairing any damaged tail and forcing an
// fsync) and, on success, clears degraded mode. It reports whether the
// engine accepts writes afterwards.
func (p *persistence) tryRearm() error {
	if err := p.w.Probe(); err != nil {
		return err
	}
	p.mu.Lock()
	p.degraded = false
	p.degCause = nil
	p.degSince = time.Time{}
	p.mu.Unlock()
	degradedGauge.Set(0)
	return nil
}

// bumpSince advances the records-since-checkpoint counter and spawns an
// automatic background checkpoint at the policy threshold. The goroutine
// runs outside the caller's locks (checkpointing takes the catalog freeze,
// which the logging caller may hold).
//
// Policy: an explicit CheckpointEvery count overrides; otherwise the
// adaptive rule triggers when the estimated replay cost of the accumulated
// tail — records × observed ns/record from the last recovery (seeded with
// DefaultReplayNsPerRecord) — crosses CheckpointReplayTarget.
func (p *persistence) bumpSince() {
	p.mu.Lock()
	p.since++
	var due bool
	switch {
	case p.opts.CheckpointEvery > 0:
		due = p.since >= p.opts.CheckpointEvery
	case p.opts.CheckpointReplayTarget > 0:
		nsRec := p.replayNsRec
		if nsRec <= 0 {
			nsRec = DefaultReplayNsPerRecord
		}
		due = p.since >= minAdaptiveRecords &&
			float64(p.since)*nsRec >= float64(p.opts.CheckpointReplayTarget.Nanoseconds())
	}
	trigger := due && !p.checkpointin
	if trigger {
		p.checkpointin = true
		p.wg.Add(1)
	}
	p.mu.Unlock()
	if trigger {
		go func() {
			defer p.wg.Done()
			_, _ = p.eng.Checkpoint() // failures land in PersistenceStats counters
			p.mu.Lock()
			p.checkpointin = false
			p.mu.Unlock()
		}()
	}
}

// Open attaches a durability layer to the engine: it recovers the state
// persisted in dir (latest snapshot, then the WAL tail replayed through the
// normal mutation path, so registered views re-maintain incrementally during
// replay), then logs every subsequent catalog and view mutation to the WAL
// ahead of applying it. Open must run before the engine holds any state of
// its own — it is the first call on a serving engine, not a merge.
func (e *Engine) Open(dir string, opts PersistOptions) error {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.persist != nil {
		return fmt.Errorf("core: engine already has data dir %s", e.persist.dir)
	}
	if e.cat.Len() > 0 || e.views.Len() > 0 {
		return fmt.Errorf("core: Open on a non-empty engine (%d relations, %d views)", e.cat.Len(), e.views.Len())
	}
	if opts.AppendRetries == 0 {
		opts.AppendRetries = DefaultAppendRetries
	} else if opts.AppendRetries < 0 {
		opts.AppendRetries = 0
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = DefaultRetryBackoff
	}
	start := time.Now()
	var rec RecoveryStats

	// 1. Latest checkpoint, if any.
	man, ok, err := snapshot.LoadManifestFS(opts.FS, dir)
	if err != nil {
		return fmt.Errorf("core: open %s: %w", dir, err)
	}
	if ok {
		st, err := snapshot.LoadFS(opts.FS, dir, man)
		if err != nil {
			return fmt.Errorf("core: open %s: %w", dir, err)
		}
		if err := e.restoreSnapshot(st, &rec); err != nil {
			return err
		}
	}

	// 2. WAL tail, replayed through the normal mutation path: relations
	// rebuild by linear delta merges and views re-maintain incrementally,
	// exactly as they would have live. The replay is timed per record to
	// feed the adaptive checkpoint policy.
	replayStart := time.Now()
	if err := wal.ReplayFS(opts.FS, dir, rec.SnapshotLSN, func(lsn uint64, r *wal.Record) error {
		rec.ReplayedRecords++
		return e.applyRecord(r, &rec)
	}); err != nil {
		return fmt.Errorf("core: replaying wal: %w", err)
	}
	if rec.ReplayedRecords > 0 {
		rec.ReplayNsPerRecord = float64(time.Since(replayStart).Nanoseconds()) / float64(rec.ReplayedRecords)
	}

	// 3. Open the log for appends (truncating any torn tail) and attach the
	// sink — from here on every mutation is logged before it is applied.
	w, err := wal.Open(dir, wal.Options{
		Policy: opts.Fsync, Interval: opts.FsyncInterval, SegmentBytes: opts.SegmentBytes, FS: opts.FS,
	})
	if err != nil {
		return err
	}
	rec.DurationMs = float64(time.Since(start).Microseconds()) / 1000
	p := &persistence{
		eng: e, dir: dir, w: w, opts: opts, recovery: rec,
		lastCkptLSN: rec.SnapshotLSN, replayNsRec: rec.ReplayNsPerRecord,
	}
	e.cat.SetPersistence(p)
	e.persist = p
	recoveryReplayRecords.Set(float64(rec.ReplayedRecords))
	recoverySeconds.Set(rec.DurationMs / 1000)
	degradedGauge.Set(0)
	return nil
}

// restoreSnapshot loads a decoded snapshot state into an empty engine —
// shared by recovery (Open) and replica bootstrap.
func (e *Engine) restoreSnapshot(st *snapshot.State, rec *RecoveryStats) error {
	rec.SnapshotLSN = st.AppliedLSN
	for _, r := range st.Relations {
		// Images decode strictly sorted, so index rebuild skips a sort.
		if err := e.cat.Register(r.Name, relation.FromSortedPairs(r.Name, r.Pairs)); err != nil {
			return fmt.Errorf("core: restore relation %q: %w", r.Name, err)
		}
		rec.RestoredRelations++
	}
	for _, v := range st.Views {
		entries := make([]view.StateEntry, len(v.Entries))
		for i, t := range v.Entries {
			entries[i] = view.StateEntry{Vals: t.Vals, Count: t.Count}
		}
		if err := e.views.Restore(view.State{
			Name: v.Name, Text: v.Text, Incremental: v.Incremental, Entries: entries,
		}); err != nil {
			return fmt.Errorf("core: restore view %q: %w", v.Name, err)
		}
		rec.RestoredViews++
	}
	return nil
}

// applyRecord replays one WAL record through the engine.
func (e *Engine) applyRecord(r *wal.Record, rec *RecoveryStats) error {
	switch r.Kind {
	case wal.KindMutate:
		if _, err := e.cat.Mutate(r.Name, r.Added, r.Removed); err != nil {
			return err
		}
		rec.ReplayedMutations++
	case wal.KindRegister:
		if err := e.cat.Register(r.Name, relation.FromSortedPairs(r.Name, r.Pairs)); err != nil {
			return err
		}
	case wal.KindDrop:
		if _, err := e.cat.Drop(r.Name); err != nil {
			return err
		}
	case wal.KindRegisterFile:
		// The log holds a path+hash reference, not the tuples: re-read the
		// source file and verify it is byte-identical to what was loaded.
		// A missing or changed file is a loud failure — silently registering
		// different data would corrupt acked state.
		data, err := os.ReadFile(r.Path)
		if err != nil {
			return fmt.Errorf("core: replaying file registration %q: %w", r.Name, err)
		}
		if sum := sha256.Sum256(data); !bytes.Equal(sum[:], r.Hash) {
			return fmt.Errorf("core: replaying file registration %q: %s changed since it was logged (SHA-256 mismatch)", r.Name, r.Path)
		}
		rel, err := relation.ReadFrom(bytes.NewReader(data))
		if err != nil {
			return fmt.Errorf("core: replaying file registration %q: %s: %w", r.Name, r.Path, err)
		}
		if uint64(rel.Size()) != r.Tuples {
			return fmt.Errorf("core: replaying file registration %q: %s decoded %d tuples, logged %d", r.Name, r.Path, rel.Size(), r.Tuples)
		}
		if err := e.cat.Register(r.Name, rel); err != nil {
			return err
		}
	case wal.KindRegisterView:
		// A checkpoint captured between a view's registration and its log
		// record can leave the view both in the snapshot and in the tail;
		// the duplicate registration is benign, prefer the restored store.
		if _, err := e.views.Register(context.Background(), r.Name, r.Query); err != nil &&
			!strings.Contains(err.Error(), "already registered") {
			return err
		}
	case wal.KindDropView:
		e.views.Drop(r.Name)
	default:
		return fmt.Errorf("core: unknown wal record kind %d", r.Kind)
	}
	return nil
}

// Checkpoint captures one consistent image of the catalog and every view
// store under the catalog's mutation freeze, writes it atomically next to
// the WAL, commits it via the manifest, and reclaims the WAL segments the
// image supersedes. Serving continues during the write; only the in-memory
// capture blocks mutations.
//
// A failed checkpoint never clobbers the last-good MANIFEST or leaks temp
// files (the atomic-write path cleans up; Prune sweeps crash leftovers). A
// successful checkpoint on a degraded engine probes the WAL and re-arms
// writes when the disk has recovered — e.g. when the truncated segments
// freed the space an ENOSPC complained about.
func (e *Engine) Checkpoint() (*CheckpointInfo, error) {
	p := e.persistRef()
	if p == nil {
		return nil, fmt.Errorf("core: %w", ErrNoPersistence)
	}
	info, err := p.checkpointTo(p.dir, true)
	if err != nil {
		p.noteCheckpointFailure(err)
		return nil, err
	}
	p.mu.Lock()
	p.checkpoints++
	p.lastCkptLSN = info.AppliedLSN
	p.lastCkptTime = time.Now()
	p.since = 0
	p.lastCkptErr = ""
	degraded := p.degraded
	p.mu.Unlock()
	noteCheckpoint(info)
	if degraded {
		_ = p.tryRearm() // still degraded (with the original cause) on failure
	}
	return info, nil
}

// CheckpointTo writes a standalone checkpoint (image + manifest) to dir —
// an escape hatch for a degraded engine whose own data dir is failing: the
// operator points it at a healthy disk, secures the state, and the engine
// re-arms if its WAL probes healthy. dir must differ from the engine's data
// dir (use Checkpoint for that); the WAL is neither rotated nor truncated,
// and the always-real filesystem is used (the healthy dir is not the
// faulted one).
func (e *Engine) CheckpointTo(dir string) (*CheckpointInfo, error) {
	p := e.persistRef()
	if p == nil {
		return nil, fmt.Errorf("core: %w", ErrNoPersistence)
	}
	if dir == "" || dir == p.dir {
		return e.Checkpoint()
	}
	info, err := p.checkpointTo(dir, false)
	if err != nil {
		p.noteCheckpointFailure(err)
		return nil, err
	}
	p.mu.Lock()
	p.lastCkptErr = ""
	degraded := p.degraded
	p.mu.Unlock()
	if degraded {
		_ = p.tryRearm()
	}
	return info, nil
}

// noteCheckpointFailure records a failed checkpoint for /healthz.
func (p *persistence) noteCheckpointFailure(err error) {
	p.mu.Lock()
	p.ckptFailures++
	p.lastCkptErr = err.Error()
	p.mu.Unlock()
	checkpointFailures.Inc()
}

// noteCheckpoint publishes one successful checkpoint to the metrics
// registry.
func noteCheckpoint(info *CheckpointInfo) {
	checkpointTotal.Inc()
	checkpointSeconds.Observe(info.DurationMs / 1000)
	checkpointBytes.Set(float64(info.Bytes))
	checkpointLastUnix.Set(float64(time.Now().Unix()))
}

// checkpointTo captures and installs one checkpoint in dir. own marks the
// engine's data dir: only then are old images pruned and the WAL rotated
// and truncated, and only then does I/O route through the injectable
// filesystem.
func (p *persistence) checkpointTo(dir string, own bool) (*CheckpointInfo, error) {
	p.ckptMu.Lock()
	defer p.ckptMu.Unlock()
	start := time.Now()
	var st snapshot.State
	e := p.eng
	p.opMu.Lock()
	e.cat.Freeze(func() {
		rels, _, _ := e.cat.Snapshot()
		names := make([]string, 0, len(rels))
		for name := range rels {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st.Relations = append(st.Relations, snapshot.Relation{Name: name, Pairs: rels[name].Pairs()})
		}
		for _, vs := range e.views.ExportStates() {
			entries := make([]snapshot.CountedTuple, len(vs.Entries))
			for i, en := range vs.Entries {
				entries[i] = snapshot.CountedTuple{Vals: en.Vals, Count: en.Count}
			}
			st.Views = append(st.Views, snapshot.View{
				Name: vs.Name, Text: vs.Text, Incremental: vs.Incremental, Entries: entries,
			})
		}
		st.AppliedLSN = p.w.NextLSN() - 1
	})
	p.opMu.Unlock()

	fsys := faultfs.FS(nil) // a foreign healthy dir uses the real filesystem
	if own {
		fsys = p.opts.FS
	}
	name, size, err := snapshot.WriteFS(fsys, dir, &st)
	if err != nil {
		return nil, err
	}
	if err := snapshot.WriteManifestFS(fsys, dir, snapshot.Manifest{Snapshot: name, AppliedLSN: st.AppliedLSN}); err != nil {
		return nil, err
	}
	if own {
		if err := snapshot.PruneFS(fsys, dir, name); err != nil {
			return nil, err
		}
		if err := p.w.Rotate(); err != nil {
			return nil, err
		}
		if err := p.w.TruncateBefore(st.AppliedLSN + 1); err != nil {
			return nil, err
		}
	}
	return &CheckpointInfo{
		Snapshot: name, AppliedLSN: st.AppliedLSN,
		Relations: len(st.Relations), Views: len(st.Views), Bytes: size,
		DurationMs: float64(time.Since(start).Microseconds()) / 1000,
	}, nil
}

// Resume is the operator re-arm (POST /admin/resume): it probes the WAL —
// repairing a damaged tail and forcing an fsync — and clears degraded mode
// on success. On a healthy engine it is a no-op health probe.
func (e *Engine) Resume() error {
	p := e.persistRef()
	if p == nil {
		return fmt.Errorf("core: %w", ErrNoPersistence)
	}
	if err := p.tryRearm(); err != nil {
		return fmt.Errorf("core: resume: %w", err)
	}
	return nil
}

// Degraded reports whether the engine is in read-only degraded mode, with
// the cause and transition time when it is.
func (e *Engine) Degraded() (degraded bool, cause error, since time.Time) {
	p := e.persistRef()
	if p == nil {
		return false, nil, time.Time{}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.degraded, p.degCause, p.degSince
}

// Close detaches the durability layer: no further mutations are logged, the
// in-flight auto-checkpoint (if any) completes, and the WAL is fsynced and
// closed. The in-memory engine remains usable (but no longer durable);
// graceful shutdown calls Close after draining in-flight queries.
func (e *Engine) Close() error {
	e.pmu.Lock()
	p := e.persist
	e.persist = nil
	e.pmu.Unlock()
	if p == nil {
		return nil
	}
	e.cat.SetPersistence(nil)
	p.wg.Wait()
	return p.w.Close()
}

// persistRef returns the current durability layer, or nil.
func (e *Engine) persistRef() *persistence {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return e.persist
}

// RecoveryStats reports what Open recovered; the zero value when the engine
// runs without a data dir.
func (e *Engine) RecoveryStats() RecoveryStats {
	if p := e.persistRef(); p != nil {
		return p.recovery
	}
	return RecoveryStats{}
}

// PersistenceStats summarizes the durability layer for /healthz.
func (e *Engine) PersistenceStats() PersistenceStats {
	p := e.persistRef()
	if p == nil {
		return PersistenceStats{}
	}
	p.mu.Lock()
	st := PersistenceStats{
		Enabled: true, Dir: p.dir,
		Checkpoints: p.checkpoints, LastCheckpointLSN: p.lastCkptLSN,
		CheckpointEvery:          p.opts.CheckpointEvery,
		CheckpointReplayTargetMs: float64(p.opts.CheckpointReplayTarget.Microseconds()) / 1000,
		CheckpointFailures:       p.ckptFailures,
		LastCheckpointError:      p.lastCkptErr,
		Degraded:                 p.degraded,
		Recovery:                 p.recovery,
	}
	if !p.lastCkptTime.IsZero() {
		st.LastCheckpointUnix = p.lastCkptTime.Unix()
	}
	if p.degraded {
		st.DegradedCause = p.degCause.Error()
		st.DegradedSince = p.degSince.UTC().Format(time.RFC3339)
	}
	p.mu.Unlock()
	st.WAL = p.w.Stats()
	return st
}
