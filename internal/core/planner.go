package core

import (
	"repro/internal/optimizer"
	"repro/internal/query"
	"repro/internal/stats"
)

// Planner-accuracy wiring: after a query succeeds, every optimizer-priced
// plan node is joined with its measured wall time and output size, fed to
// the per-fingerprint accuracy sheet behind GET /stats/planner and to the
// optimizer's drift EWMAs, and — when recalibration is enabled — the
// optimizer gets a chance to adopt observed constants between queries.

// WithOptimizerConstants pins the optimizer's (Ts, Tm, TI) machine
// constants, skipping the startup micro-probe: reproducible plan choices
// across runners, and the manual escape hatch when drift detection fires.
func WithOptimizerConstants(c optimizer.Constants) Option {
	return func(cfg *Config) { cfg.OptimizerConstants = &c }
}

// WithRecalibration enables online constant recalibration (default off):
// the optimizer adopts EWMA-smoothed observed constants with a bounded step
// per adoption, never mid-query.
func WithRecalibration(rc optimizer.RecalConfig) Option {
	return func(cfg *Config) {
		rc.Enabled = true
		cfg.Recalibrate = &rc
	}
}

// WithNearMarginBand overrides the decision-audit band: decisions whose
// margin falls below the band are flagged near-margin (0 = default 1.5×).
func WithNearMarginBand(band float64) Option {
	return func(cfg *Config) { cfg.NearMarginBand = band }
}

// PlannerStats exposes the per-fingerprint planner-accuracy sheet behind
// GET /stats/planner.
func (e *Engine) PlannerStats() *stats.Planner { return e.planner }

// notePlanner extracts every audited (optimizer-priced) node from an
// executed plan and feeds the accuracy sheet and the drift EWMAs.
func (e *Engine) notePlanner(fingerprint string, plan *query.Plan) {
	if plan == nil {
		return
	}
	var nodes []stats.NodeObservation
	plan.Walk(func(n *query.Node) {
		if n.PredictedNs <= 0 && n.OutJoin <= 0 {
			return
		}
		nodes = append(nodes, stats.NodeObservation{
			Op: n.Op, Strategy: n.Strategy,
			PredictedNs: n.PredictedNs, ActualNs: n.TimeNs,
			EstRows: n.EstRows, Rows: n.Rows,
			Margin: n.Margin, NearMargin: n.NearMargin,
			Delta1: n.Delta1, Delta2: n.Delta2,
		})
		e.opt.ObserveNode(n.Strategy, n.PredictedNs, float64(n.TimeNs))
	})
	e.planner.Record(fingerprint, nodes)
}
