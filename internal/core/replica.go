package core

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/repl"
)

// Follower-side replication metrics.
var (
	replAppliedLSN = obs.Default().Gauge(
		"joinmm_repl_applied_lsn",
		"Last WAL LSN this follower has applied.")
	replLagRecords = obs.Default().Gauge(
		"joinmm_repl_lag_records",
		"Records the follower is behind the primary (primary next LSN - 1 - applied).")
	replLagLastSeconds = obs.Default().Gauge(
		"joinmm_repl_lag_last_seconds",
		"Point-in-time seconds since the follower last observed itself caught up.")
	replLagSeconds = obs.Default().Histogram(
		"joinmm_repl_lag_seconds",
		"Follower lag in seconds, sampled once per successful poll (0 while caught up).", nil)
	replRecordsApplied = obs.Default().Counter(
		"joinmm_repl_records_applied_total",
		"WAL records this follower has applied through the mutation path.")
	replBootstraps = obs.Default().Counter(
		"joinmm_repl_bootstraps_total",
		"Snapshot bootstraps this follower has performed (1 = clean start; more = history truncation or divergence forced a reset).")
)

// Replica states, as reported on /healthz.
const (
	// ReplicaBootstrapping: fetching and restoring a snapshot (also the
	// state while retrying an unreachable primary before the first
	// successful bootstrap).
	ReplicaBootstrapping = "bootstrapping"
	// ReplicaTailing: bootstrapped, polling the primary's record stream.
	ReplicaTailing = "tailing"
	// ReplicaStopped: Stop was called.
	ReplicaStopped = "stopped"
)

// ReplicaOptions configures Engine.StartReplica.
type ReplicaOptions struct {
	// PollInterval is how often a caught-up follower re-polls the primary
	// (default 500ms). Steady-state lag stays at or below it.
	PollInterval time.Duration
	// MaxBackoff caps the doubling retry backoff after errors (default 10s).
	MaxBackoff time.Duration
	// HTTP overrides the transport (nil: a default client with a timeout).
	HTTP *http.Client
	// Logger receives replication lifecycle events (nil: slog.Default()).
	Logger *slog.Logger
}

// ReplicaStatus is a point-in-time summary of a follower, served on
// /healthz.
type ReplicaStatus struct {
	// Primary is the primary's base URL.
	Primary string `json:"primary"`
	// State is one of the Replica* state constants.
	State string `json:"state"`
	// AppliedLSN is the last WAL LSN applied locally.
	AppliedLSN uint64 `json:"applied_lsn"`
	// PrimaryNextLSN is the primary's next LSN at the last successful poll.
	PrimaryNextLSN uint64 `json:"primary_next_lsn"`
	// LagRecords is PrimaryNextLSN-1 − AppliedLSN.
	LagRecords uint64 `json:"lag_records"`
	// LagSeconds is the time since the follower last observed itself caught
	// up (how stale reads can be, assuming the primary is reachable).
	LagSeconds float64 `json:"lag_seconds"`
	// CaughtUp reports AppliedLSN == PrimaryNextLSN-1 at the last poll.
	CaughtUp bool `json:"caught_up"`
	// Bootstraps counts snapshot bootstraps (1 is the clean-start value).
	Bootstraps uint64 `json:"bootstraps"`
	// RecordsApplied counts records applied through the mutation path.
	RecordsApplied uint64 `json:"records_applied"`
	// Polls and PollErrors count segment-stream fetches and their failures.
	Polls      uint64 `json:"polls"`
	PollErrors uint64 `json:"poll_errors"`
	// LastError is the most recent replication error, cleared by the next
	// successful poll.
	LastError string `json:"last_error,omitempty"`
	// LagHistory is a short ring of per-poll lag samples, oldest first, so
	// /repl/status shows the recent lag trajectory (spike vs steady drift)
	// without a metrics backend.
	LagHistory []LagSample `json:"lag_history,omitempty"`
}

// LagSample is one per-poll lag observation in ReplicaStatus.LagHistory.
type LagSample struct {
	UnixMs     int64   `json:"unix_ms"`
	LagRecords uint64  `json:"lag_records"`
	LagSeconds float64 `json:"lag_seconds"`
}

// lagHistorySize bounds the ring on /repl/status.
const lagHistorySize = 60

// Replica tails a primary, keeping this engine a read-only copy. It applies
// every shipped record through the normal mutation path, so registered
// views maintain incrementally on the follower exactly as on the primary.
// A follower keeps no WAL and no snapshots of its own — its durability is
// the primary's; a restarted follower re-bootstraps.
type Replica struct {
	eng    *Engine
	client *repl.Client
	opts   ReplicaOptions
	log    *slog.Logger

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu             sync.Mutex
	state          string
	applied        uint64
	primaryNext    uint64
	caughtUp       bool
	lastCaughtUp   time.Time
	started        time.Time
	bootstraps     uint64
	recordsApplied uint64
	polls          uint64
	pollErrors     uint64
	lastErr        string
	lagRing        []LagSample // per-poll samples, ring of lagHistorySize
	lagNext        int
	lagN           int
}

// StartReplica turns an empty, non-persistent engine into a follower of the
// primary at base URL primary. It is incompatible with Open (a follower
// keeps no local durability) and must run before the engine holds state.
// The returned Replica tails until Stop.
func (e *Engine) StartReplica(primary string, opts ReplicaOptions) (*Replica, error) {
	if err := repl.ValidateBase(primary); err != nil {
		return nil, err
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 500 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 10 * time.Second
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	e.pmu.Lock()
	defer e.pmu.Unlock()
	if e.persist != nil {
		return nil, fmt.Errorf("core: StartReplica on an engine with data dir %s (a follower keeps no local durability)", e.persist.dir)
	}
	if e.replica != nil {
		return nil, fmt.Errorf("core: engine already replicating from %s", e.replica.client.Base)
	}
	if e.cat.Len() > 0 || e.views.Len() > 0 {
		return nil, fmt.Errorf("core: StartReplica on a non-empty engine (%d relations, %d views)", e.cat.Len(), e.views.Len())
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Replica{
		eng:    e,
		client: &repl.Client{Base: primary, HTTP: opts.HTTP},
		opts:   opts,
		log:    opts.Logger,
		ctx:    ctx,
		cancel: cancel,
		done:   make(chan struct{}),
		state:  ReplicaBootstrapping,
	}
	r.started = time.Now()
	e.replica = r
	go r.run()
	return r, nil
}

// Replica returns the follower attached by StartReplica, or nil.
func (e *Engine) Replica() *Replica {
	e.pmu.Lock()
	defer e.pmu.Unlock()
	return e.replica
}

// ReplSource returns the repl.Source serving this engine's WAL and
// snapshots to followers, or nil when the engine has no data dir (nothing
// to ship).
func (e *Engine) ReplSource() *repl.Source {
	p := e.persistRef()
	if p == nil {
		return nil
	}
	return &repl.Source{FS: p.opts.FS, Dir: p.dir, Next: p.w.NextLSN}
}

// Stop halts replication and waits for the tail loop to exit. The engine
// keeps serving whatever state was applied; it does not resume mutability.
func (r *Replica) Stop() {
	r.cancel()
	<-r.done
	r.mu.Lock()
	r.state = ReplicaStopped
	r.mu.Unlock()
}

// Status reports the follower's current position and lag.
func (r *Replica) Status() ReplicaStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := ReplicaStatus{
		Primary:        r.client.Base,
		State:          r.state,
		AppliedLSN:     r.applied,
		PrimaryNextLSN: r.primaryNext,
		CaughtUp:       r.caughtUp,
		Bootstraps:     r.bootstraps,
		RecordsApplied: r.recordsApplied,
		Polls:          r.polls,
		PollErrors:     r.pollErrors,
		LastError:      r.lastErr,
	}
	if r.primaryNext > 0 && r.primaryNext-1 > r.applied {
		st.LagRecords = r.primaryNext - 1 - r.applied
	}
	since := r.lastCaughtUp
	if since.IsZero() {
		since = r.started
	}
	st.LagSeconds = time.Since(since).Seconds()
	replLagLastSeconds.Set(st.LagSeconds)
	if r.lagN > 0 {
		st.LagHistory = make([]LagSample, 0, r.lagN)
		start := r.lagNext - r.lagN
		if start < 0 {
			start += len(r.lagRing)
		}
		for i := 0; i < r.lagN; i++ {
			st.LagHistory = append(st.LagHistory, r.lagRing[(start+i)%len(r.lagRing)])
		}
	}
	return st
}

// run is the follower's lifecycle: bootstrap (with retry), then tail until
// the primary's history no longer covers our position, then re-bootstrap.
func (r *Replica) run() {
	defer close(r.done)
	backoff := r.opts.PollInterval
	for r.ctx.Err() == nil {
		if err := r.bootstrap(); err != nil {
			r.noteError(err)
			r.log.Warn("repl: bootstrap failed", "primary", r.client.Base, "err", err)
			if !r.sleep(backoff) {
				return
			}
			backoff = r.nextBackoff(backoff)
			continue
		}
		backoff = r.opts.PollInterval
		r.tail()
	}
}

// bootstrap fetches the primary's snapshot and restores it into a reset
// engine.
func (r *Replica) bootstrap() error {
	r.setState(ReplicaBootstrapping)
	bs, err := r.client.Snapshot(r.ctx)
	if err != nil {
		return err
	}
	r.resetEngine()
	var stats RecoveryStats
	if err := r.eng.restoreSnapshot(bs.State, &stats); err != nil {
		// A half-restored engine must not serve: clear it and surface the
		// error to the retry loop.
		r.resetEngine()
		return err
	}
	r.mu.Lock()
	r.applied = bs.State.AppliedLSN
	r.primaryNext = bs.PrimaryNext
	r.bootstraps++
	r.mu.Unlock()
	replBootstraps.Inc()
	replAppliedLSN.Set(float64(bs.State.AppliedLSN))
	r.log.Info("repl: bootstrapped from snapshot",
		"primary", r.client.Base, "applied_lsn", bs.State.AppliedLSN,
		"relations", stats.RestoredRelations, "views", stats.RestoredViews)
	return nil
}

// resetEngine drops every view and relation, returning the engine to empty.
// The follower has no persistence sink, so the drops are unlogged.
func (r *Replica) resetEngine() {
	for _, v := range r.eng.Views() {
		r.eng.views.Drop(v.Name)
	}
	for _, info := range r.eng.cat.List() {
		r.eng.cat.Drop(info.Name)
	}
}

// tail polls the primary's record stream, applying batches until Stop or
// until the stream no longer covers our position (history truncated, or we
// are ahead of a primary that lost its tail) — the caller re-bootstraps.
func (r *Replica) tail() {
	r.setState(ReplicaTailing)
	backoff := r.opts.PollInterval
	for r.ctx.Err() == nil {
		r.mu.Lock()
		from := r.applied + 1
		r.mu.Unlock()
		r.bumpPolls()
		batch, err := r.client.Fetch(r.ctx, from)
		switch {
		case errors.Is(err, repl.ErrTruncatedHistory), errors.Is(err, repl.ErrAhead):
			r.log.Warn("repl: stream position invalid, re-bootstrapping", "primary", r.client.Base, "from", from, "err", err)
			return
		case err != nil:
			if r.ctx.Err() != nil {
				return
			}
			r.noteError(err)
			if !r.sleep(backoff) {
				return
			}
			backoff = r.nextBackoff(backoff)
			continue
		}
		backoff = r.opts.PollInterval
		if err := r.apply(batch); err != nil {
			// An apply failure leaves the engine mid-batch: the only safe
			// recovery is a fresh bootstrap.
			r.noteError(err)
			r.log.Error("repl: apply failed, re-bootstrapping", "primary", r.client.Base, "err", err)
			return
		}
		if len(batch.Records) == 0 {
			// Caught up: idle one poll interval.
			if !r.sleep(r.opts.PollInterval) {
				return
			}
		}
	}
}

// apply feeds one batch through the normal mutation path and advances the
// position and lag accounting.
func (r *Replica) apply(b *Batch) error {
	var stats RecoveryStats
	for _, sr := range b.Records {
		if err := r.eng.applyRecord(sr.Record, &stats); err != nil {
			return fmt.Errorf("core: applying replicated record at LSN %d: %w", sr.LSN, err)
		}
		r.mu.Lock()
		r.applied = sr.LSN
		r.recordsApplied++
		r.mu.Unlock()
		replAppliedLSN.Set(float64(sr.LSN))
		replRecordsApplied.Inc()
	}
	r.mu.Lock()
	r.primaryNext = b.PrimaryNext
	r.caughtUp = b.PrimaryNext == r.applied+1
	if r.caughtUp {
		r.lastCaughtUp = time.Now()
		r.lastErr = ""
	}
	lag := uint64(0)
	if b.PrimaryNext-1 > r.applied {
		lag = b.PrimaryNext - 1 - r.applied
	}
	lagSec := 0.0
	if !r.caughtUp {
		since := r.lastCaughtUp
		if since.IsZero() {
			since = r.started
		}
		lagSec = time.Since(since).Seconds()
	}
	r.recordLagSample(LagSample{
		UnixMs:     time.Now().UnixMilli(),
		LagRecords: lag,
		LagSeconds: lagSec,
	})
	r.mu.Unlock()
	replLagRecords.Set(float64(lag))
	replLagSeconds.Observe(lagSec)
	return nil
}

// recordLagSample appends one per-poll sample to the lag-history ring.
// Caller holds r.mu.
func (r *Replica) recordLagSample(s LagSample) {
	if r.lagRing == nil {
		r.lagRing = make([]LagSample, lagHistorySize)
	}
	r.lagRing[r.lagNext] = s
	r.lagNext = (r.lagNext + 1) % len(r.lagRing)
	if r.lagN < len(r.lagRing) {
		r.lagN++
	}
}

// Batch aliases the wire batch so callers of apply need no repl import.
type Batch = repl.Batch

func (r *Replica) setState(s string) {
	r.mu.Lock()
	r.state = s
	r.mu.Unlock()
}

func (r *Replica) bumpPolls() {
	r.mu.Lock()
	r.polls++
	r.mu.Unlock()
}

func (r *Replica) noteError(err error) {
	r.mu.Lock()
	r.pollErrors++
	r.lastErr = err.Error()
	r.mu.Unlock()
}

// sleep waits d or until Stop, reporting whether to continue.
func (r *Replica) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

func (r *Replica) nextBackoff(d time.Duration) time.Duration {
	d *= 2
	if d > r.opts.MaxBackoff {
		d = r.opts.MaxBackoff
	}
	return d
}
