package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/wal"
)

// saveRelation writes a relation file a LoadFile can read back.
func saveRelation(t *testing.T, name, path string, ps []relation.Pair) {
	t.Helper()
	if err := relation.FromPairs(name, ps).Save(path); err != nil {
		t.Fatal(err)
	}
}

// walKinds lists the record kinds in dir's WAL, in LSN order.
func walKinds(t *testing.T, dir string) []byte {
	t.Helper()
	var kinds []byte
	if err := wal.ReplayFS(nil, dir, 0, func(lsn uint64, r *wal.Record) error {
		kinds = append(kinds, r.Kind)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return kinds
}

func TestLoadFileLogsPathHashNotImage(t *testing.T) {
	dir := t.TempDir()
	ps := randPairs(rand.New(rand.NewSource(5)), 500, 100)
	file := filepath.Join(t.TempDir(), "r.jmmr")
	saveRelation(t, "R", file, ps)

	e := NewEngine()
	if err := e.Open(dir, PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	loaded, err := e.Catalog().LoadFile("R", file)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Mutate("R", []relation.Pair{{X: 1000, Y: 1000}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	// The log holds the ~100-byte file reference, not the tuple image.
	kinds := walKinds(t, dir)
	if len(kinds) != 2 || kinds[0] != wal.KindRegisterFile || kinds[1] != wal.KindMutate {
		t.Fatalf("wal kinds = %v, want [RegisterFile Mutate]", kinds)
	}
	var logged *wal.Record
	if err := wal.ReplayFS(nil, dir, 0, func(lsn uint64, r *wal.Record) error {
		if r.Kind == wal.KindRegisterFile {
			logged = r
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if logged.Tuples != uint64(loaded.Size()) {
		t.Fatalf("logged %d tuples, loaded %d", logged.Tuples, loaded.Size())
	}
	if !filepath.IsAbs(logged.Path) {
		t.Fatalf("logged path %q not absolute", logged.Path)
	}

	// Recovery re-reads the file and lands on the identical state.
	e2 := NewEngine()
	if err := e2.Open(dir, PersistOptions{}); err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	r2, ok := e2.Catalog().Get("R")
	if !ok {
		t.Fatal("R missing after recovery")
	}
	want := append(loaded.Pairs(), relation.Pair{X: 1000, Y: 1000})
	got := r2.Pairs()
	if len(got) != len(want) {
		t.Fatalf("recovered %d pairs, want %d", len(got), len(want))
	}
}

func TestLoadFileReplayFailsLoudly(t *testing.T) {
	ps := randPairs(rand.New(rand.NewSource(9)), 50, 30)

	t.Run("tampered", func(t *testing.T) {
		dir := t.TempDir()
		file := filepath.Join(t.TempDir(), "r.jmmr")
		saveRelation(t, "R", file, ps)
		e := NewEngine()
		if err := e.Open(dir, PersistOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Catalog().LoadFile("R", file); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		// Swap the file for different (but still valid) contents.
		saveRelation(t, "R", file, randPairs(rand.New(rand.NewSource(10)), 50, 30))
		err := NewEngine().Open(dir, PersistOptions{})
		if err == nil || !strings.Contains(err.Error(), "SHA-256 mismatch") {
			t.Fatalf("tampered replay: %v, want SHA-256 mismatch", err)
		}
	})

	t.Run("missing", func(t *testing.T) {
		dir := t.TempDir()
		file := filepath.Join(t.TempDir(), "r.jmmr")
		saveRelation(t, "R", file, ps)
		e := NewEngine()
		if err := e.Open(dir, PersistOptions{}); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Catalog().LoadFile("R", file); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(file); err != nil {
			t.Fatal(err)
		}
		if err := NewEngine().Open(dir, PersistOptions{}); err == nil {
			t.Fatal("replay with the source file missing succeeded")
		}
	})

	t.Run("checkpoint-folds-the-file-away", func(t *testing.T) {
		// After a checkpoint the relation lives in the snapshot; deleting
		// the source file must no longer break recovery.
		dir := t.TempDir()
		file := filepath.Join(t.TempDir(), "r.jmmr")
		saveRelation(t, "R", file, ps)
		e := NewEngine()
		if err := e.Open(dir, PersistOptions{}); err != nil {
			t.Fatal(err)
		}
		loaded, err := e.Catalog().LoadFile("R", file)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := e.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		if err := e.Close(); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(file); err != nil {
			t.Fatal(err)
		}
		e2 := NewEngine()
		if err := e2.Open(dir, PersistOptions{}); err != nil {
			t.Fatal(err)
		}
		defer e2.Close()
		r2, ok := e2.Catalog().Get("R")
		if !ok || !reflect.DeepEqual(r2.Pairs(), loaded.Pairs()) {
			t.Fatal("post-checkpoint recovery diverged")
		}
	})
}

// TestRegisterFileUpgradeReadsOldForm replays a log written before
// KindRegisterFile existed: file-loaded relations were logged as plain
// KindRegister full images. Those logs must keep recovering unchanged.
func TestRegisterFileUpgradeReadsOldForm(t *testing.T) {
	dir := t.TempDir()
	ps := randPairs(rand.New(rand.NewSource(12)), 80, 40)
	// Write the old record form directly: a full image registration for a
	// relation that (in an old binary) came from LoadFile.
	w, err := wal.Open(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	img := relation.FromPairs("R", ps)
	if _, err := w.Append(&wal.Record{Kind: wal.KindRegister, Name: "R", Pairs: img.Pairs()}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&wal.Record{Kind: wal.KindMutate, Name: "R", Added: []relation.Pair{{X: 999, Y: 999}}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	e := NewEngine()
	if err := e.Open(dir, PersistOptions{}); err != nil {
		t.Fatalf("old-form log failed to recover: %v", err)
	}
	defer e.Close()
	r, ok := e.Catalog().Get("R")
	if !ok {
		t.Fatal("R missing after old-form recovery")
	}
	if r.Size() != img.Size()+1 {
		t.Fatalf("recovered %d pairs, want %d", r.Size(), img.Size()+1)
	}
}
