package query

import (
	"fmt"
	"strconv"
	"unicode"
)

// tokKind enumerates the token types of the query language.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokImplies // ":-"
	tokEquals
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokImplies:
		return "':-'"
	case tokEquals:
		return "'='"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

// token is one lexed token with its source position (byte offset).
type token struct {
	kind tokKind
	text string
	num  int64
	pos  int
}

// lex tokenizes src. Identifiers are [A-Za-z_][A-Za-z0-9_]*, numbers are
// optionally-signed decimal integers, and the only punctuation is
// ( ) , = :- plus an optional trailing '.' or ';' terminator.
func lex(src string) ([]token, error) {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{kind: tokLParen, pos: i})
			i++
		case c == ')':
			toks = append(toks, token{kind: tokRParen, pos: i})
			i++
		case c == ',':
			toks = append(toks, token{kind: tokComma, pos: i})
			i++
		case c == '=':
			toks = append(toks, token{kind: tokEquals, pos: i})
			i++
		case c == ':':
			if i+1 < len(src) && src[i+1] == '-' {
				toks = append(toks, token{kind: tokImplies, pos: i})
				i += 2
			} else {
				return nil, fmt.Errorf("query: offset %d: ':' must begin ':-'", i)
			}
		case c == '.' || c == ';':
			// Optional terminator: must be the last non-space rune.
			for j := i + 1; j < len(src); j++ {
				if !unicode.IsSpace(rune(src[j])) {
					return nil, fmt.Errorf("query: offset %d: %q terminator must end the query", i, c)
				}
			}
			i = len(src)
		case c == '-' || (c >= '0' && c <= '9'):
			j := i
			if c == '-' {
				j++
				if j >= len(src) || src[j] < '0' || src[j] > '9' {
					return nil, fmt.Errorf("query: offset %d: '-' must begin a number", i)
				}
			}
			for j < len(src) && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			n, err := strconv.ParseInt(src[i:j], 10, 32)
			if err != nil {
				return nil, fmt.Errorf("query: offset %d: constant %q out of int32 range", i, src[i:j])
			}
			toks = append(toks, token{kind: tokNumber, text: src[i:j], num: n, pos: i})
			i = j
		case isIdentStart(c):
			j := i + 1
			for j < len(src) && isIdentPart(src[j]) {
				j++
			}
			toks = append(toks, token{kind: tokIdent, text: src[i:j], pos: i})
			i = j
		default:
			return nil, fmt.Errorf("query: offset %d: unexpected character %q", i, c)
		}
	}
	toks = append(toks, token{kind: tokEOF, pos: len(src)})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}
