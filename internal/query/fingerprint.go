package query

import (
	"sort"
	"strings"
)

// Fingerprint renders the query's statement fingerprint: a canonical form
// with every constant normalized to `?`, variables renamed positionally and
// body atoms sorted, so statements that differ only in constant values,
// variable spelling or atom order aggregate under one statement-statistics
// row. `Q(x) :- R(x, 5)` and `Q(y) :- R(y, 9)` share a fingerprint;
// `Q(x) :- R(x, y), S(y, z)` and `Q(a) :- S(b, c), R(a, b)` do too. WITH
// hints participate (a strategy pin is a different statement class: it runs
// a different plan), as does the head shape including COUNT aggregates.
func (q *Query) Fingerprint() string {
	atoms := append([]Atom(nil), q.Atoms...)
	// Two normalize+sort rounds: the first orders atoms under the original
	// variable spelling, the second re-derives the positional names from
	// that order and re-sorts, making the result stable under variable
	// renaming for all but pathologically symmetric bodies.
	for round := 0; round < 2; round++ {
		names := canonicalVarNames(q.Head, atoms)
		sort.SliceStable(atoms, func(i, j int) bool {
			return fingerprintAtom(atoms[i], names) < fingerprintAtom(atoms[j], names)
		})
	}
	names := canonicalVarNames(q.Head, atoms)

	var b strings.Builder
	b.WriteString("Q(")
	for i, h := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		if h.Count {
			b.WriteString("COUNT(")
			b.WriteString(names[h.Var])
			b.WriteByte(')')
		} else {
			b.WriteString(names[h.Var])
		}
	}
	b.WriteString(") :- ")
	for i, a := range atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(fingerprintAtom(a, names))
	}
	if !q.Hints.empty() {
		b.WriteString(" WITH ")
		b.WriteString(q.Hints.String())
	}
	return b.String()
}

// FingerprintText parses src and returns its fingerprint, or "" when the
// text does not parse (callers bucket unparseable statements separately).
func FingerprintText(src string) string {
	q, err := Parse(src)
	if err != nil {
		return ""
	}
	return q.Fingerprint()
}

// canonicalVarNames assigns positional names ($0, $1, ...) to variables in
// first-appearance order over the head, then the body atoms in their current
// order.
func canonicalVarNames(head []HeadTerm, atoms []Atom) map[string]string {
	names := map[string]string{}
	assign := func(v string) {
		if v == "" {
			return
		}
		if _, ok := names[v]; !ok {
			names[v] = "$" + itoa(len(names))
		}
	}
	for _, h := range head {
		assign(h.Var)
	}
	for _, a := range atoms {
		for _, t := range a.Args {
			if !t.IsConst {
				assign(t.Var)
			}
		}
	}
	return names
}

// fingerprintAtom renders one atom with constants normalized to `?` and
// variables replaced by their canonical names (unrenamed spellings pass
// through, for the pre-rename sort round).
func fingerprintAtom(a Atom, names map[string]string) string {
	var b strings.Builder
	b.WriteString(a.Rel)
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case t.IsConst:
			b.WriteByte('?')
		default:
			if n, ok := names[t.Var]; ok {
				b.WriteString(n)
			} else {
				b.WriteString(t.Var)
			}
		}
	}
	b.WriteByte(')')
	return b.String()
}

// itoa is strconv.Itoa for the tiny non-negative ints of variable numbering,
// kept local to avoid the import in this hot-ish path.
func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
