package query

import "testing"

func fp(t *testing.T, src string) string {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return q.Fingerprint()
}

func TestFingerprintNormalizesConstants(t *testing.T) {
	a := fp(t, "Q(x) :- R(x, 5)")
	b := fp(t, "Q(x) :- R(x, 9)")
	if a != b {
		t.Fatalf("constant-differing queries split: %q vs %q", a, b)
	}
	if want := "Q($0) :- R($0, ?)"; a != want {
		t.Fatalf("fingerprint = %q, want %q", a, want)
	}
}

func TestFingerprintCanonicalizesVariablesAndAtomOrder(t *testing.T) {
	a := fp(t, "Q(x, z) :- R(x, y), S(y, z)")
	b := fp(t, "Q(u, w) :- S(v, w), R(u, v)")
	if a != b {
		t.Fatalf("renamed/reordered query split: %q vs %q", a, b)
	}
	if want := "Q($0, $1) :- R($0, $2), S($2, $1)"; a != want {
		t.Fatalf("fingerprint = %q, want %q", a, want)
	}
}

func TestFingerprintDistinguishesShapes(t *testing.T) {
	cases := [][2]string{
		// Different relation: different statement.
		{"Q(x) :- R(x, 5)", "Q(x) :- S(x, 5)"},
		// Constant in a different position.
		{"Q(x) :- R(x, 5)", "Q(x) :- R(5, x)"},
		// Chain vs star shape.
		{"Q(a, c) :- R(a, b), S(b, c)", "Q(a, c) :- R(b, a), S(b, c)"},
		// COUNT head vs plain head.
		{"Q(x, z) :- R(x, y), S(y, z)", "Q(x, COUNT(z)) :- R(x, y), S(y, z)"},
		// Strategy hint pins a different plan: different statement class.
		{"Q(x, z) :- R(x, y), S(y, z)", "Q(x, z) :- R(x, y), S(y, z) WITH strategy=wcoj"},
	}
	for _, c := range cases {
		if fp(t, c[0]) == fp(t, c[1]) {
			t.Errorf("distinct statements collide: %q vs %q", c[0], c[1])
		}
	}
}

func TestFingerprintSelfJoin(t *testing.T) {
	a := fp(t, "Q(a, d) :- R(a, b), R(b, c), R(c, d)")
	b := fp(t, "Q(x, w) :- R(z, w), R(x, y), R(y, z)")
	if a != b {
		t.Fatalf("renamed self-join split: %q vs %q", a, b)
	}
}

func TestFingerprintText(t *testing.T) {
	if got := FingerprintText("Q(x) :- R(x, 7)"); got != "Q($0) :- R($0, ?)" {
		t.Fatalf("FingerprintText = %q", got)
	}
	if got := FingerprintText("not a query"); got != "" {
		t.Fatalf("unparseable FingerprintText = %q, want empty", got)
	}
}

func TestFingerprintStableUnderReuse(t *testing.T) {
	// Fingerprint must not mutate the query: String() still round-trips and a
	// second Fingerprint call agrees.
	q, err := Parse("Q(x, z) :- S(y, z), R(x, y)")
	if err != nil {
		t.Fatal(err)
	}
	text := q.String()
	f1 := q.Fingerprint()
	if q.String() != text {
		t.Fatalf("Fingerprint mutated query text: %q -> %q", text, q.String())
	}
	if f2 := q.Fingerprint(); f2 != f1 {
		t.Fatalf("fingerprint unstable: %q vs %q", f1, f2)
	}
}
