// Package query is the text front-end of the engine: a compact Datalog-style
// language for join-project queries over the binary relations of the
// catalog, a parser to a small AST, and a generic planner/executor.
// Acyclic queries are GYO-decomposed into a tree of the paper's two-path,
// star and path-fold primitives (the direction "Output-sensitive Conjunctive
// Query Evaluation" generalizes the SIGMOD 2020 algorithms in); cyclic
// queries are admitted via generalized hypertree decomposition
// (internal/hypertree) and evaluated with the same fold machinery over
// materialized bag relations.
//
// A query is a single rule:
//
//	Q(x, z) :- R(x, y), S(y, z), T(z, w)
//	Q(x, COUNT(z)) :- R(x, y), S(y, z) WITH strategy=mm, workers=4
//
// The head lists the projected variables (optionally one COUNT(v) aggregate,
// which counts distinct v values per group of the remaining head variables);
// the body is a conjunction of binary atoms whose arguments are variables or
// integer constants; the optional WITH clause carries strategy hints. See
// README.md in this package for the full grammar and semantics.
package query

import (
	"fmt"
	"strings"
)

// Term is one atom argument: a variable or an integer constant.
type Term struct {
	Var     string // variable name when !IsConst
	Value   int32  // constant value when IsConst
	IsConst bool
}

// String renders the term in source form.
func (t Term) String() string {
	if t.IsConst {
		return fmt.Sprintf("%d", t.Value)
	}
	return t.Var
}

// Atom is one body literal Rel(arg0, arg1) over a named binary relation.
type Atom struct {
	Rel  string
	Args [2]Term
}

// String renders the atom in source form.
func (a Atom) String() string {
	return fmt.Sprintf("%s(%s, %s)", a.Rel, a.Args[0], a.Args[1])
}

// HeadTerm is one projected output column: a plain variable, or the COUNT(v)
// aggregate (count of distinct v values per group of the plain head
// variables).
type HeadTerm struct {
	Var   string
	Count bool
}

// String renders the head term in source form.
func (h HeadTerm) String() string {
	if h.Count {
		return fmt.Sprintf("COUNT(%s)", h.Var)
	}
	return h.Var
}

// Hints are the optional WITH-clause strategy hints. The zero value means
// "no hints": the engine's own configuration applies.
type Hints struct {
	// Strategy pins the per-node plan choice: "auto", "mm", "wcoj" or
	// "nonmm". Empty defers to the engine.
	Strategy string
	// Workers bounds the evaluation parallelism; 0 defers to the engine.
	Workers int
}

func (h Hints) empty() bool { return h.Strategy == "" && h.Workers == 0 }

// String renders the hints in WITH-clause source form (without the WITH
// keyword); empty hints render as "".
func (h Hints) String() string {
	var b strings.Builder
	if h.Strategy != "" {
		b.WriteString("strategy=")
		b.WriteString(h.Strategy)
	}
	if h.Workers != 0 {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "workers=%d", h.Workers)
	}
	return b.String()
}

// Query is the parsed AST of one rule.
type Query struct {
	// Name is the head predicate name (purely cosmetic).
	Name string
	// Head is the projection list, in output-column order.
	Head []HeadTerm
	// Atoms is the body conjunction.
	Atoms []Atom
	// Hints are the WITH-clause hints, if any.
	Hints Hints
}

// String renders the query in canonical source form; Parse(q.String()) yields
// an equal AST (the round-trip property the fuzz target checks).
func (q *Query) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "Q"
	}
	b.WriteString(name)
	b.WriteByte('(')
	for i, h := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(h.String())
	}
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	if !q.Hints.empty() {
		b.WriteString(" WITH ")
		b.WriteString(q.Hints.String())
	}
	return b.String()
}

// CountIndex returns the position of the COUNT head term, or -1.
func (q *Query) CountIndex() int {
	for i, h := range q.Head {
		if h.Count {
			return i
		}
	}
	return -1
}

// HeadVars returns the distinct variables referenced by the head, in first-
// appearance order (group variables and the COUNT variable alike).
func (q *Query) HeadVars() []string {
	var out []string
	seen := map[string]bool{}
	for _, h := range q.Head {
		if !seen[h.Var] {
			seen[h.Var] = true
			out = append(out, h.Var)
		}
	}
	return out
}
