package query

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/acyclic"
	"repro/internal/govern"
	"repro/internal/joinproject"
	"repro/internal/optimizer"
	"repro/internal/relation"
)

// ExecOptions configures one evaluation of a Prepared query.
type ExecOptions struct {
	// Optimizer supplies the per-node MM/WCOJ cost decisions; nil falls back
	// to heuristic-threshold MM folds.
	Optimizer *optimizer.Optimizer
	// Workers bounds the parallelism (≤ 0: all cores). A workers hint in the
	// query overrides it.
	Workers int
	// Strategy is the engine-level pin ("", "auto", "mm", "wcoj", "nonmm").
	// A strategy hint in the query overrides it.
	Strategy string
	// Observer, when non-nil, receives live execution progress for the
	// activity view. Calls happen on the evaluating goroutine at operator
	// granularity, so implementations must be cheap (atomics, no locks on the
	// hot path).
	Observer ExecObserver
}

// ExecObserver is the executor's progress hook: ExecNode fires when
// evaluation enters a plan node (before its kernel work, so an in-flight
// view shows what is running now, not what last finished); ExecProgress
// reports rows materialized and budget-bytes charged, cumulatively
// per call site.
type ExecObserver interface {
	ExecNode(op, detail string)
	ExecProgress(rows, bytes int64)
}

// Result is one evaluated query: column labels, distinct output tuples and
// the plan that produced them (with the actual per-node strategy choices).
type Result struct {
	Columns []string
	Tuples  [][]int64
	Plan    *Plan
}

// optPlanner adapts the Section-5 cost-based optimizer to the acyclic
// composition Planner interface.
type optPlanner struct {
	opt *optimizer.Optimizer
}

func (p optPlanner) ChooseCompose(l, r *relation.Relation, workers int) acyclic.ComposeDecision {
	d := p.opt.DecideCompose(l, r, workers)
	cd := acyclic.ComposeDecision{
		EstOut: d.EstOut, OutJoin: d.OutJoin,
		PredictedNs: d.PredictedCost, Margin: d.Margin, NearMargin: d.NearMargin,
	}
	if d.UseWCOJ {
		cd.Strategy = acyclic.StrategyWCOJ
		return cd
	}
	cd.Strategy = acyclic.StrategyMM
	cd.Delta1, cd.Delta2 = d.Delta1, d.Delta2
	return cd
}

// Execute evaluates the prepared query. The context is checked between plan
// nodes (folds, components), so cancellation takes effect at operator
// granularity. Execute never mutates the Prepared and is safe to call
// concurrently on a shared instance.
func (p *Prepared) Execute(ctx context.Context, opts ExecOptions) (*Result, error) {
	ex := p.newExecutor(ctx, opts, false)
	return ex.run()
}

// Explain builds the predicted plan without executing. Strategy choices that
// depend on intermediate fold results are reported as "auto" (deferred);
// first-level choices use the real cost model on the reduced relations.
func (p *Prepared) Explain(opts ExecOptions) *Plan {
	ex := p.newExecutor(context.Background(), opts, true)
	res, err := ex.run()
	if err != nil || res == nil {
		return &Plan{Text: p.Text, Predicted: true, Root: &Node{Op: "error", Detail: fmt.Sprint(err), Rows: -1}}
	}
	res.Plan.Predicted = true
	return res.Plan
}

type executor struct {
	p      *Prepared
	ctx    context.Context
	dry    bool
	aopt   acyclic.Options
	opt    *optimizer.Optimizer
	budget *govern.Budget // per-query materialization budget (nil: unlimited)
	star   string         // star-node pin: "", "mm" or "nonmm"
	// pushGroup marks a head of the form (g, COUNT(v)) whose component
	// structure lets the aggregate run inside the final fold (a weighted
	// two-path composition) instead of materializing the distinct pairs and
	// grouping them afterwards; groupVar/countVar are the variable indices.
	pushGroup          bool
	groupVar, countVar int
	// charged accumulates every byte debited through charge, budget or not —
	// the working-set figure EXPLAIN ANALYZE reports per query.
	charged int64
	watch   ExecObserver // nil unless an activity view is attached
}

func (p *Prepared) newExecutor(ctx context.Context, opts ExecOptions, dry bool) *executor {
	strategy := opts.Strategy
	if p.Query.Hints.Strategy != "" {
		strategy = p.Query.Hints.Strategy
	}
	workers := opts.Workers
	if p.Query.Hints.Workers > 0 {
		workers = p.Query.Hints.Workers
	}
	ex := &executor{p: p, ctx: ctx, dry: dry, budget: govern.FromContext(ctx)}
	if !dry {
		ex.watch = opts.Observer
	}
	ex.aopt = acyclic.Options{Join: joinproject.Options{Workers: workers}}
	if !dry {
		// Coarse cancellation polled inside the long kernel tile loops, so a
		// canceled heavy query stops mid-multiplication instead of at the
		// next operator boundary.
		ex.aopt.Join.Stop = func() bool { return ctx.Err() != nil }
	}
	switch strategy {
	case acyclic.StrategyMM, acyclic.StrategyWCOJ, acyclic.StrategyNonMM:
		ex.aopt.Force = strategy
		ex.star = strategy
		if strategy == acyclic.StrategyWCOJ {
			ex.star = acyclic.StrategyNonMM // the star algorithm's combinatorial twin
		}
	}
	if opts.Optimizer != nil {
		ex.aopt.Planner = optPlanner{opt: opts.Optimizer}
	}
	ex.opt = opts.Optimizer
	ex.detectGroupPush()
	return ex
}

// detectGroupPush decides whether the COUNT aggregate can be evaluated
// inside the final fold: the head must be exactly (g, COUNT(v)) over two
// distinct variables living in the same component, with every other
// component head-free (a pure filter). When it applies, the final
// composition runs the counting kernel (TwoPathGroupBy) and the distinct
// (g, v) pairs are never materialized — the aggregate is output-sensitive
// in the count column.
func (ex *executor) detectGroupPush() {
	p, q := ex.p, ex.p.Query
	ci := q.CountIndex()
	if ci < 0 || len(q.Head) != 2 {
		return
	}
	gi := 1 - ci
	if q.Head[gi].Count || q.Head[gi].Var == q.Head[ci].Var {
		return
	}
	g, cv := -1, -1
	for i, name := range p.vars {
		if name == q.Head[gi].Var {
			g = i
		}
		if name == q.Head[ci].Var {
			cv = i
		}
	}
	if g < 0 || cv < 0 {
		return
	}
	var home *component
	for _, c := range p.comps {
		hasG, hasCV := false, false
		for _, h := range c.heads {
			if h == g {
				hasG = true
			}
			if h == cv {
				hasCV = true
			}
		}
		switch {
		case hasG && hasCV:
			home = c
		case hasG || hasCV:
			return // split across components: the cross product must group
		case len(c.heads) > 0:
			return // another component produces rows
		}
	}
	if home == nil || home.bags != nil {
		return // bag-tree components project after the k-ary join
	}
	ex.pushGroup, ex.groupVar, ex.countVar = true, g, cv
}

func (ex *executor) check() error { return ex.ctx.Err() }

// Coarse per-row footprints for budget accounting: an indexed relation pair
// (8 payload bytes + index share) and a materialized [][]int32 row (slice
// header + k values).
const pairBudgetBytes = 32

func rowBudgetBytes(cols int) int { return 24 + 4*cols }

// charge debits the query budget for rows materialized rows of about
// rowBytes each; a nil budget is free.
func (ex *executor) charge(rows, rowBytes int) error {
	ex.charged += int64(rows) * int64(rowBytes)
	if ex.watch != nil {
		ex.watch.ExecProgress(int64(rows), int64(rows)*int64(rowBytes))
	}
	return ex.budget.ChargeRows(int64(rows), int64(rowBytes))
}

// nodeEvent reports entry into a plan node to the attached observer.
func (ex *executor) nodeEvent(op, detail string) {
	if ex.watch != nil {
		ex.watch.ExecNode(op, detail)
	}
}

// compResult is one component's contribution: the variables it binds (cols,
// only head variables), its distinct rows, and its plan subtree. A grouped
// result carries the pushed-down COUNT aggregate instead: rows hold the
// group values (one column) and counts the distinct-partner count per row.
type compResult struct {
	cols    []int
	rows    [][]int32
	node    *Node
	grouped bool
	counts  []int64
}

func (ex *executor) run() (*Result, error) {
	start := time.Now()
	p, q := ex.p, ex.p.Query
	res := &Result{Columns: make([]string, len(q.Head))}
	for i, h := range q.Head {
		res.Columns[i] = h.String()
	}

	var producers []*compResult
	var compNodes []*Node
	if p.empty {
		compNodes = append(compNodes, &Node{Op: "empty", Detail: p.emptyWhy, Rows: 0})
	} else {
		for _, c := range p.comps {
			if err := ex.check(); err != nil {
				return nil, err
			}
			cr, err := ex.evalComponent(c)
			if err != nil {
				return nil, err
			}
			compNodes = append(compNodes, cr.node)
			if len(cr.cols) > 0 {
				producers = append(producers, cr)
			}
		}
	}

	// Assemble: cross product of the row-producing components, then map the
	// joined columns onto the head terms. A grouped producer (pushed-down
	// COUNT) is necessarily alone and maps straight onto the head.
	var grouped *compResult
	if len(producers) == 1 && producers[0].grouped {
		grouped = producers[0]
	}
	var cols []int
	rows := [][]int32{{}}
	if !ex.dry && !p.empty && grouped == nil {
		for _, pr := range producers {
			cols = append(cols, pr.cols...)
			rows = crossRows(rows, pr.rows)
			if err := ex.charge(len(rows), rowBudgetBytes(len(cols))); err != nil {
				return nil, err
			}
		}
	}

	top := &Node{Op: "project", Detail: "[" + headLabels(q) + "]", Rows: -1}
	if q.CountIndex() >= 0 {
		top.Op = "aggregate"
		if grouped != nil || (ex.dry && ex.pushGroup) {
			top.Detail += " (count pushed into fold)"
		}
	}
	switch {
	case len(compNodes) == 1:
		top.Children = compNodes
	default:
		top.Children = []*Node{{Op: "cross", Rows: -1, Children: compNodes}}
	}
	res.Plan = &Plan{Text: p.Text, Root: top}
	if ex.dry {
		return res, nil
	}

	if p.empty {
		rows = nil
	}
	if grouped != nil {
		ci := q.CountIndex()
		res.Tuples = make([][]int64, len(grouped.rows))
		for i, r := range grouped.rows {
			row := make([]int64, 2)
			row[1-ci] = int64(r[0])
			row[ci] = grouped.counts[i]
			res.Tuples[i] = row
		}
	} else {
		res.Tuples = projectHead(q, p, cols, rows)
	}
	if err := ex.charge(len(res.Tuples), 24+8*len(q.Head)); err != nil {
		return nil, err
	}
	top.Rows = int64(len(res.Tuples))
	if len(top.Children) == 1 && top.Children[0].Op == "cross" {
		top.Children[0].Rows = int64(len(rows))
	}
	// The kernels' Stop hook abandons work mid-sweep on cancellation, so a
	// deadline that fires inside the final kernel leaves truncated rows here.
	// A tripped context must always surface as an error, never as a silently
	// incomplete 200.
	if err := ex.check(); err != nil {
		return nil, err
	}
	top.TimeNs = time.Since(start).Nanoseconds()
	res.Plan.ExecNs = top.TimeNs
	res.Plan.BudgetBytes = ex.charged
	return res, nil
}

// headLabels renders the head terms for the plan detail.
func headLabels(q *Query) string {
	parts := make([]string, len(q.Head))
	for i, h := range q.Head {
		parts[i] = h.String()
	}
	return strings.Join(parts, ", ")
}

// projectHead maps assembled rows (over the distinct head variables in cols)
// onto the head-term order, applying the COUNT aggregate when present.
func projectHead(q *Query, p *Prepared, cols []int, rows [][]int32) [][]int64 {
	colPos := map[int]int{}
	for i, v := range cols {
		colPos[v] = i
	}
	pos := make([]int, len(q.Head))
	for i, h := range q.Head {
		vi := -1
		for idx, name := range p.vars {
			if name == h.Var {
				vi = idx
				break
			}
		}
		pos[i] = colPos[vi]
	}

	ci := q.CountIndex()
	if ci < 0 {
		out := make([][]int64, 0, len(rows))
		for _, r := range rows {
			t := make([]int64, len(q.Head))
			for i := range q.Head {
				t[i] = int64(r[pos[i]])
			}
			out = append(out, t)
		}
		return out
	}

	// COUNT(v): rows are distinct over (group vars ∪ {v}), so counting rows
	// per group yields the distinct-v count.
	groupPos := make([]int, 0, len(q.Head)-1)
	for i := range q.Head {
		if i != ci {
			groupPos = append(groupPos, pos[i])
		}
	}
	if len(groupPos) == 0 {
		return [][]int64{{int64(len(rows))}}
	}
	type group struct {
		vals  []int32
		count int64
	}
	var order []string
	groups := map[string]*group{}
	var key []byte
	for _, r := range rows {
		key = key[:0]
		vals := make([]int32, len(groupPos))
		for i, gp := range groupPos {
			vals[i] = r[gp]
			key = strconv.AppendInt(key, int64(r[gp]), 10)
			key = append(key, ',')
		}
		k := string(key)
		g, ok := groups[k]
		if !ok {
			g = &group{vals: vals}
			groups[k] = g
			order = append(order, k)
		}
		g.count++
	}
	out := make([][]int64, 0, len(order))
	for _, k := range order {
		g := groups[k]
		t := make([]int64, len(q.Head))
		gi := 0
		for i := range q.Head {
			if i == ci {
				t[i] = g.count
			} else {
				t[i] = int64(g.vals[gi])
				gi++
			}
		}
		out = append(out, t)
	}
	return out
}

func crossRows(a, b [][]int32) [][]int32 {
	out := make([][]int32, 0, len(a)*len(b))
	for _, ra := range a {
		for _, rb := range b {
			r := make([]int32, 0, len(ra)+len(rb))
			r = append(r, ra...)
			r = append(r, rb...)
			out = append(out, r)
		}
	}
	return out
}

// liveEdge is one edge of the working tree during Steiner pruning and
// degree-2 collapsing, carrying its plan subtree.
type liveEdge struct {
	a, b int
	rel  *relation.Relation // nil in dry runs for folded edges
	node *Node
}

// evalComponent evaluates one component tree down to its head variables.
func (ex *executor) evalComponent(c *component) (*compResult, error) {
	p := ex.p
	if c.bags != nil {
		return ex.evalBagTree(c)
	}
	detail := varNames(p.vars, c.vars)
	if c.ghd != "" {
		detail += " " + c.ghd
	}
	compNode := &Node{Op: "component", Detail: detail, Rows: -1}
	if len(c.heads) == 0 {
		compNode.Op = "exists"
		compNode.Rows = 1
		return &compResult{node: compNode}, nil
	}

	heads := map[int]bool{}
	for _, h := range c.heads {
		heads[h] = true
	}

	live := make([]liveEdge, 0, len(c.edges))
	for i := range c.edges {
		e := &c.edges[i]
		detail := fmt.Sprintf("%s → [%s, %s]", e.label, p.vars[e.a], p.vars[e.b])
		if e.rel.Size() != e.origSize {
			detail += fmt.Sprintf(" (reduced %d→%d)", e.origSize, e.rel.Size())
		}
		op, strategy := "scan", ""
		if e.bag {
			op, strategy = "bag", e.bagStrategy
		}
		live = append(live, liveEdge{a: e.a, b: e.b, rel: e.rel,
			node: &Node{Op: op, Strategy: strategy, Detail: detail, Rows: int64(e.rel.Size())}})
	}

	// Steiner prune: non-head leaf branches only filter, and the semijoin
	// reduction has already applied that filter — drop them.
	var prunedNodes []*Node
	for {
		deg := map[int]int{}
		for _, e := range live {
			deg[e.a]++
			deg[e.b]++
		}
		removed := false
		for i := 0; i < len(live); i++ {
			e := live[i]
			var leaf int = -1
			if deg[e.a] == 1 && !heads[e.a] {
				leaf = e.a
			} else if deg[e.b] == 1 && !heads[e.b] {
				leaf = e.b
			}
			if leaf < 0 {
				continue
			}
			prunedNodes = append(prunedNodes,
				&Node{Op: "semijoin", Detail: e.node.Detail + " (filter absorbed by reduction)", Rows: -1})
			live = append(live[:i], live[i+1:]...)
			removed = true
			break
		}
		if !removed {
			break
		}
	}

	cr := &compResult{node: compNode}
	var err error
	if len(live) == 0 {
		// A single head variable remains: its reduced domain is the answer.
		h := c.heads[0]
		cr.cols = []int{h}
		dom := c.allowed[h]
		if !ex.dry {
			cr.rows = make([][]int32, len(dom))
			for i, v := range dom {
				cr.rows[i] = []int32{v}
			}
		}
		compNode.Children = append([]*Node{{
			Op: "domain", Detail: p.vars[h], Rows: int64(len(dom)),
		}}, prunedNodes...)
		compNode.Rows = int64(len(dom))
		return cr, nil
	}

	var groupedCR *compResult
	if live, groupedCR, err = ex.collapse(live, heads); err != nil {
		return nil, err
	}
	final := groupedCR
	if final == nil {
		if final, err = ex.finalNode(c, live, heads); err != nil {
			return nil, err
		}
	}
	cr.cols, cr.rows, cr.counts, cr.grouped = final.cols, final.rows, final.counts, final.grouped
	compNode.Children = append([]*Node{final.node}, prunedNodes...)
	if !ex.dry {
		compNode.Rows = int64(len(cr.rows))
	}
	return cr, nil
}

// collapse folds away every non-head degree-2 variable with a planned
// two-path composition, shrinking the tree until only head variables and
// branching variables remain. When the last fold would produce exactly the
// (group, count) pair of a pushed-down aggregate, it runs the counting
// kernel instead and returns the grouped result (second value) without
// materializing the distinct pairs.
func (ex *executor) collapse(live []liveEdge, heads map[int]bool) ([]liveEdge, *compResult, error) {
	p := ex.p
	for {
		deg := map[int]int{}
		for _, e := range live {
			deg[e.a]++
			deg[e.b]++
		}
		// Lowest-index first keeps plans deterministic: ranging over the
		// degree map would let Go's map order pick the fold order.
		v := -1
		for cand := 0; cand < len(p.vars); cand++ {
			if deg[cand] == 2 && !heads[cand] {
				v = cand
				break
			}
		}
		if v < 0 {
			return live, nil, nil
		}
		if err := ex.check(); err != nil {
			return nil, nil, err
		}
		// Locate the two edges at v and orient them (u→v), (v→w).
		i1, i2 := -1, -1
		for i, e := range live {
			if e.a == v || e.b == v {
				if i1 < 0 {
					i1 = i
				} else {
					i2 = i
					break
				}
			}
		}
		e1, e2 := live[i1], live[i2]
		cr, err := ex.tryGroupedFold(live, e1, e2, v)
		if err != nil {
			return nil, nil, err
		}
		if cr != nil {
			return nil, cr, nil
		}
		r1, u := orient(e1, v, false)
		r2, w := orient(e2, v, true)
		folded := liveEdge{a: u, b: w}
		node := &Node{Op: "fold", Rows: -1, Children: []*Node{e1.node, e2.node}}
		detail := fmt.Sprintf("π[%s, %s] eliminating %s", p.vars[u], p.vars[w], p.vars[v])
		if ex.dry {
			ex.dryComposeStrategy(r1, r2, node, detail)
		} else {
			ex.nodeEvent("fold", detail)
			t0 := time.Now()
			rel, step := acyclic.Compose(r1, r2, ex.aopt)
			node.TimeNs = time.Since(t0).Nanoseconds()
			foldTotal.With("fold", step.Strategy).Inc()
			// The Stop hook makes Compose return partial output when the
			// context trips mid-kernel; discard it rather than fold it in.
			if err := ex.check(); err != nil {
				return nil, nil, err
			}
			if err := ex.charge(rel.Size(), pairBudgetBytes); err != nil {
				return nil, nil, err
			}
			folded.rel = rel
			node.Strategy = step.Strategy
			if step.Strategy == acyclic.StrategyMM {
				detail += fmt.Sprintf(" Δ1=%d Δ2=%d", step.Delta1, step.Delta2)
				node.Delta1, node.Delta2 = step.Delta1, step.Delta2
			}
			node.EstRows, node.OutJoin = step.EstOut, step.OutJoin
			node.PredictedNs = step.PredictedNs
			node.Margin, node.NearMargin = step.Margin, step.NearMargin
			node.Detail = detail
			node.Rows = int64(rel.Size())
		}
		folded.node = node
		// Replace the two edges with the fold (remove the higher index first).
		if i1 > i2 {
			i1, i2 = i2, i1
		}
		live = append(live[:i2], live[i2+1:]...)
		live[i1] = folded
	}
}

// tryGroupedFold runs the final fold of a pushed-down aggregate as a
// weighted two-path composition: the counting kernel delivers per-group
// distinct-partner counts directly, so the distinct (group, count-var)
// pairs are never materialized. Returns nil when this fold is not the
// aggregate's final fold.
func (ex *executor) tryGroupedFold(live []liveEdge, e1, e2 liveEdge, v int) (*compResult, error) {
	if !ex.pushGroup || len(live) != 2 {
		return nil, nil
	}
	p := ex.p
	// Orient both edges with the eliminated variable on the Y side, as the
	// counting 2-path π_{x,z}(R(x,y) ⋈ S(z,y)) expects.
	r1, u := orient(e1, v, false)
	r2, w := orient(e2, v, false)
	if u == w {
		return nil, nil
	}
	g, cv := ex.groupVar, ex.countVar
	if !(u == g && w == cv) && !(u == cv && w == g) {
		return nil, nil
	}
	node := &Node{Op: "groupfold", Rows: -1, Children: []*Node{e1.node, e2.node}}
	detail := fmt.Sprintf("γ[%s; COUNT(%s)] eliminating %s (count pushed into fold)",
		p.vars[g], p.vars[cv], p.vars[v])
	cr := &compResult{grouped: true, cols: []int{g}, node: node}
	strategy := acyclic.StrategyMM
	jopt := ex.aopt.Join
	if f := ex.aopt.Force; f == acyclic.StrategyWCOJ || f == acyclic.StrategyNonMM {
		strategy = f
	}
	if ex.dry {
		node.Strategy, node.Detail = strategy, detail
		return cr, nil
	}
	gRel, cvRel := r1, r2
	if u == cv {
		gRel, cvRel = r2, r1
	}
	if strategy != acyclic.StrategyMM {
		// Thresholds that classify everything as light turn the counting
		// kernel into the plain indexed join with stamp dedup.
		t := gRel.Size()
		if cvRel.Size() > t {
			t = cvRel.Size()
		}
		jopt.Delta1, jopt.Delta2 = t+1, t+1
	}
	ex.nodeEvent("groupfold", detail)
	t0 := time.Now()
	groups := joinproject.TwoPathGroupBy(gRel, cvRel, jopt)
	node.TimeNs = time.Since(t0).Nanoseconds()
	foldTotal.With("groupfold", strategy).Inc()
	if err := ex.check(); err != nil {
		return nil, err
	}
	if err := ex.charge(len(groups), rowBudgetBytes(1)+8); err != nil {
		return nil, err
	}
	cr.rows = make([][]int32, len(groups))
	cr.counts = make([]int64, len(groups))
	for i, gc := range groups {
		cr.rows[i] = []int32{gc.X}
		cr.counts[i] = gc.Distinct
	}
	node.Strategy, node.Detail = strategy, detail
	node.Rows = int64(len(groups))
	return cr, nil
}

// dryComposeStrategy predicts a fold's strategy without running it, filling
// the plan node with the optimizer's estimates and decision margin so a
// predicted-only EXPLAIN already shows why the strategy was picked.
func (ex *executor) dryComposeStrategy(r1, r2 *relation.Relation, node *Node, detail string) {
	if ex.aopt.Force != "" {
		node.Strategy, node.Detail = ex.aopt.Force, detail
		return
	}
	if r1 == nil || r2 == nil || ex.aopt.Planner == nil {
		node.Strategy, node.Detail = "auto", detail+" (decided at run time)"
		return
	}
	dec := ex.aopt.Planner.ChooseCompose(r1, r2, ex.aopt.Join.Workers)
	if dec.Strategy == acyclic.StrategyMM {
		detail += fmt.Sprintf(" Δ1=%d Δ2=%d", dec.Delta1, dec.Delta2)
		node.Delta1, node.Delta2 = dec.Delta1, dec.Delta2
	}
	node.EstRows, node.OutJoin = dec.EstOut, dec.OutJoin
	node.PredictedNs = dec.PredictedNs
	node.Margin, node.NearMargin = dec.Margin, dec.NearMargin
	node.Strategy, node.Detail = dec.Strategy, detail
}

// orient returns e's relation with variable v on the Y side (asHead=false,
// giving (other→v)) or on the X side (asHead=true, giving (v→other)), along
// with the other endpoint. Swapping is O(1); dry-run folded edges have a nil
// relation, which propagates.
func orient(e liveEdge, v int, asHead bool) (*relation.Relation, int) {
	other := e.a
	vOnX := e.a == v
	if vOnX {
		other = e.b
	}
	rel := e.rel
	if rel != nil && vOnX != asHead {
		rel = rel.Swap()
	}
	return rel, other
}

// finalNode turns the collapsed tree into rows: a single edge's pairs, a
// star around a non-head center, or generic tree enumeration.
func (ex *executor) finalNode(c *component, live []liveEdge, heads map[int]bool) (*compResult, error) {
	if len(live) == 1 {
		e := live[0]
		g, cv := ex.groupVar, ex.countVar
		if ex.pushGroup && ((e.a == g && e.b == cv) || (e.a == cv && e.b == g)) {
			// The aggregate over a single remaining edge is its index
			// degree profile: COUNT(cv) per g is the g-side partner count.
			rel, _ := orient(e, cv, false) // (g, cv) orientation
			node := &Node{Op: "groupfold", Rows: -1, Children: []*Node{e.node},
				Detail: fmt.Sprintf("γ[%s; COUNT(%s)] from index degrees (count pushed into scan)",
					ex.p.vars[g], ex.p.vars[cv])}
			cr := &compResult{grouped: true, cols: []int{g}, node: node}
			if !ex.dry {
				ix := rel.ByX()
				if err := ex.charge(ix.NumKeys(), rowBudgetBytes(1)+8); err != nil {
					return nil, err
				}
				cr.rows = make([][]int32, ix.NumKeys())
				cr.counts = make([]int64, ix.NumKeys())
				for i := 0; i < ix.NumKeys(); i++ {
					cr.rows[i] = []int32{ix.Key(i)}
					cr.counts[i] = int64(ix.Degree(i))
				}
				node.Rows = int64(ix.NumKeys())
			}
			return cr, nil
		}
		cr := &compResult{cols: []int{e.a, e.b}, node: e.node}
		if !ex.dry {
			if err := ex.charge(e.rel.Size(), rowBudgetBytes(2)); err != nil {
				return nil, err
			}
			cr.rows = make([][]int32, 0, e.rel.Size())
			for _, pr := range e.rel.Pairs() {
				cr.rows = append(cr.rows, []int32{pr.X, pr.Y})
			}
		}
		return cr, nil
	}

	// Star detection: a common non-head center with head leaves.
	center := -1
	for _, cand := range []int{live[0].a, live[0].b} {
		ok := true
		for _, e := range live {
			if e.a != cand && e.b != cand {
				ok = false
				break
			}
		}
		if ok {
			center = cand
			break
		}
	}
	if center >= 0 && !heads[center] {
		return ex.starNode(live, center)
	}
	return ex.enumerate(c, live, heads)
}

// starNode runs the Section-3.2 star primitive over the arm views.
func (ex *executor) starNode(live []liveEdge, center int) (*compResult, error) {
	p := ex.p
	if err := ex.check(); err != nil {
		return nil, err
	}
	views := make([]*relation.Relation, len(live))
	leaves := make([]int, len(live))
	children := make([]*Node, len(live))
	ready := true
	for i, e := range live {
		// Orient each arm as (leaf, center): the star joins on the Y column.
		rel, leaf := orient(e, center, false)
		views[i], leaves[i] = rel, leaf
		children[i] = e.node
		if rel == nil {
			ready = false
		}
	}
	leafNames := make([]string, len(leaves))
	for i, l := range leaves {
		leafNames[i] = p.vars[l]
	}
	node := &Node{Op: "star", Rows: -1, Children: children,
		Detail: fmt.Sprintf("center %s leaves [%s]", p.vars[center], strings.Join(leafNames, ", "))}
	cr := &compResult{cols: leaves, node: node}

	strategy := ex.star
	jopt := ex.aopt.Join
	if strategy == "" {
		if ex.opt != nil && ready {
			dec := ex.opt.ChooseStar(views, jopt.Workers)
			node.EstRows, node.OutJoin = dec.EstOut, dec.OutJoin
			node.PredictedNs = dec.PredictedCost
			node.Margin, node.NearMargin = dec.Margin, dec.NearMargin
			if dec.UseWCOJ {
				strategy = acyclic.StrategyNonMM
			} else {
				strategy = acyclic.StrategyMM
				if jopt.Delta1 == 0 {
					jopt.Delta1 = dec.Delta1
				}
				if jopt.Delta2 == 0 {
					jopt.Delta2 = dec.Delta2
				}
				node.Delta1, node.Delta2 = jopt.Delta1, jopt.Delta2
			}
		} else if ready {
			strategy = acyclic.StrategyMM
		}
	}
	if ex.dry {
		if strategy == "" {
			node.Strategy = "auto"
			node.Detail += " (decided at run time)"
		} else {
			node.Strategy = strategy
		}
		return cr, nil
	}
	node.Strategy = strategy
	ex.nodeEvent("star", node.Detail)
	t0 := time.Now()
	if strategy == acyclic.StrategyNonMM {
		cr.rows = joinproject.StarNonMM(views, jopt)
	} else {
		cr.rows = joinproject.StarMM(views, jopt)
	}
	node.TimeNs = time.Since(t0).Nanoseconds()
	foldTotal.With("star", node.Strategy).Inc()
	if err := ex.check(); err != nil {
		return nil, err
	}
	if err := ex.charge(len(cr.rows), rowBudgetBytes(len(leaves))); err != nil {
		return nil, err
	}
	node.Rows = int64(len(cr.rows))
	return cr, nil
}

// enumerate handles the general shape (head variables at interior positions,
// multiple branching variables): distinct-preserving backtracking over the
// collapsed tree, with memoized subtree results. This is the combinatorial
// fallback — the tree analogue of the WCOJ plan.
func (ex *executor) enumerate(c *component, live []liveEdge, heads map[int]bool) (*compResult, error) {
	p := ex.p
	if err := ex.check(); err != nil {
		return nil, err
	}
	type halfEdge struct {
		e     *liveEdge
		other int
	}
	adj := map[int][]halfEdge{}
	for i := range live {
		e := &live[i]
		adj[e.a] = append(adj[e.a], halfEdge{e: e, other: e.b})
		adj[e.b] = append(adj[e.b], halfEdge{e: e, other: e.a})
	}
	root := c.heads[0]

	// Column order: DFS over the rooted tree, head variables in visit order.
	var colsOf func(v, parent int) []int
	colsOf = func(v, parent int) []int {
		var cols []int
		if heads[v] {
			cols = append(cols, v)
		}
		for _, h := range adj[v] {
			if h.other != parent {
				cols = append(cols, colsOf(h.other, v)...)
			}
		}
		return cols
	}
	cols := colsOf(root, -1)

	node := &Node{Op: "enumerate", Strategy: acyclic.StrategyWCOJ, Rows: -1,
		Detail: "tree backtracking + dedup over " + varNames(p.vars, c.vars)}
	for i := range live {
		node.Children = append(node.Children, live[i].node)
	}
	cr := &compResult{cols: cols, node: node}
	if ex.dry {
		return cr, nil
	}

	memo := map[int]map[int32][][]int32{}
	var solve func(v, parent int, val int32) [][]int32
	solve = func(v, parent int, val int32) [][]int32 {
		if m := memo[v]; m != nil {
			if rows, ok := m[val]; ok {
				return rows
			}
		}
		rows := [][]int32{nil}
		if heads[v] {
			rows = [][]int32{{val}}
		}
		for _, h := range adj[v] {
			if h.other == parent {
				continue
			}
			partners := lookupLive(h.e, v, val)
			var sub [][]int32
			for _, pv := range partners {
				sub = append(sub, solve(h.other, v, pv)...)
			}
			if !heads[h.other] {
				// Distinct partner values can project to the same head
				// tuple once the non-head connector is dropped.
				sub = dedupRows(sub)
			}
			rows = crossRows(rows, sub)
		}
		if memo[v] == nil {
			memo[v] = map[int32][][]int32{}
		}
		memo[v][val] = rows
		return rows
	}

	ex.nodeEvent("enumerate", node.Detail)
	t0 := time.Now()
	var out [][]int32
	for _, val := range c.allowed[root] {
		batch := solve(root, -1, val)
		if err := ex.charge(len(batch), rowBudgetBytes(len(cols))); err != nil {
			return nil, err
		}
		out = append(out, batch...)
	}
	if !heads[root] {
		out = dedupRows(out)
	}
	cr.rows = out
	node.Rows = int64(len(out))
	node.TimeNs = time.Since(t0).Nanoseconds()
	foldTotal.With("enumerate", acyclic.StrategyWCOJ).Inc()
	return cr, nil
}

// evalBagTree evaluates a cyclic component compiled to a k-ary bag tree:
// the bags were materialized and Yannakakis-reduced at compile time, so
// execution is a pure hash join along the tree followed by head projection
// and dedup.
func (ex *executor) evalBagTree(c *component) (*compResult, error) {
	p := ex.p
	if err := ex.check(); err != nil {
		return nil, err
	}
	compNode := &Node{Op: "component", Detail: varNames(p.vars, c.vars) + " " + c.ghd, Rows: -1}
	bagNodes := make([]*Node, len(c.bags))
	root := -1
	for i, b := range c.bags {
		kept := make([]string, len(b.needed))
		for k, v := range b.needed {
			kept[k] = p.vars[v]
		}
		bagNodes[i] = &Node{
			Op: "bag", Strategy: b.strategy,
			Detail: fmt.Sprintf("%s → [%s]", b.label, strings.Join(kept, ", ")),
			Rows:   int64(len(b.rows)),
		}
		if b.parent < 0 {
			root = i
		}
	}
	join := &Node{Op: "bagjoin", Detail: c.ghd, Rows: -1, Children: bagNodes}
	compNode.Children = []*Node{join}

	if len(c.heads) == 0 {
		// The compile-time full reduction proved satisfiability: non-empty
		// reduced bags always extend to a full solution.
		compNode.Op = "exists"
		compNode.Rows = 1
		return &compResult{node: compNode}, nil
	}
	cr := &compResult{cols: c.heads, node: compNode}
	if ex.dry {
		return cr, nil
	}

	ex.nodeEvent("bagjoin", c.ghd)
	t0 := time.Now()
	cols, rows, err := joinBagTree(ex.ctx, c.bags, root)
	if err != nil {
		return nil, err
	}
	join.TimeNs = time.Since(t0).Nanoseconds()
	foldTotal.With("bagjoin", "hash").Inc()
	join.Rows = int64(len(rows))
	headPos := varPositions(cols, c.heads)
	cr.rows = make([][]int32, 0, len(rows))
	for _, r := range rows {
		t := make([]int32, len(headPos))
		for i, hp := range headPos {
			t[i] = r[hp]
		}
		cr.rows = append(cr.rows, t)
	}
	cr.rows = dedupRows(cr.rows)
	compNode.Rows = int64(len(cr.rows))
	return cr, nil
}

// lookupLive returns the partner list of v=val through e.
func lookupLive(e *liveEdge, v int, val int32) []int32 {
	if e.a == v {
		return e.rel.ByX().Lookup(val)
	}
	return e.rel.ByY().Lookup(val)
}

// SortTuples orders result tuples lexicographically — the canonical serving
// order the server's pagination and the view store rely on.
func SortTuples(tuples [][]int64) {
	sort.Slice(tuples, func(i, j int) bool {
		for k := range tuples[i] {
			if tuples[i][k] != tuples[j][k] {
				return tuples[i][k] < tuples[j][k]
			}
		}
		return false
	})
}

// dedupRows removes duplicate rows (by value).
func dedupRows(rows [][]int32) [][]int32 {
	if len(rows) <= 1 {
		return rows
	}
	seen := make(map[string]bool, len(rows))
	var key []byte
	out := rows[:0:0]
	for _, r := range rows {
		key = key[:0]
		for _, v := range r {
			key = strconv.AppendInt(key, int64(v), 10)
			key = append(key, ',')
		}
		k := string(key)
		if !seen[k] {
			seen[k] = true
			out = append(out, r)
		}
	}
	return out
}
