package query

import (
	"fmt"
	"strings"
)

// Node is one operator of an explainable plan tree.
type Node struct {
	// Op names the operator: "project", "aggregate", "cross", "exists",
	// "domain", "pairs", "fold", "groupfold" (a COUNT aggregate pushed into
	// the final fold as a weighted two-path composition), "star",
	// "enumerate", "scan", "semijoin", "bag" (a materialized hypertree-
	// decomposition bag relation) or "bagjoin" (the k-ary join over a
	// reduced bag tree). View maintenance plans add "maintain", "deltafold",
	// "deltastar", "deltatree" and "refresh" (see internal/view).
	Op string
	// Detail is free-form operator context (variables, thresholds, sizes).
	Detail string
	// Strategy is the per-node algorithm choice where one applies: "mm",
	// "wcoj" or "nonmm" for fold and star nodes, "auto" when the choice is
	// deferred to run time (predicted plans only).
	Strategy string
	// Rows is the operator's output cardinality; -1 when not known (e.g. in
	// a predicted plan for a node that has not run).
	Rows int64
	// TimeNs is the operator's measured wall time in nanoseconds; 0 when the
	// node did not run or is too cheap to time (scan/bag leaves). Recorded on
	// every execution but only rendered when Plan.Analyzed is set.
	TimeNs int64
	// PredictedNs is the optimizer's modeled cost for this node in
	// nanoseconds (0 = the planner priced nothing here).
	PredictedNs float64
	// EstRows is the optimizer's output-cardinality estimate est|OUT|
	// (0 = no estimate; real estimates are ≥ 1).
	EstRows int64
	// OutJoin is the full-join size |OUT⋈| the decision was based on.
	OutJoin int64
	// Margin is the decision margin (rejected/chosen predicted cost, or the
	// Algorithm-3 guard's slack; see optimizer.Decision.Margin). NearMargin
	// flags decisions inside the near-margin band — nearly coin flips.
	Margin     float64
	NearMargin bool
	// Delta1, Delta2 are the chosen thresholds for MM nodes.
	Delta1, Delta2 int
	// Children are the operator inputs.
	Children []*Node
}

// CostErr returns the node's actual/predicted cost ratio, or 0 when either
// side is missing. >1 = the node ran slower than modeled.
func (n *Node) CostErr() float64 {
	if n.PredictedNs <= 0 || n.TimeNs <= 0 {
		return 0
	}
	return float64(n.TimeNs) / n.PredictedNs
}

// RowsErr returns the node's actual/estimated cardinality ratio, or 0 when
// there is no estimate or the node did not run.
func (n *Node) RowsErr() float64 {
	if n.EstRows <= 0 || n.Rows < 0 {
		return 0
	}
	actual := float64(n.Rows)
	if actual < 1 {
		actual = 1 // empty outputs still carry signal against an estimate ≥ 1
	}
	return actual / float64(n.EstRows)
}

// line renders the node's own EXPLAIN line. analyzed appends the measured
// per-node wall time for EXPLAIN ANALYZE output.
func (n *Node) line(analyzed bool) string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Strategy != "" {
		fmt.Fprintf(&b, " strategy=%s", n.Strategy)
	}
	if n.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(n.Detail)
	}
	if n.OutJoin > 0 {
		fmt.Fprintf(&b, " est|OUT|=%d |OUT⋈|=%d", n.EstRows, n.OutJoin)
	}
	if n.Margin > 0 {
		fmt.Fprintf(&b, " margin=%.2f×", n.Margin)
		if n.NearMargin {
			b.WriteString(" (near)")
		}
	}
	if n.Rows >= 0 {
		fmt.Fprintf(&b, " rows=%d", n.Rows)
	}
	if analyzed && n.TimeNs > 0 {
		fmt.Fprintf(&b, " time=%s", fmtDuration(n.TimeNs))
	}
	if analyzed {
		if ce, re := n.CostErr(), n.RowsErr(); ce > 0 || re > 0 {
			b.WriteString(" err=")
			if ce > 0 {
				fmt.Fprintf(&b, "cost×%.2f", ce)
			}
			if re > 0 {
				if ce > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "rows×%.2f", re)
			}
		}
	}
	return b.String()
}

// fmtDuration renders nanoseconds in the unit a human reads fastest: whole
// µs below 1ms, fractional ms below 1s, fractional seconds above.
func fmtDuration(ns int64) string {
	switch {
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.3fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.3fs", float64(ns)/1e9)
	}
}

// Plan is an explainable evaluation plan for one query.
type Plan struct {
	// Text is the canonical query text the plan was built for.
	Text string
	// Root is the plan tree.
	Root *Node
	// Predicted is true for plans built by Explain without executing: node
	// strategies deeper than the first composition level are deferred.
	Predicted bool
	// CacheHit reports whether the compiled query came from the plan cache.
	CacheHit bool
	// Analyzed turns on EXPLAIN ANALYZE rendering: per-node measured times
	// next to the cost model's est|OUT| predictions, plus a phase-breakdown
	// header. The measurements below are recorded on every execution; this
	// flag only controls whether String shows them.
	Analyzed bool
	// PrepareNs is the measured parse+plan(+cache lookup) wall time.
	PrepareNs int64
	// ExecNs is the measured execution wall time for the whole plan.
	ExecNs int64
	// BudgetBytes is the total bytes charged against the govern budget while
	// executing (charged even when no budget is configured, so EXPLAIN
	// ANALYZE always shows the query's working-set pressure).
	BudgetBytes int64
}

// String renders the plan as an indented EXPLAIN tree. With Analyzed set it
// becomes the EXPLAIN ANALYZE form: a phase-breakdown line after the header
// and measured per-node times alongside the predicted cardinalities.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("query: ")
	b.WriteString(p.Text)
	if p.CacheHit {
		b.WriteString("  [plan cache hit]")
	}
	if p.Predicted {
		b.WriteString("  [predicted]")
	}
	if p.Analyzed {
		b.WriteString("  [analyzed]")
	}
	b.WriteByte('\n')
	if p.Analyzed {
		fmt.Fprintf(&b, "analyze: prepare=%s exec=%s budget=%dB\n",
			fmtDuration(p.PrepareNs), fmtDuration(p.ExecNs), p.BudgetBytes)
	}
	if p.Root != nil {
		renderNode(&b, p.Root, "", true, p.Analyzed)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix string, last, analyzed bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	b.WriteString(prefix)
	b.WriteString(branch)
	b.WriteString(n.line(analyzed))
	b.WriteByte('\n')
	for i, c := range n.Children {
		renderNode(b, c, childPrefix, i == len(n.Children)-1, analyzed)
	}
}

// Strategies returns every concrete per-node strategy choice in the plan, in
// tree order — the compact summary tests and the EXPLAIN endpoint assert on.
func (p *Plan) Strategies() []string {
	var out []string
	p.Walk(func(n *Node) {
		if n.Strategy != "" {
			out = append(out, n.Op+"="+n.Strategy)
		}
	})
	return out
}

// Walk visits every plan node in tree order.
func (p *Plan) Walk(fn func(*Node)) {
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		fn(n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
}
