package query

import (
	"fmt"
	"strings"
)

// Node is one operator of an explainable plan tree.
type Node struct {
	// Op names the operator: "project", "aggregate", "cross", "exists",
	// "domain", "pairs", "fold", "groupfold" (a COUNT aggregate pushed into
	// the final fold as a weighted two-path composition), "star",
	// "enumerate", "scan", "semijoin", "bag" (a materialized hypertree-
	// decomposition bag relation) or "bagjoin" (the k-ary join over a
	// reduced bag tree). View maintenance plans add "maintain", "deltafold",
	// "deltastar", "deltatree" and "refresh" (see internal/view).
	Op string
	// Detail is free-form operator context (variables, thresholds, sizes).
	Detail string
	// Strategy is the per-node algorithm choice where one applies: "mm",
	// "wcoj" or "nonmm" for fold and star nodes, "auto" when the choice is
	// deferred to run time (predicted plans only).
	Strategy string
	// Rows is the operator's output cardinality; -1 when not known (e.g. in
	// a predicted plan for a node that has not run).
	Rows int64
	// Children are the operator inputs.
	Children []*Node
}

// line renders the node's own EXPLAIN line.
func (n *Node) line() string {
	var b strings.Builder
	b.WriteString(n.Op)
	if n.Strategy != "" {
		fmt.Fprintf(&b, " strategy=%s", n.Strategy)
	}
	if n.Detail != "" {
		b.WriteByte(' ')
		b.WriteString(n.Detail)
	}
	if n.Rows >= 0 {
		fmt.Fprintf(&b, " rows=%d", n.Rows)
	}
	return b.String()
}

// Plan is an explainable evaluation plan for one query.
type Plan struct {
	// Text is the canonical query text the plan was built for.
	Text string
	// Root is the plan tree.
	Root *Node
	// Predicted is true for plans built by Explain without executing: node
	// strategies deeper than the first composition level are deferred.
	Predicted bool
	// CacheHit reports whether the compiled query came from the plan cache.
	CacheHit bool
}

// String renders the plan as an indented EXPLAIN tree.
func (p *Plan) String() string {
	var b strings.Builder
	b.WriteString("query: ")
	b.WriteString(p.Text)
	if p.CacheHit {
		b.WriteString("  [plan cache hit]")
	}
	if p.Predicted {
		b.WriteString("  [predicted]")
	}
	b.WriteByte('\n')
	if p.Root != nil {
		renderNode(&b, p.Root, "", true)
	}
	return b.String()
}

func renderNode(b *strings.Builder, n *Node, prefix string, last bool) {
	branch, childPrefix := "├─ ", prefix+"│  "
	if last {
		branch, childPrefix = "└─ ", prefix+"   "
	}
	b.WriteString(prefix)
	b.WriteString(branch)
	b.WriteString(n.line())
	b.WriteByte('\n')
	for i, c := range n.Children {
		renderNode(b, c, childPrefix, i == len(n.Children)-1)
	}
}

// Strategies returns every concrete per-node strategy choice in the plan, in
// tree order — the compact summary tests and the EXPLAIN endpoint assert on.
func (p *Plan) Strategies() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			return
		}
		if n.Strategy != "" {
			out = append(out, n.Op+"="+n.Strategy)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(p.Root)
	return out
}
