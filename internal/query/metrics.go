package query

import "repro/internal/obs"

// foldTotal counts executed plan-node kernel operations by operator and the
// strategy the cost model (or a hint) chose — the live view of the MM/WCOJ
// decision the paper's cost model makes per node. Incremented only on real
// execution, never for dry (EXPLAIN) planning.
var foldTotal = obs.Default().CounterVec(
	"joinmm_fold_total",
	"Executed plan-node kernel operations by operator and chosen strategy.",
	"op", "strategy")
