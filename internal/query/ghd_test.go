package query

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

// ghdRels builds the shared cyclic-test catalog: R∪S∪T close the triangles
// (1,2,3) and (4,5,6), U adds pendant edges.
func ghdRels(t *testing.T) map[string]*relation.Relation {
	t.Helper()
	return map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 2}, [2]int32{4, 5}, [2]int32{7, 8}),
		"S": rel(t, "S", [2]int32{2, 3}, [2]int32{5, 6}, [2]int32{8, 9}),
		"T": rel(t, "T", [2]int32{3, 1}, [2]int32{6, 4}, [2]int32{9, 7}, // (9,7) closes (7,8,9) too
			[2]int32{3, 40}),
		"U": rel(t, "U", [2]int32{3, 30}, [2]int32{6, 60}, [2]int32{40, 1}),
	}
}

func TestTriangleBinaryRewrite(t *testing.T) {
	rels := ghdRels(t)
	p, err := Prepare("Q(x, z) :- R(x, y), S(y, z), T(z, x)", MapResolver(rels))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	res, err := p.Execute(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sortTuples(res.Tuples)
	want := [][]int64{{1, 3}, {4, 6}, {7, 9}}
	if !reflect.DeepEqual(res.Tuples, want) {
		t.Fatalf("triangle = %v; want %v\nplan:\n%s", res.Tuples, want, res.Plan)
	}
	plan := res.Plan.String()
	if !strings.Contains(plan, "ghd width=2 bags=1") {
		t.Errorf("plan missing GHD summary:\n%s", plan)
	}
	if !strings.Contains(plan, "bag {x y z}") {
		t.Errorf("plan missing bag node:\n%s", plan)
	}
	// The single-bag rewrite produces a plain binary edge: no k-ary join.
	if strings.Contains(plan, "bagjoin") {
		t.Errorf("binary rewrite must not use the k-ary bag join:\n%s", plan)
	}
	found := false
	for _, s := range res.Plan.Strategies() {
		if strings.HasPrefix(s, "bag=") {
			found = true
		}
	}
	if !found {
		t.Errorf("bag strategy missing from %v", res.Plan.Strategies())
	}
}

func TestFourCycleMergesBagEdges(t *testing.T) {
	// Q(a,c) over a 4-cycle: two bags, both projecting to (a,c), must merge
	// into one intersected edge.
	rels := ghdRels(t)
	p, err := Prepare("Q(a, c) :- R(a, b), S(b, c), T(c, d), U(d, a)", MapResolver(rels))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	plan := p.Explain(ExecOptions{}).String()
	if !strings.Contains(plan, "ghd width=2 bags=2") {
		t.Errorf("plan missing two-bag GHD summary:\n%s", plan)
	}
	if !strings.Contains(plan, "∩") {
		t.Errorf("parallel bag edges over (a, c) should intersect:\n%s", plan)
	}
}

func TestTriangleFullHeadUsesBagJoin(t *testing.T) {
	rels := ghdRels(t)
	p, err := Prepare("Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", MapResolver(rels))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	res, err := p.Execute(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sortTuples(res.Tuples)
	want := [][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if !reflect.DeepEqual(res.Tuples, want) {
		t.Fatalf("full-head triangle = %v; want %v\nplan:\n%s", res.Tuples, want, res.Plan)
	}
	if plan := res.Plan.String(); !strings.Contains(plan, "bagjoin") {
		t.Errorf("a ≥3-variable bag must run the k-ary bag join:\n%s", plan)
	}
}

func TestCyclicProvenEmptyAtCompile(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 2}),
		"S": rel(t, "S", [2]int32{2, 3}),
		"T": rel(t, "T", [2]int32{4, 4}), // never closes the triangle
	}
	p, err := Prepare("Q(x, z) :- R(x, y), S(y, z), T(z, x)", MapResolver(rels))
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if empty, why := p.Empty(); !empty {
		t.Fatalf("want compile-time empty, got satisfiable (%s)", why)
	}
	res, err := p.Execute(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	if len(res.Tuples) != 0 {
		t.Fatalf("tuples = %v; want none", res.Tuples)
	}
}

func TestCyclicStrategyPinReachesBags(t *testing.T) {
	rels := ghdRels(t)
	for _, pin := range []string{"mm", "wcoj"} {
		p, err := Prepare("Q(x, z) :- R(x, y), S(y, z), T(z, x) WITH strategy="+pin, MapResolver(rels))
		if err != nil {
			t.Fatalf("Prepare(%s): %v", pin, err)
		}
		res, err := p.Execute(context.Background(), ExecOptions{})
		if err != nil {
			t.Fatalf("Execute(%s): %v", pin, err)
		}
		sortTuples(res.Tuples)
		want := [][]int64{{1, 3}, {4, 6}, {7, 9}}
		if !reflect.DeepEqual(res.Tuples, want) {
			t.Fatalf("pin %s: %v; want %v", pin, res.Tuples, want)
		}
		if !strings.Contains(res.Plan.String(), "bag=") {
			// Strategies() renders op=strategy pairs into the plan only via
			// Strategies; check there instead.
			ok := false
			for _, s := range res.Plan.Strategies() {
				if s == "bag="+pin {
					ok = true
				}
			}
			if !ok {
				t.Errorf("pin %s not visible in bag strategies %v", pin, res.Plan.Strategies())
			}
		}
	}
}

func TestCyclicBooleanAndExistence(t *testing.T) {
	rels := ghdRels(t)
	res := evalText(t, "Q() :- R(x, y), S(y, z), T(z, x)", rels)
	if len(res.Tuples) != 1 || len(res.Tuples[0]) != 0 {
		t.Fatalf("boolean triangle = %v; want one empty tuple", res.Tuples)
	}
	// Cyclic component as pure existence filter beside a head component.
	res = evalText(t, "Q(a) :- U(3, a), R(x, y), S(y, z), T(z, x)", rels)
	sortTuples(res.Tuples)
	if want := [][]int64{{30}}; !reflect.DeepEqual(res.Tuples, want) {
		t.Fatalf("existence-filtered = %v; want %v", res.Tuples, want)
	}
}

func TestCyclicCompileHonorsContext(t *testing.T) {
	rels := ghdRels(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A full-head triangle forces the backtracking materializer (the fast
	// fold path only covers 2-variable projections), which polls the
	// context and must abandon compilation.
	_, err := PrepareContext(ctx, "Q(x, y, z) :- R(x, y), S(y, z), T(z, x)", MapResolver(rels))
	if err == nil {
		t.Fatal("want context error from cancelled cyclic compile")
	}
}

func TestCyclicCountAggregate(t *testing.T) {
	rels := ghdRels(t)
	res := evalText(t, "Q(COUNT(x)) :- R(x, y), S(y, z), T(z, x)", rels)
	if want := [][]int64{{3}}; !reflect.DeepEqual(res.Tuples, want) {
		t.Fatalf("COUNT over triangle = %v; want %v", res.Tuples, want)
	}
}
