package query

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/acyclic"
	"repro/internal/govern"
	"repro/internal/hypertree"
	"repro/internal/joinproject"
	"repro/internal/optimizer"
	"repro/internal/relation"
)

// bagOptimizer is the process-wide cost model the compiler uses to plan bag
// materialization folds. Calibration (optimizer.CalibrateConstants) runs
// once per process, so the lazy construction is cheap after the first query.
var bagOptimizer = sync.OnceValue(func() *optimizer.Optimizer { return optimizer.New() })

// bagInfo is one materialized GHD bag: the variables it spans, the subset it
// keeps after projection (head variables plus tree interfaces), and its
// distinct rows over that subset, in needed-column order.
type bagInfo struct {
	vars   []int // bag variables, ascending
	needed []int // projection kept, ascending
	parent int   // tree parent bag index, -1 at the root
	label  string
	// strategy records how the bag was materialized: "mm"/"wcoj"/"nonmm"
	// when a planned two-path fold ran, "wcoj" for the generic backtracking
	// materializer.
	strategy string
	rows     [][]int32
}

// decompose admits a cyclic component: it computes a generalized hypertree
// decomposition of the component's join graph, materializes every bag
// (planned MM/WCOJ folds for 3-variable path bags, worst-case-optimal
// backtracking otherwise), and then either rewrites the component into an
// acyclic instance over binary bag relations — re-entering the ordinary
// Yannakakis + planned-fold pipeline — or, when some bag must keep three or
// more variables, stores the reduced bag tree for k-ary evaluation.
func (p *Prepared) decompose(ctx context.Context, c *component, unary map[int][]int32, hasUnary map[int]bool, addUnary func(int, []int32, string)) error {
	if p.empty {
		return nil // nothing will run; skip the materialization work
	}

	// Build the hypergraph over component-local vertex ids.
	local := make(map[int]int, len(c.vars))
	for i, v := range c.vars {
		local[v] = i
	}
	h := hypertree.Hypergraph{NumVertices: len(c.vars)}
	for _, e := range c.edges {
		h.Edges = append(h.Edges, []int{local[e.a], local[e.b]})
	}
	// Among minimum-width decompositions, prefer ones whose bags project to
	// ≤ 2 variables (head ∪ interfaces): those re-enter the binary fold
	// pipeline instead of the k-ary bag join.
	headLocal := make(map[int]bool, len(c.heads))
	for _, v := range c.heads {
		headLocal[local[v]] = true
	}
	d, err := hypertree.DecomposeScored(h, func(d hypertree.Decomposition) int {
		s := 0
		for i := range d.Bags {
			n := localNeeded(d, i, headLocal)
			if len(n) > 2 {
				s += len(n) - 2
			}
		}
		return s
	})
	if err != nil {
		return fmt.Errorf("query: cyclic query over %s: %w", varNames(p.vars, c.vars), err)
	}
	c.ghd = fmt.Sprintf("(ghd width=%d bags=%d)", d.Width, len(d.Bags))

	// Bag variable sets in global ids, and the kept ("needed") subset: head
	// variables plus interfaces with tree-adjacent bags. The running
	// intersection property makes adjacent interfaces sufficient — any two
	// bags sharing a variable share it along the whole tree path.
	nb := len(d.Bags)
	bagVars := make([][]int, nb)
	for i, b := range d.Bags {
		for _, lv := range b.Vertices {
			bagVars[i] = append(bagVars[i], c.vars[lv])
		}
		sort.Ints(bagVars[i])
	}
	needed := make([][]int, nb)
	for i := range d.Bags {
		for _, lv := range localNeeded(d, i, headLocal) {
			needed[i] = append(needed[i], c.vars[lv])
		}
		sort.Ints(needed[i])
	}

	// Materialize every bag, enforcing all in-bag atoms and unary
	// constraints; constraints whose variables straddle bags are enforced in
	// each bag that contains them (redundant filtering is harmless).
	bags := make([]*bagInfo, nb)
	for i := range d.Bags {
		bg, err := p.materializeBag(ctx, c, bagVars[i], needed[i], unary, hasUnary)
		if err != nil {
			return err
		}
		bg.parent = d.Bags[i].Parent
		bags[i] = bg
		p.matRows += len(bg.rows)
		if len(bg.rows) == 0 {
			// One empty bag proves the query empty; don't materialize the
			// rest (execution renders only the "empty" node).
			p.empty = true
			p.emptyWhy = bg.label + " is empty"
			c.bags, c.edges = nil, nil
			return nil
		}
	}

	// Binary rewrite is possible when every bag projects to ≤ 2 variables
	// and the resulting edge graph is a tree (with running intersection this
	// always holds; the check is belt and braces).
	binary := true
	for i := range bags {
		if len(bags[i].needed) > 2 {
			binary = false
			break
		}
	}
	if binary {
		type pairKey struct{ a, b int }
		kept := map[int]bool{}
		pairs := map[pairKey]bool{}
		for _, bg := range bags {
			for _, v := range bg.needed {
				kept[v] = true
			}
			if len(bg.needed) == 2 {
				pairs[pairKey{bg.needed[0], bg.needed[1]}] = true
			}
		}
		if len(pairs) == len(kept)-1 || (len(kept) == 0 && len(pairs) == 0) {
			p.rewriteBinary(c, bags, addUnary)
			return nil
		}
	}

	// k-ary path: keep the bag tree and full-reduce it now, so execution is
	// a pure join and non-emptiness is already decided at compile time.
	c.edges = nil
	c.bags = bags
	keptVars := map[int]bool{}
	for _, bg := range bags {
		for _, v := range bg.needed {
			keptVars[v] = true
		}
	}
	var vars []int
	for _, v := range c.vars {
		if keptVars[v] {
			vars = append(vars, v)
		}
	}
	c.vars = vars
	p.reduceBagTree(c)
	return nil
}

// localNeeded returns bag i's kept vertices in decomposition-local ids,
// sorted: head vertices plus interfaces with tree-adjacent bags.
func localNeeded(d hypertree.Decomposition, i int, heads map[int]bool) []int {
	keep := map[int]bool{}
	for _, lv := range d.Bags[i].Vertices {
		if heads[lv] {
			keep[lv] = true
		}
	}
	for j := range d.Bags {
		if j == i || (d.Bags[j].Parent != i && d.Bags[i].Parent != j) {
			continue
		}
		for _, lv := range d.Bags[i].Vertices {
			if containsInt(d.Bags[j].Vertices, lv) {
				keep[lv] = true
			}
		}
	}
	out := make([]int, 0, len(keep))
	for lv := range keep {
		out = append(out, lv)
	}
	sort.Ints(out)
	return out
}

// rewriteBinary replaces the component's cyclic edge set with the bag
// relations: two-variable bags become binary edges (parallel ones merged by
// intersection), one-variable bags become unary domain constraints, and
// zero-variable bags are existence checks already proven non-empty.
func (p *Prepared) rewriteBinary(c *component, bags []*bagInfo, addUnary func(int, []int32, string)) {
	kept := map[int]bool{}
	var edges []edge
	for _, bg := range bags {
		switch len(bg.needed) {
		case 0:
			// Non-empty (checked by the caller): the bag is satisfied.
		case 1:
			v := bg.needed[0]
			dom := make([]int32, len(bg.rows))
			for i, r := range bg.rows {
				dom[i] = r[0]
			}
			addUnary(v, dom, bg.label)
			kept[v] = true
		case 2:
			a, b := bg.needed[0], bg.needed[1]
			ps := make([]relation.Pair, len(bg.rows))
			for i, r := range bg.rows {
				ps[i] = relation.Pair{X: r[0], Y: r[1]}
			}
			rel := relation.FromPairs("bag"+varNames(p.vars, bg.needed), ps)
			kept[a], kept[b] = true, true

			merged := false
			for i := range edges {
				e := &edges[i]
				if (e.a == a && e.b == b) || (e.a == b && e.b == a) {
					if e.a != a {
						rel = rel.Swap()
					}
					var in []relation.Pair
					for _, pr := range e.rel.Pairs() {
						if rel.Contains(pr.X, pr.Y) {
							in = append(in, pr)
						}
					}
					e.rel = relation.FromPairs(e.rel.Name()+"∩"+rel.Name(), in)
					e.label += " ∩ " + bg.label
					if e.rel.Size() == 0 && !p.empty {
						p.empty = true
						p.emptyWhy = e.label + " is empty"
					}
					merged = true
					break
				}
			}
			if !merged {
				edges = append(edges, edge{
					a: a, b: b, rel: rel,
					label: bg.label, bag: true, bagStrategy: bg.strategy,
				})
			}
		}
	}
	for i := range edges {
		edges[i].origSize = edges[i].rel.Size()
	}
	var vars []int
	for _, v := range c.vars {
		if kept[v] {
			vars = append(vars, v)
		}
	}
	c.vars, c.edges = vars, edges
}

// materializeBag computes one bag's distinct rows over its needed variables.
// A three-variable bag projecting to two (a path a–m–b with an optional
// chord) runs as a planned two-path composition — the paper's fold, with the
// calibrated cost model picking MM or WCOJ — and anything else falls back to
// worst-case-optimal backtracking over the bag's atoms.
func (p *Prepared) materializeBag(ctx context.Context, c *component, bagVars, needed []int, unary map[int][]int32, hasUnary map[int]bool) (*bagInfo, error) {
	bg := &bagInfo{vars: bagVars, needed: needed}

	var inBag []*edge
	var labels []string
	for i := range c.edges {
		e := &c.edges[i]
		if containsInt(bagVars, e.a) && containsInt(bagVars, e.b) {
			inBag = append(inBag, e)
			labels = append(labels, e.label)
		}
	}
	bg.label = fmt.Sprintf("bag %s via %s", varNames(p.vars, bagVars), strings.Join(labels, ", "))

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if rows, strategy, ok := p.foldBag(bagVars, needed, inBag, hasUnary); ok {
		bg.rows, bg.strategy = rows, strategy
		return bg, nil
	}
	rows, err := p.enumerateBag(ctx, c, bagVars, needed, inBag, unary, hasUnary)
	if err != nil {
		return nil, err
	}
	bg.rows = rows
	bg.strategy = acyclic.StrategyWCOJ
	return bg, nil
}

// foldBag attempts the composed fast path: bag {a, m, b} projected to
// {a, b} with atoms (a,m), (m,b) and at most a chord (a,b). Unary
// constraints on any bag variable disable it (the backtracking path applies
// them). Returns ok=false when the shape does not match.
func (p *Prepared) foldBag(bagVars, needed []int, inBag []*edge, hasUnary map[int]bool) ([][]int32, string, bool) {
	if len(bagVars) != 3 || len(needed) != 2 || len(inBag) < 2 || len(inBag) > 3 {
		return nil, "", false
	}
	for _, v := range bagVars {
		if hasUnary[v] {
			return nil, "", false
		}
	}
	a, b := needed[0], needed[1]
	m := -1
	for _, v := range bagVars {
		if v != a && v != b {
			m = v
		}
	}
	var eAM, eMB, chord *edge
	for _, e := range inBag {
		switch {
		case (e.a == a && e.b == m) || (e.a == m && e.b == a):
			eAM = e
		case (e.a == m && e.b == b) || (e.a == b && e.b == m):
			eMB = e
		case (e.a == a && e.b == b) || (e.a == b && e.b == a):
			chord = e
		}
	}
	if eAM == nil || eMB == nil {
		return nil, "", false
	}

	l := eAM.rel
	if eAM.a != a {
		l = l.Swap()
	}
	r := eMB.rel
	if eMB.a != m {
		r = r.Swap()
	}
	opt := acyclic.Options{Join: joinproject.Options{}}
	switch p.Query.Hints.Strategy {
	case acyclic.StrategyMM, acyclic.StrategyWCOJ, acyclic.StrategyNonMM:
		opt.Force = p.Query.Hints.Strategy
	default:
		opt.Planner = optPlanner{opt: bagOptimizer()}
	}
	v, step := acyclic.Compose(l, r, opt)

	var ch *relation.Relation
	if chord != nil {
		ch = chord.rel
		if chord.a != a {
			ch = ch.Swap()
		}
	}
	rows := make([][]int32, 0, v.Size())
	for _, pr := range v.Pairs() {
		if ch != nil && !ch.Contains(pr.X, pr.Y) {
			continue
		}
		rows = append(rows, []int32{pr.X, pr.Y})
	}
	return rows, step.Strategy, true
}

// enumerateBag materializes a bag by backtracking over its variables in a
// connectivity-greedy order, intersecting candidate lists per step — the
// k-ary worst-case-optimal join restricted to the bag. All in-bag atoms and
// unary constraints apply; a needed variable with no in-bag atom falls back
// to the key lists of its out-of-bag atoms (a sound superset; interface
// joins restore exactness). The context is polled every few thousand
// search nodes, so a request deadline abandons a pathological bag.
func (p *Prepared) enumerateBag(ctx context.Context, c *component, bagVars, needed []int, inBag []*edge, unary map[int][]int32, hasUnary map[int]bool) ([][]int32, error) {
	// Connectivity-greedy order: maximize atoms to already-ordered vars.
	order := make([]int, 0, len(bagVars))
	chosen := map[int]bool{}
	for len(order) < len(bagVars) {
		best, bestScore := -1, -1
		for _, v := range bagVars {
			if chosen[v] {
				continue
			}
			score := 0
			for _, e := range inBag {
				if (e.a == v && chosen[e.b]) || (e.b == v && chosen[e.a]) {
					score++
				}
			}
			if score > bestScore || (score == bestScore && best >= 0 && v < best) {
				best, bestScore = v, score
			}
		}
		order = append(order, best)
		chosen[best] = true
	}

	pos := map[int]int{} // var → order position
	for i, v := range order {
		pos[v] = i
	}
	assign := make([]int32, len(order))
	bound := make([]bool, len(order))

	// candidates returns the sorted candidate list for order[depth].
	candidates := func(depth int) []int32 {
		v := order[depth]
		var dom []int32
		have := false
		merge := func(list []int32) {
			if !have {
				dom, have = slices.Clone(list), true
			} else {
				dom = relation.IntersectSorted(nil, dom, list)
			}
		}
		if hasUnary[v] {
			merge(unary[v])
		}
		for _, e := range inBag {
			if e.a != v && e.b != v {
				continue
			}
			u := e.other(v)
			if bound[pos[u]] {
				// The partner list of the bound neighbor's value is the
				// candidate list for v through this atom.
				merge(edgePartners(e, u, assign[pos[u]]))
			} else {
				merge(edgeKeys(e, v))
			}
		}
		if !have {
			// No in-bag atom touches v: bound by its atoms in other bags.
			for i := range c.edges {
				e := &c.edges[i]
				if e.a == v || e.b == v {
					merge(edgeKeys(e, v))
				}
			}
		}
		return dom
	}

	neededPos := make([]int, len(needed))
	for i, v := range needed {
		neededPos[i] = pos[v]
	}
	seen := map[string]bool{}
	var rows [][]int32
	var key []byte
	emit := func() {
		row := make([]int32, len(needed))
		key = key[:0]
		for i, np := range neededPos {
			row[i] = assign[np]
			key = strconv.AppendInt(key, int64(row[i]), 10)
			key = append(key, ',')
		}
		if k := string(key); !seen[k] {
			seen[k] = true
			rows = append(rows, row)
		}
	}

	done := false // satisfiability short-circuit for boolean bags
	steps := 0
	var ctxErr error
	var solve func(depth int)
	solve = func(depth int) {
		if done || ctxErr != nil {
			return
		}
		if steps++; steps&0xfff == 0 {
			if ctxErr = ctx.Err(); ctxErr != nil {
				return
			}
		}
		if depth == len(order) {
			emit()
			if len(needed) == 0 {
				done = true
			}
			return
		}
		for _, val := range candidates(depth) {
			assign[depth] = val
			bound[depth] = true
			solve(depth + 1)
			bound[depth] = false
			if done || ctxErr != nil {
				return
			}
		}
	}
	solve(0)
	if ctxErr != nil {
		return nil, ctxErr
	}
	sortRows(rows)
	return rows, nil
}

// reduceBagTree runs the Yannakakis full reducer over the k-ary bag tree:
// an upward pass (children filter parents) then a downward pass (parents
// filter children), leaving every bag row extensible to a full solution.
// After it, non-empty bags imply a non-empty component.
func (p *Prepared) reduceBagTree(c *component) {
	bags := c.bags
	order := bagsByDepth(bags)
	// Upward: deepest first; each bag filters its parent.
	for i := len(order) - 1; i >= 0; i-- {
		b := bags[order[i]]
		if b.parent < 0 {
			continue
		}
		semijoinRows(bags[b.parent], b)
	}
	// Downward: shallowest first; each parent filters its children.
	for _, bi := range order {
		b := bags[bi]
		if b.parent < 0 {
			continue
		}
		semijoinRows(b, bags[b.parent])
	}
	for _, b := range bags {
		if len(b.rows) == 0 && !p.empty {
			p.empty = true
			p.emptyWhy = b.label + " is empty after reduction"
			return
		}
	}
}

// bagsByDepth returns bag indices ordered root-first by tree depth.
func bagsByDepth(bags []*bagInfo) []int {
	depth := make([]int, len(bags))
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if bags[i].parent < 0 {
			return 0
		}
		if depth[i] == 0 {
			depth[i] = depthOf(bags[i].parent) + 1
		}
		return depth[i]
	}
	order := make([]int, len(bags))
	for i := range bags {
		order[i] = i
		depthOf(i)
	}
	sort.SliceStable(order, func(a, b int) bool { return depth[order[a]] < depth[order[b]] })
	return order
}

// semijoinRows keeps the rows of dst whose shared-variable projection
// appears in src.
func semijoinRows(dst, src *bagInfo) {
	shared := intersectInts(dst.needed, src.needed)
	if len(shared) == 0 {
		return
	}
	dstPos := varPositions(dst.needed, shared)
	srcPos := varPositions(src.needed, shared)
	keys := make(map[string]bool, len(src.rows))
	var key []byte
	for _, r := range src.rows {
		keys[string(rowKey(&key, r, srcPos))] = true
	}
	out := dst.rows[:0:0]
	for _, r := range dst.rows {
		if keys[string(rowKey(&key, r, dstPos))] {
			out = append(out, r)
		}
	}
	dst.rows = out
}

// joinBagTree joins the reduced bag tree below bag i and returns the result
// columns (variable ids) and rows. The context is polled between child
// joins and every few thousand output rows, so a request deadline abandons
// a blowing-up intermediate; the per-query budget riding the context is
// charged for every joined intermediate, so an output explosion trips
// govern.ErrBudgetExceeded before it exhausts memory.
func joinBagTree(ctx context.Context, bags []*bagInfo, i int) ([]int, [][]int32, error) {
	budget := govern.FromContext(ctx)
	cols := slices.Clone(bags[i].needed)
	rows := bags[i].rows
	for j, b := range bags {
		if b.parent != i {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		ccols, crows, err := joinBagTree(ctx, bags, j)
		if err != nil {
			return nil, nil, err
		}
		// cols is no longer sorted after the first child join: intersect by
		// linear membership, not the sorted-slice helpers.
		var shared []int
		for _, v := range ccols {
			if slices.Contains(cols, v) {
				shared = append(shared, v)
			}
		}
		sharedPos := varPositions(cols, shared)
		csharedPos := varPositions(ccols, shared)
		var extraPos []int
		for k, v := range ccols {
			if !slices.Contains(shared, v) {
				extraPos = append(extraPos, k)
				cols = append(cols, v)
			}
		}
		index := make(map[string][][]int32, len(crows))
		var key []byte
		for _, r := range crows {
			k := string(rowKey(&key, r, csharedPos))
			index[k] = append(index[k], r)
		}
		var joined [][]int32
		for _, r := range rows {
			for _, cr := range index[string(rowKey(&key, r, sharedPos))] {
				row := make([]int32, 0, len(r)+len(extraPos))
				row = append(row, r...)
				for _, ep := range extraPos {
					row = append(row, cr[ep])
				}
				joined = append(joined, row)
				if len(joined)&0x1fff == 0 {
					if err := ctx.Err(); err != nil {
						return nil, nil, err
					}
				}
			}
		}
		if err := budget.ChargeRows(int64(len(joined)), int64(24+4*len(cols))); err != nil {
			return nil, nil, err
		}
		rows = joined
	}
	return cols, rows, nil
}

// rowKey encodes the projection of r onto positions into *buf and returns it.
func rowKey(buf *[]byte, r []int32, positions []int) []byte {
	b := (*buf)[:0]
	for _, p := range positions {
		b = strconv.AppendInt(b, int64(r[p]), 10)
		b = append(b, ',')
	}
	*buf = b
	return b
}

// varPositions maps each variable of sub to its position in cols.
func varPositions(cols, sub []int) []int {
	out := make([]int, len(sub))
	for i, v := range sub {
		out[i] = slices.Index(cols, v)
	}
	return out
}

// intersectInts returns the sorted intersection of two ascending int slices.
func intersectInts(a, b []int) []int {
	var out []int
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// containsInt reports membership in an ascending int slice.
func containsInt(s []int, v int) bool {
	i := sort.SearchInts(s, v)
	return i < len(s) && s[i] == v
}

// sortRows orders rows lexicographically for deterministic plans.
func sortRows(rows [][]int32) {
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
