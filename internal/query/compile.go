package query

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"strings"

	"repro/internal/relation"
)

// Resolver maps a relation name to its indexed relation. The catalog's Get
// wraps into one; tests pass map lookups.
type Resolver func(name string) (*relation.Relation, error)

// MapResolver builds a Resolver over a fixed name → relation map.
func MapResolver(rels map[string]*relation.Relation) Resolver {
	return func(name string) (*relation.Relation, error) {
		r, ok := rels[name]
		if !ok {
			return nil, fmt.Errorf("query: unknown relation %q", name)
		}
		return r, nil
	}
}

// edge is one join-graph edge: a binary relation between two variables,
// oriented so the relation's X column carries variable a and the Y column
// variable b. Parallel atoms over the same variable pair are merged into one
// edge by tuple intersection during compilation.
type edge struct {
	a, b  int // variable indices
	rel   *relation.Relation
	label string // source atoms, for EXPLAIN
	// origSize is the tuple count before semijoin reduction.
	origSize int
	// bag marks an edge holding a materialized GHD bag relation rather than
	// a source atom; bagStrategy records how it was materialized ("mm",
	// "wcoj" or "nonmm"), for EXPLAIN.
	bag         bool
	bagStrategy string
}

// component is one connected component of the join graph: a tree of edges
// (acyclicity is checked at compile time) plus the globally consistent
// variable domains the Yannakakis reduction produced.
type component struct {
	vars    []int // variable indices, in first-appearance order
	edges   []edge
	heads   []int           // head variables in this component
	allowed map[int][]int32 // per variable: sorted globally consistent domain
	pruned  []string        // labels of edges outside the Steiner tree (filters only)
	// ghd summarizes the hypertree decomposition a cyclic component went
	// through, for EXPLAIN; empty for components that were trees already.
	ghd string
	// bags, when non-nil, holds the reduced k-ary bag tree of a cyclic
	// component whose bags keep ≥ 3 variables each; the executor joins it
	// directly instead of the binary-edge machinery.
	bags []*bagInfo
}

// Prepared is a compiled query: parsed, resolved against one catalog
// snapshot, and semijoin-reduced. Acyclic join graphs compile directly;
// cyclic ones are admitted through a generalized hypertree decomposition
// whose bags are materialized at compile time (see decompose). A Prepared is
// immutable and safe for concurrent Execute calls; the catalog caches them
// per (query text, catalog epoch).
type Prepared struct {
	// Query is the parsed AST.
	Query *Query
	// Text is the canonical query text (the plan-cache key).
	Text string
	// Fingerprint is the statement fingerprint: constants normalized, atoms
	// canonically ordered. Statements differing only in constant values share
	// one fingerprint; statement statistics aggregate on it.
	Fingerprint string

	vars     []string // variable names by index
	comps    []*component
	empty    bool   // proven empty during reduction
	emptyWhy string // what emptied it, for EXPLAIN
	matRows  int    // total bag rows materialized for cyclic components
}

// Compile parses nothing: it takes a parsed query and resolves, validates and
// reduces it against the relations the resolver provides. Use Prepare to go
// straight from text.
func Compile(q *Query, resolve Resolver) (*Prepared, error) {
	return CompileContext(context.Background(), q, resolve)
}

// CompileContext is Compile with cancellation: compiling a cyclic query
// materializes hypertree-decomposition bags, which can dominate the whole
// evaluation, so the context is polled during that work and a deadline
// abandons compilation mid-bag.
func CompileContext(ctx context.Context, q *Query, resolve Resolver) (*Prepared, error) {
	p := &Prepared{Query: q, Text: q.String(), Fingerprint: q.Fingerprint()}

	varIdx := map[string]int{}
	varOf := func(name string) int {
		if i, ok := varIdx[name]; ok {
			return i
		}
		i := len(p.vars)
		varIdx[name] = i
		p.vars = append(p.vars, name)
		return i
	}

	// Resolve each distinct relation name once.
	rels := map[string]*relation.Relation{}
	for _, a := range q.Atoms {
		if _, ok := rels[a.Rel]; ok {
			continue
		}
		r, err := resolve(a.Rel)
		if err != nil {
			return nil, err
		}
		rels[a.Rel] = r
	}

	// Classify atoms into binary edges and unary domain constraints.
	type pairKey struct{ a, b int }
	parallel := map[pairKey][]edge{} // normalized orientation (a = first seen)
	var pairOrder []pairKey
	unary := map[int][]int32{}
	hasUnary := map[int]bool{}
	addUnary := func(v int, set []int32, why string) {
		if hasUnary[v] {
			unary[v] = intersectSorted(unary[v], set)
		} else {
			hasUnary[v] = true
			unary[v] = set
		}
		if len(unary[v]) == 0 && !p.empty {
			p.empty = true
			p.emptyWhy = why
		}
	}
	for _, a := range q.Atoms {
		r := rels[a.Rel]
		t0, t1 := a.Args[0], a.Args[1]
		switch {
		case t0.IsConst && t1.IsConst:
			if !r.Contains(t0.Value, t1.Value) && !p.empty {
				p.empty = true
				p.emptyWhy = fmt.Sprintf("%s has no tuple (%d, %d)", a.Rel, t0.Value, t1.Value)
			}
		case t0.IsConst:
			v := varOf(t1.Var)
			addUnary(v, slices.Clone(r.ByX().Lookup(t0.Value)), a.String())
		case t1.IsConst:
			v := varOf(t0.Var)
			addUnary(v, slices.Clone(r.ByY().Lookup(t1.Value)), a.String())
		case t0.Var == t1.Var:
			v := varOf(t0.Var)
			var diag []int32
			for _, x := range r.ByX().Keys() {
				if r.Contains(x, x) {
					diag = append(diag, x)
				}
			}
			addUnary(v, diag, a.String())
		default:
			va, vb := varOf(t0.Var), varOf(t1.Var)
			rel, label := r, a.String()
			key := pairKey{va, vb}
			if prior, ok := parallel[pairKey{vb, va}]; ok && len(prior) > 0 {
				key = pairKey{vb, va}
				rel = rel.Swap()
			}
			if _, ok := parallel[key]; !ok {
				pairOrder = append(pairOrder, key)
			}
			parallel[key] = append(parallel[key], edge{a: key.a, b: key.b, rel: rel, label: label})
		}
	}

	// Merge parallel atoms over the same variable pair by tuple intersection
	// (the GYO step that removes hyperedges contained in another).
	var edges []edge
	for _, key := range pairOrder {
		group := parallel[key]
		e := group[0]
		if len(group) > 1 {
			var ps []relation.Pair
			for _, pr := range group[0].rel.Pairs() {
				ok := true
				for _, other := range group[1:] {
					if !other.rel.Contains(pr.X, pr.Y) {
						ok = false
						break
					}
				}
				if ok {
					ps = append(ps, pr)
				}
			}
			labels := make([]string, len(group))
			for i, g := range group {
				labels[i] = g.label
			}
			name := ""
			for i, g := range group {
				if i > 0 {
					name += "∩"
				}
				name += g.rel.Name()
			}
			e = edge{a: key.a, b: key.b, rel: relation.FromPairs(name, ps), label: strings.Join(labels, " ∩ ")}
			if e.rel.Size() == 0 && !p.empty {
				p.empty = true
				p.emptyWhy = e.label + " is empty"
			}
		}
		e.origSize = e.rel.Size()
		if e.origSize == 0 && !p.empty {
			p.empty = true
			p.emptyWhy = e.label + " is empty"
		}
		edges = append(edges, e)
	}

	// Connected components over the variable graph.
	parent := make([]int, len(p.vars))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }
	for _, e := range edges {
		union(e.a, e.b)
	}
	compOf := map[int]*component{}
	for v := range p.vars {
		root := find(v)
		c, ok := compOf[root]
		if !ok {
			c = &component{allowed: map[int][]int32{}}
			compOf[root] = c
			p.comps = append(p.comps, c)
		}
		c.vars = append(c.vars, v)
	}
	for _, e := range edges {
		compOf[find(e.a)].edges = append(compOf[find(e.a)].edges, e)
	}

	// Head variables must be bound (validate checked) — map them before
	// decomposition, which needs to know what each component must keep.
	for _, name := range q.HeadVars() {
		v, ok := varIdx[name]
		if !ok {
			return nil, fmt.Errorf("query: head variable %q is not bound by the body", name)
		}
		c := compOf[find(v)]
		c.heads = append(c.heads, v)
	}

	// Acyclicity: components that are trees (GYO-reducible) pass straight
	// through; cyclic ones are admitted via generalized hypertree
	// decomposition — their edges are replaced by materialized bag
	// relations, turning them into acyclic instances (or a reduced k-ary
	// bag tree when bags must keep ≥ 3 variables).
	for _, c := range p.comps {
		if len(c.edges) == len(c.vars)-1 {
			continue
		}
		if err := p.decompose(ctx, c, unary, hasUnary, addUnary); err != nil {
			return nil, err
		}
	}

	// Yannakakis semijoin reduction per component (bag-tree components were
	// fully reduced during decomposition).
	if !p.empty {
		for _, c := range p.comps {
			if c.bags != nil {
				continue
			}
			if why, ok := p.reduce(c, unary, hasUnary); !ok {
				p.empty = true
				p.emptyWhy = why
				break
			}
		}
	}
	return p, nil
}

// Prepare parses and compiles query text in one step.
func Prepare(src string, resolve Resolver) (*Prepared, error) {
	return PrepareContext(context.Background(), src, resolve)
}

// PrepareContext is Prepare with cancellation (see CompileContext).
func PrepareContext(ctx context.Context, src string, resolve Resolver) (*Prepared, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return CompileContext(ctx, q, resolve)
}

// MaterializedRows returns the total number of bag rows materialized at
// compile time for cyclic components — zero for acyclic queries. The
// catalog uses it to keep giant compiled artifacts out of the plan cache.
func (p *Prepared) MaterializedRows() int { return p.matRows }

// Vars returns the query's variable names in first-appearance order.
func (p *Prepared) Vars() []string { return append([]string(nil), p.vars...) }

// Empty reports whether compilation proved the result empty, with the reason.
func (p *Prepared) Empty() (bool, string) { return p.empty, p.emptyWhy }

// reduce runs the two Yannakakis passes over one component tree and filters
// every edge relation down to its globally consistent tuples. After this,
// every remaining tuple and every remaining domain value participates in at
// least one full solution of the component — the property that lets the
// executor prune non-head branches entirely and keep every fold
// output-sensitive. Returns ok=false with a reason if some domain empties.
func (p *Prepared) reduce(c *component, unary map[int][]int32, hasUnary map[int]bool) (string, bool) {
	// Incidence lists.
	adj := map[int][]int{} // var → edge indices
	for i, e := range c.edges {
		adj[e.a] = append(adj[e.a], i)
		adj[e.b] = append(adj[e.b], i)
	}

	// Initial domains: intersection of every incident edge's key list and the
	// unary constraints (local consistency).
	for _, v := range c.vars {
		var dom []int32
		have := false
		if hasUnary[v] {
			dom, have = unary[v], true
		}
		for _, ei := range adj[v] {
			keys := edgeKeys(&c.edges[ei], v)
			if !have {
				dom, have = slices.Clone(keys), true
			} else {
				dom = intersectSorted(dom, keys)
			}
		}
		if !have || len(dom) == 0 {
			return fmt.Sprintf("variable %s has an empty domain", p.vars[v]), false
		}
		c.allowed[v] = dom
	}

	if len(c.edges) > 0 {
		root := c.vars[0]
		// Upward pass (post-order): each variable's domain is filtered by the
		// values its children subtrees support.
		var up func(v, parentEdge int)
		up = func(v, parentEdge int) {
			for _, ei := range adj[v] {
				if ei == parentEdge {
					continue
				}
				e := &c.edges[ei]
				u := e.other(v)
				up(u, ei)
				c.allowed[v] = filterSupported(c.allowed[v], e, v, c.allowed[u])
			}
		}
		up(root, -1)
		// Downward pass (pre-order): push the root-side support back out.
		var down func(v, parentEdge int)
		down = func(v, parentEdge int) {
			for _, ei := range adj[v] {
				if ei == parentEdge {
					continue
				}
				e := &c.edges[ei]
				u := e.other(v)
				c.allowed[u] = filterSupported(c.allowed[u], e, u, c.allowed[v])
				down(u, ei)
			}
		}
		down(root, -1)
	}
	for _, v := range c.vars {
		if len(c.allowed[v]) == 0 {
			return fmt.Sprintf("variable %s has an empty domain after reduction", p.vars[v]), false
		}
	}

	// Filter every edge down to tuples with both endpoints allowed.
	for i := range c.edges {
		e := &c.edges[i]
		domA, domB := c.allowed[e.a], c.allowed[e.b]
		var ps []relation.Pair
		kept := 0
		for _, pr := range e.rel.Pairs() {
			if containsSorted(domA, pr.X) && containsSorted(domB, pr.Y) {
				ps = append(ps, pr)
				kept++
			}
		}
		if kept == e.rel.Size() {
			continue // nothing dangled; keep the original indexes
		}
		if kept == 0 {
			return e.label + " is empty after reduction", false
		}
		e.rel = relation.FromPairs(e.rel.Name(), ps)
	}
	return "", true
}

// other returns the edge endpoint that is not v.
func (e *edge) other(v int) int {
	if e.a == v {
		return e.b
	}
	return e.a
}

// edgeKeys returns the sorted distinct values of variable v in edge e.
func edgeKeys(e *edge, v int) []int32 {
	if e.a == v {
		return e.rel.ByX().Keys()
	}
	return e.rel.ByY().Keys()
}

// edgePartners returns the sorted partner values of v=val through edge e.
func edgePartners(e *edge, v int, val int32) []int32 {
	if e.a == v {
		return e.rel.ByX().Lookup(val)
	}
	return e.rel.ByY().Lookup(val)
}

// filterSupported keeps the values of dom whose partner list through e
// intersects otherDom.
func filterSupported(dom []int32, e *edge, v int, otherDom []int32) []int32 {
	out := dom[:0:0]
	for _, val := range dom {
		if intersectsSorted(edgePartners(e, v, val), otherDom) {
			out = append(out, val)
		}
	}
	return out
}

// intersectsSorted reports whether two ascending slices share an element.
func intersectsSorted(a, b []int32) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(b) >= 16*len(a) {
		for _, v := range a {
			i := sort.Search(len(b), func(i int) bool { return b[i] >= v })
			if i < len(b) && b[i] == v {
				return true
			}
			b = b[i:]
			if len(b) == 0 {
				return false
			}
		}
		return false
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			return true
		}
	}
	return false
}

func intersectSorted(a, b []int32) []int32 {
	return relation.IntersectSorted(nil, a, b)
}

// containsSorted reports membership in an ascending slice.
func containsSorted(s []int32, v int32) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

func varNames(names []string, idx []int) string {
	out := "{"
	for i, v := range idx {
		if i > 0 {
			out += " "
		}
		out += names[v]
	}
	return out + "}"
}
