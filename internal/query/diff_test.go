package query

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/relation"
)

// oracleEval answers a query by brute force: backtracking over the atoms,
// binding variables from the relation tuples, then projecting/aggregating
// the satisfying assignments — an independent nested-loop implementation of
// the language semantics. Returns ok=false when the enumeration exceeds the
// step budget (the caller skips such instances).
func oracleEval(q *Query, rels map[string]*relation.Relation) ([][]int64, bool) {
	const maxSteps = 4 << 20
	steps := 0
	assign := map[string]int32{}
	type row = []int64

	// Distinct projected assignments (head terms by position, with COUNT(v)
	// projected as v's value for now).
	seen := map[string][]int64{}
	record := func() {
		t := make(row, len(q.Head))
		key := ""
		for i, h := range q.Head {
			t[i] = int64(assign[h.Var])
			key += fmt.Sprintf("%d,", t[i])
		}
		seen[key] = t
	}

	var solve func(i int) bool
	solve = func(i int) bool {
		steps++
		if steps > maxSteps {
			return false
		}
		if i == len(q.Atoms) {
			record()
			return true
		}
		a := q.Atoms[i]
		r := rels[a.Rel]
		for _, pr := range r.Pairs() {
			vals := [2]int32{pr.X, pr.Y}
			var boundHere []string
			ok := true
			for k, term := range a.Args {
				switch {
				case term.IsConst:
					ok = term.Value == vals[k]
				default:
					if v, bound := assign[term.Var]; bound {
						ok = v == vals[k]
					} else {
						assign[term.Var] = vals[k]
						boundHere = append(boundHere, term.Var)
					}
				}
				if !ok {
					break
				}
			}
			if ok && !solve(i+1) {
				return false
			}
			for _, v := range boundHere {
				delete(assign, v)
			}
		}
		return true
	}
	if !solve(0) {
		return nil, false
	}

	ci := q.CountIndex()
	if ci < 0 {
		out := make([][]int64, 0, len(seen))
		for _, t := range seen {
			out = append(out, t)
		}
		return out, true
	}
	// COUNT(v): distinct v per group of the remaining head positions.
	groups := map[string][]int64{}
	counts := map[string]map[int64]bool{}
	for _, t := range seen {
		key := ""
		g := make([]int64, 0, len(t)-1)
		for i, v := range t {
			if i == ci {
				continue
			}
			key += fmt.Sprintf("%d,", v)
			g = append(g, v)
		}
		groups[key] = g
		if counts[key] == nil {
			counts[key] = map[int64]bool{}
		}
		counts[key][t[ci]] = true
	}
	if len(q.Head) == 1 {
		// Global count: always a single row, zero when unsatisfiable.
		n := int64(0)
		if m, ok := counts[""]; ok {
			n = int64(len(m))
		}
		return [][]int64{{n}}, true
	}
	var out [][]int64
	for key, g := range groups {
		t := make([]int64, len(q.Head))
		gi := 0
		for i := range q.Head {
			if i == ci {
				t[i] = int64(len(counts[key]))
			} else {
				t[i] = g[gi]
				gi++
			}
		}
		out = append(out, t)
	}
	return out, true
}

// randomRelations builds a fresh random catalog.
func randomRelations(rng *rand.Rand) map[string]*relation.Relation {
	rels := map[string]*relation.Relation{}
	for _, name := range []string{"R", "S", "T", "U"} {
		n := rng.Intn(36)
		ps := make([]relation.Pair, n)
		for i := range ps {
			ps[i] = relation.Pair{X: int32(rng.Intn(13)), Y: int32(rng.Intn(13))}
		}
		rels[name] = relation.FromPairs(name, ps)
	}
	return rels
}

// randomAcyclicQuery generates a random acyclic query of 2–5 atoms: tree
// growth plus parallel atoms, constants, self-loops and occasional
// disconnected components, with a random head and random hints.
func randomAcyclicQuery(rng *rand.Rand) *Query {
	relNames := []string{"R", "S", "T", "U"}
	pick := func(ss []string) string { return ss[rng.Intn(len(ss))] }
	q := &Query{Name: "Q"}
	vars := []string{"v0"}
	newVar := func() string {
		v := fmt.Sprintf("v%d", len(vars))
		vars = append(vars, v)
		return v
	}
	type varPair struct{ u, w string }
	var treeEdges []varPair
	addEdge := func(u, w string) {
		if rng.Intn(2) == 0 {
			u, w = w, u
		}
		q.Atoms = append(q.Atoms, Atom{Rel: pick(relNames), Args: [2]Term{{Var: u}, {Var: w}}})
	}

	nAtoms := 2 + rng.Intn(4)
	for i := 0; i < nAtoms; i++ {
		r := rng.Float64()
		switch {
		case i == 0 || r < 0.55:
			u := pick(vars)
			w := newVar()
			treeEdges = append(treeEdges, varPair{u, w})
			addEdge(u, w)
		case r < 0.65 && len(treeEdges) > 0:
			// Parallel atom over an existing variable pair (merged by GYO).
			e := treeEdges[rng.Intn(len(treeEdges))]
			addEdge(e.u, e.w)
		case r < 0.75:
			// A fresh disconnected component (cross product / existence).
			u := newVar()
			w := newVar()
			treeEdges = append(treeEdges, varPair{u, w})
			addEdge(u, w)
		case r < 0.9:
			// Constant selection on an existing variable.
			u := pick(vars)
			c := Term{Value: int32(rng.Intn(13)), IsConst: true}
			args := [2]Term{{Var: u}, c}
			if rng.Intn(2) == 0 {
				args[0], args[1] = args[1], args[0]
			}
			q.Atoms = append(q.Atoms, Atom{Rel: pick(relNames), Args: args})
		default:
			u := pick(vars)
			q.Atoms = append(q.Atoms, Atom{Rel: pick(relNames), Args: [2]Term{{Var: u}, {Var: u}}})
		}
	}

	// Head: up to 3 distinct variables, sometimes a COUNT aggregate.
	perm := rng.Perm(len(vars))
	k := rng.Intn(4)
	if k > len(vars) {
		k = len(vars)
	}
	for _, vi := range perm[:k] {
		q.Head = append(q.Head, HeadTerm{Var: vars[vi]})
	}
	if rng.Float64() < 0.25 {
		h := HeadTerm{Var: pick(vars), Count: true}
		pos := 0
		if len(q.Head) > 0 {
			pos = rng.Intn(len(q.Head) + 1)
		}
		q.Head = append(q.Head[:pos], append([]HeadTerm{h}, q.Head[pos:]...)...)
	}

	// Hints: exercise every strategy path.
	if r := rng.Float64(); r < 0.4 {
		q.Hints.Strategy = []string{"auto", "mm", "wcoj", "nonmm"}[rng.Intn(4)]
	}
	if rng.Float64() < 0.25 {
		q.Hints.Workers = 1 + rng.Intn(3)
	}
	return q
}

func canonTuples(ts [][]int64) [][]int64 {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return ts
}

// cyclicShapes is the fixed cyclic-query corpus of the differential suite:
// triangles, longer cycles, chords, bowties, thetas, cliques and mixes with
// trees, constants, self-loops, aggregates and hints — ≥ 20 shapes covering
// both the binary GHD rewrite and the k-ary bag-tree fallback.
var cyclicShapes = []string{
	"Q(x, z) :- R(x, y), S(y, z), T(z, x)",                                      // triangle, endpoints
	"Q(x) :- R(x, y), S(y, z), T(z, x)",                                         // triangle, one head
	"Q() :- R(x, y), S(y, z), T(z, x)",                                          // boolean triangle
	"Q(x, y, z) :- R(x, y), S(y, z), T(z, x)",                                   // triangle, full head (k-ary bag)
	"Q(x, COUNT(z)) :- R(x, y), S(y, z), T(z, x)",                               // counting triangle
	"Q(z, x) :- R(x, y), S(y, z), T(x, z)",                                      // triangle, mixed orientation
	"Q(a, c) :- R(a, b), S(b, c), T(c, d), U(d, a)",                             // 4-cycle
	"Q(a) :- R(a, b), S(b, c), T(c, d), U(d, a)",                                // 4-cycle, one head
	"Q(a, b, c, d) :- R(a, b), S(b, c), T(c, d), U(d, a)",                       // 4-cycle, full head
	"Q(a, c) :- R(a, b), S(b, c), T(c, d), U(d, a), R(a, c)",                    // diamond (4-cycle + chord)
	"Q(a, c) :- R(a, b), S(b, c), T(c, d), U(d, e), R(e, a)",                    // 5-cycle
	"Q(a, d) :- R(a, b), S(b, c), T(c, d), U(d, e), R(e, f), S(f, a)",           // 6-cycle
	"Q(x, u) :- R(x, y), S(y, z), T(z, x), U(z, u), R(u, v), S(v, z)",           // bowtie, outer heads
	"Q(z) :- R(x, y), S(y, z), T(z, x), U(z, u), R(u, v), S(v, z)",              // bowtie, shared vertex
	"Q(a, b) :- R(a, x), S(x, b), T(a, y), U(y, b), R(a, z), S(z, b)",           // theta: three 2-paths a→b
	"Q(a, b, c, d) :- R(a, b), S(a, c), T(a, d), U(b, c), R(b, d), S(c, d)",     // K4, full head
	"Q(a, b) :- R(a, b), S(a, c), T(a, d), U(b, c), R(b, d), S(c, d)",           // K4, two heads
	"Q(h) :- R(h, a), S(h, b), T(h, c), U(a, b), R(b, c)",                       // hub + rim (wheel fragment)
	"Q(x, z) :- R(x, y), S(y, z), T(z, x), U(z, w)",                             // triangle + pendant tree edge
	"Q(x, w) :- R(x, y), S(y, z), T(z, x), U(z, w)",                             // triangle + pendant, head on tail
	"Q(x, z) :- R(x, y), S(y, z), T(z, x), R(x, 3)",                             // triangle + constant selection
	"Q(x, z) :- R(x, y), S(y, z), T(z, x), S(y, y)",                             // triangle + self-loop on cycle var
	"Q(x, z) :- R(x, y), S(y, z), T(z, x), U(x, z)",                             // triangle + parallel closing atom
	"Q(x, a) :- R(x, y), S(y, z), T(z, x), U(a, b)",                             // cyclic × acyclic cross product
	"Q(x, COUNT(a)) :- R(x, y), S(y, z), T(z, x), U(x, a)",                      // aggregate over cyclic + arm
	"Q(x, z) :- R(x, y), S(y, z), T(z, x) WITH strategy=wcoj",                   // strategy pin through bags
	"Q(a, c) :- R(a, b), S(b, c), T(c, d), U(d, a) WITH strategy=mm, workers=2", // pinned MM folds
}

// smallRelations builds a catalog small enough for the nested-loop oracle to
// finish the dense cyclic shapes (K4, theta) within its step budget.
func smallRelations(rng *rand.Rand) map[string]*relation.Relation {
	rels := map[string]*relation.Relation{}
	for _, name := range []string{"R", "S", "T", "U"} {
		n := 4 + rng.Intn(20)
		ps := make([]relation.Pair, n)
		for i := range ps {
			ps[i] = relation.Pair{X: int32(rng.Intn(9)), Y: int32(rng.Intn(9))}
		}
		rels[name] = relation.FromPairs(name, ps)
	}
	return rels
}

// TestDifferentialCyclicShapes runs every cyclic shape against several
// random catalogs and compares engine results with the nested-loop oracle.
func TestDifferentialCyclicShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(20260731))
	opt := optimizer.New()
	comparedBy := make([]int, len(cyclicShapes))
	for round := 0; round < 6; round++ {
		rels := smallRelations(rng)
		for si, src := range cyclicShapes {
			q, err := Parse(src)
			if err != nil {
				t.Fatalf("Parse(%q): %v", src, err)
			}
			want, ok := oracleEval(q, rels)
			if !ok {
				continue
			}
			p, err := Prepare(src, MapResolver(rels))
			if err != nil {
				t.Fatalf("round %d: Prepare(%q): %v", round, src, err)
			}
			execOpt := ExecOptions{Workers: 1}
			if si%2 == 0 {
				execOpt.Optimizer = opt
			}
			res, err := p.Execute(context.Background(), execOpt)
			if err != nil {
				t.Fatalf("round %d: Execute(%q): %v", round, src, err)
			}
			got, wantC := canonTuples(res.Tuples), canonTuples(want)
			if len(got) != 0 || len(wantC) != 0 {
				if !reflect.DeepEqual(got, wantC) {
					t.Fatalf("round %d: %q\nengine: %v\noracle: %v\nplan:\n%s", round, src, got, wantC, res.Plan)
				}
			}
			comparedBy[si]++
		}
	}
	for si, n := range comparedBy {
		if n == 0 {
			t.Errorf("shape %q never compared (oracle budget)", cyclicShapes[si])
		}
	}
}

// randomCyclicQuery closes a random acyclic query with 1–2 extra atoms
// between already-used variables, creating cycles of arbitrary shape.
func randomCyclicQuery(rng *rand.Rand) *Query {
	q := randomAcyclicQuery(rng)
	var vars []string
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		for _, term := range a.Args {
			if !term.IsConst && !seen[term.Var] {
				seen[term.Var] = true
				vars = append(vars, term.Var)
			}
		}
	}
	if len(vars) < 2 {
		return q
	}
	relNames := []string{"R", "S", "T", "U"}
	extra := 1 + rng.Intn(2)
	for i := 0; i < extra; i++ {
		u := vars[rng.Intn(len(vars))]
		w := vars[rng.Intn(len(vars))]
		if u == w {
			continue
		}
		q.Atoms = append(q.Atoms, Atom{
			Rel:  relNames[rng.Intn(len(relNames))],
			Args: [2]Term{{Var: u}, {Var: w}},
		})
	}
	return q
}

// TestDifferentialRandomCyclic fuzzes the decomposition path with randomly
// closed queries, compared against the oracle.
func TestDifferentialRandomCyclic(t *testing.T) {
	rng := rand.New(rand.NewSource(20260801))
	opt := optimizer.New()
	rels := smallRelations(rng)
	compared := 0
	for iter := 0; iter < 120; iter++ {
		if iter%20 == 19 {
			rels = smallRelations(rng)
		}
		q := randomCyclicQuery(rng)
		src := q.String()
		want, ok := oracleEval(q, rels)
		if !ok {
			continue
		}
		p, err := Prepare(src, MapResolver(rels))
		if err != nil {
			t.Fatalf("iter %d: Prepare(%q): %v", iter, src, err)
		}
		execOpt := ExecOptions{Workers: 1 + rng.Intn(2)}
		if rng.Intn(2) == 0 {
			execOpt.Optimizer = opt
		}
		res, err := p.Execute(context.Background(), execOpt)
		if err != nil {
			t.Fatalf("iter %d: Execute(%q): %v", iter, src, err)
		}
		got, wantC := canonTuples(res.Tuples), canonTuples(want)
		if len(got) == 0 && len(wantC) == 0 {
			compared++
			continue
		}
		if !reflect.DeepEqual(got, wantC) {
			t.Fatalf("iter %d: %q\nengine: %v\noracle: %v\nplan:\n%s", iter, src, got, wantC, res.Plan)
		}
		compared++
	}
	if compared < 60 {
		t.Fatalf("only %d cyclic queries compared; want ≥ 60", compared)
	}
	t.Logf("compared %d random cyclic queries against the oracle", compared)
}

// TestDifferentialVsBruteForce evaluates ≥100 random acyclic queries through
// the full text → parse → plan → execute pipeline and compares every result
// against the nested-loop oracle.
func TestDifferentialVsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(20260730))
	opt := optimizer.New()
	rels := randomRelations(rng)
	compared := 0
	for iter := 0; iter < 170; iter++ {
		if iter%25 == 24 {
			rels = randomRelations(rng)
		}
		q := randomAcyclicQuery(rng)
		src := q.String()

		want, ok := oracleEval(q, rels)
		if !ok {
			continue // oracle budget exceeded; rare
		}

		// Round-trip through text to exercise the parser too.
		p, err := Prepare(src, MapResolver(rels))
		if err != nil {
			t.Fatalf("iter %d: Prepare(%q): %v", iter, src, err)
		}
		execOpt := ExecOptions{Workers: 1 + rng.Intn(2)}
		if rng.Intn(2) == 0 {
			execOpt.Optimizer = opt
		}
		res, err := p.Execute(context.Background(), execOpt)
		if err != nil {
			t.Fatalf("iter %d: Execute(%q): %v", iter, src, err)
		}

		got := canonTuples(res.Tuples)
		wantC := canonTuples(want)
		if len(got) == 0 && len(wantC) == 0 {
			compared++
			continue
		}
		if !reflect.DeepEqual(got, wantC) {
			t.Fatalf("iter %d: %q\nengine: %v\noracle: %v\nplan:\n%s", iter, src, got, wantC, res.Plan)
		}
		compared++
	}
	if compared < 100 {
		t.Fatalf("only %d queries compared; want ≥ 100", compared)
	}
	t.Logf("compared %d random acyclic queries against the oracle", compared)
}
