package query

import (
	"fmt"
	"strings"
)

// Parse parses one rule of the query language into its AST. The grammar
// (keywords case-insensitive, see README.md):
//
//	query    = ident "(" [ headterm { "," headterm } ] ")" ":-"
//	           atom { "," atom } [ "WITH" hint { "," hint } ] [ "." | ";" ]
//	headterm = ident | "COUNT" "(" ident ")"
//	atom     = ident "(" term "," term ")"
//	term     = ident | number
//	hint     = "strategy" "=" ident | "workers" "=" number
//
// Beyond the grammar, Parse enforces the semantic invariants the planner
// relies on: at most one COUNT term, every head variable bound by the body,
// and well-formed hint values.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if err := validate(q); err != nil {
		return nil, err
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }

func (p *parser) next() token {
	t := p.toks[p.i]
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokKind) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("query: offset %d: expected %v, found %v", t.pos, k, describe(t))
	}
	return t, nil
}

func describe(t token) string {
	if t.kind == tokIdent || t.kind == tokNumber {
		return fmt.Sprintf("%v %q", t.kind, t.text)
	}
	return t.kind.String()
}

func (p *parser) parseQuery() (*Query, error) {
	q := &Query{}
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	q.Name = name.text
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	if p.peek().kind != tokRParen {
		for {
			h, err := p.parseHeadTerm()
			if err != nil {
				return nil, err
			}
			q.Head = append(q.Head, h)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokImplies); err != nil {
		return nil, err
	}
	for {
		a, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		q.Atoms = append(q.Atoms, a)
		if p.peek().kind != tokComma {
			break
		}
		p.next()
	}
	if t := p.peek(); t.kind == tokIdent && strings.EqualFold(t.text, "with") {
		p.next()
		if err := p.parseHints(&q.Hints); err != nil {
			return nil, err
		}
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("query: offset %d: unexpected %v after query", t.pos, describe(t))
	}
	return q, nil
}

func (p *parser) parseHeadTerm() (HeadTerm, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return HeadTerm{}, err
	}
	if strings.EqualFold(t.text, "count") && p.peek().kind == tokLParen {
		p.next()
		v, err := p.expect(tokIdent)
		if err != nil {
			return HeadTerm{}, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return HeadTerm{}, err
		}
		return HeadTerm{Var: v.text, Count: true}, nil
	}
	return HeadTerm{Var: t.text}, nil
}

func (p *parser) parseAtom() (Atom, error) {
	name, err := p.expect(tokIdent)
	if err != nil {
		return Atom{}, err
	}
	a := Atom{Rel: name.text}
	if _, err := p.expect(tokLParen); err != nil {
		return a, err
	}
	for k := 0; k < 2; k++ {
		if k == 1 {
			if _, err := p.expect(tokComma); err != nil {
				return a, err
			}
		}
		t := p.next()
		switch t.kind {
		case tokIdent:
			a.Args[k] = Term{Var: t.text}
		case tokNumber:
			a.Args[k] = Term{Value: int32(t.num), IsConst: true}
		default:
			return a, fmt.Errorf("query: offset %d: expected variable or constant, found %v", t.pos, describe(t))
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return a, err
	}
	return a, nil
}

func (p *parser) parseHints(h *Hints) error {
	for {
		key, err := p.expect(tokIdent)
		if err != nil {
			return err
		}
		if _, err := p.expect(tokEquals); err != nil {
			return err
		}
		switch strings.ToLower(key.text) {
		case "strategy":
			v, err := p.expect(tokIdent)
			if err != nil {
				return err
			}
			s := strings.ToLower(v.text)
			switch s {
			case "auto", "mm", "wcoj", "nonmm":
				h.Strategy = s
			default:
				return fmt.Errorf("query: offset %d: unknown strategy %q (want auto, mm, wcoj or nonmm)", v.pos, v.text)
			}
		case "workers":
			v, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			if v.num < 1 || v.num > 1<<16 {
				return fmt.Errorf("query: offset %d: workers=%d out of range", v.pos, v.num)
			}
			h.Workers = int(v.num)
		default:
			return fmt.Errorf("query: offset %d: unknown hint %q (want strategy or workers)", key.pos, key.text)
		}
		if p.peek().kind != tokComma {
			return nil
		}
		p.next()
	}
}

// validate enforces the semantic invariants of a parsed query.
func validate(q *Query) error {
	bound := map[string]bool{}
	for _, a := range q.Atoms {
		for _, t := range a.Args {
			if !t.IsConst {
				bound[t.Var] = true
			}
		}
	}
	counts := 0
	for _, h := range q.Head {
		if h.Count {
			counts++
			if counts > 1 {
				return fmt.Errorf("query: at most one COUNT aggregate is allowed in the head")
			}
		}
		if !bound[h.Var] {
			return fmt.Errorf("query: head variable %q is not bound by the body", h.Var)
		}
	}
	return nil
}
