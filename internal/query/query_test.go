package query

import (
	"context"
	"reflect"
	"sort"
	"strings"
	"testing"

	"repro/internal/optimizer"
	"repro/internal/relation"
)

func rel(t *testing.T, name string, pairs ...[2]int32) *relation.Relation {
	t.Helper()
	ps := make([]relation.Pair, len(pairs))
	for i, p := range pairs {
		ps[i] = relation.Pair{X: p[0], Y: p[1]}
	}
	return relation.FromPairs(name, ps)
}

func sortTuples(ts [][]int64) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

func evalText(t *testing.T, src string, rels map[string]*relation.Relation) *Result {
	t.Helper()
	p, err := Prepare(src, MapResolver(rels))
	if err != nil {
		t.Fatalf("Prepare(%q): %v", src, err)
	}
	res, err := p.Execute(context.Background(), ExecOptions{Workers: 1})
	if err != nil {
		t.Fatalf("Execute(%q): %v", src, err)
	}
	return res
}

func TestParseRoundTrip(t *testing.T) {
	for _, src := range []string{
		"Q(x, z) :- R(x, y), S(y, z)",
		"Q(x, COUNT(z)) :- R(x, y), S(y, z) WITH strategy=mm, workers=4",
		"Q() :- R(1, 2)",
		"Path(a, d) :- R(a, b), R(b, c), R(c, d) WITH strategy=wcoj",
		"Q(x) :- R(x, -7)",
	} {
		q, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse(%q → %q): %v", src, q.String(), err)
		}
		if q.String() != q2.String() {
			t.Fatalf("round trip mismatch: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"",
		"Q(x)",
		"Q(x) :- ",
		"Q(x) :- R(x)",           // unary atom
		"Q(x) :- R(x, y, z)",     // ternary atom
		"Q(w) :- R(x, y)",        // unbound head var
		"Q(COUNT(w)) :- R(x, y)", // unbound count var
		"Q(COUNT(x), COUNT(y)) :- R(x, y)",
		"Q(x) :- R(x, y) WITH strategy=fast",
		"Q(x) :- R(x, y) WITH foo=1",
		"Q(x) :- R(x, y) extra",
		"Q(x) :- R(x, 99999999999)",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q): expected error", src)
		}
	}
}

// TestCyclicAccepted pins the PR-3 behavior change: cyclic queries used to
// be rejected at compile time ("cyclic query — ... GYO reduction fails");
// they now compile via hypertree decomposition and EXPLAIN shows the bag
// plan.
func TestCyclicAccepted(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 2}, [2]int32{2, 3}, [2]int32{3, 1}),
	}
	p, err := Prepare("Q(x) :- R(x, y), R(y, z), R(z, x)", MapResolver(rels))
	if err != nil {
		t.Fatalf("cyclic query must compile now, got %v", err)
	}
	plan := p.Explain(ExecOptions{})
	if !strings.Contains(plan.String(), "bag") || !strings.Contains(plan.String(), "ghd") {
		t.Fatalf("EXPLAIN of a cyclic query must show the GHD bag plan:\n%s", plan)
	}
	res, err := p.Execute(context.Background(), ExecOptions{})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	sortTuples(res.Tuples)
	want := [][]int64{{1}, {2}, {3}}
	if !reflect.DeepEqual(res.Tuples, want) {
		t.Fatalf("triangle Q(x) = %v; want %v\nplan:\n%s", res.Tuples, want, res.Plan)
	}
}

func TestTwoPathQuery(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{1, 11}, [2]int32{2, 10}),
		"S": rel(t, "S", [2]int32{10, 5}, [2]int32{11, 5}, [2]int32{10, 6}),
	}
	res := evalText(t, "Q(x, z) :- R(x, y), S(y, z)", rels)
	sortTuples(res.Tuples)
	want := [][]int64{{1, 5}, {1, 6}, {2, 5}, {2, 6}}
	if len(res.Tuples) != len(want) {
		t.Fatalf("got %v want %v\nplan:\n%s", res.Tuples, want, res.Plan)
	}
	for i := range want {
		if res.Tuples[i][0] != want[i][0] || res.Tuples[i][1] != want[i][1] {
			t.Fatalf("got %v want %v", res.Tuples, want)
		}
	}
}

func TestPathWithBranchAndConst(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{2, 20}),
		"S": rel(t, "S", [2]int32{10, 5}, [2]int32{20, 6}),
		"T": rel(t, "T", [2]int32{5, 100}),
	}
	// T(z, w) is a non-head branch: it filters z to 5.
	res := evalText(t, "Q(x, z) :- R(x, y), S(y, z), T(z, w)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 1 || res.Tuples[0][1] != 5 {
		t.Fatalf("got %v, want [[1 5]]\nplan:\n%s", res.Tuples, res.Plan)
	}
	// Constant selection.
	res = evalText(t, "Q(x) :- R(x, 20)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 2 {
		t.Fatalf("got %v, want [[2]]", res.Tuples)
	}
}

func TestStarQuery(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 7}, [2]int32{2, 7}, [2]int32{3, 8}),
		"S": rel(t, "S", [2]int32{4, 7}, [2]int32{5, 8}),
		"T": rel(t, "T", [2]int32{6, 7}),
	}
	// Star: center y, three head leaves.
	res := evalText(t, "Q(a, b, c) :- R(a, y), S(b, y), T(c, y)", rels)
	sortTuples(res.Tuples)
	want := [][]int64{{1, 4, 6}, {2, 4, 6}}
	if len(res.Tuples) != 2 {
		t.Fatalf("got %v want %v\nplan:\n%s", res.Tuples, want, res.Plan)
	}
	for i := range want {
		for k := range want[i] {
			if res.Tuples[i][k] != want[i][k] {
				t.Fatalf("got %v want %v", res.Tuples, want)
			}
		}
	}
	if !strings.Contains(res.Plan.String(), "star") {
		t.Fatalf("expected star node in plan:\n%s", res.Plan)
	}
}

// TestCountPushdown checks that the (g, COUNT(v)) head runs the aggregate
// inside the final fold (the groupfold operator) instead of materializing
// the distinct pairs, on the shapes where the push-down applies, and that a
// non-pushable head still takes the generic path.
func TestCountPushdown(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{1, 11}, [2]int32{2, 10}),
		"S": rel(t, "S", [2]int32{10, 5}, [2]int32{11, 5}, [2]int32{10, 6}),
		"T": rel(t, "T", [2]int32{5, 7}, [2]int32{6, 7}, [2]int32{6, 8}),
	}
	cases := []struct {
		src  string
		want [][]int64
	}{
		// Two-path: the canonical weighted fold.
		{"Q(x, COUNT(z)) :- R(x, y), S(y, z)", [][]int64{{1, 2}, {2, 2}}},
		// COUNT column first.
		{"Q(COUNT(z), x) :- R(x, y), S(y, z)", [][]int64{{2, 1}, {2, 2}}},
		// Chain of three: the last fold groups.
		{"Q(x, COUNT(w)) :- R(x, y), S(y, z), T(z, w)", [][]int64{{1, 2}, {2, 2}}},
		// Single atom: grouped straight off the index degrees.
		{"Q(x, COUNT(y)) :- R(x, y)", [][]int64{{1, 2}, {2, 1}}},
	}
	for _, tc := range cases {
		p, err := Prepare(tc.src, MapResolver(rels))
		if err != nil {
			t.Fatalf("Prepare(%q): %v", tc.src, err)
		}
		res, err := p.Execute(context.Background(), ExecOptions{Workers: 1})
		if err != nil {
			t.Fatalf("Execute(%q): %v", tc.src, err)
		}
		sortTuples(res.Tuples)
		if !reflect.DeepEqual(res.Tuples, tc.want) {
			t.Fatalf("%q = %v; want %v\nplan:\n%s", tc.src, res.Tuples, tc.want, res.Plan)
		}
		if !strings.Contains(res.Plan.String(), "groupfold") {
			t.Fatalf("%q should push the count into the fold:\n%s", tc.src, res.Plan)
		}
		// The predicted plan shows the push-down too.
		if dry := p.Explain(ExecOptions{Workers: 1}); !strings.Contains(dry.String(), "groupfold") {
			t.Fatalf("EXPLAIN of %q should predict groupfold:\n%s", tc.src, dry)
		}
	}
	// Three head terms: grouping must stay in the generic aggregate.
	res := evalText(t, "Q(x, z, COUNT(w)) :- R(x, y), S(y, z), T(z, w)", rels)
	if strings.Contains(res.Plan.String(), "groupfold") {
		t.Fatalf("three-term head must not push down:\n%s", res.Plan)
	}
}

func TestCountAggregate(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{1, 11}, [2]int32{2, 10}),
		"S": rel(t, "S", [2]int32{10, 5}, [2]int32{11, 6}, [2]int32{10, 6}),
	}
	res := evalText(t, "Q(x, COUNT(z)) :- R(x, y), S(y, z)", rels)
	sortTuples(res.Tuples)
	// x=1 reaches z ∈ {5,6}; x=2 reaches z ∈ {5,6}.
	want := [][]int64{{1, 2}, {2, 2}}
	for i := range want {
		if res.Tuples[i][0] != want[i][0] || res.Tuples[i][1] != want[i][1] {
			t.Fatalf("got %v want %v", res.Tuples, want)
		}
	}
	// Global count.
	res = evalText(t, "Q(COUNT(z)) :- R(x, y), S(y, z)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 2 {
		t.Fatalf("global count: got %v want [[2]]", res.Tuples)
	}
	// Unsatisfiable global count still yields a single zero row.
	res = evalText(t, "Q(COUNT(z)) :- R(x, y), S(y, z), R(9, 9)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 0 {
		t.Fatalf("empty global count: got %v want [[0]]", res.Tuples)
	}
}

func TestBooleanAndCross(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 2}),
		"S": rel(t, "S", [2]int32{3, 4}),
	}
	res := evalText(t, "Q() :- R(1, 2)", rels)
	if len(res.Tuples) != 1 || len(res.Tuples[0]) != 0 {
		t.Fatalf("boolean true: got %v", res.Tuples)
	}
	res = evalText(t, "Q() :- R(2, 1)", rels)
	if len(res.Tuples) != 0 {
		t.Fatalf("boolean false: got %v", res.Tuples)
	}
	// Cross product across disconnected components.
	res = evalText(t, "Q(a, b) :- R(a, x), S(b, y)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 1 || res.Tuples[0][1] != 3 {
		t.Fatalf("cross: got %v", res.Tuples)
	}
}

func TestSelfJoinAndParallelAtoms(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 1}, [2]int32{1, 2}, [2]int32{2, 3}),
		"S": rel(t, "S", [2]int32{1, 2}, [2]int32{9, 9}),
	}
	// Self-loop atom: unary constraint x = values with R(x,x).
	res := evalText(t, "Q(x) :- R(x, x)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 1 {
		t.Fatalf("self loop: got %v", res.Tuples)
	}
	// Parallel atoms merge by intersection: R(x,y) ∧ S(x,y).
	res = evalText(t, "Q(x, y) :- R(x, y), S(x, y)", rels)
	if len(res.Tuples) != 1 || res.Tuples[0][0] != 1 || res.Tuples[0][1] != 2 {
		t.Fatalf("parallel atoms: got %v", res.Tuples)
	}
}

func TestStrategyHintsHonored(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{1, 11}, [2]int32{2, 10}),
		"S": rel(t, "S", [2]int32{10, 5}, [2]int32{11, 5}),
	}
	for _, strat := range []string{"mm", "wcoj", "nonmm"} {
		res := evalText(t, "Q(x, z) :- R(x, y), S(y, z) WITH strategy="+strat, rels)
		if len(res.Tuples) != 2 {
			t.Fatalf("strategy %s: got %v", strat, res.Tuples)
		}
		if !strings.Contains(res.Plan.String(), "strategy="+strat) {
			t.Fatalf("strategy %s not reported in plan:\n%s", strat, res.Plan)
		}
	}
}

func TestExplainReportsChoices(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{1, 11}, [2]int32{2, 10}),
		"S": rel(t, "S", [2]int32{10, 5}, [2]int32{11, 5}),
		"T": rel(t, "T", [2]int32{5, 3}),
	}
	p, err := Prepare("Q(x, w) :- R(x, y), S(y, z), T(z, w)", MapResolver(rels))
	if err != nil {
		t.Fatal(err)
	}
	plan := p.Explain(ExecOptions{Optimizer: optimizer.New(), Workers: 1})
	if !plan.Predicted {
		t.Fatal("Explain plan should be predicted")
	}
	s := plan.String()
	if !strings.Contains(s, "fold") || !strings.Contains(s, "strategy=") {
		t.Fatalf("explain should report per-node strategies:\n%s", s)
	}
	// Executing yields concrete strategies on every fold node.
	res, err := p.Execute(context.Background(), ExecOptions{Optimizer: optimizer.New(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Plan.Strategies() {
		if strings.HasSuffix(st, "=auto") {
			t.Fatalf("executed plan has unresolved strategy %s:\n%s", st, res.Plan)
		}
	}
}

func TestPlanDeterminism(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{2, 11}),
		"S": rel(t, "S", [2]int32{10, 20}, [2]int32{11, 21}),
		"T": rel(t, "T", [2]int32{20, 30}, [2]int32{21, 31}),
		"U": rel(t, "U", [2]int32{30, 40}, [2]int32{31, 41}),
	}
	src := "Q(a, e) :- R(a, b), S(b, c), T(c, d), U(d, e)"
	p, err := Prepare(src, MapResolver(rels))
	if err != nil {
		t.Fatal(err)
	}
	var first string
	for i := 0; i < 10; i++ {
		res, err := p.Execute(context.Background(), ExecOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Plan.String()
		} else if got := res.Plan.String(); got != first {
			t.Fatalf("plan changed between runs:\n%s\nvs\n%s", first, got)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	rels := map[string]*relation.Relation{
		"R": rel(t, "R", [2]int32{1, 10}, [2]int32{10, 5}),
	}
	p, err := Prepare("Q(a, c) :- R(a, b), R(b, c)", MapResolver(rels))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Execute(ctx, ExecOptions{Workers: 1}); err == nil {
		t.Fatal("expected context error")
	}
}
