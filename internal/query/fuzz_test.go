package query

import "testing"

// FuzzParse checks that the parser never panics on arbitrary input and that
// accepted queries round-trip: Parse → String → Parse yields the same
// canonical form. `go test` runs the seed corpus; `go test -fuzz=FuzzParse`
// explores further.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"Q(x, z) :- R(x, y), S(y, z)",
		"Q(x, COUNT(z)) :- R(x, y), S(y, z) WITH strategy=mm, workers=4",
		"Q() :- R(1, 2).",
		"Q(a, b, c) :- R(a, y), S(b, y), T(c, y);",
		"Path(a, d) :- E(a, b), E(b, c), E(c, d) WITH strategy=wcoj",
		"Q(x) :- R(x, -7), R(x, x)",
		"q(_x1) :- _r(_x1, 0)",
		"Q(count) :- R(count, y)",
		"Q(x):-R(x,y)WITH workers=1",
		"Q(x, z) :- R(x, y), S(z, y), T(y, 12345)",
		"Q(x :- R(x, y)",
		"COUNT(COUNT) :- COUNT(COUNT, COUNT)",
		":- (((",
		"Q(x) :- R(x, 99999999999999999999)",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return // rejected input: only requirement is no panic
		}
		canon := q.String()
		q2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form %q of %q does not reparse: %v", canon, src, err)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("round trip not stable: %q → %q → %q", src, canon, got)
		}
	})
}
