package joinproject

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/wcoj"
)

func rel(name string, ps ...[2]int32) *relation.Relation {
	pairs := make([]relation.Pair, len(ps))
	for i, p := range ps {
		pairs[i] = relation.Pair{X: p[0], Y: p[1]}
	}
	return relation.FromPairs(name, pairs)
}

func randomRel(rng *rand.Rand, name string, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		ps[i] = relation.Pair{X: int32(rng.Intn(xdom)), Y: int32(rng.Intn(ydom))}
	}
	return relation.FromPairs(name, ps)
}

// skewedRel produces Zipf-ish degree skew so both light and heavy paths of
// Algorithm 1 are exercised.
func skewedRel(rng *rand.Rand, name string, n, xdom, ydom int) *relation.Relation {
	ps := make([]relation.Pair, n)
	for i := range ps {
		x := int32(rng.Intn(xdom))
		if rng.Intn(3) == 0 {
			x = int32(rng.Intn(3)) // a few very heavy x values
		}
		y := int32(rng.Intn(ydom))
		if rng.Intn(3) == 0 {
			y = int32(rng.Intn(3)) // a few very heavy y values
		}
		ps[i] = relation.Pair{X: x, Y: y}
	}
	return relation.FromPairs(name, ps)
}

func pairsToMap(ps [][2]int32) map[[2]int32]bool {
	m := make(map[[2]int32]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func countsToMap(pc []PairCount) map[[2]int32]int32 {
	m := make(map[[2]int32]int32, len(pc))
	for _, p := range pc {
		m[[2]int32{p.X, p.Z}] += p.Count
	}
	return m
}

func bruteCounts(r, s *relation.Relation) map[[2]int32]int32 {
	out := map[[2]int32]int32{}
	for _, rp := range r.Pairs() {
		for _, sp := range s.Pairs() {
			if rp.Y == sp.Y {
				out[[2]int32{rp.X, sp.X}]++
			}
		}
	}
	return out
}

func checkPairsEqual(t *testing.T, got [][2]int32, want map[[2]int32]int32, label string) {
	t.Helper()
	gm := pairsToMap(got)
	if len(gm) != len(got) {
		t.Fatalf("%s: output contains duplicates (%d pairs, %d distinct)", label, len(got), len(gm))
	}
	if len(gm) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(gm), len(want))
	}
	for p := range want {
		if !gm[p] {
			t.Fatalf("%s: missing pair %v", label, p)
		}
	}
}

func checkCountsEqual(t *testing.T, got []PairCount, want map[[2]int32]int32, label string) {
	t.Helper()
	gm := countsToMap(got)
	if len(gm) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(gm), len(want))
	}
	seen := map[[2]int32]bool{}
	for _, p := range got {
		key := [2]int32{p.X, p.Z}
		if seen[key] {
			t.Fatalf("%s: pair %v emitted twice", label, key)
		}
		seen[key] = true
	}
	for p, c := range want {
		if gm[p] != c {
			t.Fatalf("%s: pair %v count = %d, want %d", label, p, gm[p], c)
		}
	}
}

func TestTwoPathSmall(t *testing.T) {
	r := rel("R", [2]int32{1, 10}, [2]int32{2, 10}, [2]int32{3, 11})
	s := rel("S", [2]int32{5, 10}, [2]int32{6, 11}, [2]int32{6, 12})
	want := bruteCounts(r, s)
	checkPairsEqual(t, TwoPathMM(r, s, Options{Delta1: 1, Delta2: 1}), want, "MM d=1")
	checkPairsEqual(t, TwoPathMM(r, s, Options{Delta1: 100, Delta2: 100}), want, "MM all-light")
	checkCountsEqual(t, TwoPathMMCounts(r, s, Options{Delta1: 1, Delta2: 1}), want, "MM counts")
}

func TestTwoPathAcrossThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	r := skewedRel(rng, "R", 400, 40, 30)
	s := skewedRel(rng, "S", 400, 40, 30)
	want := bruteCounts(r, s)
	for _, d1 := range []int{1, 2, 5, 50, 1000} {
		for _, d2 := range []int{1, 3, 10, 1000} {
			opt := Options{Delta1: d1, Delta2: d2, Workers: 1}
			checkPairsEqual(t, TwoPathMM(r, s, opt), want, "MM")
			checkCountsEqual(t, TwoPathMMCounts(r, s, opt), want, "MMCounts")
			checkPairsEqual(t, TwoPathNonMM(r, s, opt), want, "NonMM")
			checkCountsEqual(t, TwoPathNonMMCounts(r, s, opt), want, "NonMMCounts")
		}
	}
}

func TestTwoPathParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	r := skewedRel(rng, "R", 1500, 120, 60)
	s := skewedRel(rng, "S", 1500, 120, 60)
	want := bruteCounts(r, s)
	for _, w := range []int{1, 2, 4, 9} {
		opt := Options{Delta1: 3, Delta2: 4, Workers: w}
		checkPairsEqual(t, TwoPathMM(r, s, opt), want, "MM parallel")
		checkCountsEqual(t, TwoPathMMCounts(r, s, opt), want, "MMCounts parallel")
	}
}

func TestTwoPathSelfJoin(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := skewedRel(rng, "R", 600, 50, 25)
	want := bruteCounts(r, r)
	checkCountsEqual(t, TwoPathMMCounts(r, r, Options{Delta1: 2, Delta2: 3}), want, "self join")
}

func TestTwoPathDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	r := skewedRel(rng, "R", 500, 60, 30)
	s := skewedRel(rng, "S", 500, 60, 30)
	want := bruteCounts(r, s)
	// Zero options select heuristic thresholds; result must be unchanged.
	checkPairsEqual(t, TwoPathMM(r, s, Options{}), want, "default thresholds")
	if got := TwoPathSize(r, s, Options{}); got != int64(len(want)) {
		t.Fatalf("TwoPathSize = %d, want %d", got, len(want))
	}
}

func TestTwoPathEmptyAndDisjoint(t *testing.T) {
	empty := rel("E")
	r := rel("R", [2]int32{1, 1})
	if got := TwoPathMM(empty, r, Options{Delta1: 1, Delta2: 1}); len(got) != 0 {
		t.Fatalf("join with empty = %v", got)
	}
	disjoint := rel("D", [2]int32{9, 99})
	if got := TwoPathMM(r, disjoint, Options{Delta1: 1, Delta2: 1}); len(got) != 0 {
		t.Fatalf("disjoint join = %v", got)
	}
}

func TestTwoPathVisitCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	r := skewedRel(rng, "R", 300, 30, 20)
	s := skewedRel(rng, "S", 300, 30, 20)
	want := bruteCounts(r, s)
	got := map[[2]int32]int32{}
	TwoPathMMVisit(r, s, Options{Delta1: 2, Delta2: 2, Workers: 1}, func(x, z, n int32) {
		got[[2]int32{x, z}] += n
	})
	if len(got) != len(want) {
		t.Fatalf("visit saw %d pairs, want %d", len(got), len(want))
	}
	for p, c := range want {
		if got[p] != c {
			t.Fatalf("pair %v count = %d, want %d", p, got[p], c)
		}
	}
}

// TestPaperExample2 reconstructs the matrix step of Example 2: with all
// values heavy, the witness counts must match the matrix product M given in
// the paper: M = [[1,2,1],[2,3,2],[2,2,3]] over x,z ∈ {4,5,6}.
func TestPaperExample2(t *testing.T) {
	// M1 (x rows 4..6 over y cols 4..6) and M2 (y rows 4..6 over z cols 4..6)
	// from the paper.
	r := rel("R",
		[2]int32{4, 4}, [2]int32{4, 6},
		[2]int32{5, 4}, [2]int32{5, 5}, [2]int32{5, 6},
		[2]int32{6, 4}, [2]int32{6, 5},
	)
	s := rel("S", // S(z,y) such that M2[y][z] = 1
		[2]int32{4, 4}, [2]int32{5, 4},
		[2]int32{4, 5}, [2]int32{5, 5}, [2]int32{6, 5},
		[2]int32{5, 6}, [2]int32{6, 6},
	)
	// Note: the paper prints M[6][6] = 3, but row x=6 of M1 is (1,1,0) and
	// column z=6 of M2 is (0,1,1), whose dot product is 1 — a typo in the
	// paper's figure. Every other entry matches the printed M.
	wantM := map[[2]int32]int32{
		{4, 4}: 1, {4, 5}: 2, {4, 6}: 1,
		{5, 4}: 2, {5, 5}: 3, {5, 6}: 2,
		{6, 4}: 2, {6, 5}: 2, {6, 6}: 1,
	}
	// Δ1 = Δ2 = 1 makes every value heavy (all degrees ≥ 2), so the entire
	// result flows through the matrix product.
	checkCountsEqual(t, TwoPathMMCounts(r, s, Options{Delta1: 1, Delta2: 1}), wantM, "example 2 heavy")
	// The result must be threshold-invariant: all-light evaluation agrees.
	checkCountsEqual(t, TwoPathMMCounts(r, s, Options{Delta1: 99, Delta2: 99}), wantM, "example 2 light")
}

func TestAgainstWCOJOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	r := skewedRel(rng, "R", 800, 70, 40)
	s := skewedRel(rng, "S", 800, 70, 40)
	oracle := wcoj.Project2PathCounts(r, s)
	got := countsToMap(TwoPathMMCounts(r, s, Options{Delta1: 4, Delta2: 4}))
	if len(got) != len(oracle) {
		t.Fatalf("MM %d pairs, WCOJ oracle %d", len(got), len(oracle))
	}
	for p, c := range oracle {
		if got[p] != c {
			t.Fatalf("pair %v: MM count %d, oracle %d", p, got[p], c)
		}
	}
}

func TestEstimateOutputSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	for trial := 0; trial < 20; trial++ {
		r := skewedRel(rng, "R", 200+rng.Intn(400), 10+rng.Intn(80), 10+rng.Intn(40))
		s := skewedRel(rng, "S", 200+rng.Intn(400), 10+rng.Intn(80), 10+rng.Intn(40))
		est := EstimateOutputSize(r, s)
		outJoin := relation.FullJoinSize(r, s)
		if outJoin == 0 {
			if est != 0 {
				t.Fatalf("estimate %d for empty join", est)
			}
			continue
		}
		if est < 1 || est > outJoin {
			t.Fatalf("estimate %d outside (0, |OUT⋈|=%d]", est, outJoin)
		}
		upper := int64(r.NumX()) * int64(s.NumX())
		if est > upper {
			t.Fatalf("estimate %d above domain product %d", est, upper)
		}
	}
}

func TestHeuristicThresholdsFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	for trial := 0; trial < 20; trial++ {
		r := skewedRel(rng, "R", 100+rng.Intn(900), 5+rng.Intn(100), 5+rng.Intn(50))
		s := skewedRel(rng, "S", 100+rng.Intn(900), 5+rng.Intn(100), 5+rng.Intn(50))
		d1, d2 := HeuristicThresholds(r, s)
		n := r.Size()
		if s.Size() > n {
			n = s.Size()
		}
		if d1 < 1 || d2 < 1 || d1 > n || d2 > n {
			t.Fatalf("thresholds (%d, %d) out of [1, %d]", d1, d2, n)
		}
	}
	if d1, d2 := HeuristicThresholds(rel("E"), rel("E")); d1 != 1 || d2 != 1 {
		t.Fatalf("empty thresholds = (%d, %d), want (1, 1)", d1, d2)
	}
}

// Property: MM and NonMM agree with brute force for arbitrary random
// instances and thresholds.
func TestQuickTwoPathMatchesBrute(t *testing.T) {
	f := func(seed int64, d1raw, d2raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := skewedRel(rng, "R", 1+rng.Intn(250), 1+rng.Intn(40), 1+rng.Intn(25))
		s := skewedRel(rng, "S", 1+rng.Intn(250), 1+rng.Intn(40), 1+rng.Intn(25))
		opt := Options{Delta1: 1 + int(d1raw%16), Delta2: 1 + int(d2raw%16), Workers: 2}
		want := bruteCounts(r, s)
		if gm := countsToMap(TwoPathMMCounts(r, s, opt)); len(gm) != len(want) {
			return false
		} else {
			for p, c := range want {
				if gm[p] != c {
					return false
				}
			}
		}
		gm := countsToMap(TwoPathNonMMCounts(r, s, opt))
		if len(gm) != len(want) {
			return false
		}
		for p, c := range want {
			if gm[p] != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// The partition property behind Algorithm 1: with any thresholds, the four
// witness categories both cover and never double count. Verified indirectly
// by exact counts above; here we additionally check that heavy-only
// instances route through the matrix (output still correct when every value
// is heavy).
func TestAllHeavyInstance(t *testing.T) {
	// Complete bipartite K5,5 on both sides: every degree is 5.
	var ps [][2]int32
	for x := int32(0); x < 5; x++ {
		for y := int32(0); y < 5; y++ {
			ps = append(ps, [2]int32{x, y})
		}
	}
	r := rel("R", ps...)
	want := bruteCounts(r, r)
	got := countsToMap(TwoPathMMCounts(r, r, Options{Delta1: 1, Delta2: 1}))
	if len(got) != 25 {
		t.Fatalf("K5,5 self join: %d pairs, want 25", len(got))
	}
	for p, c := range want {
		if got[p] != c || c != 5 {
			t.Fatalf("pair %v count = %d, want 5", p, got[p])
		}
	}
}

func sortPairs(ps [][2]int32) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i][0] != ps[j][0] {
			return ps[i][0] < ps[j][0]
		}
		return ps[i][1] < ps[j][1]
	})
}

func TestDedupModes(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	r := skewedRel(rng, "R", 900, 90, 45)
	s := skewedRel(rng, "S", 900, 90, 45)
	want := bruteCounts(r, s)
	for _, mode := range []DedupMode{DedupAuto, DedupStamp, DedupSort} {
		opt := Options{Delta1: 3, Delta2: 4, Workers: 2, Dedup: mode}
		checkPairsEqual(t, TwoPathMM(r, s, opt), want, "dedup mode")
		if got := TwoPathSize(r, s, opt); got != int64(len(want)) {
			t.Fatalf("mode %d: size %d, want %d", mode, got, len(want))
		}
	}
}

func TestDeterministicOutputSetAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	r := skewedRel(rng, "R", 700, 80, 35)
	s := skewedRel(rng, "S", 700, 80, 35)
	base := TwoPathMM(r, s, Options{Delta1: 3, Delta2: 3, Workers: 1})
	sortPairs(base)
	for _, w := range []int{2, 5} {
		got := TwoPathMM(r, s, Options{Delta1: 3, Delta2: 3, Workers: w})
		sortPairs(got)
		if len(got) != len(base) {
			t.Fatalf("workers=%d: %d pairs, want %d", w, len(got), len(base))
		}
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: pair %d = %v, want %v", w, i, got[i], base[i])
			}
		}
	}
}
