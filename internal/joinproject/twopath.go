// Package joinproject implements the paper's primary contribution: output-
// sensitive evaluation of star join queries with projection, combining
// worst-case optimal join processing for low-degree ("light") values with
// matrix multiplication for high-degree ("heavy") values.
//
// The 2-path query ÜQ(x,z) = R(x,y), S(z,y) is evaluated by Algorithm 1 of
// the paper: relations are partitioned by the degree thresholds Δ1 (on the
// join variable y) and Δ2 (on the projected variables x and z); tuples with
// a light value are processed by an indexed join with constant-time
// deduplication, and the residual all-heavy subrelations are multiplied as
// bit-packed adjacency matrices. The star query Q★k generalizes this with a
// three-way partition per relation and grouped rectangular matrices
// (Section 3.2). The combinatorial variants of both (no matrix
// multiplication, Lemma 2) are implemented alongside as the paper's
// Non-MMJoin baseline.
package joinproject

import (
	"slices"
	"sync"
	"sync/atomic"

	"repro/internal/bitset"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/relation"
)

// DedupMode selects the light-part deduplication strategy of Section 6.
type DedupMode int

const (
	// DedupAuto picks DedupStamp for compact z-domains and DedupSort when
	// the stamp vector would not fit caches comfortably — "the best of the
	// two strategies, depending on the number of elements that need to be
	// deduplicated and the domain size".
	DedupAuto DedupMode = iota
	// DedupStamp uses the reusable per-x dedup vector over dom(z) (the
	// paper's code snippet), with an epoch trick instead of clearing.
	DedupStamp
	// DedupSort appends all reachable z values and sorts+uniques per x.
	DedupSort
)

// Options configures a join-project evaluation.
type Options struct {
	// Delta1 is the degree threshold on the join variable y; Delta2 is the
	// threshold on the projected variables. Values ≤ 0 select the paper's
	// closed-form thresholds (Section 3.1) from the output-size estimate.
	Delta1, Delta2 int
	// Workers bounds the parallelism; ≤ 0 uses all cores.
	Workers int
	// Dedup selects the light-part deduplication strategy.
	Dedup DedupMode
	// Stop, when non-nil, is polled at block boundaries of the evaluation
	// loops and inside the matrix kernels; a true return abandons the
	// remaining work (the output is then incomplete). Callers wire a
	// context-cancellation check here so a deadline interrupts a
	// long-running join instead of waiting out the full sweep.
	Stop func() bool
}

// PairCount is one projected output pair together with its witness count
// |{y : (X,y) ∈ R ∧ (Z,y) ∈ S}|.
type PairCount struct {
	X, Z  int32
	Count int32
}

// normalize fills in default thresholds.
func (o Options) normalize(r, s *relation.Relation) Options {
	if o.Delta1 <= 0 || o.Delta2 <= 0 {
		d1, d2 := HeuristicThresholds(r, s)
		if o.Delta1 <= 0 {
			o.Delta1 = d1
		}
		if o.Delta2 <= 0 {
			o.Delta2 = d2
		}
	}
	return o
}

// twoPathCtx holds the degree partition and the positional indexes the
// 2-path evaluation needs. Building it is the O(N log N) preprocessing pass.
type twoPathCtx struct {
	r, s   *relation.Relation
	d1, d2 int
	stop   func() bool // polled at block boundaries; nil = never stop

	sX, sY   *relation.Index
	zvals    []int32   // sX keys, ascending
	zDeg     []int32   // degree of each z position
	posByY   [][]int32 // per sY position: z positions (ascending)
	lightByY [][]int32 // per sY position, heavy y only: light z positions

	colOf []int32 // per sY position: heavy column id or -1
	ncols int

	heavyZPos []int32 // matrix row id → z position
	zRows     *matrix.BitMatrix

	rX        *relation.Index
	rYPos     [][]int32 // per rX position: sY positions of its y list (-1 if absent from S)
	numHeavyA int
}

func newTwoPathCtx(r, s *relation.Relation, d1, d2 int) *twoPathCtx {
	return newTwoPathCtxParallel(r, s, d1, d2, 1, nil)
}

// newTwoPathCtxParallel builds the positional indexes with the given degree
// of parallelism; construction is a per-key-independent transform, so it
// partitions coordination-free like the join itself. stop is polled between
// construction phases: preprocessing is O(N log N) and would otherwise be
// the one stretch a cancellation cannot interrupt. An early return leaves
// the context partially built, which is safe because the evaluation loops
// re-check stop before touching any of it.
func newTwoPathCtxParallel(r, s *relation.Relation, d1, d2, workers int, stop func() bool) *twoPathCtx {
	c := &twoPathCtx{r: r, s: s, d1: d1, d2: d2, stop: stop, sX: s.ByX(), sY: s.ByY(), rX: r.ByX()}
	halt := func() bool { return stop != nil && stop() }
	// rYPos must exist for the evaluation loops even on an abandoned build.
	c.rYPos = make([][]int32, c.rX.NumKeys())
	if halt() {
		return c
	}
	c.zvals = c.sX.Keys()
	c.zDeg = make([]int32, c.sX.NumKeys())
	for i := range c.zDeg {
		c.zDeg[i] = int32(c.sX.Degree(i))
	}
	if halt() {
		return c
	}

	// Heavy y columns: degree in S above Δ1.
	ny := c.sY.NumKeys()
	c.colOf = make([]int32, ny)
	for i := 0; i < ny; i++ {
		if c.sY.Degree(i) > d1 {
			c.colOf[i] = int32(c.ncols)
			c.ncols++
		} else {
			c.colOf[i] = -1
		}
	}

	// Positional z lists per y, plus the light-z sublists under heavy ys.
	c.posByY = make([][]int32, ny)
	c.lightByY = make([][]int32, ny)
	par.For(ny, workers, func(i int) {
		list := c.sY.List(i)
		pos := make([]int32, len(list))
		for j, z := range list {
			pos[j] = int32(c.sX.Pos(z))
		}
		c.posByY[i] = pos
		if c.colOf[i] >= 0 {
			var light []int32
			for _, zp := range pos {
				if int(c.zDeg[zp]) <= d2 {
					light = append(light, zp)
				}
			}
			c.lightByY[i] = light
		}
	})
	if halt() {
		return c
	}

	// Heavy z rows: z degree above Δ2 and at least one heavy y neighbour.
	if c.ncols > 0 {
		for zp := 0; zp < c.sX.NumKeys(); zp++ {
			if int(c.zDeg[zp]) <= d2 {
				continue
			}
			hasHeavy := false
			for _, y := range c.sX.List(zp) {
				if yp := c.sY.Pos(y); yp >= 0 && c.colOf[yp] >= 0 {
					hasHeavy = true
					break
				}
			}
			if hasHeavy {
				c.heavyZPos = append(c.heavyZPos, int32(zp))
			}
		}
		c.zRows = matrix.NewBitMatrix(len(c.heavyZPos), c.ncols)
		for row, zp := range c.heavyZPos {
			for _, y := range c.sX.List(int(zp)) {
				if yp := c.sY.Pos(y); yp >= 0 {
					if col := c.colOf[yp]; col >= 0 {
						c.zRows.Set(row, int(col))
					}
				}
			}
		}
	}

	if halt() {
		return c
	}

	// R-side positional lists into sY.
	par.For(c.rX.NumKeys(), workers, func(i int) {
		list := c.rX.List(i)
		pos := make([]int32, len(list))
		for j, y := range list {
			pos[j] = int32(c.sY.Pos(y))
		}
		c.rYPos[i] = pos
	})
	for i := 0; i < c.rX.NumKeys(); i++ {
		if c.rX.Degree(i) > d2 {
			c.numHeavyA++
		}
	}
	return c
}

// dedupSortThreshold is the z-domain size above which DedupAuto switches
// from the stamp vector to append+sort (the stamp array stops fitting in
// cache).
const dedupSortThreshold = 1 << 20

// resolveDedup maps DedupAuto to a concrete strategy for this instance.
func (c *twoPathCtx) resolveDedup(mode DedupMode) bool {
	switch mode {
	case DedupSort:
		return true
	case DedupStamp:
		return false
	default:
		return c.sX.NumKeys() > dedupSortThreshold
	}
}

// run evaluates the partitioned join. If counting is true, sink receives
// exact witness counts; otherwise it receives each distinct pair once with
// count 1. sink is invoked from multiple goroutines when workers > 1, with
// all pairs of one x value delivered from a single goroutine.
func (c *twoPathCtx) run(workers int, counting bool, sink func(x, z, count int32)) {
	c.runMode(workers, counting, false, func(_ int, x, z, n int32) { sink(x, z, n) })
}

// runMode additionally selects the light-part dedup strategy. dedupSort
// applies to set semantics only; the counting variant needs random-access
// accumulation and always uses the stamp vector. The sink receives the
// worker (chunk) index so callers can keep coordination-free per-worker
// buffers — the Section-6 parallelization pattern.
func (c *twoPathCtx) runMode(workers int, counting, dedupSort bool, sink func(worker int, x, z, count int32)) {
	nx := c.rX.NumKeys()
	rowWords := (c.ncols + 63) / 64
	nw := par.Workers(workers)
	if nw > nx {
		nw = nx
	}
	if nw < 1 {
		return
	}
	// Dynamic block scheduling: heavy x values cluster, so static chunking
	// skews badly; workers pull fixed-size blocks from a shared cursor
	// instead (still coordination-free within a block).
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for chunk := 0; chunk < nw; chunk++ {
		wg.Add(1)
		go func(chunk int) {
			defer wg.Done()
			var stamp []int32
			if !dedupSort || counting {
				stamp = make([]int32, c.sX.NumKeys())
			}
			var cnt []int32
			var touched []int32
			var zbuf []int32
			if counting {
				cnt = make([]int32, c.sX.NumKeys())
			}
			scratch := make([]uint64, rowWords)
			aRow := bitset.FromWords(scratch, c.ncols)
			for {
				blockLo := int(cursor.Add(schedBlock) - schedBlock)
				if blockLo >= nx {
					return
				}
				if c.stop != nil && c.stop() {
					return
				}
				blockHi := blockLo + schedBlock
				if blockHi > nx {
					blockHi = nx
				}
				c.processBlock(blockLo, blockHi, chunk, counting, dedupSort, sink,
					stamp, cnt, &touched, &zbuf, scratch, aRow)
			}
		}(chunk)
	}
	wg.Wait()
}

// schedBlock is the dynamic scheduling granularity (x positions per pull).
const schedBlock = 64

// processBlock evaluates x positions [lo, hi) with the worker-local state.
func (c *twoPathCtx) processBlock(lo, hi, chunk int, counting, dedupSort bool,
	sink func(worker int, x, z, count int32),
	stamp, cnt []int32, touchedP, zbufP *[]int32, scratch []uint64, aRow *bitset.Bitset) {
	touched, zbuf := *touchedP, *zbufP
	defer func() { *touchedP, *zbufP = touched, zbuf }()
	for i := lo; i < hi; i++ {
		a := c.rX.Key(i)
		epoch := int32(i + 1)
		aHeavy := c.rX.Degree(i) > c.d2
		if aHeavy && c.ncols > 0 {
			for w := range scratch {
				scratch[w] = 0
			}
			for _, yp := range c.rYPos[i] {
				if yp >= 0 {
					if col := c.colOf[yp]; col >= 0 {
						aRow.Set(int(col))
					}
				}
			}
		}
		touched = touched[:0]
		zbuf = zbuf[:0]
		for _, yp := range c.rYPos[i] {
			if yp < 0 {
				continue
			}
			var cand []int32
			if c.colOf[yp] < 0 || !aHeavy {
				// Light y (category 1) or heavy y with light x
				// (category 2): expand every partner z.
				cand = c.posByY[yp]
			} else {
				// Heavy y and heavy x: only light z partners
				// (category 3); heavy z is the matrix's job.
				cand = c.lightByY[yp]
			}
			switch {
			case counting:
				for _, zp := range cand {
					if stamp[zp] != epoch {
						stamp[zp] = epoch
						cnt[zp] = 1
						touched = append(touched, zp)
					} else {
						cnt[zp]++
					}
				}
			case dedupSort:
				zbuf = append(zbuf, cand...)
			default:
				for _, zp := range cand {
					if stamp[zp] != epoch {
						stamp[zp] = epoch
						sink(chunk, a, c.zvals[zp], 1)
					}
				}
			}
		}
		if aHeavy && c.zRows != nil && c.zRows.Rows > 0 {
			// Category 4: the matrix product row for this heavy x.
			for j := 0; j < c.zRows.Rows; j++ {
				n := aRow.AndCount(c.zRows.Row(j))
				if n == 0 {
					continue
				}
				zp := c.heavyZPos[j]
				switch {
				case counting:
					if stamp[zp] != epoch {
						stamp[zp] = epoch
						cnt[zp] = int32(n)
						touched = append(touched, zp)
					} else {
						cnt[zp] += int32(n)
					}
				case dedupSort:
					zbuf = append(zbuf, zp)
				default:
					if stamp[zp] != epoch {
						stamp[zp] = epoch
						sink(chunk, a, c.zvals[zp], 1)
					}
				}
			}
		}
		if counting {
			for _, zp := range touched {
				sink(chunk, a, c.zvals[zp], cnt[zp])
			}
		} else if dedupSort && len(zbuf) > 0 {
			// Section-6 alternative: append all reachable z values,
			// then sort + unique.
			slices.Sort(zbuf)
			for j, zp := range zbuf {
				if j == 0 || zp != zbuf[j-1] {
					sink(chunk, a, c.zvals[zp], 1)
				}
			}
		}
	}
}

// runNonMM is the combinatorial (Lemma 2) variant: identical partitioning,
// but the all-heavy residual is evaluated by pairwise sorted-list
// intersection instead of a bit-packed matrix product.
func (c *twoPathCtx) runNonMM(workers int, counting bool, sink func(worker int, x, z, count int32)) {
	// Precompute each heavy z's sorted heavy-column list.
	zCols := make([][]int32, len(c.heavyZPos))
	for j, zp := range c.heavyZPos {
		var cols []int32
		for _, y := range c.sX.List(int(zp)) {
			if yp := c.sY.Pos(y); yp >= 0 {
				if col := c.colOf[yp]; col >= 0 {
					cols = append(cols, col)
				}
			}
		}
		slices.Sort(cols)
		zCols[j] = cols
	}
	nx := c.rX.NumKeys()
	nw := par.Workers(workers)
	if nw > nx {
		nw = nx
	}
	if nw < 1 {
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for chunk := 0; chunk < nw; chunk++ {
		wg.Add(1)
		go func(chunk int) {
			defer wg.Done()
			stamp := make([]int32, c.sX.NumKeys())
			var cnt []int32
			var touched []int32
			if counting {
				cnt = make([]int32, c.sX.NumKeys())
			}
			var aCols []int32
			for {
				blockLo := int(cursor.Add(schedBlock) - schedBlock)
				if blockLo >= nx {
					return
				}
				if c.stop != nil && c.stop() {
					return
				}
				blockHi := blockLo + schedBlock
				if blockHi > nx {
					blockHi = nx
				}
				for i := blockLo; i < blockHi; i++ {
					a := c.rX.Key(i)
					epoch := int32(i + 1)
					aHeavy := c.rX.Degree(i) > c.d2
					if aHeavy {
						aCols = aCols[:0]
						for _, yp := range c.rYPos[i] {
							if yp >= 0 {
								if col := c.colOf[yp]; col >= 0 {
									aCols = append(aCols, col)
								}
							}
						}
						slices.Sort(aCols)
					}
					touched = touched[:0]
					for _, yp := range c.rYPos[i] {
						if yp < 0 {
							continue
						}
						var cand []int32
						if c.colOf[yp] < 0 || !aHeavy {
							cand = c.posByY[yp]
						} else {
							cand = c.lightByY[yp]
						}
						if counting {
							for _, zp := range cand {
								if stamp[zp] != epoch {
									stamp[zp] = epoch
									cnt[zp] = 1
									touched = append(touched, zp)
								} else {
									cnt[zp]++
								}
							}
						} else {
							for _, zp := range cand {
								if stamp[zp] != epoch {
									stamp[zp] = epoch
									sink(chunk, a, c.zvals[zp], 1)
								}
							}
						}
					}
					if aHeavy && len(aCols) > 0 {
						for j := range zCols {
							n := relation.IntersectCount(aCols, zCols[j])
							if n == 0 {
								continue
							}
							zp := c.heavyZPos[j]
							if counting {
								if stamp[zp] != epoch {
									stamp[zp] = epoch
									cnt[zp] = int32(n)
									touched = append(touched, zp)
								} else {
									cnt[zp] += int32(n)
								}
							} else if stamp[zp] != epoch {
								stamp[zp] = epoch
								sink(chunk, a, c.zvals[zp], 1)
							}
						}
					}
					if counting {
						for _, zp := range touched {
							sink(chunk, a, c.zvals[zp], cnt[zp])
						}
					}
				}
			}
		}(chunk)
	}
	wg.Wait()
}

// pairCollector gathers output pairs into coordination-free per-worker
// buffers, concatenated in chunk order at the end (deterministic for a
// fixed worker count).
type pairCollector struct {
	slots [][][2]int32
}

func newPairCollector(chunks int) *pairCollector {
	return &pairCollector{slots: make([][][2]int32, chunks)}
}

func (pc *pairCollector) sink(worker int, x, z, _ int32) {
	pc.slots[worker] = append(pc.slots[worker], [2]int32{x, z})
}

func (pc *pairCollector) pairs() [][2]int32 {
	total := 0
	for _, s := range pc.slots {
		total += len(s)
	}
	out := make([][2]int32, 0, total)
	for _, s := range pc.slots {
		out = append(out, s...)
	}
	return out
}

type countCollector struct {
	slots [][]PairCount
}

func newCountCollector(chunks int) *countCollector {
	return &countCollector{slots: make([][]PairCount, chunks)}
}

func (cc *countCollector) sink(worker int, x, z, n int32) {
	cc.slots[worker] = append(cc.slots[worker], PairCount{X: x, Z: z, Count: n})
}

func (cc *countCollector) out() []PairCount {
	total := 0
	for _, s := range cc.slots {
		total += len(s)
	}
	out := make([]PairCount, 0, total)
	for _, s := range cc.slots {
		out = append(out, s...)
	}
	return out
}

// TwoPathMM evaluates π_{x,z}(R(x,y) ⋈ S(z,y)) with Algorithm 1 and returns
// the distinct output pairs (order unspecified).
func TwoPathMM(r, s *relation.Relation, opt Options) [][2]int32 {
	opt = opt.normalize(r, s)
	c := newTwoPathCtxParallel(r, s, opt.Delta1, opt.Delta2, opt.Workers, opt.Stop)
	pc := newPairCollector(par.Workers(opt.Workers))
	c.runMode(opt.Workers, false, c.resolveDedup(opt.Dedup), pc.sink)
	return pc.pairs()
}

// TwoPathMMCounts evaluates the counting 2-path: every distinct output pair
// with its exact witness count. The light/heavy witness categories of
// Algorithm 1 partition the witness space, so counts are exact.
func TwoPathMMCounts(r, s *relation.Relation, opt Options) []PairCount {
	opt = opt.normalize(r, s)
	c := newTwoPathCtxParallel(r, s, opt.Delta1, opt.Delta2, opt.Workers, opt.Stop)
	cc := newCountCollector(par.Workers(opt.Workers))
	c.runMode(opt.Workers, true, false, cc.sink)
	return cc.out()
}

// TwoPathMMVisit streams each distinct output pair and its witness count to
// visit. visit is called concurrently when opt.Workers permits; it must be
// safe for concurrent use.
func TwoPathMMVisit(r, s *relation.Relation, opt Options, visit func(x, z, count int32)) {
	opt = opt.normalize(r, s)
	c := newTwoPathCtxParallel(r, s, opt.Delta1, opt.Delta2, opt.Workers, opt.Stop)
	c.run(opt.Workers, true, visit)
}

// TwoPathNonMM is the combinatorial Lemma-2 baseline: the same degree
// partitioning, with the heavy residual computed by pairwise sorted-list
// intersections instead of matrix multiplication.
func TwoPathNonMM(r, s *relation.Relation, opt Options) [][2]int32 {
	opt = opt.normalize(r, s)
	c := newTwoPathCtxParallel(r, s, opt.Delta1, opt.Delta2, opt.Workers, opt.Stop)
	pc := newPairCollector(par.Workers(opt.Workers))
	c.runNonMM(opt.Workers, false, pc.sink)
	return pc.pairs()
}

// TwoPathNonMMCounts is the counting variant of TwoPathNonMM.
func TwoPathNonMMCounts(r, s *relation.Relation, opt Options) []PairCount {
	opt = opt.normalize(r, s)
	c := newTwoPathCtxParallel(r, s, opt.Delta1, opt.Delta2, opt.Workers, opt.Stop)
	cc := newCountCollector(par.Workers(opt.Workers))
	c.runNonMM(opt.Workers, true, cc.sink)
	return cc.out()
}

// paddedCount is a cache-line-padded counter: per-worker tallies would
// otherwise false-share one line and serialize the workers.
type paddedCount struct {
	n int64
	_ [7]int64
}

// TwoPathSize returns |OUT| — the number of distinct output pairs — without
// materializing them.
func TwoPathSize(r, s *relation.Relation, opt Options) int64 {
	opt = opt.normalize(r, s)
	c := newTwoPathCtxParallel(r, s, opt.Delta1, opt.Delta2, opt.Workers, opt.Stop)
	counts := make([]paddedCount, par.Workers(opt.Workers))
	c.runMode(opt.Workers, false, c.resolveDedup(opt.Dedup), func(w int, _, _, _ int32) { counts[w].n++ })
	var total int64
	for _, pc := range counts {
		total += pc.n
	}
	return total
}
