package joinproject

import (
	"repro/internal/relation"
)

// GroupCount is a per-group aggregate over the projected join: for one x
// value, Distinct is the number of distinct join partners z (the group's
// size in π_{x,z}) and Witnesses is the total witness multiplicity (the
// group's size in the full join R ⋈ S).
type GroupCount struct {
	X         int32
	Distinct  int64
	Witnesses int64
}

// TwoPathGroupBy evaluates the group-by aggregate
//
//	γ_{x; COUNT(DISTINCT z), COUNT(*)}(R(x,y) ⋈ S(z,y))
//
// output-sensitively with Algorithm 1's partition: distinct counts fall out
// of the deduplicated light expansion plus the matrix row nonzeros, and
// witness counts from the same pass's multiplicities. This is the Section-9
// direction ("matrix multiplication in group-by aggregate queries",
// cf. [36]): the aggregate never materializes the join, and groups whose
// pairs are all heavy are counted entirely inside the matrix product.
func TwoPathGroupBy(r, s *relation.Relation, opt Options) []GroupCount {
	opt = opt.normalize(r, s)
	c := newTwoPathCtx(r, s, opt.Delta1, opt.Delta2)
	nx := c.rX.NumKeys()
	distinct := make([]int64, nx)
	witnesses := make([]int64, nx)
	// Track positions: the counting run delivers all pairs of one x from a
	// single goroutine, so per-x accumulation is race-free, but x arrives as
	// a value — precompute value → position.
	posOf := make(map[int32]int, nx)
	for i := 0; i < nx; i++ {
		posOf[c.rX.Key(i)] = i
	}
	c.run(opt.Workers, true, func(x, _, n int32) {
		i := posOf[x]
		distinct[i]++
		witnesses[i] += int64(n)
	})
	out := make([]GroupCount, 0, nx)
	for i := 0; i < nx; i++ {
		if distinct[i] > 0 {
			out = append(out, GroupCount{X: c.rX.Key(i), Distinct: distinct[i], Witnesses: witnesses[i]})
		}
	}
	return out
}
