package joinproject

import (
	"math"

	"repro/internal/relation"
)

// EstimateOutputSize implements the Section-5 estimator for |OUT| of the
// 2-path query: |OUT| is bracketed by
//
//	max{|dom(x)|, |dom(z)|, (|OUT⋈|/N)²} ≤ |OUT| ≤ min{|dom(x)|·|dom(z)|, |OUT⋈|}
//
// (the lower bound uses |OUT⋈| ≤ N·√|OUT|), and the estimate is the
// geometric mean of the two bounds. The full join size |OUT⋈| is computed
// exactly during preprocessing.
func EstimateOutputSize(r, s *relation.Relation) int64 {
	outJoin := relation.FullJoinSize(r, s)
	if outJoin == 0 {
		return 0
	}
	n := float64(r.Size())
	if s.Size() > r.Size() {
		n = float64(s.Size())
	}
	domX, domZ := float64(r.NumX()), float64(s.NumX())
	lower := math.Max(math.Max(domX, domZ), math.Pow(float64(outJoin)/n, 2))
	upper := math.Min(domX*domZ, float64(outJoin))
	if lower > upper {
		lower = upper
	}
	est := math.Sqrt(lower * upper)
	if est < 1 {
		est = 1
	}
	return int64(est)
}

// HeuristicThresholds returns the paper's closed-form optimal thresholds for
// Algorithm 1 under the ω = 2 cost model (Section 3.1):
//
//	|OUT| ≤ N: Δ1 = |OUT|^{1/3},  Δ2 = N / |OUT|^{2/3}
//	|OUT| > N: Δ1 = Δ2 = (2N² / (N + |OUT|))^{1/3}
//
// with |OUT| replaced by the Section-5 estimate. Both thresholds are clamped
// to [1, N]. The cost-based optimizer (internal/optimizer) refines these
// using calibrated machine constants; these closed forms are the sensible
// default when no optimizer is attached.
func HeuristicThresholds(r, s *relation.Relation) (d1, d2 int) {
	n := float64(r.Size())
	if s.Size() > r.Size() {
		n = float64(s.Size())
	}
	if n == 0 {
		return 1, 1
	}
	out := float64(EstimateOutputSize(r, s))
	if out < 1 {
		out = 1
	}
	if out <= n {
		d1 = int(math.Cbrt(out))
		d2 = int(n / math.Pow(out, 2.0/3.0))
	} else {
		d := int(math.Cbrt(2 * n * n / (n + out)))
		d1, d2 = d, d
	}
	return clampThreshold(d1, int(n)), clampThreshold(d2, int(n))
}

func clampThreshold(d, n int) int {
	if d < 1 {
		return 1
	}
	if n >= 1 && d > n {
		return n
	}
	return d
}

// HeuristicStarThresholds extends the closed forms to Q★k following the
// Section-3.2 analysis: balance N·Δ1^{k-1} (the light-y join), |OUT|·Δ2
// (the light-x join) and the matrix term. We solve the first equality with
// the Section-5 estimate applied to the two largest relations and clamp as
// above; the optimizer can override.
func HeuristicStarThresholds(rels []*relation.Relation, k int) (d1, d2 int) {
	if len(rels) < 2 {
		return 1, 1
	}
	n := 0
	for _, r := range rels {
		if r.Size() > n {
			n = r.Size()
		}
	}
	if n == 0 {
		return 1, 1
	}
	out := float64(EstimateOutputSize(rels[0], rels[1]))
	if out < 1 {
		out = 1
	}
	nf := float64(n)
	// N·Δ1^{k-1} = OUT·Δ2 with the Example-4 style relation Δ1^{k-1} ≈
	// OUT/N · Δ2; take Δ2 from the 2-path closed form and derive Δ1.
	_, d2 = HeuristicThresholds(rels[0], rels[1])
	d1f := math.Pow(out*float64(d2)/nf, 1.0/float64(k-1))
	d1 = clampThreshold(int(d1f), n)
	d2 = clampThreshold(d2, n)
	return d1, d2
}
