package joinproject

import (
	"math/rand"
	"testing"

	"repro/internal/relation"
)

// Torture tests: adversarial degree distributions that stress specific
// corners of the partitioning logic.

// Single shared y value: the densest possible witness structure — one
// column, all output through it.
func TestTortureSingleY(t *testing.T) {
	var ps []relation.Pair
	for x := int32(0); x < 200; x++ {
		ps = append(ps, relation.Pair{X: x, Y: 7})
	}
	r := relation.FromPairs("oneY", ps)
	want := bruteCounts(r, r)
	for _, d := range []int{1, 100, 1000} {
		got := countsToMap(TwoPathMMCounts(r, r, Options{Delta1: d, Delta2: d}))
		if len(got) != 200*200 {
			t.Fatalf("d=%d: %d pairs, want 40000", d, len(got))
		}
		for p, c := range want {
			if got[p] != c {
				t.Fatalf("d=%d: pair %v count %d, want %d", d, p, got[p], c)
			}
		}
	}
}

// Perfect matching: every x has exactly one y and vice versa — the sparsest
// possible instance, no heavy values at any threshold ≥ 1.
func TestTortureMatching(t *testing.T) {
	var ps []relation.Pair
	for i := int32(0); i < 500; i++ {
		ps = append(ps, relation.Pair{X: i, Y: i})
	}
	r := relation.FromPairs("match", ps)
	got := TwoPathMM(r, r, Options{Delta1: 1, Delta2: 1})
	if len(got) != 500 {
		t.Fatalf("matching join-project = %d pairs, want 500 self-pairs", len(got))
	}
	for _, p := range got {
		if p[0] != p[1] {
			t.Fatalf("matching produced cross pair %v", p)
		}
	}
}

// One super-heavy hub x connected to everything, rest singletons: exercises
// the heavy-x/light-y and heavy-x/heavy-y boundaries simultaneously.
func TestTortureHub(t *testing.T) {
	var ps []relation.Pair
	for y := int32(0); y < 300; y++ {
		ps = append(ps, relation.Pair{X: 0, Y: y}) // hub
	}
	for i := int32(1); i <= 300; i++ {
		ps = append(ps, relation.Pair{X: i, Y: i - 1}) // singletons
	}
	r := relation.FromPairs("hub", ps)
	want := bruteCounts(r, r)
	for _, d1 := range []int{1, 2, 50} {
		for _, d2 := range []int{1, 2, 50} {
			got := countsToMap(TwoPathMMCounts(r, r, Options{Delta1: d1, Delta2: d2}))
			if len(got) != len(want) {
				t.Fatalf("d=(%d,%d): %d pairs, want %d", d1, d2, len(got), len(want))
			}
			for p, c := range want {
				if got[p] != c {
					t.Fatalf("d=(%d,%d): pair %v count %d, want %d", d1, d2, p, got[p], c)
				}
			}
		}
	}
}

// Bipartite complete blocks of different sizes: outputs within blocks only,
// witness counts equal to block widths.
func TestTortureBlocks(t *testing.T) {
	var ps []relation.Pair
	yBase := int32(0)
	xBase := int32(0)
	blocks := []struct{ xs, ys int32 }{{3, 40}, {25, 2}, {10, 10}}
	for _, b := range blocks {
		for x := int32(0); x < b.xs; x++ {
			for y := int32(0); y < b.ys; y++ {
				ps = append(ps, relation.Pair{X: xBase + x, Y: yBase + y})
			}
		}
		xBase += b.xs
		yBase += b.ys
	}
	r := relation.FromPairs("blocks", ps)
	want := bruteCounts(r, r)
	got := countsToMap(TwoPathMMCounts(r, r, Options{Delta1: 5, Delta2: 5, Workers: 3}))
	if len(got) != len(want) {
		t.Fatalf("%d pairs, want %d", len(got), len(want))
	}
	// Spot-check: pairs inside block 0 have count 40.
	if got[[2]int32{0, 1}] != 40 {
		t.Fatalf("block-0 pair count = %d, want 40", got[[2]int32{0, 1}])
	}
	if got[[2]int32{3, 4}] != 2 {
		t.Fatalf("block-1 pair count = %d, want 2", got[[2]int32{3, 4}])
	}
}

// Asymmetric relations: R tiny, S huge (and vice versa) — checks the
// NR ≠ NS handling of thresholds and matrix dimensions.
func TestTortureAsymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(222))
	small := skewedRel(rng, "small", 40, 5, 10)
	big := skewedRel(rng, "big", 4000, 300, 10)
	for _, pair := range [][2]*relation.Relation{{small, big}, {big, small}} {
		want := bruteCounts(pair[0], pair[1])
		got := countsToMap(TwoPathMMCounts(pair[0], pair[1], Options{Delta1: 3, Delta2: 3}))
		if len(got) != len(want) {
			t.Fatalf("asymmetric: %d pairs, want %d", len(got), len(want))
		}
		for p, c := range want {
			if got[p] != c {
				t.Fatalf("asymmetric pair %v: %d, want %d", p, got[p], c)
			}
		}
	}
}

// Star with a relation that has a single tuple: output collapses through
// the bottleneck.
func TestTortureStarBottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(223))
	wide := skewedRel(rng, "wide", 300, 30, 10)
	bottleneck := relation.FromPairs("b", []relation.Pair{{X: 99, Y: 5}})
	rels := []*relation.Relation{wide, bottleneck, wide}
	got := StarMM(rels, Options{Delta1: 2, Delta2: 2})
	for _, xs := range got {
		if xs[1] != 99 {
			t.Fatalf("bottleneck variable must be 99, got %v", xs)
		}
	}
	// Everything must join through y=5 only.
	wideAt5 := wide.ByY().Lookup(5)
	want := len(wideAt5) * len(wideAt5)
	if len(got) != want {
		t.Fatalf("bottleneck star = %d tuples, want %d", len(got), want)
	}
}

func TestTwoPathGroupBy(t *testing.T) {
	rng := rand.New(rand.NewSource(225))
	r := skewedRel(rng, "R", 600, 50, 30)
	s := skewedRel(rng, "S", 600, 50, 30)
	want := bruteCounts(r, s)
	wantDistinct := map[int32]int64{}
	wantWitness := map[int32]int64{}
	for p, c := range want {
		wantDistinct[p[0]]++
		wantWitness[p[0]] += int64(c)
	}
	for _, d := range []int{1, 4, 1000} {
		groups := TwoPathGroupBy(r, s, Options{Delta1: d, Delta2: d, Workers: 2})
		if len(groups) != len(wantDistinct) {
			t.Fatalf("d=%d: %d groups, want %d", d, len(groups), len(wantDistinct))
		}
		for _, g := range groups {
			if g.Distinct != wantDistinct[g.X] {
				t.Fatalf("d=%d: group %d distinct=%d, want %d", d, g.X, g.Distinct, wantDistinct[g.X])
			}
			if g.Witnesses != wantWitness[g.X] {
				t.Fatalf("d=%d: group %d witnesses=%d, want %d", d, g.X, g.Witnesses, wantWitness[g.X])
			}
		}
	}
}

func TestTwoPathGroupByEmpty(t *testing.T) {
	e := relation.FromPairs("E", nil)
	if got := TwoPathGroupBy(e, e, Options{Delta1: 1, Delta2: 1}); len(got) != 0 {
		t.Fatalf("group-by on empty = %v", got)
	}
}

// Thresholds larger than any degree push everything through the light path;
// thresholds of 1 with all degrees > 1 push everything through the matrix.
// Both must agree with each other.
func TestTortureExtremesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(224))
	// All degrees ≥ 2 by construction.
	var ps []relation.Pair
	for x := int32(0); x < 60; x++ {
		for k := 0; k < 3; k++ {
			ps = append(ps, relation.Pair{X: x, Y: int32((int(x) + k*7) % 40)})
		}
	}
	for y := int32(0); y < 40; y++ {
		ps = append(ps, relation.Pair{X: int32(60 + y%3), Y: y})
	}
	r := relation.FromPairs("ext", ps)
	allLight := countsToMap(TwoPathMMCounts(r, r, Options{Delta1: 10000, Delta2: 10000}))
	allHeavy := countsToMap(TwoPathMMCounts(r, r, Options{Delta1: 1, Delta2: 1}))
	if len(allLight) != len(allHeavy) {
		t.Fatalf("light-only %d pairs, heavy-routed %d", len(allLight), len(allHeavy))
	}
	for p, c := range allLight {
		if allHeavy[p] != c {
			t.Fatalf("pair %v: light %d, heavy %d", p, c, allHeavy[p])
		}
	}
	_ = rng
}
