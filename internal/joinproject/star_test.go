package joinproject

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/relation"
	"repro/internal/wcoj"
)

func tuplesToSet(ts [][]int32) map[string]bool {
	set := make(map[string]bool, len(ts))
	for _, xs := range ts {
		set[string(packTuple(nil, xs))] = true
	}
	return set
}

func checkTuplesEqual(t *testing.T, got, want [][]int32, label string) {
	t.Helper()
	gs, ws := tuplesToSet(got), tuplesToSet(want)
	if len(gs) != len(got) {
		t.Fatalf("%s: duplicates in output (%d tuples, %d distinct)", label, len(got), len(gs))
	}
	if len(gs) != len(ws) {
		t.Fatalf("%s: %d tuples, want %d", label, len(gs), len(ws))
	}
	for k := range ws {
		if !gs[k] {
			t.Fatalf("%s: missing tuple", label)
		}
	}
}

func TestStarSmall(t *testing.T) {
	r := rel("R", [2]int32{1, 10}, [2]int32{2, 10})
	s := rel("S", [2]int32{5, 10})
	u := rel("U", [2]int32{7, 10}, [2]int32{8, 10})
	want := wcoj.ProjectStar([]*relation.Relation{r, s, u})
	got := StarMM([]*relation.Relation{r, s, u}, Options{Delta1: 1, Delta2: 1})
	checkTuplesEqual(t, got, want, "star small")
}

func TestStarThresholdSweep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rels := []*relation.Relation{
		skewedRel(rng, "R1", 200, 12, 10),
		skewedRel(rng, "R2", 200, 12, 10),
		skewedRel(rng, "R3", 200, 12, 10),
	}
	want := wcoj.ProjectStar(rels)
	for _, d1 := range []int{1, 2, 6, 100} {
		for _, d2 := range []int{1, 3, 100} {
			got := StarMM(rels, Options{Delta1: d1, Delta2: d2, Workers: 1})
			checkTuplesEqual(t, got, want, "star sweep")
			gotN := StarNonMM(rels, Options{Delta1: d1, Delta2: d2, Workers: 1})
			checkTuplesEqual(t, gotN, want, "star nonmm sweep")
		}
	}
}

func TestStarParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rels := []*relation.Relation{
		skewedRel(rng, "R1", 400, 20, 14),
		skewedRel(rng, "R2", 400, 20, 14),
		skewedRel(rng, "R3", 400, 20, 14),
	}
	want := wcoj.ProjectStar(rels)
	for _, w := range []int{2, 6} {
		got := StarMM(rels, Options{Delta1: 2, Delta2: 2, Workers: w})
		checkTuplesEqual(t, got, want, "star parallel")
	}
}

// TestPaperExample3 mirrors Example 3: a 4-way star whose variables are
// grouped as (x,z) and (p,q) for the matrix step.
func TestPaperExample3(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	rels := []*relation.Relation{
		skewedRel(rng, "R", 150, 8, 6),
		skewedRel(rng, "S", 150, 8, 6),
		skewedRel(rng, "T", 150, 8, 6),
		skewedRel(rng, "U", 150, 8, 6),
	}
	want := wcoj.ProjectStar(rels)
	got := StarMM(rels, Options{Delta1: 2, Delta2: 2})
	checkTuplesEqual(t, got, want, "example 3 star-4")
	if n := StarMMSize(rels, Options{Delta1: 2, Delta2: 2}); n != int64(len(want)) {
		t.Fatalf("StarMMSize = %d, want %d", n, len(want))
	}
}

func TestStarTwoRelationsMatchesTwoPath(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	r := skewedRel(rng, "R", 300, 25, 15)
	s := skewedRel(rng, "S", 300, 25, 15)
	want := TwoPathMM(r, s, Options{Delta1: 2, Delta2: 2})
	got := StarMM([]*relation.Relation{r, s}, Options{Delta1: 2, Delta2: 2})
	wantTuples := make([][]int32, len(want))
	for i, p := range want {
		wantTuples[i] = []int32{p[0], p[1]}
	}
	checkTuplesEqual(t, got, wantTuples, "star k=2 vs 2-path")
}

func TestStarEmpty(t *testing.T) {
	if got := StarMM(nil, Options{}); got != nil {
		t.Fatalf("StarMM(nil) = %v", got)
	}
	empty := rel("E")
	r := rel("R", [2]int32{1, 1})
	if got := StarMM([]*relation.Relation{r, empty, r}, Options{Delta1: 1, Delta2: 1}); len(got) != 0 {
		t.Fatalf("star with empty relation = %v", got)
	}
}

func TestStarDefaultThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	rels := []*relation.Relation{
		skewedRel(rng, "R1", 250, 15, 12),
		skewedRel(rng, "R2", 250, 15, 12),
		skewedRel(rng, "R3", 250, 15, 12),
	}
	want := wcoj.ProjectStar(rels)
	got := StarMM(rels, Options{})
	checkTuplesEqual(t, got, want, "star defaults")
	d1, d2 := HeuristicStarThresholds(rels, 3)
	if d1 < 1 || d2 < 1 {
		t.Fatalf("star thresholds (%d, %d) below 1", d1, d2)
	}
}

// Property: StarMM equals the WCOJ oracle for random 3-star instances and
// random thresholds.
func TestQuickStarMatchesOracle(t *testing.T) {
	f := func(seed int64, d1raw, d2raw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		rels := []*relation.Relation{
			skewedRel(rng, "R1", 1+rng.Intn(120), 1+rng.Intn(10), 1+rng.Intn(8)),
			skewedRel(rng, "R2", 1+rng.Intn(120), 1+rng.Intn(10), 1+rng.Intn(8)),
			skewedRel(rng, "R3", 1+rng.Intn(120), 1+rng.Intn(10), 1+rng.Intn(8)),
		}
		opt := Options{Delta1: 1 + int(d1raw%8), Delta2: 1 + int(d2raw%8), Workers: 2}
		want := tuplesToSet(wcoj.ProjectStar(rels))
		got := tuplesToSet(StarMM(rels, opt))
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// bruteStarCounts enumerates witness counts for projected star tuples.
func bruteStarCounts(rels []*relation.Relation) map[string]int32 {
	out := map[string]int32{}
	k := len(rels)
	var rec func(depth int, y int32, xs []int32)
	rec = func(depth int, y int32, xs []int32) {
		if depth == k {
			out[string(packTuple(nil, xs))]++
			return
		}
		for _, x := range rels[depth].ByY().Lookup(y) {
			xs[depth] = x
			rec(depth+1, y, xs)
		}
	}
	xs := make([]int32, k)
	for _, y := range relation.CommonYs(rels...) {
		rec(0, y, xs)
	}
	return out
}

func TestStarMMCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	for trial := 0; trial < 5; trial++ {
		rels := []*relation.Relation{
			skewedRel(rng, "R1", 120, 10, 8),
			skewedRel(rng, "R2", 120, 10, 8),
			skewedRel(rng, "R3", 120, 10, 8),
		}
		want := bruteStarCounts(rels)
		for _, d := range []int{1, 3, 100} {
			got := StarMMCounts(rels, Options{Delta1: d, Delta2: d, Workers: 2})
			if len(got) != len(want) {
				t.Fatalf("trial %d d=%d: %d tuples, want %d", trial, d, len(got), len(want))
			}
			for _, tc := range got {
				key := string(packTuple(nil, tc.Xs))
				if want[key] != tc.Count {
					t.Fatalf("trial %d d=%d: tuple %v count %d, want %d", trial, d, tc.Xs, tc.Count, want[key])
				}
			}
		}
	}
}

func TestStarMMCountsFourWay(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	rels := []*relation.Relation{
		skewedRel(rng, "R1", 80, 7, 6),
		skewedRel(rng, "R2", 80, 7, 6),
		skewedRel(rng, "R3", 80, 7, 6),
		skewedRel(rng, "R4", 80, 7, 6),
	}
	want := bruteStarCounts(rels)
	got := StarMMCounts(rels, Options{Delta1: 2, Delta2: 2})
	if len(got) != len(want) {
		t.Fatalf("%d tuples, want %d", len(got), len(want))
	}
	for _, tc := range got {
		if want[string(packTuple(nil, tc.Xs))] != tc.Count {
			t.Fatalf("tuple %v count %d wrong", tc.Xs, tc.Count)
		}
	}
}

func TestTupleSet(t *testing.T) {
	ts := newTupleSet()
	if !ts.insert([]byte("abcd")) {
		t.Fatal("first insert should be new")
	}
	if ts.insert([]byte("abcd")) {
		t.Fatal("second insert should not be new")
	}
	if !ts.insert([]byte("abce")) {
		t.Fatal("distinct key should be new")
	}
	if ts.size() != 2 {
		t.Fatalf("size = %d, want 2", ts.size())
	}
}

func TestPackTupleDistinct(t *testing.T) {
	a := packTuple(nil, []int32{1, 2})
	b := packTuple(nil, []int32{2, 1})
	if string(a) == string(b) {
		t.Fatal("packTuple collided on permuted tuples")
	}
	c := packTuple(nil, []int32{-1, 0})
	d := packTuple(nil, []int32{0, -1})
	if string(c) == string(d) {
		t.Fatal("packTuple collided on negative values")
	}
}

func TestCrossSegmentedCoversExactlyNotAllHeavy(t *testing.T) {
	// lists with explicit light/heavy split: verify the first-light-position
	// decomposition enumerates each not-all-heavy combo exactly once.
	light := [][]int32{{1}, {10}, {100}}
	heavy := [][]int32{{2, 3}, {20}, {200}}
	full := [][]int32{{1, 2, 3}, {10, 20}, {100, 200}}
	seen := map[[3]int32]int{}
	xs := make([]int32, 3)
	for p := 0; p < 3; p++ {
		if len(light[p]) == 0 {
			continue
		}
		crossSegmented(heavy, light, full, xs, 0, p, func() {
			seen[[3]int32{xs[0], xs[1], xs[2]}]++
		})
	}
	total := 0
	for _, l := range full {
		if total == 0 {
			total = len(l)
		} else {
			total *= len(l)
		}
	}
	allHeavy := len(heavy[0]) * len(heavy[1]) * len(heavy[2])
	if len(seen) != total-allHeavy {
		t.Fatalf("decomposition covered %d combos, want %d", len(seen), total-allHeavy)
	}
	for combo, n := range seen {
		if n != 1 {
			t.Fatalf("combo %v enumerated %d times", combo, n)
		}
	}
	sort.Strings(nil) // keep sort import for symmetry with other tests
}
