package joinproject

import (
	"hash/maphash"
	"sync"

	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/relation"
)

// tupleSet is a striped-lock set of fixed-width byte keys, used for global
// deduplication of projected star tuples across parallel workers.
type tupleSet struct {
	seed   maphash.Seed
	shards [64]tupleShard
}

type tupleShard struct {
	mu sync.Mutex
	m  map[string]struct{}
}

func newTupleSet() *tupleSet {
	ts := &tupleSet{seed: maphash.MakeSeed()}
	for i := range ts.shards {
		ts.shards[i].m = make(map[string]struct{})
	}
	return ts
}

// insert adds key and reports whether it was new.
func (ts *tupleSet) insert(key []byte) bool {
	h := maphash.Bytes(ts.seed, key)
	sh := &ts.shards[h&63]
	sh.mu.Lock()
	_, ok := sh.m[string(key)]
	if !ok {
		sh.m[string(key)] = struct{}{}
	}
	sh.mu.Unlock()
	return !ok
}

func (ts *tupleSet) size() int {
	n := 0
	for i := range ts.shards {
		n += len(ts.shards[i].m)
	}
	return n
}

func packTuple(key []byte, xs []int32) []byte {
	key = key[:0]
	for _, v := range xs {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return key
}

// starScratch is the per-worker tuple/key buffer pair of the star
// evaluation: every producer (light-enumeration chunk, combinatorial chunk,
// matrix-product row) checks one out for its lifetime, so the per-tuple hot
// path allocates nothing.
type starScratch struct {
	xs  []int32
	key []byte
}

var starScratchPool = sync.Pool{New: func() any { return new(starScratch) }}

func getStarScratch(k int) *starScratch {
	s := starScratchPool.Get().(*starScratch)
	if cap(s.xs) < k {
		s.xs = make([]int32, k)
		s.key = make([]byte, 0, 4*k)
	}
	s.xs = s.xs[:k]
	return s
}

func putStarScratch(s *starScratch) { starScratchPool.Put(s) }

// starCtx precomputes the per-relation degree information for Q★k.
type starCtx struct {
	rels   []*relation.Relation
	k      int
	d1, d2 int
	ys     []int32
	// yHeavyCount[i] = number of relations in which ys[i] has degree > Δ1.
	yHeavyCount []int8
	stop        func() bool // polled at block boundaries; nil = never stop
}

func newStarCtx(rels []*relation.Relation, d1, d2 int) *starCtx {
	c := &starCtx{rels: rels, k: len(rels), d1: d1, d2: d2}
	c.ys = relation.CommonYs(rels...)
	c.yHeavyCount = make([]int8, len(c.ys))
	for i, y := range c.ys {
		for _, r := range rels {
			if len(r.ByY().Lookup(y)) > d1 {
				c.yHeavyCount[i]++
			}
		}
	}
	return c
}

// heavyX reports whether value x is heavy (degree > Δ2) in relation j.
func (c *starCtx) heavyX(j int, x int32) bool {
	return len(c.rels[j].ByX().Lookup(x)) > c.d2
}

// enumerateLight visits every projected tuple that has a witness with at
// least one non-all-heavy tuple — steps (1) and (2) of the Section-3.2
// algorithm. emit receives a reused buffer, plus the chunk's scratch so
// consumers can pack keys without allocating.
func (c *starCtx) enumerateLight(workers int, emit func(sc *starScratch, xs []int32)) {
	par.ForChunks(len(c.ys), workers, func(lo, hi int) {
		sc := getStarScratch(c.k)
		defer putStarScratch(sc)
		xs := sc.xs
		lists := make([][]int32, c.k)
		lightPart := make([][]int32, c.k)
		heavyPart := make([][]int32, c.k)
		lightBuf := make([][]int32, c.k)
		heavyBuf := make([][]int32, c.k)
		for i := lo; i < hi; i++ {
			if c.stop != nil && i&63 == 0 && c.stop() {
				return
			}
			y := c.ys[i]
			ok := true
			for j, r := range c.rels {
				lists[j] = r.ByY().Lookup(y)
				if len(lists[j]) == 0 {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			if c.yHeavyCount[i] < 2 {
				// No tuple at this y can be all-heavy (Rj⁺ needs a heavy y
				// in some other relation), so enumerate the full product.
				crossEmit(lists, xs, 0, func() { emit(sc, xs) })
				continue
			}
			// Split each list into light and heavy x values; enumerate all
			// combinations except heavy×heavy×...×heavy, which the matrix
			// step covers.
			for j := range c.rels {
				lightBuf[j] = lightBuf[j][:0]
				heavyBuf[j] = heavyBuf[j][:0]
				for _, x := range lists[j] {
					if c.heavyX(j, x) {
						heavyBuf[j] = append(heavyBuf[j], x)
					} else {
						lightBuf[j] = append(lightBuf[j], x)
					}
				}
				lightPart[j] = lightBuf[j]
				heavyPart[j] = heavyBuf[j]
			}
			// First-light-position decomposition: position p takes heavy
			// values before p, light at p, anything after p. Each
			// not-all-heavy combination is produced exactly once.
			for p := 0; p < c.k; p++ {
				if len(lightPart[p]) == 0 {
					continue
				}
				crossSegmented(heavyPart, lightPart, lists, xs, 0, p, func() { emit(sc, xs) })
			}
		}
	})
}

func crossEmit(lists [][]int32, xs []int32, depth int, f func()) {
	if depth == len(lists) {
		f()
		return
	}
	for _, v := range lists[depth] {
		xs[depth] = v
		crossEmit(lists, xs, depth+1, f)
	}
}

// crossSegmented enumerates heavy[0..p-1] × light[p] × full[p+1..k-1].
func crossSegmented(heavy, light, full [][]int32, xs []int32, depth, p int, f func()) {
	if depth == len(full) {
		f()
		return
	}
	var seg []int32
	switch {
	case depth < p:
		seg = heavy[depth]
	case depth == p:
		seg = light[depth]
	default:
		seg = full[depth]
	}
	if len(seg) == 0 {
		return
	}
	for _, v := range seg {
		xs[depth] = v
		crossSegmented(heavy, light, full, xs, depth+1, p, f)
	}
}

// buildGroupMatrix materializes the Section-3.2 matrix for relations
// [jlo, jhi): rows are distinct tuples of heavy x values co-occurring under
// some eligible heavy y, columns are those y values.
func (c *starCtx) buildGroupMatrix(jlo, jhi int, yCols map[int32]int) (rows [][]int32, bm *matrix.BitMatrix) {
	rowID := make(map[string]int)
	type cell struct{ row, col int }
	var cells []cell
	xs := make([]int32, jhi-jlo)
	heavyLists := make([][]int32, jhi-jlo)
	var key []byte
	for y, col := range yCols {
		ok := true
		for j := jlo; j < jhi; j++ {
			list := c.rels[j].ByY().Lookup(y)
			var hv []int32
			for _, x := range list {
				if c.heavyX(j, x) {
					hv = append(hv, x)
				}
			}
			if len(hv) == 0 {
				ok = false
				break
			}
			heavyLists[j-jlo] = hv
		}
		if !ok {
			continue
		}
		crossEmit(heavyLists, xs, 0, func() {
			key = packTuple(key, xs)
			id, seen := rowID[string(key)]
			if !seen {
				id = len(rows)
				rowID[string(key)] = id
				cp := make([]int32, len(xs))
				copy(cp, xs)
				rows = append(rows, cp)
			}
			cells = append(cells, cell{id, col})
		})
	}
	bm = matrix.NewBitMatrix(len(rows), len(yCols))
	for _, cl := range cells {
		bm.Set(cl.row, cl.col)
	}
	return rows, bm
}

// runStar evaluates Q★k with the MM (useMM=true) or combinatorial strategy
// and streams each distinct projected tuple to emit (called from multiple
// goroutines; the tuple slice is owned by the callee).
func (c *starCtx) runStar(workers int, useMM bool, emit func(xs []int32)) {
	dedup := newTupleSet()
	keyed := func(sc *starScratch, xs []int32) {
		// The scratch's key buffer is reused across every tuple the worker
		// produces; only genuinely new tuples allocate (the emitted copy).
		sc.key = packTuple(sc.key, xs)
		if dedup.insert(sc.key) {
			cp := make([]int32, len(xs))
			copy(cp, xs)
			emit(cp)
		}
	}
	if !useMM {
		// Combinatorial baseline: enumerate the full join and deduplicate.
		par.ForChunks(len(c.ys), workers, func(lo, hi int) {
			sc := getStarScratch(c.k)
			defer putStarScratch(sc)
			xs := sc.xs
			lists := make([][]int32, c.k)
			for i := lo; i < hi; i++ {
				if c.stop != nil && i&63 == 0 && c.stop() {
					return
				}
				y := c.ys[i]
				ok := true
				for j, r := range c.rels {
					lists[j] = r.ByY().Lookup(y)
					if len(lists[j]) == 0 {
						ok = false
						break
					}
				}
				if ok {
					crossEmit(lists, xs, 0, func() { keyed(sc, xs) })
				}
			}
		})
		return
	}
	// Step 1+2: everything with a light component.
	c.enumerateLight(workers, keyed)
	// Step 3: all-heavy tuples via the grouped matrix product V × Wᵀ.
	yCols := make(map[int32]int)
	for i, y := range c.ys {
		if c.yHeavyCount[i] >= 2 {
			yCols[y] = len(yCols)
		}
	}
	if len(yCols) == 0 {
		return
	}
	g := (c.k + 1) / 2
	rowsA, va := c.buildGroupMatrix(0, g, yCols)
	if len(rowsA) == 0 {
		return
	}
	rowsB, wb := c.buildGroupMatrix(g, c.k, yCols)
	if len(rowsB) == 0 {
		return
	}
	matrix.ForEachRowProductStop(va, wb, workers, c.stop, func(i int, counts []int32) {
		sc := getStarScratch(c.k)
		xs := sc.xs
		for j, n := range counts {
			if n == 0 {
				continue
			}
			copy(xs, rowsA[i])
			copy(xs[g:], rowsB[j])
			keyed(sc, xs)
		}
		putStarScratch(sc)
	})
}

// StarMM evaluates the projected star query π_{x1..xk}(R1 ⋈ ... ⋈ Rk) with
// the Section-3.2 algorithm and returns the distinct output tuples.
func StarMM(rels []*relation.Relation, opt Options) [][]int32 {
	if len(rels) == 0 {
		return nil
	}
	if opt.Delta1 <= 0 || opt.Delta2 <= 0 {
		d1, d2 := HeuristicStarThresholds(rels, len(rels))
		if opt.Delta1 <= 0 {
			opt.Delta1 = d1
		}
		if opt.Delta2 <= 0 {
			opt.Delta2 = d2
		}
	}
	c := newStarCtx(rels, opt.Delta1, opt.Delta2)
	c.stop = opt.Stop
	var mu sync.Mutex
	var out [][]int32
	c.runStar(opt.Workers, true, func(xs []int32) {
		mu.Lock()
		out = append(out, xs)
		mu.Unlock()
	})
	return out
}

// StarNonMM is the combinatorial baseline: full WCOJ enumeration of the star
// join followed by deduplication (the plan Lemma 2 underlies, without the
// matrix step).
func StarNonMM(rels []*relation.Relation, opt Options) [][]int32 {
	if len(rels) == 0 {
		return nil
	}
	if opt.Delta1 <= 0 || opt.Delta2 <= 0 {
		opt.Delta1, opt.Delta2 = 1, 1
	}
	c := newStarCtx(rels, opt.Delta1, opt.Delta2)
	c.stop = opt.Stop
	var mu sync.Mutex
	var out [][]int32
	c.runStar(opt.Workers, false, func(xs []int32) {
		mu.Lock()
		out = append(out, xs)
		mu.Unlock()
	})
	return out
}

// TupleCount is one projected star tuple with its witness count
// |{y : (xs[i], y) ∈ Ri ∀i}|.
type TupleCount struct {
	Xs    []int32
	Count int32
}

// StarMMCounts evaluates the star query with exact witness counts: the
// light categories contribute one witness per enumerated (y, tuple)
// combination, and the grouped matrix product contributes the count of
// shared heavy-eligible y values — the same witness-space partition
// argument as the 2-path counting variant.
func StarMMCounts(rels []*relation.Relation, opt Options) []TupleCount {
	if len(rels) == 0 {
		return nil
	}
	if opt.Delta1 <= 0 || opt.Delta2 <= 0 {
		d1, d2 := HeuristicStarThresholds(rels, len(rels))
		if opt.Delta1 <= 0 {
			opt.Delta1 = d1
		}
		if opt.Delta2 <= 0 {
			opt.Delta2 = d2
		}
	}
	c := newStarCtx(rels, opt.Delta1, opt.Delta2)
	c.stop = opt.Stop
	counts := make(map[string]int32)
	var mu sync.Mutex
	add := func(key []byte, n int32) {
		mu.Lock()
		counts[string(key)] += n
		mu.Unlock()
	}
	// Light categories: every enumerated combination is one witness.
	c.enumerateLight(opt.Workers, func(sc *starScratch, xs []int32) {
		sc.key = packTuple(sc.key, xs)
		add(sc.key, 1)
	})
	// All-heavy witnesses via the grouped matrix product.
	yCols := make(map[int32]int)
	for i, y := range c.ys {
		if c.yHeavyCount[i] >= 2 {
			yCols[y] = len(yCols)
		}
	}
	if len(yCols) > 0 {
		g := (c.k + 1) / 2
		rowsA, va := c.buildGroupMatrix(0, g, yCols)
		if len(rowsA) > 0 {
			rowsB, wb := c.buildGroupMatrix(g, c.k, yCols)
			if len(rowsB) > 0 {
				matrix.ForEachRowProductStop(va, wb, opt.Workers, opt.Stop, func(i int, cnts []int32) {
					sc := getStarScratch(c.k)
					xs := sc.xs
					for j, n := range cnts {
						if n == 0 {
							continue
						}
						copy(xs, rowsA[i])
						copy(xs[g:], rowsB[j])
						sc.key = packTuple(sc.key, xs)
						add(sc.key, n)
					}
					putStarScratch(sc)
				})
			}
		}
	}
	out := make([]TupleCount, 0, len(counts))
	for key, n := range counts {
		xs := make([]int32, c.k)
		for i := range xs {
			b := []byte(key[4*i : 4*i+4])
			xs[i] = int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
		}
		out = append(out, TupleCount{Xs: xs, Count: n})
	}
	return out
}

// StarMMSize returns the number of distinct projected star tuples without
// collecting them.
func StarMMSize(rels []*relation.Relation, opt Options) int64 {
	if len(rels) == 0 {
		return 0
	}
	if opt.Delta1 <= 0 || opt.Delta2 <= 0 {
		d1, d2 := HeuristicStarThresholds(rels, len(rels))
		if opt.Delta1 <= 0 {
			opt.Delta1 = d1
		}
		if opt.Delta2 <= 0 {
			opt.Delta2 = d2
		}
	}
	c := newStarCtx(rels, opt.Delta1, opt.Delta2)
	c.stop = opt.Stop
	var n int64
	var mu sync.Mutex
	c.runStar(opt.Workers, true, func(xs []int32) {
		mu.Lock()
		n++
		mu.Unlock()
	})
	return n
}
