package catalog

import (
	"container/list"
)

// Sorted-result cache: pagination serves tuples in canonical sorted order,
// and before this cache every page request re-evaluated and re-sorted the
// full result. Entries are keyed exactly like compiled plans — (canonical
// query text, version signature of the referenced relations) — so a
// limit/cursor page sequence over an unchanged catalog hits the same sorted
// slice, and any effective mutation of a referenced relation changes the
// signature, invalidating precisely the results it could have changed.

// DefaultResultCacheEntries is the sorted-result cache's entry capacity.
const DefaultResultCacheEntries = 64

// MaxCachedResultRows bounds the aggregate rows the sorted-result cache may
// pin across all entries; a single result above the whole budget is served
// but never cached.
const MaxCachedResultRows = 1 << 20

// SortedResult is one cached (or freshly computed) sorted query result.
type SortedResult struct {
	// Columns are the head labels.
	Columns []string
	// Tuples are the distinct result tuples in canonical sorted order.
	// Shared — callers must not modify.
	Tuples [][]int64
	// Plan is the rendered plan of the evaluation that produced the result.
	Plan string
	// PlanCached reports whether that evaluation hit the plan cache.
	PlanCached bool
	// Cached reports whether this result itself came from the cache (the
	// page was served without re-evaluating or re-sorting).
	Cached bool
}

// CachedSortedResult returns the cached sorted result for (text, sig), if
// any. The returned result has Cached set.
func (c *Catalog) CachedSortedResult(text, sig string) (SortedResult, bool) {
	c.resultMu.Lock()
	defer c.resultMu.Unlock()
	if r, ok := c.results.get(planKey{text: text, sig: sig}); ok {
		c.resultHits++
		r.Cached = true
		return r, true
	}
	c.resultMisses++
	return SortedResult{}, false
}

// StoreSortedResult caches one sorted result under (text, sig).
func (c *Catalog) StoreSortedResult(text, sig string, r SortedResult) {
	c.resultMu.Lock()
	defer c.resultMu.Unlock()
	r.Cached = false
	c.results.put(planKey{text: text, sig: sig}, r)
}

// ResultCacheStats returns sorted-result cache hit/miss counters and size.
func (c *Catalog) ResultCacheStats() (hits, misses uint64, size int) {
	c.resultMu.Lock()
	defer c.resultMu.Unlock()
	return c.resultHits, c.resultMisses, c.results.order.Len()
}

// resultLRU is a minimal LRU over sorted results, bounded by entry count
// and aggregate row weight. Not safe for concurrent use; the catalog
// serializes access.
type resultLRU struct {
	cap     int
	weight  int
	order   *list.List // front = most recent; values are *resultEntry
	entries map[planKey]*list.Element
}

type resultEntry struct {
	key    planKey
	res    SortedResult
	weight int
}

func newResultLRU(capacity int) *resultLRU {
	return &resultLRU{cap: capacity, order: list.New(), entries: map[planKey]*list.Element{}}
}

func (l *resultLRU) get(key planKey) (SortedResult, bool) {
	el, ok := l.entries[key]
	if !ok {
		return SortedResult{}, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*resultEntry).res, true
}

func (l *resultLRU) put(key planKey, r SortedResult) {
	w := len(r.Tuples)
	if l.cap <= 0 || w > MaxCachedResultRows {
		return
	}
	if el, ok := l.entries[key]; ok {
		e := el.Value.(*resultEntry)
		l.weight += w - e.weight
		e.res, e.weight = r, w
		l.order.MoveToFront(el)
	} else {
		l.entries[key] = l.order.PushFront(&resultEntry{key: key, res: r, weight: w})
		l.weight += w
	}
	for l.order.Len() > l.cap || l.weight > MaxCachedResultRows {
		back := l.order.Back()
		e := back.Value.(*resultEntry)
		l.order.Remove(back)
		delete(l.entries, e.key)
		l.weight -= e.weight
	}
}
