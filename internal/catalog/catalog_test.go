package catalog

import (
	"context"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/relation"
)

func pairs(ps ...[2]int32) []relation.Pair {
	out := make([]relation.Pair, len(ps))
	for i, p := range ps {
		out[i] = relation.Pair{X: p[0], Y: p[1]}
	}
	return out
}

func TestRegisterGetDropEpoch(t *testing.T) {
	c := New()
	if _, ok := c.Get("R"); ok {
		t.Fatal("unexpected relation")
	}
	e0 := c.Epoch()
	if _, err := c.RegisterPairs("R", pairs([2]int32{1, 2})); err != nil {
		t.Fatal(err)
	}
	if c.Epoch() == e0 {
		t.Fatal("epoch should advance on register")
	}
	if r, ok := c.Get("R"); !ok || r.Size() != 1 {
		t.Fatal("missing R")
	}
	if got := c.List(); len(got) != 1 || got[0].Name != "R" {
		t.Fatalf("List = %v", got)
	}
	if ok, err := c.Drop("R"); !ok || err != nil {
		t.Fatalf("drop semantics: ok=%v err=%v", ok, err)
	}
	if ok, err := c.Drop("R"); ok || err != nil {
		t.Fatalf("double drop semantics: ok=%v err=%v", ok, err)
	}
	if err := c.Register("", relation.FromPairs("x", nil)); err == nil {
		t.Fatal("empty name should error")
	}
}

func TestLoadFiles(t *testing.T) {
	dir := t.TempDir()
	specs := map[string]string{}
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("R%d", i)
		path := filepath.Join(dir, name+".rel")
		r := relation.FromPairs(name, pairs([2]int32{int32(i), int32(i + 1)}))
		if err := r.Save(path); err != nil {
			t.Fatal(err)
		}
		specs[name] = path
	}
	c := New()
	if err := c.LoadFiles(specs); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if err := c.LoadFiles(map[string]string{"bad": filepath.Join(dir, "missing.rel")}); err == nil {
		t.Fatal("expected load error")
	}
}

func TestPlanCacheHitAndEpochInvalidation(t *testing.T) {
	c := New()
	if _, err := c.RegisterPairs("R", pairs([2]int32{1, 10}, [2]int32{10, 5})); err != nil {
		t.Fatal(err)
	}
	src := "Q(a, c) :- R(a, b), R(b, c)"
	if _, hit, err := c.Prepare(src); err != nil || hit {
		t.Fatalf("first prepare: hit=%v err=%v", hit, err)
	}
	// Same text (even non-canonical spelling) hits the cache.
	if _, hit, err := c.Prepare("Q(a , c) :- R(a,b), R(b,c)"); err != nil || !hit {
		t.Fatalf("second prepare: hit=%v err=%v", hit, err)
	}
	hits, misses, size := c.CacheStats()
	if hits != 1 || misses != 1 || size != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, size)
	}
	// Registering an unrelated relation bumps the epoch but must NOT evict
	// the still-valid plan over R: cache keys are per-relation versions.
	if _, err := c.RegisterPairs("S", pairs([2]int32{5, 9})); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.Prepare(src); !hit {
		t.Fatal("mutating an untouched relation must not evict the cached plan")
	}
	// Mutating R itself invalidates it.
	if _, err := c.InsertPairs("R", pairs([2]int32{2, 10})); err != nil {
		t.Fatal(err)
	}
	if _, hit, _ := c.Prepare(src); hit {
		t.Fatal("mutating a referenced relation must invalidate the cached plan")
	}
}

// TestMutateDeltasAndCoalescing covers the tuple-level mutation API: effective
// deltas, batch coalescing, version bumps and subscriber ordering.
func TestMutateDeltasAndCoalescing(t *testing.T) {
	c := New()
	var seen []Mutation
	c.Subscribe(func(m Mutation) { seen = append(seen, m) })
	if _, err := c.RegisterPairs("R", pairs([2]int32{1, 2}, [2]int32{3, 4})); err != nil {
		t.Fatal(err)
	}
	v1 := c.Version("R")
	if v1 == 0 {
		t.Fatal("version should advance on register")
	}

	// Insert one new + one already-present tuple: delta keeps only the new one.
	m, err := c.InsertPairs("R", pairs([2]int32{1, 2}, [2]int32{5, 6}, [2]int32{5, 6}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Added) != 1 || m.Added[0] != (relation.Pair{X: 5, Y: 6}) || len(m.Removed) != 0 {
		t.Fatalf("insert delta = %+v", m)
	}
	if m.Version != v1+1 || c.Version("R") != v1+1 {
		t.Fatalf("version = %d, want %d", m.Version, v1+1)
	}
	if r, _ := c.Get("R"); r.Size() != 3 || !r.Contains(5, 6) {
		t.Fatalf("R not updated: %v", r.Stats())
	}

	// Delete one present + one absent tuple.
	m, err = c.DeletePairs("R", pairs([2]int32{3, 4}, [2]int32{9, 9}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Removed) != 1 || m.Removed[0] != (relation.Pair{X: 3, Y: 4}) || len(m.Added) != 0 {
		t.Fatalf("delete delta = %+v", m)
	}

	// Insert+delete of the same absent tuple in one batch nets out entirely.
	e0 := c.Epoch()
	m, err = c.Mutate("R", pairs([2]int32{7, 7}), pairs([2]int32{7, 7}))
	if err != nil {
		t.Fatal(err)
	}
	if !m.Empty() {
		t.Fatalf("coalesced batch should be empty: %+v", m)
	}
	if c.Epoch() != e0 {
		t.Fatal("no-op mutation must not bump the epoch")
	}

	// Insert+delete of a present tuple: delete wins.
	m, err = c.Mutate("R", pairs([2]int32{1, 2}), pairs([2]int32{1, 2}))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Removed) != 1 || len(m.Added) != 0 {
		t.Fatalf("delete-wins batch delta = %+v", m)
	}
	if r, _ := c.Get("R"); r.Contains(1, 2) {
		t.Fatal("tuple should be net-deleted")
	}

	if _, err := c.Mutate("missing", nil, nil); err == nil {
		t.Fatal("mutating an unknown relation should error")
	}

	// Subscribers saw every effective change in order: register + 3 mutations.
	if len(seen) != 4 {
		t.Fatalf("subscriber saw %d mutations, want 4", len(seen))
	}
	if !seen[0].Reset || seen[0].Name != "R" {
		t.Fatalf("first mutation should be the register reset: %+v", seen[0])
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Version <= seen[i-1].Version {
			t.Fatalf("mutation versions not monotonic: %d then %d", seen[i-1].Version, seen[i].Version)
		}
	}
}

func TestLRUEviction(t *testing.T) {
	c := NewWithCacheSize(2)
	if _, err := c.RegisterPairs("R", pairs([2]int32{1, 2})); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := c.Prepare(fmt.Sprintf("Q%d(x) :- R(x, y)", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, size := c.CacheStats(); size != 2 {
		t.Fatalf("size = %d, want 2", size)
	}
	// Oldest (Q0) evicted, Q2 retained.
	if _, hit, _ := c.Prepare("Q2(x) :- R(x, y)"); !hit {
		t.Fatal("Q2 should be cached")
	}
	if _, hit, _ := c.Prepare("Q0(x) :- R(x, y)"); hit {
		t.Fatal("Q0 should have been evicted")
	}
}

// TestConcurrentUse exercises registration, lookup and prepared execution
// from many goroutines; run with -race.
func TestConcurrentUse(t *testing.T) {
	c := New()
	if _, err := c.RegisterPairs("R", pairs([2]int32{1, 10}, [2]int32{2, 10}, [2]int32{10, 5})); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				switch g % 3 {
				case 0:
					name := fmt.Sprintf("T%d", g)
					if _, err := c.RegisterPairs(name, pairs([2]int32{int32(i), 10})); err != nil {
						t.Error(err)
						return
					}
					c.Get(name)
				case 1:
					c.List()
					c.Epoch()
				default:
					p, _, err := c.Prepare("Q(a, c) :- R(a, b), R(b, c)")
					if err != nil {
						t.Error(err)
						return
					}
					if _, err := p.Execute(context.Background(), query.ExecOptions{Workers: 2}); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestCyclicPlansCachedAndWeightBounded covers the PR-3 cache interaction:
// cyclic plans carry compile-time materialized bag rows, are cached like any
// plan while small, and the LRU evicts by aggregate weight, never holding
// more than MaxCachedMaterializedRows bag rows in total.
func TestCyclicPlansCachedAndWeightBounded(t *testing.T) {
	c := New()
	if _, err := c.RegisterPairs("R", pairs([2]int32{1, 2}, [2]int32{2, 3}, [2]int32{3, 1})); err != nil {
		t.Fatal(err)
	}
	src := "Q(x, z) :- R(x, y), R(y, z), R(z, x)"
	p1, hit, err := c.Prepare(src)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if hit {
		t.Fatal("first Prepare must miss")
	}
	if p1.MaterializedRows() == 0 {
		t.Fatal("cyclic plan should report materialized bag rows")
	}
	if _, hit, _ := c.Prepare(src); !hit {
		t.Fatal("second Prepare of a small cyclic plan must hit the cache")
	}

	// The weight-bounded LRU: lighter entries evict older ones to stay
	// within the aggregate budget. planLRU weights come from
	// Prepared.MaterializedRows, so drive it with real compiled cyclic
	// plans: each distinct renaming of the triangle query materializes the
	// same 3 bag rows, so 5 insertions (weight 15) against a cap of 10
	// must evict the oldest entries.
	l := newPlanLRU(100)
	l.weightCap = 10
	mk := func(i int) planKey {
		return planKey{text: fmt.Sprintf("Q(a%d, c%d) :- R(a%d, b%d), R(b%d, c%d), R(c%d, a%d)",
			i, i, i, i, i, i, i, i)}
	}
	for i := 0; i < 5; i++ {
		key := mk(i)
		p, _, err := c.Prepare(key.text)
		if err != nil {
			t.Fatalf("Prepare(%s): %v", key.text, err)
		}
		if w := p.MaterializedRows(); w != 3 {
			t.Fatalf("triangle plan weight = %d; want 3", w)
		}
		l.put(key, p)
	}
	if l.weight > l.weightCap {
		t.Fatalf("cache weight %d exceeds cap %d", l.weight, l.weightCap)
	}
	if l.len() != 3 {
		t.Fatalf("cached entries = %d; want 3 (two evicted by weight)", l.len())
	}
	if l.get(mk(0)) != nil || l.get(mk(1)) != nil {
		t.Fatal("oldest entries should have been evicted by aggregate weight")
	}
	if l.get(mk(4)) == nil {
		t.Fatal("most recent entry should remain cached")
	}
}
