package catalog

import "repro/internal/obs"

// Catalog mutation counters: effective (coalesced) tuple deltas applied to
// base relations, the write-side twin of the query counters in core. The
// plan-cache stats keep living in CacheStats and are mirrored into the
// registry by the server at scrape time, so there is no double counting.
var (
	tuplesMutated = obs.Default().CounterVec(
		"joinmm_catalog_tuples_mutated_total",
		"Effective tuples applied to base relations by coalesced mutations.",
		"op")
	tuplesInserted = tuplesMutated.With("insert")
	tuplesDeleted  = tuplesMutated.With("delete")
)
