// Package catalog is the engine's relation namespace: a thread-safe registry
// of named, immutable relations, with concurrent bulk loading, a tuple-level
// mutation API that publishes coalesced deltas to subscribers (the view
// maintenance layer), and an LRU plan cache keyed on (query text, versions of
// the relations the query reads).
//
// Relations are immutable once registered, so readers never lock them;
// mutations (InsertPairs, DeletePairs, Mutate) build a new immutable relation
// and swap it in under a copy-on-write map, which lets Prepare compile a
// query against one consistent snapshot without holding any lock during the
// (potentially expensive) compile. Every mutation bumps the global epoch and
// the per-relation version. Cached plans embed relation pointers, so the
// cache key includes the version of every relation the query references —
// mutating R invalidates plans over R implicitly (their key no longer
// matches) while plans over untouched relations keep hitting.
package catalog

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/query"
	"repro/internal/relation"
)

// DefaultPlanCacheSize is the LRU capacity New uses.
const DefaultPlanCacheSize = 128

// ErrUnknownRelation marks a mutation of a relation that is not registered;
// callers distinguish it (errors.Is) from operational failures such as a
// durability-sink veto, which must not read as "not found".
var ErrUnknownRelation = errors.New("unknown relation")

// Info summarizes one registered relation for listings.
type Info struct {
	Name  string         `json:"name"`
	Stats relation.Stats `json:"stats"`
}

// Mutation describes one catalog change to relation Name, as published to
// subscribers. For tuple-level mutations (InsertPairs, DeletePairs, Mutate)
// Added and Removed carry the coalesced effective delta: duplicates are
// merged, inserts of already-present tuples and deletes of absent tuples are
// dropped, and a tuple both inserted and deleted in one batch nets out. For
// wholesale changes (Register, Drop) Reset is true and no delta is computed —
// consumers diff Old against New themselves if they need one.
type Mutation struct {
	// Name is the mutated relation.
	Name string
	// Added and Removed are the effective tuple delta (nil when Reset).
	Added, Removed []relation.Pair
	// Reset marks a wholesale replacement (Register) or removal (Drop).
	Reset bool
	// Old and New are the relation before and after; either may be nil when
	// the relation was absent on that side.
	Old, New *relation.Relation
	// Version is Name's new per-relation version.
	Version uint64
	// Epoch is the catalog epoch after the change.
	Epoch uint64
	// Origin, when non-nil on a Reset registration, identifies the file the
	// relation was loaded from — the durability sink may log the reference
	// instead of the full tuple image.
	Origin *FileOrigin
}

// FileOrigin identifies the source file of a LoadFile registration: enough
// for a durability sink to log a ~100-byte reference (and verify it on
// replay) instead of re-serializing the whole relation.
type FileOrigin struct {
	// Path is the absolute path the relation was read from.
	Path string
	// SHA256 is the digest of the file's bytes at load time.
	SHA256 [sha256.Size]byte
	// Tuples is the loaded relation's size, a cheap replay cross-check.
	Tuples uint64
}

// Empty reports whether the mutation changed nothing (fully coalesced away).
func (m Mutation) Empty() bool { return !m.Reset && len(m.Added) == 0 && len(m.Removed) == 0 }

// Persistence is the durability sink of the catalog: when set, every
// effective mutation is offered to the sink BEFORE it is applied and before
// subscribers run, all under the mutation lock — so the write-ahead log, the
// in-memory state and the registered views observe exactly the same mutation
// order. A sink error vetoes the mutation: the catalog stays unchanged and
// the caller gets the error, so nothing is ever acked that the log refused.
// The Mutation handed to the sink predates the apply, so its Version and
// Epoch fields are zero — replay regenerates them.
type Persistence interface {
	// LogMutation durably records one effective mutation (or rejects it).
	LogMutation(m Mutation) error
}

// Catalog is a concurrent name → relation registry with a plan cache.
type Catalog struct {
	mu    sync.RWMutex
	rels  map[string]*relation.Relation // copy-on-write: replaced wholesale on mutation
	vers  map[string]uint64             // per-relation versions (monotonic, survive drops)
	epoch uint64
	subs  []func(Mutation)

	// mutMu serializes whole mutations (delta computation + WAL append +
	// swap + subscriber notification), so the log and subscribers observe
	// mutations in the order they were applied.
	mutMu   sync.Mutex
	persist Persistence // nil: no durability sink attached

	cacheMu sync.Mutex
	cache   *planLRU
	hits    uint64
	misses  uint64

	resultMu     sync.Mutex
	results      *resultLRU
	resultHits   uint64
	resultMisses uint64
}

// New returns an empty catalog with the default plan-cache capacity.
func New() *Catalog { return NewWithCacheSize(DefaultPlanCacheSize) }

// NewWithCacheSize returns an empty catalog whose plan cache holds up to n
// compiled queries (n ≤ 0 disables caching).
func NewWithCacheSize(n int) *Catalog {
	return &Catalog{
		rels:    map[string]*relation.Relation{},
		vers:    map[string]uint64{},
		cache:   newPlanLRU(n),
		results: newResultLRU(DefaultResultCacheEntries),
	}
}

// SetPersistence attaches (or, with nil, detaches) the durability sink. It
// synchronizes with in-flight mutations, so recovery can replay the log
// sink-free and attach the sink before serving.
func (c *Catalog) SetPersistence(p Persistence) {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	c.persist = p
}

// Freeze runs fn while holding the mutation lock: no mutation (and, because
// view maintenance runs synchronously inside that lock, no view store
// change) can land while fn runs. The checkpointer uses it to capture one
// consistent (relations, view stores, WAL position) triple; fn must not
// mutate the catalog.
func (c *Catalog) Freeze(fn func()) {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	fn()
}

// logMutation offers m to the persistence sink. Callers hold mutMu.
func (c *Catalog) logMutation(m Mutation) error {
	if c.persist == nil {
		return nil
	}
	return c.persist.LogMutation(m)
}

// snapshot returns the current relation map and epoch. The map must not be
// mutated — mutators replace it wholesale.
func (c *Catalog) snapshot() (map[string]*relation.Relation, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels, c.epoch
}

// Snapshot returns one consistent view of the catalog: the relation map (not
// to be mutated), the per-relation versions, and the epoch. The view
// registry uses it to seed a new view without racing concurrent mutations.
func (c *Catalog) Snapshot() (rels map[string]*relation.Relation, vers map[string]uint64, epoch uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	vers = make(map[string]uint64, len(c.vers))
	for k, v := range c.vers {
		vers[k] = v
	}
	return c.rels, vers, c.epoch
}

// Subscribe registers fn to be called synchronously after every catalog
// change, in application order. Subscribers must not mutate the catalog from
// within the callback.
func (c *Catalog) Subscribe(fn func(Mutation)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.subs = append(c.subs, fn)
}

// mutate clones the relation map, applies fn, bumps the epoch and the
// versions of the named relations, and returns the new (version, epoch) of
// the first name.
func (c *Catalog) mutate(fn func(map[string]*relation.Relation), names ...string) (uint64, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]*relation.Relation, len(c.rels)+1)
	for k, v := range c.rels {
		next[k] = v
	}
	fn(next)
	c.rels = next
	c.epoch++
	var ver uint64
	for i, name := range names {
		c.vers[name]++
		if i == 0 {
			ver = c.vers[name]
		}
	}
	return ver, c.epoch
}

// notify delivers m to every subscriber. Callers hold mutMu, so deliveries
// are ordered; c.mu is not held.
func (c *Catalog) notify(m Mutation) {
	c.mu.RLock()
	subs := c.subs
	c.mu.RUnlock()
	for _, fn := range subs {
		fn(m)
	}
}

// Register binds name to r, replacing any existing binding. Subscribers see
// it as a Reset mutation (no tuple delta).
func (c *Catalog) Register(name string, r *relation.Relation) error {
	return c.registerOrigin(name, r, nil)
}

// registerOrigin is Register carrying an optional file origin for the
// durability sink.
func (c *Catalog) registerOrigin(name string, r *relation.Relation, origin *FileOrigin) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if r == nil {
		return fmt.Errorf("catalog: nil relation for %q", name)
	}
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	old, _ := c.Get(name)
	if err := c.logMutation(Mutation{Name: name, Reset: true, Old: old, New: r, Origin: origin}); err != nil {
		return fmt.Errorf("catalog: register %q: %w", name, err)
	}
	ver, epoch := c.mutate(func(m map[string]*relation.Relation) { m[name] = r }, name)
	c.notify(Mutation{Name: name, Reset: true, Old: old, New: r, Version: ver, Epoch: epoch, Origin: origin})
	return nil
}

// RegisterPairs builds an indexed relation from tuples and registers it.
func (c *Catalog) RegisterPairs(name string, pairs []relation.Pair) (*relation.Relation, error) {
	r := relation.FromPairs(name, pairs)
	if err := c.Register(name, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Drop removes name, reporting whether it was present. Subscribers see a
// Reset mutation with a nil New relation. With a persistence sink attached,
// a sink veto leaves the relation in place and returns the sink's error
// (present is true in that case: the relation still exists).
func (c *Catalog) Drop(name string) (present bool, err error) {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	old, present := c.Get(name)
	if !present {
		return false, nil
	}
	if err := c.logMutation(Mutation{Name: name, Reset: true, Old: old}); err != nil {
		return true, fmt.Errorf("catalog: drop %q: %w", name, err)
	}
	ver, epoch := c.mutate(func(m map[string]*relation.Relation) { delete(m, name) }, name)
	c.notify(Mutation{Name: name, Reset: true, Old: old, Version: ver, Epoch: epoch})
	return true, nil
}

// Mutate applies one coalesced tuple-level change to relation name: the new
// contents are (old ∪ insert) \ delete — a tuple appearing in both slices is
// net-deleted if it was present and a no-op otherwise. The returned Mutation
// carries the effective delta; a fully coalesced-away batch leaves the
// catalog (and its epoch) untouched. Subscribers are notified synchronously
// in mutation order, which is how registered views stay fresh.
func (c *Catalog) Mutate(name string, insert, del []relation.Pair) (Mutation, error) {
	c.mutMu.Lock()
	defer c.mutMu.Unlock()
	old, ok := c.Get(name)
	if !ok {
		return Mutation{}, fmt.Errorf("catalog: mutate %q: %w", name, ErrUnknownRelation)
	}
	delSet := make(map[relation.Pair]struct{}, len(del))
	var added, removed []relation.Pair
	for _, p := range del {
		if _, dup := delSet[p]; dup {
			continue
		}
		delSet[p] = struct{}{}
		if old.Contains(p.X, p.Y) {
			removed = append(removed, p)
		}
	}
	insSeen := make(map[relation.Pair]struct{}, len(insert))
	for _, p := range insert {
		if _, dup := insSeen[p]; dup {
			continue
		}
		insSeen[p] = struct{}{}
		if _, gone := delSet[p]; gone {
			continue // delete wins within one batch: new = (old ∪ ins) \ del
		}
		if !old.Contains(p.X, p.Y) {
			added = append(added, p)
		}
	}
	if len(added) == 0 && len(removed) == 0 {
		c.mu.RLock()
		ver, epoch := c.vers[name], c.epoch
		c.mu.RUnlock()
		return Mutation{Name: name, Old: old, New: old, Version: ver, Epoch: epoch}, nil
	}
	if err := c.logMutation(Mutation{Name: name, Added: added, Removed: removed, Old: old}); err != nil {
		return Mutation{}, fmt.Errorf("catalog: mutate %q: %w", name, err)
	}
	tuplesInserted.Add(uint64(len(added)))
	tuplesDeleted.Add(uint64(len(removed)))
	// Linear-merge rebuild: O(N + Δ log Δ), no full re-sort.
	next := relation.ApplyDelta(old, name, added, removed)
	ver, epoch := c.mutate(func(m map[string]*relation.Relation) { m[name] = next }, name)
	mut := Mutation{
		Name: name, Added: added, Removed: removed,
		Old: old, New: next, Version: ver, Epoch: epoch,
	}
	c.notify(mut)
	return mut, nil
}

// InsertPairs adds tuples to relation name, returning the effective
// (coalesced) mutation.
func (c *Catalog) InsertPairs(name string, pairs []relation.Pair) (Mutation, error) {
	return c.Mutate(name, pairs, nil)
}

// DeletePairs removes tuples from relation name, returning the effective
// (coalesced) mutation.
func (c *Catalog) DeletePairs(name string, pairs []relation.Pair) (Mutation, error) {
	return c.Mutate(name, nil, pairs)
}

// Version returns name's per-relation version: 0 until first registered,
// bumped by every Register, Drop, and effective tuple mutation. Plan-cache
// keys are built from the versions of the relations a query reads.
func (c *Catalog) Version(name string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.vers[name]
}

// Get returns the relation bound to name.
func (c *Catalog) Get(name string) (*relation.Relation, bool) {
	m, _ := c.snapshot()
	r, ok := m[name]
	return r, ok
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	m, _ := c.snapshot()
	return len(m)
}

// Epoch returns the catalog's statistics epoch; it changes on every
// registration or drop.
func (c *Catalog) Epoch() uint64 {
	_, e := c.snapshot()
	return e
}

// List returns Table-2 style stats for every relation, sorted by name.
func (c *Catalog) List() []Info {
	m, _ := c.snapshot()
	out := make([]Info, 0, len(m))
	for name, r := range m {
		out = append(out, Info{Name: name, Stats: r.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LoadFile reads a relation from a file written by (*Relation).Save and
// registers it under name, returning the loaded relation. The registration
// carries the file's absolute path, SHA-256 and tuple count as its origin,
// so a durability sink can log the ~100-byte reference instead of the full
// tuple image (replay re-reads the file and verifies the digest).
func (c *Catalog) LoadFile(name, path string) (*relation.Relation, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", name, err)
	}
	r, err := relation.ReadFrom(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %s: %w", name, path, err)
	}
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	origin := &FileOrigin{Path: abs, SHA256: sha256.Sum256(data), Tuples: uint64(r.Size())}
	if err := c.registerOrigin(name, r, origin); err != nil {
		return nil, err
	}
	return r, nil
}

// LoadFiles loads several name → path specs concurrently; the catalog epoch
// advances once per successful registration. The first error wins, but every
// load is attempted.
func (c *Catalog) LoadFiles(specs map[string]string) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for name, path := range specs {
		wg.Add(1)
		go func(name, path string) {
			defer wg.Done()
			if _, err := c.LoadFile(name, path); err != nil {
				errs <- err
			}
		}(name, path)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// MaxCachedMaterializedRows bounds the compile-time bag rows the plan cache
// may pin in aggregate, across all cached plans: cyclic queries materialize
// their decomposition bags during compilation, and an LRU bounded only by
// entry count would otherwise hold unbounded memory. When inserting a plan
// would exceed the budget, least-recently-used entries are evicted first; a
// single plan above the whole budget is never cached (it still runs — it is
// just recompiled per request).
const MaxCachedMaterializedRows = 1 << 20

// Prepare compiles query text against the current catalog snapshot, serving
// repeats from the LRU plan cache. The second result reports a cache hit.
func (c *Catalog) Prepare(src string) (*query.Prepared, bool, error) {
	return c.PrepareContext(context.Background(), src)
}

// PrepareContext is Prepare with cancellation: compiling a cyclic query
// materializes decomposition bags, so the context deadline applies to
// compilation too, not just execution.
func (c *Catalog) PrepareContext(ctx context.Context, src string) (*query.Prepared, bool, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, false, err
	}
	c.mu.RLock()
	snap := c.rels
	sig := versionSignature(q, c.vers)
	c.mu.RUnlock()
	key := planKey{text: q.String(), sig: sig}
	if p := c.cacheGet(key); p != nil {
		return p, true, nil
	}
	p, err := query.CompileContext(ctx, q, query.MapResolver(snap))
	if err != nil {
		return nil, false, err
	}
	c.cachePut(key, p)
	return p, false, nil
}

// Signature renders the version signature of the relations q references
// against the current catalog — the same key component the plan cache uses.
// Any effective mutation of a referenced relation changes the signature, so
// caches keyed on (canonical text, signature) are implicitly invalidated by
// exactly the mutations that could change the result.
func (c *Catalog) Signature(q *query.Query) string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return versionSignature(q, c.vers)
}

// versionSignature renders the versions of the relations q references, e.g.
// "R@3\x00S@7". Only those versions participate in the plan-cache key, so
// mutating an unrelated relation never evicts a still-valid prepared plan.
func versionSignature(q *query.Query, vers map[string]uint64) string {
	names := make([]string, 0, len(q.Atoms))
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			names = append(names, a.Rel)
		}
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(n)
		b.WriteByte('@')
		b.WriteString(strconv.FormatUint(vers[n], 10))
	}
	return b.String()
}

// CacheStats returns plan-cache hit/miss counters and current size.
func (c *Catalog) CacheStats() (hits, misses uint64, size int) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	return c.hits, c.misses, c.cache.len()
}

func (c *Catalog) cacheGet(key planKey) *query.Prepared {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if p := c.cache.get(key); p != nil {
		c.hits++
		return p
	}
	c.misses++
	return nil
}

func (c *Catalog) cachePut(key planKey, p *query.Prepared) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	c.cache.put(key, p)
}

// planKey identifies one cached plan: canonical query text plus the version
// signature of the relations it reads. Mutating any referenced relation
// changes the signature, so stale plans are implicitly invalidated (they age
// out of the LRU) while plans over untouched relations keep hitting.
type planKey struct {
	text string
	sig  string
}

// planLRU is a minimal LRU over compiled plans, bounded both by entry count
// and by the aggregate weight (materialized bag rows) the entries pin. Not
// safe for concurrent use; the catalog serializes access.
type planLRU struct {
	cap       int
	weightCap int
	weight    int        // total weight of cached entries
	order     *list.List // front = most recent; values are *lruEntry
	entries   map[planKey]*list.Element
}

type lruEntry struct {
	key    planKey
	p      *query.Prepared
	weight int
}

func newPlanLRU(capacity int) *planLRU {
	return &planLRU{
		cap: capacity, weightCap: MaxCachedMaterializedRows,
		order: list.New(), entries: map[planKey]*list.Element{},
	}
}

func (l *planLRU) len() int { return l.order.Len() }

func (l *planLRU) get(key planKey) *query.Prepared {
	el, ok := l.entries[key]
	if !ok {
		return nil
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).p
}

func (l *planLRU) put(key planKey, p *query.Prepared) {
	w := p.MaterializedRows()
	if l.cap <= 0 || w > l.weightCap {
		return
	}
	if el, ok := l.entries[key]; ok {
		e := el.Value.(*lruEntry)
		l.weight += w - e.weight
		e.p, e.weight = p, w
		l.order.MoveToFront(el)
	} else {
		l.entries[key] = l.order.PushFront(&lruEntry{key: key, p: p, weight: w})
		l.weight += w
	}
	for l.order.Len() > l.cap || l.weight > l.weightCap {
		back := l.order.Back()
		e := back.Value.(*lruEntry)
		l.order.Remove(back)
		delete(l.entries, e.key)
		l.weight -= e.weight
	}
}
