// Package catalog is the engine's relation namespace: a thread-safe registry
// of named, immutable relations, with concurrent bulk loading and an LRU
// plan cache keyed on (query text, catalog epoch).
//
// Relations are immutable once registered, so readers never lock them; the
// catalog itself uses a copy-on-write map, which lets Prepare compile a
// query against one consistent snapshot without holding any lock during the
// (potentially expensive) compile. Every mutation bumps the epoch, which
// invalidates cached plans implicitly: a plan compiled at epoch e embeds
// epoch-e relation pointers, so the cache key includes e and stale entries
// simply age out of the LRU.
package catalog

import (
	"container/list"
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/query"
	"repro/internal/relation"
)

// DefaultPlanCacheSize is the LRU capacity New uses.
const DefaultPlanCacheSize = 128

// Info summarizes one registered relation for listings.
type Info struct {
	Name  string         `json:"name"`
	Stats relation.Stats `json:"stats"`
}

// Catalog is a concurrent name → relation registry with a plan cache.
type Catalog struct {
	mu    sync.RWMutex
	rels  map[string]*relation.Relation // copy-on-write: replaced wholesale on mutation
	epoch uint64

	cacheMu sync.Mutex
	cache   *planLRU
	hits    uint64
	misses  uint64
}

// New returns an empty catalog with the default plan-cache capacity.
func New() *Catalog { return NewWithCacheSize(DefaultPlanCacheSize) }

// NewWithCacheSize returns an empty catalog whose plan cache holds up to n
// compiled queries (n ≤ 0 disables caching).
func NewWithCacheSize(n int) *Catalog {
	return &Catalog{rels: map[string]*relation.Relation{}, cache: newPlanLRU(n)}
}

// snapshot returns the current relation map and epoch. The map must not be
// mutated — mutators replace it wholesale.
func (c *Catalog) snapshot() (map[string]*relation.Relation, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rels, c.epoch
}

// mutate clones the relation map, applies fn, and bumps the epoch.
func (c *Catalog) mutate(fn func(map[string]*relation.Relation)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	next := make(map[string]*relation.Relation, len(c.rels)+1)
	for k, v := range c.rels {
		next[k] = v
	}
	fn(next)
	c.rels = next
	c.epoch++
}

// Register binds name to r, replacing any existing binding.
func (c *Catalog) Register(name string, r *relation.Relation) error {
	if name == "" {
		return fmt.Errorf("catalog: empty relation name")
	}
	if r == nil {
		return fmt.Errorf("catalog: nil relation for %q", name)
	}
	c.mutate(func(m map[string]*relation.Relation) { m[name] = r })
	return nil
}

// RegisterPairs builds an indexed relation from tuples and registers it.
func (c *Catalog) RegisterPairs(name string, pairs []relation.Pair) (*relation.Relation, error) {
	r := relation.FromPairs(name, pairs)
	if err := c.Register(name, r); err != nil {
		return nil, err
	}
	return r, nil
}

// Drop removes name, reporting whether it was present.
func (c *Catalog) Drop(name string) bool {
	present := false
	c.mutate(func(m map[string]*relation.Relation) {
		_, present = m[name]
		delete(m, name)
	})
	return present
}

// Get returns the relation bound to name.
func (c *Catalog) Get(name string) (*relation.Relation, bool) {
	m, _ := c.snapshot()
	r, ok := m[name]
	return r, ok
}

// Len returns the number of registered relations.
func (c *Catalog) Len() int {
	m, _ := c.snapshot()
	return len(m)
}

// Epoch returns the catalog's statistics epoch; it changes on every
// registration or drop.
func (c *Catalog) Epoch() uint64 {
	_, e := c.snapshot()
	return e
}

// List returns Table-2 style stats for every relation, sorted by name.
func (c *Catalog) List() []Info {
	m, _ := c.snapshot()
	out := make([]Info, 0, len(m))
	for name, r := range m {
		out = append(out, Info{Name: name, Stats: r.Stats()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LoadFile reads a relation from a file written by (*Relation).Save and
// registers it under name, returning the loaded relation.
func (c *Catalog) LoadFile(name, path string) (*relation.Relation, error) {
	r, err := relation.Load(path)
	if err != nil {
		return nil, fmt.Errorf("catalog: load %q: %w", name, err)
	}
	if err := c.Register(name, r); err != nil {
		return nil, err
	}
	return r, nil
}

// LoadFiles loads several name → path specs concurrently; the catalog epoch
// advances once per successful registration. The first error wins, but every
// load is attempted.
func (c *Catalog) LoadFiles(specs map[string]string) error {
	var wg sync.WaitGroup
	errs := make(chan error, len(specs))
	for name, path := range specs {
		wg.Add(1)
		go func(name, path string) {
			defer wg.Done()
			if _, err := c.LoadFile(name, path); err != nil {
				errs <- err
			}
		}(name, path)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// MaxCachedMaterializedRows bounds the compile-time bag rows the plan cache
// may pin in aggregate, across all cached plans: cyclic queries materialize
// their decomposition bags during compilation, and an LRU bounded only by
// entry count would otherwise hold unbounded memory. When inserting a plan
// would exceed the budget, least-recently-used entries are evicted first; a
// single plan above the whole budget is never cached (it still runs — it is
// just recompiled per request).
const MaxCachedMaterializedRows = 1 << 20

// Prepare compiles query text against the current catalog snapshot, serving
// repeats from the LRU plan cache. The second result reports a cache hit.
func (c *Catalog) Prepare(src string) (*query.Prepared, bool, error) {
	return c.PrepareContext(context.Background(), src)
}

// PrepareContext is Prepare with cancellation: compiling a cyclic query
// materializes decomposition bags, so the context deadline applies to
// compilation too, not just execution.
func (c *Catalog) PrepareContext(ctx context.Context, src string) (*query.Prepared, bool, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, false, err
	}
	snap, epoch := c.snapshot()
	key := planKey{text: q.String(), epoch: epoch}
	if p := c.cacheGet(key); p != nil {
		return p, true, nil
	}
	p, err := query.CompileContext(ctx, q, query.MapResolver(snap))
	if err != nil {
		return nil, false, err
	}
	c.cachePut(key, p)
	return p, false, nil
}

// CacheStats returns plan-cache hit/miss counters and current size.
func (c *Catalog) CacheStats() (hits, misses uint64, size int) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	return c.hits, c.misses, c.cache.len()
}

func (c *Catalog) cacheGet(key planKey) *query.Prepared {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	if p := c.cache.get(key); p != nil {
		c.hits++
		return p
	}
	c.misses++
	return nil
}

func (c *Catalog) cachePut(key planKey, p *query.Prepared) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	c.cache.put(key, p)
}

// planKey identifies one cached plan: canonical query text at one catalog
// epoch. Epoch participation means a catalog change implicitly invalidates
// every cached plan without touching the cache.
type planKey struct {
	text  string
	epoch uint64
}

// planLRU is a minimal LRU over compiled plans, bounded both by entry count
// and by the aggregate weight (materialized bag rows) the entries pin. Not
// safe for concurrent use; the catalog serializes access.
type planLRU struct {
	cap       int
	weightCap int
	weight    int        // total weight of cached entries
	order     *list.List // front = most recent; values are *lruEntry
	entries   map[planKey]*list.Element
}

type lruEntry struct {
	key    planKey
	p      *query.Prepared
	weight int
}

func newPlanLRU(capacity int) *planLRU {
	return &planLRU{
		cap: capacity, weightCap: MaxCachedMaterializedRows,
		order: list.New(), entries: map[planKey]*list.Element{},
	}
}

func (l *planLRU) len() int { return l.order.Len() }

func (l *planLRU) get(key planKey) *query.Prepared {
	el, ok := l.entries[key]
	if !ok {
		return nil
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).p
}

func (l *planLRU) put(key planKey, p *query.Prepared) {
	w := p.MaterializedRows()
	if l.cap <= 0 || w > l.weightCap {
		return
	}
	if el, ok := l.entries[key]; ok {
		e := el.Value.(*lruEntry)
		l.weight += w - e.weight
		e.p, e.weight = p, w
		l.order.MoveToFront(el)
	} else {
		l.entries[key] = l.order.PushFront(&lruEntry{key: key, p: p, weight: w})
		l.weight += w
	}
	for l.order.Len() > l.cap || l.weight > l.weightCap {
		back := l.order.Back()
		e := back.Value.(*lruEntry)
		l.order.Remove(back)
		delete(l.entries, e.key)
		l.weight -= e.weight
	}
}
