package obs

import "context"

// reqIDKey carries the request correlation ID through contexts. It lives in
// obs (not the server) so the engine core and the replication client can
// read and set it without importing HTTP layers.
type reqIDKey struct{}

// WithRequestID returns a context carrying the request correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, reqIDKey{}, id)
}

// RequestIDFrom returns the context's request correlation ID, or "".
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey{}).(string)
	return id
}

// SanitizeRequestID validates an externally supplied correlation ID (e.g. an
// inbound X-Request-Id header): at most 64 bytes of printable ASCII with no
// spaces, quotes or backslashes, so IDs pass through structured logs and
// headers unmangled. Returns "" when the candidate fails.
func SanitizeRequestID(id string) string {
	if id == "" || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c <= ' ' || c > '~' || c == '"' || c == '\\' {
			return ""
		}
	}
	return id
}
