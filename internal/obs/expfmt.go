package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Exposition is a parsed Prometheus text exposition: the types declared per
// family and every sample keyed by its full series identity (name plus
// rendered label set, exactly as it appeared in the input).
type Exposition struct {
	// Types maps family name → declared type (counter, gauge, histogram, ...).
	Types map[string]string
	// Help maps family name → help string.
	Help map[string]string
	// Samples maps "name{label="v",...}" → value, in input spelling.
	Samples map[string]float64
}

// Value returns the sample for the exact series key and whether it exists.
func (e *Exposition) Value(series string) (float64, bool) {
	v, ok := e.Samples[series]
	return v, ok
}

// Families returns the sorted family names that declared a type.
func (e *Exposition) Families() []string {
	out := make([]string, 0, len(e.Types))
	for n := range e.Types {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ParseExposition parses and validates Prometheus text exposition format
// (version 0.0.4). It enforces what a real scraper would choke on: malformed
// lines, duplicate series, samples of a typed family appearing before their
// # TYPE line, histograms missing their +Inf bucket or with non-cumulative
// bucket counts, and _count disagreeing with the +Inf bucket.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{
		Types:   map[string]string{},
		Help:    map[string]string{},
		Samples: map[string]float64{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := exp.parseComment(line); err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		if err := exp.parseSample(line); err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := exp.checkHistograms(); err != nil {
		return nil, err
	}
	return exp, nil
}

// ValidateExposition parses the exposition and returns the first format
// error, if any. CI and contract tests use it to guard the hand-rolled
// encoder against drift.
func ValidateExposition(r io.Reader) error {
	_, err := ParseExposition(r)
	return err
}

func (e *Exposition) parseComment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment; legal
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, typ := fields[2], strings.TrimSpace(fields[3])
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q for %s", typ, name)
		}
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in TYPE line", name)
		}
		if prev, ok := e.Types[name]; ok {
			return fmt.Errorf("duplicate TYPE for %s (was %s)", name, prev)
		}
		// A typed family's samples must not precede its TYPE line.
		declared := map[string]string{name: typ}
		for series := range e.Samples {
			if seriesFamily(series, declared) == name {
				return fmt.Errorf("TYPE for %s appears after its samples", name)
			}
		}
		e.Types[name] = typ
	case "HELP":
		if len(fields) < 3 {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		name := fields[2]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q in HELP line", name)
		}
		if len(fields) == 4 {
			e.Help[name] = fields[3]
		}
	}
	return nil
}

func (e *Exposition) parseSample(line string) error {
	name, rest, err := scanMetricName(line)
	if err != nil {
		return err
	}
	series := name
	if strings.HasPrefix(rest, "{") {
		labels, after, err := scanLabels(rest)
		if err != nil {
			return fmt.Errorf("series %s: %w", name, err)
		}
		series += labels
		rest = after
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return fmt.Errorf("series %s: want `value [timestamp]`, got %q", series, rest)
	}
	val, err := parseValue(fields[0])
	if err != nil {
		return fmt.Errorf("series %s: bad value %q", series, fields[0])
	}
	if len(fields) == 2 {
		if _, err := strconv.ParseInt(fields[1], 10, 64); err != nil {
			return fmt.Errorf("series %s: bad timestamp %q", series, fields[1])
		}
	}
	if _, dup := e.Samples[series]; dup {
		return fmt.Errorf("duplicate series %s", series)
	}
	e.Samples[series] = val
	return nil
}

// checkHistograms verifies every declared histogram family: cumulative
// non-decreasing buckets, a +Inf bucket present, and _count equal to it.
func (e *Exposition) checkHistograms() error {
	for name, typ := range e.Types {
		if typ != "histogram" {
			continue
		}
		// Group buckets by their non-le label set.
		type buckets struct {
			le  []float64
			cnt []float64
			inf float64
			has bool
		}
		groups := map[string]*buckets{}
		for series, val := range e.Samples {
			base, le, ok := splitBucket(series, name)
			if !ok {
				continue
			}
			g := groups[base]
			if g == nil {
				g = &buckets{}
				groups[base] = g
			}
			if math.IsInf(le, 1) {
				g.inf, g.has = val, true
			} else {
				g.le = append(g.le, le)
				g.cnt = append(g.cnt, val)
			}
		}
		for base, g := range groups {
			if !g.has {
				return fmt.Errorf("histogram %s%s: missing +Inf bucket", name, base)
			}
			idx := make([]int, len(g.le))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return g.le[idx[a]] < g.le[idx[b]] })
			prev := 0.0
			for _, i := range idx {
				if g.cnt[i] < prev {
					return fmt.Errorf("histogram %s%s: bucket counts not cumulative at le=%g", name, base, g.le[i])
				}
				prev = g.cnt[i]
			}
			if g.inf < prev {
				return fmt.Errorf("histogram %s%s: +Inf bucket below lower bucket", name, base)
			}
			if cnt, ok := e.Samples[name+"_count"+base]; ok && cnt != g.inf {
				return fmt.Errorf("histogram %s%s: _count %g != +Inf bucket %g", name, base, cnt, g.inf)
			}
		}
	}
	return nil
}

// splitBucket decides whether series is a _bucket sample of family name,
// returning the label set minus the le pair and the le bound.
func splitBucket(series, family string) (base string, le float64, ok bool) {
	prefix := family + "_bucket"
	if !strings.HasPrefix(series, prefix) {
		return "", 0, false
	}
	rest := series[len(prefix):]
	if !strings.HasPrefix(rest, "{") {
		return "", 0, false
	}
	// Find the le="..." pair and strip it.
	inner := rest[1 : len(rest)-1]
	parts := splitLabelPairs(inner)
	var kept []string
	found := false
	for _, p := range parts {
		if strings.HasPrefix(p, `le="`) && strings.HasSuffix(p, `"`) {
			v := p[len(`le="`) : len(p)-1]
			le, found = parseBound(v)
			if !found {
				return "", 0, false
			}
			continue
		}
		kept = append(kept, p)
	}
	if !found {
		return "", 0, false
	}
	if len(kept) == 0 {
		return "", le, true
	}
	return "{" + strings.Join(kept, ",") + "}", le, true
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func parseBound(s string) (float64, bool) {
	if s == "+Inf" {
		return math.Inf(1), true
	}
	v, err := strconv.ParseFloat(s, 64)
	return v, err == nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// scanMetricName reads the leading metric name off a sample line.
func scanMetricName(line string) (name, rest string, err error) {
	i := 0
	for i < len(line) && isNameChar(line[i], i == 0) {
		i++
	}
	if i == 0 {
		return "", "", fmt.Errorf("sample line %q does not start with a metric name", line)
	}
	return line[:i], line[i:], nil
}

// scanLabels reads a {..} label block, validating pair syntax.
func scanLabels(s string) (labels, rest string, err error) {
	if s[0] != '{' {
		return "", "", fmt.Errorf("expected '{'")
	}
	inQuote := false
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				block := s[:i+1]
				if err := checkLabelBlock(block); err != nil {
					return "", "", err
				}
				return block, s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unterminated label block in %q", s)
}

// checkLabelBlock validates each pair inside a {..} block.
func checkLabelBlock(block string) error {
	inner := block[1 : len(block)-1]
	if strings.TrimSpace(inner) == "" {
		return fmt.Errorf("empty label block")
	}
	for _, p := range splitLabelPairs(inner) {
		eq := strings.Index(p, "=")
		if eq <= 0 {
			return fmt.Errorf("malformed label pair %q", p)
		}
		name, val := p[:eq], p[eq+1:]
		if !validLabelName(name) {
			return fmt.Errorf("invalid label name %q", name)
		}
		if len(val) < 2 || val[0] != '"' || val[len(val)-1] != '"' {
			return fmt.Errorf("label %s value not quoted: %q", name, val)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	for i := 0; i < len(s); i++ {
		if !isNameChar(s[i], i == 0) {
			return false
		}
	}
	return len(s) > 0
}

func validLabelName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return len(s) > 0
}

func isNameChar(c byte, first bool) bool {
	if c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
		return true
	}
	return !first && c >= '0' && c <= '9'
}

// seriesFamily maps a series key back to its family name, folding histogram
// _bucket/_sum/_count suffixes onto the declared family when one exists.
func seriesFamily(series string, types map[string]string) string {
	name := series
	if i := strings.IndexByte(name, '{'); i >= 0 {
		name = name[:i]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if _, ok := types[base]; ok {
				return base
			}
		}
	}
	return name
}
